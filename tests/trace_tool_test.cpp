// The introspection toolchain: TraceReader (JSONL parsing + round-trip),
// trace analysis (summarize / filter / export-chrome), cluster-series
// replay from a real traced run, the ResourceSampler's tick contract, and
// the profiler's cross---jobs determinism (labels + counts, never times).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/core.hpp"
#include "core/trace_replay.hpp"
#include "obs/obs.hpp"
#include "obs/resource_sampler.hpp"
#include "obs/trace_analysis.hpp"
#include "obs/trace_reader.hpp"
#include "parallel/parallel.hpp"
#include "sim/sim.hpp"

namespace {

using namespace routesync;

obs::TraceEvent make_event(std::uint64_t seq, double t, obs::TraceEventType type,
                           int node, std::int64_t a, double b, double x = 0.0) {
    obs::TraceEvent e;
    e.seq = seq;
    e.time = sim::SimTime::seconds(t);
    e.type = type;
    e.node = node;
    e.a = a;
    e.b = b;
    e.x = x;
    return e;
}

// ----------------------------------------------------------- type names

TEST(TraceEventTypeFromName, RoundTripsEveryType) {
    for (int i = 0; i <= static_cast<int>(obs::TraceEventType::ResourceSample);
         ++i) {
        const auto type = static_cast<obs::TraceEventType>(i);
        const auto back = obs::trace_event_type_from_name(
            obs::trace_event_name(type));
        ASSERT_TRUE(back.has_value()) << obs::trace_event_name(type);
        EXPECT_EQ(*back, type);
    }
    EXPECT_FALSE(obs::trace_event_type_from_name("no_such_event").has_value());
    EXPECT_FALSE(obs::trace_event_type_from_name("").has_value());
}

// ---------------------------------------------------------- parse_line

TEST(TraceReader, ParsesTheCanonicalEncoding) {
    const auto e = obs::TraceReader::parse_line(
        "{\"seq\": 7, \"t\": 1.5, \"type\": \"packet_deliver\", "
        "\"node\": 3, \"a\": 42, \"b\": 2.5, \"x\": 0}");
    EXPECT_EQ(e.seq, 7U);
    EXPECT_EQ(e.time.sec(), 1.5);
    EXPECT_EQ(e.type, obs::TraceEventType::PacketDeliver);
    EXPECT_EQ(e.node, 3);
    EXPECT_EQ(e.a, 42);
    EXPECT_EQ(e.b, 2.5);
    EXPECT_EQ(e.x, 0.0);
}

TEST(TraceReader, ToleratesFieldOrderAndWhitespace) {
    const auto e = obs::TraceReader::parse_line(
        "{ \"x\":1.5,\"b\":-2.5 , \"type\":\"resource_sample\", "
        "\"node\":-1, \"a\":0, \"t\":9, \"seq\":0 }");
    EXPECT_EQ(e.type, obs::TraceEventType::ResourceSample);
    EXPECT_EQ(e.node, -1);
    EXPECT_EQ(e.time.sec(), 9.0);
    EXPECT_EQ(e.b, -2.5);
    EXPECT_EQ(e.x, 1.5);
}

TEST(TraceReader, RejectsMalformedLines) {
    const std::string good =
        "{\"seq\": 0, \"t\": 1, \"type\": \"timer_set\", "
        "\"node\": 0, \"a\": 0, \"b\": 90, \"x\": 0}";
    EXPECT_NO_THROW((void)obs::TraceReader::parse_line(good));
    const std::vector<std::string> bad{
        "",                                          // empty
        "not json",                                  // no object
        "{\"seq\": 0}",                              // missing fields
        "{\"seq\": 0, \"t\": 1, \"type\": \"nope\", "
        "\"node\": 0, \"a\": 0, \"b\": 0, \"x\": 0}", // unknown type name
        "{\"seq\": 0.5, \"t\": 1, \"type\": \"timer_set\", "
        "\"node\": 0, \"a\": 0, \"b\": 0, \"x\": 0}", // non-integer seq
        "{\"seq\": -1, \"t\": 1, \"type\": \"timer_set\", "
        "\"node\": 0, \"a\": 0, \"b\": 0, \"x\": 0}", // negative seq
        "{\"seq\": 0, \"t\": 1, \"type\": \"timer_set\", "
        "\"node\": 0, \"a\": 0, \"b\": 0, \"x\": 0, \"y\": 1}", // unknown field
        "{\"seq\": 0, \"seq\": 1, \"t\": 1, \"type\": \"timer_set\", "
        "\"node\": 0, \"a\": 0, \"b\": 0, \"x\": 0}", // duplicate field
        good + " trailing",                           // trailing content
    };
    for (const auto& line : bad) {
        EXPECT_THROW((void)obs::TraceReader::parse_line(line),
                     std::runtime_error)
            << line;
    }
}

// The interchange contract: a file written by JsonlFileSink, read back and
// re-serialized through trace_event_jsonl(), reproduces the input bytes.
TEST(TraceReader, RoundTripsAFileByteIdentically) {
    const std::string path = ::testing::TempDir() + "trace_reader_rt.jsonl";
    std::vector<obs::TraceEvent> written;
    written.push_back(make_event(0, 0.25, obs::TraceEventType::TimerSet, 1, 0, 90.5));
    written.push_back(make_event(1, 1.0 / 3.0, obs::TraceEventType::UpdateTx, 2, 300, 1.0));
    written.push_back(
        make_event(2, 69.421511837985378, obs::TraceEventType::MetricSample,
                   -1, 4, 0.125, 0.11));
    written.push_back(
        make_event(3, 100.0, obs::TraceEventType::ResourceSample, -1, 2, 17.0, 64.0));
    {
        obs::JsonlFileSink sink{path};
        for (const auto& e : written) {
            sink.on_event(e);
        }
    }
    std::ifstream in{path};
    std::string original((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());

    const auto events = obs::TraceReader::read_all(path);
    ASSERT_EQ(events.size(), written.size());
    std::string reserialized;
    for (const auto& e : events) {
        reserialized += obs::trace_event_jsonl(e);
        reserialized += '\n';
    }
    EXPECT_EQ(reserialized, original);
    std::remove(path.c_str());
}

TEST(TraceReader, ReadAllReportsTheOffendingLine) {
    const std::string path = ::testing::TempDir() + "trace_reader_bad.jsonl";
    {
        std::ofstream out{path};
        out << "{\"seq\": 0, \"t\": 1, \"type\": \"timer_set\", "
               "\"node\": 0, \"a\": 0, \"b\": 0, \"x\": 0}\n";
        out << "garbage\n";
    }
    try {
        (void)obs::TraceReader::read_all(path);
        FAIL() << "expected a parse error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string{e.what()}.find(":2:"), std::string::npos)
            << e.what();
    }
    std::remove(path.c_str());
}

// ------------------------------------------------------------ summarize

std::vector<obs::TraceEvent> analysis_fixture() {
    std::vector<obs::TraceEvent> events;
    std::uint64_t seq = 0;
    // Two nodes transmitting at phases 10 and 60 of a 100 s round.
    for (int round = 0; round < 3; ++round) {
        const double base = 100.0 * round;
        events.push_back(make_event(seq++, base + 10.0,
                                    obs::TraceEventType::UpdateTx, 0, 30, 0.0));
        events.push_back(make_event(seq++, base + 20.0,
                                    obs::TraceEventType::CpuBusyBegin, 1, 0, 0.3));
        events.push_back(make_event(seq++, base + 20.5,
                                    obs::TraceEventType::CpuBusyEnd, 1, 0, 0.0));
        events.push_back(make_event(seq++, base + 60.0,
                                    obs::TraceEventType::UpdateTx, 1, 30, 0.0));
    }
    // One busy period left open at trace end.
    events.push_back(make_event(seq++, 290.0,
                                obs::TraceEventType::CpuBusyBegin, 0, 0, 1.0));
    return events;
}

TEST(TraceAnalysis, SummarizeCountsTypesNodesPhasesAndBusyPeriods) {
    const auto events = analysis_fixture();
    obs::SummaryOptions options;
    options.round_length = 100.0;
    options.phase_bins = 10;
    const auto s = obs::summarize(events, options);
    EXPECT_EQ(s.events, events.size());
    EXPECT_EQ(s.t_min, 10.0);
    EXPECT_EQ(s.t_max, 290.0);
    EXPECT_EQ(s.by_type.at("update_tx"), 6U);
    EXPECT_EQ(s.by_type.at("cpu_busy_begin"), 4U);
    EXPECT_EQ(s.tx_by_node.at(0), 3U);
    EXPECT_EQ(s.tx_by_node.at(1), 3U);
    ASSERT_EQ(s.tx_phase_hist.size(), 10U);
    EXPECT_EQ(s.tx_phase_hist[1], 3U); // phase 10 of 100 -> bin 1
    EXPECT_EQ(s.tx_phase_hist[6], 3U); // phase 60 of 100 -> bin 6
    EXPECT_EQ(s.busy_periods, 3U);
    EXPECT_NEAR(s.busy_total_sec, 1.5, 1e-12);
    EXPECT_NEAR(s.busy_max_sec, 0.5, 1e-12);
    EXPECT_EQ(s.busy_unclosed, 1U);

    const std::string report = obs::format_summary(s);
    EXPECT_NE(report.find("update_tx"), std::string::npos);
    EXPECT_NE(report.find("node 1"), std::string::npos);
}

TEST(TraceAnalysis, FilterSelectsByTypeNodeAndWindow) {
    const auto events = analysis_fixture();
    obs::FilterOptions by_type;
    by_type.types = {obs::TraceEventType::UpdateTx};
    EXPECT_EQ(obs::filter_events(events, by_type).size(), 6U);

    obs::FilterOptions by_node;
    by_node.node = 1;
    EXPECT_EQ(obs::filter_events(events, by_node).size(), 9U);

    obs::FilterOptions window;
    window.t_min = 100.0;
    window.t_max = 200.0;
    const auto in_window = obs::filter_events(events, window);
    ASSERT_EQ(in_window.size(), 4U);
    for (const auto& e : in_window) {
        EXPECT_GE(e.time.sec(), 100.0);
        EXPECT_LE(e.time.sec(), 200.0);
    }

    EXPECT_EQ(obs::filter_events(events, obs::FilterOptions{}).size(),
              events.size());
}

TEST(TraceAnalysis, ExportChromeEmitsSlicesCountersAndMetadata) {
    auto events = analysis_fixture();
    events.push_back(make_event(events.size(), 300.0,
                                obs::TraceEventType::ResourceSample, -1, 0,
                                12.0, 64.0));
    const std::string json = obs::export_chrome(events);
    EXPECT_EQ(json.rfind("{\"traceEvents\": [", 0), 0U);
    EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
    // cpu busy -> B/E duration slices; resource samples -> counters;
    // everything else -> instants; one thread_name metadata row per track.
    EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"global\""), std::string::npos);
    // ts is microseconds: t = 10 s -> 10000000.
    EXPECT_NE(json.find("\"ts\": 10000000"), std::string::npos);
}

// --------------------------------------------------------------- replay

TEST(TraceReplay, FormatAndDiffClusterSeries) {
    const std::vector<core::ClusterEvent> a{
        {sim::SimTime::seconds(1.5), 1}, {sim::SimTime::seconds(2.25), 2}};
    const std::vector<core::ClusterEvent> b{
        {sim::SimTime::seconds(1.5), 1}, {sim::SimTime::seconds(2.25), 3}};
    EXPECT_EQ(core::format_cluster_series(a), "1.5 1\n2.25 2\n");
    EXPECT_EQ(core::diff_cluster_series(a, a), "");
    EXPECT_NE(core::diff_cluster_series(a, b), "");
    EXPECT_NE(core::diff_cluster_series(a, {a[0]}), "");
}

TEST(TraceReplay, ThrowsOnATraceWithNoTimerSets) {
    const std::vector<obs::TraceEvent> events{
        make_event(0, 1.0, obs::TraceEventType::UpdateTx, 0, 1, 0.0)};
    EXPECT_THROW((void)core::replay_cluster_series(events), std::runtime_error);
}

// End to end on a real run: trace a small Periodic Messages experiment,
// read the file back, and recompute the cluster-size series from the
// timer_set stream alone. It must match both the recorded cluster_change
// events and the live run's first_hit_up series.
TEST(TraceReplay, ReproducesALiveRunsClusterSeries) {
    const std::string path = ::testing::TempDir() + "trace_replay_run.jsonl";
    core::ExperimentConfig cfg;
    cfg.params.n = 10;
    cfg.params.tp = sim::SimTime::seconds(121);
    cfg.params.tc = sim::SimTime::seconds(0.11);
    cfg.params.tr = sim::SimTime::seconds(0.1);
    cfg.params.seed = 42;
    cfg.max_time = sim::SimTime::seconds(20000);
    core::ExperimentResult result;
    {
        obs::RunContext ctx;
        ctx.trace_to_file(path);
        cfg.obs = &ctx;
        result = core::run_experiment(cfg);
    }

    const auto events = obs::TraceReader::read_all(path);
    const auto replay = core::replay_cluster_series(events);
    EXPECT_EQ(replay.n, cfg.params.n);
    EXPECT_EQ(replay.initial_skipped, static_cast<std::uint64_t>(cfg.params.n));
    EXPECT_FALSE(replay.replayed.empty());
    EXPECT_EQ(core::diff_cluster_series(replay.replayed, replay.recorded), "");

    std::vector<core::ClusterEvent> live;
    for (int s = 1; s < static_cast<int>(result.first_hit_up.size()); ++s) {
        if (result.first_hit_up[static_cast<std::size_t>(s)].has_value()) {
            live.push_back(core::ClusterEvent{
                sim::SimTime::seconds(
                    *result.first_hit_up[static_cast<std::size_t>(s)]),
                s});
        }
    }
    EXPECT_EQ(core::diff_cluster_series(replay.replayed, live), "");
    std::remove(path.c_str());
}

// ------------------------------------------------------ resource sampler

TEST(ResourceSampler, TicksAtTheConfiguredCadenceAndEmitsSamples) {
    sim::Engine engine;
    obs::RunContext ctx;
    ctx.trace_to_ring(4096);
    ctx.attach(engine);
    obs::ResourceSampler sampler{engine, ctx, sim::SimTime::seconds(1.0)};
    double level = 0.0;
    const int index = sampler.add_source("test.level", 2, [&level] {
        level += 1.0;
        return obs::ResourceSampler::Sample{level, 8.0};
    });
    sampler.watch_engine_queue();
    sampler.start();
    engine.run_until(sim::SimTime::seconds(10.0));

    EXPECT_EQ(sampler.ticks(), 10U);
    EXPECT_EQ(sampler.sources(), 4U); // test.level + 3 engine-queue sources

    const auto* ring = dynamic_cast<obs::RingBufferSink*>(ctx.sink());
    ASSERT_NE(ring, nullptr);
    std::uint64_t samples_from_probe = 0;
    for (const auto& e : ring->events()) {
        if (e.type == obs::TraceEventType::ResourceSample && e.a == index) {
            ++samples_from_probe;
            EXPECT_EQ(e.node, 2);
            EXPECT_EQ(e.x, 8.0);
        }
    }
    EXPECT_EQ(samples_from_probe, 10U);
    // The index -> name mapping lands in the gauges.
    const auto snap = ctx.metrics().snapshot();
    EXPECT_EQ(snap.gauges.at("rs.test.level"), 10.0);
    EXPECT_EQ(snap.gauges.at("rs.test.level.cap"), 8.0);
    EXPECT_EQ(snap.counters.at("sampler.ticks"), 10U);
}

TEST(ResourceSampler, OffByDefaultProducesNoSampleEvents) {
    const std::string path = ::testing::TempDir() + "sampler_off.jsonl";
    core::ExperimentConfig cfg;
    cfg.params.n = 5;
    cfg.params.seed = 7;
    cfg.max_time = sim::SimTime::seconds(2000);
    {
        obs::RunContext ctx;
        ctx.trace_to_file(path);
        cfg.obs = &ctx;
        (void)core::run_experiment(cfg); // sample_every defaults to 0 = off
    }
    for (const auto& e : obs::TraceReader::read_all(path)) {
        EXPECT_NE(e.type, obs::TraceEventType::ResourceSample);
    }
    std::remove(path.c_str());
}

TEST(ResourceSampler, SamplesThePmKernelOnTheFastPath) {
    // Explicit FastKernel backend + a cadence: the sampler ticks on the
    // kernel's own hook events (no generic engine anywhere) and reports
    // the kernel-side gauges. Sampling must not change simulation
    // results, so the run is compared against an unsampled twin.
    core::ExperimentConfig cfg;
    cfg.params.n = 10;
    cfg.params.seed = 424242;
    cfg.max_time = sim::SimTime::seconds(2000);
    cfg.backend = core::ExperimentBackend::FastKernel;
    const auto plain = core::run_experiment(cfg);

    obs::RunContext ctx;
    ctx.trace_to_ring(1 << 16);
    cfg.obs = &ctx;
    cfg.sample_every = 100.0;
    const auto sampled = core::run_experiment(cfg);

    EXPECT_EQ(sampled.total_transmissions, plain.total_transmissions);
    EXPECT_EQ(sampled.rounds_closed, plain.rounds_closed);
    EXPECT_EQ(sampled.end_time_sec, plain.end_time_sec);
    // Hook events count like any other kernel event.
    EXPECT_GT(sampled.events_processed, plain.events_processed);
    EXPECT_GT(sampled.kernel_state_bytes, 0U);

    const auto* ring = dynamic_cast<obs::RingBufferSink*>(ctx.sink());
    ASSERT_NE(ring, nullptr);
    std::uint64_t samples = 0;
    for (const auto& e : ring->events()) {
        if (e.type == obs::TraceEventType::ResourceSample) {
            ++samples;
        }
    }
    // ~20 ticks x 2 sources (state bytes + live queue depth).
    EXPECT_GE(samples, 2U * 15U);
    const auto snap = ctx.metrics().snapshot();
    ASSERT_TRUE(snap.gauges.contains("rs.pm_kernel.state_bytes"));
    EXPECT_GT(snap.gauges.at("rs.pm_kernel.state_bytes"), 0.0);
    ASSERT_TRUE(snap.gauges.contains("rs.pm_kernel.queue.live"));
    EXPECT_GT(snap.gauges.at("rs.pm_kernel.queue.live"), 0.0);
    EXPECT_GT(snap.counters.at("sampler.ticks"), 0U);
}

TEST(ResourceSampler, EngineFreeConstructorRequiresHooksAndNoEngineWatch) {
    obs::RunContext ctx;
    EXPECT_THROW((obs::ResourceSampler{nullptr, [] { return sim::SimTime::zero(); },
                                       ctx, sim::SimTime::seconds(1.0)}),
                 std::invalid_argument);
    obs::ResourceSampler sampler{
        [](sim::SimTime, std::function<void()>) {},
        [] { return sim::SimTime::zero(); }, ctx, sim::SimTime::seconds(1.0)};
    EXPECT_THROW(sampler.watch_engine_queue(), std::logic_error);
}

TEST(ResourceSampler, StopCancelsFutureTicks) {
    sim::Engine engine;
    obs::RunContext ctx;
    ctx.attach(engine);
    obs::ResourceSampler sampler{engine, ctx, sim::SimTime::seconds(1.0)};
    sampler.add_source("x", -1,
                       [] { return obs::ResourceSampler::Sample{1.0, 0.0}; });
    sampler.start();
    engine.run_until(sim::SimTime::seconds(3.5));
    EXPECT_EQ(sampler.ticks(), 3U);
    sampler.stop();
    engine.run_until(sim::SimTime::seconds(10.0));
    EXPECT_EQ(sampler.ticks(), 3U);
}

TEST(ResourceSampler, RejectsNonPositiveCadence) {
    sim::Engine engine;
    obs::RunContext ctx;
    EXPECT_THROW(
        (obs::ResourceSampler{engine, ctx, sim::SimTime::zero()}),
        std::invalid_argument);
}

// -------------------------------------------------------------- profiler

TEST(Profiler, ScopesAreNoOpsWithNoProfilerInstalled) {
    ASSERT_EQ(obs::Profiler::current(), nullptr);
    {
        OBS_PROF_SCOPE("noop.scope");
    }
    // Still nothing installed, nothing recorded anywhere to observe —
    // the point is simply that the disabled path is safe and branch-only.
    EXPECT_EQ(obs::Profiler::current(), nullptr);
}

TEST(Profiler, RecordsCountsTotalsAndMaxPerLabel) {
    obs::Profiler profiler;
    obs::ScopedProfilerInstall install{profiler};
    profiler.record("a.one", 0.5);
    profiler.record("a.one", 1.5);
    profiler.record("b.two", 0.25);
    const auto snap = profiler.snapshot();
    ASSERT_EQ(snap.entries.size(), 2U);
    EXPECT_EQ(snap.entries.at("a.one").count, 2U);
    EXPECT_DOUBLE_EQ(snap.entries.at("a.one").total_sec, 2.0);
    EXPECT_DOUBLE_EQ(snap.entries.at("a.one").max_sec, 1.5);
    EXPECT_EQ(snap.entries.at("b.two").count, 1U);

    const std::string json = snap.to_json();
    EXPECT_NE(json.find("\"a.one\""), std::string::npos);
    EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
}

TEST(Profiler, MergeSumsCountsAndTotalsAndTakesMax) {
    obs::ProfileSnapshot a;
    a.entries["x"] = {2, 1.0, 0.75};
    obs::ProfileSnapshot b;
    b.entries["x"] = {3, 2.0, 0.5};
    b.entries["y"] = {1, 0.1, 0.1};
    a.merge(b);
    EXPECT_EQ(a.entries.at("x").count, 5U);
    EXPECT_DOUBLE_EQ(a.entries.at("x").total_sec, 3.0);
    EXPECT_DOUBLE_EQ(a.entries.at("x").max_sec, 0.75);
    EXPECT_EQ(a.entries.at("y").count, 1U);
}

// The determinism contract: wall-clock durations vary run to run, but the
// label set and per-label counts of the merged profile are a function of
// the trial sequence alone — identical at --jobs 1 and --jobs 8.
TEST(Profiler, MergedLabelsAndCountsIdenticalForJobs1And8) {
    std::vector<core::ExperimentConfig> configs;
    for (int i = 0; i < 8; ++i) {
        core::ExperimentConfig cfg;
        cfg.params.n = 10;
        cfg.params.tp = sim::SimTime::seconds(121);
        cfg.params.tc = sim::SimTime::seconds(0.11);
        cfg.params.tr = sim::SimTime::seconds(0.1);
        cfg.params.seed = parallel::derive_seed(42, static_cast<std::uint64_t>(i));
        cfg.max_time = sim::SimTime::seconds(5000);
        configs.push_back(cfg);
    }
    obs::Profiler::set_process_enabled(true);
    const parallel::TrialRunner serial{{.jobs = 1}};
    const parallel::TrialRunner wide{{.jobs = 8}};
    const auto r1 = serial.run_all(configs);
    const auto r8 = wide.run_all(configs);
    obs::Profiler::set_process_enabled(false);

    const obs::ProfileSnapshot p1 = parallel::merge_trial_profiles(r1);
    const obs::ProfileSnapshot p8 = parallel::merge_trial_profiles(r8);
    ASSERT_FALSE(p1.empty());
    ASSERT_EQ(p1.entries.size(), p8.entries.size());
    auto it1 = p1.entries.begin();
    auto it8 = p8.entries.begin();
    for (; it1 != p1.entries.end(); ++it1, ++it8) {
        EXPECT_EQ(it1->first, it8->first);
        EXPECT_EQ(it1->second.count, it8->second.count) << it1->first;
    }
    EXPECT_GE(p1.entries.count("experiment.run"), 1U);
    EXPECT_GE(p1.entries.count("pm.timer_fire"), 1U);
}

} // namespace
