// Tests for the random-number subsystem.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <vector>

#include "rng/rng.hpp"

namespace {

using namespace routesync::rng;

// ---------------------------------------------------------------- MinStd

// The published acceptance test for the Park-Miller minimal standard
// generator: starting from seed 1, the 10000th value is 1043618065
// (Park & Miller, CACM 1988; the implementation is Carta's, CACM 1990 —
// the paper's [Ca90] reference).
TEST(MinStd, ParkMillerAcceptanceValue) {
    MinStd gen{1};
    gen.discard(9999);
    EXPECT_EQ(gen(), 1043618065U);
}

TEST(MinStd, FirstValuesMatchDirectModularArithmetic) {
    MinStd gen{1};
    std::uint64_t x = 1;
    for (int i = 0; i < 1000; ++i) {
        x = (16807ULL * x) % 2147483647ULL;
        EXPECT_EQ(gen(), x) << "diverged at step " << i;
    }
}

TEST(MinStd48271, MatchesDirectModularArithmetic) {
    MinStd48271 gen{1};
    std::uint64_t x = 1;
    for (int i = 0; i < 1000; ++i) {
        x = (48271ULL * x) % 2147483647ULL;
        EXPECT_EQ(gen(), x) << "diverged at step " << i;
    }
}

TEST(MinStd, ZeroSeedIsRemapped) {
    MinStd gen{0};
    EXPECT_EQ(gen.state(), 1U);
    EXPECT_NE(gen(), 0U);
}

TEST(MinStd, ModulusMultipleSeedIsRemapped) {
    MinStd gen{2147483647ULL}; // == modulus -> 0 -> remapped to 1
    MinStd ref{1};
    EXPECT_EQ(gen(), ref());
}

TEST(MinStd, OutputAlwaysInRange) {
    MinStd gen{12345};
    for (int i = 0; i < 100000; ++i) {
        const auto v = gen();
        EXPECT_GE(v, MinStd::min());
        EXPECT_LE(v, MinStd::max());
    }
}

TEST(MinStd, NextUnitInOpenInterval) {
    MinStd gen{7};
    for (int i = 0; i < 10000; ++i) {
        const double u = gen.next_unit();
        EXPECT_GT(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

// ------------------------------------------------------------- SplitMix64

TEST(SplitMix64, KnownFirstOutputsFromSeedZero) {
    // Reference values from the canonical splitmix64.c (Vigna).
    SplitMix64 gen{0};
    EXPECT_EQ(gen(), 0xe220a8397b1dcdafULL);
    EXPECT_EQ(gen(), 0x6e789e6aa1b965f4ULL);
    EXPECT_EQ(gen(), 0x06c45d188009454fULL);
}

TEST(SplitMix64, DistinctSeedsGiveDistinctStreams) {
    SplitMix64 a{1};
    SplitMix64 b{2};
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a() == b()) {
            ++equal;
        }
    }
    EXPECT_EQ(equal, 0);
}

// ----------------------------------------------------------- Xoshiro256**

TEST(Xoshiro256ss, DeterministicForSeed) {
    Xoshiro256ss a{99};
    Xoshiro256ss b{99};
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a(), b());
    }
}

TEST(Xoshiro256ss, SplitProducesNonOverlappingStreams) {
    Xoshiro256ss parent{5};
    Xoshiro256ss child = parent.split();
    std::set<std::uint64_t> child_vals;
    for (int i = 0; i < 4096; ++i) {
        child_vals.insert(child());
    }
    int collisions = 0;
    for (int i = 0; i < 4096; ++i) {
        if (child_vals.contains(parent())) {
            ++collisions;
        }
    }
    // Birthday-level coincidences only.
    EXPECT_LE(collisions, 1);
}

TEST(Xoshiro256ss, BitsLookBalanced) {
    Xoshiro256ss gen{2024};
    std::array<int, 64> ones{};
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        std::uint64_t v = gen();
        for (int b = 0; b < 64; ++b) {
            ones[static_cast<std::size_t>(b)] += static_cast<int>((v >> b) & 1U);
        }
    }
    for (int b = 0; b < 64; ++b) {
        const double frac = static_cast<double>(ones[static_cast<std::size_t>(b)]) / n;
        EXPECT_NEAR(frac, 0.5, 0.01) << "bit " << b;
    }
}

// ---------------------------------------------------------- distributions

TEST(Distributions, Uniform01InHalfOpenUnitInterval) {
    Xoshiro256ss gen{1};
    for (int i = 0; i < 100000; ++i) {
        const double u = uniform01(gen);
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Distributions, Uniform01MeanAndVariance) {
    Xoshiro256ss gen{17};
    double sum = 0.0;
    double sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double u = uniform01(gen);
        sum += u;
        sq += u * u;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.5, 0.005);
    EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Distributions, UniformRealRespectsBounds) {
    Xoshiro256ss gen{3};
    for (int i = 0; i < 10000; ++i) {
        const double x = uniform_real(gen, -2.5, 7.25);
        EXPECT_GE(x, -2.5);
        EXPECT_LT(x, 7.25);
    }
}

TEST(Distributions, UniformRealDegenerateRangeReturnsLo) {
    Xoshiro256ss gen{3};
    EXPECT_EQ(uniform_real(gen, 4.0, 4.0), 4.0);
}

TEST(Distributions, UniformU64CoversSmallRangeCompletely) {
    Xoshiro256ss gen{11};
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = uniform_u64(gen, 10, 17);
        EXPECT_GE(v, 10U);
        EXPECT_LE(v, 17U);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 8U);
}

TEST(Distributions, UniformU64SingletonRange) {
    Xoshiro256ss gen{11};
    EXPECT_EQ(uniform_u64(gen, 42, 42), 42U);
}

TEST(Distributions, UniformI64HandlesNegativeBounds) {
    Xoshiro256ss gen{13};
    for (int i = 0; i < 10000; ++i) {
        const auto v = uniform_i64(gen, -5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Distributions, ExponentialMeanConverges) {
    Xoshiro256ss gen{23};
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = exponential(gen, 3.0);
        EXPECT_GE(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Distributions, BernoulliFrequencyMatchesP) {
    Xoshiro256ss gen{29};
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        hits += bernoulli(gen, 0.3) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

// Parameterized sweep: every engine/seed combination stays in range and is
// reproducible.
class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, XoshiroReproducible) {
    Xoshiro256ss a{GetParam()};
    Xoshiro256ss b{GetParam()};
    for (int i = 0; i < 256; ++i) {
        ASSERT_EQ(a(), b());
    }
}

TEST_P(SeedSweep, MinStdStateNeverZero) {
    MinStd gen{GetParam()};
    for (int i = 0; i < 10000; ++i) {
        ASSERT_NE(gen(), 0U);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(0ULL, 1ULL, 2ULL, 42ULL, 12345ULL,
                                           0xffffffffULL, 0x123456789abcdefULL,
                                           ~0ULL));

} // namespace
