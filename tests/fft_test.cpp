// Tests for the FFT engine and the FFT-backed spectral pipeline: the
// fast autocorrelation / periodogram must match the naive O(n^2)
// reference implementations to tight tolerance on random and
// pathological inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "rng/rng.hpp"
#include "stats/autocorrelation.hpp"
#include "stats/fft.hpp"
#include "stats/periodogram.hpp"

namespace {

using namespace routesync;
using stats::Complex;

std::vector<double> random_series(std::size_t n, std::uint64_t seed) {
    rng::Xoshiro256ss gen{seed};
    std::vector<double> x(n);
    for (double& v : x) {
        v = rng::uniform_real(gen, -1.0, 1.0);
    }
    return x;
}

/// Textbook O(n^2) DFT to check the fast paths against.
std::vector<Complex> dft_reference(const std::vector<Complex>& x, bool inverse) {
    const std::size_t n = x.size();
    const double sign = inverse ? 1.0 : -1.0;
    std::vector<Complex> out(n);
    for (std::size_t k = 0; k < n; ++k) {
        Complex sum{0.0, 0.0};
        for (std::size_t t = 0; t < n; ++t) {
            const double angle = sign * 2.0 * std::numbers::pi *
                                 static_cast<double>(t) * static_cast<double>(k) /
                                 static_cast<double>(n);
            sum += x[t] * Complex{std::cos(angle), std::sin(angle)};
        }
        out[k] = sum;
    }
    return out;
}

void expect_near(const std::vector<Complex>& got, const std::vector<Complex>& want,
                 double tol) {
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i].real(), want[i].real(), tol) << "index " << i;
        EXPECT_NEAR(got[i].imag(), want[i].imag(), tol) << "index " << i;
    }
}

void expect_near(const std::vector<double>& got, const std::vector<double>& want,
                 double tol) {
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i], want[i], tol) << "index " << i;
    }
}

// ------------------------------------------------------------- FFT core

TEST(Fft, NextPow2) {
    EXPECT_EQ(stats::next_pow2(1), 1U);
    EXPECT_EQ(stats::next_pow2(2), 2U);
    EXPECT_EQ(stats::next_pow2(3), 4U);
    EXPECT_EQ(stats::next_pow2(1000), 1024U);
    EXPECT_EQ(stats::next_pow2(1024), 1024U);
    EXPECT_TRUE(stats::is_pow2(64));
    EXPECT_FALSE(stats::is_pow2(96));
    EXPECT_FALSE(stats::is_pow2(0));
}

TEST(Fft, ImpulseTransformsToFlatSpectrum) {
    std::vector<Complex> x(16, Complex{0.0, 0.0});
    x[0] = Complex{1.0, 0.0};
    stats::fft_pow2(x, /*inverse=*/false);
    for (const Complex& c : x) {
        EXPECT_NEAR(c.real(), 1.0, 1e-12);
        EXPECT_NEAR(c.imag(), 0.0, 1e-12);
    }
}

TEST(Fft, ForwardMatchesReferenceDftPow2) {
    rng::Xoshiro256ss gen{7};
    std::vector<Complex> x(64);
    for (Complex& c : x) {
        c = Complex{rng::uniform_real(gen, -1.0, 1.0),
                    rng::uniform_real(gen, -1.0, 1.0)};
    }
    std::vector<Complex> fast = x;
    stats::fft_pow2(fast, /*inverse=*/false);
    expect_near(fast, dft_reference(x, false), 1e-10);
}

TEST(Fft, RoundTripRecoversInputScaledByN) {
    const auto series = random_series(128, 11);
    std::vector<Complex> x(series.size());
    for (std::size_t i = 0; i < series.size(); ++i) {
        x[i] = Complex{series[i], 0.0};
    }
    std::vector<Complex> z = x;
    stats::fft_pow2(z, /*inverse=*/false);
    stats::fft_pow2(z, /*inverse=*/true); // unscaled inverse
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(z[i].real() / 128.0, x[i].real(), 1e-12);
        EXPECT_NEAR(z[i].imag() / 128.0, x[i].imag(), 1e-12);
    }
}

TEST(Fft, ParsevalHolds) {
    const auto series = random_series(256, 23);
    std::vector<Complex> x(series.size());
    for (std::size_t i = 0; i < series.size(); ++i) {
        x[i] = Complex{series[i], 0.0};
    }
    double time_energy = 0.0;
    for (const Complex& c : x) {
        time_energy += std::norm(c);
    }
    stats::fft_pow2(x, /*inverse=*/false);
    double freq_energy = 0.0;
    for (const Complex& c : x) {
        freq_energy += std::norm(c);
    }
    EXPECT_NEAR(freq_energy / 256.0, time_energy, 1e-9);
}

TEST(Fft, BluesteinMatchesReferenceDftOddLengths) {
    for (const std::size_t n : {3U, 5U, 7U, 12U, 100U, 101U}) {
        rng::Xoshiro256ss gen{n};
        std::vector<Complex> x(n);
        for (Complex& c : x) {
            c = Complex{rng::uniform_real(gen, -1.0, 1.0),
                        rng::uniform_real(gen, -1.0, 1.0)};
        }
        expect_near(stats::dft(x), dft_reference(x, false), 1e-9);
        expect_near(stats::dft(x, /*inverse=*/true), dft_reference(x, true), 1e-9);
    }
}

TEST(Fft, PrimeLengthRoundTrip) {
    rng::Xoshiro256ss gen{1009};
    std::vector<Complex> x(1009);
    for (Complex& c : x) {
        c = Complex{rng::uniform_real(gen, -1.0, 1.0), 0.0};
    }
    const auto spectrum = stats::dft(x);
    const auto back = stats::dft(spectrum, /*inverse=*/true);
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(back[i].real() / 1009.0, x[i].real(), 1e-9);
        EXPECT_NEAR(back[i].imag() / 1009.0, x[i].imag(), 1e-9);
    }
}

// --------------------------------------- autocorrelation FFT-vs-naive

TEST(SpectralEquivalence, AutocorrelationMatchesNaiveOnRandomSeries) {
    for (const std::size_t n : {16U, 100U, 1000U, 1024U}) {
        const auto x = random_series(n, 1000 + n);
        const std::size_t max_lag = n / 2;
        expect_near(stats::autocorrelation(x, max_lag),
                    stats::autocorrelation_naive(x, max_lag), 1e-9);
    }
}

TEST(SpectralEquivalence, AutocorrelationMatchesNaiveOnPathologicalSeries) {
    // Constant series: both take the negligible-variance path.
    const std::vector<double> constant(64, 3.5);
    expect_near(stats::autocorrelation(constant, 10),
                stats::autocorrelation_naive(constant, 10), 0.0);

    // Impulse.
    std::vector<double> impulse(64, 0.0);
    impulse[5] = 1.0;
    expect_near(stats::autocorrelation(impulse, 32),
                stats::autocorrelation_naive(impulse, 32), 1e-9);

    // Prime length (exercises the padded radix-2 path from an odd n).
    const auto prime = random_series(1009, 99);
    expect_near(stats::autocorrelation(prime, 500),
                stats::autocorrelation_naive(prime, 500), 1e-9);

    // Periodic signal: the Figure 2 shape.
    std::vector<double> periodic(1000);
    for (std::size_t t = 0; t < periodic.size(); ++t) {
        periodic[t] =
            std::sin(2.0 * std::numbers::pi * static_cast<double>(t) / 89.0);
    }
    expect_near(stats::autocorrelation(periodic, 200),
                stats::autocorrelation_naive(periodic, 200), 1e-9);
}

TEST(SpectralEquivalence, AutocorrelationMaxLagZeroReturnsUnity) {
    const auto x = random_series(32, 5);
    const auto fast = stats::autocorrelation(x, 0);
    const auto naive = stats::autocorrelation_naive(x, 0);
    ASSERT_EQ(fast.size(), 1U);
    EXPECT_EQ(fast[0], 1.0);
    ASSERT_EQ(naive.size(), 1U);
    EXPECT_EQ(naive[0], 1.0);
}

TEST(SpectralEquivalence, NearConstantSeriesHitsVarianceGuardInBoth) {
    // Huge mean, sub-epsilon ripple: the variance sum is pure rounding
    // noise. Both implementations must report the degenerate answer
    // instead of amplifying garbage.
    std::vector<double> x(128, 1e9);
    for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] += (i % 2 == 0) ? 1e-8 : -1e-8;
    }
    const auto fast = stats::autocorrelation(x, 16);
    const auto naive = stats::autocorrelation_naive(x, 16);
    ASSERT_EQ(fast.size(), 17U);
    EXPECT_EQ(fast[0], 1.0);
    for (std::size_t k = 1; k < fast.size(); ++k) {
        EXPECT_EQ(fast[k], 0.0) << "lag " << k;
    }
    expect_near(fast, naive, 0.0);
}

// ------------------------------------------ periodogram FFT-vs-naive

TEST(SpectralEquivalence, PeriodogramMatchesNaiveOnRandomSeries) {
    for (const std::size_t n : {16U, 100U, 999U, 1024U}) {
        const auto x = random_series(n, 2000 + n);
        expect_near(stats::periodogram(x), stats::periodogram_naive(x), 1e-9);
    }
}

TEST(SpectralEquivalence, PeriodogramMatchesNaiveOnPathologicalSeries) {
    const std::vector<double> constant(50, -2.0);
    expect_near(stats::periodogram(constant), stats::periodogram_naive(constant),
                1e-12);

    std::vector<double> impulse(64, 0.0);
    impulse[0] = 10.0;
    expect_near(stats::periodogram(impulse), stats::periodogram_naive(impulse),
                1e-9);

    const auto prime = random_series(1009, 314);
    expect_near(stats::periodogram(prime), stats::periodogram_naive(prime), 1e-9);
}

TEST(SpectralEquivalence, DominantFrequencyFindsThePlantedPeriod) {
    // The paper's setting: ~90-sample period in a 1000-sample series.
    std::vector<double> x(1000);
    rng::Xoshiro256ss gen{42};
    for (std::size_t t = 0; t < x.size(); ++t) {
        x[t] = std::sin(2.0 * std::numbers::pi * static_cast<double>(t) / 89.0) +
               0.1 * rng::uniform_real(gen, -1.0, 1.0);
    }
    const auto best = stats::dominant_frequency(x, 0.005, 0.5);
    EXPECT_NEAR(best.period, 89.0, 3.0);
    const auto lag = stats::dominant_lag(x, 50, 150);
    EXPECT_NEAR(static_cast<double>(lag.lag), 89.0, 2.0);
}

} // namespace
