// Tests for the TCP window-synchronization study (paper Section 1 example).
#include <gtest/gtest.h>

#include "tcpsync/tcpsync.hpp"

namespace {

using namespace routesync;
using namespace routesync::tcpsync;
using sim::SimTime;
using namespace sim::literals;

// ------------------------------------------------------------ bottleneck

TEST(Bottleneck, ServesAtConfiguredRate) {
    sim::Engine engine;
    BottleneckConfig cfg;
    cfg.rate_pps = 10.0; // 100 ms per packet
    Bottleneck b{engine, cfg};
    std::vector<double> deliveries;
    b.on_delivered = [&](const FlowPacket&) {
        deliveries.push_back(engine.now().sec());
    };
    for (int i = 0; i < 3; ++i) {
        FlowPacket p;
        p.flow = 0;
        p.seq = static_cast<std::uint64_t>(i);
        b.enqueue(p);
    }
    engine.run();
    ASSERT_EQ(deliveries.size(), 3U);
    EXPECT_NEAR(deliveries[0], 0.1, 1e-9);
    EXPECT_NEAR(deliveries[1], 0.2, 1e-9);
    EXPECT_NEAR(deliveries[2], 0.3, 1e-9);
}

TEST(Bottleneck, FifoOrderPreserved) {
    sim::Engine engine;
    BottleneckConfig cfg;
    cfg.rate_pps = 100.0;
    Bottleneck b{engine, cfg};
    std::vector<std::uint64_t> seqs;
    b.on_delivered = [&](const FlowPacket& p) { seqs.push_back(p.seq); };
    for (std::uint64_t i = 0; i < 10; ++i) {
        FlowPacket p;
        p.flow = 0;
        p.seq = i;
        b.enqueue(p);
    }
    engine.run();
    for (std::uint64_t i = 0; i < 10; ++i) {
        EXPECT_EQ(seqs[i], i);
    }
}

TEST(Bottleneck, DropTailDropsTheArrival) {
    sim::Engine engine;
    BottleneckConfig cfg;
    cfg.rate_pps = 1.0;
    cfg.buffer_packets = 2;
    Bottleneck b{engine, cfg};
    std::vector<std::uint64_t> dropped;
    b.on_dropped = [&](const FlowPacket& p) { dropped.push_back(p.seq); };
    for (std::uint64_t i = 0; i < 4; ++i) {
        FlowPacket p;
        p.flow = 0;
        p.seq = i;
        b.enqueue(p);
    }
    // seq 0,1 admitted; 2 and 3 overflow (tail drop = the newest packets).
    ASSERT_EQ(dropped.size(), 2U);
    EXPECT_EQ(dropped[0], 2U);
    EXPECT_EQ(dropped[1], 3U);
    EXPECT_EQ(b.stats().dropped, 2U);
}

TEST(Bottleneck, RandomDropEvictsQueuedPacketAndAdmitsArrival) {
    sim::Engine engine;
    BottleneckConfig cfg;
    cfg.rate_pps = 1.0;
    cfg.buffer_packets = 4;
    cfg.policy = DropPolicy::RandomDrop;
    cfg.seed = 5;
    Bottleneck b{engine, cfg};
    std::vector<std::uint64_t> dropped;
    b.on_dropped = [&](const FlowPacket& p) { dropped.push_back(p.seq); };
    for (std::uint64_t i = 0; i < 5; ++i) {
        FlowPacket p;
        p.flow = 0;
        p.seq = i;
        b.enqueue(p);
    }
    // One eviction; the victim is already queued — but never seq 0, which
    // is in service (on the wire) when the overflow happens.
    ASSERT_EQ(dropped.size(), 1U);
    EXPECT_GT(dropped[0], 0U);
    EXPECT_LT(dropped[0], 4U);
    EXPECT_EQ(b.queue_length(), 4U);
}

TEST(Bottleneck, RandomDropNeverEvictsTheInServicePacket) {
    // With a 1-packet buffer the only queued packet is always in service:
    // random-drop must fall back to dropping arrivals, and the in-flight
    // packet must still be delivered.
    sim::Engine engine;
    BottleneckConfig cfg;
    cfg.rate_pps = 1.0;
    cfg.buffer_packets = 1;
    cfg.policy = DropPolicy::RandomDrop;
    Bottleneck b{engine, cfg};
    std::vector<std::uint64_t> delivered;
    b.on_delivered = [&](const FlowPacket& p) { delivered.push_back(p.seq); };
    int drops = 0;
    b.on_dropped = [&](const FlowPacket&) { ++drops; };
    for (std::uint64_t i = 0; i < 3; ++i) {
        FlowPacket p;
        p.flow = 0;
        p.seq = i;
        b.enqueue(p);
    }
    engine.run();
    ASSERT_EQ(delivered.size(), 1U);
    EXPECT_EQ(delivered[0], 0U);
    EXPECT_EQ(drops, 2);
}

TEST(Bottleneck, RedDropsEarlyUnderSustainedLoad) {
    sim::Engine engine;
    BottleneckConfig cfg;
    cfg.rate_pps = 100.0;
    cfg.buffer_packets = 100;
    cfg.policy = DropPolicy::RedLike;
    cfg.red_min_frac = 0.1;
    cfg.red_max_frac = 0.5;
    cfg.red_p_max = 0.5;
    cfg.red_weight = 0.05;
    cfg.seed = 11;
    Bottleneck b{engine, cfg};
    int drops = 0;
    b.on_dropped = [&](const FlowPacket&) { ++drops; };
    // Offer 2x the service rate for 10 seconds; the queue never reaches
    // the hard limit but RED still sheds load.
    for (int i = 0; i < 2000; ++i) {
        engine.schedule_at(SimTime::seconds(i * 0.005), [&b] {
            FlowPacket p;
            p.flow = 0;
            b.enqueue(p);
        });
    }
    engine.run();
    EXPECT_GT(drops, 100);
    EXPECT_LT(b.stats().max_queue, 100.0);
}

TEST(Bottleneck, RejectsBadConfig) {
    sim::Engine engine;
    BottleneckConfig bad;
    bad.rate_pps = 0.0;
    EXPECT_THROW(Bottleneck(engine, bad), std::invalid_argument);
    bad = BottleneckConfig{};
    bad.buffer_packets = 0;
    EXPECT_THROW(Bottleneck(engine, bad), std::invalid_argument);
}

// -------------------------------------------------------------- AimdFlow

TEST(AimdFlow, GrowsToMaxWithoutLosses) {
    sim::Engine engine;
    BottleneckConfig cfg;
    cfg.rate_pps = 10000.0; // effectively uncongested
    cfg.buffer_packets = 10000;
    Bottleneck b{engine, cfg};
    FlowConfig fc;
    fc.rtt_sec = 0.1;
    fc.max_window = 32.0;
    fc.stop_at = 60_sec;
    AimdFlow flow{engine, b, fc};
    b.on_delivered = [&flow](const FlowPacket& p) { flow.packet_delivered(p); };
    b.on_dropped = [&flow](const FlowPacket& p) { flow.packet_dropped(p); };
    flow.start(SimTime::zero());
    engine.run_until(61_sec);
    EXPECT_DOUBLE_EQ(flow.window(), 32.0);
    EXPECT_TRUE(flow.halvings().empty());
    EXPECT_EQ(flow.packets_acked(), flow.packets_sent());
}

TEST(AimdFlow, HalvesOnLossAtMostOncePerRtt) {
    sim::Engine engine;
    BottleneckConfig cfg;
    cfg.rate_pps = 10000.0;
    cfg.buffer_packets = 10000;
    Bottleneck b{engine, cfg};
    FlowConfig fc;
    fc.rtt_sec = 0.1;
    fc.initial_window = 16.0;
    AimdFlow flow{engine, b, fc};
    // Simulate three drops within one RTT: only one halving.
    FlowPacket p;
    p.flow = 0;
    engine.schedule_at(1_sec, [&] {
        flow.packet_dropped(p);
        flow.packet_dropped(p);
        flow.packet_dropped(p);
    });
    engine.run();
    ASSERT_EQ(flow.halvings().size(), 1U);
    EXPECT_DOUBLE_EQ(flow.window(), 8.0);
    EXPECT_NEAR(flow.halvings()[0].time_sec, 1.1, 1e-9); // detected +1 RTT
}

TEST(AimdFlow, WindowNeverFallsBelowOne) {
    sim::Engine engine;
    BottleneckConfig cfg;
    Bottleneck b{engine, cfg};
    FlowConfig fc;
    fc.rtt_sec = 0.1;
    fc.initial_window = 1.5;
    AimdFlow flow{engine, b, fc};
    FlowPacket p;
    for (int i = 0; i < 5; ++i) {
        engine.schedule_at(SimTime::seconds(1.0 + i), [&] { flow.packet_dropped(p); });
    }
    engine.run();
    EXPECT_GE(flow.window(), 1.0);
}

TEST(AimdFlow, RejectsBadConfig) {
    sim::Engine engine;
    Bottleneck b{engine, BottleneckConfig{}};
    FlowConfig bad;
    bad.rtt_sec = 0.0;
    EXPECT_THROW(AimdFlow(engine, b, bad), std::invalid_argument);
    bad = FlowConfig{};
    bad.initial_window = 0.5;
    EXPECT_THROW(AimdFlow(engine, b, bad), std::invalid_argument);
}

// ------------------------------------------------------------ experiment

TEST(TcpExperiment, DropTailSynchronizesBackoffs) {
    TcpExperimentConfig c;
    c.flows = 6;
    c.duration_sec = 200.0;
    c.bottleneck.policy = DropPolicy::DropTail;
    c.bottleneck.rate_pps = 1000.0;
    c.bottleneck.buffer_packets = 150;
    const auto r = run_tcp_experiment(c);
    EXPECT_GT(r.total_halvings, 100U);
    EXPECT_EQ(r.largest_halving_cluster, 6);
    EXPECT_GT(r.mean_flows_per_episode, 4.0);
    EXPECT_GT(r.link_utilization, 0.9);
}

TEST(TcpExperiment, RandomizedGatewayReducesSynchronization) {
    TcpExperimentConfig base;
    base.flows = 6;
    base.duration_sec = 200.0;
    base.bottleneck.rate_pps = 1000.0;
    base.bottleneck.buffer_packets = 150;
    base.bottleneck.red_min_frac = 0.1;
    base.bottleneck.red_max_frac = 0.6;
    base.bottleneck.red_p_max = 0.03;
    base.bottleneck.red_weight = 0.002;

    TcpExperimentConfig droptail = base;
    droptail.bottleneck.policy = DropPolicy::DropTail;
    TcpExperimentConfig red = base;
    red.bottleneck.policy = DropPolicy::RedLike;

    const auto a = run_tcp_experiment(droptail);
    const auto b = run_tcp_experiment(red);
    EXPECT_LT(b.mean_flows_per_episode, a.mean_flows_per_episode);
    EXPECT_LT(b.sync_index, a.sync_index);
}

TEST(TcpExperiment, Deterministic) {
    TcpExperimentConfig c;
    c.flows = 4;
    c.duration_sec = 50.0;
    const auto a = run_tcp_experiment(c);
    const auto b = run_tcp_experiment(c);
    EXPECT_EQ(a.total_halvings, b.total_halvings);
    EXPECT_DOUBLE_EQ(a.sync_index, b.sync_index);
    EXPECT_EQ(a.aggregate_window_series, b.aggregate_window_series);
}

TEST(TcpExperiment, UtilizationAndDropsAreSane) {
    TcpExperimentConfig c;
    c.flows = 6;
    c.duration_sec = 100.0;
    const auto r = run_tcp_experiment(c);
    EXPECT_GT(r.link_utilization, 0.5);
    EXPECT_LE(r.link_utilization, 1.0 + 1e-9);
    EXPECT_GT(r.drop_fraction, 0.0);
    EXPECT_LT(r.drop_fraction, 0.2);
    EXPECT_GE(r.mean_window, 1.0);
}

} // namespace
