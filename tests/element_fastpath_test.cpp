// Randomized fast-vs-virtual differential for the element-graph packet
// path. DispatchMode::Fast (the default since the devirtualization) must
// be bit-identical to DispatchMode::Virtual in every observable: the
// delivered packet stream (ids, order, timestamps), every elem.* counter,
// and the trace event stream (compared as a 64-bit FNV digest, which
// covers event types, times, sequence numbers, and payload slots). Only
// engine event counts may differ — the fast paths exist precisely to
// schedule fewer events — so events_processed() is deliberately NOT
// compared.
//
// The generator sweeps the regimes where the fast paths branch: infinite
// vs finite link rate (the coalesced drain cascade), drop-tail vs RED
// (the devirtualized queue thunks and the RED lottery), tiny queues
// (overflow drops), carrier flaps (down-drops mid-run), multi-hop chains
// (batched handoff), and CSMA/CD LANs (the fused broadcast fan-out).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "net/elements/elements.hpp"
#include "net/link.hpp"
#include "net/shared_lan.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "obs/tracer.hpp"
#include "sim/engine.hpp"

namespace {

using namespace routesync;
using namespace routesync::net;
using namespace routesync::net::elements;

/// Everything one run exposes; Fast and Virtual records must be equal.
struct RunRecord {
    std::vector<std::string> deliveries;
    std::string metrics_json;
    std::uint64_t trace_digest = 0;
    std::uint64_t trace_events = 0;

    bool operator==(const RunRecord&) const = default;
};

struct LinkCase {
    int hops = 1;              // links chained back to back
    double rate_bps = 0.0;     // 0 = infinite rate (the drain-cascade regime)
    double delay_ms = 1.0;
    std::size_t queue_packets = 4;
    QueueDisc disc = QueueDisc::DropTail;
    int packets = 50;
    std::uint32_t max_bytes = 1000;
    double window_ms = 50.0;  // send times drawn from [0, window)
    bool carrier_flap = false; // first hop drops carrier mid-window
    std::uint64_t seed = 1;    // send-schedule generator
};

RunRecord run_link_case(const LinkCase& c, DispatchMode mode) {
    sim::Engine engine;
    obs::HashingSink sink;
    obs::Tracer tracer{sink};
    engine.set_tracer(&tracer);

    RunRecord rec;
    std::vector<std::unique_ptr<Link>> links(static_cast<std::size_t>(c.hops));
    LinkConfig cfg;
    cfg.rate_bps = c.rate_bps;
    cfg.delay = sim::SimTime::millis(c.delay_ms);
    cfg.queue_packets = c.queue_packets;
    cfg.queue_disc = c.disc;
    cfg.red = RedTuning{/*min_th=*/static_cast<double>(c.queue_packets) * 0.25,
                        /*max_th=*/static_cast<double>(c.queue_packets) * 0.75,
                        /*max_p=*/0.3, /*weight=*/0.3, /*seed=*/7};
    cfg.dispatch = mode;
    // Build back to front so each link forwards into the next.
    for (int h = c.hops - 1; h >= 0; --h) {
        if (h == c.hops - 1) {
            links[static_cast<std::size_t>(h)] = std::make_unique<Link>(
                engine, cfg, [&rec, &engine](PooledPacket p) {
                    rec.deliveries.push_back(std::to_string(p->seq) + "@" +
                                             std::to_string(engine.now().sec()));
                });
        } else {
            Link* next = links[static_cast<std::size_t>(h) + 1].get();
            links[static_cast<std::size_t>(h)] = std::make_unique<Link>(
                engine, cfg,
                [next](PooledPacket p) { next->send(std::move(p)); });
        }
    }

    // The send schedule is a pure function of the case seed, so Fast and
    // Virtual runs offer the identical workload.
    std::mt19937_64 rng{c.seed};
    std::uniform_real_distribution<double> when{0.0, c.window_ms};
    std::uniform_int_distribution<std::uint32_t> bytes{40, c.max_bytes};
    for (int i = 0; i < c.packets; ++i) {
        Packet p;
        p.src = 0;
        p.dst = 1;
        p.seq = static_cast<std::uint64_t>(i);
        p.size_bytes = bytes(rng);
        const double at_ms = when(rng);
        engine.schedule_at(sim::SimTime::millis(at_ms),
                           [&links, p = std::move(p)]() mutable {
                               links.front()->send(std::move(p));
                           });
    }
    if (c.carrier_flap) {
        engine.schedule_at(sim::SimTime::millis(c.window_ms * 0.3),
                           [&links] { links.front()->set_up(false); });
        engine.schedule_at(sim::SimTime::millis(c.window_ms * 0.6),
                           [&links] { links.front()->set_up(true); });
    }
    engine.run();

    obs::MetricsRegistry reg;
    for (std::size_t h = 0; h < links.size(); ++h) {
        links[h]->graph().collect_metrics(reg, "elem.hop" + std::to_string(h));
    }
    rec.metrics_json = reg.snapshot().to_json();
    rec.trace_digest = sink.digest();
    rec.trace_events = sink.events_seen();
    return rec;
}

struct LanCase {
    int stations = 3;
    std::size_t queue_packets = 4;
    QueueDisc disc = QueueDisc::DropTail;
    int frames = 60;
    std::uint32_t max_bytes = 1000;
    double window_ms = 20.0;
    std::uint64_t seed = 1;
};

RunRecord run_lan_case(const LanCase& c, DispatchMode mode) {
    sim::Engine engine;
    obs::HashingSink sink;
    obs::Tracer tracer{sink};
    engine.set_tracer(&tracer);

    SharedLanConfig cfg;
    cfg.rate_bps = 1e6;
    cfg.station_queue_packets = c.queue_packets;
    cfg.queue_disc = c.disc;
    cfg.red = RedTuning{/*min_th=*/static_cast<double>(c.queue_packets) * 0.25,
                        /*max_th=*/static_cast<double>(c.queue_packets) * 0.75,
                        /*max_p=*/0.3, /*weight=*/0.3, /*seed=*/5};
    cfg.seed = c.seed + 1;
    cfg.dispatch = mode;
    SharedLan lan{engine, cfg};

    RunRecord rec;
    for (int s = 0; s < c.stations; ++s) {
        (void)lan.attach([&rec, &engine, s](const Packet& p) {
            rec.deliveries.push_back(std::to_string(s) + ":" +
                                     std::to_string(p.seq) + "@" +
                                     std::to_string(engine.now().sec()));
        });
    }

    std::mt19937_64 rng{c.seed};
    std::uniform_real_distribution<double> when{0.0, c.window_ms};
    std::uniform_int_distribution<int> which{0, c.stations - 1};
    std::uniform_int_distribution<std::uint32_t> bytes{64, c.max_bytes};
    for (int i = 0; i < c.frames; ++i) {
        Packet p;
        p.type = PacketType::Data;
        p.src = which(rng);
        p.dst = -1;
        p.seq = static_cast<std::uint64_t>(i);
        p.size_bytes = bytes(rng);
        const double at_ms = when(rng);
        const int station = p.src;
        engine.schedule_at(sim::SimTime::millis(at_ms),
                           [&lan, station, p = std::move(p)]() mutable {
                               lan.send(station, std::move(p));
                           });
    }
    engine.run();

    obs::MetricsRegistry reg;
    lan.graph().collect_metrics(reg, "elem.lan");
    rec.metrics_json = reg.snapshot().to_json();
    rec.trace_digest = sink.digest();
    rec.trace_events = sink.events_seen();
    return rec;
}

// ---- the differential ---------------------------------------------------

TEST(ElementFastPath, RandomizedLinkConfigsMatchVirtual) {
    std::mt19937_64 gen{20260808};
    int checked = 0;
    for (int i = 0; i < 80; ++i) {
        LinkCase c;
        c.hops = 1 + static_cast<int>(gen() % 3);
        c.rate_bps = (gen() % 2 == 0)
                         ? 0.0
                         : 5e5 + static_cast<double>(gen() % 5000000);
        c.delay_ms = 0.1 + static_cast<double>(gen() % 20) / 10.0;
        c.queue_packets = 2 + gen() % 8; // small: overflow happens
        c.disc = (gen() % 2 == 0) ? QueueDisc::DropTail : QueueDisc::Red;
        c.packets = 30 + static_cast<int>(gen() % 90);
        c.max_bytes = 200 + static_cast<std::uint32_t>(gen() % 1300);
        c.window_ms = 10.0 + static_cast<double>(gen() % 80);
        c.carrier_flap = gen() % 3 == 0;
        c.seed = gen();

        const RunRecord fast = run_link_case(c, DispatchMode::Fast);
        const RunRecord virt = run_link_case(c, DispatchMode::Virtual);
        ASSERT_EQ(fast, virt)
            << "link case " << i << ": hops=" << c.hops
            << " rate=" << c.rate_bps << " queue=" << c.queue_packets
            << " disc=" << (c.disc == QueueDisc::Red ? "red" : "droptail")
            << " flap=" << c.carrier_flap << " seed=" << c.seed;
        EXPECT_GT(fast.trace_events, 0U);
        ++checked;
    }
    EXPECT_EQ(checked, 80);
}

TEST(ElementFastPath, RandomizedLanConfigsMatchVirtual) {
    std::mt19937_64 gen{997};
    int checked = 0;
    for (int i = 0; i < 40; ++i) {
        LanCase c;
        c.stations = 2 + static_cast<int>(gen() % 4);
        c.queue_packets = 2 + gen() % 6;
        c.disc = (gen() % 2 == 0) ? QueueDisc::DropTail : QueueDisc::Red;
        c.frames = 30 + static_cast<int>(gen() % 80);
        c.max_bytes = 200 + static_cast<std::uint32_t>(gen() % 1300);
        c.window_ms = 5.0 + static_cast<double>(gen() % 40);
        c.seed = gen();

        const RunRecord fast = run_lan_case(c, DispatchMode::Fast);
        const RunRecord virt = run_lan_case(c, DispatchMode::Virtual);
        ASSERT_EQ(fast, virt)
            << "lan case " << i << ": stations=" << c.stations
            << " queue=" << c.queue_packets
            << " disc=" << (c.disc == QueueDisc::Red ? "red" : "droptail")
            << " seed=" << c.seed;
        EXPECT_GT(fast.trace_events, 0U);
        ++checked;
    }
    EXPECT_EQ(checked, 40);
}

// The empty-trace digest is the FNV offset basis and events fold
// deterministically — the sink the differentials above lean on.
TEST(ElementFastPath, HashingSinkIsDeterministic) {
    obs::HashingSink a;
    obs::HashingSink b;
    EXPECT_EQ(a.digest(), b.digest());
    obs::TraceEvent e;
    e.seq = 3;
    e.time = sim::SimTime::seconds(1.5);
    e.type = obs::TraceEventType::PacketDeliver;
    e.node = 2;
    e.a = 42;
    e.b = 100.0;
    a.on_event(e);
    EXPECT_NE(a.digest(), b.digest());
    b.on_event(e);
    EXPECT_EQ(a.digest(), b.digest());
    EXPECT_EQ(a.events_seen(), 1U);
}

} // namespace
