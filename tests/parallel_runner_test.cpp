// Tests for routesync::parallel — the fork-join primitives and the
// deterministic TrialRunner. The headline property (and ISSUE-level
// acceptance criterion): running the same sweep with jobs=1 and jobs=4
// yields identical ExperimentResult fields for every trial.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/core.hpp"
#include "markov/markov.hpp"
#include "parallel/parallel.hpp"

using namespace routesync;
using parallel::TrialRunner;
using parallel::TrialRunnerOptions;

namespace {

/// A small but heterogeneous sweep: both start conditions, several seeds,
/// a couple of Tr settings — enough to exercise different stop paths.
std::vector<core::ExperimentConfig> sweep_configs() {
    std::vector<core::ExperimentConfig> configs;
    for (const double factor : {0.8, 1.2}) {
        for (int seed = 1; seed <= 2; ++seed) {
            core::ExperimentConfig cfg;
            cfg.params.n = 10;
            cfg.params.tp = sim::SimTime::seconds(121);
            cfg.params.tc = sim::SimTime::seconds(0.11);
            cfg.params.tr = sim::SimTime::seconds(factor * 0.11);
            cfg.params.seed = parallel::derive_seed(7, static_cast<std::uint64_t>(seed));
            cfg.max_time = sim::SimTime::seconds(5e4);
            cfg.record_cluster_events = true;
            cfg.record_rounds = true;
            configs.push_back(cfg);
        }
    }
    for (int seed = 1; seed <= 2; ++seed) {
        core::ExperimentConfig cfg;
        cfg.params.n = 10;
        cfg.params.tp = sim::SimTime::seconds(121);
        cfg.params.tc = sim::SimTime::seconds(0.11);
        cfg.params.tr = sim::SimTime::seconds(0.3);
        cfg.params.start = core::StartCondition::Synchronized;
        cfg.params.seed = parallel::derive_seed(11, static_cast<std::uint64_t>(seed));
        cfg.max_time = sim::SimTime::seconds(5e4);
        cfg.stop_on_breakup_threshold = 1;
        cfg.record_cluster_events = true;
        configs.push_back(cfg);
    }
    return configs;
}

void expect_identical(const core::ExperimentResult& a, const core::ExperimentResult& b) {
    EXPECT_EQ(a.full_sync_time_sec, b.full_sync_time_sec);
    EXPECT_EQ(a.breakup_time_sec, b.breakup_time_sec);
    EXPECT_EQ(a.total_transmissions, b.total_transmissions);
    EXPECT_EQ(a.events_processed, b.events_processed);
    EXPECT_EQ(a.rounds_closed, b.rounds_closed);
    EXPECT_EQ(a.rounds_unsynchronized, b.rounds_unsynchronized);
    EXPECT_EQ(a.end_time_sec, b.end_time_sec);
    ASSERT_EQ(a.cluster_events.size(), b.cluster_events.size());
    for (std::size_t i = 0; i < a.cluster_events.size(); ++i) {
        EXPECT_EQ(a.cluster_events[i].time.sec(), b.cluster_events[i].time.sec());
        EXPECT_EQ(a.cluster_events[i].size, b.cluster_events[i].size);
    }
    ASSERT_EQ(a.rounds.size(), b.rounds.size());
    for (std::size_t i = 0; i < a.rounds.size(); ++i) {
        EXPECT_EQ(a.rounds[i].end_time.sec(), b.rounds[i].end_time.sec());
        EXPECT_EQ(a.rounds[i].largest, b.rounds[i].largest);
    }
    ASSERT_EQ(a.first_hit_up.size(), b.first_hit_up.size());
    for (std::size_t i = 0; i < a.first_hit_up.size(); ++i) {
        EXPECT_EQ(a.first_hit_up[i], b.first_hit_up[i]);
    }
}

TEST(TrialRunner, Jobs4MatchesJobs1Exactly) {
    const auto configs = sweep_configs();
    const auto serial = TrialRunner{{.jobs = 1}}.run_all(configs);
    const auto parallel4 = TrialRunner{{.jobs = 4}}.run_all(configs);
    ASSERT_EQ(serial.size(), configs.size());
    ASSERT_EQ(parallel4.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        SCOPED_TRACE("trial " + std::to_string(i));
        expect_identical(serial[i], parallel4[i]);
    }
}

TEST(TrialRunner, RunAllMatchesDirectRunExperiment) {
    const auto configs = sweep_configs();
    const auto results = TrialRunner{{.jobs = 3}}.run_all(configs);
    // Submission order: result i is exactly run_experiment(configs[i]).
    for (std::size_t i = 0; i < configs.size(); ++i) {
        SCOPED_TRACE("trial " + std::to_string(i));
        expect_identical(results[i], core::run_experiment(configs[i]));
    }
}

TEST(TrialRunner, GeneratorFormMatchesMaterializedConfigs) {
    const auto configs = sweep_configs();
    const auto from_vector = TrialRunner{{.jobs = 1}}.run_all(configs);
    const auto generated = TrialRunner{{.jobs = 4}}.run_generated(
        configs.size(), [&](std::size_t i) { return configs[i]; });
    ASSERT_EQ(generated.size(), from_vector.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        SCOPED_TRACE("trial " + std::to_string(i));
        expect_identical(from_vector[i], generated[i]);
    }
}

TEST(TrialRunner, JobsZeroMeansHardwareConcurrency) {
    EXPECT_EQ(TrialRunner{}.jobs(), parallel::hardware_jobs());
    EXPECT_EQ((TrialRunner{TrialRunnerOptions{.jobs = 0}}.jobs()),
              parallel::hardware_jobs());
    EXPECT_EQ((TrialRunner{TrialRunnerOptions{.jobs = 3}}.jobs()), 3u);
    EXPECT_GE(parallel::hardware_jobs(), 1u);
}

TEST(TrialRunner, EmptyConfigListYieldsEmptyResults) {
    EXPECT_TRUE(TrialRunner{{.jobs = 4}}.run_all({}).empty());
}

TEST(DeriveSeed, IsPureAndWellSpread) {
    // Pure function of (base, index)...
    EXPECT_EQ(parallel::derive_seed(1, 0), parallel::derive_seed(1, 0));
    // ...distinct across indices and bases (collisions in a 64-bit mix
    // over a few hundred probes would indicate a broken derivation).
    std::set<std::uint64_t> seen;
    for (std::uint64_t base : {0ULL, 1ULL, 0xdeadbeefULL}) {
        for (std::uint64_t i = 0; i < 100; ++i) {
            seen.insert(parallel::derive_seed(base, i));
        }
    }
    EXPECT_EQ(seen.size(), 300u);
    // Never the degenerate all-zeros seed for the common bases.
    EXPECT_NE(parallel::derive_seed(0, 0), 0u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
    std::vector<std::atomic<int>> hits(257);
    parallel::for_index(hits.size(), 4, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ParallelFor, MapIndexPreservesIndexOrder) {
    const auto out = parallel::map_index<std::size_t>(
        1000, 8, [](std::size_t i) { return i * 2; });
    ASSERT_EQ(out.size(), 1000u);
    for (std::size_t i = 0; i < out.size(); ++i) {
        ASSERT_EQ(out[i], i * 2);
    }
}

TEST(ParallelFor, PropagatesTaskExceptions) {
    EXPECT_THROW(parallel::for_index(100, 4,
                                     [](std::size_t i) {
                                         if (i == 57) {
                                             throw std::runtime_error{"boom"};
                                         }
                                     }),
                 std::runtime_error);
}

TEST(ParallelFor, ZeroCountAndInlinePathsWork) {
    bool ran = false;
    parallel::for_index(0, 4, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
    std::vector<std::size_t> order;
    parallel::for_index(5, 1, [&](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(F2Estimator, ParallelJobsMatchSerial) {
    markov::ChainParams p;
    p.n = 10;
    p.tp_sec = 121.0;
    p.tr_sec = 0.1;
    p.tc_sec = 0.11;
    const auto serial = markov::estimate_f2(p, 4, 1, 500.0, 1);
    const auto threaded = markov::estimate_f2(p, 4, 1, 500.0, 4);
    EXPECT_EQ(serial.mean_rounds, threaded.mean_rounds);
    EXPECT_EQ(serial.mean_seconds, threaded.mean_seconds);
    EXPECT_EQ(serial.completed, threaded.completed);
    EXPECT_EQ(serial.censored, threaded.censored);
}

} // namespace
