// Tests for the Periodic Messages model — the paper's Section 3 mechanics.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/core.hpp"

namespace {

using namespace routesync;
using core::ModelParams;
using core::PeriodicMessagesModel;
using core::StartCondition;
using sim::SimTime;
using namespace sim::literals;

ModelParams canonical() {
    ModelParams p;
    p.n = 20;
    p.tp = 121_sec;
    p.tr = 0.11_sec;
    p.tc = 0.11_sec;
    return p;
}

// ------------------------------------------------- deterministic two-node

// The paper's Figure 5 narrative, replayed exactly: node B's timer expires
// while node A is transmitting; both reset their timers at t + 2*Tc and
// form a cluster.
TEST(PeriodicMessages, TwoNodeClusterFormsAtTPlus2Tc) {
    sim::Engine engine;
    ModelParams p = canonical();
    p.n = 2;
    p.tc = 0.11_sec;
    p.initial_phases = {10.0, 10.05}; // B fires 50 ms into A's busy period
    auto policy = std::make_unique<core::FixedInterval>(121_sec);
    PeriodicMessagesModel model{engine, p, std::move(policy)};

    std::vector<std::pair<int, double>> sets;
    model.on_timer_set = [&](int node, SimTime t) {
        sets.emplace_back(node, t.sec());
    };
    engine.run_until(50_sec);

    ASSERT_EQ(sets.size(), 2U);
    // Both reset at 10 + 2*Tc = 10.22, at the identical instant.
    EXPECT_NEAR(sets[0].second, 10.22, 1e-9);
    EXPECT_DOUBLE_EQ(sets[0].second, sets[1].second);
}

TEST(PeriodicMessages, TwoDistantNodesStayIndependent) {
    sim::Engine engine;
    ModelParams p = canonical();
    p.n = 2;
    p.initial_phases = {10.0, 50.0};
    auto policy = std::make_unique<core::FixedInterval>(121_sec);
    PeriodicMessagesModel model{engine, p, std::move(policy)};

    std::vector<std::pair<int, double>> sets;
    model.on_timer_set = [&](int node, SimTime t) {
        sets.emplace_back(node, t.sec());
    };
    engine.run_until(60_sec);

    ASSERT_EQ(sets.size(), 2U);
    // Each resets Tc after its own expiry; no interaction.
    EXPECT_NEAR(sets[0].second, 10.11, 1e-9);
    EXPECT_NEAR(sets[1].second, 50.11, 1e-9);
}

// A node that receives a message while idle processes it *without*
// resetting its timer (model step 4).
TEST(PeriodicMessages, IdleProcessingDoesNotResetTimer) {
    sim::Engine engine;
    ModelParams p = canonical();
    p.n = 2;
    p.initial_phases = {10.0, 30.0};
    auto policy = std::make_unique<core::FixedInterval>(100_sec);
    PeriodicMessagesModel model{engine, p, std::move(policy)};

    std::vector<std::pair<int, double>> tx;
    model.on_transmit = [&](int node, SimTime t) { tx.emplace_back(node, t.sec()); };
    engine.run_until(250_sec);

    // Node 1 transmits at 30 and then 130.11 + ... : its timer was set at
    // 30.11 regardless of having processed node 0's message at t=10.
    ASSERT_GE(tx.size(), 4U);
    EXPECT_NEAR(tx[0].second, 10.0, 1e-9);  // node 0
    EXPECT_NEAR(tx[1].second, 30.0, 1e-9);  // node 1
    EXPECT_NEAR(tx[2].second, 110.11, 1e-9); // node 0: 10 + Tc + 100
    EXPECT_NEAR(tx[3].second, 130.11, 1e-9); // node 1: 30 + Tc + 100
}

// Once synchronized with zero jitter, the cluster round length becomes
// Tp + N*Tc (the paper: "each router has a busy period of 20 x Tc seconds
// rather than of Tc seconds").
TEST(PeriodicMessages, SynchronizedClusterPeriodIsTpPlusNTc) {
    sim::Engine engine;
    ModelParams p = canonical();
    p.n = 20;
    p.start = StartCondition::Synchronized;
    auto policy = std::make_unique<core::FixedInterval>(121_sec);
    PeriodicMessagesModel model{engine, p, std::move(policy)};

    std::vector<double> node0_tx;
    model.on_transmit = [&](int node, SimTime t) {
        if (node == 0) {
            node0_tx.push_back(t.sec());
        }
    };
    engine.run_until(1000_sec);

    ASSERT_GE(node0_tx.size(), 3U);
    const double period = node0_tx[1] - node0_tx[0];
    EXPECT_NEAR(period, 121.0 + 20 * 0.11, 1e-9);
    EXPECT_NEAR(node0_tx[2] - node0_tx[1], period, 1e-9);
}

// --------------------------------------------------------- invariants

class SeededModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeededModel, TransmitGapsRespectTimerBounds) {
    sim::Engine engine;
    ModelParams p = canonical();
    p.n = 10;
    p.seed = GetParam();
    PeriodicMessagesModel model{engine, p};

    std::vector<std::vector<double>> tx(10);
    model.on_transmit = [&](int node, SimTime t) {
        tx[static_cast<std::size_t>(node)].push_back(t.sec());
    };
    engine.run_until(20000_sec);

    // Gap between consecutive transmissions of one node: at least
    // Tp - Tr + Tc (one busy period), at most Tp + Tr + N*Tc (cluster).
    for (const auto& series : tx) {
        ASSERT_GE(series.size(), 2U);
        for (std::size_t i = 1; i < series.size(); ++i) {
            const double gap = series[i] - series[i - 1];
            EXPECT_GE(gap, 121.0 - 0.11 + 0.11 - 1e-9);
            EXPECT_LE(gap, 121.0 + 0.11 + 10 * 0.11 + 1e-9);
        }
    }
}

TEST_P(SeededModel, EveryNodeKeepsTransmitting) {
    sim::Engine engine;
    ModelParams p = canonical();
    p.n = 8;
    p.seed = GetParam();
    PeriodicMessagesModel model{engine, p};
    engine.run_until(15000_sec);
    const auto expected_rounds = 15000.0 / (121.0 + 8 * 0.11);
    for (int i = 0; i < 8; ++i) {
        EXPECT_GE(model.node(i).transmissions,
                  static_cast<std::uint64_t>(expected_rounds * 0.9));
    }
}

TEST_P(SeededModel, DeterministicReplay) {
    auto run = [&](std::uint64_t seed) {
        sim::Engine engine;
        ModelParams p = canonical();
        p.n = 6;
        p.seed = seed;
        PeriodicMessagesModel model{engine, p};
        std::vector<double> times;
        model.on_transmit = [&](int, SimTime t) { times.push_back(t.sec()); };
        engine.run_until(5000_sec);
        return times;
    };
    const auto a = run(GetParam());
    const auto b = run(GetParam());
    EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededModel,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 77ULL, 1234ULL));

// -------------------------------------------------- behavioural regimes

// Tr < Tc/2: a synchronized network can never break up (paper Section 5:
// "if not, then a cluster never breaks up into smaller clusters").
TEST(PeriodicMessages, SyncWithTinyJitterNeverBreaks) {
    core::ExperimentConfig cfg;
    cfg.params = canonical();
    cfg.params.start = StartCondition::Synchronized;
    cfg.params.tr = 0.05_sec; // Tc/2 = 0.055
    cfg.params.seed = 9;
    cfg.max_time = 50000_sec;
    cfg.record_rounds = true;
    const auto r = core::run_experiment(cfg);
    ASSERT_GT(r.rounds_closed, 100U);
    for (const auto& round : r.rounds) {
        EXPECT_EQ(round.largest, 20);
    }
}

// Small Tr, unsynchronized start: the system synchronizes (Figure 4).
TEST(PeriodicMessages, UnsyncWithSmallJitterSynchronizes) {
    core::ExperimentConfig cfg;
    cfg.params = canonical();
    cfg.params.tr = 0.1_sec;
    cfg.params.seed = 42;
    cfg.max_time = 300000_sec;
    cfg.stop_on_full_sync = true;
    const auto r = core::run_experiment(cfg);
    ASSERT_TRUE(r.full_sync_time_sec.has_value());
    EXPECT_LT(*r.full_sync_time_sec, 300000.0);
}

// Large Tr, synchronized start: the system unsynchronizes (Figure 8).
TEST(PeriodicMessages, SyncWithLargeJitterBreaksUp) {
    core::ExperimentConfig cfg;
    cfg.params = canonical();
    cfg.params.start = StartCondition::Synchronized;
    cfg.params.tr = 1.1_sec; // 10 * Tc
    cfg.params.seed = 5;
    cfg.max_time = 200000_sec;
    cfg.stop_on_breakup_threshold = 1;
    const auto r = core::run_experiment(cfg);
    ASSERT_TRUE(r.breakup_time_sec.has_value());
    EXPECT_LT(*r.breakup_time_sec, 200000.0);
}

// Half-period jitter (the Section 6 recommendation) destroys
// synchronization almost immediately.
TEST(PeriodicMessages, HalfPeriodJitterBreaksSyncFast) {
    core::ExperimentConfig cfg;
    cfg.params = canonical();
    cfg.params.start = StartCondition::Synchronized;
    cfg.params.seed = 11;
    cfg.max_time = 100000_sec;
    cfg.stop_on_breakup_threshold = 2;
    cfg.make_policy = [] {
        return std::make_unique<core::HalfPeriodJitter>(121_sec);
    };
    const auto r = core::run_experiment(cfg);
    ASSERT_TRUE(r.breakup_time_sec.has_value());
    EXPECT_LT(*r.breakup_time_sec, 5000.0); // a few rounds
}

// Reset-at-expiry (RFC 1058 alternative): no coupling, so an
// unsynchronized system stays unsynchronized even with zero jitter...
TEST(PeriodicMessages, ResetAtExpiryNeverSynchronizes) {
    core::ExperimentConfig cfg;
    cfg.params = canonical();
    cfg.params.tr = SimTime::zero();
    cfg.params.reset_at_expiry = true;
    cfg.params.seed = 31;
    cfg.max_time = 100000_sec;
    cfg.record_rounds = true;
    const auto r = core::run_experiment(cfg);
    EXPECT_FALSE(r.full_sync_time_sec.has_value());
    for (const auto& round : r.rounds) {
        EXPECT_LE(round.largest, 3); // birthday coincidences only
    }
}

// ...but a synchronized system stays synchronized forever (the drawback
// the paper calls out: "there is no mechanism to break up synchronization
// if it does occur").
TEST(PeriodicMessages, ResetAtExpiryPreservesInitialSync) {
    core::ExperimentConfig cfg;
    cfg.params = canonical();
    cfg.params.start = StartCondition::Synchronized;
    cfg.params.tr = SimTime::zero();
    cfg.params.reset_at_expiry = true;
    cfg.params.seed = 31;
    cfg.max_time = 50000_sec;
    cfg.record_rounds = true;
    const auto r = core::run_experiment(cfg);
    ASSERT_GT(r.rounds_closed, 100U);
    for (const auto& round : r.rounds) {
        EXPECT_EQ(round.largest, 20);
    }
}

// ---------------------------------------------- Eq. 2's premises, measured

// The Markov chain's upward transition rests on two claims about cluster
// kinematics (paper Section 5.1). Both are measurable in the simulation.
//
// Claim 1: a cluster of i nodes has mean period
//          Tp - Tr*(i-1)/(i+1) + i*Tc.
class ClusterKinematics : public ::testing::TestWithParam<int> {};

TEST_P(ClusterKinematics, ClusterPeriodMatchesFormula) {
    const int i = GetParam();
    sim::Engine engine;
    ModelParams p;
    p.n = i; // the whole network is one cluster
    p.tp = 121_sec;
    p.tr = 0.05_sec; // below Tc/2: the cluster can never break
    p.tc = 0.11_sec;
    p.start = StartCondition::Synchronized;
    p.seed = 1000 + static_cast<std::uint64_t>(i);
    PeriodicMessagesModel model{engine, p};

    std::vector<double> resets;
    model.on_timer_set = [&](int node, SimTime t) {
        if (node == 0) {
            resets.push_back(t.sec());
        }
    };
    engine.run_until(SimTime::seconds(121.0 * 400));

    ASSERT_GE(resets.size(), 100U);
    double mean_period = (resets.back() - resets.front()) /
                         static_cast<double>(resets.size() - 1);
    const double predicted =
        121.0 - 0.05 * (i - 1) / (i + 1) + 0.11 * i;
    // Statistical tolerance: the per-round min-of-i draw has std
    // ~2*Tr/(i+1); with ~390 rounds the mean is tight.
    EXPECT_NEAR(mean_period, predicted, 0.01) << "i = " << i;
}

// Claim 2: relative to a lone node, the cluster's phase advances by
//          (i-1)*Tc - Tr*(i-1)/(i+1) per round.
TEST_P(ClusterKinematics, ClusterDriftMatchesFormula) {
    const int i = GetParam();
    if (i < 2) {
        GTEST_SKIP();
    }
    sim::Engine engine;
    ModelParams p;
    p.n = i + 1;
    p.tp = 121_sec;
    p.tr = 0.05_sec;
    p.tc = 0.11_sec;
    // Cluster at phase 0, the lone node 50 s later (far outside reach for
    // the measurement window).
    p.initial_phases.assign(static_cast<std::size_t>(i), 0.0);
    p.initial_phases.push_back(50.0);
    p.seed = 2000 + static_cast<std::uint64_t>(i);
    PeriodicMessagesModel model{engine, p};

    std::vector<double> cluster_resets;
    std::vector<double> lone_resets;
    model.on_timer_set = [&](int node, SimTime t) {
        if (node == 0) {
            cluster_resets.push_back(t.sec());
        } else if (node == i) {
            lone_resets.push_back(t.sec());
        }
    };
    const int rounds = 30;
    engine.run_until(SimTime::seconds(121.0 * (rounds + 3)));

    ASSERT_GE(cluster_resets.size(), static_cast<std::size_t>(rounds));
    ASSERT_GE(lone_resets.size(), static_cast<std::size_t>(rounds));
    // Gap between the lone node's reset and the cluster's, per round.
    const double gap_first = lone_resets[0] - cluster_resets[0];
    const auto last = static_cast<std::size_t>(rounds - 1);
    const double gap_last = lone_resets[last] - cluster_resets[last];
    const double drift_per_round = (gap_first - gap_last) / (rounds - 1);
    const double predicted = (i - 1) * 0.11 - 0.05 * (i - 1) / (i + 1);
    EXPECT_NEAR(drift_per_round, predicted, 0.03) << "i = " << i;
}

INSTANTIATE_TEST_SUITE_P(ClusterSizes, ClusterKinematics,
                         ::testing::Values(1, 2, 3, 5, 8, 12));

// ------------------------------------------------------ triggered updates

TEST(PeriodicMessages, TriggeredUpdateSynchronizesEveryone) {
    sim::Engine engine;
    ModelParams p = canonical();
    p.seed = 3;
    PeriodicMessagesModel model{engine, p};

    core::ClusterTracker tracker{p.n, model.round_length()};
    model.on_timer_set = [&](int node, SimTime t) { tracker.on_timer_set(node, t); };

    engine.schedule_at(1000_sec, [&] { model.trigger_update_all(); });
    engine.run_until(1100_sec);
    tracker.finish();

    const auto full = tracker.full_sync_time();
    ASSERT_TRUE(full.has_value());
    // All N reset their timers together right after the triggered wave:
    // 1000 + 20*Tc (plus any overlap with pre-trigger busy time).
    EXPECT_NEAR(full->sec(), 1000.0 + 20 * 0.11, 1.0);
}

TEST(PeriodicMessages, TriggeredUpdateOnSubsetClustersSubset) {
    sim::Engine engine;
    ModelParams p = canonical();
    p.n = 10;
    p.seed = 8;
    PeriodicMessagesModel model{engine, p};

    core::ClusterTracker tracker{p.n, model.round_length()};
    model.on_timer_set = [&](int node, SimTime t) { tracker.on_timer_set(node, t); };

    const std::vector<int> subset{0, 1, 2, 3};
    engine.schedule_at(500_sec, [&] { model.trigger_update(subset); });
    engine.run_until(600_sec);
    tracker.finish();

    const auto hit = tracker.first_time_size_at_least(4);
    ASSERT_TRUE(hit.has_value());
    EXPECT_NEAR(hit->sec(), 500.0 + 4 * 0.11, 1.0);
}

// --------------------------------------------- distinct per-node periods

// The Section 6 open question ("slightly-different fixed period for each
// router"): periods spaced below Tc entrain; above Tc they disperse.
TEST(DistinctPeriods, SubTcSpacingEntrains) {
    core::ExperimentConfig cfg;
    cfg.params.n = 10;
    cfg.params.tp = 121_sec;
    cfg.params.tc = 0.11_sec;
    cfg.params.tr = SimTime::zero();
    cfg.params.start = StartCondition::Synchronized;
    for (int k = 0; k < 10; ++k) {
        cfg.params.per_node_tp.push_back(121.0 + 0.05 * k);
    }
    cfg.params.seed = 4;
    cfg.max_time = 50000_sec;
    cfg.record_rounds = true;
    const auto r = core::run_experiment(cfg);
    ASSERT_FALSE(r.rounds.empty());
    for (const auto& round : r.rounds) {
        EXPECT_EQ(round.largest, 10);
    }
}

TEST(DistinctPeriods, SuperTcSpacingDisperses) {
    core::ExperimentConfig cfg;
    cfg.params.n = 10;
    cfg.params.tp = 121_sec;
    cfg.params.tc = 0.11_sec;
    cfg.params.tr = SimTime::zero();
    cfg.params.start = StartCondition::Synchronized;
    for (int k = 0; k < 10; ++k) {
        cfg.params.per_node_tp.push_back(121.0 + 0.3 * k);
    }
    cfg.params.seed = 4;
    cfg.max_time = 100000_sec;
    cfg.stop_on_breakup_threshold = 1;
    const auto r = core::run_experiment(cfg);
    ASSERT_TRUE(r.breakup_time_sec.has_value());
    EXPECT_LT(*r.breakup_time_sec, 2000.0); // gone within a handful of rounds
}

TEST(DistinctPeriods, LonePeriodsAreHonoured) {
    sim::Engine engine;
    ModelParams p;
    p.n = 2;
    p.tp = 121_sec;
    p.tr = SimTime::zero();
    p.tc = 0.11_sec;
    p.initial_phases = {0.0, 50.0}; // never interact in this window
    p.per_node_tp = {100.0, 130.0};
    PeriodicMessagesModel model{engine, p};
    std::vector<std::vector<double>> tx(2);
    model.on_transmit = [&](int node, SimTime t) {
        tx[static_cast<std::size_t>(node)].push_back(t.sec());
    };
    engine.run_until(300_sec);
    ASSERT_GE(tx[0].size(), 2U);
    ASSERT_GE(tx[1].size(), 2U);
    EXPECT_NEAR(tx[0][1] - tx[0][0], 100.0 + 0.11, 1e-9);
    EXPECT_NEAR(tx[1][1] - tx[1][0], 130.0 + 0.11, 1e-9);
}

TEST(DistinctPeriods, WrongSizeRejected) {
    sim::Engine engine;
    ModelParams p;
    p.n = 5;
    p.per_node_tp = {121.0, 122.0};
    EXPECT_THROW(PeriodicMessagesModel(engine, p), std::invalid_argument);
    p = ModelParams{};
    p.n = 5;
    p.per_node_tc = {0.1, 0.2};
    EXPECT_THROW(PeriodicMessagesModel(engine, p), std::invalid_argument);
}

// ------------------------------------------- heterogeneous processing

// Mixed route-processor speeds split a synchronized network into one
// cluster per hardware class (each class's members share busy-period
// arithmetic; across classes the busy periods end at different instants).
TEST(HeterogeneousTc, ClassesFormSeparateClusters) {
    sim::Engine engine;
    ModelParams p;
    p.n = 6;
    p.tp = 121_sec;
    p.tr = 0.02_sec;
    p.start = StartCondition::Synchronized;
    p.per_node_tc = {0.1, 0.1, 0.1, 0.3, 0.3, 0.3};
    p.seed = 5;
    PeriodicMessagesModel model{engine, p};

    std::vector<double> last_set(6, -1.0);
    model.on_timer_set = [&](int node, SimTime t) {
        last_set[static_cast<std::size_t>(node)] = t.sec();
    };
    engine.run_until(5000_sec);

    // Fast class resets together, slow class together, at different times.
    EXPECT_DOUBLE_EQ(last_set[0], last_set[1]);
    EXPECT_DOUBLE_EQ(last_set[1], last_set[2]);
    EXPECT_DOUBLE_EQ(last_set[3], last_set[4]);
    EXPECT_DOUBLE_EQ(last_set[4], last_set[5]);
    EXPECT_NE(last_set[0], last_set[3]);
}

TEST(HeterogeneousTc, UniformVectorMatchesScalarTc) {
    auto run = [](bool use_vector) {
        sim::Engine engine;
        ModelParams p;
        p.n = 4;
        p.tp = 121_sec;
        p.tr = 0.1_sec;
        p.tc = 0.11_sec;
        if (use_vector) {
            p.per_node_tc = {0.11, 0.11, 0.11, 0.11};
        }
        p.seed = 9;
        PeriodicMessagesModel model{engine, p};
        std::vector<double> times;
        model.on_transmit = [&](int, SimTime t) { times.push_back(t.sec()); };
        engine.run_until(3000_sec);
        return times;
    };
    EXPECT_EQ(run(false), run(true));
}

// ------------------------------------------------------------- validation

TEST(PeriodicMessages, RejectsInvalidParams) {
    sim::Engine engine;
    ModelParams p = canonical();
    p.n = 0;
    EXPECT_THROW(PeriodicMessagesModel(engine, p), std::invalid_argument);
    p = canonical();
    p.tc = SimTime::seconds(-0.1);
    EXPECT_THROW(PeriodicMessagesModel(engine, p), std::invalid_argument);
    p = canonical();
    p.initial_phases = {1.0, 2.0}; // wrong size for n=20
    EXPECT_THROW(PeriodicMessagesModel(engine, p), std::invalid_argument);
}

TEST(PeriodicMessages, OffsetOfWrapsAtRoundLength) {
    sim::Engine engine;
    ModelParams p = canonical();
    PeriodicMessagesModel model{engine, p};
    const double round = model.round_length().sec();
    EXPECT_NEAR(round, 121.11, 1e-12);
    EXPECT_NEAR(model.offset_of(SimTime::seconds(round + 5.0)).sec(), 5.0, 1e-9);
    // An exact multiple of the round folds to ~0 or ~round (FP rounding may
    // land the fmod on either side of the wrap).
    const double folded = model.offset_of(SimTime::seconds(2.5 * round)).sec();
    EXPECT_NEAR(folded, round / 2, 1e-9);
}

TEST(PeriodicMessages, NodeViewReflectsState) {
    sim::Engine engine;
    ModelParams p = canonical();
    p.n = 2;
    p.initial_phases = {10.0, 50.0};
    PeriodicMessagesModel model{engine, p};
    engine.run_until(5_sec);
    const auto v = model.node(0);
    EXPECT_FALSE(v.busy);
    EXPECT_EQ(v.transmissions, 0U);
    EXPECT_NEAR(v.next_expiry.sec(), 10.0, 1e-12);
    engine.run_until(SimTime::seconds(10.05));
    EXPECT_TRUE(model.node(0).busy);
    EXPECT_EQ(model.node(0).transmissions, 1U);
}

} // namespace
