// Tests for the global work-stealing sweep scheduler
// (parallel/sweep_scheduler.hpp): submission-order determinism across
// worker counts, stealing under skew, exception propagation, mixed
// submit/submit_generated batches, and reuse after run().
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/core.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel.hpp"

namespace {

using namespace routesync;

core::ExperimentConfig small_config(std::uint64_t seed, int n = 8,
                                    double max_time = 500.0) {
    core::ExperimentConfig cfg;
    cfg.params.n = n;
    cfg.params.tp = sim::SimTime::seconds(30);
    cfg.params.tc = sim::SimTime::seconds(0.11);
    cfg.params.tr = sim::SimTime::seconds(0.11);
    cfg.params.seed = seed;
    cfg.max_time = sim::SimTime::seconds(max_time);
    return cfg;
}

void expect_identical(const std::vector<core::ExperimentResult>& a,
                      const std::vector<core::ExperimentResult>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].total_transmissions, b[i].total_transmissions) << i;
        EXPECT_EQ(a[i].events_processed, b[i].events_processed) << i;
        EXPECT_EQ(a[i].rounds_closed, b[i].rounds_closed) << i;
        EXPECT_EQ(a[i].end_time_sec, b[i].end_time_sec) << i;
    }
}

TEST(SweepScheduler, ResultsIdenticalAcrossWorkerCounts) {
    std::vector<core::ExperimentConfig> configs;
    for (std::uint64_t s = 1; s <= 12; ++s) {
        configs.push_back(small_config(s, 4 + static_cast<int>(s % 5)));
    }
    const auto r1 = parallel::SweepScheduler{{.jobs = 1}}.run_all(configs);
    const auto r4 = parallel::SweepScheduler{{.jobs = 4}}.run_all(configs);
    const auto r8 = parallel::SweepScheduler{{.jobs = 8}}.run_all(configs);
    expect_identical(r1, r4);
    expect_identical(r1, r8);
}

TEST(SweepScheduler, ResultsIdenticalAcrossJobsAndBatchSizes) {
    // The batched kernel is a pure performance knob: every (jobs, batch)
    // combination must reproduce the jobs=1 batch=1 scalar pass exactly,
    // including per-trial metrics snapshots. 22 tasks with batch 3 and 16
    // exercises truncated tails in both the chunk claim and the lanes.
    std::vector<core::ExperimentConfig> configs;
    for (std::uint64_t s = 1; s <= 22; ++s) {
        auto cfg = small_config(s, 4 + static_cast<int>(s % 5));
        if (s % 4 == 0) {
            cfg.stop_on_full_sync = true; // per-lane stop in a shared batch
        }
        configs.push_back(cfg);
    }
    const auto scalar =
        parallel::SweepScheduler{{.jobs = 1, .batch = 1}}.run_all(configs);
    const std::size_t jobs_grid[] = {1, 4, 8};
    const std::size_t batch_grid[] = {0, 1, 3, 16};
    for (const std::size_t jobs : jobs_grid) {
        for (const std::size_t batch : batch_grid) {
            const auto got =
                parallel::SweepScheduler{{.jobs = jobs, .batch = batch}}
                    .run_all(configs);
            expect_identical(scalar, got);
            for (std::size_t i = 0; i < scalar.size(); ++i) {
                EXPECT_EQ(scalar[i].metrics, got[i].metrics)
                    << "jobs=" << jobs << " batch=" << batch << " task=" << i;
            }
        }
    }
}

TEST(SweepScheduler, EffectiveBatchAutoTunes) {
    // Explicit batch always wins; auto picks 16 single-threaded and
    // throttles down so each worker sees at least two chunks.
    EXPECT_EQ((parallel::SweepScheduler{{.jobs = 4, .batch = 5}})
                  .effective_batch(100),
              5U);
    EXPECT_EQ((parallel::SweepScheduler{{.jobs = 1}}).effective_batch(100),
              16U);
    EXPECT_EQ((parallel::SweepScheduler{{.jobs = 4}}).effective_batch(400),
              16U);
    EXPECT_EQ((parallel::SweepScheduler{{.jobs = 4}}).effective_batch(40),
              5U);
    EXPECT_EQ((parallel::SweepScheduler{{.jobs = 8}}).effective_batch(8), 1U);
}

TEST(SweepScheduler, JobsZeroAutoDetects) {
    parallel::SweepScheduler scheduler{{.jobs = 0}};
    EXPECT_EQ(scheduler.jobs(), parallel::hardware_jobs());
}

TEST(SweepScheduler, ResultsLandInSubmissionOrder) {
    // Each task gets a distinct max_time; with no stop conditions the
    // result's end_time_sec equals it, so any slot mix-up is visible.
    parallel::SweepScheduler scheduler{{.jobs = 4}};
    for (int i = 0; i < 10; ++i) {
        scheduler.submit(small_config(7, 6, 100.0 + i));
    }
    EXPECT_EQ(scheduler.pending(), 10U);
    const auto results = scheduler.run();
    ASSERT_EQ(results.size(), 10U);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(results[static_cast<std::size_t>(i)].end_time_sec, 100.0 + i);
    }
}

TEST(SweepScheduler, MixedSubmitAndGeneratedBatches) {
    parallel::SweepScheduler scheduler{{.jobs = 3}};
    EXPECT_EQ(scheduler.submit(small_config(1, 6, 111.0)), 0U);
    EXPECT_EQ(scheduler.submit_generated(
                  4, [](std::size_t i) {
                      return small_config(2, 6, 200.0 + static_cast<double>(i));
                  }),
              1U);
    EXPECT_EQ(scheduler.submit(small_config(3, 6, 333.0)), 5U);
    const auto results = scheduler.run();
    ASSERT_EQ(results.size(), 6U);
    EXPECT_EQ(results[0].end_time_sec, 111.0);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(results[1 + i].end_time_sec, 200.0 + static_cast<double>(i));
    }
    EXPECT_EQ(results[5].end_time_sec, 333.0);
}

TEST(SweepScheduler, ReusableAfterRun) {
    parallel::SweepScheduler scheduler{{.jobs = 2}};
    scheduler.submit(small_config(1));
    const auto first = scheduler.run();
    ASSERT_EQ(first.size(), 1U);
    EXPECT_EQ(scheduler.pending(), 0U);
    scheduler.submit(small_config(2, 6, 250.0));
    scheduler.submit(small_config(3, 6, 260.0));
    const auto second = scheduler.run();
    ASSERT_EQ(second.size(), 2U);
    EXPECT_EQ(second[0].end_time_sec, 250.0);
    EXPECT_EQ(second[1].end_time_sec, 260.0);
}

TEST(SweepScheduler, StealsFromSkewedRanges) {
    // Worker 0's contiguous range holds all the heavy tasks; the other
    // workers drain their tiny ones and must steal. Stealing is
    // timing-dependent (a worker could in principle finish its whole
    // range before the others spin up), so retry a few times — but with
    // this much skew one round almost always shows a steal.
    std::vector<core::ExperimentConfig> configs;
    for (int i = 0; i < 16; ++i) {
        const bool heavy = i < 4; // first range, 16/4 = 4 tasks per worker
        configs.push_back(
            small_config(static_cast<std::uint64_t>(i + 1), heavy ? 24 : 2,
                         heavy ? 20000.0 : 10.0));
    }
    std::uint64_t steals = 0;
    for (int attempt = 0; attempt < 5 && steals == 0; ++attempt) {
        parallel::SweepScheduler scheduler{{.jobs = 4}};
        const auto results = scheduler.run_all(configs);
        ASSERT_EQ(results.size(), configs.size());
        steals = scheduler.steals();
    }
    EXPECT_GT(steals, 0U);
}

TEST(SweepScheduler, FirstExceptionPropagates) {
    std::vector<core::ExperimentConfig> configs;
    configs.push_back(small_config(1));
    configs.push_back(small_config(2));
    configs[1].params.n = 0; // invalid: the model ctor throws
    parallel::SweepScheduler scheduler{{.jobs = 2}};
    EXPECT_THROW(scheduler.run_all(configs), std::invalid_argument);
    // The scheduler survives the throw and accepts fresh work.
    scheduler.submit(small_config(5));
    const auto results = scheduler.run();
    ASSERT_EQ(results.size(), 1U);
    EXPECT_GT(results[0].total_transmissions, 0U);
}

TEST(SweepScheduler, MergeSweepIntoAccumulatesMetrics) {
    std::vector<core::ExperimentConfig> configs;
    for (std::uint64_t s = 1; s <= 3; ++s) {
        configs.push_back(small_config(s));
    }
    const auto results = parallel::SweepScheduler{{.jobs = 2}}.run_all(configs);
    obs::RunContext ctx;
    parallel::merge_sweep_into(ctx, results);
    ctx.finish(0.0); // folds the merged per-trial snapshots into the manifest
    std::uint64_t want = 0;
    for (const auto& r : results) {
        want += r.total_transmissions;
    }
    EXPECT_EQ(ctx.manifest().metrics.counters.at("experiment.transmissions"),
              want);
}

} // namespace
