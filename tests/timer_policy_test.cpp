// Tests for routing-timer policies.
#include <gtest/gtest.h>

#include "core/timer_policy.hpp"

namespace {

using namespace routesync;
using core::FixedInterval;
using core::HalfPeriodJitter;
using core::UniformJitter;
using sim::SimTime;
using namespace sim::literals;

TEST(UniformJitter, DrawsWithinBand) {
    UniformJitter p{121_sec, 0.5_sec};
    rng::DefaultEngine gen{1};
    for (int i = 0; i < 10000; ++i) {
        const auto t = p.next_interval(gen);
        EXPECT_GE(t, 120.5_sec);
        EXPECT_LE(t, 121.5_sec);
    }
}

TEST(UniformJitter, MeanApproachesTp) {
    UniformJitter p{30_sec, 10_sec};
    rng::DefaultEngine gen{7};
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        sum += p.next_interval(gen).sec();
    }
    EXPECT_NEAR(sum / n, 30.0, 0.05);
    EXPECT_EQ(p.mean_interval(), 30_sec);
}

TEST(UniformJitter, ZeroJitterIsConstant) {
    UniformJitter p{10_sec, SimTime::zero()};
    rng::DefaultEngine gen{1};
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(p.next_interval(gen), 10_sec);
    }
}

TEST(UniformJitter, RejectsInvalidParameters) {
    EXPECT_THROW(UniformJitter(10_sec, 11_sec), std::invalid_argument);
    EXPECT_THROW(UniformJitter(10_sec, SimTime::seconds(-1)), std::invalid_argument);
    EXPECT_THROW(UniformJitter(SimTime::zero(), SimTime::zero()),
                 std::invalid_argument);
}

TEST(UniformJitter, DescribeMentionsBand) {
    UniformJitter p{121_sec, 1_sec};
    const auto d = p.describe();
    EXPECT_NE(d.find("120"), std::string::npos);
    EXPECT_NE(d.find("122"), std::string::npos);
}

TEST(HalfPeriodJitter, DrawsWithinHalfToThreeHalves) {
    HalfPeriodJitter p{30_sec};
    rng::DefaultEngine gen{3};
    for (int i = 0; i < 10000; ++i) {
        const auto t = p.next_interval(gen);
        EXPECT_GE(t, 15_sec);
        EXPECT_LE(t, 45_sec);
    }
    EXPECT_EQ(p.mean_interval(), 30_sec);
}

TEST(HalfPeriodJitter, RejectsNonPositivePeriod) {
    EXPECT_THROW(HalfPeriodJitter(SimTime::zero()), std::invalid_argument);
}

TEST(FixedInterval, AlwaysReturnsPeriod) {
    FixedInterval p{42_sec};
    rng::DefaultEngine gen{1};
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(p.next_interval(gen), 42_sec);
    }
    EXPECT_EQ(p.mean_interval(), 42_sec);
    EXPECT_NE(p.describe().find("fixed"), std::string::npos);
}

// Property sweep: the drawn interval always lies inside the declared band
// and its sample mean matches mean_interval().
struct PolicyCase {
    double tp;
    double tr;
};
class JitterSweep : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(JitterSweep, BandAndMeanHold) {
    const auto [tp, tr] = GetParam();
    UniformJitter p{SimTime::seconds(tp), SimTime::seconds(tr)};
    rng::DefaultEngine gen{99};
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double t = p.next_interval(gen).sec();
        ASSERT_GE(t, tp - tr);
        ASSERT_LE(t, tp + tr);
        sum += t;
    }
    EXPECT_NEAR(sum / n, tp, tr * 0.05 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Bands, JitterSweep,
                         ::testing::Values(PolicyCase{121.0, 0.11},
                                           PolicyCase{121.0, 1.1},
                                           PolicyCase{30.0, 15.0},
                                           PolicyCase{90.0, 0.05},
                                           PolicyCase{15.0, 0.0}));

} // namespace
