// Tests for the statistics subsystem.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "stats/stats.hpp"

namespace {

using namespace routesync::stats;

// ------------------------------------------------------------ RunningStats

TEST(RunningStats, KnownSmallSample) {
    RunningStats s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        s.add(x);
    }
    EXPECT_EQ(s.count(), 8U);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12); // unbiased
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsSafe) {
    RunningStats s;
    EXPECT_EQ(s.count(), 0U);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
    RunningStats s;
    s.add(3.5);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MergeMatchesSequentialFeed) {
    RunningStats a;
    RunningStats b;
    RunningStats all;
    for (int i = 0; i < 100; ++i) {
        const double x = std::sin(0.1 * i) * 10 + i;
        (i < 40 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
    RunningStats a;
    RunningStats empty;
    a.add(1.0);
    a.add(3.0);
    RunningStats c = a;
    c.merge(empty);
    EXPECT_EQ(c.count(), 2U);
    EXPECT_DOUBLE_EQ(c.mean(), 2.0);
    RunningStats d = empty;
    d.merge(a);
    EXPECT_EQ(d.count(), 2U);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0);
}

// ------------------------------------------------------------- Histogram

TEST(Histogram, BinsValuesCorrectly) {
    Histogram h{0.0, 10.0, 10};
    for (int i = 0; i < 10; ++i) {
        h.add(i + 0.5);
    }
    for (std::size_t b = 0; b < 10; ++b) {
        EXPECT_EQ(h.count(b), 1U) << b;
    }
    EXPECT_EQ(h.total(), 10U);
    EXPECT_EQ(h.underflow(), 0U);
    EXPECT_EQ(h.overflow(), 0U);
}

TEST(Histogram, UnderOverflowCounted) {
    Histogram h{0.0, 1.0, 4};
    h.add(-0.1);
    h.add(1.0); // hi edge is exclusive
    h.add(5.0);
    EXPECT_EQ(h.underflow(), 1U);
    EXPECT_EQ(h.overflow(), 2U);
    EXPECT_EQ(h.total(), 3U);
}

TEST(Histogram, BinEdges) {
    Histogram h{2.0, 4.0, 4};
    EXPECT_DOUBLE_EQ(h.bin_lo(0), 2.0);
    EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.5);
    EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.5);
    EXPECT_THROW((void)h.bin_lo(4), std::out_of_range);
}

TEST(Histogram, InvalidConstruction) {
    EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
    EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, AsciiRendersRows) {
    Histogram h{0.0, 2.0, 2};
    h.add(0.5);
    h.add(1.5);
    h.add(1.6);
    const std::string art = h.ascii(10);
    EXPECT_NE(art.find('#'), std::string::npos);
}

// ------------------------------------------------------------- quantiles

TEST(Quantiles, MedianOfOddSample) {
    const std::vector<double> xs{5.0, 1.0, 3.0};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
}

TEST(Quantiles, InterpolatesBetweenRanks) {
    const std::vector<double> xs{0.0, 10.0};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 5.0);
}

TEST(Quantiles, ExtremesAreMinMax) {
    const std::vector<double> xs{4.0, -1.0, 9.0, 2.0};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), -1.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 9.0);
}

TEST(Quantiles, InvalidArgumentsThrow) {
    const std::vector<double> xs{1.0};
    EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
    EXPECT_THROW((void)quantile(xs, -0.1), std::invalid_argument);
    EXPECT_THROW((void)quantile(xs, 1.1), std::invalid_argument);
}

TEST(Quantiles, SummaryOrdering) {
    std::vector<double> xs;
    for (int i = 0; i < 1000; ++i) {
        xs.push_back(static_cast<double>((i * 7919) % 1000));
    }
    const auto s = summarize(xs);
    EXPECT_LE(s.min, s.p25);
    EXPECT_LE(s.p25, s.median);
    EXPECT_LE(s.median, s.p75);
    EXPECT_LE(s.p75, s.p90);
    EXPECT_LE(s.p90, s.p99);
    EXPECT_LE(s.p99, s.max);
}

// ------------------------------------------------------- autocorrelation

TEST(Autocorrelation, LagZeroIsOne) {
    const std::vector<double> xs{1.0, 2.0, 0.5, 3.0};
    const auto r = autocorrelation(xs, 2);
    EXPECT_DOUBLE_EQ(r[0], 1.0);
}

TEST(Autocorrelation, PeriodicSignalPeaksAtItsPeriod) {
    // Period-10 pulse train, like the paper's 90-second loss spikes
    // sampled every 1.01 s (Figure 2's lag-89 peak).
    std::vector<double> xs(400, 0.0);
    for (std::size_t i = 0; i < xs.size(); i += 10) {
        xs[i] = 1.0;
    }
    const auto dom = dominant_lag(xs, 2, 50);
    EXPECT_EQ(dom.lag, 10U);
    EXPECT_GT(dom.correlation, 0.8);
}

TEST(Autocorrelation, SineWavePeaksAtPeriod) {
    std::vector<double> xs;
    const std::size_t period = 25;
    for (int i = 0; i < 500; ++i) {
        xs.push_back(std::sin(2.0 * std::numbers::pi * i / static_cast<double>(period)));
    }
    const auto dom = dominant_lag(xs, 5, 60);
    EXPECT_EQ(dom.lag, period);
    EXPECT_GT(dom.correlation, 0.9);
}

TEST(Autocorrelation, WhiteNoiseHasNoStrongLag) {
    std::vector<double> xs;
    std::uint64_t state = 88172645463325252ULL;
    for (int i = 0; i < 2000; ++i) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        xs.push_back(static_cast<double>(state % 1000) / 1000.0);
    }
    const auto dom = dominant_lag(xs, 1, 100);
    EXPECT_LT(dom.correlation, 0.15);
}

TEST(Autocorrelation, ConstantSeriesReportsZero) {
    const std::vector<double> xs(50, 3.0);
    const auto r = autocorrelation(xs, 5);
    EXPECT_DOUBLE_EQ(r[0], 1.0);
    for (std::size_t k = 1; k <= 5; ++k) {
        EXPECT_DOUBLE_EQ(r[k], 0.0);
    }
}

TEST(Autocorrelation, MaxLagZeroIsValidAndReturnsUnity) {
    const std::vector<double> xs{1.0, 2.0, 0.5, 3.0};
    const auto r = autocorrelation(xs, 0);
    ASSERT_EQ(r.size(), 1U);
    EXPECT_DOUBLE_EQ(r[0], 1.0);
}

TEST(Autocorrelation, NearConstantSeriesReportsZeroNotGarbage) {
    // A large mean with sub-epsilon ripple: the centred sum of squares is
    // pure cancellation noise, not signal. The guard must treat it like
    // the exactly-constant case rather than divide by rounding dust.
    std::vector<double> xs(100, 1e9);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        xs[i] += (i % 3 == 0) ? 1e-8 : 0.0;
    }
    const auto r = autocorrelation(xs, 10);
    EXPECT_DOUBLE_EQ(r[0], 1.0);
    for (std::size_t k = 1; k <= 10; ++k) {
        EXPECT_DOUBLE_EQ(r[k], 0.0);
    }
}

TEST(Autocorrelation, InvalidArgumentsThrow) {
    const std::vector<double> xs{1.0, 2.0, 3.0};
    EXPECT_THROW((void)autocorrelation({}, 1), std::invalid_argument);
    EXPECT_THROW((void)autocorrelation(xs, 3), std::invalid_argument);
    EXPECT_THROW((void)dominant_lag(xs, 0, 2), std::invalid_argument);
    EXPECT_THROW((void)dominant_lag(xs, 2, 1), std::invalid_argument);
}

// ----------------------------------------------------------- periodogram

TEST(Periodogram, SineHasPeakAtItsFrequency) {
    std::vector<double> xs;
    const double f0 = 0.04; // 25-sample period
    for (int t = 0; t < 500; ++t) {
        xs.push_back(std::sin(2.0 * std::numbers::pi * f0 * t));
    }
    const auto dom = dominant_frequency(xs, 0.005, 0.5);
    EXPECT_NEAR(dom.frequency, f0, 0.002);
    EXPECT_NEAR(dom.period, 25.0, 1.5);
}

TEST(Periodogram, LossBurstTrainMatchesAutocorrelationVerdict) {
    // The Figure 2 signal shape: periodic loss *bursts* (wide pulses — a
    // bare impulse train would put equal power at every harmonic and the
    // "dominant" frequency would be ill-defined).
    std::vector<double> xs(445, 0.0);
    for (std::size_t i = 0; i + 20 < xs.size(); i += 89) {
        for (std::size_t j = 0; j < 20; ++j) {
            xs[i + j] = 2.0;
        }
    }
    const auto dom = dominant_frequency(xs, 1.0 / 150.0, 0.5);
    EXPECT_NEAR(dom.period, 89.0, 2.0);
    const auto lag = dominant_lag(xs, 30, 150);
    EXPECT_NEAR(static_cast<double>(lag.lag), dom.period, 2.0);
}

TEST(Periodogram, WhiteNoiseHasNoDominantPeak) {
    std::vector<double> xs;
    std::uint64_t state = 99991;
    for (int i = 0; i < 2000; ++i) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        xs.push_back(static_cast<double>(state % 1000) / 1000.0);
    }
    const auto power = periodogram(xs);
    double total = 0.0;
    double peak = 0.0;
    for (const double p : power) {
        total += p;
        peak = std::max(peak, p);
    }
    // No single frequency carries more than a few percent of the energy.
    EXPECT_LT(peak / total, 0.03);
}

TEST(Periodogram, ConstantSeriesHasZeroPower) {
    const std::vector<double> xs(64, 5.0);
    for (const double p : periodogram(xs)) {
        EXPECT_NEAR(p, 0.0, 1e-18);
    }
}

TEST(Periodogram, ParsevalEnergyAccounting) {
    // Total periodogram power ~ variance * n / 2 for a zero-mean series
    // (each Fourier bin appears once; its conjugate pair is implicit).
    std::vector<double> xs;
    for (int t = 0; t < 256; ++t) {
        xs.push_back(std::sin(0.7 * t) + 0.5 * std::cos(1.9 * t));
    }
    double mean = 0.0;
    for (const double v : xs) {
        mean += v;
    }
    mean /= static_cast<double>(xs.size());
    double energy = 0.0;
    for (const double v : xs) {
        energy += (v - mean) * (v - mean);
    }
    const auto power = periodogram(xs);
    double total = 0.0;
    for (const double p : power) {
        total += p;
    }
    EXPECT_NEAR(2.0 * total, energy, 0.05 * energy);
}

TEST(Periodogram, InvalidArgumentsThrow) {
    const std::vector<double> xs{1.0, 2.0, 3.0};
    EXPECT_THROW((void)spectral_power({}, 0.1), std::invalid_argument);
    EXPECT_THROW((void)spectral_power(xs, 0.0), std::invalid_argument);
    EXPECT_THROW((void)spectral_power(xs, 0.6), std::invalid_argument);
    EXPECT_THROW((void)periodogram(std::vector<double>{1.0}),
                 std::invalid_argument);
    EXPECT_THROW((void)dominant_frequency(xs, 0.0, 0.5), std::invalid_argument);
    EXPECT_THROW((void)dominant_frequency(xs, 0.4, 0.2), std::invalid_argument);
}

// --------------------------------------------------------- phase_cluster

TEST(PhaseCluster, AllSeparatePointsAreLoneClusters) {
    const std::vector<double> xs{0.0, 10.0, 20.0, 30.0};
    const auto c = cluster_phases(xs, 100.0, 1.0);
    EXPECT_EQ(c.count(), 4U);
    EXPECT_EQ(c.largest(), 1U);
}

TEST(PhaseCluster, AdjacentPointsMerge) {
    const std::vector<double> xs{0.0, 0.5, 1.0, 50.0};
    const auto c = cluster_phases(xs, 100.0, 0.6);
    EXPECT_EQ(c.count(), 2U);
    EXPECT_EQ(c.largest(), 3U);
}

TEST(PhaseCluster, WraparoundMergesEnds) {
    const std::vector<double> xs{99.8, 0.1, 50.0};
    const auto c = cluster_phases(xs, 100.0, 0.5);
    EXPECT_EQ(c.count(), 2U);
    EXPECT_EQ(c.largest(), 2U);
}

TEST(PhaseCluster, FullCircleOfClosePointsIsOneCluster) {
    std::vector<double> xs;
    for (int i = 0; i < 100; ++i) {
        xs.push_back(i * 1.0);
    }
    const auto c = cluster_phases(xs, 100.0, 1.0);
    EXPECT_EQ(c.count(), 1U);
    EXPECT_EQ(c.largest(), 100U);
}

TEST(PhaseCluster, NegativeAndOverflowOffsetsAreNormalized) {
    const std::vector<double> xs{-1.0, 99.0, 199.0};
    const auto c = cluster_phases(xs, 100.0, 0.1);
    EXPECT_EQ(c.count(), 1U);
    EXPECT_EQ(c.largest(), 3U);
}

TEST(PhaseCluster, EmptyInput) {
    const auto c = cluster_phases({}, 100.0, 1.0);
    EXPECT_EQ(c.count(), 0U);
    EXPECT_EQ(c.largest(), 0U);
}

TEST(PhaseCluster, InvalidArgumentsThrow) {
    const std::vector<double> xs{1.0};
    EXPECT_THROW((void)cluster_phases(xs, 0.0, 1.0), std::invalid_argument);
    EXPECT_THROW((void)cluster_phases(xs, 10.0, -1.0), std::invalid_argument);
}

TEST(PhaseCluster, CircularDistance) {
    EXPECT_DOUBLE_EQ(circular_distance(0.0, 99.0, 100.0), 1.0);
    EXPECT_DOUBLE_EQ(circular_distance(10.0, 30.0, 100.0), 20.0);
    EXPECT_DOUBLE_EQ(circular_distance(5.0, 5.0, 100.0), 0.0);
}

} // namespace
