// Unit tests for the ready-made testbeds (integration behaviour is
// covered in integration_test.cpp; these check construction invariants).
#include <gtest/gtest.h>

#include "scenarios/scenarios.hpp"

namespace {

using namespace routesync;
using namespace sim::literals;

TEST(NearnetScenario, TopologyMatchesConfig) {
    scenarios::NearnetConfig cfg;
    cfg.core_routers = 5;
    scenarios::NearnetScenario s{cfg};
    // 2 hosts + R1 + R2 + 5 cores.
    EXPECT_EQ(s.network().node_count(), 9);
    EXPECT_EQ(s.network().routers().size(), 7U);
    EXPECT_EQ(s.agents().size(), 7U);
    EXPECT_GT(s.routing_start().sec(), 0.0);
}

TEST(NearnetScenario, StaticRoutesConnectTheMeasuredPath) {
    scenarios::NearnetScenario s{scenarios::NearnetConfig{}};
    EXPECT_TRUE(s.r1().has_route(s.dst().id()));
    EXPECT_TRUE(s.r2().has_route(s.src().id()));
}

TEST(NearnetScenario, AgentsUseIgrpStyleTimers) {
    scenarios::NearnetConfig cfg;
    cfg.update_period_sec = 90.0;
    scenarios::NearnetScenario s{cfg};
    for (const auto& agent : s.agents()) {
        EXPECT_DOUBLE_EQ(agent->config().period.sec(), 90.0);
        EXPECT_EQ(agent->config().reset, routing::TimerReset::AtExpiry);
        EXPECT_EQ(agent->config().filler_routes, 300);
    }
}

TEST(NearnetScenario, UnsynchronizedStartSpreadsPhases) {
    scenarios::NearnetConfig cfg;
    cfg.synchronized_start = false;
    cfg.blocking_cpu = true;
    scenarios::NearnetScenario s{cfg};
    // Collect first transmissions; they should span a good part of the
    // period rather than coincide.
    std::vector<double> first_arm;
    for (const auto& agent : s.agents()) {
        agent->on_timer_set = [&first_arm](sim::SimTime t) {
            first_arm.push_back(t.sec());
        };
    }
    s.engine().run_until(s.routing_start() + 95_sec);
    ASSERT_GE(first_arm.size(), s.agents().size());
    double lo = first_arm[0];
    double hi = first_arm[0];
    for (const double t : first_arm) {
        lo = std::min(lo, t);
        hi = std::max(hi, t);
    }
    EXPECT_GT(hi - lo, 20.0);
}

TEST(AudiocastScenario, TopologyMatchesConfig) {
    scenarios::AudiocastConfig cfg;
    cfg.core_routers = 3;
    scenarios::AudiocastScenario s{cfg};
    // 4 hosts + R1 + R2 + 3 cores.
    EXPECT_EQ(s.network().node_count(), 9);
    EXPECT_EQ(s.network().routers().size(), 5U);
}

TEST(AudiocastScenario, PathsExistForAudioAndBackground) {
    scenarios::AudiocastScenario s{scenarios::AudiocastConfig{}};
    sim::Engine& engine = s.engine();
    int audio = 0;
    int bg = 0;
    s.audio_dst().on_packet = [&](const net::Packet& p) {
        audio += p.type == net::PacketType::Audio;
    };
    s.bg_dst().on_packet = [&](const net::Packet& p) {
        bg += p.type == net::PacketType::Data;
    };
    net::Packet a;
    a.type = net::PacketType::Audio;
    a.src = s.audio_src().id();
    a.dst = s.audio_dst().id();
    s.audio_src().send(a);
    net::Packet d;
    d.type = net::PacketType::Data;
    d.src = s.bg_src().id();
    d.dst = s.bg_dst().id();
    s.bg_src().send(d);
    engine.run_until(1_sec);
    EXPECT_EQ(audio, 1);
    EXPECT_EQ(bg, 1);
}

} // namespace
