// Tests for the Markov chain model (paper Section 5).
#include <gtest/gtest.h>

#include <cmath>

#include "core/core.hpp"
#include "markov/markov.hpp"

namespace {

using namespace routesync::markov;
namespace core = routesync::core;
namespace sim = routesync::sim;

ChainParams canonical() {
    ChainParams p;
    p.n = 20;
    p.tp_sec = 121.0;
    p.tr_sec = 0.11;
    p.tc_sec = 0.11;
    p.f2_rounds = 19.0;
    return p;
}

// ------------------------------------------------- transition structure

TEST(FJChain, TransitionProbabilitiesAreProbabilities) {
    const FJChain chain{canonical()};
    for (int i = 1; i <= 20; ++i) {
        EXPECT_GE(chain.p_down(i), 0.0) << i;
        EXPECT_LE(chain.p_down(i), 1.0) << i;
        EXPECT_GE(chain.p_up(i), 0.0) << i;
        EXPECT_LE(chain.p_up(i), 1.0) << i;
        EXPECT_LE(chain.p_down(i) + chain.p_up(i), 1.0) << i;
    }
}

TEST(FJChain, PDownDecreasesWithClusterSize) {
    const FJChain chain{canonical()};
    for (int i = 3; i <= 20; ++i) {
        EXPECT_LT(chain.p_down(i), chain.p_down(i - 1)) << i;
    }
}

TEST(FJChain, PDownMatchesEquationOne) {
    ChainParams p = canonical();
    p.tr_sec = 0.1;
    const FJChain chain{p};
    const double base = 1.0 - 0.11 / 0.2;
    for (int i = 2; i <= 20; ++i) {
        EXPECT_NEAR(chain.p_down(i), std::pow(base, i), 1e-12) << i;
    }
}

TEST(FJChain, PDownZeroWhenJitterBelowHalfTc) {
    ChainParams p = canonical();
    p.tr_sec = 0.05; // Tc/2 = 0.055
    const FJChain chain{p};
    for (int i = 2; i <= 20; ++i) {
        EXPECT_EQ(chain.p_down(i), 0.0);
    }
}

TEST(FJChain, PUpMatchesEquationTwo) {
    const FJChain chain{canonical()};
    for (int i = 2; i <= 19; ++i) {
        const double drift = (i - 1) * 0.11 - 0.11 * (i - 1) / (i + 1);
        const double expected =
            drift <= 0 ? 0.0 : 1.0 - std::exp(-((20.0 - i + 1) / 121.0) * drift);
        EXPECT_NEAR(chain.p_up(i), expected, 1e-12) << i;
    }
}

TEST(FJChain, PUpZeroAtTopState) {
    const FJChain chain{canonical()};
    EXPECT_EQ(chain.p_up(20), 0.0);
}

TEST(FJChain, PUpClampsWhenDriftNegative) {
    ChainParams p = canonical();
    p.tr_sec = 0.5; // drift at i=2: Tc - Tr/3 = 0.11 - 0.167 < 0
    const FJChain chain{p};
    EXPECT_EQ(chain.p_up(2), 0.0);
    EXPECT_LT(chain.drift_seconds(2), 0.0);
}

TEST(FJChain, P12ComesFromF2) {
    const FJChain chain{canonical()};
    EXPECT_NEAR(chain.p_up(1), 1.0 / 19.0, 1e-12);
}

TEST(FJChain, ConditionalStepTimesMatchPaperFormula) {
    const FJChain chain{canonical()};
    for (int j = 2; j <= 19; ++j) {
        const double up = chain.p_up(j);
        const double down = chain.p_down(j);
        const double move = up + down;
        EXPECT_NEAR(chain.t_up(j), up / (move * move), 1e-12);
        EXPECT_NEAR(chain.t_down(j), down / (move * move), 1e-12);
    }
}

// ------------------------------------------------------- hitting times

TEST(FJChain, FStartsAtZeroAndF2IsInput) {
    const FJChain chain{canonical()};
    const auto f = chain.f_rounds();
    EXPECT_EQ(f[1], 0.0);
    EXPECT_DOUBLE_EQ(f[2], 19.0);
}

TEST(FJChain, FIsStrictlyIncreasing) {
    const FJChain chain{canonical()};
    const auto f = chain.f_rounds();
    for (int i = 2; i <= 20; ++i) {
        EXPECT_GT(f[static_cast<std::size_t>(i)], f[static_cast<std::size_t>(i - 1)]);
    }
}

TEST(FJChain, GEndsAtZeroAndIsDecreasingInState) {
    const FJChain chain{canonical()};
    const auto g = chain.g_rounds();
    EXPECT_EQ(g[20], 0.0);
    for (int i = 1; i < 20; ++i) {
        EXPECT_GT(g[static_cast<std::size_t>(i)], g[static_cast<std::size_t>(i + 1)]);
    }
}

TEST(FJChain, GFromNMinusOneIsInverseOfPDownN) {
    const FJChain chain{canonical()};
    const auto g = chain.g_rounds();
    EXPECT_NEAR(g[19], 1.0 / chain.p_down(20), 1e-9);
}

TEST(FJChain, ClosedFormsMatchRecursions) {
    for (const double tr : {0.08, 0.1, 0.11, 0.15, 0.2, 0.3}) {
        ChainParams p = canonical();
        p.tr_sec = tr;
        const FJChain chain{p};
        const auto f = chain.f_rounds();
        const auto fc = chain.f_rounds_closed_form();
        const auto g = chain.g_rounds();
        const auto gc = chain.g_rounds_closed_form();
        for (int i = 1; i <= 20; ++i) {
            const auto s = static_cast<std::size_t>(i);
            if (std::isinf(f[s])) {
                EXPECT_TRUE(std::isinf(fc[s])) << "Tr=" << tr << " i=" << i;
            } else if (f[s] > 0.0) {
                EXPECT_NEAR(fc[s] / f[s], 1.0, 1e-9) << "Tr=" << tr << " i=" << i;
            } else {
                EXPECT_EQ(fc[s], 0.0) << "Tr=" << tr << " i=" << i;
            }
            if (std::isinf(g[s])) {
                EXPECT_TRUE(std::isinf(gc[s])) << "Tr=" << tr << " i=" << i;
            } else if (g[s] > 0.0) {
                EXPECT_NEAR(gc[s] / g[s], 1.0, 1e-9) << "Tr=" << tr << " i=" << i;
            }
        }
    }
}

// The paper's Figure 10 scale: with Tr = 0.1 s and f(2) = 19, the time to
// full synchronization (Tp + Tc) * f(20) lands within the figure's
// 0..600000 s axis.
TEST(FJChain, Figure10ScaleReproduced) {
    ChainParams p = canonical();
    p.tr_sec = 0.1;
    const FJChain chain{p};
    const double sync_sec = chain.time_to_synchronize_seconds();
    EXPECT_GT(sync_sec, 2e5);
    EXPECT_LT(sync_sec, 6.5e5);
}

// Figure 11: Tr = 0.3 s; g(1) in seconds is a few hundred thousand —
// "two or three times" the simulated ~1.5e5 s.
TEST(FJChain, Figure11ScaleReproduced) {
    ChainParams p = canonical();
    p.tr_sec = 0.3;
    const FJChain chain{p};
    const double breakup_sec = chain.time_to_break_up_seconds();
    EXPECT_GT(breakup_sec, 1e5);
    EXPECT_LT(breakup_sec, 1e6);
}

// ------------------------------------------------------------ divergence

TEST(FJChain, TinyJitterMakesBreakupImpossible) {
    ChainParams p = canonical();
    p.tr_sec = 0.05;
    const FJChain chain{p};
    EXPECT_TRUE(std::isinf(chain.g_rounds()[1]));
    EXPECT_EQ(chain.fraction_unsynchronized(), 0.0);
}

TEST(FJChain, HugeJitterMakesSynchronizationImpossible) {
    ChainParams p = canonical();
    p.tr_sec = 3.0; // drift negative for every i < 26
    const FJChain chain{p};
    EXPECT_TRUE(std::isinf(chain.f_rounds()[20]));
    EXPECT_EQ(chain.fraction_unsynchronized(), 1.0);
}

TEST(FJChain, FractionIsMonotoneInTr) {
    double last = -1.0;
    for (const double tr : {0.06, 0.11, 0.22, 0.33, 0.44, 0.55}) {
        ChainParams p = canonical();
        p.tr_sec = tr;
        const double frac = FJChain{p}.fraction_unsynchronized();
        EXPECT_GE(frac, last - 1e-12) << tr;
        EXPECT_GE(frac, 0.0);
        EXPECT_LE(frac, 1.0);
        last = frac;
    }
}

// The paper's headline phase transition (Figure 14): between Tr ~ Tc and
// Tr ~ 3 Tc the equilibrium flips from synchronized to unsynchronized.
TEST(FJChain, SharpTransitionInTr) {
    ChainParams lo = canonical();
    lo.tr_sec = 0.11; // Tr = Tc
    ChainParams hi = canonical();
    hi.tr_sec = 0.33; // Tr = 3 Tc
    EXPECT_LT(FJChain{lo}.fraction_unsynchronized(), 0.01);
    EXPECT_GT(FJChain{hi}.fraction_unsynchronized(), 0.99);
}

// Figure 15: more nodes push the system towards synchrony at fixed Tr.
// (Near the saturated ends the estimate flattens out to ~0 or ~1, so the
// monotonicity check carries a small tolerance.)
TEST(FJChain, FractionIsMonotoneDecreasingInN) {
    double last = 2.0;
    for (const int n : {5, 10, 15, 20, 25, 30}) {
        ChainParams p = canonical();
        p.n = n;
        p.tr_sec = 0.18;
        const double frac = FJChain{p}.fraction_unsynchronized();
        EXPECT_LE(frac, last + 1e-6) << n;
        last = frac;
    }
}

// The Figure 15 phase transition itself: at a fixed jitter there is an N
// below which the network stays unsynchronized and above which it locks.
TEST(FJChain, PhaseTransitionExistsInN) {
    ChainParams p = canonical();
    p.tr_sec = 0.18;
    ChainParams small = p;
    small.n = 4;
    ChainParams large = p;
    large.n = 60;
    EXPECT_GT(FJChain{small}.fraction_unsynchronized(), 0.9);
    EXPECT_LT(FJChain{large}.fraction_unsynchronized(), 0.1);
}

// --------------------------------------------------------- stationary

TEST(FJChain, StationaryDistributionSumsToOne) {
    const FJChain chain{canonical()};
    const auto pi = chain.stationary_distribution();
    double sum = 0.0;
    for (int i = 1; i <= 20; ++i) {
        const double x = pi[static_cast<std::size_t>(i)];
        EXPECT_GE(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(FJChain, StationaryMassAtTopWhenSynchronized) {
    // Canonical parameters strongly favour synchronization.
    const FJChain chain{canonical()};
    const auto pi = chain.stationary_distribution();
    EXPECT_GT(pi[20], 0.9);
}

TEST(FJChain, MeanStationaryClusterSizeTracksTheRegime) {
    ChainParams sync_regime = canonical(); // Tr = Tc: strongly synchronized
    ChainParams unsync_regime = canonical();
    unsync_regime.tr_sec = 0.5; // far beyond the transition
    EXPECT_GT(FJChain{sync_regime}.mean_stationary_cluster_size(), 18.0);
    EXPECT_LT(FJChain{unsync_regime}.mean_stationary_cluster_size(), 3.0);
}

TEST(FJChain, StationarySatisfiesDetailedBalance) {
    ChainParams p = canonical();
    p.tr_sec = 0.25;
    const FJChain chain{p};
    const auto pi = chain.stationary_distribution();
    for (int i = 1; i < 20; ++i) {
        const auto s = static_cast<std::size_t>(i);
        const double flow_up = pi[s] * chain.p_up(i);
        const double flow_down = pi[s + 1] * chain.p_down(i + 1);
        EXPECT_NEAR(flow_up, flow_down, 1e-12 + 1e-9 * flow_up) << i;
    }
}

// ------------------------------------------------------------ occupancy

TEST(FJChain, OccupancyStartsAsDelta) {
    const FJChain chain{canonical()};
    const auto occ = chain.occupancy_after(0, 7);
    for (int i = 1; i <= 20; ++i) {
        EXPECT_DOUBLE_EQ(occ[static_cast<std::size_t>(i)], i == 7 ? 1.0 : 0.0);
    }
}

TEST(FJChain, OccupancyIsAlwaysADistribution) {
    const FJChain chain{canonical()};
    for (const std::uint64_t rounds : {1ULL, 10ULL, 100ULL, 5000ULL}) {
        const auto occ = chain.occupancy_after(rounds, 1);
        double sum = 0.0;
        for (int i = 1; i <= 20; ++i) {
            const double x = occ[static_cast<std::size_t>(i)];
            EXPECT_GE(x, 0.0);
            sum += x;
        }
        EXPECT_NEAR(sum, 1.0, 1e-12) << rounds;
    }
}

TEST(FJChain, OccupancyConvergesToStationary) {
    // Parameters with a short mixing time (small N, moderate jitter:
    // g(1) ~ 20 rounds), so two million rounds are deep in equilibrium.
    ChainParams p = canonical();
    p.n = 5;
    p.tr_sec = 0.15;
    p.f2_rounds = 10.0;
    const FJChain chain{p};
    const auto pi = chain.stationary_distribution();
    const auto occ = chain.occupancy_after(2000000, 1);
    for (int i = 1; i <= 5; ++i) {
        EXPECT_NEAR(occ[static_cast<std::size_t>(i)],
                    pi[static_cast<std::size_t>(i)], 1e-9)
            << i;
    }
}

TEST(FJChain, OccupancyDriftsUpwardAtLowJitter) {
    const FJChain chain{canonical()}; // strongly synchronizing
    const auto early = chain.occupancy_after(100, 1);
    const auto late = chain.occupancy_after(100000, 1);
    auto mean_state = [](const std::vector<double>& occ) {
        double m = 0.0;
        for (std::size_t i = 1; i < occ.size(); ++i) {
            m += static_cast<double>(i) * occ[i];
        }
        return m;
    };
    EXPECT_GT(mean_state(late), mean_state(early));
    EXPECT_GT(late[20], 0.5);
}

TEST(FJChain, OccupancyRejectsBadStartState) {
    const FJChain chain{canonical()};
    EXPECT_THROW((void)chain.occupancy_after(1, 0), std::out_of_range);
    EXPECT_THROW((void)chain.occupancy_after(1, 21), std::out_of_range);
}

// ----------------------------------------------------------- validation

TEST(FJChain, RejectsInvalidParameters) {
    ChainParams p = canonical();
    p.n = 1;
    EXPECT_THROW(FJChain{p}, std::invalid_argument);
    p = canonical();
    p.tp_sec = 0.0;
    EXPECT_THROW(FJChain{p}, std::invalid_argument);
    p = canonical();
    p.f2_rounds = -1.0;
    EXPECT_THROW(FJChain{p}, std::invalid_argument);
}

// ------------------------------------- Eq. 1 validated by the simulation

// A cluster of i nodes (the whole network) sheds its head when the first
// timer spacing exceeds Tc; Eq. 1 says that happens with probability
// (1 - Tc/(2 Tr))^i per round, so the mean rounds-to-first-break is its
// inverse. Two regimes:
//   * i = 2: the first spacing is the ONLY break mode, so the simulation
//     adjudicates the exponent exactly (i, not i-1 — the two differ by 2x).
//   * i >= 3: interior spacings can also sever the processing chain, so
//     Eq. 1 under-counts breaks and the measured time is shorter — the
//     same conservatism that makes the chain over-predict g(1) in
//     Figure 11. The simulation must land at or below the prediction,
//     never far above.
struct BreakupCase {
    int i;
    double tr;
};
class EquationOne : public ::testing::TestWithParam<BreakupCase> {};

namespace {
double mean_rounds_to_first_break(int i, double tr) {
    double total_rounds = 0.0;
    const int reps = 40;
    for (int rep = 0; rep < reps; ++rep) {
        core::ExperimentConfig cfg;
        cfg.params.n = i;
        cfg.params.tp = sim::SimTime::seconds(121);
        cfg.params.tc = sim::SimTime::seconds(0.11);
        cfg.params.tr = sim::SimTime::seconds(tr);
        cfg.params.start = core::StartCondition::Synchronized;
        cfg.params.seed = 500 + static_cast<std::uint64_t>(rep);
        cfg.max_time = sim::SimTime::seconds(1e6);
        cfg.stop_on_breakup_threshold = i - 1;
        const auto r = core::run_experiment(cfg);
        if (!r.breakup_time_sec.has_value()) {
            ADD_FAILURE() << "no breakup, rep " << rep;
            continue;
        }
        total_rounds += *r.breakup_time_sec / r.round_length_sec;
    }
    return total_rounds / reps;
}
} // namespace

TEST_P(EquationOne, MeanRoundsToFirstBreakMatchesOrUndershoots) {
    const auto [i, tr] = GetParam();
    const double p = std::pow(1.0 - 0.11 / (2.0 * tr), i);
    const double predicted = 1.0 / p;
    const double mean = mean_rounds_to_first_break(i, tr);
    if (i == 2) {
        // Exact regime: 35% Monte-Carlo band discriminates the exponent.
        EXPECT_GT(mean, predicted * 0.65) << "p=" << p;
        EXPECT_LT(mean, predicted * 1.45) << "p=" << p;
    } else {
        // Conservative regime: simulation breaks at least as fast.
        EXPECT_GT(mean, predicted * 0.3) << "p=" << p;
        EXPECT_LT(mean, predicted * 1.2) << "p=" << p;
    }
}

INSTANTIATE_TEST_SUITE_P(Cases, EquationOne,
                         ::testing::Values(BreakupCase{2, 0.11},
                                           BreakupCase{2, 0.25},
                                           BreakupCase{2, 0.4},
                                           BreakupCase{3, 0.2},
                                           BreakupCase{5, 0.25},
                                           BreakupCase{8, 0.3}));

// -------------------------------------------------------- f2 estimator

TEST(F2Estimator, CanonicalEstimateNearPaperValue) {
    ChainParams p = canonical();
    p.tr_sec = 0.1;
    const auto est = estimate_f2(p, 20, /*seed=*/7);
    EXPECT_EQ(est.completed, 20);
    EXPECT_EQ(est.censored, 0);
    // The paper calibrated f(2) = 19 rounds; allow broad Monte-Carlo slack.
    EXPECT_GT(est.mean_rounds, 3.0);
    EXPECT_LT(est.mean_rounds, 80.0);
}

TEST(F2Estimator, MoreJitterFormsPairsFaster) {
    ChainParams slow = canonical();
    slow.tr_sec = 0.05;
    ChainParams fast = canonical();
    fast.tr_sec = 0.4;
    const auto a = estimate_f2(slow, 12, 3);
    const auto b = estimate_f2(fast, 12, 3);
    EXPECT_GT(a.mean_rounds, b.mean_rounds);
}

TEST(F2Estimator, RejectsZeroReps) {
    EXPECT_THROW((void)estimate_f2(canonical(), 0), std::invalid_argument);
}

// ----------------------------------------------------------- thresholds

TEST(Threshold, CriticalTrLiesBetweenRegimes) {
    const double tr_star = critical_tr_seconds(canonical(), 0.5);
    ChainParams below = canonical();
    below.tr_sec = tr_star * 0.8;
    ChainParams above = canonical();
    above.tr_sec = tr_star * 1.2;
    EXPECT_LT(FJChain{below}.fraction_unsynchronized(), 0.5);
    EXPECT_GE(FJChain{above}.fraction_unsynchronized(), 0.5);
    // The paper's rule of thumb: the safe zone starts within ~10 Tc.
    EXPECT_GT(tr_star, 0.11 / 2);
    EXPECT_LT(tr_star, 10 * 0.11);
}

TEST(Threshold, CriticalTrRejectsBadTarget) {
    EXPECT_THROW((void)critical_tr_seconds(canonical(), 0.0), std::invalid_argument);
    EXPECT_THROW((void)critical_tr_seconds(canonical(), 1.0), std::invalid_argument);
}

TEST(Threshold, CriticalNMatchesFractionFlip) {
    ChainParams p = canonical();
    p.tr_sec = 0.3;
    const int n_star = critical_n(p, 100);
    ChainParams at = p;
    at.n = n_star;
    ChainParams past = p;
    past.n = n_star + 1;
    EXPECT_GE(FJChain{at}.fraction_unsynchronized(), 0.5);
    EXPECT_LT(FJChain{past}.fraction_unsynchronized(), 0.5);
}

TEST(Threshold, CriticalNRejectsBadBounds) {
    EXPECT_THROW((void)critical_n(canonical(), 1), std::invalid_argument);
}

// Sweep: the transition threshold in Tr scales roughly with Tc (paper
// Figure 13: curves for different Tc collapse when Tr is in units of Tc).
class TcSweep : public ::testing::TestWithParam<double> {};

TEST_P(TcSweep, CriticalTrScalesWithTc) {
    ChainParams p = canonical();
    p.tc_sec = GetParam();
    p.tr_sec = p.tc_sec; // starting point only; threshold search varies Tr
    const double tr_star = critical_tr_seconds(p, 0.5);
    const double ratio = tr_star / p.tc_sec;
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 12.0);
}

INSTANTIATE_TEST_SUITE_P(TcValues, TcSweep,
                         ::testing::Values(0.01, 0.05, 0.11, 0.22, 0.5));

} // namespace
