// Tests for the cancellable event queue.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"

namespace {

using routesync::sim::EventQueue;
using routesync::sim::SimTime;
using namespace routesync::sim::literals;

TEST(EventQueue, StartsEmpty) {
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0U);
}

TEST(EventQueue, PopsInTimeOrder) {
    EventQueue q;
    std::vector<int> order;
    q.push(3_sec, [&] { order.push_back(3); });
    q.push(1_sec, [&] { order.push_back(1); });
    q.push(2_sec, [&] { order.push_back(2); });
    while (!q.empty()) {
        q.pop().callback();
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInPushOrder) {
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i) {
        q.push(5_sec, [&order, i] { order.push_back(i); });
    }
    while (!q.empty()) {
        q.pop().callback();
    }
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    }
}

TEST(EventQueue, NextTimeReportsEarliestLiveEvent) {
    EventQueue q;
    q.push(4_sec, [] {});
    const auto early = q.push(2_sec, [] {});
    EXPECT_EQ(q.next_time(), 2_sec);
    EXPECT_TRUE(q.cancel(early));
    EXPECT_EQ(q.next_time(), 4_sec);
}

TEST(EventQueue, CancelRemovesEvent) {
    EventQueue q;
    bool fired = false;
    const auto h = q.push(1_sec, [&] { fired = true; });
    EXPECT_TRUE(q.cancel(h));
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails) {
    EventQueue q;
    const auto h = q.push(1_sec, [] {});
    EXPECT_TRUE(q.cancel(h));
    EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, CancelAfterFireFails) {
    EventQueue q;
    const auto h = q.push(1_sec, [] {});
    q.pop().callback();
    EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, CancelBogusHandleFails) {
    EventQueue q;
    EXPECT_FALSE(q.cancel({}));
    EXPECT_FALSE(q.cancel({.id = 9999}));
}

TEST(EventQueue, SizeTracksLiveEvents) {
    EventQueue q;
    const auto a = q.push(1_sec, [] {});
    q.push(2_sec, [] {});
    EXPECT_EQ(q.size(), 2U);
    q.cancel(a);
    EXPECT_EQ(q.size(), 1U);
    q.pop();
    EXPECT_EQ(q.size(), 0U);
}

TEST(EventQueue, PopSkipsCancelledHead) {
    EventQueue q;
    const auto a = q.push(1_sec, [] {});
    q.push(2_sec, [] {});
    q.cancel(a);
    EXPECT_EQ(q.pop().time, 2_sec);
}

TEST(EventQueue, EmptyCallbackThrows) {
    EventQueue q;
    EXPECT_THROW(q.push(1_sec, nullptr), std::invalid_argument);
}

TEST(EventQueue, ManyInterleavedOperationsStayConsistent) {
    EventQueue q;
    std::vector<routesync::sim::EventHandle> handles;
    for (int i = 0; i < 1000; ++i) {
        handles.push_back(
            q.push(SimTime::seconds(static_cast<double>(i % 37)), [] {}));
    }
    // Cancel every third.
    std::size_t cancelled = 0;
    for (std::size_t i = 0; i < handles.size(); i += 3) {
        ASSERT_TRUE(q.cancel(handles[i]));
        ++cancelled;
    }
    EXPECT_EQ(q.size(), 1000U - cancelled);
    SimTime last = SimTime::seconds(-1);
    std::size_t popped = 0;
    while (!q.empty()) {
        const auto p = q.pop();
        EXPECT_GE(p.time, last);
        last = p.time;
        ++popped;
    }
    EXPECT_EQ(popped, 1000U - cancelled);
}

// --- Slot/tombstone scheme properties -------------------------------------

TEST(EventQueue, EqualTimesStayFifoAcrossInterleavedCancels) {
    // All events share one timestamp; cancelling odd pushes must not
    // disturb the FIFO order of the survivors, even with pops interleaved
    // between pushes (which recycles slots mid-stream).
    EventQueue q;
    std::vector<int> order;
    std::vector<routesync::sim::EventHandle> handles;
    for (int i = 0; i < 50; ++i) {
        handles.push_back(q.push(7_sec, [&order, i] { order.push_back(i); }));
    }
    for (int i = 1; i < 50; i += 2) {
        ASSERT_TRUE(q.cancel(handles[static_cast<std::size_t>(i)]));
    }
    // Pop a few, push a few more at the same time; the new ones recycle
    // cancelled slots but must order AFTER every surviving older event.
    for (int i = 0; i < 5; ++i) {
        q.pop().callback();
    }
    for (int i = 100; i < 105; ++i) {
        q.push(7_sec, [&order, i] { order.push_back(i); });
    }
    while (!q.empty()) {
        EXPECT_EQ(q.next_time(), 7_sec);
        q.pop().callback();
    }
    std::vector<int> expected;
    for (int i = 0; i < 50; i += 2) {
        expected.push_back(i);
    }
    for (int i = 100; i < 105; ++i) {
        expected.push_back(i);
    }
    EXPECT_EQ(order, expected);
}

TEST(EventQueue, StaleHandleAfterSlotReuseIsRejected) {
    EventQueue q;
    const auto old = q.push(1_sec, [] {});
    q.pop(); // fires; the slot returns to the free list
    // The next push recycles the slot with a bumped generation.
    const auto fresh = q.push(2_sec, [] {});
    EXPECT_FALSE(q.cancel(old)) << "stale handle must not cancel the new event";
    EXPECT_EQ(q.size(), 1U);
    EXPECT_TRUE(q.cancel(fresh));
    EXPECT_FALSE(q.cancel(fresh)) << "double cancel";
}

TEST(EventQueue, CancelHeavyWorkloadCompactsTombstones) {
    // Push many, cancel nearly all without popping: the compaction policy
    // (tombstones > heap/2) must bound heap growth to O(live).
    EventQueue q;
    std::vector<routesync::sim::EventHandle> handles;
    const int kEvents = 4096;
    for (int i = 0; i < kEvents; ++i) {
        handles.push_back(
            q.push(SimTime::seconds(static_cast<double>(i)), [] {}));
    }
    for (int i = 0; i < kEvents; ++i) {
        if (i % 8 != 0) {
            ASSERT_TRUE(q.cancel(handles[static_cast<std::size_t>(i)]));
        }
    }
    const std::size_t live = static_cast<std::size_t>(kEvents) / 8;
    EXPECT_EQ(q.size(), live);
    // 7/8 cancelled; without compaction heap_entries() would still be
    // 4096. The policy guarantees tombstones <= half the heap.
    EXPECT_LE(q.heap_entries(), 2 * live + 1);
    // Everything still pops in order afterwards.
    SimTime last = SimTime::seconds(-1);
    std::size_t popped = 0;
    while (!q.empty()) {
        const auto p = q.pop();
        EXPECT_GT(p.time, last);
        last = p.time;
        ++popped;
    }
    EXPECT_EQ(popped, live);
}

TEST(EventQueue, RepeatedRescheduleDoesNotGrowMemory) {
    // The routing-timer pattern the compaction policy exists for: a
    // timer that is almost always cancelled and rescheduled before it
    // fires. Heap entries must stay bounded by a constant, not grow by
    // one per reschedule.
    EventQueue q;
    auto h = q.push(1_sec, [] {});
    for (int i = 2; i < 20000; ++i) {
        ASSERT_TRUE(q.cancel(h));
        h = q.push(SimTime::seconds(static_cast<double>(i)), [] {});
    }
    EXPECT_EQ(q.size(), 1U);
    EXPECT_LE(q.heap_entries(), 64U + 1U); // kCompactMinHeap bounds the slack
}

TEST(EventQueue, StressMatchesReferenceModel) {
    // Randomized interleaving of push/cancel/pop with heavy timestamp
    // collisions, checked against a straightforward reference (stable
    // sort by time == FIFO tie-break). Also exercises size()/empty()
    // invariants throughout.
    struct Ref {
        double time;
        int tag;
        bool cancelled = false;
    };
    EventQueue q;
    std::vector<Ref> ref;
    std::vector<std::pair<routesync::sim::EventHandle, std::size_t>> live_handles;
    std::vector<int> popped_tags;
    std::vector<int> expected_tags;
    std::uint64_t rng_state = 12345;
    const auto rnd = [&rng_state](std::uint64_t mod) {
        // xorshift64 — deterministic, no <random> dependency.
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        return rng_state % mod;
    };
    int next_tag = 0;
    std::size_t live = 0;
    for (int step = 0; step < 20000; ++step) {
        const auto op = rnd(10);
        if (op < 5) { // push (times drawn from 16 values: many ties)
            const double t = static_cast<double>(rnd(16));
            const int tag = next_tag++;
            live_handles.emplace_back(
                q.push(SimTime::seconds(t),
                       [&popped_tags, tag] { popped_tags.push_back(tag); }),
                ref.size());
            ref.push_back(Ref{t, tag});
            ++live;
        } else if (op < 7) { // cancel a random live handle
            if (!live_handles.empty()) {
                const auto pick = rnd(live_handles.size());
                const auto [h, ri] = live_handles[pick];
                ASSERT_TRUE(q.cancel(h));
                ref[ri].cancelled = true;
                live_handles.erase(live_handles.begin() +
                                   static_cast<std::ptrdiff_t>(pick));
                --live;
            }
        } else { // pop the earliest
            if (!q.empty()) {
                auto p = q.pop();
                p.callback(); // appends the popped event's real tag
                // Reference: earliest non-cancelled; ref is in push order,
                // so the first minimum is the FIFO winner among ties.
                std::size_t best = ref.size();
                for (std::size_t i = 0; i < ref.size(); ++i) {
                    if (!ref[i].cancelled &&
                        (best == ref.size() || ref[i].time < ref[best].time)) {
                        best = i;
                    }
                }
                ASSERT_NE(best, ref.size());
                EXPECT_EQ(p.time.sec(), ref[best].time);
                expected_tags.push_back(ref[best].tag);
                std::erase_if(live_handles,
                              [best](const auto& e) { return e.second == best; });
                ref[best].cancelled = true; // consumed
                --live;
            }
        }
        ASSERT_EQ(q.size(), live);
        ASSERT_EQ(q.empty(), live == 0);
    }
    EXPECT_EQ(popped_tags, expected_tags);
}

} // namespace
