// Tests for the cancellable event queue.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"

namespace {

using routesync::sim::EventQueue;
using routesync::sim::SimTime;
using namespace routesync::sim::literals;

TEST(EventQueue, StartsEmpty) {
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0U);
}

TEST(EventQueue, PopsInTimeOrder) {
    EventQueue q;
    std::vector<int> order;
    q.push(3_sec, [&] { order.push_back(3); });
    q.push(1_sec, [&] { order.push_back(1); });
    q.push(2_sec, [&] { order.push_back(2); });
    while (!q.empty()) {
        q.pop().callback();
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInPushOrder) {
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i) {
        q.push(5_sec, [&order, i] { order.push_back(i); });
    }
    while (!q.empty()) {
        q.pop().callback();
    }
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    }
}

TEST(EventQueue, NextTimeReportsEarliestLiveEvent) {
    EventQueue q;
    q.push(4_sec, [] {});
    const auto early = q.push(2_sec, [] {});
    EXPECT_EQ(q.next_time(), 2_sec);
    EXPECT_TRUE(q.cancel(early));
    EXPECT_EQ(q.next_time(), 4_sec);
}

TEST(EventQueue, CancelRemovesEvent) {
    EventQueue q;
    bool fired = false;
    const auto h = q.push(1_sec, [&] { fired = true; });
    EXPECT_TRUE(q.cancel(h));
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails) {
    EventQueue q;
    const auto h = q.push(1_sec, [] {});
    EXPECT_TRUE(q.cancel(h));
    EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, CancelAfterFireFails) {
    EventQueue q;
    const auto h = q.push(1_sec, [] {});
    q.pop().callback();
    EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, CancelBogusHandleFails) {
    EventQueue q;
    EXPECT_FALSE(q.cancel({}));
    EXPECT_FALSE(q.cancel({.id = 9999}));
}

TEST(EventQueue, SizeTracksLiveEvents) {
    EventQueue q;
    const auto a = q.push(1_sec, [] {});
    q.push(2_sec, [] {});
    EXPECT_EQ(q.size(), 2U);
    q.cancel(a);
    EXPECT_EQ(q.size(), 1U);
    q.pop();
    EXPECT_EQ(q.size(), 0U);
}

TEST(EventQueue, PopSkipsCancelledHead) {
    EventQueue q;
    const auto a = q.push(1_sec, [] {});
    q.push(2_sec, [] {});
    q.cancel(a);
    EXPECT_EQ(q.pop().time, 2_sec);
}

TEST(EventQueue, EmptyCallbackThrows) {
    EventQueue q;
    EXPECT_THROW(q.push(1_sec, nullptr), std::invalid_argument);
}

TEST(EventQueue, ManyInterleavedOperationsStayConsistent) {
    EventQueue q;
    std::vector<routesync::sim::EventHandle> handles;
    for (int i = 0; i < 1000; ++i) {
        handles.push_back(
            q.push(SimTime::seconds(static_cast<double>(i % 37)), [] {}));
    }
    // Cancel every third.
    std::size_t cancelled = 0;
    for (std::size_t i = 0; i < handles.size(); i += 3) {
        ASSERT_TRUE(q.cancel(handles[i]));
        ++cancelled;
    }
    EXPECT_EQ(q.size(), 1000U - cancelled);
    SimTime last = SimTime::seconds(-1);
    std::size_t popped = 0;
    while (!q.empty()) {
        const auto p = q.pop();
        EXPECT_GE(p.time, last);
        last = p.time;
        ++popped;
    }
    EXPECT_EQ(popped, 1000U - cancelled);
}

} // namespace
