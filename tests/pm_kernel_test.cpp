// Differential tests for the PM fast-path kernel (core/pm_kernel.hpp).
//
// The kernel's contract is *bit-identity* with the engine-backed
// PeriodicMessagesModel: same RNG draw order, same (time, FIFO) event
// execution order, same events_processed count, same callback streams,
// and the same final node state. The tests here enforce that over a
// randomized sample of the whole parameter space (N, Tp, Tr, Tc, start
// condition, notification mode, reset-at-expiry, per-node periods and
// costs, explicit phases, triggered updates), plus fuzz the calendar
// queue against a reference ordering.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <queue>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/core.hpp"
#include "sim/sim.hpp"

namespace {

using namespace routesync;

// ---------------------------------------------------------------------------
// PmCalendarQueue vs a reference (time, seq)-ordered vector.

struct RefEvent {
    double time;
    std::uint64_t seq;
    std::uint32_t kind;
    std::uint32_t node;
};

bool ref_before(const RefEvent& a, const RefEvent& b) {
    if (a.time != b.time) {
        return a.time < b.time;
    }
    return a.seq < b.seq;
}

TEST(PmCalendarQueue, MatchesReferenceOrderUnderFuzz) {
    std::mt19937_64 rng{20260805};
    for (int round = 0; round < 50; ++round) {
        // Mixed horizons: accurate, too small (everything overflows), and
        // degenerate-tiny. The queue must stay correct for all of them.
        const double horizon =
            round % 3 == 0 ? 100.0 : (round % 3 == 1 ? 1.0 : 1e-6);
        core::PmCalendarQueue q{horizon};
        std::vector<RefEvent> ref;
        std::uint64_t seq = 0;
        double now = 0.0;
        std::uniform_real_distribution<double> ahead{0.0, 150.0};
        std::uniform_int_distribution<int> burst{1, 8};
        while (seq < 400 || !ref.empty()) {
            // Push a burst at or after `now` (the kernel only schedules
            // from dispatch, so pushes never precede the cursor).
            if (seq < 400) {
                const int k = burst(rng);
                double last = now;
                for (int i = 0; i < k; ++i) {
                    // Every other push reuses the previous time: FIFO
                    // tie-break coverage.
                    const double t = i % 2 == 0 ? now + ahead(rng) : last;
                    last = t;
                    const auto kind = static_cast<std::uint32_t>(seq % 4);
                    const auto node = static_cast<std::uint32_t>(seq % 7);
                    q.push(t, seq, kind, node);
                    ref.push_back({t, seq, kind, node});
                    ++seq;
                }
            }
            // Pop a few and check exact agreement with the reference.
            const int pops = burst(rng);
            for (int i = 0; i < pops && !ref.empty(); ++i) {
                const auto it = std::min_element(ref.begin(), ref.end(), ref_before);
                ASSERT_FALSE(q.empty());
                const core::PmEvent& e = q.peek_min();
                ASSERT_EQ(e.time, it->time);
                ASSERT_EQ(e.seq, it->seq);
                ASSERT_EQ(e.kind, it->kind);
                ASSERT_EQ(e.node, it->node);
                now = e.time;
                q.pop_min();
                ref.erase(it);
            }
        }
        EXPECT_TRUE(q.empty());
        EXPECT_EQ(q.size(), 0U);
    }
}

TEST(PmCalendarQueue, DrainsOverflowAcrossManyHorizons) {
    // Events spread over ~1000x the horizon force repeated
    // overflow->bucket folds and long bitmap skips.
    core::PmCalendarQueue q{1.0};
    std::mt19937_64 rng{7};
    std::uniform_real_distribution<double> t{0.0, 1000.0};
    std::vector<RefEvent> ref;
    for (std::uint64_t s = 0; s < 500; ++s) {
        const double at = t(rng);
        q.push(at, s, 0, 0);
        ref.push_back({at, s, 0, 0});
    }
    std::stable_sort(ref.begin(), ref.end(), ref_before);
    for (const RefEvent& want : ref) {
        ASSERT_FALSE(q.empty());
        const core::PmEvent& e = q.peek_min();
        EXPECT_EQ(e.time, want.time);
        EXPECT_EQ(e.seq, want.seq);
        q.pop_min();
    }
    EXPECT_TRUE(q.empty());
}

TEST(PmCalendarQueue, SameDayBurstDrainsWithInterleavedPushes) {
    // The batched-expiry regime: thousands of (often equal-time) events
    // land in ONE calendar day, the bucket is sorted once into a run, and
    // pushes keep arriving for the same day while the run drains — the
    // spill lane must interleave them in exact (time, seq) order. This is
    // what a synchronized metro-scale cluster does to the queue every
    // round.
    std::mt19937_64 rng{0xb0c1e7ULL};
    const auto min_cmp = [](const RefEvent& a, const RefEvent& b) {
        return ref_before(b, a); // std::priority_queue keeps the max on top
    };
    std::priority_queue<RefEvent, std::vector<RefEvent>, decltype(min_cmp)>
        ref(min_cmp);
    core::PmCalendarQueue q{100.0}; // day width ~0.1 s
    std::uint64_t seq = 0;
    const double day_start = 50.0;
    std::uniform_real_distribution<double> jitter{0.0, 0.04};
    const auto push = [&](double t) {
        q.push(t, seq, 0, static_cast<std::uint32_t>(seq % 97));
        ref.push(RefEvent{t, seq, 0, static_cast<std::uint32_t>(seq % 97)});
        ++seq;
    };

    // 4000 events before the first pop: ~half exactly equal-time (the
    // synchronized-cluster shape), the rest jittered inside the same day.
    for (int i = 0; i < 4000; ++i) {
        push(i % 2 == 0 ? day_start : day_start + jitter(rng));
    }
    std::uint64_t pops = 0;
    while (!ref.empty()) {
        ASSERT_FALSE(q.empty());
        const core::PmEvent& e = q.peek_min();
        const RefEvent want = ref.top();
        ASSERT_EQ(e.time, want.time) << "pop " << pops;
        ASSERT_EQ(e.seq, want.seq) << "pop " << pops;
        ASSERT_EQ(e.node, want.node) << "pop " << pops;
        const double now = e.time;
        q.pop_min();
        ref.pop();
        ++pops;
        // While the sorted run drains, keep feeding the same day (pushes
        // at the current time land in the already-sorted cursor bucket —
        // the spill path). Stop feeding eventually so the test ends.
        if (pops % 8 == 0 && seq < 6000) {
            for (int i = 0; i < 4; ++i) {
                push(now + (i % 2 == 0 ? 0.0 : jitter(rng) * 1e-3));
            }
        }
    }
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(pops, seq);
}

// ---------------------------------------------------------------------------
// Randomized differential: kernel vs engine-backed model.

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffU;
        h *= 1099511628211ULL;
    }
    return h;
}

std::uint64_t hash_bits(std::uint64_t h, double d) {
    return fnv1a(h, std::bit_cast<std::uint64_t>(d));
}

/// Callback stream digest: every on_transmit / on_timer_set event, in
/// order, folded into one hash. Any reordering, drop, or changed
/// timestamp diverges the digest.
struct StreamHash {
    std::uint64_t h = 1469598103934665603ULL;
    void transmit(int node, sim::SimTime t) {
        h = fnv1a(h, 0x11);
        h = fnv1a(h, static_cast<std::uint64_t>(node));
        h = hash_bits(h, t.sec());
    }
    void timer_set(int node, sim::SimTime t) {
        h = fnv1a(h, 0x22);
        h = fnv1a(h, static_cast<std::uint64_t>(node));
        h = hash_bits(h, t.sec());
    }
};

std::uint64_t node_state_hash(std::uint64_t h, const core::NodeView& v) {
    h = hash_bits(h, v.next_expiry.sec());
    h = hash_bits(h, v.busy_until.sec());
    h = fnv1a(h, v.busy ? 1 : 0);
    h = fnv1a(h, v.transmissions);
    return h;
}

core::ModelParams sample_params(std::mt19937_64& rng) {
    std::uniform_real_distribution<double> u{0.0, 1.0};
    core::ModelParams p;
    p.n = 1 + static_cast<int>(rng() % 24);
    p.tp = sim::SimTime::seconds(5.0 + 145.0 * u(rng));
    p.tr = sim::SimTime::seconds(u(rng) < 0.1 ? 0.0 : p.tp.sec() * 0.05 * u(rng));
    p.tc = sim::SimTime::seconds(u(rng) < 0.1 ? 0.0 : 0.01 + 0.5 * u(rng));
    p.start = u(rng) < 0.5 ? core::StartCondition::Unsynchronized
                           : core::StartCondition::Synchronized;
    p.seed = rng();
    p.reset_at_expiry = u(rng) < 0.25;
    p.notification = u(rng) < 0.8 ? core::Notification::Immediate
                                  : core::Notification::AfterPreparation;
    if (u(rng) < 0.2) {
        p.initial_phases.resize(static_cast<std::size_t>(p.n));
        for (double& ph : p.initial_phases) {
            ph = u(rng) * p.tp.sec();
        }
    }
    if (u(rng) < 0.15) {
        p.per_node_tp.resize(static_cast<std::size_t>(p.n));
        for (double& tp : p.per_node_tp) {
            tp = p.tp.sec() * (0.8 + 0.4 * u(rng));
        }
    }
    if (u(rng) < 0.15) {
        p.per_node_tc.resize(static_cast<std::size_t>(p.n));
        for (double& tc : p.per_node_tc) {
            tc = p.tc.sec() * (0.5 + u(rng));
        }
    }
    return p;
}

TEST(PmKernelDifferential, MatchesEngineOnRandomizedParameterSweep) {
    std::mt19937_64 rng{0xf10d5ULL};
    std::uniform_real_distribution<double> u{0.0, 1.0};
    for (int point = 0; point < 200; ++point) {
        const core::ModelParams p = sample_params(rng);
        const sim::SimTime horizon =
            sim::SimTime::seconds(p.tp.sec() * (3.0 + 7.0 * u(rng)));
        const bool trigger = u(rng) < 0.2;
        const sim::SimTime trig_at = sim::SimTime::seconds(horizon.sec() * 0.45);

        // Engine-backed reference.
        StreamHash eng_stream;
        sim::Engine engine;
        core::PeriodicMessagesModel model{engine, p};
        model.on_transmit = [&](int node, sim::SimTime t) {
            eng_stream.transmit(node, t);
        };
        model.on_timer_set = [&](int node, sim::SimTime t) {
            eng_stream.timer_set(node, t);
        };
        if (trigger) {
            engine.schedule_at(trig_at, [&] { model.trigger_update_all(); });
        }
        engine.run_until(horizon);

        // Kernel under test.
        StreamHash ker_stream;
        core::PmKernel kernel{p};
        kernel.on_transmit = [&](int node, sim::SimTime t) {
            ker_stream.transmit(node, t);
        };
        kernel.on_timer_set = [&](int node, sim::SimTime t) {
            ker_stream.timer_set(node, t);
        };
        if (trigger) {
            kernel.schedule_trigger_all(trig_at);
        }
        kernel.run_until(horizon);

        ASSERT_EQ(ker_stream.h, eng_stream.h)
            << "callback stream diverged at point " << point << " (n=" << p.n
            << " seed=" << p.seed << ")";
        ASSERT_EQ(kernel.events_processed(), engine.events_processed())
            << "event count diverged at point " << point;
        ASSERT_EQ(kernel.total_transmissions(), model.total_transmissions());
        ASSERT_EQ(kernel.now().sec(), engine.now().sec());

        std::uint64_t eng_state = 1469598103934665603ULL;
        std::uint64_t ker_state = 1469598103934665603ULL;
        for (int i = 0; i < p.n; ++i) {
            eng_state = node_state_hash(eng_state, model.node(i));
            ker_state = node_state_hash(ker_state, kernel.node(i));
        }
        ASSERT_EQ(ker_state, eng_state)
            << "final node state diverged at point " << point;
    }
}

TEST(PmKernelDifferential, MatchesEngineAtLargeNSynchronizedRounds) {
    // Large-n configs where every router's timer lands in one calendar
    // day (the batched-expiry path end to end, not just the queue fuzz):
    // a synchronized start drops all n timers at t = 0, and at n ~ 1500
    // with the Figure 15 parameters an unsynchronized start collapses
    // into one busy chain within the first round. Bit-identity against
    // the engine must hold through the sorted-run + spill consumption.
    struct Case {
        int n;
        core::StartCondition start;
    };
    const Case cases[] = {
        {1500, core::StartCondition::Synchronized},
        {1500, core::StartCondition::Unsynchronized},
        {400, core::StartCondition::Synchronized},
    };
    for (const Case& c : cases) {
        core::ModelParams p;
        p.n = c.n;
        p.tp = sim::SimTime::seconds(121.0);
        p.tc = sim::SimTime::seconds(0.11);
        p.tr = sim::SimTime::seconds(0.3);
        p.start = c.start;
        p.seed = 0x5c1eULL + static_cast<std::uint64_t>(c.n);
        // Covers the initial collapse (n * Tc = 165 s busy chain at
        // n = 1500) plus the first fully synchronized re-arm round.
        const sim::SimTime horizon = sim::SimTime::seconds(450.0);

        StreamHash eng_stream;
        sim::Engine engine;
        core::PeriodicMessagesModel model{engine, p};
        model.on_transmit = [&](int node, sim::SimTime t) {
            eng_stream.transmit(node, t);
        };
        model.on_timer_set = [&](int node, sim::SimTime t) {
            eng_stream.timer_set(node, t);
        };
        engine.run_until(horizon);

        StreamHash ker_stream;
        core::PmKernel kernel{p};
        kernel.on_transmit = [&](int node, sim::SimTime t) {
            ker_stream.transmit(node, t);
        };
        kernel.on_timer_set = [&](int node, sim::SimTime t) {
            ker_stream.timer_set(node, t);
        };
        kernel.run_until(horizon);

        ASSERT_EQ(ker_stream.h, eng_stream.h)
            << "callback stream diverged (n=" << c.n << ")";
        ASSERT_EQ(kernel.events_processed(), engine.events_processed());
        ASSERT_EQ(kernel.total_transmissions(), model.total_transmissions());
        ASSERT_GT(kernel.total_transmissions(), 0U);
        std::uint64_t eng_state = 1469598103934665603ULL;
        std::uint64_t ker_state = 1469598103934665603ULL;
        for (int i = 0; i < p.n; ++i) {
            eng_state = node_state_hash(eng_state, model.node(i));
            ker_state = node_state_hash(ker_state, kernel.node(i));
        }
        ASSERT_EQ(ker_state, eng_state)
            << "final node state diverged (n=" << c.n << ")";
        EXPECT_GT(kernel.state_bytes(), 0U);
    }
}

TEST(PmKernelDifferential, ExperimentBackendsAgreeOnClusterSeries) {
    // The same differential through run_experiment: the full
    // ClusterTracker series (per-round largest, first-hit tables, cluster
    // events) and the run summary must match field for field.
    std::mt19937_64 rng{0xc105e5ULL};
    std::uniform_real_distribution<double> u{0.0, 1.0};
    for (int point = 0; point < 24; ++point) {
        core::ExperimentConfig cfg;
        cfg.params = sample_params(rng);
        // Clusters need the coupling mechanism on.
        cfg.params.reset_at_expiry = false;
        cfg.max_time =
            sim::SimTime::seconds(cfg.params.tp.sec() * (4.0 + 8.0 * u(rng)));
        cfg.record_rounds = true;
        cfg.record_cluster_events = true;
        cfg.transmit_stride = 3;
        if (u(rng) < 0.3) {
            cfg.stop_on_full_sync = true;
        }
        if (u(rng) < 0.2) {
            cfg.trigger_all_at =
                sim::SimTime::seconds(cfg.max_time.sec() * 0.5);
        }

        cfg.backend = core::ExperimentBackend::Engine;
        const core::ExperimentResult eng = core::run_experiment(cfg);
        cfg.backend = core::ExperimentBackend::FastKernel;
        const core::ExperimentResult ker = core::run_experiment(cfg);

        ASSERT_EQ(ker.rounds_closed, eng.rounds_closed) << "point " << point;
        ASSERT_EQ(ker.rounds_unsynchronized, eng.rounds_unsynchronized);
        ASSERT_EQ(ker.total_transmissions, eng.total_transmissions);
        ASSERT_EQ(ker.events_processed, eng.events_processed);
        ASSERT_EQ(ker.end_time_sec, eng.end_time_sec);
        ASSERT_EQ(ker.full_sync_time_sec, eng.full_sync_time_sec);
        ASSERT_EQ(ker.breakup_time_sec, eng.breakup_time_sec);

        ASSERT_EQ(ker.rounds.size(), eng.rounds.size());
        for (std::size_t i = 0; i < eng.rounds.size(); ++i) {
            ASSERT_EQ(ker.rounds[i].round, eng.rounds[i].round);
            ASSERT_EQ(ker.rounds[i].largest, eng.rounds[i].largest);
            ASSERT_EQ(ker.rounds[i].end_time.sec(), eng.rounds[i].end_time.sec());
        }
        ASSERT_EQ(ker.cluster_events.size(), eng.cluster_events.size());
        for (std::size_t i = 0; i < eng.cluster_events.size(); ++i) {
            ASSERT_EQ(ker.cluster_events[i].time.sec(),
                      eng.cluster_events[i].time.sec());
            ASSERT_EQ(ker.cluster_events[i].size, eng.cluster_events[i].size);
        }
        ASSERT_EQ(ker.first_hit_up.size(), eng.first_hit_up.size());
        for (std::size_t i = 0; i < eng.first_hit_up.size(); ++i) {
            ASSERT_EQ(ker.first_hit_up[i], eng.first_hit_up[i]);
            ASSERT_EQ(ker.first_hit_down[i], eng.first_hit_down[i]);
        }
        ASSERT_EQ(ker.transmits.size(), eng.transmits.size());
        for (std::size_t i = 0; i < eng.transmits.size(); ++i) {
            ASSERT_EQ(ker.transmits[i].node, eng.transmits[i].node);
            ASSERT_EQ(ker.transmits[i].time_sec, eng.transmits[i].time_sec);
            ASSERT_EQ(ker.transmits[i].offset_sec, eng.transmits[i].offset_sec);
        }
    }
}

// ---------------------------------------------------------------------------
// Targeted behaviour.

TEST(PmKernel, SharedBusyFastVariantSelection) {
    core::ModelParams p;
    p.n = 4;
    EXPECT_TRUE(core::PmKernel{p}.shared_busy());

    core::ModelParams after = p;
    after.notification = core::Notification::AfterPreparation;
    EXPECT_FALSE(core::PmKernel{after}.shared_busy());

    core::ModelParams mixed = p;
    mixed.per_node_tc = {0.1, 0.2, 0.1, 0.1};
    EXPECT_FALSE(core::PmKernel{mixed}.shared_busy());
}

TEST(PmKernel, ValidationMatchesEngineModel) {
    // The kernel must reject bad params with the model's exact messages —
    // callers switching backends must not see a different contract.
    auto message_of = [](auto&& make) -> std::string {
        try {
            make();
        } catch (const std::invalid_argument& e) {
            return e.what();
        }
        return {};
    };
    core::ModelParams bad_n;
    bad_n.n = 0;
    core::ModelParams bad_phases;
    bad_phases.n = 3;
    bad_phases.initial_phases = {0.0, 1.0};
    for (const core::ModelParams& p : {bad_n, bad_phases}) {
        const std::string engine_msg = message_of([&] {
            sim::Engine engine;
            core::PeriodicMessagesModel model{engine, p};
        });
        const std::string kernel_msg =
            message_of([&] { core::PmKernel kernel{p}; });
        EXPECT_FALSE(engine_msg.empty());
        EXPECT_EQ(kernel_msg, engine_msg);
    }
}

TEST(PmKernel, StopHaltsInsideRun) {
    core::ModelParams p;
    p.n = 5;
    p.seed = 9;
    core::PmKernel kernel{p};
    int fires = 0;
    kernel.on_transmit = [&](int, sim::SimTime) {
        if (++fires == 3) {
            kernel.stop();
        }
    };
    kernel.run_until(sim::SimTime::seconds(1e6));
    EXPECT_EQ(fires, 3);
    EXPECT_TRUE(kernel.stop_requested());
    EXPECT_LT(kernel.now().sec(), 1e6);
    kernel.clear_stop();
    kernel.run_until(sim::SimTime::seconds(1e6));
    EXPECT_GT(fires, 3);
    EXPECT_EQ(kernel.now().sec(), 1e6);
}

} // namespace
