// Tests for the composable element layer (net/elements/): port typing
// and wiring validation, the declarative wire() spec, queue-discipline
// interchangeability when no drops occur, RED's drop accounting, and
// determinism of RED runs under the parallel runner.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/elements/elements.hpp"
#include "net/link.hpp"
#include "obs/metrics.hpp"
#include "parallel/parallel.hpp"
#include "scenarios/shared_lan_scenario.hpp"
#include "sim/engine.hpp"

namespace {

using namespace routesync;
using namespace routesync::net;
using namespace routesync::net::elements;

PooledPacket make_packet(std::uint64_t seq, std::uint32_t bytes = 100) {
    Packet p;
    p.src = 1;
    p.dst = 2;
    p.seq = seq;
    p.size_bytes = bytes;
    return PacketPool::local().acquire(std::move(p));
}

// ---- port typing and wiring validation ---------------------------------

TEST(ElementGraph, ConnectRejectsKindMismatch) {
    sim::Engine engine;
    ElementGraph g{engine};
    g.add<FifoQueue>("q");
    g.add<CallbackSink>("sink", [](PooledPacket) {});
    // q's output 0 is pull, sink's input 0 is push: illegal.
    EXPECT_THROW(g.connect("q", 0, "sink", 0), std::invalid_argument);
}

TEST(ElementGraph, ConnectRejectsOutOfRangePorts) {
    sim::Engine engine;
    ElementGraph g{engine};
    g.add<PeriodicAgent>("a", PeriodicAgentConfig{});
    g.add<CallbackSink>("sink", [](PooledPacket) {});
    EXPECT_THROW(g.connect("a", 1, "sink", 0), std::invalid_argument);
    EXPECT_THROW(g.connect("a", 0, "sink", 3), std::invalid_argument);
    EXPECT_THROW(g.connect("a", -1, "sink", 0), std::invalid_argument);
}

TEST(ElementGraph, ConnectRejectsDoubleConnections) {
    sim::Engine engine;
    ElementGraph g{engine};
    g.add<PeriodicAgent>("a", PeriodicAgentConfig{});
    g.add<PeriodicAgent>("b", PeriodicAgentConfig{});
    g.add<CallbackSink>("sink", [](PooledPacket) {});
    g.add<CallbackSink>("sink2", [](PooledPacket) {});
    g.connect("a", 0, "sink", 0);
    // Same output again, and a second writer into the same input.
    EXPECT_THROW(g.connect("a", 0, "sink2", 0), std::invalid_argument);
    EXPECT_THROW(g.connect("b", 0, "sink", 0), std::invalid_argument);
}

TEST(ElementGraph, AddRejectsDuplicateNamesAndGetUnknownThrows) {
    sim::Engine engine;
    ElementGraph g{engine};
    g.add<FifoQueue>("q");
    EXPECT_THROW(g.add<FifoQueue>("q"), std::invalid_argument);
    EXPECT_THROW((void)g.get("nope"), std::invalid_argument);
    EXPECT_EQ(g.find("nope"), nullptr);
    EXPECT_NE(g.find("q"), nullptr);
}

TEST(ElementGraph, FinalizeCatchesDanglingPushOutput) {
    sim::Engine engine;
    ElementGraph g{engine};
    // DelayLink's "out"/"overflow" push outputs are unconnected.
    g.add<DelayLink>("tx", 1e6, sim::SimTime::millis(1));
    try {
        g.finalize();
        FAIL() << "finalize() accepted a dangling push output";
    } catch (const std::logic_error& e) {
        EXPECT_NE(std::string{e.what()}.find("tx"), std::string::npos);
    }
}

TEST(ElementGraph, FinalizeAllowsEntryAndExitPorts) {
    sim::Engine engine;
    ElementGraph g{engine};
    // A lone queue: push input (entry) and pull output (exit) may dangle.
    g.add<FifoQueue>("q");
    EXPECT_NO_THROW(g.finalize());
    EXPECT_TRUE(g.finalized());
}

TEST(ElementGraph, WireParsesChainsPortsAndComments) {
    sim::Engine engine;
    ElementGraph g{engine};
    g.add<DelayLink>("tx", 1e6, sim::SimTime::millis(1));
    g.add<FifoQueue>("q");
    g.add<CallbackSink>("sink", [](PooledPacket) {});
    g.wire("// the link shape\n"
           "tx[1] -> q; q -> [1]tx\n"
           "tx -> sink");
    EXPECT_NO_THROW(g.finalize());
    auto& tx = g.get("tx");
    EXPECT_TRUE(tx.output_connected(0));
    EXPECT_TRUE(tx.output_connected(1));
    EXPECT_TRUE(tx.input_connected(1));
}

TEST(ElementGraph, WireSpecRoundTripsThroughWire) {
    sim::Engine engine;
    ElementGraph g{engine};
    g.add<DelayLink>("tx", 1e6, sim::SimTime::millis(1));
    g.add<FifoQueue>("q");
    g.add<CallbackSink>("sink", [](PooledPacket) {});
    g.wire("tx[1] -> q; q -> [1]tx; tx -> sink");
    const std::string spec = g.wire_spec();

    // Declarations: one `// name :: Kind` comment per element.
    EXPECT_NE(spec.find("// tx :: DelayLink"), std::string::npos);
    EXPECT_NE(spec.find("// q :: FifoQueue"), std::string::npos);
    EXPECT_NE(spec.find("// sink :: CallbackSink"), std::string::npos);
    // Connections in `a[p] -> [q]b` form.
    EXPECT_NE(spec.find("tx[0] -> [0]sink"), std::string::npos);
    EXPECT_NE(spec.find("tx[1] -> [0]q"), std::string::npos);
    EXPECT_NE(spec.find("q[0] -> [1]tx"), std::string::npos);

    // Round trip: wiring a fresh graph of the same elements from the
    // spec reproduces the spec exactly.
    sim::Engine engine2;
    ElementGraph g2{engine2};
    g2.add<DelayLink>("tx", 1e6, sim::SimTime::millis(1));
    g2.add<FifoQueue>("q");
    g2.add<CallbackSink>("sink", [](PooledPacket) {});
    g2.wire(spec);
    EXPECT_NO_THROW(g2.finalize());
    EXPECT_EQ(g2.wire_spec(), spec);
}

TEST(ElementGraph, OutputPeerReportsWiring) {
    sim::Engine engine;
    ElementGraph g{engine};
    auto& agent = g.add<PeriodicAgent>("a", PeriodicAgentConfig{});
    auto& sink = g.add<CallbackSink>("sink", [](PooledPacket) {});
    EXPECT_EQ(agent.output_peer(0).element, nullptr); // not wired yet
    g.connect("a", 0, "sink", 0);
    const Element::PeerView peer = agent.output_peer(0);
    EXPECT_EQ(peer.element, &sink);
    EXPECT_EQ(peer.port, 0);
    EXPECT_EQ(agent.output_peer(5).element, nullptr); // out of range
}

// Fast-path resolution caches devirtualized thunks, but introspection
// keeps reading the canonical Peer table: wire_spec() and output_peer()
// must answer identically before and after a Fast finalize, and a graph
// rebuilt from the post-finalize spec must reproduce it.
TEST(ElementGraph, IntrospectionSurvivesFastFinalize) {
    sim::Engine engine;
    ElementGraph g{engine};
    g.add<DelayLink>("tx", 1e6, sim::SimTime::millis(1));
    g.add<FifoQueue>("q");
    auto& sink = g.add<CallbackSink>("sink", [](PooledPacket) {});
    g.wire("tx[1] -> q; q -> [1]tx; tx -> sink");
    const std::string before = g.wire_spec();
    const Element::PeerView peer_before = g.get("tx").output_peer(0);

    g.finalize(DispatchMode::Fast);
    ASSERT_EQ(g.dispatch_mode(), DispatchMode::Fast);
    EXPECT_EQ(g.wire_spec(), before);
    const Element::PeerView peer_after = g.get("tx").output_peer(0);
    EXPECT_EQ(peer_after.element, peer_before.element);
    EXPECT_EQ(peer_after.element, &sink);
    EXPECT_EQ(peer_after.port, peer_before.port);

    // Round trip from the post-finalize spec.
    sim::Engine engine2;
    ElementGraph g2{engine2};
    g2.add<DelayLink>("tx", 1e6, sim::SimTime::millis(1));
    g2.add<FifoQueue>("q");
    g2.add<CallbackSink>("sink", [](PooledPacket) {});
    g2.wire(g.wire_spec());
    g2.finalize(DispatchMode::Fast);
    EXPECT_EQ(g2.wire_spec(), before);
}

TEST(ElementGraph, WireRejectsUnknownNamesAndGarbage) {
    sim::Engine engine;
    ElementGraph g{engine};
    g.add<FifoQueue>("q");
    EXPECT_THROW(g.wire("q -> ghost"), std::invalid_argument);
    EXPECT_THROW(g.wire("-> q"), std::invalid_argument);
    EXPECT_THROW(g.wire("q[x] -> q"), std::invalid_argument);
}

// ---- behaviour through a wired path ------------------------------------

TEST(ElementGraph, LinkShapeDeliversInOrderWithMetrics) {
    sim::Engine engine;
    std::vector<std::uint64_t> seqs;
    Link link{engine,
              LinkConfig{.rate_bps = 1e6, .delay = sim::SimTime::millis(1),
                         .queue_packets = 16},
              [&seqs](PooledPacket p) { seqs.push_back(p->seq); }};
    for (std::uint64_t i = 0; i < 5; ++i) {
        link.send(make_packet(i));
    }
    engine.run();
    EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));

    obs::MetricsRegistry reg;
    link.graph().collect_metrics(reg, "elem.link");
    // Cut-through: packet 0 never touched the queue.
    EXPECT_EQ(reg.counter("elem.link.queue.enqueued"), 4U);
    EXPECT_EQ(reg.counter("elem.link.queue.dequeued"), 4U);
    EXPECT_EQ(reg.counter("elem.link.queue.dropped"), 0U);
    EXPECT_EQ(reg.counter("elem.link.tx.transmissions"), 5U);
    EXPECT_EQ(reg.counter("elem.link.sink.delivered"), 5U);
}

// The paper's point that the discipline only matters under pressure, in
// reverse: with zero drops the two queue elements must be externally
// indistinguishable — same delivery times, same order, no RED lottery
// draws below min_th.
TEST(ElementGraph, QueueDisciplineSwapIsEquivalentAtZeroDrop) {
    auto run = [](QueueDisc disc) {
        sim::Engine engine;
        std::vector<double> deliveries;
        LinkConfig cfg;
        cfg.rate_bps = 1e6;
        cfg.delay = sim::SimTime::millis(1);
        cfg.queue_packets = 64;
        cfg.queue_disc = disc;
        cfg.red = RedTuning{/*min_th=*/50, /*max_th=*/60, /*max_p=*/0.5,
                            /*weight=*/0.5, /*seed=*/3};
        Link link{engine, cfg, [&deliveries, &engine](PooledPacket) {
                      deliveries.push_back(engine.now().sec());
                  }};
        // Three bursts of 12 packets: real queueing (depth up to 11),
        // always far below min_th = 50.
        for (int burst = 0; burst < 3; ++burst) {
            engine.schedule_at(sim::SimTime::millis(burst * 40),
                               [&link, burst] {
                                   for (std::uint64_t i = 0; i < 12; ++i) {
                                       link.send(make_packet(
                                           static_cast<std::uint64_t>(burst) *
                                               100 +
                                           i));
                                   }
                               });
        }
        engine.run();
        return deliveries;
    };
    const auto droptail = run(QueueDisc::DropTail);
    const auto red = run(QueueDisc::Red);
    EXPECT_EQ(droptail.size(), 36U);
    EXPECT_EQ(droptail, red);
}

TEST(ElementGraph, RedQueueDropsEarlyUnderPressure) {
    sim::Engine engine;
    RedQueue q{engine, "red",
               /*max_packets=*/8,
               RedTuning{/*min_th=*/2, /*max_th=*/6, /*max_p=*/0.2,
                         /*weight=*/0.5, /*seed=*/11}};
    int accepted = 0;
    for (std::uint64_t i = 0; i < 64; ++i) {
        if (q.enqueue(make_packet(i))) {
            ++accepted;
        }
    }
    EXPECT_GT(q.early_drops() + q.forced_drops(), 0U);
    EXPECT_EQ(static_cast<std::uint64_t>(64 - accepted),
              q.early_drops() + q.forced_drops());
    EXPECT_GT(q.average(), 0.0);
    EXPECT_LE(q.size(), 8U);
}

TEST(ElementGraph, RedQueueRejectsBadTuning) {
    sim::Engine engine;
    EXPECT_THROW(RedQueue(engine, "r", 8,
                          RedTuning{/*min_th=*/6, /*max_th=*/2, /*max_p=*/0.1,
                                    /*weight=*/0.1, /*seed=*/1}),
                 std::invalid_argument);
    EXPECT_THROW(RedQueue(engine, "r", 8,
                          RedTuning{/*min_th=*/2, /*max_th=*/6, /*max_p=*/0.0,
                                    /*weight=*/0.1, /*seed=*/1}),
                 std::invalid_argument);
}

// ---- determinism -------------------------------------------------------

// The RED lottery lives in a per-queue mt19937_64, so running the same
// configs on 1 worker or 8 must produce bit-identical results (the same
// guarantee the PM sweeps advertise for --jobs).
TEST(ElementGraph, RedScenarioIsDeterministicAcrossJobs) {
    struct Counts {
        std::uint64_t delivered, drops, early, heard;
        bool operator==(const Counts&) const = default;
    };
    auto run_all = [](std::size_t jobs) {
        return parallel::map_index<Counts>(8, jobs, [](std::size_t task) {
            scenarios::SharedLanScenarioConfig cfg;
            cfg.queue_disc = QueueDisc::Red;
            cfg.max_time = sim::SimTime::seconds(120);
            cfg.seed = 1 + static_cast<std::uint64_t>(task);
            const auto r = scenarios::run_shared_lan_scenario(cfg);
            return Counts{r.frames_delivered, r.drops_queue_full,
                          r.red_early_drops, r.updates_heard};
        });
    };
    const auto serial = run_all(1);
    const auto wide = run_all(8);
    EXPECT_EQ(serial, wide);
    EXPECT_GT(serial[0].early, 0U); // the lottery genuinely ran
}

} // namespace

