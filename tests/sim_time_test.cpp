// Tests for the SimTime strong type.
#include <gtest/gtest.h>

#include "sim/time.hpp"

namespace {

using routesync::sim::SimTime;
using namespace routesync::sim::literals;

TEST(SimTime, DefaultIsZero) {
    SimTime t;
    EXPECT_EQ(t, SimTime::zero());
    EXPECT_EQ(t.sec(), 0.0);
}

TEST(SimTime, NamedConstructorsAgree) {
    EXPECT_EQ(SimTime::seconds(1.5), SimTime::millis(1500.0));
    EXPECT_EQ(SimTime::millis(2.0), SimTime::micros(2000.0));
    EXPECT_DOUBLE_EQ(SimTime::micros(1.0).sec(), 1e-6);
}

TEST(SimTime, Literals) {
    EXPECT_EQ(2_sec, SimTime::seconds(2.0));
    EXPECT_EQ(2.5_sec, SimTime::seconds(2.5));
    EXPECT_EQ(250_msec, SimTime::millis(250.0));
    EXPECT_EQ(0.5_msec, SimTime::micros(500.0));
}

TEST(SimTime, Arithmetic) {
    const SimTime a = 3_sec;
    const SimTime b = 1.5_sec;
    EXPECT_EQ(a + b, 4.5_sec);
    EXPECT_EQ(a - b, 1.5_sec);
    EXPECT_EQ(a * 2.0, 6_sec);
    EXPECT_EQ(2.0 * a, 6_sec);
    EXPECT_EQ(a / 2.0, 1.5_sec);
    EXPECT_DOUBLE_EQ(a / b, 2.0);
    EXPECT_EQ(-a, SimTime::seconds(-3.0));
}

TEST(SimTime, CompoundAssignment) {
    SimTime t = 1_sec;
    t += 2_sec;
    EXPECT_EQ(t, 3_sec);
    t -= 500_msec;
    EXPECT_EQ(t, 2.5_sec);
    t *= 4.0;
    EXPECT_EQ(t, 10_sec);
}

TEST(SimTime, Ordering) {
    EXPECT_LT(1_sec, 2_sec);
    EXPECT_LE(2_sec, 2_sec);
    EXPECT_GT(3_sec, 2_sec);
    EXPECT_NE(1_sec, 2_sec);
}

TEST(SimTime, ModulusBasic) {
    EXPECT_NEAR((10_sec).mod(3_sec).sec(), 1.0, 1e-12);
    EXPECT_NEAR((3_sec).mod(3_sec).sec(), 0.0, 1e-12);
    EXPECT_NEAR((2_sec).mod(3_sec).sec(), 2.0, 1e-12);
}

TEST(SimTime, ModulusOfNegativeIsNonNegative) {
    const SimTime t = SimTime::seconds(-1.0);
    const double r = t.mod(3_sec).sec();
    EXPECT_GE(r, 0.0);
    EXPECT_NEAR(r, 2.0, 1e-12);
}

TEST(SimTime, Infinity) {
    EXPECT_FALSE(SimTime::infinity().is_finite());
    EXPECT_TRUE((1_sec).is_finite());
    EXPECT_LT(1e300_sec, SimTime::infinity());
}

TEST(SimTime, MillisecondAccessor) {
    EXPECT_DOUBLE_EQ((1.5_sec).ms(), 1500.0);
}

} // namespace
