// Tests for cluster bookkeeping, driven with synthetic timer-set events.
#include <gtest/gtest.h>

#include "core/cluster_tracker.hpp"

namespace {

using routesync::core::ClusterTracker;
using routesync::sim::SimTime;
using namespace routesync::sim::literals;

constexpr double kRound = 121.11;

ClusterTracker make_tracker(int n = 5) {
    return ClusterTracker{n, SimTime::seconds(kRound)};
}

TEST(ClusterTracker, SimultaneousEventsFormOneCluster) {
    auto t = make_tracker();
    t.record_events(true);
    t.on_timer_set(0, 10_sec);
    t.on_timer_set(1, 10_sec);
    t.on_timer_set(2, 10_sec);
    t.on_timer_set(3, 50_sec); // closes the first group
    t.finish();
    ASSERT_GE(t.events().size(), 2U);
    EXPECT_EQ(t.events()[0].size, 3);
    EXPECT_EQ(t.events()[1].size, 1);
}

TEST(ClusterTracker, ToleranceSeparatesDistantEvents) {
    auto t = make_tracker();
    t.record_events(true);
    t.on_timer_set(0, 10_sec);
    t.on_timer_set(1, SimTime::seconds(10.001)); // 1 ms > 1 us tolerance
    t.finish();
    EXPECT_EQ(t.events()[0].size, 1);
}

TEST(ClusterTracker, ToleranceJoinsNearbyEvents) {
    ClusterTracker t{3, SimTime::seconds(kRound), SimTime::millis(10)};
    t.record_events(true);
    t.on_timer_set(0, 10_sec);
    t.on_timer_set(1, SimTime::seconds(10.005));
    t.on_timer_set(2, SimTime::seconds(10.009));
    t.finish();
    EXPECT_EQ(t.events()[0].size, 3);
}

TEST(ClusterTracker, FirstTimeSizeAtLeastRecordsGrowth) {
    auto t = make_tracker();
    t.on_timer_set(0, 5_sec);
    t.on_timer_set(1, 5_sec);
    t.on_timer_set(0, 200_sec);
    t.on_timer_set(1, 200_sec);
    t.on_timer_set(2, 200_sec);
    t.finish();
    ASSERT_TRUE(t.first_time_size_at_least(1).has_value());
    EXPECT_EQ(*t.first_time_size_at_least(1), 5_sec);
    ASSERT_TRUE(t.first_time_size_at_least(2).has_value());
    EXPECT_EQ(*t.first_time_size_at_least(2), 5_sec);
    ASSERT_TRUE(t.first_time_size_at_least(3).has_value());
    EXPECT_EQ(*t.first_time_size_at_least(3), 200_sec);
    EXPECT_FALSE(t.first_time_size_at_least(4).has_value());
}

TEST(ClusterTracker, OnFullSyncFiresAtNthMember) {
    ClusterTracker t{3, SimTime::seconds(kRound)};
    SimTime when = SimTime::zero();
    int fires = 0;
    t.on_full_sync = [&](SimTime s) {
        when = s;
        ++fires;
    };
    t.on_timer_set(0, 7_sec);
    t.on_timer_set(1, 7_sec);
    EXPECT_EQ(fires, 0);
    t.on_timer_set(2, 7_sec);
    EXPECT_EQ(fires, 1);
    EXPECT_EQ(when, 7_sec);
}

TEST(ClusterTracker, OnSizeFirstReachedFiresOncePerSize) {
    auto t = make_tracker();
    std::vector<int> sizes;
    t.on_size_first_reached = [&](int s, SimTime) { sizes.push_back(s); };
    t.on_timer_set(0, 1_sec);
    t.on_timer_set(1, 1_sec);
    t.on_timer_set(0, 150_sec);
    t.on_timer_set(1, 150_sec); // size 2 again: no new callback
    t.finish();
    EXPECT_EQ(sizes, (std::vector<int>{1, 2}));
}

TEST(ClusterTracker, RoundsRecordLargestCluster) {
    auto t = make_tracker();
    t.record_rounds(true);
    // Round 0: a pair and a single; round 1: all singles.
    t.on_timer_set(0, 10_sec);
    t.on_timer_set(1, 10_sec);
    t.on_timer_set(2, 20_sec);
    t.on_timer_set(0, SimTime::seconds(kRound + 10));
    t.on_timer_set(1, SimTime::seconds(kRound + 30));
    t.on_timer_set(2, SimTime::seconds(kRound + 50));
    t.finish();
    ASSERT_EQ(t.rounds().size(), 2U);
    EXPECT_EQ(t.rounds()[0].round, 0U);
    EXPECT_EQ(t.rounds()[0].largest, 2);
    EXPECT_EQ(t.rounds()[1].round, 1U);
    EXPECT_EQ(t.rounds()[1].largest, 1);
}

// Rounds are N *events*, not wall-clock buckets: a node whose cycle
// stretches far beyond Tp + Tc still contributes to the same round.
TEST(ClusterTracker, RoundsCountEventsNotWallClock) {
    auto t = make_tracker(); // n = 5: five events per round
    t.record_rounds(true);
    for (int i = 0; i < 5; ++i) {
        t.on_timer_set(i % 2, SimTime::seconds(10 + 400.0 * i)); // spans rounds of time
    }
    t.on_timer_set(0, SimTime::seconds(5000)); // sixth event opens round 1
    t.finish();
    ASSERT_EQ(t.rounds().size(), 2U);
    EXPECT_EQ(t.rounds()[0].round, 0U);
    EXPECT_EQ(t.rounds()[0].largest, 1);
    EXPECT_NEAR(t.rounds()[0].end_time.sec(), 10 + 400.0 * 4, 1e-9);
    EXPECT_EQ(t.rounds()[1].round, 1U);
    EXPECT_EQ(t.rounds_closed(), 2U);
}

// A group that straddles the N-event boundary counts towards both rounds.
TEST(ClusterTracker, StraddlingGroupCountsForBothRounds) {
    ClusterTracker t{3, SimTime::seconds(kRound)};
    t.record_rounds(true);
    t.on_timer_set(0, 1_sec);
    t.on_timer_set(1, 2_sec);
    // Group of 3 covering event indices 2-4: rounds 0 and 1.
    t.on_timer_set(0, 5_sec);
    t.on_timer_set(1, 5_sec);
    t.on_timer_set(2, 5_sec);
    t.on_timer_set(0, 9_sec); // index 5, round 1
    t.finish();
    ASSERT_EQ(t.rounds().size(), 2U);
    EXPECT_EQ(t.rounds()[0].largest, 3);
    EXPECT_EQ(t.rounds()[1].largest, 3);
}

TEST(ClusterTracker, FirstRoundLargestAtMostFindsBreakup) {
    ClusterTracker t{3, SimTime::seconds(kRound)};
    // Round 0 fully synchronized, round 1 a pair, round 2 singles.
    t.on_timer_set(0, 1_sec);
    t.on_timer_set(1, 1_sec);
    t.on_timer_set(2, 1_sec);
    t.on_timer_set(0, SimTime::seconds(kRound + 1));
    t.on_timer_set(1, SimTime::seconds(kRound + 1));
    t.on_timer_set(2, SimTime::seconds(kRound + 60));
    t.on_timer_set(0, SimTime::seconds(2 * kRound + 1));
    t.on_timer_set(1, SimTime::seconds(2 * kRound + 40));
    t.on_timer_set(2, SimTime::seconds(2 * kRound + 80));
    t.finish();
    // Times are the last event of the first qualifying round.
    ASSERT_TRUE(t.first_round_largest_at_most(3).has_value());
    EXPECT_NEAR(t.first_round_largest_at_most(3)->sec(), 1.0, 1e-9);
    ASSERT_TRUE(t.first_round_largest_at_most(2).has_value());
    EXPECT_NEAR(t.first_round_largest_at_most(2)->sec(), kRound + 60, 1e-9);
    ASSERT_TRUE(t.first_round_largest_at_most(1).has_value());
    EXPECT_NEAR(t.first_round_largest_at_most(1)->sec(), 2 * kRound + 80, 1e-9);
}

TEST(ClusterTracker, RoundsWithLargestAtMostCounts) {
    ClusterTracker t{3, SimTime::seconds(kRound)};
    t.on_timer_set(0, 1_sec);
    t.on_timer_set(1, 1_sec);
    t.on_timer_set(0, SimTime::seconds(kRound + 1));
    t.on_timer_set(1, SimTime::seconds(kRound + 50));
    t.finish();
    EXPECT_EQ(t.rounds_closed(), 2U);
    EXPECT_EQ(t.rounds_with_largest_at_most(1), 1U);
    EXPECT_EQ(t.rounds_with_largest_at_most(2), 2U);
    EXPECT_EQ(t.rounds_with_largest_at_most(3), 2U);
}

TEST(ClusterTracker, OutOfOrderEventsThrow) {
    auto t = make_tracker();
    t.on_timer_set(0, 10_sec);
    EXPECT_THROW(t.on_timer_set(1, 5_sec), std::logic_error);
}

TEST(ClusterTracker, QueryBoundsChecked) {
    auto t = make_tracker();
    t.finish();
    EXPECT_THROW((void)t.first_time_size_at_least(0), std::out_of_range);
    EXPECT_THROW((void)t.first_time_size_at_least(6), std::out_of_range);
    EXPECT_THROW((void)t.first_round_largest_at_most(0), std::out_of_range);
    EXPECT_THROW((void)t.rounds_with_largest_at_most(99), std::out_of_range);
}

TEST(ClusterTracker, InvalidConstruction) {
    EXPECT_THROW(ClusterTracker(0, 1_sec), std::invalid_argument);
    EXPECT_THROW(ClusterTracker(3, SimTime::zero()), std::invalid_argument);
    EXPECT_THROW(ClusterTracker(3, 1_sec, SimTime::seconds(-1)),
                 std::invalid_argument);
}

TEST(ClusterTracker, FinishIsIdempotent) {
    auto t = make_tracker();
    t.on_timer_set(0, 1_sec);
    t.finish();
    const auto rounds = t.rounds_closed();
    t.finish();
    EXPECT_EQ(t.rounds_closed(), rounds);
}

TEST(ClusterTracker, ResetReplaysIdenticalSeries) {
    // reset() reuses the tracker's scratch buffers (the batched sweep
    // path pools trackers across lanes); a reset tracker fed the same
    // event stream must reproduce the exact ClusterEvent / RoundLargest
    // series and every derived statistic of a fresh one.
    auto feed = [](ClusterTracker& t) {
        // Two rounds (n = 5): clusters of 3 + 2, then a straddling group
        // and a breakup round — exercises groups, spill, and first-hit.
        t.record_events(true);
        t.on_timer_set(0, 10_sec);
        t.on_timer_set(1, 10_sec);
        t.on_timer_set(2, 10_sec);
        t.on_timer_set(3, 40_sec);
        t.on_timer_set(4, 40_sec);
        t.on_timer_set(0, SimTime::seconds(kRound + 10));
        t.on_timer_set(1, SimTime::seconds(kRound + 30));
        t.on_timer_set(2, SimTime::seconds(kRound + 50));
        t.on_timer_set(3, SimTime::seconds(kRound + 70));
        t.on_timer_set(4, SimTime::seconds(kRound + 90));
        t.finish();
    };

    auto t = make_tracker();
    feed(t);
    const std::vector<routesync::core::ClusterEvent> events = t.events();
    const std::vector<routesync::core::RoundLargest> rounds = t.rounds();
    const auto rounds_closed = t.rounds_closed();

    int size_callbacks = 0;
    t.reset(5, SimTime::seconds(kRound));
    t.on_size_first_reached = [&size_callbacks](int, SimTime) {
        ++size_callbacks;
    };
    feed(t);

    ASSERT_EQ(t.events().size(), events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(t.events()[i].time.sec(), events[i].time.sec()) << i;
        EXPECT_EQ(t.events()[i].size, events[i].size) << i;
    }
    ASSERT_EQ(t.rounds().size(), rounds.size());
    for (std::size_t i = 0; i < rounds.size(); ++i) {
        EXPECT_EQ(t.rounds()[i].round, rounds[i].round) << i;
        EXPECT_EQ(t.rounds()[i].largest, rounds[i].largest) << i;
        EXPECT_EQ(t.rounds()[i].end_time.sec(), rounds[i].end_time.sec()) << i;
    }
    EXPECT_EQ(t.rounds_closed(), rounds_closed);
    EXPECT_GT(size_callbacks, 0) << "reset must leave callbacks settable";
    for (int s = 1; s <= 5; ++s) {
        // Derived queries agree with the first pass too.
        auto fresh = make_tracker();
        feed(fresh);
        EXPECT_EQ(t.first_time_size_at_least(s).has_value(),
                  fresh.first_time_size_at_least(s).has_value());
        if (t.first_time_size_at_least(s)) {
            EXPECT_EQ(t.first_time_size_at_least(s)->sec(),
                      fresh.first_time_size_at_least(s)->sec());
        }
        EXPECT_EQ(t.rounds_with_largest_at_most(s),
                  fresh.rounds_with_largest_at_most(s));
    }
}

TEST(ClusterTracker, ResetRevalidatesAndResizes) {
    auto t = make_tracker(5);
    t.on_timer_set(0, 1_sec);
    t.finish();
    EXPECT_THROW(t.reset(0, 1_sec), std::invalid_argument);
    EXPECT_THROW(t.reset(3, SimTime::zero()), std::invalid_argument);
    EXPECT_THROW(t.reset(3, 1_sec, SimTime::seconds(-1)), std::invalid_argument);

    // Reset to a different n: the per-size tables follow the new bound.
    t.reset(2, 1_sec);
    t.on_timer_set(0, 1_sec);
    t.on_timer_set(1, 1_sec);
    t.finish();
    EXPECT_EQ(t.n(), 2);
    EXPECT_TRUE(t.full_sync_time().has_value());
    EXPECT_THROW((void)t.first_time_size_at_least(3), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Metro scale: N = 1e5. The per-size tables are flat sentinel arrays and
// the per-round record is an O(1) histogram bump, so driving a tracker
// this wide through synthetic growth/decay streams is cheap — these tests
// pin down the invariants the big-N figure sweep relies on.

constexpr int kMetroN = 100000;

/// Feeds `t` a deterministic stream: round r (r = 0..rounds-1) holds one
/// cluster of size `largest(r)` followed by singles filling the round to
/// exactly kMetroN events.
template <typename LargestFn>
void feed_metro_rounds(ClusterTracker& t, int rounds, LargestFn largest) {
    double base = 0.0;
    for (int r = 0; r < rounds; ++r) {
        const int big = largest(r);
        for (int i = 0; i < big; ++i) {
            t.on_timer_set(i, SimTime::seconds(base + 1.0));
        }
        for (int i = big; i < kMetroN; ++i) {
            // Singles 1 ms apart (>> the 1 us tolerance) stay unclustered
            // while the whole round still fits inside kRound seconds.
            t.on_timer_set(i, SimTime::seconds(base + 2.0 + 1e-3 * (i - big)));
        }
        base += kRound;
    }
}

TEST(ClusterTracker, MetroScaleGrowthStream) {
    ClusterTracker t{kMetroN, SimTime::seconds(kRound)};
    // Rounds with largest cluster 1, 10, 100, ..., kMetroN: a clean
    // growth staircase.
    const auto largest = [](int r) {
        int s = 1;
        for (int i = 0; i < r; ++i) {
            s *= 10;
        }
        return s;
    };
    feed_metro_rounds(t, 6, largest);
    t.finish();

    EXPECT_TRUE(t.full_sync_time().has_value());
    // first_up is filled exactly up to the running max; growth is one
    // event at a time, so every size has a first-hit.
    SimTime prev = SimTime::zero();
    for (int s = 1; s <= kMetroN; s *= 10) {
        const auto up = t.first_time_size_at_least(s);
        ASSERT_TRUE(up.has_value()) << s;
        EXPECT_GE(up->sec(), prev.sec()) << s;
        prev = *up;
    }
    // Intermediate sizes inherit the first time a *larger* group grew
    // through them: size 37 was first passed on the way to 100.
    ASSERT_TRUE(t.first_time_size_at_least(37).has_value());
    EXPECT_EQ(*t.first_time_size_at_least(37), *t.first_time_size_at_least(100));

    EXPECT_EQ(t.rounds_closed(), 6U);
    EXPECT_EQ(t.rounds_with_largest_at_most(kMetroN), t.rounds_closed());
    // Cumulative counts are monotone in s and count the staircase exactly:
    // sizes below 10 cover only the first round, below 100 two rounds, ...
    EXPECT_EQ(t.rounds_with_largest_at_most(1), 1U);
    EXPECT_EQ(t.rounds_with_largest_at_most(99), 2U);
    EXPECT_EQ(t.rounds_with_largest_at_most(100), 3U);
    std::uint64_t last = 0;
    for (int s = 1; s <= kMetroN; s = s < 10 ? s + 1 : s * 3) {
        const std::uint64_t c = t.rounds_with_largest_at_most(s);
        EXPECT_GE(c, last) << s;
        last = c;
    }
}

TEST(ClusterTracker, MetroScaleDecayFillsFirstDown) {
    ClusterTracker t{kMetroN, SimTime::seconds(kRound)};
    // Largest cluster decays 1e5 -> 1e4 -> ... -> 1: first_down fills
    // from the top as record lows appear.
    const auto largest = [](int r) {
        int s = kMetroN;
        for (int i = 0; i < r; ++i) {
            s /= 10;
        }
        return s;
    };
    feed_metro_rounds(t, 6, largest);
    t.finish();

    // A round whose largest was 1e4 is the first with largest <= s for
    // every s in [1e4, 1e5).
    ASSERT_TRUE(t.first_round_largest_at_most(10000).has_value());
    ASSERT_TRUE(t.first_round_largest_at_most(99999).has_value());
    EXPECT_EQ(*t.first_round_largest_at_most(10000),
              *t.first_round_largest_at_most(99999));
    ASSERT_TRUE(t.first_round_largest_at_most(1).has_value());
    EXPECT_EQ(t.rounds_closed(), 6U);
    EXPECT_EQ(t.rounds_with_largest_at_most(1), 1U);
    EXPECT_EQ(t.rounds_with_largest_at_most(kMetroN), 6U);
    EXPECT_GT(t.state_bytes(), 0U);
}

TEST(ClusterTracker, MetroScaleRecordRoundsAutoGated) {
    // Above kAutoRecordRoundsMaxN the per-round record defaults off (the
    // counters and tables still work); opting back in still records.
    ClusterTracker big{kMetroN, SimTime::seconds(kRound)};
    feed_metro_rounds(big, 2, [](int) { return 2; });
    big.finish();
    EXPECT_EQ(big.rounds_closed(), 2U);
    EXPECT_TRUE(big.rounds().empty());

    ClusterTracker small{ClusterTracker::kAutoRecordRoundsMaxN,
                         SimTime::seconds(kRound)};
    small.on_timer_set(0, 1_sec);
    small.on_timer_set(1, SimTime::seconds(kRound + 1.0));
    small.finish();
    EXPECT_EQ(small.rounds().size(), small.rounds_closed());

    ClusterTracker opted{kMetroN, SimTime::seconds(kRound)};
    opted.record_rounds(true);
    feed_metro_rounds(opted, 2, [](int) { return 2; });
    opted.finish();
    EXPECT_EQ(opted.rounds().size(), 2U);
}

TEST(ClusterTracker, MetroScaleResetMatchesFresh) {
    // A tracker reset at metro scale is indistinguishable from a fresh
    // one: identical queries across the whole size axis.
    const auto largest = [](int r) { return (r + 1) * 12345 % kMetroN + 1; };
    const auto feed = [&](ClusterTracker& t) {
        feed_metro_rounds(t, 8, largest);
        t.finish();
    };

    ClusterTracker fresh{kMetroN, SimTime::seconds(kRound)};
    feed(fresh);

    ClusterTracker pooled{kMetroN, SimTime::seconds(kRound)};
    feed_metro_rounds(pooled, 3, [](int) { return 7; }); // dirty it first
    pooled.finish();
    pooled.reset(kMetroN, SimTime::seconds(kRound));
    feed(pooled);

    EXPECT_EQ(pooled.rounds_closed(), fresh.rounds_closed());
    for (int s = 1; s <= kMetroN; s = s < 16 ? s + 1 : s * 2 - 7) {
        ASSERT_EQ(pooled.first_time_size_at_least(s).has_value(),
                  fresh.first_time_size_at_least(s).has_value())
            << s;
        if (fresh.first_time_size_at_least(s)) {
            EXPECT_EQ(pooled.first_time_size_at_least(s)->sec(),
                      fresh.first_time_size_at_least(s)->sec())
                << s;
        }
        ASSERT_EQ(pooled.first_round_largest_at_most(s).has_value(),
                  fresh.first_round_largest_at_most(s).has_value())
            << s;
        EXPECT_EQ(pooled.rounds_with_largest_at_most(s),
                  fresh.rounds_with_largest_at_most(s))
            << s;
    }
}

} // namespace
