// Differential tests for the batched PM kernel (core/pm_kernel_batch.hpp).
//
// The batch kernel's contract is *bit-identity per lane* with the scalar
// PmKernel: same RNG draw order, same (time, FIFO) event execution
// order, same events_processed count, same callback AND trace streams,
// and the same final node state — for every lane of every batch size.
// The tests enforce that over a randomized sample of the parameter space
// (N, Tp, Tr, Tc, start condition, notification mode, reset-at-expiry,
// per-node periods and costs, explicit phases, timer policies, triggered
// updates), batched {1, 3, 8, non-divisible tail} lanes at a time, and
// then again at the run_experiment_batch level where the ClusterTracker
// series and metrics snapshots must agree field for field.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/core.hpp"
#include "core/pm_kernel_batch.hpp"
#include "obs/trace_sink.hpp"
#include "obs/tracer.hpp"
#include "sim/sim.hpp"

namespace {

using namespace routesync;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffU;
        h *= 1099511628211ULL;
    }
    return h;
}

std::uint64_t hash_bits(std::uint64_t h, double d) {
    return fnv1a(h, std::bit_cast<std::uint64_t>(d));
}

/// Callback stream digest (same scheme as pm_kernel_test): every
/// on_transmit / on_timer_set event, in order, folded into one hash.
struct StreamHash {
    std::uint64_t h = 1469598103934665603ULL;
    void transmit(int node, sim::SimTime t) {
        h = fnv1a(h, 0x11);
        h = fnv1a(h, static_cast<std::uint64_t>(node));
        h = hash_bits(h, t.sec());
    }
    void timer_set(int node, sim::SimTime t) {
        h = fnv1a(h, 0x22);
        h = fnv1a(h, static_cast<std::uint64_t>(node));
        h = hash_bits(h, t.sec());
    }
};

/// Trace sink that digests every event field — any dropped, reordered,
/// or re-payloaded trace event diverges the hash.
struct HashSink final : obs::TraceSink {
    std::uint64_t h = 1469598103934665603ULL;
    void on_event(const obs::TraceEvent& e) override {
        h = fnv1a(h, e.seq);
        h = hash_bits(h, e.time.sec());
        h = fnv1a(h, static_cast<std::uint64_t>(e.type));
        h = fnv1a(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(e.node)));
        h = fnv1a(h, static_cast<std::uint64_t>(e.a));
        h = hash_bits(h, e.b);
        h = hash_bits(h, e.x);
    }
};

std::uint64_t node_state_hash(std::uint64_t h, const core::NodeView& v) {
    h = hash_bits(h, v.next_expiry.sec());
    h = hash_bits(h, v.busy_until.sec());
    h = fnv1a(h, v.busy ? 1 : 0);
    h = fnv1a(h, v.transmissions);
    return h;
}

core::ModelParams sample_params(std::mt19937_64& rng) {
    std::uniform_real_distribution<double> u{0.0, 1.0};
    core::ModelParams p;
    p.n = 1 + static_cast<int>(rng() % 24);
    p.tp = sim::SimTime::seconds(5.0 + 145.0 * u(rng));
    p.tr = sim::SimTime::seconds(u(rng) < 0.1 ? 0.0 : p.tp.sec() * 0.05 * u(rng));
    p.tc = sim::SimTime::seconds(u(rng) < 0.1 ? 0.0 : 0.01 + 0.5 * u(rng));
    p.start = u(rng) < 0.5 ? core::StartCondition::Unsynchronized
                           : core::StartCondition::Synchronized;
    p.seed = rng();
    p.reset_at_expiry = u(rng) < 0.25;
    p.notification = u(rng) < 0.8 ? core::Notification::Immediate
                                  : core::Notification::AfterPreparation;
    if (u(rng) < 0.2) {
        p.initial_phases.resize(static_cast<std::size_t>(p.n));
        for (double& ph : p.initial_phases) {
            ph = u(rng) * p.tp.sec();
        }
    }
    if (u(rng) < 0.15) {
        p.per_node_tp.resize(static_cast<std::size_t>(p.n));
        for (double& tp : p.per_node_tp) {
            tp = p.tp.sec() * (0.8 + 0.4 * u(rng));
        }
    }
    if (u(rng) < 0.15) {
        p.per_node_tc.resize(static_cast<std::size_t>(p.n));
        for (double& tc : p.per_node_tc) {
            tc = p.tc.sec() * (0.5 + u(rng));
        }
    }
    return p;
}

/// One randomized trial spec: params plus an explicit timer policy
/// (0 = default UniformJitter, 1 = HalfPeriodJitter, 2 = FixedInterval),
/// a run horizon, and an optional trigger-all wave.
struct TrialSpec {
    core::ModelParams params;
    int policy_kind = 0;
    sim::SimTime horizon = sim::SimTime::zero();
    bool trigger = false;
    sim::SimTime trig_at = sim::SimTime::zero();
    bool trace = false;
};

std::unique_ptr<core::TimerPolicy> make_policy(const TrialSpec& spec) {
    switch (spec.policy_kind) {
    case 1:
        return std::make_unique<core::HalfPeriodJitter>(spec.params.tp);
    case 2:
        return std::make_unique<core::FixedInterval>(spec.params.tp);
    default:
        return nullptr; // kernel default: UniformJitter(tp, tr)
    }
}

TrialSpec sample_trial(std::mt19937_64& rng) {
    std::uniform_real_distribution<double> u{0.0, 1.0};
    TrialSpec spec;
    spec.params = sample_params(rng);
    const double pk = u(rng);
    spec.policy_kind = pk < 0.7 ? 0 : (pk < 0.85 ? 1 : 2);
    spec.horizon =
        sim::SimTime::seconds(spec.params.tp.sec() * (3.0 + 7.0 * u(rng)));
    spec.trigger = u(rng) < 0.2;
    spec.trig_at = sim::SimTime::seconds(spec.horizon.sec() * 0.45);
    spec.trace = u(rng) < 0.35;
    return spec;
}

/// Scalar reference digest of one trial.
struct TrialDigest {
    std::uint64_t stream = 0;
    std::uint64_t trace = 0;
    std::uint64_t events = 0;
    std::uint64_t transmissions = 0;
    double now_sec = 0.0;
    std::uint64_t state = 0;
};

TrialDigest run_scalar(const TrialSpec& spec) {
    StreamHash stream;
    HashSink sink;
    obs::Tracer tracer{sink};
    core::PmKernel kernel{spec.params, make_policy(spec),
                          spec.trace ? &tracer : nullptr};
    kernel.on_transmit = [&](int node, sim::SimTime t) {
        stream.transmit(node, t);
    };
    kernel.on_timer_set = [&](int node, sim::SimTime t) {
        stream.timer_set(node, t);
    };
    if (spec.trigger) {
        kernel.schedule_trigger_all(spec.trig_at);
    }
    kernel.run_until(spec.horizon);

    TrialDigest d;
    d.stream = stream.h;
    d.trace = sink.h;
    d.events = kernel.events_processed();
    d.transmissions = kernel.total_transmissions();
    d.now_sec = kernel.now().sec();
    d.state = 1469598103934665603ULL;
    for (int i = 0; i < spec.params.n; ++i) {
        d.state = node_state_hash(d.state, kernel.node(i));
    }
    return d;
}

TEST(PmKernelBatchDifferential, MatchesScalarKernelAcrossBatchSizes) {
    std::mt19937_64 rng{0xba7c4ULL};
    constexpr int kTrials = 212; // lands mid-batch: forces a truncated tail
    std::vector<TrialSpec> specs;
    specs.reserve(kTrials);
    for (int i = 0; i < kTrials; ++i) {
        specs.push_back(sample_trial(rng));
    }

    // Batch sizes cycle {1, 3, 8} with every fifth batch widened by 2;
    // 212 falls strictly inside the final requested batch, so the tail
    // truncates (verified below) — the non-divisible-remainder case.
    const std::size_t sizes[] = {1, 3, 8};
    std::size_t next = 0;
    std::size_t size_i = 0;
    int batches = 0;
    bool saw_truncated_tail = false;
    while (next < specs.size()) {
        const std::size_t want = sizes[size_i % 3] + (size_i % 5 == 4 ? 2 : 0);
        ++size_i;
        const std::size_t lanes = std::min(want, specs.size() - next);
        saw_truncated_tail = saw_truncated_tail || lanes != want;
        ++batches;

        std::vector<core::PmLaneSpec> lane_specs;
        lane_specs.reserve(lanes);
        std::vector<HashSink> sinks(lanes);
        std::vector<std::unique_ptr<obs::Tracer>> tracers(lanes);
        for (std::size_t l = 0; l < lanes; ++l) {
            const TrialSpec& spec = specs[next + l];
            obs::Tracer* tracer = nullptr;
            if (spec.trace) {
                tracers[l] = std::make_unique<obs::Tracer>(sinks[l]);
                tracer = tracers[l].get();
            }
            lane_specs.push_back(
                core::PmLaneSpec{spec.params, make_policy(spec), tracer});
        }
        core::PmKernelBatch batch{std::move(lane_specs)};

        std::vector<StreamHash> streams(lanes);
        batch.on_transmit = [&](std::size_t l, int node, sim::SimTime t) {
            streams[l].transmit(node, t);
        };
        batch.on_timer_set = [&](std::size_t l, int node, sim::SimTime t) {
            streams[l].timer_set(node, t);
        };
        std::vector<sim::SimTime> targets;
        targets.reserve(lanes);
        for (std::size_t l = 0; l < lanes; ++l) {
            const TrialSpec& spec = specs[next + l];
            if (spec.trigger) {
                batch.schedule_trigger_all(l, spec.trig_at);
            }
            targets.push_back(spec.horizon);
        }
        batch.run_all_until(targets);

        for (std::size_t l = 0; l < lanes; ++l) {
            const TrialSpec& spec = specs[next + l];
            const TrialDigest want_digest = run_scalar(spec);
            const std::string where = "trial " + std::to_string(next + l) +
                                      " (lane " + std::to_string(l) + " of " +
                                      std::to_string(lanes) +
                                      ", n=" + std::to_string(spec.params.n) +
                                      " seed=" + std::to_string(spec.params.seed) +
                                      ")";
            ASSERT_EQ(streams[l].h, want_digest.stream)
                << "callback stream diverged at " << where;
            ASSERT_EQ(sinks[l].h, want_digest.trace)
                << "trace stream diverged at " << where;
            ASSERT_EQ(batch.events_processed(l), want_digest.events) << where;
            ASSERT_EQ(batch.total_transmissions(l), want_digest.transmissions)
                << where;
            ASSERT_EQ(batch.now(l).sec(), want_digest.now_sec) << where;
            std::uint64_t state = 1469598103934665603ULL;
            for (int i = 0; i < spec.params.n; ++i) {
                state = node_state_hash(state, batch.node(l, i));
            }
            ASSERT_EQ(state, want_digest.state)
                << "final node state diverged at " << where;
        }
        next += lanes;
    }
    EXPECT_GE(batches, 40);
    EXPECT_TRUE(saw_truncated_tail)
        << "size pattern never produced a truncated tail batch";
}

TEST(PmKernelBatchDifferential, RunExperimentBatchAgreesWithScalarDriver) {
    // The same contract one level up: run_experiment_batch vs per-config
    // run_experiment, comparing the full ClusterTracker-derived series,
    // the stop conditions, and the metrics snapshot.
    std::mt19937_64 rng{0xbead5ULL};
    std::uniform_real_distribution<double> u{0.0, 1.0};
    std::vector<core::ExperimentConfig> configs;
    for (int point = 0; point < 36; ++point) {
        core::ExperimentConfig cfg;
        cfg.params = sample_params(rng);
        cfg.params.reset_at_expiry = false; // clusters need the coupling on
        cfg.max_time =
            sim::SimTime::seconds(cfg.params.tp.sec() * (4.0 + 8.0 * u(rng)));
        cfg.record_rounds = true;
        cfg.record_cluster_events = true;
        cfg.transmit_stride = 3;
        if (u(rng) < 0.3) {
            cfg.stop_on_full_sync = true;
        }
        if (u(rng) < 0.2) {
            cfg.stop_on_breakup_threshold = 1;
        }
        if (u(rng) < 0.2) {
            cfg.trigger_all_at = sim::SimTime::seconds(cfg.max_time.sec() * 0.5);
        }
        if (point % 9 == 4) {
            // Ineligible lanes must fall back to the scalar path without
            // disturbing their batched neighbours.
            cfg.backend = core::ExperimentBackend::Engine;
        }
        configs.push_back(std::move(cfg));
    }

    const std::vector<core::ExperimentResult> batched =
        core::run_experiment_batch(configs);
    ASSERT_EQ(batched.size(), configs.size());

    for (std::size_t i = 0; i < configs.size(); ++i) {
        const core::ExperimentResult want = core::run_experiment(configs[i]);
        const core::ExperimentResult& got = batched[i];
        ASSERT_EQ(got.rounds_closed, want.rounds_closed) << "config " << i;
        ASSERT_EQ(got.rounds_unsynchronized, want.rounds_unsynchronized);
        ASSERT_EQ(got.total_transmissions, want.total_transmissions);
        ASSERT_EQ(got.events_processed, want.events_processed);
        ASSERT_EQ(got.end_time_sec, want.end_time_sec);
        ASSERT_EQ(got.round_length_sec, want.round_length_sec);
        ASSERT_EQ(got.full_sync_time_sec, want.full_sync_time_sec);
        ASSERT_EQ(got.breakup_time_sec, want.breakup_time_sec);

        ASSERT_EQ(got.rounds.size(), want.rounds.size()) << "config " << i;
        for (std::size_t r = 0; r < want.rounds.size(); ++r) {
            ASSERT_EQ(got.rounds[r].round, want.rounds[r].round);
            ASSERT_EQ(got.rounds[r].largest, want.rounds[r].largest);
            ASSERT_EQ(got.rounds[r].end_time.sec(), want.rounds[r].end_time.sec());
        }
        ASSERT_EQ(got.cluster_events.size(), want.cluster_events.size());
        for (std::size_t e = 0; e < want.cluster_events.size(); ++e) {
            ASSERT_EQ(got.cluster_events[e].time.sec(),
                      want.cluster_events[e].time.sec());
            ASSERT_EQ(got.cluster_events[e].size, want.cluster_events[e].size);
        }
        ASSERT_EQ(got.first_hit_up.size(), want.first_hit_up.size());
        for (std::size_t s = 0; s < want.first_hit_up.size(); ++s) {
            ASSERT_EQ(got.first_hit_up[s], want.first_hit_up[s]);
            ASSERT_EQ(got.first_hit_down[s], want.first_hit_down[s]);
        }
        ASSERT_EQ(got.transmits.size(), want.transmits.size());
        for (std::size_t t = 0; t < want.transmits.size(); ++t) {
            ASSERT_EQ(got.transmits[t].node, want.transmits[t].node);
            ASSERT_EQ(got.transmits[t].time_sec, want.transmits[t].time_sec);
            ASSERT_EQ(got.transmits[t].offset_sec, want.transmits[t].offset_sec);
        }
        ASSERT_EQ(got.metrics, want.metrics) << "config " << i;
    }
}

// ---------------------------------------------------------------------------
// Targeted behaviour.

TEST(PmKernelBatch, ValidationMatchesScalarKernel) {
    auto message_of = [](auto&& make) -> std::string {
        try {
            make();
        } catch (const std::invalid_argument& e) {
            return e.what();
        }
        return {};
    };
    core::ModelParams bad_n;
    bad_n.n = 0;
    core::ModelParams bad_phases;
    bad_phases.n = 3;
    bad_phases.initial_phases = {0.0, 1.0};
    core::ModelParams good;
    good.n = 2;
    for (const core::ModelParams& p : {bad_n, bad_phases}) {
        const std::string scalar_msg =
            message_of([&] { core::PmKernel kernel{p}; });
        const std::string batch_msg = message_of([&] {
            // The bad lane rides second — validation must cover every
            // lane, not just the first.
            std::vector<core::PmLaneSpec> specs;
            specs.push_back(core::PmLaneSpec{good, nullptr, nullptr});
            specs.push_back(core::PmLaneSpec{p, nullptr, nullptr});
            core::PmKernelBatch batch{std::move(specs)};
        });
        EXPECT_FALSE(scalar_msg.empty());
        EXPECT_EQ(batch_msg, scalar_msg);
    }
}

TEST(PmKernelBatch, StopHaltsOneLaneOnly) {
    core::ModelParams p;
    p.n = 5;
    p.seed = 9;
    std::vector<core::PmLaneSpec> specs;
    specs.push_back(core::PmLaneSpec{p, nullptr, nullptr});
    p.seed = 10;
    specs.push_back(core::PmLaneSpec{p, nullptr, nullptr});
    core::PmKernelBatch batch{std::move(specs)};
    int fires = 0;
    batch.on_transmit = [&](std::size_t lane, int, sim::SimTime) {
        if (lane == 0 && ++fires == 3) {
            batch.stop(0);
        }
    };
    const sim::SimTime horizon = sim::SimTime::seconds(1e5);
    const std::vector<sim::SimTime> targets{horizon, horizon};
    batch.run_all_until(targets);
    EXPECT_EQ(fires, 3);
    EXPECT_TRUE(batch.stop_requested(0));
    EXPECT_FALSE(batch.stop_requested(1));
    EXPECT_LT(batch.now(0).sec(), 1e5);
    EXPECT_EQ(batch.now(1).sec(), 1e5);

    // clear_stop + rerun finishes lane 0 — scalar clear_stop semantics.
    batch.clear_stop(0);
    batch.run_all_until(targets);
    EXPECT_GT(fires, 3);
    EXPECT_EQ(batch.now(0).sec(), 1e5);
}

} // namespace
