// Tests for the CSMA/CD shared medium.
#include <gtest/gtest.h>

#include <vector>

#include "net/shared_lan.hpp"

namespace {

using namespace routesync;
using net::Packet;
using net::SharedLan;
using net::SharedLanConfig;
using sim::SimTime;
using namespace sim::literals;

struct Delivery {
    int station;
    std::uint64_t seq;
    double at;
};

struct Lan {
    sim::Engine engine;
    SharedLanConfig config;
    SharedLan lan;
    std::vector<Delivery> deliveries;

    explicit Lan(int stations, SharedLanConfig cfg = {})
        : config{cfg}, lan{engine, cfg} {
        for (int i = 0; i < stations; ++i) {
            lan.attach([this, i](const Packet& p) {
                deliveries.push_back(Delivery{i, p.seq, engine.now().sec()});
            });
        }
    }

    void send_at(double t, int station, std::uint64_t seq,
                 std::uint32_t bytes = 1000) {
        engine.schedule_at(SimTime::seconds(t), [this, station, seq, bytes] {
            Packet p;
            p.seq = seq;
            p.size_bytes = bytes;
            lan.send(station, p);
        });
    }
};

TEST(SharedLan, BroadcastReachesEveryOtherStation) {
    Lan lan{4};
    lan.send_at(1.0, 0, 7);
    lan.engine.run();
    ASSERT_EQ(lan.deliveries.size(), 3U);
    for (const auto& d : lan.deliveries) {
        EXPECT_NE(d.station, 0);
        EXPECT_EQ(d.seq, 7U);
        // 1000 B at 10 Mb/s = 0.8 ms, + 10 us propagation.
        EXPECT_NEAR(d.at, 1.0 + 0.0008 + 10e-6, 1e-9);
    }
    EXPECT_EQ(lan.lan.stats().collisions, 0U);
}

TEST(SharedLan, SimultaneousSendersCollideThenResolve) {
    Lan lan{3};
    lan.send_at(1.0, 0, 100);
    lan.send_at(1.0, 1, 200);
    lan.engine.run();
    EXPECT_GE(lan.lan.stats().collisions, 1U);
    // Both frames are ultimately delivered to the other two stations.
    int got_100 = 0;
    int got_200 = 0;
    for (const auto& d : lan.deliveries) {
        got_100 += d.seq == 100;
        got_200 += d.seq == 200;
    }
    EXPECT_EQ(got_100, 2);
    EXPECT_EQ(got_200, 2);
    EXPECT_EQ(lan.lan.stats().frames_delivered, 2U);
}

TEST(SharedLan, CarrierSenseDefersLateSender) {
    Lan lan{2};
    lan.send_at(1.0, 0, 1);
    // 0.5 ms into station 0's 0.8 ms transmission: carrier is visible
    // (beyond the 10 us window), so station 1 defers — no collision.
    lan.send_at(1.0005, 1, 2);
    lan.engine.run();
    EXPECT_EQ(lan.lan.stats().collisions, 0U);
    EXPECT_EQ(lan.lan.stats().frames_delivered, 2U);
    // Frame 2 starts after frame 1 + inter-frame gap.
    ASSERT_EQ(lan.deliveries.size(), 2U);
    EXPECT_GT(lan.deliveries[1].at, lan.deliveries[0].at + 0.0008);
}

TEST(SharedLan, PerStationFifoOrder) {
    Lan lan{2};
    for (std::uint64_t i = 0; i < 5; ++i) {
        lan.send_at(1.0, 0, i);
    }
    lan.engine.run();
    ASSERT_EQ(lan.deliveries.size(), 5U);
    for (std::uint64_t i = 0; i < 5; ++i) {
        EXPECT_EQ(lan.deliveries[i].seq, i);
    }
}

TEST(SharedLan, StationQueueOverflowDrops) {
    SharedLanConfig cfg;
    cfg.station_queue_packets = 3;
    Lan lan{2, cfg};
    for (std::uint64_t i = 0; i < 6; ++i) {
        lan.send_at(1.0, 0, i);
    }
    lan.engine.run();
    EXPECT_EQ(lan.lan.stats().drops_queue_full, 3U);
    EXPECT_EQ(lan.lan.stats().frames_delivered, 3U);
}

TEST(SharedLan, ExcessiveCollisionsDropFrames) {
    SharedLanConfig cfg;
    cfg.max_attempts = 1; // first collision is fatal
    Lan lan{2, cfg};
    lan.send_at(1.0, 0, 1);
    lan.send_at(1.0, 1, 2);
    lan.engine.run();
    EXPECT_EQ(lan.lan.stats().drops_excessive_collisions, 2U);
    EXPECT_EQ(lan.lan.stats().frames_delivered, 0U);
}

TEST(SharedLan, SaturatedStationApproachesLineRate) {
    SharedLanConfig cfg;
    cfg.station_queue_packets = 128;
    Lan lan{2, cfg};
    // 100 frames of 1250 B = 1 ms each at 10 Mb/s.
    for (std::uint64_t i = 0; i < 100; ++i) {
        lan.send_at(0.0, 0, i, 1250);
    }
    lan.engine.run();
    ASSERT_EQ(lan.deliveries.size(), 100U);
    const double elapsed = lan.deliveries.back().at;
    // 100 ms of payload plus 99 inter-frame gaps (~0.95 ms) and slack.
    EXPECT_GT(elapsed, 0.100);
    EXPECT_LT(elapsed, 0.110);
}

TEST(SharedLan, ManyContendersAllGetThrough) {
    Lan lan{8};
    for (int s = 0; s < 8; ++s) {
        lan.send_at(1.0, s, static_cast<std::uint64_t>(s));
    }
    lan.engine.run();
    EXPECT_EQ(lan.lan.stats().frames_delivered, 8U);
    // Each frame heard by the 7 other stations.
    EXPECT_EQ(lan.deliveries.size(), 8U * 7U);
    EXPECT_GE(lan.lan.stats().collisions, 1U);
}

TEST(SharedLan, Deterministic) {
    auto run = [] {
        Lan lan{5};
        for (int s = 0; s < 5; ++s) {
            lan.send_at(1.0, s, static_cast<std::uint64_t>(s));
        }
        lan.engine.run();
        std::vector<double> times;
        for (const auto& d : lan.deliveries) {
            times.push_back(d.at);
        }
        return times;
    };
    EXPECT_EQ(run(), run());
}

TEST(SharedLan, RejectsBadConfig) {
    sim::Engine engine;
    SharedLanConfig bad;
    bad.rate_bps = 0.0;
    EXPECT_THROW(SharedLan(engine, bad), std::invalid_argument);
    bad = SharedLanConfig{};
    bad.max_attempts = 0;
    EXPECT_THROW(SharedLan(engine, bad), std::invalid_argument);
    SharedLan lan{engine, SharedLanConfig{}};
    EXPECT_THROW(lan.attach(nullptr), std::invalid_argument);
}

} // namespace
