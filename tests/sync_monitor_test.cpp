// Tests for the synchronization observatory (obs/sync_monitor.hpp +
// obs/coupling_graph.hpp): unit behaviour of the streaming order
// parameter, detector, entropy, and coupling graph — plus the headline
// determinism contracts:
//
//   * engine vs PmKernel vs PmKernelBatch produce bit-identical sync
//     reports over randomized configs;
//   * replay_sync over a run's own trace reproduces the live monitor
//     exactly (r series endpoints, transitions, coupling graph);
//   * merged sync.* metrics are byte-identical across --jobs and
//     --batch settings.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/core.hpp"
#include "obs/run_context.hpp"
#include "obs/sync_monitor.hpp"
#include "obs/trace_sink.hpp"
#include "parallel/parallel.hpp"
#include "rng/rng.hpp"
#include "scenarios/shared_lan_scenario.hpp"

using namespace routesync;

namespace {

// ---- unit: order parameter ----------------------------------------------

TEST(SyncMonitorTest, AlignedPhasesGiveUnityOrderParameter) {
    obs::SyncMonitorConfig cfg;
    cfg.n = 4;
    cfg.period_sec = 10.0;
    obs::SyncMonitor mon{cfg};
    EXPECT_EQ(mon.r(), 0.0); // nobody armed yet
    for (int node = 0; node < 4; ++node) {
        mon.on_timer_set(node, sim::SimTime::seconds(20.0));
    }
    EXPECT_NEAR(mon.r(), 1.0, 1e-12);
}

TEST(SyncMonitorTest, OppositePhasesCancel) {
    obs::SyncMonitorConfig cfg;
    cfg.n = 2;
    cfg.period_sec = 1.0;
    obs::SyncMonitor mon{cfg};
    mon.on_timer_set(0, sim::SimTime::seconds(3.0)); // phase 0
    mon.on_timer_set(1, sim::SimTime::seconds(3.5)); // phase pi
    EXPECT_NEAR(mon.r(), 0.0, 1e-12);
}

TEST(SyncMonitorTest, RearmMovesOnlyThatNodesPhasor) {
    obs::SyncMonitorConfig cfg;
    cfg.n = 4;
    cfg.period_sec = 1.0;
    obs::SyncMonitor mon{cfg};
    for (int node = 0; node < 4; ++node) {
        mon.on_timer_set(node, sim::SimTime::seconds(1.0));
    }
    // Node 0 re-arms half a period out: sum = 3*e^{i0} + e^{i*pi}.
    mon.on_timer_set(0, sim::SimTime::seconds(1.5));
    EXPECT_NEAR(mon.r(), 0.5, 1e-12);
    // Partial population: unarmed nodes count in the denominator.
    obs::SyncMonitorConfig half = cfg;
    half.n = 8;
    obs::SyncMonitor mon8{half};
    for (int node = 0; node < 4; ++node) {
        mon8.on_timer_set(node, sim::SimTime::seconds(1.0));
    }
    EXPECT_NEAR(mon8.r(), 0.5, 1e-12);
}

// ---- unit: detector ------------------------------------------------------

TEST(SyncMonitorTest, DetectorCrossesWithHysteresis) {
    obs::SyncMonitorConfig cfg;
    cfg.n = 2;
    cfg.period_sec = 1.0;
    cfg.threshold = 0.9;
    cfg.hysteresis = 0.3; // down-crossing at 0.6
    obs::SyncMonitor mon{cfg};

    mon.on_timer_set(0, sim::SimTime::seconds(1.0));
    EXPECT_EQ(mon.transitions().size(), 0u); // r = 0.5, below threshold
    mon.on_timer_set(1, sim::SimTime::seconds(2.0));
    ASSERT_EQ(mon.transitions().size(), 1u); // r ~ 1: entered sync
    EXPECT_TRUE(mon.transitions()[0].up);
    EXPECT_EQ(mon.transitions()[0].time, sim::SimTime::seconds(2.0));

    // r drops to ~0.707 — inside the hysteresis band, no transition.
    mon.on_timer_set(1, sim::SimTime::seconds(2.25));
    EXPECT_EQ(mon.transitions().size(), 1u);
    // r drops to ~0: leaves sync.
    mon.on_timer_set(1, sim::SimTime::seconds(2.5));
    ASSERT_EQ(mon.transitions().size(), 2u);
    EXPECT_FALSE(mon.transitions()[1].up);

    mon.finish(sim::SimTime::seconds(3.0));
    EXPECT_EQ(mon.report().transitions, 2u);
    EXPECT_FALSE(mon.report().in_sync);
    EXPECT_EQ(mon.report().time_to_sync_sec, 2.0);
}

TEST(SyncMonitorTest, ConstructorValidates) {
    obs::SyncMonitorConfig cfg;
    cfg.n = 0;
    cfg.period_sec = 1.0;
    EXPECT_THROW(obs::SyncMonitor{cfg}, std::invalid_argument);
    cfg.n = 2;
    cfg.period_sec = 0.0;
    EXPECT_THROW(obs::SyncMonitor{cfg}, std::invalid_argument);
    cfg.period_sec = 1.0;
    cfg.threshold = 1.5;
    EXPECT_THROW(obs::SyncMonitor{cfg}, std::invalid_argument);
    cfg.threshold = 0.5;
    cfg.hysteresis = 0.6; // >= threshold
    EXPECT_THROW(obs::SyncMonitor{cfg}, std::invalid_argument);
}

// ---- unit: per-round entropy --------------------------------------------

TEST(SyncMonitorTest, TwoEqualClustersGiveHalfEntropy) {
    obs::SyncMonitorConfig cfg;
    cfg.n = 4;
    cfg.period_sec = 10.0;
    obs::SyncMonitor mon{cfg};
    // One round = 4 re-arms: two clusters of two.
    mon.on_timer_set(0, sim::SimTime::seconds(1.0));
    mon.on_timer_set(1, sim::SimTime::seconds(1.0));
    mon.on_timer_set(2, sim::SimTime::seconds(5.0));
    mon.on_timer_set(3, sim::SimTime::seconds(5.0));
    mon.finish(sim::SimTime::seconds(10.0));
    EXPECT_EQ(mon.report().rounds_closed, 1u);
    // H = ln 2 normalized by ln 4.
    EXPECT_NEAR(mon.report().entropy_last, 0.5, 1e-12);
    EXPECT_EQ(mon.report().largest_fraction_last, 0.5);
}

// ---- unit: coupling graph ------------------------------------------------

TEST(CouplingGraphTest, AccumulatesAndSorts) {
    obs::CouplingGraph g;
    g.add_edge(2, 1);
    g.add_edge(0, 1, 3);
    g.add_edge(2, 1); // accumulates onto the first
    EXPECT_EQ(g.edge_count(), 2u);
    EXPECT_EQ(g.total_weight(), 5u);
    EXPECT_EQ(g.node_count(), 3u);
    const auto edges = g.edges();
    ASSERT_EQ(edges.size(), 2u);
    EXPECT_EQ(edges[0].src, 0);
    EXPECT_EQ(edges[0].weight, 3u);
    EXPECT_EQ(edges[1].src, 2);
    EXPECT_EQ(edges[1].weight, 2u);

    obs::CouplingGraph h;
    h.add_edge(0, 1, 3);
    h.add_edge(2, 1, 2);
    EXPECT_TRUE(g == h);
    h.add_edge(5, 5);
    EXPECT_FALSE(g == h);
}

TEST(CouplingGraphTest, DotAndJsonExports) {
    obs::CouplingGraph g;
    g.add_edge(0, 1, 7);
    g.add_edge(1, 1, 2);
    const std::string dot = g.to_dot();
    EXPECT_NE(dot.find("digraph coupling {"), std::string::npos);
    EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
    EXPECT_NE(dot.find("weight=7"), std::string::npos);
    const std::string json = g.to_json();
    EXPECT_NE(json.find("\"total_weight\": 9"), std::string::npos);
    EXPECT_NE(json.find("\"src\": 0"), std::string::npos);
}

TEST(SyncMonitorTest, CouplingAttributesToLastTransmitter) {
    obs::SyncMonitorConfig cfg;
    cfg.n = 3;
    cfg.period_sec = 10.0;
    obs::SyncMonitor mon{cfg};
    // No transmission yet: self-attribution.
    mon.on_timer_set(0, sim::SimTime::seconds(1.0));
    mon.on_transmit(1, sim::SimTime::seconds(2.0));
    mon.on_timer_set(2, sim::SimTime::seconds(3.0)); // 1 -> 2
    mon.on_transmit(2, sim::SimTime::seconds(4.0));
    mon.on_timer_set(0, sim::SimTime::seconds(5.0)); // 2 -> 0
    mon.finish(sim::SimTime::seconds(6.0));

    const auto edges = mon.coupling().edges();
    ASSERT_EQ(edges.size(), 3u);
    EXPECT_EQ(edges[0].src, 0); // self edge 0 -> 0
    EXPECT_EQ(edges[0].dst, 0);
    EXPECT_EQ(edges[1].src, 1);
    EXPECT_EQ(edges[1].dst, 2);
    EXPECT_EQ(edges[2].src, 2);
    EXPECT_EQ(edges[2].dst, 0);
    EXPECT_EQ(mon.coupling().total_weight(), mon.report().rearms);
}

// ---- differential: engine vs PmKernel vs PmKernelBatch -------------------

core::ExperimentConfig random_monitored_config(std::uint64_t seed_base,
                                               std::size_t i) {
    rng::DefaultEngine gen{parallel::derive_seed(seed_base, i)};
    core::ExperimentConfig cfg;
    cfg.params.n = 3 + static_cast<int>(rng::uniform_real(gen, 0.0, 8.0));
    cfg.params.tp = sim::SimTime::seconds(121);
    cfg.params.tc = sim::SimTime::seconds(0.11);
    cfg.params.tr =
        sim::SimTime::seconds(rng::uniform_real(gen, 0.02, 0.25));
    if (rng::uniform_real(gen, 0.0, 1.0) < 0.3) {
        cfg.params.start = core::StartCondition::Synchronized;
    }
    cfg.params.seed = parallel::derive_seed(seed_base + 1, i);
    cfg.max_time =
        sim::SimTime::seconds(rng::uniform_real(gen, 3e3, 1e4));
    cfg.monitor = true;
    cfg.sync_threshold = rng::uniform_real(gen, 0.3, 0.9);
    cfg.sync_hysteresis =
        rng::uniform_real(gen, 0.0, cfg.sync_threshold * 0.4);
    return cfg;
}

void expect_sync_identical(const core::ExperimentResult& a,
                           const core::ExperimentResult& b,
                           const char* what) {
    ASSERT_TRUE(a.sync.has_value()) << what;
    ASSERT_TRUE(b.sync.has_value()) << what;
    const obs::SyncReport& x = *a.sync;
    const obs::SyncReport& y = *b.sync;
    EXPECT_EQ(x.rearms, y.rearms) << what;
    EXPECT_EQ(x.transmissions, y.transmissions) << what;
    EXPECT_EQ(x.transitions, y.transitions) << what;
    EXPECT_EQ(x.rounds_closed, y.rounds_closed) << what;
    // Bitwise double equality — the contract is bit-identity, not
    // tolerance.
    EXPECT_EQ(x.r_last, y.r_last) << what;
    EXPECT_EQ(x.r_max, y.r_max) << what;
    EXPECT_EQ(x.entropy_last, y.entropy_last) << what;
    EXPECT_EQ(x.largest_fraction_last, y.largest_fraction_last) << what;
    EXPECT_EQ(x.in_sync, y.in_sync) << what;
    EXPECT_EQ(x.time_to_sync_sec, y.time_to_sync_sec) << what;
    EXPECT_TRUE(a.sync_coupling == b.sync_coupling) << what;
}

TEST(SyncMonitorDifferentialTest, BackendsAgreeOnRandomizedConfigs) {
    constexpr std::size_t kConfigs = 100;
    std::vector<core::ExperimentConfig> configs;
    configs.reserve(kConfigs);
    for (std::size_t i = 0; i < kConfigs; ++i) {
        configs.push_back(random_monitored_config(2026, i));
    }

    // The batched kernel advances all lanes lock-step in one pass.
    std::vector<core::ExperimentResult> batched =
        core::run_experiment_batch(configs);
    ASSERT_EQ(batched.size(), kConfigs);

    std::size_t transitions_seen = 0;
    for (std::size_t i = 0; i < kConfigs; ++i) {
        core::ExperimentConfig engine_cfg = configs[i];
        engine_cfg.backend = core::ExperimentBackend::Engine;
        const core::ExperimentResult engine_r = core::run_experiment(engine_cfg);

        core::ExperimentConfig kernel_cfg = configs[i];
        kernel_cfg.backend = core::ExperimentBackend::FastKernel;
        const core::ExperimentResult kernel_r = core::run_experiment(kernel_cfg);

        expect_sync_identical(engine_r, kernel_r, "engine vs kernel");
        expect_sync_identical(engine_r, batched[i], "engine vs batch");
        transitions_seen += engine_r.sync->transitions;
    }
    // The randomized thresholds must actually exercise the detector —
    // a sweep where nothing ever crosses would be a vacuous pass.
    EXPECT_GT(transitions_seen, 0u);
}

// ---- differential: live monitor vs trace replay --------------------------

TEST(SyncMonitorDifferentialTest, ReplayFromTraceMatchesLiveExactly) {
    for (std::size_t i = 0; i < 10; ++i) {
        core::ExperimentConfig cfg = random_monitored_config(777, i);

        obs::RunContext ctx;
        ctx.set_sink(std::make_unique<obs::RingBufferSink>(1u << 20));
        cfg.obs = &ctx;
        const core::ExperimentResult live = core::run_experiment(cfg);
        ASSERT_TRUE(live.sync.has_value());

        const auto* ring =
            dynamic_cast<const obs::RingBufferSink*>(ctx.sink());
        ASSERT_NE(ring, nullptr);
        ASSERT_EQ(ring->dropped(), 0u);
        const std::vector<obs::TraceEvent> events(ring->events().begin(),
                                                  ring->events().end());

        const obs::SyncReplayResult replay = obs::replay_sync(events);
        EXPECT_TRUE(replay.have_config);
        EXPECT_EQ(replay.config.n, cfg.params.n);
        EXPECT_EQ(replay.report.rearms, live.sync->rearms);
        EXPECT_EQ(replay.report.r_last, live.sync->r_last);
        EXPECT_EQ(replay.report.r_max, live.sync->r_max);
        EXPECT_EQ(replay.report.entropy_last, live.sync->entropy_last);
        EXPECT_EQ(replay.report.time_to_sync_sec, live.sync->time_to_sync_sec);
        EXPECT_TRUE(replay.coupling == live.sync_coupling);

        // Transition-by-transition: recomputed == recorded == live.
        ASSERT_EQ(replay.transitions.size(), replay.recorded.size());
        ASSERT_EQ(replay.transitions.size(),
                  static_cast<std::size_t>(live.sync->transitions));
        for (std::size_t k = 0; k < replay.transitions.size(); ++k) {
            EXPECT_EQ(replay.transitions[k].time, replay.recorded[k].time);
            EXPECT_EQ(replay.transitions[k].up, replay.recorded[k].up);
            EXPECT_EQ(replay.transitions[k].r, replay.recorded[k].r);
        }
        // The coupling_edge events written at finish() round-trip too.
        const auto live_edges = live.sync_coupling.edges();
        ASSERT_EQ(replay.recorded_edges.size(), live_edges.size());
        for (std::size_t k = 0; k < live_edges.size(); ++k) {
            EXPECT_EQ(replay.recorded_edges[k].src, live_edges[k].src);
            EXPECT_EQ(replay.recorded_edges[k].dst, live_edges[k].dst);
            EXPECT_EQ(replay.recorded_edges[k].weight, live_edges[k].weight);
        }
    }
}

// ---- determinism: merged sync.* metrics across --jobs and --batch --------

TEST(SyncMonitorDifferentialTest, MergedSyncMetricsAreJobsInvariant) {
    std::vector<core::ExperimentConfig> configs;
    for (std::size_t i = 0; i < 12; ++i) {
        configs.push_back(random_monitored_config(31, i));
    }
    const parallel::TrialRunner serial{parallel::TrialRunnerOptions{.jobs = 1}};
    const parallel::TrialRunner wide{parallel::TrialRunnerOptions{.jobs = 8}};
    const auto r1 = serial.run_all(configs);
    const auto r8 = wide.run_all(configs);
    const obs::MetricsSnapshot m1 = parallel::merge_trial_metrics(r1);
    const obs::MetricsSnapshot m8 = parallel::merge_trial_metrics(r8);
    EXPECT_EQ(m1.to_json(), m8.to_json());
    EXPECT_NE(m1.to_json().find("sync.rearms"), std::string::npos);
}

TEST(SyncMonitorDifferentialTest, BatchWidthDoesNotChangeSyncResults) {
    std::vector<core::ExperimentConfig> configs;
    for (std::size_t i = 0; i < 16; ++i) {
        configs.push_back(random_monitored_config(59, i));
    }
    // Width 16 in one call vs width 1 sixteen times.
    const std::vector<core::ExperimentResult> wide =
        core::run_experiment_batch(configs);
    std::vector<core::ExperimentResult> narrow;
    for (const core::ExperimentConfig& cfg : configs) {
        narrow.push_back(core::run_experiment_batch(std::span{&cfg, 1})[0]);
    }
    ASSERT_EQ(wide.size(), narrow.size());
    std::vector<obs::MetricsSnapshot> wide_parts, narrow_parts;
    for (std::size_t i = 0; i < wide.size(); ++i) {
        expect_sync_identical(wide[i], narrow[i], "batch 16 vs 1");
        wide_parts.push_back(wide[i].metrics);
        narrow_parts.push_back(narrow[i].metrics);
    }
    EXPECT_EQ(obs::merge_snapshots(wide_parts).to_json(),
              obs::merge_snapshots(narrow_parts).to_json());
}

// ---- scenario: the element-graph workload carries the same observatory ---

TEST(SyncMonitorScenarioTest, SharedLanMonitorReportsAndWireSpec) {
    scenarios::SharedLanScenarioConfig cfg;
    cfg.n = 6;
    cfg.max_time = sim::SimTime::seconds(400);
    cfg.monitor = true;
    const scenarios::SharedLanScenarioResult r =
        run_shared_lan_scenario(cfg);
    ASSERT_TRUE(r.sync.has_value());
    EXPECT_GT(r.sync->rearms, 0u);
    // Every observed re-arm is attributed to exactly one coupling edge.
    EXPECT_EQ(r.sync_coupling.total_weight(), r.sync->rearms);
    EXPECT_GT(r.sync->r_max, 0.0);
    // The wire spec names every element and the full agent -> sink path.
    EXPECT_NE(r.wire_spec.find("// agent0 :: PeriodicAgent"),
              std::string::npos);
    EXPECT_NE(r.wire_spec.find("agent5[0] -> [0]tolan5"), std::string::npos);

    // Monitoring never perturbs the simulation itself.
    scenarios::SharedLanScenarioConfig off = cfg;
    off.monitor = false;
    const scenarios::SharedLanScenarioResult r0 =
        run_shared_lan_scenario(off);
    EXPECT_EQ(r0.updates_sent, r.updates_sent);
    EXPECT_EQ(r0.updates_heard, r.updates_heard);
    EXPECT_EQ(r0.frames_delivered, r.frames_delivered);
    EXPECT_FALSE(r0.sync.has_value());
    EXPECT_EQ(r0.sync_coupling.total_weight(), 0u);
}

} // namespace
