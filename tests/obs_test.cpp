// Observability layer: trace sinks, the JSONL encoding, metric snapshot
// merge rules, manifests, and the cross---jobs determinism contract of
// merge_trial_metrics.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/core.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel.hpp"

namespace {

using namespace routesync;

obs::TraceEvent make_event(std::uint64_t seq, double t, obs::TraceEventType type,
                           int node, std::int64_t a, double b) {
    obs::TraceEvent e;
    e.seq = seq;
    e.time = sim::SimTime::seconds(t);
    e.type = type;
    e.node = node;
    e.a = a;
    e.b = b;
    return e;
}

// ------------------------------------------------------------ sinks

TEST(RingBufferSink, KeepsNewestEventsAndCountsDrops) {
    obs::RingBufferSink sink{4};
    for (int i = 0; i < 10; ++i) {
        sink.on_event(make_event(static_cast<std::uint64_t>(i), i * 1.0,
                                 obs::TraceEventType::TimerSet, i, 0, 0.0));
    }
    EXPECT_EQ(sink.capacity(), 4U);
    EXPECT_EQ(sink.events_seen(), 10U);
    EXPECT_EQ(sink.dropped(), 6U);
    ASSERT_EQ(sink.events().size(), 4U);
    // Oldest-first: seqs 6, 7, 8, 9 survive.
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(sink.events()[i].seq, 6U + i);
    }
}

TEST(RingBufferSink, NoDropsBelowCapacity) {
    obs::RingBufferSink sink{8};
    for (int i = 0; i < 8; ++i) {
        sink.on_event(make_event(static_cast<std::uint64_t>(i), 0.0,
                                 obs::TraceEventType::PacketDrop, 0, 0, 0.0));
    }
    EXPECT_EQ(sink.dropped(), 0U);
    EXPECT_EQ(sink.events().size(), 8U);
}

TEST(TraceEventJsonl, EncodesEveryField) {
    const auto e = make_event(7, 1.5, obs::TraceEventType::PacketDeliver, 3, 42, 2.5);
    EXPECT_EQ(obs::trace_event_jsonl(e),
              "{\"seq\": 7, \"t\": 1.5, \"type\": \"packet_deliver\", "
              "\"node\": 3, \"a\": 42, \"b\": 2.5, \"x\": 0}");
}

TEST(TraceEventJsonl, RoundTripsDoublesAtFullPrecision) {
    const double b = 69.421511837985378;
    const auto e = make_event(0, 0.1, obs::TraceEventType::TimerSet, 0, 0, b);
    const std::string line = obs::trace_event_jsonl(e);
    // %.17g is shortest-round-trip-safe: parsing the text recovers the bits.
    const auto pos = line.find("\"b\": ");
    ASSERT_NE(pos, std::string::npos);
    EXPECT_EQ(std::stod(line.substr(pos + 5)), b);
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
    EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
    EXPECT_EQ(obs::json_escape("a\\b"), "a\\\\b");
    EXPECT_EQ(obs::json_escape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(obs::json_escape(std::string{"a\x01z"}), "a\\u0001z");
}

TEST(JsonlFileSink, WritesOneValidLinePerEvent) {
    const std::string path = ::testing::TempDir() + "obs_jsonl_sink_test.jsonl";
    {
        obs::JsonlFileSink sink{path};
        sink.on_event(make_event(0, 0.25, obs::TraceEventType::TimerSet, 1, 0, 9.5));
        sink.on_event(make_event(1, 0.5, obs::TraceEventType::UpdateTx, 2, 20, 1.0));
        sink.flush();
        EXPECT_EQ(sink.events_seen(), 2U);
    }
    std::ifstream in{path};
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line)) {
        lines.push_back(line);
    }
    ASSERT_EQ(lines.size(), 2U);
    EXPECT_EQ(lines[0],
              "{\"seq\": 0, \"t\": 0.25, \"type\": \"timer_set\", "
              "\"node\": 1, \"a\": 0, \"b\": 9.5, \"x\": 0}");
    EXPECT_EQ(lines[1], obs::trace_event_jsonl(
                            make_event(1, 0.5, obs::TraceEventType::UpdateTx, 2, 20, 1.0)));
    std::remove(path.c_str());
}

// ------------------------------------------------------- metric merges

TEST(MetricsSnapshot, CountersSumAndGaugesLastWriterWins) {
    obs::MetricsRegistry a;
    a.add("pkts", 3);
    a.set_gauge("end_time", 10.0);
    obs::MetricsRegistry b;
    b.add("pkts", 4);
    b.add("drops", 1);
    b.set_gauge("end_time", 20.0);

    obs::MetricsSnapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    EXPECT_EQ(merged.counters.at("pkts"), 7U);
    EXPECT_EQ(merged.counters.at("drops"), 1U);
    EXPECT_EQ(merged.gauges.at("end_time"), 20.0);
}

TEST(MetricsSnapshot, DistributionsWelfordMerge) {
    obs::MetricsRegistry a;
    obs::MetricsRegistry b;
    obs::MetricsRegistry whole;
    const std::vector<double> xs{1.0, 2.0, 3.0, 10.0, 20.0, 30.0};
    for (std::size_t i = 0; i < xs.size(); ++i) {
        (i < 3 ? a : b).observe("x", xs[i]);
        whole.observe("x", xs[i]);
    }
    obs::MetricsSnapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    const auto& m = merged.distributions.at("x");
    const auto& w = whole.snapshot().distributions.at("x");
    EXPECT_EQ(m.count(), w.count());
    EXPECT_DOUBLE_EQ(m.mean(), w.mean());
    EXPECT_NEAR(m.variance(), w.variance(), 1e-9);
    EXPECT_EQ(m.min(), w.min());
    EXPECT_EQ(m.max(), w.max());
}

TEST(MetricsSnapshot, HistogramsMergeBinWiseAndRejectMismatchedBinning) {
    obs::MetricsRegistry a;
    a.histogram("h", 0.0, 10.0, 5).add(1.0);
    obs::MetricsRegistry b;
    b.histogram("h", 0.0, 10.0, 5).add(9.0);
    obs::MetricsSnapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    EXPECT_EQ(merged.histograms.at("h").total(), 2U);

    obs::MetricsRegistry c;
    c.histogram("h", 0.0, 20.0, 5).add(1.0);
    obs::MetricsSnapshot bad = a.snapshot();
    EXPECT_THROW(bad.merge(c.snapshot()), std::invalid_argument);
}

TEST(MetricsSnapshot, MergeIsAFunctionOfSnapshotSequenceOnly) {
    // merge_snapshots(parts) == fold in order, independent of who
    // produced the parts.
    std::vector<obs::MetricsSnapshot> parts;
    for (int i = 0; i < 4; ++i) {
        obs::MetricsRegistry r;
        r.add("n", static_cast<std::uint64_t>(i + 1));
        r.observe("t", i * 1.5);
        parts.push_back(r.snapshot());
    }
    const obs::MetricsSnapshot once = obs::merge_snapshots(parts);
    const obs::MetricsSnapshot again = obs::merge_snapshots(parts);
    EXPECT_TRUE(once == again);
    EXPECT_EQ(once.counters.at("n"), 10U);
}

// --------------------------------------- cross-jobs trial determinism

std::vector<core::ExperimentConfig> small_sweep() {
    std::vector<core::ExperimentConfig> configs;
    for (int i = 0; i < 8; ++i) {
        core::ExperimentConfig cfg;
        cfg.params.n = 10;
        cfg.params.tp = sim::SimTime::seconds(121);
        cfg.params.tc = sim::SimTime::seconds(0.11);
        cfg.params.tr = sim::SimTime::seconds(0.1);
        cfg.params.seed = parallel::derive_seed(42, static_cast<std::uint64_t>(i));
        cfg.max_time = sim::SimTime::seconds(5000);
        configs.push_back(cfg);
    }
    return configs;
}

TEST(TrialMetrics, MergedSnapshotIdenticalForJobs1And8) {
    const auto configs = small_sweep();
    const parallel::TrialRunner serial{{.jobs = 1}};
    const parallel::TrialRunner wide{{.jobs = 8}};
    const auto r1 = serial.run_all(configs);
    const auto r8 = wide.run_all(configs);
    const obs::MetricsSnapshot m1 = parallel::merge_trial_metrics(r1);
    const obs::MetricsSnapshot m8 = parallel::merge_trial_metrics(r8);
    EXPECT_TRUE(m1 == m8);
    EXPECT_EQ(m1.to_json(), m8.to_json());
    // And the merge actually saw every trial.
    EXPECT_EQ(m1.counters.at("experiment.rounds_closed") > 0, true);
}

TEST(TrialMetrics, SharedRunContextIsNotHandedToWorkerThreads) {
    // config.obs is per-run state; the runner must strip it from the
    // copies it hands to workers (the caller merges via result.metrics).
    obs::RunContext ctx;
    auto configs = small_sweep();
    for (auto& cfg : configs) {
        cfg.obs = &ctx;
    }
    const parallel::TrialRunner wide{{.jobs = 4}};
    const auto results = wide.run_all(configs);
    ASSERT_EQ(results.size(), configs.size());
    // The shared context saw none of the trials' merges...
    obs::MetricsRegistry empty;
    EXPECT_TRUE(ctx.metrics().snapshot() == empty.snapshot());
    // ...but every result still carries its own snapshot.
    for (const auto& r : results) {
        EXPECT_GT(r.metrics.counters.at("experiment.transmissions"), 0U);
    }
}

// ------------------------------------------------------------ manifest

TEST(Manifest, WritesParsableJsonWithConfigAndMetrics) {
    obs::RunContext ctx;
    ctx.metrics().add("demo.count", 5);
    obs::Manifest& m = ctx.manifest();
    m.tool = "obs_test";
    m.description = "manifest \"quoted\" description";
    m.seeds = {1, 2};
    m.jobs = 4;
    m.set_config("n", 20);
    const std::string path = ::testing::TempDir() + "obs_manifest_test.json";
    ctx.write_manifest(path, 123.5);

    std::ifstream in{path};
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    EXPECT_NE(text.find("\"tool\": \"obs_test\""), std::string::npos);
    EXPECT_NE(text.find("manifest \\\"quoted\\\" description"), std::string::npos);
    EXPECT_NE(text.find("\"demo.count\": 5"), std::string::npos);
    EXPECT_NE(text.find("\"sim_seconds\": 123.5"), std::string::npos);
    EXPECT_NE(text.find("\"n\": \"20\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(Manifest, Fnv1aMatchesRepoConvention) {
    // The repo-wide FNV-1a variant (same basis determinism_test and the
    // figure tools use). Frozen so manifests stay comparable across
    // builds.
    EXPECT_EQ(obs::fnv1a(""), 1469598103934665603ULL);
    std::uint64_t h = 1469598103934665603ULL;
    h ^= static_cast<unsigned char>('a');
    h *= 1099511628211ULL;
    EXPECT_EQ(obs::fnv1a("a"), h);
}

// --------------------------------------------------- engine attachment

TEST(RunContext, AttachedTracerSeesModelEventsInSeqOrder) {
    obs::RunContext ctx;
    ctx.trace_to_ring(4096);
    core::ExperimentConfig cfg;
    cfg.params.n = 5;
    cfg.params.seed = 7;
    cfg.max_time = sim::SimTime::seconds(2000);
    cfg.obs = &ctx;
    const auto r = core::run_experiment(cfg);
    EXPECT_GT(r.total_transmissions, 0U);

    const auto* ring = dynamic_cast<obs::RingBufferSink*>(ctx.sink());
    ASSERT_NE(ring, nullptr);
    ASSERT_FALSE(ring->events().empty());
    std::uint64_t last_seq = 0;
    bool saw_timer_set = false;
    bool saw_update_tx = false;
    for (const auto& e : ring->events()) {
        EXPECT_GE(e.seq, last_seq);
        last_seq = e.seq;
        saw_timer_set |= e.type == obs::TraceEventType::TimerSet;
        saw_update_tx |= e.type == obs::TraceEventType::UpdateTx;
    }
    EXPECT_TRUE(saw_timer_set);
    EXPECT_TRUE(saw_update_tx);
}

} // namespace
