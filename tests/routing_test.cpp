// Tests for the distance-vector routing protocol.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "net/net.hpp"
#include "rng/rng.hpp"
#include "routing/routing.hpp"

namespace {

using namespace routesync;
using net::LinkConfig;
using net::Network;
using net::Packet;
using net::PacketType;
using routing::DistanceVectorAgent;
using routing::DvConfig;
using routing::TimerReset;
using sim::SimTime;
using namespace sim::literals;

LinkConfig fast_link() {
    return LinkConfig{.rate_bps = 0.0, .delay = 1_msec, .queue_packets = 64};
}

/// A line of routers r0 - r1 - ... - r(k-1), with a host on each end,
/// running DV with short periods so tests converge quickly.
struct LineNet {
    sim::Engine engine;
    std::unique_ptr<Network> nw;
    std::vector<net::Router*> routers;
    net::Host* left = nullptr;
    net::Host* right = nullptr;
    std::vector<std::unique_ptr<DistanceVectorAgent>> agents;

    /// `fast_costs` replaces the base config's CPU costs with tiny ones so
    /// convergence tests run with negligible processing time; pass false
    /// to keep the caller's cost model.
    explicit LineNet(int k, DvConfig base = {}, bool fast_costs = true) {
        nw = std::make_unique<Network>(engine);
        left = &nw->add_host("L");
        right = &nw->add_host("R");
        for (int i = 0; i < k; ++i) {
            std::string name = "r";
            name += std::to_string(i);
            routers.push_back(&nw->add_router(name));
        }
        nw->connect(*left, *routers.front(), fast_link());
        for (int i = 0; i + 1 < k; ++i) {
            nw->connect(*routers[static_cast<std::size_t>(i)],
                        *routers[static_cast<std::size_t>(i + 1)], fast_link());
        }
        nw->connect(*routers.back(), *right, fast_link());

        base.period = 5_sec;
        base.route_timeout = 16_sec;
        base.gc_timeout = 10_sec;
        if (fast_costs) {
            base.per_route_cost = SimTime::micros(100);
            base.fixed_update_cost = SimTime::micros(100);
        }
        for (int i = 0; i < k; ++i) {
            DvConfig c = base;
            c.seed = 100 + static_cast<std::uint64_t>(i);
            std::vector<std::pair<net::NodeId, int>> attached;
            if (i == 0) {
                attached.emplace_back(left->id(), 0);
            }
            if (i == k - 1) {
                // The right host is always the last router's interface 1
                // (interface 0 faces the previous router, or the left host
                // when k == 1).
                attached.emplace_back(right->id(), 1);
            }
            agents.push_back(std::make_unique<DistanceVectorAgent>(
                *routers[static_cast<std::size_t>(i)], c, attached));
        }
    }

    void start_staggered() {
        for (std::size_t i = 0; i < agents.size(); ++i) {
            agents[i]->start(SimTime::seconds(0.5 + 0.37 * static_cast<double>(i)));
        }
    }
};

TEST(DistanceVector, ConvergesToHopCountsOnLine) {
    LineNet line{4};
    line.start_staggered();
    line.engine.run_until(60_sec);

    // r0's view: left host metric 1, right host 1 + 4 hops... the right
    // host is behind r3: r0 -> r1 -> r2 -> r3 -> R = metric 1 (R local at
    // r3) + 3 advertisements.
    const auto* to_right = line.agents[0]->table().find(line.right->id());
    ASSERT_NE(to_right, nullptr);
    EXPECT_EQ(to_right->metric, 4);
    const auto* to_left = line.agents[3]->table().find(line.left->id());
    ASSERT_NE(to_left, nullptr);
    EXPECT_EQ(to_left->metric, 4);
    // Router self routes propagate too: r3 knows r0 at 3 hops.
    const auto* to_r0 = line.agents[3]->table().find(line.routers[0]->id());
    ASSERT_NE(to_r0, nullptr);
    EXPECT_EQ(to_r0->metric, 3);
}

TEST(DistanceVector, ForwardingWorksAfterConvergence) {
    LineNet line{3};
    line.start_staggered();
    line.engine.run_until(40_sec);

    int got = 0;
    line.right->on_packet = [&](const Packet& p) {
        if (p.type == PacketType::Data) { // hosts also hear routing updates
            ++got;
        }
    };
    Packet p;
    p.type = PacketType::Data;
    p.src = line.left->id();
    p.dst = line.right->id();
    line.left->send(p);
    line.engine.run_until(41_sec);
    EXPECT_EQ(got, 1);
}

TEST(DistanceVector, TriggeredUpdatesAccelerateConvergence) {
    DvConfig with;
    with.triggered_updates = true;
    DvConfig without;
    without.triggered_updates = false;

    auto converge_time = [](DvConfig base) {
        LineNet line{4, base};
        line.start_staggered();
        for (double t = 2.0; t < 100.0; t += 0.5) {
            line.engine.run_until(SimTime::seconds(t));
            const auto* r = line.agents[0]->table().find(line.right->id());
            if (r != nullptr && r->metric == 4) {
                return t;
            }
        }
        return 1e9;
    };
    const double fast = converge_time(with);
    const double slow = converge_time(without);
    EXPECT_LT(fast, slow);
    // With triggered updates the wave crosses in roughly one update
    // exchange, well under one period.
    EXPECT_LT(fast, 10.0);
}

TEST(DistanceVector, RouteTimeoutPoisonsAndGarbageCollects) {
    LineNet line{2};
    line.start_staggered();
    line.engine.run_until(30_sec);
    ASSERT_NE(line.agents[0]->table().find(line.right->id()), nullptr);

    // Kill r1's agent updates by stopping its timer... simplest: silence
    // via link_down on r0's interface towards r1 (routes through it die).
    // iface 1 on r0 is towards r1 (iface 0 is the left host).
    line.agents[0]->link_down(1);
    const auto* gone = line.agents[0]->table().find(line.right->id());
    ASSERT_NE(gone, nullptr);
    EXPECT_EQ(gone->metric, line.agents[0]->config().infinity);
    EXPECT_FALSE(line.routers[0]->has_route(line.right->id()));

    // r1 keeps advertising, so the route re-forms — this also exercises
    // recovery.
    line.engine.run_until(50_sec);
    const auto* back = line.agents[0]->table().find(line.right->id());
    ASSERT_NE(back, nullptr);
    EXPECT_EQ(back->metric, 2);
}

TEST(DistanceVector, SilentNeighborTimesOut) {
    DvConfig quiet;
    quiet.triggered_updates = false; // r1 must not even answer with triggers
    LineNet line{2, quiet};
    // Only start r0's agent: r1 never advertises, so r0 learns nothing.
    line.agents[0]->start(0.5_sec);
    line.engine.run_until(30_sec);
    EXPECT_EQ(line.agents[0]->table().find(line.right->id()), nullptr);

    // Now converge fully, then silence r1 by never... instead verify the
    // timeout path directly: r0 learned nothing, so nothing to time out;
    // the statistic stays zero.
    EXPECT_EQ(line.agents[0]->stats().routes_timed_out, 0U);
}

TEST(DistanceVector, SplitHorizonOmitsRoutesLearnedOnIface) {
    LineNet line{2};
    line.start_staggered();
    line.engine.run_until(30_sec);

    // Capture an update r0 sends towards r1 (iface 1) by snooping the
    // build: r0 must not advertise the right host (learned from r1) back
    // to r1. We snoop by attaching a probe router in place of checking
    // internals: instead check the table's iface and trust build logic via
    // a packet capture below.
    int leaked = 0;
    line.routers[1]->on_routing_update = [&](const Packet& p, int) {
        if (p.src == line.routers[0]->id()) {
            for (const auto& e : p.update->entries) {
                if (e.dest == line.right->id()) {
                    ++leaked;
                }
            }
        }
    };
    line.engine.run_until(60_sec);
    EXPECT_EQ(leaked, 0);
}

TEST(DistanceVector, PoisonedReverseAdvertisesInfinityBack) {
    DvConfig base;
    base.poisoned_reverse = true;
    LineNet line{2, base};
    line.start_staggered();
    line.engine.run_until(30_sec);

    int poisoned = 0;
    line.routers[1]->on_routing_update = [&](const Packet& p, int) {
        if (p.src == line.routers[0]->id()) {
            for (const auto& e : p.update->entries) {
                if (e.dest == line.right->id() &&
                    e.metric >= line.agents[0]->config().infinity) {
                    ++poisoned;
                }
            }
        }
    };
    line.engine.run_until(60_sec);
    EXPECT_GT(poisoned, 0);
}

TEST(DistanceVector, MetricsNeverExceedInfinity) {
    DvConfig base;
    base.infinity = 16;
    LineNet line{5, base};
    line.start_staggered();
    line.engine.run_until(60_sec);
    line.agents[2]->link_down(1); // cut the middle
    line.engine.run_until(200_sec);
    for (const auto& agent : line.agents) {
        for (const auto& route : agent->table()) {
            EXPECT_LE(route.metric, 16) << "dest " << route.dest;
            EXPECT_GE(route.metric, 0);
        }
    }
}

TEST(DistanceVector, UpdateSizeCountsFillerRoutes) {
    DvConfig base;
    base.filler_routes = 300;
    base.bytes_per_route = 20;
    base.header_bytes = 24;
    LineNet line{2, base};
    std::uint32_t seen_bytes = 0;
    int seen_routes = 0;
    line.routers[1]->on_routing_update = [&](const Packet& p, int) {
        seen_bytes = p.size_bytes;
        seen_routes = p.update->total_routes();
    };
    line.agents[0]->start(0.5_sec);
    line.engine.run_until(2_sec);
    ASSERT_GT(seen_routes, 300);
    EXPECT_EQ(seen_bytes,
              24U + 20U * static_cast<std::uint32_t>(seen_routes));
}

TEST(DistanceVector, ProcessingCostScalesWithRoutes) {
    // A 300-route table at 1 ms/route keeps the receiving CPU busy ~0.3 s.
    DvConfig base;
    base.filler_routes = 300;
    base.per_route_cost = 1_msec;
    base.fixed_update_cost = SimTime::zero();
    base.triggered_updates = false;
    LineNet line{2, base, /*fast_costs=*/false};
    line.agents[0]->start(0.5_sec);
    line.engine.run_until(0.7_sec);
    // The update hits the wire at the 0.5 s expiry, arrives at 0.501, and
    // occupies r1's processor for ~0.302 s.
    EXPECT_TRUE(line.routers[1]->cpu_busy());
    const double busy_until = line.routers[1]->cpu_busy_until().sec();
    EXPECT_GT(busy_until, 0.75);
    EXPECT_LT(busy_until, 0.95);
}

// --------------------------------------------------------- fragmentation

TEST(DistanceVector, FragmentsUpdatesAtRouteLimit) {
    DvConfig base;
    base.filler_routes = 60;
    base.routes_per_packet = 25;
    LineNet line{2, base};
    std::vector<int> fragment_routes;
    std::vector<std::uint32_t> fragment_bytes;
    line.routers[1]->on_routing_update = [&](const Packet& p, int) {
        fragment_routes.push_back(p.update->total_routes());
        fragment_bytes.push_back(p.size_bytes);
    };
    line.agents[0]->start(0.5_sec);
    line.engine.run_until(2_sec);

    // r0's table towards r1 (split horizon): self + left host = 2 entries
    // plus 60 filler = 62 routes -> 25 + 25 + 12.
    ASSERT_EQ(fragment_routes.size(), 3U);
    EXPECT_EQ(fragment_routes[0], 25);
    EXPECT_EQ(fragment_routes[1], 25);
    EXPECT_EQ(fragment_routes[2], 12);
    for (std::size_t i = 0; i < fragment_routes.size(); ++i) {
        EXPECT_EQ(fragment_bytes[i],
                  24U + 20U * static_cast<std::uint32_t>(fragment_routes[i]));
    }
}

TEST(DistanceVector, FragmentationPreservesConvergence) {
    DvConfig base;
    base.routes_per_packet = 2; // aggressively small fragments
    LineNet line{4, base};
    line.start_staggered();
    line.engine.run_until(60_sec);
    const auto* to_right = line.agents[0]->table().find(line.right->id());
    ASSERT_NE(to_right, nullptr);
    EXPECT_EQ(to_right->metric, 4);
}

TEST(DistanceVector, FragmentationKeepsTotalBytesComparable) {
    // Fragmenting adds only per-fragment headers.
    auto measure = [](int per_packet) {
        DvConfig base;
        base.filler_routes = 100;
        base.routes_per_packet = per_packet;
        LineNet line{2, base};
        std::uint64_t bytes = 0;
        line.routers[1]->on_routing_update = [&](const Packet& p, int) {
            bytes += p.size_bytes;
        };
        line.agents[0]->start(0.5_sec);
        line.engine.run_until(2_sec);
        return bytes;
    };
    const auto whole = measure(0);
    const auto split = measure(25);
    EXPECT_GT(split, whole);
    EXPECT_LT(split, whole + 24 * 6); // at most 5 extra headers
}

TEST(DistanceVector, ZeroLimitSendsSinglePacket) {
    DvConfig base;
    base.filler_routes = 500;
    base.routes_per_packet = 0;
    LineNet line{2, base};
    int packets = 0;
    line.routers[1]->on_routing_update = [&](const Packet&, int) { ++packets; };
    line.agents[0]->start(0.5_sec);
    line.engine.run_until(2_sec);
    EXPECT_EQ(packets, 1);
}

TEST(Profiles, RipFragmentsAt25Routes) {
    EXPECT_EQ(routing::rip_profile().config.routes_per_packet, 25);
}

// --------------------------------------------------- multipath & holddown

/// A diamond with unequal arms:
///   L - A - B --------- D - R        (short: metric L->R = 4 at A... )
///        \- C - C2 -/               (long: one extra hop)
struct DiamondNet {
    sim::Engine engine;
    std::unique_ptr<Network> nw;
    net::Host* left = nullptr;
    net::Host* right = nullptr;
    net::Router* a = nullptr;
    net::Router* b = nullptr;
    net::Router* c = nullptr;
    net::Router* c2 = nullptr;
    net::Router* d = nullptr;
    std::vector<std::unique_ptr<DistanceVectorAgent>> agents;

    /// `override_timers` replaces period/timeout/cost fields with fast
    /// test defaults; pass false to keep the caller's values.
    explicit DiamondNet(DvConfig base = {}, bool override_timers = true) {
        nw = std::make_unique<Network>(engine);
        left = &nw->add_host("L");
        right = &nw->add_host("R");
        a = &nw->add_router("A");
        b = &nw->add_router("B");
        c = &nw->add_router("C");
        c2 = &nw->add_router("C2");
        d = &nw->add_router("D");
        nw->connect(*left, *a, fast_link()); // A iface 0
        nw->connect(*a, *b, fast_link());    // A iface 1, B iface 0
        nw->connect(*a, *c, fast_link());    // A iface 2, C iface 0
        nw->connect(*b, *d, fast_link());    // B iface 1, D iface 0
        nw->connect(*c, *c2, fast_link());   // C iface 1, C2 iface 0
        nw->connect(*c2, *d, fast_link());   // C2 iface 1, D iface 1
        nw->connect(*d, *right, fast_link()); // D iface 2

        if (override_timers) {
            base.period = 5_sec;
            base.route_timeout = 16_sec;
            base.gc_timeout = 10_sec;
            base.per_route_cost = SimTime::micros(100);
            base.fixed_update_cost = SimTime::micros(100);
        }
        int i = 0;
        for (net::Router* router : nw->routers()) {
            DvConfig cfg = base;
            cfg.seed = 300 + static_cast<std::uint64_t>(i);
            std::vector<std::pair<net::NodeId, int>> attached;
            if (router == a) {
                attached.emplace_back(left->id(), 0);
            }
            if (router == d) {
                attached.emplace_back(right->id(), 2);
            }
            agents.push_back(
                std::make_unique<DistanceVectorAgent>(*router, cfg, attached));
            agents.back()->start(SimTime::seconds(0.4 + 0.31 * i));
            ++i;
        }
        engine.run_until(40_sec); // converge
    }
};

TEST(Multipath, PrefersTheShortArmThenReroutes) {
    DiamondNet net;
    // Converged: A reaches R via B (L->A->B->D->R): metric 1(local at D) +
    // hops D->B->A = 3.
    const auto* via = net.agents[0]->table().find(net.right->id());
    ASSERT_NE(via, nullptr);
    EXPECT_EQ(via->metric, 3);
    EXPECT_EQ(via->next_hop, net.b->id());

    // Fail the A-B link: carrier drops on the wire and both agents see it.
    net.nw->set_link_state(net.a->id(), net.b->id(), false);
    net.agents[0]->link_down(1);
    net.agents[1]->link_down(0);
    net.engine.run_until(80_sec);

    const auto* rerouted = net.agents[0]->table().find(net.right->id());
    ASSERT_NE(rerouted, nullptr);
    EXPECT_EQ(rerouted->metric, 4); // the long arm via C, C2
    EXPECT_EQ(rerouted->next_hop, net.c->id());

    // And the data plane follows: a packet from L reaches R.
    int got = 0;
    net.right->on_packet = [&](const Packet& p) {
        got += p.type == PacketType::Data;
    };
    Packet p;
    p.type = PacketType::Data;
    p.src = net.left->id();
    p.dst = net.right->id();
    net.left->send(p);
    net.engine.run_until(81_sec);
    EXPECT_EQ(got, 1);
}

TEST(Multipath, HolddownDelaysTheAlternatePath) {
    DvConfig slow;
    slow.holddown = 30_sec;
    slow.period = 5_sec;
    slow.route_timeout = 16_sec;
    slow.gc_timeout = 60_sec; // must outlive the holddown
    slow.per_route_cost = SimTime::micros(100);
    slow.fixed_update_cost = SimTime::micros(100);
    DiamondNet net{slow, /*override_timers=*/false};
    net.nw->set_link_state(net.a->id(), net.b->id(), false);
    net.agents[0]->link_down(1);
    net.agents[1]->link_down(0);

    // Well before the holddown expires: the alternate arm must not have
    // been adopted, even though C advertises it every 5 s.
    net.engine.run_until(55_sec); // ~15 s after the failure at ~40 s
    const auto* held = net.agents[0]->table().find(net.right->id());
    ASSERT_NE(held, nullptr);
    EXPECT_GE(held->metric, slow.infinity);

    // After the holddown: rerouted.
    net.engine.run_until(120_sec);
    const auto* after = net.agents[0]->table().find(net.right->id());
    ASSERT_NE(after, nullptr);
    EXPECT_EQ(after->metric, 4);
    EXPECT_EQ(after->next_hop, net.c->id());
}

TEST(Profiles, IgrpHasHolddown) {
    EXPECT_DOUBLE_EQ(routing::igrp_profile().config.holddown.sec(), 280.0);
    EXPECT_DOUBLE_EQ(routing::rip_profile().config.holddown.sec(), 0.0);
}

// --------------------------------------------------- incremental updates

TEST(Incremental, FirstPeriodicIsFullThenKeepalives) {
    DvConfig base;
    base.incremental = true;
    base.filler_routes = 50;
    LineNet line{2, base};
    std::vector<int> routes_seen;
    line.routers[1]->on_routing_update = [&](const Packet& p, int) {
        routes_seen.push_back(p.update->total_routes());
    };
    line.agents[0]->start(0.5_sec);
    line.engine.run_until(18_sec); // ~3.5 periods of 5 s

    ASSERT_GE(routes_seen.size(), 3U);
    EXPECT_GT(routes_seen[0], 50); // session establishment: full table
    for (std::size_t i = 1; i < routes_seen.size(); ++i) {
        EXPECT_EQ(routes_seen[i], 0) << i; // keepalives carry no routes
    }
}

TEST(Incremental, ConvergesAndStaysConverged) {
    DvConfig base;
    base.incremental = true;
    LineNet line{4, base};
    line.start_staggered();
    line.engine.run_until(60_sec);
    const auto* to_right = line.agents[0]->table().find(line.right->id());
    ASSERT_NE(to_right, nullptr);
    EXPECT_EQ(to_right->metric, 4);
    // Keepalives keep routes fresh: nothing times out over many periods.
    line.engine.run_until(200_sec);
    EXPECT_EQ(line.agents[0]->stats().routes_timed_out, 0U);
    const auto* still = line.agents[0]->table().find(line.right->id());
    ASSERT_NE(still, nullptr);
    EXPECT_EQ(still->metric, 4);
}

TEST(Incremental, ChangesTravelAsSmallTriggeredUpdates) {
    DvConfig base;
    base.incremental = true;
    LineNet line{2, base};
    line.start_staggered();
    line.engine.run_until(30_sec);

    // Capture what r0 sends after a link failure: an incremental update
    // carrying only the withdrawn destinations, not the whole table.
    std::vector<int> triggered_sizes;
    line.routers[1]->on_routing_update = [&](const Packet& p, int) {
        if (p.update->triggered) {
            triggered_sizes.push_back(static_cast<int>(p.update->entries.size()));
        }
    };
    line.agents[0]->link_down(0); // the left host vanishes
    line.engine.run_until(32_sec);

    ASSERT_FALSE(triggered_sizes.empty());
    EXPECT_LE(triggered_sizes[0], 2); // just the withdrawn route(s)
}

TEST(Incremental, CpuLoadIsFarBelowPeriodicFullTables) {
    // Identical 300-route networks; compare total route-processor seconds.
    auto cpu_seconds = [](bool incremental) {
        DvConfig base;
        base.incremental = incremental;
        base.filler_routes = 300;
        base.per_route_cost = 1_msec;
        base.fixed_update_cost = SimTime::zero();
        base.triggered_updates = false;
        LineNet line{2, base, /*fast_costs=*/false};
        line.agents[0]->start(0.5_sec);
        line.agents[1]->start(0.6_sec);
        line.engine.run_until(100_sec);
        return line.routers[1]->stats().cpu_seconds;
    };
    const double full = cpu_seconds(false);
    const double incremental = cpu_seconds(true);
    // ~20 periods: full tables cost ~0.3 s per period and direction;
    // incremental pays once at session establishment, then ~nothing.
    EXPECT_GT(full, 5.0);
    EXPECT_LT(incremental, full / 5.0);
}

TEST(Profiles, BgpLikeIsIncremental) {
    const auto bgp = routing::bgp_like_profile();
    EXPECT_TRUE(bgp.config.incremental);
    EXPECT_DOUBLE_EQ(bgp.config.period.sec(), 30.0);
    EXPECT_DOUBLE_EQ(bgp.config.route_timeout.sec(), 90.0);
}

// ------------------------------------------------------- timer semantics

TEST(DvTimer, AtExpiryKeepsFixedCadenceUnderLoad) {
    DvConfig base;
    base.reset = TimerReset::AtExpiry;
    base.jitter = SimTime::zero();
    base.filler_routes = 300;
    base.per_route_cost = 1_msec;
    LineNet line{2, base};
    std::vector<double> arms;
    line.agents[0]->on_timer_set = [&](SimTime t) { arms.push_back(t.sec()); };
    line.agents[0]->start(1_sec);
    line.agents[1]->start(1.2_sec);
    line.engine.run_until(26_sec);
    ASSERT_GE(arms.size(), 5U);
    for (std::size_t i = 1; i < arms.size(); ++i) {
        EXPECT_NEAR(arms[i] - arms[i - 1], 5.0, 1e-6) << i;
    }
}

TEST(DvTimer, AfterProcessingStretchesCadenceByBusyTime) {
    DvConfig base;
    base.reset = TimerReset::AfterProcessing;
    base.jitter = SimTime::zero();
    base.filler_routes = 300;
    base.per_route_cost = 1_msec;
    base.fixed_update_cost = SimTime::zero();
    base.triggered_updates = false;
    LineNet line{2, base, /*fast_costs=*/false};
    std::vector<double> arms;
    line.agents[0]->on_timer_set = [&](SimTime t) { arms.push_back(t.sec()); };
    line.agents[0]->start(1_sec);
    line.engine.run_until(30_sec);
    ASSERT_GE(arms.size(), 3U);
    // Every cycle: period + ~0.3 s own processing (plus any received).
    for (std::size_t i = 1; i < arms.size(); ++i) {
        EXPECT_GT(arms[i] - arms[i - 1], 5.25) << i;
    }
}

// ------------------------------------------------------------ profiles

TEST(Profiles, PeriodsMatchProtocols) {
    EXPECT_DOUBLE_EQ(routing::rip_profile().config.period.sec(), 30.0);
    EXPECT_DOUBLE_EQ(routing::igrp_profile().config.period.sec(), 90.0);
    EXPECT_DOUBLE_EQ(routing::decnet_profile().config.period.sec(), 120.0);
    EXPECT_DOUBLE_EQ(routing::egp_profile().config.period.sec(), 180.0);
    EXPECT_DOUBLE_EQ(routing::hello_profile().config.period.sec(), 15.0);
}

TEST(Profiles, RipUsesRfc1058Timers) {
    const auto rip = routing::rip_profile();
    EXPECT_EQ(rip.config.infinity, 16);
    EXPECT_DOUBLE_EQ(rip.config.route_timeout.sec(), 180.0);
    EXPECT_DOUBLE_EQ(rip.config.gc_timeout.sec(), 120.0);
}

// ------------------------------------------------------------ validation

TEST(DvConfigValidation, RejectsBadParameters) {
    sim::Engine engine;
    Network nw{engine};
    auto& r = nw.add_router("r");
    DvConfig bad;
    bad.period = SimTime::zero();
    EXPECT_THROW(DistanceVectorAgent(r, bad), std::invalid_argument);
    bad = DvConfig{};
    bad.jitter = 31_sec; // > period
    EXPECT_THROW(DistanceVectorAgent(r, bad), std::invalid_argument);
    bad = DvConfig{};
    bad.infinity = 1;
    EXPECT_THROW(DistanceVectorAgent(r, bad), std::invalid_argument);
}

// ------------------------------------------- flat table vs map reference

/// Drives the flat RoutingTable and a std::map reference with an
/// identical random operation stream and asserts they agree on content,
/// iteration order, and lookup results after every step.
TEST(RoutingTableEquivalence, RandomisedAgainstMapReference) {
    rng::Xoshiro256ss gen{20260805};
    routing::RoutingTable flat;
    std::map<net::NodeId, routing::Route> ref;

    auto make_route = [&](net::NodeId dest) {
        routing::Route r{};
        r.dest = dest;
        r.metric = static_cast<int>(rng::uniform_i64(gen, 1, 16));
        r.iface = static_cast<int>(rng::uniform_i64(gen, 0, 7));
        r.next_hop = static_cast<net::NodeId>(rng::uniform_i64(gen, 0, 63));
        r.refreshed = SimTime::seconds(rng::uniform_real(gen, 0.0, 1000.0));
        r.local = rng::bernoulli(gen, 0.1);
        return r;
    };
    auto check_equal = [&] {
        ASSERT_EQ(flat.size(), ref.size());
        auto it = ref.begin();
        for (const auto& route : flat) {
            ASSERT_NE(it, ref.end());
            EXPECT_EQ(route.dest, it->first);
            EXPECT_EQ(route.metric, it->second.metric);
            EXPECT_EQ(route.iface, it->second.iface);
            EXPECT_EQ(route.next_hop, it->second.next_hop);
            EXPECT_EQ(route.local, it->second.local);
            ++it;
        }
        EXPECT_EQ(it, ref.end());
    };

    for (int step = 0; step < 2000; ++step) {
        const auto op = rng::uniform_i64(gen, 0, 9);
        const auto dest = static_cast<net::NodeId>(rng::uniform_i64(gen, 0, 99));
        if (op < 5) { // upsert
            const auto r = make_route(dest);
            flat.upsert(r);
            ref[dest] = r;
        } else if (op < 7) { // erase
            flat.erase(dest);
            ref.erase(dest);
        } else if (op < 8) { // find
            const auto* found = flat.find(dest);
            const auto it = ref.find(dest);
            ASSERT_EQ(found != nullptr, it != ref.end());
            if (found != nullptr) {
                EXPECT_EQ(found->metric, it->second.metric);
            }
        } else if (op < 9) { // erase_if: drop routes with an odd metric
            const auto removed =
                flat.erase_if([](routing::Route& r) { return r.metric % 2 == 1; });
            std::size_t ref_removed = 0;
            for (auto it = ref.begin(); it != ref.end();) {
                if (it->second.metric % 2 == 1) {
                    it = ref.erase(it);
                    ++ref_removed;
                } else {
                    ++it;
                }
            }
            EXPECT_EQ(removed, ref_removed);
        } else { // insert_sorted_batch of fresh (absent) destinations
            std::vector<routing::Route> batch;
            for (net::NodeId d = 100; d < 140; ++d) {
                if (ref.contains(d) || rng::bernoulli(gen, 0.5)) {
                    continue;
                }
                batch.push_back(make_route(d));
            }
            for (const auto& r : batch) {
                ref[r.dest] = r;
            }
            flat.insert_sorted_batch(std::move(batch));
            // Thin the high range back out so later batches have room.
            for (net::NodeId d = 100; d < 140; ++d) {
                if (rng::bernoulli(gen, 0.5)) {
                    flat.erase(d);
                    ref.erase(d);
                }
            }
        }
        check_equal();
    }
}

TEST(RoutingTableEquivalence, EraseIfVisitsEveryRouteOnceInOrder) {
    routing::RoutingTable table;
    for (net::NodeId d = 0; d < 20; ++d) {
        routing::Route r{};
        r.dest = d;
        r.metric = static_cast<int>(d);
        table.upsert(r);
    }
    std::vector<net::NodeId> visited;
    // The predicate mutates survivors — the DV expiry pass relies on this.
    const auto removed = table.erase_if([&](routing::Route& r) {
        visited.push_back(r.dest);
        if (r.dest % 3 == 0) {
            return true;
        }
        r.metric += 100;
        return false;
    });
    EXPECT_EQ(removed, 7U); // 0, 3, 6, 9, 12, 15, 18
    ASSERT_EQ(visited.size(), 20U);
    for (net::NodeId d = 0; d < 20; ++d) {
        EXPECT_EQ(visited[static_cast<std::size_t>(d)], d);
    }
    for (const auto& route : table) {
        EXPECT_NE(route.dest % 3, 0);
        EXPECT_EQ(route.metric, static_cast<int>(route.dest) + 100);
    }
}

TEST(DvConfigValidation, DoubleStartThrows) {
    sim::Engine engine;
    Network nw{engine};
    auto& r = nw.add_router("r");
    DistanceVectorAgent agent{r, DvConfig{}};
    agent.start(1_sec);
    EXPECT_THROW(agent.start(2_sec), std::logic_error);
}

} // namespace
