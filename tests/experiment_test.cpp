// Tests for the experiment runner.
#include <gtest/gtest.h>

#include <memory>

#include "core/core.hpp"

namespace {

using namespace routesync;
using core::ExperimentConfig;
using core::StartCondition;
using sim::SimTime;
using namespace sim::literals;

ExperimentConfig canonical() {
    ExperimentConfig cfg;
    cfg.params.n = 20;
    cfg.params.tp = 121_sec;
    cfg.params.tr = 0.11_sec;
    cfg.params.tc = 0.11_sec;
    cfg.params.seed = 42;
    return cfg;
}

TEST(Experiment, StopOnFullSyncEndsEarly) {
    auto cfg = canonical();
    cfg.params.tr = 0.1_sec;
    cfg.max_time = 500000_sec;
    cfg.stop_on_full_sync = true;
    const auto r = core::run_experiment(cfg);
    ASSERT_TRUE(r.full_sync_time_sec.has_value());
    EXPECT_LE(r.end_time_sec, *r.full_sync_time_sec + 1.0);
}

TEST(Experiment, WithoutStopRunsToMaxTime) {
    auto cfg = canonical();
    cfg.max_time = 5000_sec;
    const auto r = core::run_experiment(cfg);
    EXPECT_DOUBLE_EQ(r.end_time_sec, 5000.0);
}

TEST(Experiment, FirstHitUpIsMonotoneInSize) {
    auto cfg = canonical();
    cfg.params.tr = 0.1_sec;
    cfg.max_time = 400000_sec;
    cfg.stop_on_full_sync = true;
    const auto r = core::run_experiment(cfg);
    double last = 0.0;
    for (int s = 1; s <= 20; ++s) {
        const auto& hit = r.first_hit_up[static_cast<std::size_t>(s)];
        ASSERT_TRUE(hit.has_value()) << "size " << s;
        EXPECT_GE(*hit, last);
        last = *hit;
    }
}

TEST(Experiment, FirstHitDownIsMonotoneDecreasingInSize) {
    auto cfg = canonical();
    cfg.params.start = StartCondition::Synchronized;
    cfg.params.tr = 0.4_sec;
    cfg.max_time = 2000000_sec;
    cfg.stop_on_breakup_threshold = 1;
    const auto r = core::run_experiment(cfg);
    ASSERT_TRUE(r.breakup_time_sec.has_value());
    // Reaching "largest <= s" is easier for larger s.
    double last = *r.first_hit_down[1];
    for (int s = 2; s < 20; ++s) {
        const auto& hit = r.first_hit_down[static_cast<std::size_t>(s)];
        ASSERT_TRUE(hit.has_value()) << "size " << s;
        EXPECT_LE(*hit, last);
        last = *hit;
    }
}

TEST(Experiment, StopOnClusterSizeStopsAtThatSize) {
    auto cfg = canonical();
    cfg.params.tr = 0.1_sec;
    cfg.max_time = 500000_sec;
    cfg.stop_on_cluster_size = 2;
    const auto r = core::run_experiment(cfg);
    ASSERT_TRUE(r.first_hit_up[2].has_value());
    EXPECT_FALSE(r.full_sync_time_sec.has_value());
    EXPECT_LE(r.end_time_sec, *r.first_hit_up[2] + 1.0);
}

TEST(Experiment, TransmitRecordsAreDecimated) {
    auto cfg = canonical();
    cfg.max_time = 10000_sec;
    cfg.transmit_stride = 1;
    const auto all = core::run_experiment(cfg);
    cfg.transmit_stride = 10;
    const auto dec = core::run_experiment(cfg);
    EXPECT_EQ(all.transmits.size(), all.total_transmissions);
    EXPECT_NEAR(static_cast<double>(dec.transmits.size()),
                static_cast<double>(all.transmits.size()) / 10.0, 2.0);
    // Offsets are within [0, round length).
    for (const auto& t : all.transmits) {
        EXPECT_GE(t.offset_sec, 0.0);
        EXPECT_LT(t.offset_sec, all.round_length_sec);
    }
}

TEST(Experiment, ClusterEventsRecordedWhenRequested) {
    auto cfg = canonical();
    cfg.max_time = 20000_sec;
    cfg.record_cluster_events = true;
    const auto r = core::run_experiment(cfg);
    EXPECT_FALSE(r.cluster_events.empty());
    // Cluster events are in time order with sizes in [1, N].
    double last = 0.0;
    for (const auto& e : r.cluster_events) {
        EXPECT_GE(e.time.sec(), last);
        last = e.time.sec();
        EXPECT_GE(e.size, 1);
        EXPECT_LE(e.size, 20);
    }
}

TEST(Experiment, TriggerAllAtForcesFullSync) {
    auto cfg = canonical();
    cfg.max_time = 3000_sec;
    cfg.trigger_all_at = 2000_sec;
    cfg.stop_on_full_sync = true;
    const auto r = core::run_experiment(cfg);
    ASSERT_TRUE(r.full_sync_time_sec.has_value());
    EXPECT_NEAR(*r.full_sync_time_sec, 2000.0 + 20 * 0.11, 5.0);
}

TEST(Experiment, RoundsUnsynchronizedCountsSingletonRounds) {
    auto cfg = canonical();
    cfg.params.reset_at_expiry = true; // stays unsynchronized
    cfg.params.tr = SimTime::zero();
    cfg.max_time = 50000_sec;
    const auto r = core::run_experiment(cfg);
    ASSERT_GT(r.rounds_closed, 0U);
    EXPECT_EQ(r.rounds_unsynchronized, r.rounds_closed);
}

TEST(Experiment, CustomPolicyIsUsed) {
    auto cfg = canonical();
    cfg.params.start = StartCondition::Synchronized;
    cfg.max_time = 2000_sec;
    cfg.record_rounds = true;
    cfg.make_policy = [] {
        return std::make_unique<core::FixedInterval>(50_sec);
    };
    const auto r = core::run_experiment(cfg);
    // Round length follows the policy's mean (50 + Tc), so ~2000/50 rounds.
    EXPECT_NEAR(r.round_length_sec, 50.11, 1e-9);
    EXPECT_GT(r.rounds_closed, 30U);
}

TEST(Experiment, ResultCountersArePlausible) {
    auto cfg = canonical();
    cfg.max_time = 12111_sec; // ~100 rounds
    const auto r = core::run_experiment(cfg);
    // ~20 transmissions per round.
    EXPECT_NEAR(static_cast<double>(r.total_transmissions), 100.0 * 20, 60.0);
    EXPECT_GT(r.events_processed, r.total_transmissions);
}

} // namespace
