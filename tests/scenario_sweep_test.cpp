// Tests for the packet-level scenario sweep (scenarios/scenario_sweep):
// grid decoding, the --buffers/--loads spec parsers, and — the load-
// bearing property — byte-identical results across worker counts. Each
// cell runs a full shared-LAN simulation with its own engine and tracer,
// so the per-cell trace digests double as the cross-thread contamination
// witness.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "parallel/task_pool.hpp"
#include "scenarios/scenario_sweep.hpp"

namespace {

using namespace routesync;
using namespace routesync::scenarios;

SharedLanScenarioConfig small_base() {
    SharedLanScenarioConfig base;
    base.n = 6;
    base.max_time = sim::SimTime::seconds(120);
    base.seed = 11;
    return base;
}

// ---- spec parsers -------------------------------------------------------

TEST(ScenarioSweepSpec, BufferLadderDoublesAndIncludesTop) {
    EXPECT_EQ(parse_buffer_list("2..64"),
              (std::vector<std::size_t>{2, 4, 8, 16, 32, 64}));
    EXPECT_EQ(parse_buffer_list("2..48"),
              (std::vector<std::size_t>{2, 4, 8, 16, 32, 48}));
    EXPECT_EQ(parse_buffer_list("8..8"), (std::vector<std::size_t>{8}));
    EXPECT_EQ(parse_buffer_list("8,16,24"),
              (std::vector<std::size_t>{8, 16, 24}));
    EXPECT_EQ(parse_buffer_list("5"), (std::vector<std::size_t>{5}));
}

TEST(ScenarioSweepSpec, BufferJunkRejected) {
    EXPECT_THROW((void)parse_buffer_list(""), std::invalid_argument);
    EXPECT_THROW((void)parse_buffer_list("0..8"), std::invalid_argument);
    EXPECT_THROW((void)parse_buffer_list("16..2"), std::invalid_argument);
    EXPECT_THROW((void)parse_buffer_list("4,x"), std::invalid_argument);
    EXPECT_THROW((void)parse_buffer_list("4,"), std::invalid_argument);
    EXPECT_THROW((void)parse_buffer_list("-4"), std::invalid_argument);
    EXPECT_THROW((void)parse_buffer_list("4.5"), std::invalid_argument);
}

TEST(ScenarioSweepSpec, LoadListParsesAndRejectsJunk) {
    EXPECT_EQ(parse_load_list("0.5,1,1.5"),
              (std::vector<double>{0.5, 1.0, 1.5}));
    EXPECT_EQ(parse_load_list("1"), (std::vector<double>{1.0}));
    EXPECT_THROW((void)parse_load_list(""), std::invalid_argument);
    EXPECT_THROW((void)parse_load_list("1,-0.5"), std::invalid_argument);
    EXPECT_THROW((void)parse_load_list("1,junk"), std::invalid_argument);
}

// ---- grid shape ---------------------------------------------------------

TEST(ScenarioSweep, GridIsBufferMajorWithPerTrialSeeds) {
    ScenarioSweepConfig sc;
    sc.base = small_base();
    sc.base.max_time = sim::SimTime::seconds(5); // shape test, tiny runs
    sc.buffers = {4, 8};
    sc.loads = {0.5, 1.0};
    sc.trials = 2;
    sc.jobs = 1;
    const ScenarioSweepResult sweep = run_scenario_sweep(sc);
    ASSERT_EQ(sweep.cells.size(), 8U);
    // buffer-major, then load, then trial.
    EXPECT_EQ(sweep.cells[0].buffer, 4U);
    EXPECT_EQ(sweep.cells[0].load, 0.5);
    EXPECT_EQ(sweep.cells[0].trial, 0);
    EXPECT_EQ(sweep.cells[0].seed, sc.base.seed);
    EXPECT_EQ(sweep.cells[1].trial, 1);
    EXPECT_EQ(sweep.cells[1].seed, sc.base.seed + 1);
    EXPECT_EQ(sweep.cells[2].load, 1.0);
    EXPECT_EQ(sweep.cells[4].buffer, 8U);
    // Every cell ran and recorded a topology.
    for (const ScenarioSweepCell& cell : sweep.cells) {
        EXPECT_FALSE(cell.result.wire_spec.empty());
        EXPECT_GT(cell.trace_events, 0U);
    }
}

TEST(ScenarioSweep, RejectsEmptyAxesAndBadTrials) {
    ScenarioSweepConfig sc;
    sc.base = small_base();
    sc.loads = {1.0};
    sc.trials = 1;
    EXPECT_THROW((void)run_scenario_sweep(sc), std::invalid_argument);
    sc.buffers = {4};
    sc.loads = {};
    EXPECT_THROW((void)run_scenario_sweep(sc), std::invalid_argument);
    sc.loads = {1.0};
    sc.trials = 0;
    EXPECT_THROW((void)run_scenario_sweep(sc), std::invalid_argument);
}

// ---- the determinism contract -------------------------------------------

TEST(ScenarioSweep, JobsOneVsEightAreIdentical) {
    ScenarioSweepConfig sc;
    sc.base = small_base();
    sc.buffers = {4, 8, 16};
    sc.loads = {0.8, 1.2};
    sc.trials = 2;

    sc.jobs = 1;
    const ScenarioSweepResult reference = run_scenario_sweep(sc);
    sc.jobs = 8;
    const ScenarioSweepResult parallel = run_scenario_sweep(sc);

    ASSERT_EQ(reference.cells.size(), parallel.cells.size());
    EXPECT_EQ(reference.combined_digest, parallel.combined_digest);
    for (std::size_t i = 0; i < reference.cells.size(); ++i) {
        const ScenarioSweepCell& a = reference.cells[i];
        const ScenarioSweepCell& b = parallel.cells[i];
        EXPECT_EQ(a.buffer, b.buffer);
        EXPECT_EQ(a.load, b.load);
        EXPECT_EQ(a.trial, b.trial);
        EXPECT_EQ(a.seed, b.seed);
        EXPECT_EQ(a.trace_digest, b.trace_digest) << "cell " << i;
        EXPECT_EQ(a.trace_events, b.trace_events) << "cell " << i;
        EXPECT_EQ(a.result.frames_offered, b.result.frames_offered);
        EXPECT_EQ(a.result.frames_delivered, b.result.frames_delivered);
        EXPECT_EQ(a.result.collisions, b.result.collisions);
        EXPECT_EQ(a.result.drops_queue_full, b.result.drops_queue_full);
        EXPECT_EQ(a.result.updates_sent, b.result.updates_sent);
        EXPECT_EQ(a.result.updates_heard, b.result.updates_heard);
        EXPECT_EQ(a.result.largest_cluster, b.result.largest_cluster);
        EXPECT_EQ(a.result.full_sync_time_s, b.result.full_sync_time_s);
        EXPECT_EQ(a.result.end_time_s, b.result.end_time_s);
    }
}

// ---- TaskPool (the extracted scheduling core) ---------------------------

TEST(TaskPool, CoversEveryIndexExactlyOnce) {
    parallel::TaskPool pool{parallel::TaskPoolOptions{8}};
    constexpr std::size_t kCount = 1000;
    std::vector<int> hits(kCount, 0);
    std::mutex m;
    (void)pool.run(kCount, 7, [&](std::size_t lo, std::size_t len) {
        const std::lock_guard<std::mutex> lock{m};
        for (std::size_t i = lo; i < lo + len; ++i) {
            hits[i] += 1;
        }
    });
    for (std::size_t i = 0; i < kCount; ++i) {
        ASSERT_EQ(hits[i], 1) << "index " << i;
    }
}

TEST(TaskPool, InlinePathRunsInOrderAndPropagates) {
    parallel::TaskPool pool{parallel::TaskPoolOptions{1}};
    std::vector<std::size_t> order;
    const std::size_t steals =
        pool.run(10, 3, [&](std::size_t lo, std::size_t len) {
            for (std::size_t i = lo; i < lo + len; ++i) {
                order.push_back(i);
            }
        });
    EXPECT_EQ(steals, 0U);
    ASSERT_EQ(order.size(), 10U);
    for (std::size_t i = 0; i < order.size(); ++i) {
        EXPECT_EQ(order[i], i);
    }
    EXPECT_THROW(
        (void)pool.run(3, 1,
                       [](std::size_t, std::size_t) {
                           throw std::runtime_error{"boom"};
                       }),
        std::runtime_error);
}

TEST(TaskPool, WorkerExceptionIsRethrownAfterDrain) {
    parallel::TaskPool pool{parallel::TaskPoolOptions{4}};
    std::atomic<int> ran{0};
    EXPECT_THROW(
        (void)pool.run(64, 1,
                       [&](std::size_t lo, std::size_t) {
                           ran.fetch_add(1);
                           if (lo == 13) {
                               throw std::runtime_error{"boom"};
                           }
                       }),
        std::runtime_error);
    // Independent tasks keep running; only the failing chunk is lost.
    EXPECT_EQ(ran.load(), 64);
}

} // namespace
