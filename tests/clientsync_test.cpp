// Tests for the client-server recovery-synchronization study (paper
// Section 1, the Sprite example).
#include <gtest/gtest.h>

#include "clientsync/poll_sync.hpp"

namespace {

using namespace routesync::clientsync;

ClientServerConfig base() {
    ClientServerConfig c;
    c.clients = 60;
    c.service_time_sec = 0.2;
    c.timeout_sec = 5.0;
    c.retry_delay_sec = 5.0;
    c.failure_at_sec = 100.0;
    c.recovery_at_sec = 160.0;
    c.horizon_sec = 600.0;
    return c;
}

TEST(ClientSync, SteadyStateHasNoTimeoutsBeforeFailure) {
    ClientServerConfig c = base();
    c.failure_at_sec = 1e9; // never fails
    c.recovery_at_sec = 1e9;
    c.horizon_sec = 300.0;
    const auto r = run_client_server_experiment(c);
    EXPECT_EQ(r.timeouts, 0U);
    EXPECT_EQ(r.stale_served, 0U);
    // 60 clients polling every 30 s for ~300 s.
    EXPECT_GT(r.served, 500U);
}

TEST(ClientSync, SynchronizedRecoveryIsSlowAndWasteful) {
    const auto r = run_client_server_experiment(base());
    ASSERT_TRUE(r.all_recovered);
    // Ideal serial recovery is 60 * 0.2 = 12 s; the synchronized storm
    // takes far longer and burns server time on stale requests.
    EXPECT_GT(r.recovery_duration_sec, 18.0);
    EXPECT_GT(r.stale_served, 20U);
    EXPECT_GE(r.peak_queue, 60.0);
}

TEST(ClientSync, RandomizedReRegistrationRecoversNearIdeal) {
    ClientServerConfig c = base();
    c.recovery_spread_sec = 12.0; // spread over the serial service time
    const auto r = run_client_server_experiment(c);
    ASSERT_TRUE(r.all_recovered);
    EXPECT_LT(r.recovery_duration_sec, 16.0);
    EXPECT_EQ(r.stale_served, 0U);
    EXPECT_LT(r.peak_queue, 20.0);
}

TEST(ClientSync, RandomizationBeatsSynchronizationAcrossSeeds) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        ClientServerConfig sync_cfg = base();
        sync_cfg.seed = seed;
        ClientServerConfig spread_cfg = sync_cfg;
        spread_cfg.recovery_spread_sec = 12.0;
        const auto slow = run_client_server_experiment(sync_cfg);
        const auto fast = run_client_server_experiment(spread_cfg);
        EXPECT_LT(fast.recovery_duration_sec, slow.recovery_duration_sec)
            << "seed " << seed;
        EXPECT_LE(fast.stale_served, slow.stale_served) << "seed " << seed;
    }
}

TEST(ClientSync, AllClientsEventuallyRecover) {
    const auto r = run_client_server_experiment(base());
    EXPECT_TRUE(r.all_recovered);
}

TEST(ClientSync, Deterministic) {
    const auto a = run_client_server_experiment(base());
    const auto b = run_client_server_experiment(base());
    EXPECT_DOUBLE_EQ(a.recovery_duration_sec, b.recovery_duration_sec);
    EXPECT_EQ(a.timeouts, b.timeouts);
    EXPECT_EQ(a.stale_served, b.stale_served);
}

TEST(ClientSync, RejectsBadConfig) {
    ClientServerConfig bad = base();
    bad.clients = 0;
    EXPECT_THROW((void)run_client_server_experiment(bad), std::invalid_argument);
    bad = base();
    bad.service_time_sec = 0.0;
    EXPECT_THROW((void)run_client_server_experiment(bad), std::invalid_argument);
    bad = base();
    bad.timeout_sec = -1.0;
    EXPECT_THROW((void)run_client_server_experiment(bad), std::invalid_argument);
}

} // namespace
