// Tests for the CLI flag parser.
#include <gtest/gtest.h>

#include <vector>

#include "tools/flags.hpp"

namespace {

using namespace routesync::cli;

Flags parse(std::vector<const char*> args) {
    args.insert(args.begin(), "prog");
    return parse_flags(static_cast<int>(args.size()),
                       const_cast<char**>(args.data()), 1);
}

TEST(CliFlags, ParsesNameValuePairs) {
    const auto f = parse({"--n", "20", "--tp", "121.5"});
    EXPECT_EQ(flag_i(f, "n", 0), 20);
    EXPECT_DOUBLE_EQ(flag_d(f, "tp", 0.0), 121.5);
}

TEST(CliFlags, BooleanFlagsGetOne) {
    const auto f = parse({"--sync-start", "--n", "5", "--rounds"});
    EXPECT_TRUE(flag_b(f, "sync-start"));
    EXPECT_TRUE(flag_b(f, "rounds"));
    EXPECT_FALSE(flag_b(f, "absent"));
    EXPECT_EQ(flag_i(f, "n", 0), 5);
}

TEST(CliFlags, FallbacksApplyWhenAbsent) {
    const auto f = parse({});
    EXPECT_EQ(flag_i(f, "n", 42), 42);
    EXPECT_DOUBLE_EQ(flag_d(f, "tp", 3.5), 3.5);
}

TEST(CliFlags, ScientificNotationValues) {
    const auto f = parse({"--max-time", "1e7"});
    EXPECT_DOUBLE_EQ(flag_d(f, "max-time", 0.0), 1e7);
}

TEST(CliFlags, NegativeNumbersAreValues) {
    const auto f = parse({"--offset", "-3"});
    EXPECT_EQ(flag_i(f, "offset", 0), -3);
}

TEST(CliFlags, NonFlagTokenThrows) {
    EXPECT_THROW(parse({"bogus"}), std::invalid_argument);
    EXPECT_THROW(parse({"--n", "20", "stray", "--x"}), std::invalid_argument);
}

TEST(CliFlags, EmptyFlagNameThrows) {
    EXPECT_THROW(parse({"--"}), std::invalid_argument);
}

TEST(CliFlags, LastOccurrenceWins) {
    const auto f = parse({"--n", "5", "--n", "9"});
    EXPECT_EQ(flag_i(f, "n", 0), 9);
}

} // namespace
