// Tests for the CLI flag parser.
#include <gtest/gtest.h>

#include <vector>

#include "tools/flags.hpp"

namespace {

using namespace routesync::cli;

Flags parse(std::vector<const char*> args) {
    args.insert(args.begin(), "prog");
    return parse_flags(static_cast<int>(args.size()),
                       const_cast<char**>(args.data()), 1);
}

TEST(CliFlags, ParsesNameValuePairs) {
    const auto f = parse({"--n", "20", "--tp", "121.5"});
    EXPECT_EQ(flag_i(f, "n", 0), 20);
    EXPECT_DOUBLE_EQ(flag_d(f, "tp", 0.0), 121.5);
}

TEST(CliFlags, ParsesEqualsSignForm) {
    const auto f = parse({"--n=20", "--tp=121.5", "--trace=out.jsonl"});
    EXPECT_EQ(flag_i(f, "n", 0), 20);
    EXPECT_DOUBLE_EQ(flag_d(f, "tp", 0.0), 121.5);
    EXPECT_EQ(flag_s(f, "trace"), "out.jsonl");
}

TEST(CliFlags, EqualsFormWithEmptyValueStoresEmpty) {
    const auto f = parse({"--out="});
    EXPECT_TRUE(flag_b(f, "out"));
    EXPECT_EQ(flag_s(f, "out", "fallback"), "");
}

TEST(CliFlags, StringFlagFallback) {
    const auto f = parse({"--trace", "t.jsonl"});
    EXPECT_EQ(flag_s(f, "trace"), "t.jsonl");
    EXPECT_EQ(flag_s(f, "absent", "dflt"), "dflt");
}

TEST(CliFlags, BooleanFlagsGetOne) {
    const auto f = parse({"--sync-start", "--n", "5", "--rounds"});
    EXPECT_TRUE(flag_b(f, "sync-start"));
    EXPECT_TRUE(flag_b(f, "rounds"));
    EXPECT_FALSE(flag_b(f, "absent"));
    EXPECT_EQ(flag_i(f, "n", 0), 5);
}

TEST(CliFlags, FallbacksApplyWhenAbsent) {
    const auto f = parse({});
    EXPECT_EQ(flag_i(f, "n", 42), 42);
    EXPECT_DOUBLE_EQ(flag_d(f, "tp", 3.5), 3.5);
}

TEST(CliFlags, ScientificNotationValues) {
    const auto f = parse({"--max-time", "1e7"});
    EXPECT_DOUBLE_EQ(flag_d(f, "max-time", 0.0), 1e7);
}

TEST(CliFlags, NegativeNumbersAreValues) {
    const auto f = parse({"--offset", "-3"});
    EXPECT_EQ(flag_i(f, "offset", 0), -3);
}

TEST(CliFlags, NonFlagTokenThrows) {
    EXPECT_THROW(parse({"bogus"}), std::invalid_argument);
    EXPECT_THROW(parse({"--n", "20", "stray", "--x"}), std::invalid_argument);
}

TEST(CliFlags, EmptyFlagNameThrows) {
    EXPECT_THROW(parse({"--"}), std::invalid_argument);
}

TEST(CliFlags, LastOccurrenceWins) {
    const auto f = parse({"--n", "5", "--n", "9"});
    EXPECT_EQ(flag_i(f, "n", 0), 9);
}

TEST(CliFlags, JobsDefaultsToFallbackWhenAbsent) {
    EXPECT_EQ(flag_jobs(parse({}), 7), 7U);
}

TEST(CliFlags, JobsParsesPositiveIntegers) {
    EXPECT_EQ(flag_jobs(parse({"--jobs", "4"}), 1), 4U);
    EXPECT_EQ(flag_jobs(parse({"--jobs", "1"}), 8), 1U);
    EXPECT_EQ(flag_jobs(parse({"--jobs", "64"}), 1), 64U);
}

TEST(CliFlags, JobsZeroMeansAutoDetect) {
    // 0 falls back to the caller-supplied default, which call sites set to
    // parallel::hardware_jobs().
    EXPECT_EQ(flag_jobs(parse({"--jobs", "0"}), 6), 6U);
}

TEST(CliFlags, JobsRejectsNegatives) {
    EXPECT_THROW(flag_jobs(parse({"--jobs", "-2"}), 1), std::invalid_argument);
}

TEST(CliFlags, JobsRejectsJunk) {
    EXPECT_THROW(flag_jobs(parse({"--jobs", "four"}), 1), std::invalid_argument);
    EXPECT_THROW(flag_jobs(parse({"--jobs", "4x"}), 1), std::invalid_argument);
}

TEST(CliFlags, JobsErrorMessageNamesTheFlag) {
    try {
        flag_jobs(parse({"--jobs", "-1"}), 1);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string{e.what()}.find("--jobs"), std::string::npos);
        EXPECT_NE(std::string{e.what()}.find("auto-detect"), std::string::npos);
    }
}

TEST(CliFlags, BatchDefaultsToFallbackWhenAbsent) {
    EXPECT_EQ(flag_batch(parse({}), 0), 0U);
    EXPECT_EQ(flag_batch(parse({}), 7), 7U);
}

TEST(CliFlags, BatchParsesPositiveIntegersAndEqualsForm) {
    EXPECT_EQ(flag_batch(parse({"--batch", "4"}), 0), 4U);
    EXPECT_EQ(flag_batch(parse({"--batch", "1"}), 8), 1U);
    EXPECT_EQ(flag_batch(parse({"--batch=16"}), 0), 16U);
}

TEST(CliFlags, BatchZeroStaysZeroMeaningAuto) {
    // Unlike --jobs (where 0 falls back to hardware concurrency), 0 is a
    // meaningful value: the SweepScheduler auto-tunes the batch size.
    EXPECT_EQ(flag_batch(parse({"--batch", "0"}), 6), 0U);
    EXPECT_EQ(flag_batch(parse({"--batch=0"}), 6), 0U);
}

TEST(CliFlags, BatchRejectsNegativesAndJunk) {
    EXPECT_THROW(flag_batch(parse({"--batch", "-2"}), 0), std::invalid_argument);
    EXPECT_THROW(flag_batch(parse({"--batch", "four"}), 0), std::invalid_argument);
    EXPECT_THROW(flag_batch(parse({"--batch", "4x"}), 0), std::invalid_argument);
    EXPECT_THROW(flag_batch(parse({"--batch", ""}), 0), std::invalid_argument);
}

TEST(CliFlags, BatchErrorMessageNamesTheFlag) {
    try {
        flag_batch(parse({"--batch", "-1"}), 0);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string{e.what()}.find("--batch"), std::string::npos);
        EXPECT_NE(std::string{e.what()}.find("auto"), std::string::npos);
    }
}

TEST(CliFlags, TrialsDefaultsToFallbackWhenAbsent) {
    EXPECT_EQ(flag_trials(parse({}), 1), 1);
    EXPECT_EQ(flag_trials(parse({}), 5), 5);
}

TEST(CliFlags, TrialsParsesPositiveIntegersAndEqualsForm) {
    EXPECT_EQ(flag_trials(parse({"--trials", "4"}), 1), 4);
    EXPECT_EQ(flag_trials(parse({"--trials", "1"}), 8), 1);
    EXPECT_EQ(flag_trials(parse({"--trials=16"}), 1), 16);
}

TEST(CliFlags, TrialsRejectsZeroNegativesAndJunk) {
    // 0 trials is a no-op nobody means — unlike --jobs there is no
    // auto-detect reading, so it is an error, not a fallback.
    EXPECT_THROW(flag_trials(parse({"--trials", "0"}), 1),
                 std::invalid_argument);
    EXPECT_THROW(flag_trials(parse({"--trials", "-3"}), 1),
                 std::invalid_argument);
    EXPECT_THROW(flag_trials(parse({"--trials", "two"}), 1),
                 std::invalid_argument);
    EXPECT_THROW(flag_trials(parse({"--trials", "2x"}), 1),
                 std::invalid_argument);
    EXPECT_THROW(flag_trials(parse({"--trials", ""}), 1),
                 std::invalid_argument);
}

TEST(CliFlags, TrialsErrorMessageNamesTheFlag) {
    try {
        flag_trials(parse({"--trials", "2x"}), 1);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string{e.what()}.find("--trials"), std::string::npos);
        EXPECT_NE(std::string{e.what()}.find("positive"), std::string::npos);
    }
}

} // namespace
