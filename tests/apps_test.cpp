// Tests for the measurement applications.
#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "net/net.hpp"

namespace {

using namespace routesync;
using net::LinkConfig;
using net::Network;
using net::Packet;
using net::PacketType;
using sim::SimTime;
using namespace sim::literals;

struct TwoHosts {
    sim::Engine engine;
    Network nw{engine};
    net::Host& a = nw.add_host("a");
    net::Host& b = nw.add_host("b");
    net::Router& r = nw.add_router("r");

    TwoHosts() {
        const LinkConfig fast{.rate_bps = 0.0, .delay = 5_msec};
        nw.connect(a, r, fast);
        nw.connect(r, b, fast);
        nw.install_static_routes();
    }
};

// ----------------------------------------------------------------- ping

TEST(PingApp, AllRepliesOnHealthyPath) {
    TwoHosts t;
    apps::PingConfig cfg;
    cfg.dst = t.b.id();
    cfg.count = 50;
    cfg.interval = 100_msec;
    apps::PingApp ping{t.a, cfg};
    bool completed = false;
    ping.on_complete = [&] { completed = true; };
    ping.start(1_sec);
    t.engine.run();

    EXPECT_TRUE(completed);
    EXPECT_EQ(ping.sent(), 50);
    EXPECT_EQ(ping.received(), 50);
    EXPECT_EQ(ping.lost(), 0);
    EXPECT_DOUBLE_EQ(ping.loss_fraction(), 0.0);
    for (const double rtt : ping.rtts()) {
        EXPECT_NEAR(rtt, 0.02, 1e-9); // 4 x 5 ms
    }
}

TEST(PingApp, LossesAreNegativeAndSubstitutable) {
    TwoHosts t;
    apps::PingConfig cfg;
    cfg.dst = t.b.id();
    cfg.count = 10;
    cfg.interval = 100_msec;
    apps::PingApp ping{t.a, cfg};
    ping.start(1_sec);
    // Stall the router CPU over pings 3-5 so they die (pending buffer 4,
    // but the delay exceeds the 2 s timeout).
    t.engine.schedule_at(SimTime::seconds(1.25), [&] {
        t.r.schedule_cpu_work(30_sec, [] {});
    });
    t.engine.run();

    EXPECT_GT(ping.lost(), 0);
    const auto& rtts = ping.rtts();
    EXPECT_LT(rtts[5], 0.0);
    const auto subst = ping.rtts_with_losses_as(2.0);
    for (std::size_t i = 0; i < subst.size(); ++i) {
        if (rtts[i] < 0) {
            EXPECT_DOUBLE_EQ(subst[i], 2.0);
        } else {
            EXPECT_DOUBLE_EQ(subst[i], rtts[i]);
        }
    }
}

TEST(PingApp, RepliesAfterTimeoutCountAsLost) {
    TwoHosts t;
    apps::PingConfig cfg;
    cfg.dst = t.b.id();
    cfg.count = 3;
    cfg.interval = 10_sec;
    cfg.timeout = 1_sec;
    apps::PingApp ping{t.a, cfg};
    ping.start(0.5_sec);
    // Delay ping 0 by 1.5 s (beyond the 1 s timeout) via a CPU stall.
    t.engine.schedule_at(SimTime::seconds(0.504), [&] {
        t.r.schedule_cpu_work(1.5_sec, [] {});
    });
    t.engine.run();
    EXPECT_EQ(ping.lost(), 1);
    EXPECT_LT(ping.rtts()[0], 0.0);
    EXPECT_GT(ping.rtts()[1], 0.0);
}

TEST(PingApp, RejectsInvalidConfig) {
    TwoHosts t;
    apps::PingConfig bad;
    bad.dst = -1;
    EXPECT_THROW(apps::PingApp(t.a, bad), std::invalid_argument);
    bad.dst = t.b.id();
    bad.count = 0;
    EXPECT_THROW(apps::PingApp(t.a, bad), std::invalid_argument);
}

TEST(PingApp, RefusesSharedHost) {
    TwoHosts t;
    apps::PingConfig cfg;
    cfg.dst = t.b.id();
    apps::PingApp first{t.a, cfg};
    EXPECT_THROW(apps::PingApp(t.a, cfg), std::logic_error);
}

// ----------------------------------------------------------------- CBR

TEST(CbrAudio, LosslessPathHasNoOutages) {
    TwoHosts t;
    apps::CbrConfig cfg;
    cfg.dst = t.b.id();
    cfg.packets_per_second = 50.0;
    cfg.stop_at = 10_sec;
    apps::CbrSource src{t.a, cfg};
    apps::AudioSink sink{t.b, SimTime::seconds(0.02)};
    src.start(1_sec);
    t.engine.run();

    EXPECT_GT(src.sent(), 400U);
    EXPECT_EQ(sink.received(), src.sent());
    EXPECT_EQ(sink.lost(), 0U);
    EXPECT_TRUE(sink.outages().empty());
}

TEST(CbrAudio, CpuStallProducesOneOutageOfMatchingLength) {
    TwoHosts t;
    apps::CbrConfig cfg;
    cfg.dst = t.b.id();
    cfg.packets_per_second = 50.0;
    cfg.stop_at = 20_sec;
    apps::CbrSource src{t.a, cfg};
    apps::AudioSink sink{t.b, SimTime::seconds(0.02)};
    src.start(1_sec);
    t.engine.schedule_at(5_sec, [&] { t.r.schedule_cpu_work(2_sec, [] {}); });
    t.engine.run();

    ASSERT_EQ(sink.outages().size(), 1U);
    const auto& o = sink.outages()[0];
    // ~2 s of packets minus the 4 the pending buffer saved. The gap is
    // detected after the held packets drain, i.e. when the stall ends.
    EXPECT_NEAR(o.duration_sec, 2.0 - 4 * 0.02, 0.15);
    EXPECT_NEAR(o.start_sec, 7.0, 0.1);
    EXPECT_EQ(sink.lost(), o.packets_lost);
    EXPECT_GT(o.packets_lost, 80U);
}

TEST(CbrAudio, OutagesLongerThanFilters) {
    TwoHosts t;
    apps::CbrConfig cfg;
    cfg.dst = t.b.id();
    cfg.packets_per_second = 50.0;
    cfg.stop_at = 30_sec;
    apps::CbrSource src{t.a, cfg};
    apps::AudioSink sink{t.b, SimTime::seconds(0.02)};
    src.start(1_sec);
    t.engine.schedule_at(5_sec, [&] { t.r.schedule_cpu_work(1_sec, [] {}); });
    t.engine.schedule_at(15_sec, [&] { t.r.schedule_cpu_work(3_sec, [] {}); });
    t.engine.run();

    ASSERT_EQ(sink.outages().size(), 2U);
    const auto big = sink.outages_longer_than(1.5);
    ASSERT_EQ(big.size(), 1U);
    EXPECT_NEAR(big[0].start_sec, 18.0, 0.1); // stall end, after drain

}

TEST(CbrAudio, RejectsInvalidConfig) {
    TwoHosts t;
    apps::CbrConfig bad;
    bad.dst = -1;
    EXPECT_THROW(apps::CbrSource(t.a, bad), std::invalid_argument);
    bad.dst = t.b.id();
    bad.packets_per_second = 0.0;
    EXPECT_THROW(apps::CbrSource(t.a, bad), std::invalid_argument);
}

// ----------------------------------------------------------- background

TEST(BackgroundTraffic, RateMatchesConfiguredMean) {
    TwoHosts t;
    apps::BackgroundConfig cfg;
    cfg.dst = t.b.id();
    cfg.mean_packets_per_second = 200.0;
    cfg.stop_at = 60_sec;
    cfg.seed = 4;
    apps::BackgroundTraffic bg{t.a, cfg};
    std::uint64_t got = 0;
    t.b.on_packet = [&](const Packet& p) {
        if (p.type == PacketType::Data) {
            ++got;
        }
    };
    bg.start(SimTime::zero());
    t.engine.run();
    EXPECT_NEAR(static_cast<double>(bg.sent()), 200.0 * 60.0, 600.0); // ~3 sigma
    EXPECT_EQ(got, bg.sent());
}

TEST(BackgroundTraffic, RejectsInvalidConfig) {
    TwoHosts t;
    apps::BackgroundConfig bad;
    bad.dst = -1;
    EXPECT_THROW(apps::BackgroundTraffic(t.a, bad), std::invalid_argument);
    bad.dst = t.b.id();
    bad.mean_packets_per_second = -1.0;
    EXPECT_THROW(apps::BackgroundTraffic(t.a, bad), std::invalid_argument);
}

} // namespace
