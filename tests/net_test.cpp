// Tests for the packet-level network substrate.
#include <gtest/gtest.h>

#include "net/net.hpp"

namespace {

using namespace routesync;
using net::LinkConfig;
using net::Network;
using net::Packet;
using net::PacketPool;
using net::PacketType;
using net::PayloadPool;
using net::PooledPacket;
using sim::SimTime;
using namespace sim::literals;

// ---------------------------------------------------------- PacketPool

TEST(PacketPool, AcquireCarriesPacketAndReleasesOnScopeExit) {
    PacketPool pool;
    {
        Packet p;
        p.seq = 42;
        PooledPacket h = pool.acquire(std::move(p));
        ASSERT_TRUE(h);
        EXPECT_EQ(h->seq, 42U);
        EXPECT_TRUE(h.unique());
        EXPECT_EQ(pool.live(), 1U);
    }
    EXPECT_EQ(pool.live(), 0U);
}

TEST(PacketPool, SlotsAreRecycled) {
    PacketPool pool;
    { auto h = pool.acquire(); }
    { auto h = pool.acquire(); }
    { auto h = pool.acquire(); }
    EXPECT_EQ(pool.peak_live(), 1U);
    EXPECT_EQ(pool.capacity(), 256U); // a single slab serves the churn
}

TEST(PacketPool, ShareBumpsAndReleasesRefcount) {
    PacketPool pool;
    PooledPacket a = pool.acquire();
    a->seq = 7;
    PooledPacket b = a.share();
    EXPECT_FALSE(a.unique());
    EXPECT_FALSE(b.unique());
    EXPECT_EQ(b->seq, 7U);
    EXPECT_EQ(pool.live(), 1U); // one slot, two handles
    a.reset();
    EXPECT_TRUE(b.unique());
    EXPECT_EQ(pool.live(), 1U);
    b.reset();
    EXPECT_EQ(pool.live(), 0U);
}

TEST(PacketPool, GrowsBeyondOneSlab) {
    PacketPool pool;
    std::vector<PooledPacket> held;
    for (std::uint64_t i = 0; i < 300; ++i) {
        held.push_back(pool.acquire());
        held.back()->seq = i;
    }
    EXPECT_GE(pool.capacity(), 300U);
    for (std::uint64_t i = 0; i < 300; ++i) {
        EXPECT_EQ(held[i]->seq, i); // slab growth never moved a slot
    }
    held.clear();
    EXPECT_EQ(pool.live(), 0U);
}

TEST(PayloadPool, SharedPayloadFreedByLastHandle) {
    PayloadPool pool;
    net::PayloadRef ref = pool.acquire();
    ref.mutate().entries.push_back({1, 2});
    Packet a;
    a.update = ref;
    Packet b;
    b.update = ref; // broadcast copy: same slot
    ref.reset();
    EXPECT_EQ(pool.live(), 1U);
    EXPECT_EQ(a.update->entries.size(), 1U);
    EXPECT_EQ(b.update.get(), a.update.get());
    a.update.reset();
    b.update.reset();
    EXPECT_EQ(pool.live(), 0U);
}

TEST(PayloadPool, RecycledSlotIsCleared) {
    PayloadPool pool;
    {
        net::PayloadRef ref = pool.acquire();
        auto& payload = ref.mutate();
        payload.sender = 9;
        payload.triggered = true;
        payload.filler_routes = 50;
        payload.entries.push_back({1, 2});
    }
    net::PayloadRef ref = pool.acquire();
    EXPECT_EQ(ref->sender, -1);
    EXPECT_FALSE(ref->triggered);
    EXPECT_EQ(ref->filler_routes, 0);
    EXPECT_TRUE(ref->entries.empty());
    EXPECT_EQ(pool.peak_live(), 1U);
}

// ------------------------------------------------------------ DropTail

TEST(DropTailQueue, FifoOrder) {
    PacketPool pool;
    net::DropTailQueue q{4};
    for (std::uint64_t i = 0; i < 3; ++i) {
        Packet p;
        p.seq = i;
        EXPECT_TRUE(q.push(pool.acquire(std::move(p))));
    }
    for (std::uint64_t i = 0; i < 3; ++i) {
        auto p = q.pop();
        ASSERT_TRUE(p);
        EXPECT_EQ(p->seq, i);
    }
    EXPECT_FALSE(q.pop());
}

TEST(DropTailQueue, DropsWhenFull) {
    PacketPool pool;
    net::DropTailQueue q{2};
    EXPECT_TRUE(q.push(pool.acquire()));
    EXPECT_TRUE(q.push(pool.acquire()));
    EXPECT_FALSE(q.push(pool.acquire()));
    EXPECT_EQ(q.stats().dropped, 1U);
    EXPECT_EQ(q.stats().enqueued, 2U);
    EXPECT_EQ(pool.live(), 2U); // the dropped handle went straight back
}

TEST(DropTailQueue, ByteLimitEnforced) {
    PacketPool pool;
    net::DropTailQueue q{100, 1000};
    Packet p;
    p.size_bytes = 600;
    EXPECT_TRUE(q.push(pool.acquire(Packet{p})));
    EXPECT_FALSE(q.push(pool.acquire(Packet{p}))); // 1200 > 1000
    EXPECT_EQ(q.bytes(), 600U);
    q.pop();
    EXPECT_EQ(q.bytes(), 0U);
}

// --------------------------------------------------------------- Link

TEST(Link, DeliveryDelayIsSerializationPlusPropagation) {
    sim::Engine engine;
    double delivered_at = -1.0;
    net::Link link{engine,
                   net::LinkConfig{.rate_bps = 8000.0, .delay = 100_msec, .queue_packets = 8},
                   [&](net::PooledPacket) { delivered_at = engine.now().sec(); }};
    Packet p;
    p.size_bytes = 1000; // 8000 bits / 8000 bps = 1 s serialization
    link.send(p);
    engine.run();
    EXPECT_NEAR(delivered_at, 1.1, 1e-9);
}

TEST(Link, InfiniteRateHasZeroSerialization) {
    sim::Engine engine;
    double delivered_at = -1.0;
    net::Link link{engine,
                   net::LinkConfig{.rate_bps = 0.0, .delay = 50_msec, .queue_packets = 8},
                   [&](net::PooledPacket) { delivered_at = engine.now().sec(); }};
    Packet p;
    p.size_bytes = 1500;
    link.send(p);
    engine.run();
    EXPECT_NEAR(delivered_at, 0.05, 1e-12);
}

TEST(Link, BackToBackPacketsSerialize) {
    sim::Engine engine;
    std::vector<double> arrivals;
    net::Link link{engine,
                   net::LinkConfig{.rate_bps = 8000.0, .delay = SimTime::zero(), .queue_packets = 8},
                   [&](net::PooledPacket) { arrivals.push_back(engine.now().sec()); }};
    Packet p;
    p.size_bytes = 1000; // 1 s each
    link.send(p);
    link.send(p);
    link.send(p);
    engine.run();
    ASSERT_EQ(arrivals.size(), 3U);
    EXPECT_NEAR(arrivals[0], 1.0, 1e-9);
    EXPECT_NEAR(arrivals[1], 2.0, 1e-9);
    EXPECT_NEAR(arrivals[2], 3.0, 1e-9);
}

TEST(Link, QueueOverflowDrops) {
    sim::Engine engine;
    int delivered = 0;
    net::Link link{engine,
                   net::LinkConfig{.rate_bps = 8000.0, .delay = SimTime::zero(), .queue_packets = 2},
                   [&](net::PooledPacket) { ++delivered; }};
    Packet p;
    p.size_bytes = 1000;
    for (int i = 0; i < 5; ++i) {
        link.send(p); // 1 transmitting + 2 queued + 2 dropped
    }
    engine.run();
    EXPECT_EQ(delivered, 3);
    EXPECT_EQ(link.queue_stats().dropped, 2U);
}

// ------------------------------------------------------------- Network

TEST(Network, StaticRoutesForwardAcrossLine) {
    sim::Engine engine;
    Network nw{engine};
    auto& a = nw.add_host("a");
    auto& b = nw.add_host("b");
    auto& r1 = nw.add_router("r1");
    auto& r2 = nw.add_router("r2");
    nw.connect(a, r1);
    nw.connect(r1, r2);
    nw.connect(r2, b);
    nw.install_static_routes();

    int got = 0;
    b.on_packet = [&](const Packet& p) {
        EXPECT_EQ(p.type, PacketType::Data);
        ++got;
    };
    Packet p;
    p.type = PacketType::Data;
    p.src = a.id();
    p.dst = b.id();
    p.size_bytes = 100;
    a.send(p);
    engine.run();
    EXPECT_EQ(got, 1);
}

TEST(Network, PingGetsEchoedEndToEnd) {
    sim::Engine engine;
    Network nw{engine};
    auto& a = nw.add_host("a");
    auto& b = nw.add_host("b");
    auto& r = nw.add_router("r");
    nw.connect(a, r, LinkConfig{.rate_bps = 0.0, .delay = 10_msec});
    nw.connect(r, b, LinkConfig{.rate_bps = 0.0, .delay = 10_msec});
    nw.install_static_routes();

    double rtt = -1.0;
    a.on_packet = [&](const Packet& p) {
        if (p.type == PacketType::PingReply) {
            rtt = engine.now().sec() - p.sent_at.sec();
        }
    };
    Packet ping;
    ping.type = PacketType::PingRequest;
    ping.src = a.id();
    ping.dst = b.id();
    ping.size_bytes = 64;
    ping.sent_at = engine.now();
    a.send(ping);
    engine.run();
    // Four 10 ms hops: there and back again. (Reply keeps sent_at of the
    // request copy.)
    EXPECT_NEAR(rtt, 0.04, 1e-9);
}

TEST(Router, NoRouteDropsAndCounts) {
    sim::Engine engine;
    Network nw{engine};
    auto& a = nw.add_host("a");
    auto& r = nw.add_router("r");
    nw.connect(a, r);
    // No routes installed.
    Packet p;
    p.type = PacketType::Data;
    p.src = a.id();
    p.dst = 99; // nonexistent... but any dst works; r has no routes
    a.send(p);
    engine.run();
    EXPECT_EQ(r.stats().no_route_drops, 1U);
    EXPECT_EQ(r.stats().forwarded, 0U);
}

TEST(Router, TtlExpiryDrops) {
    sim::Engine engine;
    Network nw{engine};
    auto& a = nw.add_host("a");
    auto& b = nw.add_host("b");
    auto& r = nw.add_router("r");
    nw.connect(a, r);
    nw.connect(r, b);
    nw.install_static_routes();
    int got = 0;
    b.on_packet = [&](const Packet&) { ++got; };
    Packet p;
    p.type = PacketType::Data;
    p.src = a.id();
    p.dst = b.id();
    p.ttl = 1; // dies at the router
    a.send(p);
    engine.run();
    EXPECT_EQ(got, 0);
    EXPECT_EQ(r.stats().ttl_drops, 1U);
}

TEST(Network, LinkStateDropsTrafficBothWays) {
    sim::Engine engine;
    Network nw{engine};
    auto& a = nw.add_host("a");
    auto& b = nw.add_host("b");
    auto& r = nw.add_router("r");
    nw.connect(a, r);
    nw.connect(r, b);
    nw.install_static_routes();

    int got = 0;
    b.on_packet = [&](const Packet&) { ++got; };
    auto send = [&] {
        Packet p;
        p.type = PacketType::Data;
        p.src = a.id();
        p.dst = b.id();
        a.send(p);
    };
    send();
    engine.run();
    EXPECT_EQ(got, 1);

    nw.set_link_state(r.id(), b.id(), false);
    send();
    engine.run();
    EXPECT_EQ(got, 1); // dropped at the downed link

    nw.set_link_state(r.id(), b.id(), true);
    send();
    engine.run();
    EXPECT_EQ(got, 2);
}

TEST(Network, LinkStateOnUnconnectedNodesThrows) {
    sim::Engine engine;
    Network nw{engine};
    auto& a = nw.add_host("a");
    auto& b = nw.add_host("b");
    EXPECT_THROW(nw.set_link_state(a.id(), b.id(), false), std::invalid_argument);
}

// ------------------------------------------------------------ router CPU

TEST(RouterCpu, WorkRunsSeriallyAndCompletes) {
    sim::Engine engine;
    Network nw{engine};
    auto& r = nw.add_router("r");
    std::vector<double> done;
    engine.schedule_at(1_sec, [&] {
        r.schedule_cpu_work(0.3_sec, [&] { done.push_back(engine.now().sec()); });
        r.schedule_cpu_work(0.2_sec, [&] { done.push_back(engine.now().sec()); });
    });
    engine.run();
    ASSERT_EQ(done.size(), 2U);
    EXPECT_NEAR(done[0], 1.3, 1e-9);
    EXPECT_NEAR(done[1], 1.5, 1e-9);
}

TEST(RouterCpu, WhenIdleFiresImmediatelyIfIdle) {
    sim::Engine engine;
    Network nw{engine};
    auto& r = nw.add_router("r");
    bool fired = false;
    r.when_cpu_idle([&] { fired = true; });
    EXPECT_TRUE(fired);
}

TEST(RouterCpu, WhenIdleWaitsForQueueDrain) {
    sim::Engine engine;
    Network nw{engine};
    auto& r = nw.add_router("r");
    double idle_at = -1.0;
    engine.schedule_at(2_sec, [&] {
        r.schedule_cpu_work(1_sec, [] {});
        r.when_cpu_idle([&] { idle_at = engine.now().sec(); });
        r.schedule_cpu_work(0.5_sec, [] {}); // extends busy period
    });
    engine.run();
    EXPECT_NEAR(idle_at, 3.5, 1e-9);
}

TEST(RouterCpu, BlockingRouterDelaysTransitPackets) {
    sim::Engine engine;
    Network nw{engine};
    auto& a = nw.add_host("a");
    auto& b = nw.add_host("b");
    auto& r = nw.add_router("r", /*blocking=*/true, /*pending=*/4);
    nw.connect(a, r, LinkConfig{.rate_bps = 0.0, .delay = SimTime::zero()});
    nw.connect(r, b, LinkConfig{.rate_bps = 0.0, .delay = SimTime::zero()});
    nw.install_static_routes();

    double arrival = -1.0;
    b.on_packet = [&](const Packet&) { arrival = engine.now().sec(); };
    engine.schedule_at(1_sec, [&] { r.schedule_cpu_work(2_sec, [] {}); });
    engine.schedule_at(1.5_sec, [&] {
        Packet p;
        p.type = PacketType::Data;
        p.src = a.id();
        p.dst = b.id();
        a.send(p);
    });
    engine.run();
    // Held until the CPU frees at t = 3.
    EXPECT_NEAR(arrival, 3.0, 1e-9);
    EXPECT_EQ(r.stats().cpu_blocked_delayed, 1U);
}

TEST(RouterCpu, BlockingRouterDropsBeyondPendingCapacity) {
    sim::Engine engine;
    Network nw{engine};
    auto& a = nw.add_host("a");
    auto& b = nw.add_host("b");
    auto& r = nw.add_router("r", /*blocking=*/true, /*pending=*/2);
    nw.connect(a, r, LinkConfig{.rate_bps = 0.0, .delay = SimTime::zero()});
    nw.connect(r, b, LinkConfig{.rate_bps = 0.0, .delay = SimTime::zero()});
    nw.install_static_routes();

    int got = 0;
    b.on_packet = [&](const Packet&) { ++got; };
    engine.schedule_at(1_sec, [&] { r.schedule_cpu_work(5_sec, [] {}); });
    for (int i = 0; i < 5; ++i) {
        engine.schedule_at(SimTime::seconds(2.0 + 0.1 * i), [&] {
            Packet p;
            p.type = PacketType::Data;
            p.src = a.id();
            p.dst = b.id();
            a.send(p);
        });
    }
    engine.run();
    EXPECT_EQ(got, 2);
    EXPECT_EQ(r.stats().cpu_blocked_drops, 3U);
}

TEST(RouterCpu, NonBlockingRouterForwardsDuringWork) {
    sim::Engine engine;
    Network nw{engine};
    auto& a = nw.add_host("a");
    auto& b = nw.add_host("b");
    auto& r = nw.add_router("r", /*blocking=*/false);
    nw.connect(a, r, LinkConfig{.rate_bps = 0.0, .delay = SimTime::zero()});
    nw.connect(r, b, LinkConfig{.rate_bps = 0.0, .delay = SimTime::zero()});
    nw.install_static_routes();

    double arrival = -1.0;
    b.on_packet = [&](const Packet&) { arrival = engine.now().sec(); };
    engine.schedule_at(1_sec, [&] { r.schedule_cpu_work(2_sec, [] {}); });
    engine.schedule_at(1.5_sec, [&] {
        Packet p;
        p.type = PacketType::Data;
        p.src = a.id();
        p.dst = b.id();
        a.send(p);
    });
    engine.run();
    EXPECT_NEAR(arrival, 1.5, 1e-9);
    EXPECT_EQ(r.stats().cpu_blocked_delayed, 0U);
}

TEST(Router, RoutingUpdatesGoToAgentHookNotForwarding) {
    sim::Engine engine;
    Network nw{engine};
    auto& r1 = nw.add_router("r1");
    auto& r2 = nw.add_router("r2");
    nw.connect(r1, r2, LinkConfig{.rate_bps = 0.0, .delay = SimTime::zero()});
    int hooked = 0;
    r2.on_routing_update = [&](const Packet& p, int iface) {
        EXPECT_EQ(iface, 0);
        EXPECT_EQ(p.src, r1.id());
        ++hooked;
    };
    Packet u;
    u.type = PacketType::RoutingUpdate;
    u.src = r1.id();
    u.dst = r2.id();
    r1.send_on(0, u);
    engine.run();
    EXPECT_EQ(hooked, 1);
    EXPECT_EQ(r2.stats().updates_received, 1U);
    EXPECT_EQ(r2.stats().forwarded, 0U);
}

} // namespace
