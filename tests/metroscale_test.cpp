// Bounded large-N smoke: one 10^4-router trial through the experiment
// driver, the scale ctest runs on every build (the full 10^5..10^6 rungs
// live in bench/metroscale_sweep). Pins down what the metro-scale work
// promises: the trial completes, the packed kernel state stays small per
// router, the tracker's per-size tables answer consistently at this
// width, and the scalar/batched kernels agree bit for bit.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/core.hpp"
#include "sim/sim.hpp"

namespace {

using namespace routesync;

core::ExperimentConfig metro_config() {
    core::ExperimentConfig cfg;
    cfg.params.n = 10000;
    cfg.params.tp = sim::SimTime::seconds(121.0);
    cfg.params.tc = sim::SimTime::seconds(0.11);
    cfg.params.tr = sim::SimTime::seconds(0.3);
    cfg.params.start = core::StartCondition::Unsynchronized;
    cfg.params.seed = 0xfe70;
    // ~3 synchronized cycles: the collapse (n * Tc = 1100 s busy chain)
    // plus two full re-arm rounds. Runs in well under a second.
    cfg.max_time = sim::SimTime::seconds(4000.0);
    cfg.backend = core::ExperimentBackend::FastKernel;
    return cfg;
}

TEST(MetroScale, TenThousandRouterTrialCompletesWithinBudget) {
    const auto cfg = metro_config();
    const auto r = core::run_experiment(cfg);

    EXPECT_GT(r.rounds_closed, 0U);
    EXPECT_GT(r.total_transmissions, 0U);
    EXPECT_EQ(r.end_time_sec, cfg.max_time.sec());
    // At the Figure 15 parameters 1e4 routers synchronize immediately:
    // the whole first round is one busy chain.
    EXPECT_EQ(r.rounds_unsynchronized, 0U);

    // The per-router state budget that makes 1e6 routers feasible:
    // packed lanes + calendar queue, well under 256 B/router (the fixed
    // 1024-bucket calendar overhead is amortized at this n).
    ASSERT_GT(r.kernel_state_bytes, 0U);
    EXPECT_LT(r.kernel_state_bytes,
              256U * static_cast<std::uint64_t>(cfg.params.n));

    // The per-size hitting tables answer across the whole [1, n] axis.
    ASSERT_EQ(r.first_hit_up.size(), static_cast<std::size_t>(cfg.params.n) + 1);
    EXPECT_TRUE(r.first_hit_up[1].has_value());
    int largest_hit = 0;
    for (int s = 1; s <= cfg.params.n; ++s) {
        if (r.first_hit_up[static_cast<std::size_t>(s)].has_value()) {
            largest_hit = s;
        }
    }
    // The collapse forms a metro-scale cluster (nearly all routers; a
    // few stragglers can re-arm just outside the tolerance window).
    EXPECT_GT(largest_hit, cfg.params.n / 2);

    // Above the auto-record threshold the per-round vector stays empty
    // unless explicitly requested — 1e5-round runs must not accumulate
    // per-round records by default.
    EXPECT_TRUE(r.rounds.empty());
}

TEST(MetroScale, BatchedLanesMatchScalarAtTenThousandRouters) {
    // run_experiment_batch on two metro lanes vs scalar runs: identical
    // summaries (the batched kernel's contract, held at a width where
    // every expiry burst goes through the sorted-run calendar path).
    auto cfg_a = metro_config();
    auto cfg_b = metro_config();
    cfg_b.params.seed = 0xfe71;
    const std::vector<core::ExperimentConfig> configs{cfg_a, cfg_b};

    const auto batched = core::run_experiment_batch(configs);
    ASSERT_EQ(batched.size(), 2U);
    const auto scalar_a = core::run_experiment(cfg_a);
    const auto scalar_b = core::run_experiment(cfg_b);

    EXPECT_EQ(batched[0].total_transmissions, scalar_a.total_transmissions);
    EXPECT_EQ(batched[0].events_processed, scalar_a.events_processed);
    EXPECT_EQ(batched[0].rounds_closed, scalar_a.rounds_closed);
    EXPECT_EQ(batched[1].total_transmissions, scalar_b.total_transmissions);
    EXPECT_EQ(batched[1].events_processed, scalar_b.events_processed);
    EXPECT_EQ(batched[1].rounds_closed, scalar_b.rounds_closed);
    // Both kernels report a state footprint; layouts differ (AoS batch
    // lanes vs SoA scalar lanes), so only existence is compared.
    EXPECT_GT(batched[0].kernel_state_bytes, 0U);
    EXPECT_GT(scalar_a.kernel_state_bytes, 0U);
}

} // namespace
