// Tests for the discrete-event engine.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace {

using routesync::sim::Engine;
using routesync::sim::SimTime;
using namespace routesync::sim::literals;

TEST(Engine, NowStartsAtZero) {
    Engine e;
    EXPECT_EQ(e.now(), SimTime::zero());
}

TEST(Engine, CallbackSeesItsOwnTimestamp) {
    Engine e;
    SimTime seen;
    e.schedule_at(3_sec, [&] { seen = e.now(); });
    e.run();
    EXPECT_EQ(seen, 3_sec);
    EXPECT_EQ(e.now(), 3_sec);
}

TEST(Engine, ScheduleAfterIsRelative) {
    Engine e;
    std::vector<double> times;
    e.schedule_at(2_sec, [&] {
        e.schedule_after(1.5_sec, [&] { times.push_back(e.now().sec()); });
    });
    e.run();
    ASSERT_EQ(times.size(), 1U);
    EXPECT_DOUBLE_EQ(times[0], 3.5);
}

TEST(Engine, SchedulingInThePastThrows) {
    Engine e;
    e.schedule_at(5_sec, [] {});
    e.run();
    EXPECT_THROW(e.schedule_at(1_sec, [] {}), std::logic_error);
    EXPECT_THROW(e.schedule_after(SimTime::seconds(-1), [] {}), std::logic_error);
}

TEST(Engine, RunUntilExecutesOnlyEventsUpToLimitInclusive) {
    Engine e;
    std::vector<int> fired;
    e.schedule_at(1_sec, [&] { fired.push_back(1); });
    e.schedule_at(2_sec, [&] { fired.push_back(2); });
    e.schedule_at(3_sec, [&] { fired.push_back(3); });
    e.run_until(2_sec);
    EXPECT_EQ(fired, (std::vector<int>{1, 2}));
    EXPECT_EQ(e.now(), 2_sec);
    EXPECT_EQ(e.pending_events(), 1U);
}

TEST(Engine, RunUntilAdvancesClockEvenWithoutEvents) {
    Engine e;
    e.run_until(10_sec);
    EXPECT_EQ(e.now(), 10_sec);
}

TEST(Engine, StopHaltsRunFromInsideCallback) {
    Engine e;
    int count = 0;
    for (int i = 1; i <= 10; ++i) {
        e.schedule_at(SimTime::seconds(i), [&] {
            ++count;
            if (count == 4) {
                e.stop();
            }
        });
    }
    e.run();
    EXPECT_EQ(count, 4);
    EXPECT_TRUE(e.stop_requested());
    e.clear_stop();
    e.run();
    EXPECT_EQ(count, 10);
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
    Engine e;
    EXPECT_FALSE(e.step());
    e.schedule_at(1_sec, [] {});
    EXPECT_TRUE(e.step());
    EXPECT_FALSE(e.step());
}

TEST(Engine, EventsProcessedCounts) {
    Engine e;
    for (int i = 0; i < 7; ++i) {
        e.schedule_at(SimTime::seconds(i), [] {});
    }
    e.run();
    EXPECT_EQ(e.events_processed(), 7U);
}

TEST(Engine, CancelPreventsExecution) {
    Engine e;
    bool fired = false;
    const auto h = e.schedule_at(1_sec, [&] { fired = true; });
    EXPECT_TRUE(e.cancel(h));
    e.run();
    EXPECT_FALSE(fired);
}

TEST(Engine, SelfPerpetuatingChainRunsToHorizon) {
    Engine e;
    int ticks = 0;
    std::function<void()> tick = [&] {
        ++ticks;
        e.schedule_after(1_sec, tick);
    };
    e.schedule_at(SimTime::zero(), tick);
    e.run_until(100.5_sec);
    EXPECT_EQ(ticks, 101); // t = 0..100
}

} // namespace
