// Cross-module integration tests: the full paper pipeline, end to end.
#include <gtest/gtest.h>

#include <cmath>

#include "core/core.hpp"
#include "markov/markov.hpp"
#include "scenarios/scenarios.hpp"
#include "stats/stats.hpp"

namespace {

using namespace routesync;
using sim::SimTime;
using namespace sim::literals;

// ------------------------------------------------- Figure 1/2 end to end

TEST(Nearnet, SynchronizedUpdatesCausePeriodicPingLoss) {
    scenarios::NearnetScenario s{scenarios::NearnetConfig{}};
    apps::PingConfig pc;
    pc.dst = s.dst().id();
    pc.count = 1000;
    apps::PingApp ping{s.src(), pc};
    ping.start(s.routing_start() + 200_sec);
    s.engine().run_until(1500_sec);

    // The paper: "at least three percent of the ping packets were dropped".
    EXPECT_GE(ping.loss_fraction(), 0.02);
    EXPECT_LE(ping.loss_fraction(), 0.15);

    // Figure 2: dominant autocorrelation lag ~89 pings (90 s / 1.01 s).
    const auto series = ping.rtts_with_losses_as(2.0);
    const auto dom = stats::dominant_lag(series, 30, 150);
    EXPECT_NEAR(static_cast<double>(dom.lag), 89.0, 2.0);
    EXPECT_GT(dom.correlation, 0.4);
}

TEST(Nearnet, LossesComeInConsecutiveRuns) {
    scenarios::NearnetScenario s{scenarios::NearnetConfig{}};
    apps::PingConfig pc;
    pc.dst = s.dst().id();
    pc.count = 600;
    apps::PingApp ping{s.src(), pc};
    ping.start(s.routing_start() + 200_sec);
    s.engine().run_until(1100_sec);

    // "at 90-second intervals several successive pings would be dropped"
    int max_run = 0;
    int run = 0;
    for (const double rtt : ping.rtts()) {
        run = rtt < 0 ? run + 1 : 0;
        max_run = std::max(max_run, run);
    }
    EXPECT_GE(max_run, 2);
}

TEST(Nearnet, NonBlockingRoutersFixTheLosses) {
    scenarios::NearnetConfig cfg;
    cfg.blocking_cpu = false; // the post-fix NEARnet software
    scenarios::NearnetScenario s{cfg};
    apps::PingConfig pc;
    pc.dst = s.dst().id();
    pc.count = 500;
    apps::PingApp ping{s.src(), pc};
    ping.start(s.routing_start() + 200_sec);
    s.engine().run_until(1000_sec);
    EXPECT_EQ(ping.lost(), 0);
}

TEST(Nearnet, RoutersStaySynchronizedThroughTheRun) {
    scenarios::NearnetScenario s{scenarios::NearnetConfig{}};
    // Collect timer-set times of all agents over a late window; they
    // should cluster tightly (the synchronized state persists because the
    // jitter is below the breakup threshold).
    std::vector<double> sets;
    for (const auto& agent : s.agents()) {
        agent->on_timer_set = [&](SimTime t) {
            if (t > 800_sec) {
                sets.push_back(t.sec());
            }
        };
    }
    s.engine().run_until(1000_sec);
    ASSERT_GE(sets.size(), s.agents().size());
    // All timer sets within a window fall into few clusters: check that
    // the spread within each 90 s period is far below the period.
    std::vector<double> offsets;
    for (const double t : sets) {
        offsets.push_back(std::fmod(t, 90.0));
    }
    const auto clusters = stats::cluster_phases(offsets, 90.0, 5.0);
    EXPECT_LE(clusters.count(), 3U);
}

// --------------------------------------------------- Figure 3 end to end

TEST(Audiocast, PeriodicOutagesWithHighInStormLoss) {
    scenarios::AudiocastScenario s{scenarios::AudiocastConfig{}};
    apps::CbrConfig cc;
    cc.dst = s.audio_dst().id();
    cc.packets_per_second = 50.0;
    cc.stop_at = 700_sec;
    apps::CbrSource src{s.audio_src(), cc};
    apps::AudioSink sink{s.audio_dst(), SimTime::seconds(0.02)};
    src.start(s.routing_start() + 95_sec);
    s.engine().run_until(720_sec);

    // Long outages (the periodic spikes) recur roughly every 30 s.
    const auto spikes = sink.outages_longer_than(0.5);
    ASSERT_GE(spikes.size(), 10U);
    std::vector<double> gaps;
    for (std::size_t i = 1; i < spikes.size(); ++i) {
        gaps.push_back(spikes[i].start_sec - spikes[i - 1].start_sec);
    }
    stats::RunningStats gap_stats;
    for (const double g : gaps) {
        gap_stats.add(g);
    }
    EXPECT_NEAR(gap_stats.mean(), 30.0, 6.0);

    // Spikes last on the order of seconds (Figure 3: "last for several
    // seconds at a time").
    for (const auto& o : spikes) {
        EXPECT_GE(o.duration_sec, 0.5);
        EXPECT_LE(o.duration_sec, 10.0);
    }
}

// The Section 6 fix applied to the Figure 3 system: half-period update
// jitter removes the periodic audio outages entirely.
TEST(Audiocast, HalfPeriodJitterEliminatesTheSpikes) {
    scenarios::AudiocastConfig cfg;
    cfg.jitter_sec = 15.0; // RIP period 30 s: uniform [15 s, 45 s]
    scenarios::AudiocastScenario s{cfg};
    apps::CbrConfig cc;
    cc.dst = s.audio_dst().id();
    cc.packets_per_second = 50.0;
    cc.stop_at = sim::SimTime::seconds(500);
    apps::CbrSource src{s.audio_src(), cc};
    apps::AudioSink sink{s.audio_dst(), SimTime::seconds(0.02)};
    src.start(s.routing_start() + 95_sec);
    s.engine().run_until(520_sec);

    // Updates now arrive (mostly) one router at a time: chance double or
    // triple coincidences still stall the CPU briefly, but the
    // whole-cluster multi-second storm is gone...
    EXPECT_TRUE(sink.outages_longer_than(2.0).empty());
    // ...and stalls are occasional instead of every 30 s (the synchronized
    // run produces one >=0.5 s outage per period, ~14 in this window).
    EXPECT_LT(sink.outages_longer_than(0.5).size(), 8U);
    EXPECT_LT(static_cast<double>(sink.lost()) /
                  static_cast<double>(std::max<std::uint64_t>(src.sent(), 1)),
              0.10);
}

// ------------------------------------------- the 1988 LBL DECnet anecdote

// Paper Section 2: "On this network each DECnet router transmitted a
// routing message at 120-second intervals; within hours after bringing up
// the routers on the network after a failure, the routing messages from
// the various routers were completely synchronized." A simultaneous
// restart is a synchronized start; with only OS-level timing noise
// (below Tc/2) the synchronization is permanent.
TEST(DecnetAnecdote, RestartedRoutersStayCompletelySynchronized) {
    core::ExperimentConfig cfg;
    cfg.params.n = 12; // a building Ethernet's worth of DECnet routers
    cfg.params.tp = 120_sec;
    cfg.params.tc = 0.1_sec;
    cfg.params.tr = 0.02_sec; // scheduler jitter only
    cfg.params.start = core::StartCondition::Synchronized;
    cfg.params.seed = 1988;
    cfg.max_time = SimTime::seconds(8 * 3600); // "within hours"
    cfg.record_rounds = true;
    const auto r = core::run_experiment(cfg);
    ASSERT_GT(r.rounds_closed, 200U);
    for (const auto& round : r.rounds) {
        EXPECT_EQ(round.largest, 12);
    }
}

// And the arrival of one more batch of routers (a triggered-update wave
// from a topology change) re-locks the whole network instantly even if an
// operator had staggered the timers by hand.
TEST(DecnetAnecdote, TopologyChangeResynchronizesStaggeredTimers) {
    core::ExperimentConfig cfg;
    cfg.params.n = 12;
    cfg.params.tp = 120_sec;
    cfg.params.tc = 0.1_sec;
    cfg.params.tr = 0.02_sec;
    cfg.params.start = core::StartCondition::Unsynchronized; // hand-staggered
    cfg.params.seed = 1989;
    cfg.max_time = SimTime::seconds(7200);
    cfg.trigger_all_at = 3600_sec;
    cfg.stop_on_full_sync = true;
    const auto r = core::run_experiment(cfg);
    ASSERT_TRUE(r.full_sync_time_sec.has_value());
    EXPECT_NEAR(*r.full_sync_time_sec, 3600.0 + 12 * 0.1, 5.0);
}

// ------------------------------------- model vs chain vs packet network

// The Markov chain's f(N) is the right order of magnitude versus the
// Periodic Messages simulation (the paper: analysis is "two or three
// times" the simulation average; we allow a broad band).
TEST(CrossCheck, ChainPredictsSimulationTimeToSyncWithinBand) {
    markov::ChainParams cp;
    cp.n = 20;
    cp.tp_sec = 121.0;
    cp.tr_sec = 0.1;
    cp.tc_sec = 0.11;
    cp.f2_rounds = 19.0;
    const double predicted = markov::FJChain{cp}.time_to_synchronize_seconds();

    stats::RunningStats sim_times;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        core::ExperimentConfig cfg;
        cfg.params.n = 20;
        cfg.params.tp = 121_sec;
        cfg.params.tr = 0.1_sec;
        cfg.params.tc = 0.11_sec;
        cfg.params.seed = seed;
        cfg.max_time = 2000000_sec;
        cfg.stop_on_full_sync = true;
        const auto r = core::run_experiment(cfg);
        ASSERT_TRUE(r.full_sync_time_sec.has_value()) << "seed " << seed;
        sim_times.add(*r.full_sync_time_sec);
    }
    const double ratio = predicted / sim_times.mean();
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 12.0);
}

// The packet-level DV network exhibits the same emergent synchronization
// as the abstract model: routers on a LAN with AfterProcessing timers and
// small jitter end up setting timers together.
TEST(CrossCheck, DvRoutersOnLanSynchronizeLikeTheModel) {
    sim::Engine engine;
    net::Network nw{engine};
    // A full mesh of 6 routers ~ a broadcast LAN for updates.
    std::vector<net::Router*> routers;
    const int n = 6;
    for (int i = 0; i < n; ++i) {
        std::string name = "r";
        name += std::to_string(i);
        routers.push_back(&nw.add_router(name));
    }
    const net::LinkConfig fast{.rate_bps = 0.0,
                               .delay = sim::SimTime::micros(10)};
    for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
            nw.connect(*routers[static_cast<std::size_t>(i)],
                       *routers[static_cast<std::size_t>(j)], fast);
        }
    }
    nw.install_static_routes();

    routing::DvConfig dv;
    dv.period = 20_sec;
    dv.jitter = 20_msec; // tiny accidental jitter
    dv.filler_routes = 300;
    dv.per_route_cost = 1_msec; // Tc ~ 0.3 s >> 2*jitter: clusters hold
    dv.fixed_update_cost = SimTime::zero();
    dv.triggered_updates = false;

    std::vector<std::unique_ptr<routing::DistanceVectorAgent>> agents;
    std::vector<std::vector<double>> sets(static_cast<std::size_t>(n));
    rng::DefaultEngine phases{7};
    for (int i = 0; i < n; ++i) {
        routing::DvConfig c = dv;
        c.seed = 50 + static_cast<std::uint64_t>(i);
        agents.push_back(std::make_unique<routing::DistanceVectorAgent>(
            *routers[static_cast<std::size_t>(i)], c));
        agents.back()->on_timer_set = [&sets, i](SimTime t) {
            sets[static_cast<std::size_t>(i)].push_back(t.sec());
        };
        agents.back()->start(
            SimTime::seconds(rng::uniform_real(phases, 0.0, 20.0)));
    }

    engine.run_until(40000_sec); // ~2000 rounds
    // In the last rounds, look at the spread of final timer-set times.
    std::vector<double> last_sets;
    for (const auto& series : sets) {
        ASSERT_FALSE(series.empty());
        last_sets.push_back(series.back());
    }
    std::vector<double> offsets;
    for (const double t : last_sets) {
        offsets.push_back(std::fmod(t, 20.0));
    }
    const auto clusters = stats::cluster_phases(offsets, 20.0, 1.0);
    // The paper's mechanism: most routers have coalesced.
    EXPECT_GE(clusters.largest(), 4U);
}

// Adding RIP-recommended jitter to the same LAN prevents synchronization.
TEST(CrossCheck, JitteredDvRoutersStayUnsynchronized) {
    sim::Engine engine;
    net::Network nw{engine};
    std::vector<net::Router*> routers;
    const int n = 6;
    for (int i = 0; i < n; ++i) {
        std::string name = "r";
        name += std::to_string(i);
        routers.push_back(&nw.add_router(name));
    }
    const net::LinkConfig fast{.rate_bps = 0.0,
                               .delay = sim::SimTime::micros(10)};
    for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
            nw.connect(*routers[static_cast<std::size_t>(i)],
                       *routers[static_cast<std::size_t>(j)], fast);
        }
    }
    nw.install_static_routes();

    routing::DvConfig dv;
    dv.period = 20_sec;
    dv.jitter = 10_sec; // half-period jitter, the Section 6 fix
    dv.filler_routes = 300;
    dv.per_route_cost = 1_msec;
    dv.fixed_update_cost = SimTime::zero();
    dv.triggered_updates = false;

    std::vector<std::unique_ptr<routing::DistanceVectorAgent>> agents;
    std::vector<std::vector<double>> sets(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        routing::DvConfig c = dv;
        c.seed = 70 + static_cast<std::uint64_t>(i);
        agents.push_back(std::make_unique<routing::DistanceVectorAgent>(
            *routers[static_cast<std::size_t>(i)], c));
        agents.back()->on_timer_set = [&sets, i](SimTime t) {
            sets[static_cast<std::size_t>(i)].push_back(t.sec());
        };
        agents.back()->start(SimTime::zero()); // worst case: synchronized
    }

    engine.run_until(40000_sec);
    // Count how often in the last 100 arms any two routers re-armed within
    // the processing window of each other.
    std::vector<double> all;
    for (const auto& series : sets) {
        for (auto it = series.end() - std::min<std::size_t>(series.size(), 20);
             it != series.end(); ++it) {
            all.push_back(*it);
        }
    }
    std::sort(all.begin(), all.end());
    int coincidences = 0;
    for (std::size_t i = 1; i < all.size(); ++i) {
        if (all[i] - all[i - 1] < 0.3) {
            ++coincidences;
        }
    }
    // With half-period jitter arms are spread out; allow a few chance hits.
    EXPECT_LE(coincidences, static_cast<int>(all.size() / 4));
}

} // namespace
