// Byte-identity regression tests for the packet-pool / flat-table swap.
//
// The golden hashes below were computed from the seed tree (heap-allocated
// packets, std::map routing table) over the exact scenarios run here. The
// pooled packet path and the flat routing table are required to reproduce
// the seed's output bit for bit — slot recycling, payload sharing, and the
// sorted-vector table must never change event order, timing, or the RNG
// consumption sequence.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <vector>

#include "apps/apps.hpp"
#include "core/core.hpp"
#include "net/net.hpp"
#include "obs/obs.hpp"
#include "scenarios/scenarios.hpp"

namespace {

using namespace routesync;

std::uint64_t fnv1a(std::uint64_t h, const char* s) {
    for (; *s != '\0'; ++s) {
        h ^= static_cast<unsigned char>(*s);
        h *= 1099511628211ULL;
    }
    return h;
}

/// FNV-1a over the shortest-round-trip text of each sample — the same
/// encoding the figure tools write, so a hash match means byte-identical
/// plotted output.
std::uint64_t hash_series(const std::vector<double>& xs) {
    std::uint64_t h = 1469598103934665603ULL;
    char buf[64];
    for (const double x : xs) {
        std::snprintf(buf, sizeof buf, "%.17g;", x);
        h = fnv1a(h, buf);
    }
    return h;
}

struct NearnetResult {
    std::uint64_t hash;
    int lost;
    std::uint64_t forwarded;
    std::uint64_t cpu_drops;
    std::uint64_t events;
};

NearnetResult run_nearnet() {
    scenarios::NearnetConfig nc;
    nc.core_routers = 4;
    nc.filler_routes = 120;
    scenarios::NearnetScenario s{nc};
    apps::PingConfig pc;
    pc.dst = s.dst().id();
    pc.count = 300;
    apps::PingApp ping{s.src(), pc};
    ping.start(s.routing_start() + sim::SimTime::seconds(120));
    s.engine().run_until(sim::SimTime::seconds(600));
    return NearnetResult{hash_series(ping.rtts_with_losses_as(2.0)), ping.lost(),
                         s.r1().stats().forwarded, s.r1().stats().cpu_blocked_drops,
                         s.engine().events_processed()};
}

struct LanResult {
    std::uint64_t hash;
    std::uint64_t delivered;
    std::uint64_t collisions;
    std::uint64_t drops;
};

LanResult run_shared_lan() {
    sim::Engine engine;
    net::SharedLanConfig cfg;
    cfg.seed = 99;
    net::SharedLan lan{engine, cfg};
    std::vector<double> arrivals;
    for (int i = 0; i < 5; ++i) {
        lan.attach([&arrivals, &engine](const net::Packet&) {
            arrivals.push_back(engine.now().sec());
        });
    }
    // Five stations offer staggered bursts that force contention.
    for (int burst = 0; burst < 40; ++burst) {
        for (int st = 0; st < 5; ++st) {
            engine.schedule_at(sim::SimTime::millis(burst * 3 + st / 10.0),
                               [&lan, st, burst] {
                                   net::Packet p;
                                   p.src = st;
                                   p.size_bytes = 600;
                                   p.seq = static_cast<std::uint64_t>(burst);
                                   lan.send(st, p);
                               });
        }
    }
    engine.run();
    return LanResult{hash_series(arrivals), lan.stats().frames_delivered,
                     lan.stats().collisions,
                     lan.stats().drops_queue_full +
                         lan.stats().drops_excessive_collisions};
}

struct AudiocastResult {
    std::uint64_t hash;
    std::size_t gaps;
    double last_delivery_sec;
};

/// Mini version of the Figure 3 testbed: inter-arrival gaps of the audio
/// stream through the bottleneck while the RIP storm recurs.
AudiocastResult run_audiocast() {
    scenarios::AudiocastConfig ac;
    ac.core_routers = 3;
    ac.filler_routes = 80;
    scenarios::AudiocastScenario s{ac};
    apps::CbrConfig cc;
    cc.dst = s.audio_dst().id();
    apps::CbrSource cbr{s.audio_src(), cc};
    std::vector<double> gaps;
    double last = -1.0;
    s.audio_dst().on_packet = [&gaps, &last, &s](const net::Packet& p) {
        if (p.type != net::PacketType::Audio) {
            return;
        }
        const double now = s.engine().now().sec();
        if (last >= 0.0) {
            gaps.push_back(now - last);
        }
        last = now;
    };
    cbr.start(s.routing_start() + sim::SimTime::seconds(30));
    s.engine().run_until(sim::SimTime::seconds(200));
    return AudiocastResult{hash_series(gaps), gaps.size(), last};
}

TEST(Determinism, NearnetPingSeriesMatchesSeedGolden) {
    const NearnetResult r = run_nearnet();
    EXPECT_EQ(r.hash, 248729200849081250ULL);
    EXPECT_EQ(r.lost, 0);
    EXPECT_EQ(r.forwarded, 600U);
    EXPECT_EQ(r.cpu_drops, 0U);
    EXPECT_EQ(r.events, 4391U);
}

// With NearnetPingSeriesMatchesSeedGolden above, this pins the packet
// substrate behind Figures 1-3 to the pre-element-graph seed: the golden
// was computed from the tree where Link/Router owned their queues
// directly, so a match means the element-graph path reproduces it bit
// for bit.
TEST(Determinism, AudiocastGapSeriesMatchesSeedGolden) {
    const AudiocastResult r = run_audiocast();
    EXPECT_EQ(r.hash, 11533361420424263205ULL);
    EXPECT_EQ(r.gaps, 8092U);
    EXPECT_NEAR(r.last_delivery_sec, 199.993248, 1e-6);
}

TEST(Determinism, SharedLanContentionMatchesSeedGolden) {
    const LanResult r = run_shared_lan();
    EXPECT_EQ(r.hash, 2287523317434424679ULL);
    EXPECT_EQ(r.delivered, 200U);
    EXPECT_EQ(r.collisions, 155U);
    EXPECT_EQ(r.drops, 0U);
}

/// FNV-1a over the JSONL encoding of every event a traced run emits —
/// the same bytes JsonlFileSink writes and manifests hash, so a match
/// here means traces are diffable across machines and --jobs values.
std::uint64_t traced_pm_hash() {
    obs::RunContext ctx;
    ctx.trace_to_ring(1U << 20);
    core::ExperimentConfig cfg;
    cfg.params.n = 10;
    cfg.params.tp = sim::SimTime::seconds(121);
    cfg.params.tc = sim::SimTime::seconds(0.11);
    cfg.params.tr = sim::SimTime::seconds(0.1);
    cfg.params.seed = 42;
    cfg.max_time = sim::SimTime::seconds(20000);
    cfg.obs = &ctx;
    (void)core::run_experiment(cfg);

    const auto* ring = dynamic_cast<obs::RingBufferSink*>(ctx.sink());
    std::uint64_t h = 1469598103934665603ULL;
    for (const auto& e : ring->events()) {
        h = fnv1a(h, (obs::trace_event_jsonl(e) + "\n").c_str());
    }
    return h;
}

TEST(Determinism, TracedRunMatchesGoldenHash) {
    const std::uint64_t h = traced_pm_hash();
    EXPECT_EQ(h, traced_pm_hash()); // stable within a process
    // Golden: the trace byte stream is frozen. Recomputed when the wire
    // format last changed (the third scalar slot `x` joined every line).
    EXPECT_EQ(h, 3434839700093500433ULL);
}

TEST(Determinism, RepeatedRunsInOneProcessAreIdentical) {
    // Pool slot recycling across runs (the thread-local pools persist)
    // must not leak into observable behaviour.
    const NearnetResult a = run_nearnet();
    const NearnetResult b = run_nearnet();
    EXPECT_EQ(a.hash, b.hash);
    EXPECT_EQ(a.events, b.events);
    const LanResult c = run_shared_lan();
    const LanResult d = run_shared_lan();
    EXPECT_EQ(c.hash, d.hash);
    EXPECT_EQ(c.collisions, d.collisions);
}

} // namespace
