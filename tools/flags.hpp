// Minimal --flag/value command-line parsing for the routesync CLI.
// Separated from the binary so the parsing rules are unit-testable.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>

namespace routesync::cli {

using Flags = std::map<std::string, std::string>;

/// Parses `--name value` and `--name=value` flags starting at
/// argv[first]. A flag followed by another flag (or by nothing) is
/// boolean and gets the value "1". Non-flag tokens throw.
inline Flags parse_flags(int argc, char** argv, int first) {
    Flags flags;
    for (int i = first; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            throw std::invalid_argument{"unexpected argument: " + arg};
        }
        arg.erase(0, 2);
        if (arg.empty()) {
            throw std::invalid_argument{"empty flag name"};
        }
        if (const auto eq = arg.find('='); eq != std::string::npos) {
            if (eq == 0) {
                throw std::invalid_argument{"empty flag name"};
            }
            flags[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            flags.insert_or_assign(arg, std::string{argv[++i]});
        } else {
            flags.insert_or_assign(arg, std::string{"1"});
        }
    }
    return flags;
}

inline double flag_d(const Flags& flags, const std::string& key, double fallback) {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
}

inline int flag_i(const Flags& flags, const std::string& key, int fallback) {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atoi(it->second.c_str());
}

inline bool flag_b(const Flags& flags, const std::string& key) {
    return flags.contains(key);
}

inline std::string flag_s(const Flags& flags, const std::string& key,
                          const std::string& fallback = {}) {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
}

/// Parses `--jobs`: worker-thread count for parallel sweeps. Absent or
/// `--jobs 0` -> `fallback` (callers typically pass
/// parallel::hardware_jobs(), so 0 means "auto-detect"). Negatives and
/// non-numeric junk throw with a clear message — a silently-serial or
/// zero-thread run would be worse than an error.
inline std::size_t flag_jobs(const Flags& flags, std::size_t fallback) {
    const auto it = flags.find("jobs");
    if (it == flags.end()) {
        return fallback;
    }
    const std::string& value = it->second;
    char* end = nullptr;
    const long n = std::strtol(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || n < 0) {
        throw std::invalid_argument{
            "--jobs must be a non-negative integer (0 = auto-detect), got '" +
            value + "'"};
    }
    return n == 0 ? fallback : static_cast<std::size_t>(n);
}

/// Parses `--trials`: repetition count for multi-trial scenario runs and
/// sweeps. Absent -> `fallback`; must be >= 1 when given (a zero-trial
/// run is a no-op the user almost certainly did not mean). Non-numeric
/// junk throws, like --jobs.
inline int flag_trials(const Flags& flags, int fallback) {
    const auto it = flags.find("trials");
    if (it == flags.end()) {
        return fallback;
    }
    const std::string& value = it->second;
    char* end = nullptr;
    const long n = std::strtol(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || n < 1) {
        throw std::invalid_argument{
            "--trials must be a positive integer, got '" + value + "'"};
    }
    return static_cast<int>(n);
}

/// Parses `--batch`: trials per batched-kernel claim in parallel sweeps.
/// Absent -> `fallback`; `--batch 0` stays 0 ("auto-tune from the sweep
/// shape" — unlike --jobs, 0 is a meaningful value the scheduler
/// resolves itself). Negatives and non-numeric junk throw.
inline std::size_t flag_batch(const Flags& flags, std::size_t fallback) {
    const auto it = flags.find("batch");
    if (it == flags.end()) {
        return fallback;
    }
    const std::string& value = it->second;
    char* end = nullptr;
    const long n = std::strtol(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || n < 0) {
        throw std::invalid_argument{
            "--batch must be a non-negative integer (0 = auto), got '" +
            value + "'"};
    }
    return static_cast<std::size_t>(n);
}

} // namespace routesync::cli
