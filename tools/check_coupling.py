#!/usr/bin/env python3
"""Cross-check the two exports of `routesync analyze coupling`.

Usage:
  check_coupling.py GRAPH.json GRAPH.dot [--expect-total N]
      Assert the JSON and DOT documents describe the same coupling
      graph: identical edge sets with identical weights, a JSON
      total_weight equal to the sum of its edges, and a node count
      covering every endpoint. --expect-total additionally pins the
      total edge weight (e.g. to a traced reset count).

  check_coupling.py selftest
      Run this script's own unit tests (no files needed).

Exit status 0 on success; 1 with a diagnostic on the first violation.
No third-party dependencies (stdlib json + re only).
"""

import argparse
import json
import re
import sys

# One edge statement per line: `nSRC -> nDST [label="W" weight=W];`
DOT_EDGE_RE = re.compile(
    r'^\s*n(\d+)\s*->\s*n(\d+)\s*\[label="(\d+)"\s+weight=(\d+)\];\s*$')


def fail(msg: str) -> None:
    print(f"check_coupling: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def parse_dot(text: str, what: str) -> dict:
    """Returns {(src, dst): weight} from a coupling DOT document."""
    lines = text.splitlines()
    if not lines or lines[0].strip() != "digraph coupling {":
        fail(f"{what}: expected a 'digraph coupling {{' header")
    if not lines[-1].strip() == "}":
        fail(f"{what}: missing closing '}}'")
    edges = {}
    for lineno, line in enumerate(lines[1:-1], start=2):
        if not line.strip():
            continue
        m = DOT_EDGE_RE.match(line)
        if m is None:
            fail(f"{what}:{lineno}: unparseable edge line: {line!r}")
        src, dst, label, weight = (int(g) for g in m.groups())
        if label != weight:
            fail(f"{what}:{lineno}: label {label} != weight {weight}")
        if (src, dst) in edges:
            fail(f"{what}:{lineno}: duplicate edge n{src} -> n{dst}")
        edges[(src, dst)] = weight
    return edges


def parse_json(doc: dict, what: str) -> dict:
    """Returns {(src, dst): weight}; checks internal consistency."""
    for key in ("nodes", "edges", "total_weight"):
        if key not in doc:
            fail(f"{what}: missing key '{key}'")
    edges = {}
    for i, edge in enumerate(doc["edges"]):
        for key in ("src", "dst", "weight"):
            if key not in edge:
                fail(f"{what}: edges[{i}] missing '{key}'")
        key = (edge["src"], edge["dst"])
        if key in edges:
            fail(f"{what}: duplicate edge {key} in edges[{i}]")
        if edge["weight"] < 1:
            fail(f"{what}: edges[{i}] weight must be >= 1, "
                 f"got {edge['weight']}")
        edges[key] = edge["weight"]
    total = sum(edges.values())
    if total != doc["total_weight"]:
        fail(f"{what}: total_weight {doc['total_weight']} != "
             f"sum of edge weights {total}")
    endpoints = {n for e in edges for n in e}
    if len(endpoints) != doc["nodes"]:
        fail(f"{what}: nodes {doc['nodes']} != distinct endpoints "
             f"{len(endpoints)}")
    return edges


def compare(json_edges: dict, dot_edges: dict) -> str:
    """Returns an error message, or "" when the graphs match."""
    if json_edges != dot_edges:
        only_json = sorted(set(json_edges) - set(dot_edges))
        only_dot = sorted(set(dot_edges) - set(json_edges))
        if only_json or only_dot:
            return (f"edge sets differ: {len(only_json)} only in JSON "
                    f"{only_json[:3]}, {len(only_dot)} only in DOT "
                    f"{only_dot[:3]}")
        diff = [k for k in json_edges if json_edges[k] != dot_edges[k]]
        return (f"edge weights differ on {len(diff)} edges, first "
                f"{diff[0]}: {json_edges[diff[0]]} vs {dot_edges[diff[0]]}")
    return ""


def cmd_check(args: argparse.Namespace) -> None:
    try:
        with open(args.json, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {args.json}: {e}")
    try:
        with open(args.dot, encoding="utf-8") as f:
            dot_text = f.read()
    except OSError as e:
        fail(f"cannot read {args.dot}: {e}")

    json_edges = parse_json(doc, args.json)
    dot_edges = parse_dot(dot_text, args.dot)
    error = compare(json_edges, dot_edges)
    if error:
        fail(error)
    total = sum(json_edges.values())
    if args.expect_total is not None and total != args.expect_total:
        fail(f"total edge weight {total} != expected {args.expect_total}")
    print(f"check_coupling: OK: {len(json_edges)} edges, "
          f"total weight {total}, JSON == DOT")


def cmd_selftest(args: argparse.Namespace) -> None:
    global fail

    class SelfTestFailure(Exception):
        pass

    def raising_fail(msg):
        raise SelfTestFailure(msg)

    def expect_fail(fn, substring, label):
        try:
            fn()
        except SelfTestFailure as e:
            if substring not in str(e):
                raise AssertionError(
                    f"{label}: expected '{substring}' in '{e}'") from None
            return
        raise AssertionError(f"{label}: expected a failure")

    original_fail = fail
    fail = raising_fail
    try:
        good_dot = ('digraph coupling {\n'
                    '  n0 -> n0 [label="7" weight=7];\n'
                    '  n0 -> n2 [label="3" weight=3];\n'
                    '}\n')
        good_json = {"nodes": 2,
                     "edges": [{"src": 0, "dst": 0, "weight": 7},
                               {"src": 0, "dst": 2, "weight": 3}],
                     "total_weight": 10}
        dot_edges = parse_dot(good_dot, "selftest")
        json_edges = parse_json(good_json, "selftest")
        assert dot_edges == {(0, 0): 7, (0, 2): 3}
        assert compare(json_edges, dot_edges) == ""

        expect_fail(lambda: parse_dot("graph x {\n}\n", "t"),
                    "digraph coupling", "wrong header")
        expect_fail(
            lambda: parse_dot('digraph coupling {\n  n0 -> n1;\n}\n', "t"),
            "unparseable", "edge without attributes")
        expect_fail(
            lambda: parse_dot(
                'digraph coupling {\n'
                '  n0 -> n1 [label="2" weight=3];\n}\n', "t"),
            "label 2 != weight 3", "label/weight mismatch")
        expect_fail(
            lambda: parse_json(dict(good_json, total_weight=11), "t"),
            "total_weight", "bad total")
        expect_fail(
            lambda: parse_json(dict(good_json, nodes=5), "t"),
            "distinct endpoints", "bad node count")
        assert "edge sets differ" in compare(json_edges, {(0, 0): 7})
        assert "weights differ" in compare(json_edges,
                                           {(0, 0): 7, (0, 2): 4})
    finally:
        fail = original_fail
    print("check_coupling: OK: selftest passed")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser("check", help="cross-check JSON vs DOT exports")
    p_check.add_argument("json")
    p_check.add_argument("dot")
    p_check.add_argument("--expect-total", type=int, default=None,
                         help="assert the total edge weight equals N")
    p_check.set_defaults(func=cmd_check)

    p_selftest = sub.add_parser("selftest", help="run this script's tests")
    p_selftest.set_defaults(func=cmd_selftest)

    args = parser.parse_args()
    args.func(args)


if __name__ == "__main__":
    main()
