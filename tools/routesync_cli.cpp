// routesync — command-line driver for the simulation and analysis APIs.
//
// Subcommands:
//   pm         run the Periodic Messages model, emit CSV
//   chain      evaluate the Markov chain (f, g, fraction unsynchronized)
//   sweep      fraction-unsynchronized sweep over Tr (CSV)
//   threshold  critical jitter / critical router count
//   f2         Monte-Carlo estimate of f(2)
//
// Examples:
//   routesync pm --n 20 --tp 121 --tr 0.1 --tc 0.11 --max-time 1e5 --rounds
//   routesync chain --n 20 --tp 121 --tr 0.11 --tc 0.11 --f2 19
//   routesync sweep --n 20 --tp 121 --tc 0.11 --from 0.5 --to 3 --step 0.05
//   routesync threshold --n 20 --tp 30 --tc 0.3
//   routesync f2 --n 20 --tp 121 --tr 0.1 --tc 0.11 --reps 20 --jobs 4
//
// `sweep` and `f2` accept --jobs N to fan independent work over N worker
// threads (default, and N = 0: hardware concurrency). Output is
// byte-identical for every jobs value. `sweep --sim-trials T` validates
// the chain against T pooled Periodic Messages simulations per grid
// point (work-stealing across the whole grid x trial task set).
//
// `pm` and `sweep` accept --trace FILE (JSONL event trace; for pm every
// timer/transmission event, for sweep one metric_sample per grid point)
// and --out FILE (a run manifest with config, metrics, and the trace
// hash).
//
// `trace` post-processes a recorded JSONL trace:
//   routesync trace summary      --in run.jsonl [--round SEC] [--bins N]
//   routesync trace filter       --in run.jsonl [--type a,b] [--node N]
//                                [--from T] [--to T] [--out FILE]
//   routesync trace export-chrome --in run.jsonl [--out FILE]
//   routesync trace replay-check --in run.jsonl [--tolerance SEC]
//                                [--expect FILE] [--print]
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/core.hpp"
#include "core/trace_replay.hpp"
#include "markov/markov.hpp"
#include "obs/obs.hpp"
#include "obs/sync_monitor.hpp"
#include "obs/trace_analysis.hpp"
#include "obs/trace_reader.hpp"
#include "parallel/parallel.hpp"
#include "scenarios/registry.hpp"
#include "tools/flags.hpp"

using namespace routesync;

namespace {

using cli::flag_b;
using cli::flag_d;
using cli::flag_i;
using cli::flag_jobs;
using cli::flag_s;
using cli::Flags;

markov::ChainParams chain_params(const Flags& flags) {
    markov::ChainParams p;
    p.n = flag_i(flags, "n", 20);
    p.tp_sec = flag_d(flags, "tp", 121.0);
    p.tr_sec = flag_d(flags, "tr", 0.11);
    p.tc_sec = flag_d(flags, "tc", 0.11);
    p.f2_rounds = flag_d(flags, "f2",
                         markov::f2_diffusion_estimate(p.n, p.tp_sec, p.tr_sec));
    return p;
}

int cmd_pm(const Flags& flags) {
    core::ExperimentConfig cfg;
    cfg.params.n = flag_i(flags, "n", 20);
    cfg.params.tp = sim::SimTime::seconds(flag_d(flags, "tp", 121.0));
    cfg.params.tr = sim::SimTime::seconds(flag_d(flags, "tr", 0.11));
    cfg.params.tc = sim::SimTime::seconds(flag_d(flags, "tc", 0.11));
    cfg.params.seed = static_cast<std::uint64_t>(flag_i(flags, "seed", 1));
    if (flag_b(flags, "sync-start")) {
        cfg.params.start = core::StartCondition::Synchronized;
    }
    cfg.params.reset_at_expiry = flag_b(flags, "reset-at-expiry");
    // --delta X: fixed distinct periods Tp + k*X (the Section 6 open
    // question; combine with --tr 0 for zero jitter).
    const double delta = flag_d(flags, "delta", 0.0);
    if (delta != 0.0) {
        for (int k = 0; k < cfg.params.n; ++k) {
            cfg.params.per_node_tp.push_back(cfg.params.tp.sec() + delta * k);
        }
    }
    if (flag_b(flags, "half-period")) {
        const auto tp = cfg.params.tp;
        cfg.make_policy = [tp] {
            return std::make_unique<core::HalfPeriodJitter>(tp);
        };
    }
    cfg.max_time = sim::SimTime::seconds(flag_d(flags, "max-time", 1e5));
    cfg.stop_on_full_sync = flag_b(flags, "stop-on-sync");
    cfg.stop_on_breakup_threshold = flag_i(flags, "stop-on-breakup", 0);
    cfg.monitor = flag_b(flags, "monitor");
    cfg.sync_threshold = flag_d(flags, "sync-threshold", cfg.sync_threshold);
    cfg.sync_hysteresis = flag_d(flags, "sync-hysteresis", cfg.sync_hysteresis);
    const bool want_rounds = flag_b(flags, "rounds");
    const bool want_transmits = flag_b(flags, "transmits");
    cfg.record_rounds = want_rounds;
    cfg.transmit_stride = want_transmits ? flag_i(flags, "stride", 1) : 0;

    obs::RunContext ctx;
    const std::string trace = flag_s(flags, "trace");
    const std::string out = flag_s(flags, "out");
    if (!trace.empty()) {
        ctx.trace_to_file(trace);
    }
    if (!trace.empty() || !out.empty()) {
        cfg.obs = &ctx;
        cfg.sample_every = flag_d(flags, "sample-every", 0.0);
        obs::Manifest& m = ctx.manifest();
        m.tool = "routesync_cli pm";
        m.description = "Periodic Messages model run";
        m.seeds.assign(1, cfg.params.seed);
        m.set_config("n", cfg.params.n);
        m.set_config("tp_sec", cfg.params.tp.sec());
        m.set_config("tr_sec", cfg.params.tr.sec());
        m.set_config("tc_sec", cfg.params.tc.sec());
        m.set_config("max_time_sec", cfg.max_time.sec());
        if (cfg.monitor) {
            m.set_config("monitor", true);
            m.set_config("sync_threshold", cfg.sync_threshold);
            m.set_config("sync_hysteresis", cfg.sync_hysteresis);
        }
    }

    const auto r = core::run_experiment(cfg);
    if (cfg.obs != nullptr) {
        if (out.empty()) {
            ctx.finish(r.end_time_sec);
        } else {
            ctx.write_manifest(out, r.end_time_sec);
        }
    }

    if (want_transmits) {
        std::printf("time_s,node,offset_s\n");
        for (const auto& t : r.transmits) {
            std::printf("%.6f,%d,%.6f\n", t.time_sec, t.node, t.offset_sec);
        }
    } else if (want_rounds) {
        std::printf("round,end_time_s,largest_cluster\n");
        for (const auto& round : r.rounds) {
            std::printf("%llu,%.3f,%d\n",
                        static_cast<unsigned long long>(round.round),
                        round.end_time.sec(), round.largest);
        }
    } else {
        std::printf("rounds,%llu\n",
                    static_cast<unsigned long long>(r.rounds_closed));
        std::printf("transmissions,%llu\n",
                    static_cast<unsigned long long>(r.total_transmissions));
        std::printf("full_sync_time_s,%s\n",
                    r.full_sync_time_sec
                        ? std::to_string(*r.full_sync_time_sec).c_str()
                        : "none");
        std::printf("breakup_time_s,%s\n",
                    r.breakup_time_sec
                        ? std::to_string(*r.breakup_time_sec).c_str()
                        : "none");
        std::printf("rounds_unsynchronized,%llu\n",
                    static_cast<unsigned long long>(r.rounds_unsynchronized));
    }
    return 0;
}

int cmd_chain(const Flags& flags) {
    const markov::FJChain chain{chain_params(flags)};
    const auto f = chain.f_rounds();
    const auto g = chain.g_rounds();
    std::printf("state,p_down,p_up,f_rounds,f_seconds,g_rounds,g_seconds\n");
    for (int i = 1; i <= chain.params().n; ++i) {
        const auto s = static_cast<std::size_t>(i);
        std::printf("%d,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g\n", i, chain.p_down(i),
                    chain.p_up(i), f[s], f[s] * chain.round_seconds(), g[s],
                    g[s] * chain.round_seconds());
    }
    std::fprintf(stderr, "fraction_unsynchronized %.6g\n",
                 chain.fraction_unsynchronized());
    return 0;
}

int cmd_sweep(const Flags& flags) {
    markov::ChainParams base = chain_params(flags);
    const double from = flag_d(flags, "from", 0.5); // in units of Tc
    const double to = flag_d(flags, "to", 3.0);
    const double step = flag_d(flags, "step", 0.05);
    const std::size_t jobs = flag_jobs(flags, parallel::hardware_jobs());
    // --batch B: trials per batched-kernel claim (0 = auto). Like --jobs,
    // it never changes the CSV — batching is pure performance.
    const std::size_t batch = cli::flag_batch(flags, 0);
    // --sim-trials T (> 0) runs T Periodic Messages simulations per grid
    // point alongside the chain and appends a sim_frac_unsync column: the
    // mean fraction of closed rounds that were fully unsynchronized,
    // measured over --sim-max-time seconds. Default output is unchanged.
    const int sim_trials = flag_i(flags, "sim-trials", 0);
    const double sim_max_time = flag_d(flags, "sim-max-time", 1e4);
    const auto sim_seed = static_cast<std::uint64_t>(flag_i(flags, "seed", 1));
    obs::RunContext ctx;
    const std::string trace = flag_s(flags, "trace");
    const std::string out = flag_s(flags, "out");
    if (!trace.empty()) {
        ctx.trace_to_file(trace);
    }
    std::vector<double> grid;
    for (double x = from; x <= to + 1e-12; x += step) {
        grid.push_back(x);
    }
    struct Row {
        double tr_s, frac, fn_s, g1_s;
    };
    const auto rows = parallel::map_index<Row>(
        grid.size(), jobs, [&](std::size_t i) {
            markov::ChainParams p = base;
            p.tr_sec = grid[i] * base.tc_sec;
            p.f2_rounds = markov::f2_diffusion_estimate(p.n, p.tp_sec, p.tr_sec);
            const markov::FJChain chain{p};
            return Row{p.tr_sec, chain.fraction_unsynchronized(),
                       chain.time_to_synchronize_seconds(),
                       chain.time_to_break_up_seconds()};
        });
    // All (grid point x trial) simulations pool into one work-stealing
    // task set; the results come back in submission (grid-major) order,
    // so the CSV is byte-identical for every --jobs value.
    std::vector<double> sim_frac(grid.size(), 0.0);
    if (sim_trials > 0) {
        const auto trials = static_cast<std::size_t>(sim_trials);
        parallel::SweepScheduler scheduler{{.jobs = jobs, .batch = batch}};
        const auto sims = scheduler.run_generated(
            grid.size() * trials, [&](std::size_t task) {
                core::ExperimentConfig cfg;
                cfg.params.n = base.n;
                cfg.params.tp = sim::SimTime::seconds(base.tp_sec);
                cfg.params.tc = sim::SimTime::seconds(base.tc_sec);
                cfg.params.tr =
                    sim::SimTime::seconds(grid[task / trials] * base.tc_sec);
                cfg.params.seed = parallel::derive_seed(sim_seed, task);
                cfg.max_time = sim::SimTime::seconds(sim_max_time);
                return cfg;
            });
        for (std::size_t i = 0; i < grid.size(); ++i) {
            double total = 0.0;
            for (std::size_t t = 0; t < trials; ++t) {
                const auto& r = sims[i * trials + t];
                if (r.rounds_closed > 0) {
                    total += static_cast<double>(r.rounds_unsynchronized) /
                             static_cast<double>(r.rounds_closed);
                }
            }
            sim_frac[i] = total / static_cast<double>(trials);
        }
    }
    std::printf(sim_trials > 0
                    ? "tr_over_tc,tr_s,fraction_unsync,f_n_s,g_1_s,sim_frac_unsync\n"
                    : "tr_over_tc,tr_s,fraction_unsync,f_n_s,g_1_s\n");
    for (std::size_t i = 0; i < grid.size(); ++i) {
        std::printf("%.4f,%.6g,%.6g,%.6g,%.6g", grid[i], rows[i].tr_s,
                    rows[i].frac, rows[i].fn_s, rows[i].g1_s);
        if (sim_trials > 0) {
            std::printf(",%.6g", sim_frac[i]);
        }
        std::printf("\n");
        // One metric_sample per grid point, in grid order: a carries the
        // grid index, b the unsynchronized fraction, x the swept Tr
        // (seconds). There is no simulation clock in a chain sweep, so t
        // stays 0 — keeping the "t is monotone simulation time" contract
        // intact. Deterministic for every --jobs value because the sweep
        // results come back in submission order.
        if (obs::Tracer* tr = ctx.tracer()) {
            tr->emit(obs::TraceEventType::MetricSample, sim::SimTime::zero(), -1,
                     static_cast<std::int64_t>(i), rows[i].frac, rows[i].tr_s);
        }
        ctx.metrics().observe("sweep.fraction_unsync", rows[i].frac);
    }
    if (!trace.empty() || !out.empty()) {
        obs::Manifest& m = ctx.manifest();
        m.tool = "routesync_cli sweep";
        m.description = "fraction-unsynchronized sweep over Tr";
        m.jobs = jobs;
        m.set_config("n", base.n);
        m.set_config("tp_sec", base.tp_sec);
        m.set_config("tc_sec", base.tc_sec);
        m.set_config("from_tr_over_tc", from);
        m.set_config("to_tr_over_tc", to);
        m.set_config("step", step);
        if (sim_trials > 0) {
            m.set_config("sim_trials", sim_trials);
            m.set_config("sim_max_time_sec", sim_max_time);
        }
        if (out.empty()) {
            ctx.finish(0.0);
        } else {
            ctx.write_manifest(out, 0.0);
        }
    }
    return 0;
}

int cmd_threshold(const Flags& flags) {
    const markov::ChainParams p = chain_params(flags);
    const double tr_star = markov::critical_tr_seconds(p);
    std::printf("critical_tr_s,%.6g\n", tr_star);
    std::printf("critical_tr_over_tc,%.4f\n", tr_star / p.tc_sec);
    std::printf("rule_10tc_s,%.6g\n", 10.0 * p.tc_sec);
    std::printf("rule_half_period_s,%.6g\n", 0.5 * p.tp_sec);
    std::printf("critical_n,%d\n", markov::critical_n(p, flag_i(flags, "n-max", 200)));
    return 0;
}

int cmd_f2(const Flags& flags) {
    const markov::ChainParams p = chain_params(flags);
    const auto est = markov::estimate_f2(
        p, flag_i(flags, "reps", 20),
        static_cast<std::uint64_t>(flag_i(flags, "seed", 1)),
        /*max_rounds_per_rep=*/1e6,
        flag_jobs(flags, parallel::hardware_jobs()));
    std::printf("f2_rounds,%.4f\n", est.mean_rounds);
    std::printf("f2_seconds,%.2f\n", est.mean_seconds);
    std::printf("completed,%d\n", est.completed);
    std::printf("censored,%d\n", est.censored);
    std::printf("diffusion_estimate_rounds,%.4f\n",
                markov::f2_diffusion_estimate(p.n, p.tp_sec, p.tr_sec));
    return 0;
}

std::vector<obs::TraceEvent> load_trace(const Flags& flags) {
    const std::string in = flag_s(flags, "in");
    if (in.empty()) {
        throw std::invalid_argument{"trace: --in FILE is required"};
    }
    return obs::TraceReader::read_all(in);
}

/// Writes to --out when given, stdout otherwise.
void emit_text(const Flags& flags, const std::string& text) {
    const std::string out = flag_s(flags, "out");
    if (out.empty()) {
        std::fwrite(text.data(), 1, text.size(), stdout);
        return;
    }
    std::ofstream f{out};
    if (!f) {
        throw std::runtime_error{"trace: cannot open " + out};
    }
    f << text;
}

std::string fmt_time_to_sync(double t) {
    if (t < 0.0) {
        return "never";
    }
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.6f s", t);
    return buf;
}

bool has_sync_config(const std::vector<obs::TraceEvent>& events) {
    for (const obs::TraceEvent& e : events) {
        if (e.type == obs::TraceEventType::SyncConfig) {
            return true;
        }
    }
    return false;
}

int cmd_trace_summary(const Flags& flags) {
    const auto events = load_trace(flags);
    obs::SummaryOptions options;
    options.round_length = flag_d(flags, "round", 0.0);
    options.phase_bins = flag_i(flags, "bins", 20);
    const std::string report = obs::format_summary(obs::summarize(events, options));
    std::fwrite(report.data(), 1, report.size(), stdout);

    // Traces from --monitor runs carry a sync_config event; recompute the
    // streaming analysis so the summary reports r(t) and the transition
    // time without needing the original run.
    if (has_sync_config(events)) {
        const auto sync = obs::replay_sync(events);
        std::printf("\nsynchronization (recomputed from trace):\n");
        std::printf("  r: last %.6g  max %.6g  in_sync %s\n", sync.report.r_last,
                    sync.report.r_max, sync.report.in_sync ? "yes" : "no");
        std::printf("  transitions: %llu  time_to_sync: %s\n",
                    static_cast<unsigned long long>(sync.report.transitions),
                    fmt_time_to_sync(sync.report.time_to_sync_sec).c_str());
        std::printf("  entropy (last round): %.6g  largest fraction: %.6g\n",
                    sync.report.entropy_last, sync.report.largest_fraction_last);
        std::printf("  coupling: %zu edges, total weight %llu over %zu nodes\n",
                    sync.coupling.edge_count(),
                    static_cast<unsigned long long>(sync.coupling.total_weight()),
                    sync.coupling.node_count());
    }
    return 0;
}

int cmd_trace_filter(const Flags& flags) {
    const auto events = load_trace(flags);
    obs::FilterOptions options;
    // --type a,b,c — comma-separated wire names.
    if (const std::string types = flag_s(flags, "type"); !types.empty()) {
        std::istringstream ss{types};
        std::string name;
        while (std::getline(ss, name, ',')) {
            const auto type = obs::trace_event_type_from_name(name);
            if (!type.has_value()) {
                throw std::invalid_argument{"trace filter: unknown event type '" +
                                            name + "'"};
            }
            options.types.push_back(*type);
        }
    }
    if (flags.contains("node")) {
        options.node = flag_i(flags, "node", -1);
    }
    if (flags.contains("from")) {
        options.t_min = flag_d(flags, "from", 0.0);
    }
    if (flags.contains("to")) {
        options.t_max = flag_d(flags, "to", 0.0);
    }
    std::string out;
    for (const obs::TraceEvent& e : obs::filter_events(events, options)) {
        out += obs::trace_event_jsonl(e);
        out += '\n';
    }
    emit_text(flags, out);
    return 0;
}

int cmd_trace_export_chrome(const Flags& flags) {
    emit_text(flags, obs::export_chrome(load_trace(flags)));
    return 0;
}

int cmd_trace_replay_check(const Flags& flags) {
    const auto events = load_trace(flags);
    const auto replay = core::replay_cluster_series(
        events,
        sim::SimTime::seconds(flag_d(flags, "tolerance", 1e-6)));
    std::fprintf(stderr,
                 "replay-check: n=%d, %llu timer_set fed (%llu initial "
                 "skipped), %zu cluster events recomputed\n",
                 replay.n,
                 static_cast<unsigned long long>(replay.timer_sets_fed),
                 static_cast<unsigned long long>(replay.initial_skipped),
                 replay.replayed.size());
    if (flag_b(flags, "print")) {
        const std::string series = core::format_cluster_series(replay.replayed);
        std::fwrite(series.data(), 1, series.size(), stdout);
    }

    int failures = 0;
    const std::string vs_recorded =
        core::diff_cluster_series(replay.replayed, replay.recorded);
    if (replay.recorded.empty()) {
        std::fprintf(stderr,
                     "replay-check: trace has no cluster_change events to "
                     "compare against\n");
    } else if (!vs_recorded.empty()) {
        std::fprintf(stderr, "replay-check: MISMATCH vs recorded series: %s\n",
                     vs_recorded.c_str());
        ++failures;
    } else {
        std::fprintf(stderr,
                     "replay-check: OK — replayed series matches the %zu "
                     "recorded cluster_change events\n",
                     replay.recorded.size());
    }

    // --expect FILE: diff against an externally recorded series (the
    // format fig04 --clusters-out writes: "time size" per line).
    if (const std::string expect = flag_s(flags, "expect"); !expect.empty()) {
        std::ifstream f{expect};
        if (!f) {
            throw std::runtime_error{"trace replay-check: cannot open " + expect};
        }
        std::ostringstream buf;
        buf << f.rdbuf();
        if (buf.str() != core::format_cluster_series(replay.replayed)) {
            std::fprintf(stderr,
                         "replay-check: MISMATCH vs expected series %s\n",
                         expect.c_str());
            ++failures;
        } else {
            std::fprintf(stderr,
                         "replay-check: OK — replayed series matches %s "
                         "byte-for-byte\n",
                         expect.c_str());
        }
    }

    // Monitored traces (sync_config present): recompute r(t), the
    // detector transitions, and the coupling graph from the trace, and
    // hold them to the recorded sync_transition / coupling_edge events
    // bit for bit.
    if (has_sync_config(events)) {
        const auto sync = obs::replay_sync(events);
        std::fprintf(stderr,
                     "replay-check: sync replay — r_last=%.17g r_max=%.17g "
                     "transitions=%zu time_to_sync=%s\n",
                     sync.report.r_last, sync.report.r_max,
                     sync.transitions.size(),
                     fmt_time_to_sync(sync.report.time_to_sync_sec).c_str());
        bool ok = sync.transitions.size() == sync.recorded.size();
        for (std::size_t i = 0; ok && i < sync.transitions.size(); ++i) {
            const auto& a = sync.transitions[i];
            const auto& b = sync.recorded[i];
            ok = a.time == b.time && a.up == b.up && a.r == b.r;
        }
        if (!ok) {
            std::fprintf(stderr,
                         "replay-check: MISMATCH — recomputed %zu transitions "
                         "vs %zu recorded (or values differ)\n",
                         sync.transitions.size(), sync.recorded.size());
            ++failures;
        } else {
            std::fprintf(stderr,
                         "replay-check: OK — %zu recomputed sync transitions "
                         "match the recorded events exactly\n",
                         sync.transitions.size());
        }
        const auto recomputed_edges = sync.coupling.edges();
        bool edges_ok = recomputed_edges.size() == sync.recorded_edges.size();
        for (std::size_t i = 0; edges_ok && i < recomputed_edges.size(); ++i) {
            const auto& a = recomputed_edges[i];
            const auto& b = sync.recorded_edges[i];
            edges_ok = a.src == b.src && a.dst == b.dst && a.weight == b.weight;
        }
        if (!edges_ok) {
            std::fprintf(stderr,
                         "replay-check: MISMATCH — recomputed coupling graph "
                         "(%zu edges) differs from the %zu recorded "
                         "coupling_edge events\n",
                         recomputed_edges.size(), sync.recorded_edges.size());
            ++failures;
        } else {
            std::fprintf(stderr,
                         "replay-check: OK — coupling graph matches the %zu "
                         "recorded coupling_edge events\n",
                         recomputed_edges.size());
        }
    }
    return failures == 0 ? 0 : 1;
}

// `analyze coupling` recomputes the causal coupling graph from a trace
// (monitored or not — an unmonitored trace needs --round SEC for the
// phase modulus) and exports it as DOT and/or JSON. Exits 1 when the
// graph fails its internal cross-checks: the edge-weight total must
// equal the number of re-arms fed, and when the trace carries recorded
// coupling_edge events the recomputed graph must match them exactly.
int cmd_analyze_coupling(const Flags& flags) {
    const auto events = load_trace(flags);
    obs::SyncReplayOverrides overrides;
    overrides.period_sec = flag_d(flags, "round", 0.0);
    const auto sync = obs::replay_sync(events, overrides);
    const obs::CouplingGraph& g = sync.coupling;

    int failures = 0;
    if (g.total_weight() != sync.timer_sets_fed) {
        std::fprintf(stderr,
                     "analyze coupling: MISMATCH — edge-weight total %llu != "
                     "%llu re-arms fed from the trace\n",
                     static_cast<unsigned long long>(g.total_weight()),
                     static_cast<unsigned long long>(sync.timer_sets_fed));
        ++failures;
    }
    if (!sync.recorded_edges.empty()) {
        const auto recomputed = g.edges();
        bool ok = recomputed.size() == sync.recorded_edges.size();
        for (std::size_t i = 0; ok && i < recomputed.size(); ++i) {
            const auto& a = recomputed[i];
            const auto& b = sync.recorded_edges[i];
            ok = a.src == b.src && a.dst == b.dst && a.weight == b.weight;
        }
        if (!ok) {
            std::fprintf(stderr,
                         "analyze coupling: MISMATCH — recomputed graph (%zu "
                         "edges) differs from the %zu recorded coupling_edge "
                         "events\n",
                         recomputed.size(), sync.recorded_edges.size());
            ++failures;
        }
    }
    std::fprintf(stderr,
                 "analyze coupling: %zu nodes, %zu edges, total weight %llu "
                 "(%llu re-arms fed, %llu initial arms skipped)%s\n",
                 g.node_count(), g.edge_count(),
                 static_cast<unsigned long long>(g.total_weight()),
                 static_cast<unsigned long long>(sync.timer_sets_fed),
                 static_cast<unsigned long long>(sync.initial_skipped),
                 sync.recorded_edges.empty()
                     ? ""
                     : " — matches the recorded coupling_edge events");

    if (const std::string dot = flag_s(flags, "dot"); !dot.empty()) {
        std::ofstream f{dot};
        if (!f) {
            throw std::runtime_error{"analyze coupling: cannot open " + dot};
        }
        f << g.to_dot();
    }
    if (const std::string json = flag_s(flags, "json"); !json.empty()) {
        std::ofstream f{json};
        if (!f) {
            throw std::runtime_error{"analyze coupling: cannot open " + json};
        }
        f << g.to_json() << '\n';
    }
    if (flag_b(flags, "print") ||
        (flag_s(flags, "dot").empty() && flag_s(flags, "json").empty())) {
        const std::string dot = g.to_dot();
        std::fwrite(dot.data(), 1, dot.size(), stdout);
    }
    return failures == 0 ? 0 : 1;
}

int cmd_analyze(int argc, char** argv) {
    if (argc < 3) {
        throw std::invalid_argument{"analyze: need an action (coupling)"};
    }
    const std::string action = argv[2];
    const Flags flags = cli::parse_flags(argc, argv, 3);
    if (action == "coupling") {
        return cmd_analyze_coupling(flags);
    }
    throw std::invalid_argument{"analyze: unknown action '" + action + "'"};
}

// `scenario list` prints the registry table; `scenario run <name>
// [--flags]` dispatches through it. Builtins run in-process; figure and
// example binaries exec relative to --bin-dir (default: the build root,
// inferred from this binary's own path — tools/ and bench/ are
// siblings).
int cmd_scenario(int argc, char** argv) {
    scenarios::register_builtin_scenarios();
    const auto& registry = scenarios::ScenarioRegistry::instance();
    if (argc < 3) {
        throw std::invalid_argument{
            "scenario: need an action (list|run NAME|sweep NAME)"};
    }
    const std::string action = argv[2];
    if (action == "list") {
        std::printf("%-18s %-8s %s\n", "name", "kind", "summary");
        for (const auto& e : registry.entries()) {
            std::printf("%-18s %-8s %s\n", e.name.c_str(),
                        e.is_builtin() ? "builtin" : "external",
                        e.summary.c_str());
            if (!e.flags_help.empty()) {
                std::printf("%-18s %-8s   flags: %s\n", "", "",
                            e.flags_help.c_str());
            }
        }
        return 0;
    }
    if (action == "run") {
        if (argc < 4) {
            throw std::invalid_argument{"scenario run: need a scenario name"};
        }
        const std::string name = argv[3];
        Flags flags = cli::parse_flags(argc, argv, 4);
        // Junk-reject the parallel knobs up front (the registry's lenient
        // atoi parsing would read "--jobs 8x" as 8): a typo'd worker or
        // trial count must be an error, not a silently different run.
        (void)cli::flag_trials(flags, 1);
        (void)cli::flag_jobs(flags, 1);
        if (!flags.contains("bin-dir")) {
            // argv[0] is <build>/tools/routesync; the figure and example
            // binaries live in <build>/bench and <build>/examples.
            std::string self = argv[0];
            const auto slash = self.find_last_of('/');
            flags["bin-dir"] =
                (slash == std::string::npos ? std::string{"."}
                                            : self.substr(0, slash)) +
                "/..";
        }
        return registry.run(name, flags);
    }
    if (action == "sweep") {
        if (argc < 4) {
            throw std::invalid_argument{"scenario sweep: need a scenario name"};
        }
        const std::string name = argv[3];
        if (name != "shared_lan") {
            throw std::invalid_argument{
                "scenario sweep: only 'shared_lan' is sweepable, got '" + name +
                "'"};
        }
        const Flags flags = cli::parse_flags(argc, argv, 4);
        (void)cli::flag_trials(flags, 1);
        (void)cli::flag_jobs(flags, 1);
        return scenarios::run_shared_lan_sweep(flags);
    }
    throw std::invalid_argument{"scenario: unknown action '" + action + "'"};
}

int cmd_trace(int argc, char** argv) {
    if (argc < 3) {
        throw std::invalid_argument{
            "trace: need an action (summary|filter|export-chrome|replay-check)"};
    }
    const std::string action = argv[2];
    const Flags flags = cli::parse_flags(argc, argv, 3);
    if (action == "summary") {
        return cmd_trace_summary(flags);
    }
    if (action == "filter") {
        return cmd_trace_filter(flags);
    }
    if (action == "export-chrome") {
        return cmd_trace_export_chrome(flags);
    }
    if (action == "replay-check") {
        return cmd_trace_replay_check(flags);
    }
    throw std::invalid_argument{"trace: unknown action '" + action + "'"};
}

void usage() {
    std::fprintf(stderr,
                 "usage: routesync <pm|chain|sweep|threshold|f2|trace|analyze|scenario> [--flag value]...\n"
                 "  pm        --n --tp --tr --tc --seed --max-time [--sync-start]\n"
                 "            [--reset-at-expiry] [--half-period] [--delta X]\n"
                 "            [--stop-on-sync] [--stop-on-breakup K]\n"
                 "            [--rounds|--transmits [--stride k]]\n"
                 "            [--monitor [--sync-threshold R] [--sync-hysteresis H]]\n"
                 "            [--trace FILE] [--out MANIFEST] [--sample-every SEC]\n"
                 "  chain     --n --tp --tr --tc [--f2 rounds]\n"
                 "  sweep     --n --tp --tc --from --to --step [--jobs N]\n"
                 "            [--batch B] [--sim-trials T [--sim-max-time SEC]\n"
                 "            [--seed S]]\n"
                 "            [--trace FILE] [--out MANIFEST] (Tr in units of Tc)\n"
                 "  threshold --n --tp --tc [--n-max]\n"
                 "  f2        --n --tp --tr --tc [--reps] [--seed] [--jobs N]\n"
                 "  trace     <summary|filter|export-chrome|replay-check> --in FILE\n"
                 "            summary:       [--round SEC] [--bins N]\n"
                 "            filter:        [--type a,b] [--node N] [--from T]\n"
                 "                           [--to T] [--out FILE]\n"
                 "            export-chrome: [--out FILE]\n"
                 "            replay-check:  [--tolerance SEC] [--expect FILE]\n"
                 "                           [--print] (exit 1 on mismatch;\n"
                 "                           monitored traces also get the\n"
                 "                           sync r(t)/transition recompute)\n"
                 "  analyze   coupling --in FILE [--round SEC] [--dot FILE]\n"
                 "            [--json FILE] [--print]\n"
                 "            who-reset-whom coupling graph from a trace\n"
                 "            (DOT to stdout by default; exit 1 when the\n"
                 "            cross-checks fail)\n"
                 "  scenario  list | run NAME [--flag value]... [--bin-dir DIR]\n"
                 "            one table of testbeds, figures, and examples;\n"
                 "            `list` shows each entry's flags. shared_lan\n"
                 "            takes --queue red|droptail (the element-graph\n"
                 "            AQM knob) and --trials K [--jobs N] for\n"
                 "            parallel repetitions.\n"
                 "  scenario  sweep shared_lan --buffers LO..HI|a,b,c\n"
                 "            --loads a,b,c --trials K [--jobs N]\n"
                 "            [--out MANIFEST] [shared_lan flags]\n"
                 "            buffer x load x trial grid of packet-level\n"
                 "            runs over one work-stealing pool; stdout and\n"
                 "            manifests are byte-identical for every N\n"
                 "\n"
                 "  --jobs N  worker threads for parallel sweeps (default and\n"
                 "            N = 0: hardware concurrency). Results are\n"
                 "            byte-identical for every N.\n"
                 "  --batch B trials per batched-kernel claim in sweeps (0 =\n"
                 "            auto). Results are byte-identical for every B.\n");
}

} // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string cmd = argv[1];
    if (cmd == "trace" || cmd == "scenario" || cmd == "analyze") {
        try {
            if (cmd == "trace") {
                return cmd_trace(argc, argv);
            }
            return cmd == "analyze" ? cmd_analyze(argc, argv)
                                    : cmd_scenario(argc, argv);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 2;
        }
    }
    Flags flags;
    try {
        flags = cli::parse_flags(argc, argv, 2);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        usage();
        return 2;
    }
    try {
        if (cmd == "pm") {
            return cmd_pm(flags);
        }
        if (cmd == "chain") {
            return cmd_chain(flags);
        }
        if (cmd == "sweep") {
            return cmd_sweep(flags);
        }
        if (cmd == "threshold") {
            return cmd_threshold(flags);
        }
        if (cmd == "f2") {
            return cmd_f2(flags);
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    usage();
    return 2;
}
