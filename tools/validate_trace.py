#!/usr/bin/env python3
"""Validate routesync observability artifacts: JSONL traces + manifests.

Usage:
  validate_trace.py trace TRACE.jsonl [--manifest MANIFEST.json]
      Schema-check every trace line; with --manifest also check that the
      manifest's embedded event count and FNV-1a hash match the file.

  validate_trace.py manifest MANIFEST.json
      Schema-check a run manifest (including the profile block and the
      trace block's offered/dropped accounting).

  validate_trace.py compare MANIFEST_A.json MANIFEST_B.json [--ignore-key K]
      Assert two manifests describe identical runs: byte-identical traces
      (same event count and FNV-1a), identical metric blocks, and
      identical seeds/jobs/config/failed_checks. --ignore-key (repeatable)
      skips a named comparison — e.g. `--ignore-key jobs` for the
      --jobs 1 vs --jobs 8 determinism gate used by `check-trace`.

  validate_trace.py chrome CHROME.json
      Structural check of a Chrome/Perfetto trace-event file as produced
      by `routesync trace export-chrome`: traceEvents list, required keys
      per phase, and balanced B/E slices per thread.

  validate_trace.py selftest
      Run this script's own unit tests (no files needed).

Exit status 0 on success; 1 with a diagnostic on the first violation.
No third-party dependencies (stdlib json only).
"""

import argparse
import json
import sys

EVENT_TYPES = {
    "timer_set",
    "timer_fire",
    "timer_reset",
    "packet_enqueue",
    "packet_drop",
    "packet_deliver",
    "update_tx",
    "update_rx",
    "cpu_busy_begin",
    "cpu_busy_end",
    "cluster_change",
    "metric_sample",
    "resource_sample",
    "sync_config",
    "sync_transition",
    "coupling_edge",
}

# Field name -> accepted types. `t`, `b` and `x` are JSON numbers; `seq`,
# `node` and `a` must be integers.
EVENT_FIELDS = {
    "seq": (int,),
    "t": (int, float),
    "type": (str,),
    "node": (int,),
    "a": (int,),
    "b": (int, float),
    "x": (int, float),
}

# Synchronization-observatory metric names (the sync.* namespace the
# SyncMonitor publishes, by metric kind). Any sync.* name outside this
# table is a schema violation — extend it deliberately.
SYNC_COUNTERS = {
    "sync.rearms",
    "sync.transitions",
    "sync.coupling_edges",
    "sync.synced_runs",
}
SYNC_GAUGES = {
    "sync.r_last",
    "sync.r_max",
    "sync.entropy_last",
    "sync.largest_fraction_last",
}
SYNC_DISTRIBUTIONS = {
    "sync.time_to_sync_sec",
}

MANIFEST_FIELDS = {
    "tool": (str,),
    "description": (str,),
    "git_describe": (str,),
    "build_type": (str,),
    "seeds": (list,),
    "jobs": (int,),
    "config": (dict,),
    "metrics": (dict,),
    "wall_seconds": (int, float),
    "sim_seconds": (int, float),
    "peak_rss_bytes": (int,),
    "failed_checks": (int,),
}

# Per-element metric names the element graph (src/net/elements/) emits:
# every counter under the "elem." prefix must end in one of these
# suffixes, and every "elem." gauge in one of the gauge suffixes. A new
# element counter is a schema change — add its suffix here deliberately.
ELEMENT_COUNTER_SUFFIXES = {
    "enqueued",       # QueueElement: packets accepted
    "dequeued",       # QueueElement: packets drained
    "dropped",        # QueueElement: packets rejected (all causes)
    "early_drops",    # RedQueue: probabilistic drops below max_th
    "forced_drops",   # RedQueue: full-queue / above-max_th drops
    "transmissions",  # DelayLink: serializations started
    "down_drops",     # DelayLink: offered while carrier was down
    "delivered",      # CallbackSink: packets handed to the callback
    "updates_sent",   # PeriodicAgent: timer firings
    "updates_heard",  # PeriodicAgent: updates received on "hear"
    "timer_arms",     # PeriodicAgent: interval draws
}

ELEMENT_GAUGE_SUFFIXES = {
    "avg",  # RedQueue: EWMA queue average at collection time
}

TRACE_BLOCK_FIELDS = {
    "path": (str,),
    "events": (int,),
    "offered": (int,),
    "dropped": (int,),
    "fnv1a": (str,),
}

# Keys cmd_compare checks for equality, in report order. "trace" means the
# events/fnv1a pair of the trace block (path may legitimately differ).
COMPARE_KEYS = ("trace", "seeds", "jobs", "config", "metrics", "failed_checks")

FNV_BASIS = 1469598103934665603  # the repo-wide FNV-1a basis
FNV_PRIME = 1099511628211
U64 = (1 << 64) - 1


def fnv1a(data: bytes) -> int:
    h = FNV_BASIS
    for byte in data:
        h ^= byte
        h = (h * FNV_PRIME) & U64
    return h


def fail(msg: str) -> "NoReturn":  # noqa: F821 - py3.8-friendly annotation
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_fields(obj: dict, spec: dict, what: str) -> None:
    for name, types in spec.items():
        if name not in obj:
            fail(f"{what}: missing field '{name}'")
        value = obj[name]
        # bool is an int subclass in Python; a JSON true/false is never valid
        # where the schema expects a number.
        if isinstance(value, bool) or not isinstance(value, types):
            fail(f"{what}: field '{name}' has type {type(value).__name__}, "
             f"expected {'/'.join(t.__name__ for t in types)}")


def check_event_semantics(event: dict, what: str) -> None:
    """Per-type slot constraints for the sync-observatory events.

    Slot meanings (see src/obs/trace_event.hpp):
      sync_config:     a = hysteresis in microunits, b = round length,
                       x = detector threshold; node is always -1.
      sync_transition: a = direction (1 up / 0 down), b = r at the
                       crossing; node is always -1.
      coupling_edge:   node = dst router, a = src router, b = weight
                       (a positive integer count of attributed resets).
    """
    etype = event["type"]
    if etype == "sync_config":
        if event["node"] != -1:
            fail(f"{what}: sync_config is global; node must be -1")
        if event["a"] < 0:
            fail(f"{what}: sync_config hysteresis (a, microunits) must be "
                 f">= 0, got {event['a']}")
        if event["b"] <= 0:
            fail(f"{what}: sync_config round length (b) must be > 0, "
                 f"got {event['b']}")
        if not 0 < event["x"] <= 1:
            fail(f"{what}: sync_config threshold (x) must be in (0, 1], "
                 f"got {event['x']}")
    elif etype == "sync_transition":
        if event["node"] != -1:
            fail(f"{what}: sync_transition is global; node must be -1")
        if event["a"] not in (0, 1):
            fail(f"{what}: sync_transition direction (a) must be 0 or 1, "
                 f"got {event['a']}")
        if not 0 <= event["b"] <= 1 + 1e-9:
            fail(f"{what}: sync_transition order parameter (b) must be in "
                 f"[0, 1], got {event['b']}")
    elif etype == "coupling_edge":
        if event["node"] < 0:
            fail(f"{what}: coupling_edge dst (node) must be >= 0, "
                 f"got {event['node']}")
        if event["a"] < 0:
            fail(f"{what}: coupling_edge src (a) must be >= 0, "
                 f"got {event['a']}")
        weight = event["b"]
        if weight < 1 or weight != int(weight):
            fail(f"{what}: coupling_edge weight (b) must be a positive "
                 f"integer, got {weight}")


def validate_trace_file(path: str) -> tuple[int, int]:
    """Returns (event_count, fnv1a_of_bytes)."""
    try:
        with open(path, "rb") as f:
            raw = f.read()
    except OSError as e:
        fail(f"cannot read trace {path}: {e}")
    count = 0
    prev_seq = -1
    prev_t = float("-inf")
    for lineno, line in enumerate(raw.splitlines(), start=1):
        if not line.strip():
            fail(f"{path}:{lineno}: blank line in JSONL trace")
        try:
            event = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{lineno}: invalid JSON: {e}")
        if not isinstance(event, dict):
            fail(f"{path}:{lineno}: expected a JSON object")
        check_fields(event, EVENT_FIELDS, f"{path}:{lineno}")
        if set(event) - set(EVENT_FIELDS):
            fail(f"{path}:{lineno}: unknown fields "
                 f"{sorted(set(event) - set(EVENT_FIELDS))}")
        if event["type"] not in EVENT_TYPES:
            fail(f"{path}:{lineno}: unknown event type '{event['type']}'")
        check_event_semantics(event, f"{path}:{lineno}")
        if event["seq"] != prev_seq + 1:
            fail(f"{path}:{lineno}: seq {event['seq']} breaks the monotonic "
                 f"sequence (previous {prev_seq})")
        if event["t"] < prev_t:
            fail(f"{path}:{lineno}: time {event['t']} goes backwards "
                 f"(previous {prev_t})")
        if event["t"] < 0:
            fail(f"{path}:{lineno}: negative time {event['t']}")
        prev_seq = event["seq"]
        prev_t = event["t"]
        count += 1
    return count, fnv1a(raw)


def load_manifest(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            manifest = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load manifest {path}: {e}")
    if not isinstance(manifest, dict):
        fail(f"{path}: manifest must be a JSON object")
    check_manifest(manifest, path)
    return manifest


def check_element_metrics(metrics: dict, what: str) -> None:
    """Name-checks the "elem." namespace the element graph publishes."""
    for name in metrics.get("counters", {}):
        if not name.startswith("elem."):
            continue
        suffix = name.rsplit(".", 1)[-1]
        if suffix not in ELEMENT_COUNTER_SUFFIXES:
            fail(f"{what}: unknown element counter '{name}' "
                 f"(suffix '{suffix}' is not a known element counter)")
    for name in metrics.get("gauges", {}):
        if not name.startswith("elem."):
            continue
        suffix = name.rsplit(".", 1)[-1]
        if suffix not in ELEMENT_GAUGE_SUFFIXES:
            fail(f"{what}: unknown element gauge '{name}' "
                 f"(suffix '{suffix}' is not a known element gauge)")


def check_sync_metrics(metrics: dict, what: str) -> None:
    """Whitelists the sync.* namespace the SyncMonitor publishes."""
    for kind, allowed in (("counters", SYNC_COUNTERS),
                          ("gauges", SYNC_GAUGES),
                          ("distributions", SYNC_DISTRIBUTIONS)):
        for name in metrics.get(kind, {}):
            if name.startswith("sync.") and name not in allowed:
                fail(f"{what}: unknown sync metric '{name}' in {kind} "
                     f"(allowed: {sorted(allowed)})")


def check_manifest(manifest: dict, what: str) -> None:
    check_fields(manifest, MANIFEST_FIELDS, what)
    for kind in ("counters", "gauges", "distributions", "histograms"):
        if kind not in manifest["metrics"]:
            fail(f"{what}: metrics block missing '{kind}'")
    check_element_metrics(manifest["metrics"], what)
    check_sync_metrics(manifest["metrics"], what)
    if "profile" not in manifest:
        fail(f"{what}: missing field 'profile' (object or null)")
    profile = manifest["profile"]
    if profile is not None:
        if not isinstance(profile, dict):
            fail(f"{what}: profile must be an object or null")
        for label, entry in profile.items():
            for field in ("count", "total_sec", "max_sec"):
                if field not in entry:
                    fail(f"{what}: profile['{label}'] missing '{field}'")
    trace = manifest.get("trace")
    if trace is not None:
        check_fields(trace, TRACE_BLOCK_FIELDS, f"{what}: trace block")
        if trace["dropped"] > trace["offered"]:
            fail(f"{what}: trace block dropped ({trace['dropped']}) exceeds "
                 f"offered ({trace['offered']})")
        if trace["events"] + trace["dropped"] != trace["offered"]:
            fail(f"{what}: trace block accounting: events ({trace['events']}) "
                 f"+ dropped ({trace['dropped']}) != offered "
                 f"({trace['offered']})")


def cmd_trace(args: argparse.Namespace) -> None:
    count, digest = validate_trace_file(args.trace)
    if args.manifest:
        manifest = load_manifest(args.manifest)
        trace = manifest.get("trace")
        if trace is None:
            fail(f"{args.manifest}: no trace block but a trace file was given")
        if trace["events"] != count:
            fail(f"manifest says {trace['events']} events, trace has {count}")
        if int(trace["fnv1a"], 16) != digest:
            fail(f"manifest hash {trace['fnv1a']} != computed {digest:016x}")
    print(f"validate_trace: OK: {args.trace}: {count} events, "
          f"fnv1a {digest:016x}")


def cmd_manifest(args: argparse.Namespace) -> None:
    manifest = load_manifest(args.manifest)
    trace = manifest.get("trace")
    detail = ""
    if trace is not None:
        detail = (f" (trace: {trace['events']} events, "
                  f"{trace['offered']} offered, {trace['dropped']} dropped)")
    print(f"validate_trace: OK: {args.manifest}{detail}")


def compare_manifests(a: dict, b: dict, ignore: set) -> str:
    """Returns an error message, or "" when the manifests match."""
    for key in COMPARE_KEYS:
        if key in ignore:
            continue
        if key == "trace":
            ta, tb = a.get("trace"), b.get("trace")
            if (ta is None) != (tb is None):
                return "one manifest has a trace block, the other does not"
            if ta is not None:
                if ta["events"] != tb["events"]:
                    return (f"event counts differ: {ta['events']} vs "
                            f"{tb['events']}")
                if ta["fnv1a"] != tb["fnv1a"]:
                    return (f"trace hashes differ: {ta['fnv1a']} vs "
                            f"{tb['fnv1a']}")
        elif a[key] != b[key]:
            return f"'{key}' differs: {a[key]!r} vs {b[key]!r}"
    return ""


def cmd_compare(args: argparse.Namespace) -> None:
    a = load_manifest(args.manifest_a)
    b = load_manifest(args.manifest_b)
    ignore = set(args.ignore_key or [])
    unknown = ignore - set(COMPARE_KEYS)
    if unknown:
        fail(f"--ignore-key: unknown key(s) {sorted(unknown)}; "
             f"choose from {list(COMPARE_KEYS)}")
    error = compare_manifests(a, b, ignore)
    if error:
        fail(error)
    checked = [k for k in COMPARE_KEYS if k not in ignore]
    print(f"validate_trace: OK: {args.manifest_a} == {args.manifest_b} "
          f"({', '.join(checked)})")


CHROME_PHASE_KEYS = {
    "M": ("name", "ph", "pid", "tid", "args"),
    "B": ("name", "ph", "ts", "pid", "tid"),
    "E": ("name", "ph", "ts", "pid", "tid"),
    "C": ("name", "ph", "ts", "pid", "tid", "args"),
    "i": ("name", "ph", "ts", "pid", "tid", "s", "args"),
}


def check_chrome(doc, what: str) -> int:
    """Returns the event count; calls fail() on the first violation."""
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{what}: expected an object with a 'traceEvents' list")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"{what}: traceEvents must be a list")
    open_slices = {}  # tid -> depth
    prev_ts = {}      # tid -> last ts, per-thread monotonicity
    for i, event in enumerate(events):
        what_i = f"{what}: traceEvents[{i}]"
        if not isinstance(event, dict):
            fail(f"{what_i}: not an object")
        ph = event.get("ph")
        if ph not in CHROME_PHASE_KEYS:
            fail(f"{what_i}: unknown phase {ph!r}")
        for key in CHROME_PHASE_KEYS[ph]:
            if key not in event:
                fail(f"{what_i}: phase '{ph}' missing key '{key}'")
        tid = event["tid"]
        if ph == "M":
            continue
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            fail(f"{what_i}: ts must be a number")
        if ts < prev_ts.get(tid, float("-inf")):
            fail(f"{what_i}: ts {ts} goes backwards on tid {tid}")
        prev_ts[tid] = ts
        if ph == "B":
            open_slices[tid] = open_slices.get(tid, 0) + 1
        elif ph == "E":
            if open_slices.get(tid, 0) == 0:
                fail(f"{what_i}: 'E' with no open 'B' on tid {tid}")
            open_slices[tid] -= 1
    unbalanced = {tid: n for tid, n in open_slices.items() if n}
    if unbalanced:
        fail(f"{what}: unclosed 'B' slices: {unbalanced}")
    return len(events)


def cmd_chrome(args: argparse.Namespace) -> None:
    try:
        with open(args.chrome, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load chrome trace {args.chrome}: {e}")
    count = check_chrome(doc, args.chrome)
    print(f"validate_trace: OK: {args.chrome}: {count} trace events")


# ---------------------------------------------------------------------------
# selftest — exercises the pure helpers without touching the filesystem.

def _expect_fail(fn, substring: str, label: str) -> None:
    try:
        fn()
    except SystemExit:
        # fail() printed to stderr and exited; capture via wrapper instead.
        raise AssertionError(f"{label}: fail() exited instead of raising")
    except _SelfTestFailure as e:
        if substring not in str(e):
            raise AssertionError(
                f"{label}: expected '{substring}' in '{e}'") from None
        return
    raise AssertionError(f"{label}: expected a validation failure")


class _SelfTestFailure(Exception):
    pass


def cmd_selftest(args: argparse.Namespace) -> None:
    # Route fail() through an exception so each case can assert on it.
    global fail

    def raising_fail(msg):
        raise _SelfTestFailure(msg)

    original_fail = fail
    fail = raising_fail
    try:
        # FNV-1a matches the repo-wide C++ implementation's parameters.
        assert fnv1a(b"") == FNV_BASIS
        assert fnv1a(b"a") == ((FNV_BASIS ^ ord("a")) * FNV_PRIME) & U64

        good_event = {"seq": 0, "t": 1.5, "type": "timer_set", "node": 2,
                      "a": 0, "b": 91.5, "x": 0}
        check_fields(good_event, EVENT_FIELDS, "selftest")
        _expect_fail(
            lambda: check_fields({k: v for k, v in good_event.items()
                                  if k != "x"}, EVENT_FIELDS, "t"),
            "missing field 'x'", "event without x")
        _expect_fail(
            lambda: check_fields(dict(good_event, seq=True), EVENT_FIELDS,
                                 "t"),
            "has type bool", "bool where int expected")
        assert "resource_sample" in EVENT_TYPES

        # Sync-observatory event semantics.
        good_sync_config = {"seq": 1, "t": 0, "type": "sync_config",
                            "node": -1, "a": 20000, "b": 121.11, "x": 0.95}
        check_event_semantics(good_sync_config, "selftest")
        _expect_fail(
            lambda: check_event_semantics(dict(good_sync_config, node=3),
                                          "t"),
            "node must be -1", "sync_config with a node id")
        _expect_fail(
            lambda: check_event_semantics(dict(good_sync_config, b=0), "t"),
            "round length", "sync_config zero period")
        _expect_fail(
            lambda: check_event_semantics(dict(good_sync_config, x=1.5), "t"),
            "threshold", "sync_config threshold > 1")
        good_transition = {"seq": 2, "t": 5.0, "type": "sync_transition",
                           "node": -1, "a": 1, "b": 0.96, "x": 0.95}
        check_event_semantics(good_transition, "selftest")
        _expect_fail(
            lambda: check_event_semantics(dict(good_transition, a=2), "t"),
            "direction", "sync_transition bad direction")
        _expect_fail(
            lambda: check_event_semantics(dict(good_transition, b=1.5), "t"),
            "order parameter", "sync_transition r > 1")
        good_edge = {"seq": 3, "t": 9.0, "type": "coupling_edge",
                     "node": 4, "a": 2, "b": 17, "x": 0}
        check_event_semantics(good_edge, "selftest")
        _expect_fail(
            lambda: check_event_semantics(dict(good_edge, node=-1), "t"),
            "dst", "coupling_edge negative dst")
        _expect_fail(
            lambda: check_event_semantics(dict(good_edge, b=0), "t"),
            "positive integer", "coupling_edge zero weight")
        _expect_fail(
            lambda: check_event_semantics(dict(good_edge, b=2.5), "t"),
            "positive integer", "coupling_edge fractional weight")

        good_trace = {"path": "t.jsonl", "events": 8, "offered": 10,
                      "dropped": 2, "fnv1a": "00" * 8}
        good_manifest = {
            "tool": "x", "description": "d", "git_describe": "g",
            "build_type": "Release", "seeds": [1], "jobs": 1, "config": {},
            "metrics": {"counters": {}, "gauges": {}, "distributions": {},
                        "histograms": {}},
            "profile": {"experiment.run":
                        {"count": 1, "total_sec": 0.5, "max_sec": 0.5}},
            "trace": dict(good_trace),
            "wall_seconds": 0.1, "sim_seconds": 1.0,
            "peak_rss_bytes": 1048576, "failed_checks": 0,
        }
        check_manifest(good_manifest, "selftest")
        check_manifest(dict(good_manifest, profile=None, trace=None),
                       "selftest")

        # Element-graph metric names: known suffixes pass, unknown fail.
        good_elem_metrics = {
            "counters": {"elem.link.queue.enqueued": 4,
                         "elem.link.queue.early_drops": 1,
                         "elem.link.tx.transmissions": 5,
                         "elem.link.sink.delivered": 5,
                         "elem.agent0.updates_sent": 2,
                         "router.forwarded": 9},  # non-elem: not name-checked
            "gauges": {"elem.st0.avg": 1.5},
            "distributions": {}, "histograms": {},
        }
        check_manifest(dict(good_manifest, metrics=good_elem_metrics),
                       "selftest")
        _expect_fail(
            lambda: check_manifest(
                dict(good_manifest,
                     metrics=dict(good_elem_metrics,
                                  counters={"elem.link.queue.enqueue": 1})),
                "m"),
            "unknown element counter", "typo'd element counter suffix")
        _expect_fail(
            lambda: check_manifest(
                dict(good_manifest,
                     metrics=dict(good_elem_metrics,
                                  gauges={"elem.st0.average": 1.0})),
                "m"),
            "unknown element gauge", "typo'd element gauge suffix")
        # sync.* metric names: the whitelist passes, anything else fails.
        good_sync_metrics = {
            "counters": {"sync.rearms": 100, "sync.transitions": 2,
                         "sync.coupling_edges": 40, "sync.synced_runs": 1},
            "gauges": {"sync.r_last": 0.99, "sync.r_max": 1.0,
                       "sync.entropy_last": 0.2,
                       "sync.largest_fraction_last": 1.0},
            "distributions": {"sync.time_to_sync_sec":
                              {"count": 1, "mean": 39330.3}},
            "histograms": {},
        }
        check_manifest(dict(good_manifest, metrics=good_sync_metrics), "m")
        _expect_fail(
            lambda: check_manifest(
                dict(good_manifest,
                     metrics=dict(good_sync_metrics,
                                  counters={"sync.rearm": 1})), "m"),
            "unknown sync metric", "typo'd sync counter")
        _expect_fail(
            lambda: check_manifest(
                dict(good_manifest,
                     metrics=dict(good_sync_metrics,
                                  gauges={"sync.r": 0.5})), "m"),
            "unknown sync metric", "typo'd sync gauge")
        _expect_fail(
            lambda: check_manifest(
                {k: v for k, v in good_manifest.items() if k != "profile"},
                "m"),
            "missing field 'profile'", "manifest without profile")
        _expect_fail(
            lambda: check_manifest(
                dict(good_manifest,
                     profile={"lbl": {"count": 1, "total_sec": 0.0}}), "m"),
            "missing 'max_sec'", "profile entry missing max_sec")
        _expect_fail(
            lambda: check_manifest(
                dict(good_manifest, trace=dict(good_trace, dropped=11)), "m"),
            "exceeds offered", "dropped > offered")
        _expect_fail(
            lambda: check_manifest(
                dict(good_manifest, trace=dict(good_trace, events=9)), "m"),
            "accounting", "events + dropped != offered")
        _expect_fail(
            lambda: check_manifest(
                dict(good_manifest,
                     trace={k: v for k, v in good_trace.items()
                            if k != "offered"}), "m"),
            "missing field 'offered'", "trace block without offered")

        other = json.loads(json.dumps(good_manifest))
        assert compare_manifests(good_manifest, other, set()) == ""
        other["jobs"] = 8
        assert "'jobs' differs" in compare_manifests(good_manifest, other,
                                                     set())
        assert compare_manifests(good_manifest, other, {"jobs"}) == ""
        other["trace"]["fnv1a"] = "ff" * 8
        assert "hashes differ" in compare_manifests(good_manifest, other,
                                                    {"jobs"})
        other["trace"] = None
        assert "trace block" in compare_manifests(good_manifest, other,
                                                  {"jobs"})

        good_chrome = {"traceEvents": [
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": 1,
             "args": {"name": "node 0"}},
            {"name": "cpu_busy", "ph": "B", "ts": 0, "pid": 0, "tid": 1},
            {"name": "resource.0", "ph": "C", "ts": 5, "pid": 0, "tid": 0,
             "args": {"value": 3}},
            {"name": "cpu_busy", "ph": "E", "ts": 10, "pid": 0, "tid": 1},
            {"name": "timer_set", "ph": "i", "ts": 11, "pid": 0, "tid": 1,
             "s": "t", "args": {"a": 0, "b": 1.0, "x": 0}},
        ]}
        assert check_chrome(good_chrome, "selftest") == 5
        _expect_fail(lambda: check_chrome({"events": []}, "c"),
                     "traceEvents", "chrome without traceEvents")
        _expect_fail(
            lambda: check_chrome(
                {"traceEvents": good_chrome["traceEvents"][:2]}, "c"),
            "unclosed 'B'", "chrome with unclosed slice")
        _expect_fail(
            lambda: check_chrome(
                {"traceEvents": [good_chrome["traceEvents"][3]]}, "c"),
            "no open 'B'", "chrome E without B")
        _expect_fail(
            lambda: check_chrome(
                {"traceEvents": [
                    {"name": "n", "ph": "B", "ts": 5, "pid": 0, "tid": 1},
                    {"name": "n", "ph": "E", "ts": 4, "pid": 0, "tid": 1}]},
                "c"),
            "goes backwards", "chrome non-monotonic ts")
    finally:
        fail = original_fail
    print("validate_trace: OK: selftest passed")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_trace = sub.add_parser("trace", help="validate a JSONL trace")
    p_trace.add_argument("trace")
    p_trace.add_argument("--manifest", help="cross-check against a manifest")
    p_trace.set_defaults(func=cmd_trace)

    p_manifest = sub.add_parser("manifest", help="validate a run manifest")
    p_manifest.add_argument("manifest")
    p_manifest.set_defaults(func=cmd_manifest)

    p_compare = sub.add_parser(
        "compare", help="assert two manifests describe identical runs")
    p_compare.add_argument("manifest_a")
    p_compare.add_argument("manifest_b")
    p_compare.add_argument(
        "--ignore-key", action="append", metavar="KEY",
        help=f"skip one comparison; repeatable; keys: {list(COMPARE_KEYS)}")
    p_compare.set_defaults(func=cmd_compare)

    p_chrome = sub.add_parser(
        "chrome", help="structurally validate a Chrome trace-event file")
    p_chrome.add_argument("chrome")
    p_chrome.set_defaults(func=cmd_chrome)

    p_selftest = sub.add_parser("selftest", help="run this script's tests")
    p_selftest.set_defaults(func=cmd_selftest)

    args = parser.parse_args()
    args.func(args)


if __name__ == "__main__":
    main()
