#!/usr/bin/env python3
"""Validate routesync observability artifacts: JSONL traces + manifests.

Usage:
  validate_trace.py trace TRACE.jsonl [--manifest MANIFEST.json]
      Schema-check every trace line; with --manifest also check that the
      manifest's embedded event count and FNV-1a hash match the file.

  validate_trace.py manifest MANIFEST.json
      Schema-check a run manifest.

  validate_trace.py compare MANIFEST_A.json MANIFEST_B.json
      Assert two manifests describe byte-identical traces (same event
      count and FNV-1a) and identical metric blocks — the --jobs 1 vs
      --jobs 8 determinism gate used by the `check-trace` build target.

Exit status 0 on success; 1 with a diagnostic on the first violation.
No third-party dependencies (stdlib json only).
"""

import argparse
import json
import sys

EVENT_TYPES = {
    "timer_set",
    "timer_fire",
    "timer_reset",
    "packet_enqueue",
    "packet_drop",
    "packet_deliver",
    "update_tx",
    "update_rx",
    "cpu_busy_begin",
    "cpu_busy_end",
    "cluster_change",
    "metric_sample",
}

# Field name -> accepted types. `t` and `b` are JSON numbers; `seq`, `node`
# and `a` must be integers.
EVENT_FIELDS = {
    "seq": (int,),
    "t": (int, float),
    "type": (str,),
    "node": (int,),
    "a": (int,),
    "b": (int, float),
}

MANIFEST_FIELDS = {
    "tool": (str,),
    "description": (str,),
    "git_describe": (str,),
    "build_type": (str,),
    "seeds": (list,),
    "jobs": (int,),
    "config": (dict,),
    "metrics": (dict,),
    "wall_seconds": (int, float),
    "sim_seconds": (int, float),
    "failed_checks": (int,),
}

FNV_BASIS = 1469598103934665603  # the repo-wide FNV-1a basis
FNV_PRIME = 1099511628211
U64 = (1 << 64) - 1


def fnv1a(data: bytes) -> int:
    h = FNV_BASIS
    for byte in data:
        h ^= byte
        h = (h * FNV_PRIME) & U64
    return h


def fail(msg: str) -> "NoReturn":  # noqa: F821 - py3.8-friendly annotation
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_fields(obj: dict, spec: dict, what: str) -> None:
    for name, types in spec.items():
        if name not in obj:
            fail(f"{what}: missing field '{name}'")
        value = obj[name]
        # bool is an int subclass in Python; a JSON true/false is never valid
        # where the schema expects a number.
        if isinstance(value, bool) or not isinstance(value, types):
            fail(f"{what}: field '{name}' has type {type(value).__name__}, "
             f"expected {'/'.join(t.__name__ for t in types)}")


def validate_trace_file(path: str) -> tuple[int, int]:
    """Returns (event_count, fnv1a_of_bytes)."""
    try:
        with open(path, "rb") as f:
            raw = f.read()
    except OSError as e:
        fail(f"cannot read trace {path}: {e}")
    count = 0
    prev_seq = -1
    prev_t = float("-inf")
    for lineno, line in enumerate(raw.splitlines(), start=1):
        if not line.strip():
            fail(f"{path}:{lineno}: blank line in JSONL trace")
        try:
            event = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{lineno}: invalid JSON: {e}")
        if not isinstance(event, dict):
            fail(f"{path}:{lineno}: expected a JSON object")
        check_fields(event, EVENT_FIELDS, f"{path}:{lineno}")
        if set(event) - set(EVENT_FIELDS):
            fail(f"{path}:{lineno}: unknown fields "
                 f"{sorted(set(event) - set(EVENT_FIELDS))}")
        if event["type"] not in EVENT_TYPES:
            fail(f"{path}:{lineno}: unknown event type '{event['type']}'")
        if event["seq"] != prev_seq + 1:
            fail(f"{path}:{lineno}: seq {event['seq']} breaks the monotonic "
                 f"sequence (previous {prev_seq})")
        if event["t"] < prev_t:
            fail(f"{path}:{lineno}: time {event['t']} goes backwards "
                 f"(previous {prev_t})")
        if event["t"] < 0:
            fail(f"{path}:{lineno}: negative time {event['t']}")
        prev_seq = event["seq"]
        prev_t = event["t"]
        count += 1
    return count, fnv1a(raw)


def load_manifest(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            manifest = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load manifest {path}: {e}")
    if not isinstance(manifest, dict):
        fail(f"{path}: manifest must be a JSON object")
    check_fields(manifest, MANIFEST_FIELDS, path)
    for kind in ("counters", "gauges", "distributions", "histograms"):
        if kind not in manifest["metrics"]:
            fail(f"{path}: metrics block missing '{kind}'")
    trace = manifest.get("trace")
    if trace is not None:
        for field in ("path", "events", "fnv1a"):
            if field not in trace:
                fail(f"{path}: trace block missing '{field}'")
    return manifest


def cmd_trace(args: argparse.Namespace) -> None:
    count, digest = validate_trace_file(args.trace)
    if args.manifest:
        manifest = load_manifest(args.manifest)
        trace = manifest.get("trace")
        if trace is None:
            fail(f"{args.manifest}: no trace block but a trace file was given")
        if trace["events"] != count:
            fail(f"manifest says {trace['events']} events, trace has {count}")
        if int(trace["fnv1a"], 16) != digest:
            fail(f"manifest hash {trace['fnv1a']} != computed {digest:016x}")
    print(f"validate_trace: OK: {args.trace}: {count} events, "
          f"fnv1a {digest:016x}")


def cmd_manifest(args: argparse.Namespace) -> None:
    load_manifest(args.manifest)
    print(f"validate_trace: OK: {args.manifest}")


def cmd_compare(args: argparse.Namespace) -> None:
    a = load_manifest(args.manifest_a)
    b = load_manifest(args.manifest_b)
    ta, tb = a.get("trace"), b.get("trace")
    if (ta is None) != (tb is None):
        fail("one manifest has a trace block, the other does not")
    if ta is not None:
        if ta["events"] != tb["events"]:
            fail(f"event counts differ: {ta['events']} vs {tb['events']}")
        if ta["fnv1a"] != tb["fnv1a"]:
            fail(f"trace hashes differ: {ta['fnv1a']} vs {tb['fnv1a']}")
    if a["metrics"] != b["metrics"]:
        fail("metric blocks differ")
    if a["failed_checks"] != b["failed_checks"]:
        fail(f"failed_checks differ: {a['failed_checks']} vs "
             f"{b['failed_checks']}")
    print(f"validate_trace: OK: {args.manifest_a} == {args.manifest_b} "
          f"(trace + metrics)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_trace = sub.add_parser("trace", help="validate a JSONL trace")
    p_trace.add_argument("trace")
    p_trace.add_argument("--manifest", help="cross-check against a manifest")
    p_trace.set_defaults(func=cmd_trace)

    p_manifest = sub.add_parser("manifest", help="validate a run manifest")
    p_manifest.add_argument("manifest")
    p_manifest.set_defaults(func=cmd_manifest)

    p_compare = sub.add_parser(
        "compare", help="assert two manifests describe identical runs")
    p_compare.add_argument("manifest_a")
    p_compare.add_argument("manifest_b")
    p_compare.set_defaults(func=cmd_compare)

    args = parser.parse_args()
    args.func(args)


if __name__ == "__main__":
    main()
