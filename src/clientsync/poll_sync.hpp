// Client-server polling synchronization (paper Section 1, the Sprite
// example [Ba92]): "in the Sprite operating system clients check with the
// file server every 30 seconds; ... when the file server recovered after
// a failure, or after a busy period, a number of clients would become
// synchronized in their recovery procedures. Because the recovery
// procedures involved synchronized timeouts, this synchronization
// resulted in a substantial delay in the recovery procedure."
//
// Model: N clients poll a serial server. While the server is down,
// requests silently vanish and clients retry on a timeout. At recovery,
// every timed-out client fires again at essentially the same instant; the
// server then burns its capacity on requests whose clients have already
// timed out ("stale work"), and the synchronized retry waves stretch the
// recovery far beyond the ideal N * service_time. Randomizing the retry
// delay spreads the load and collapses the recovery time.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "rng/rng.hpp"
#include "sim/engine.hpp"

namespace routesync::clientsync {

struct ClientServerConfig {
    int clients = 60;
    double poll_period_sec = 30.0;
    /// Poll-timer jitter (uniform +-). 0 = the pathological deterministic
    /// schedule.
    double poll_jitter_sec = 0.0;
    double service_time_sec = 0.2;  ///< server time per request
    double timeout_sec = 5.0;       ///< client gives up and retries
    double retry_delay_sec = 5.0;   ///< base retry delay after a timeout
    /// Retry after uniform [0.5, 1.5] * retry_delay instead of exactly
    /// retry_delay — the paper's prescription applied to the backoff.
    bool randomized_retry = false;
    /// A client whose poll times out while the server is down goes dormant
    /// and re-registers when the server's recovery broadcast arrives —
    /// after a uniform delay in [0, recovery_spread_sec]. 0 reproduces the
    /// Sprite pathology: every client re-registers at the same instant.
    double recovery_spread_sec = 0.0;
    double failure_at_sec = 100.0;
    double recovery_at_sec = 160.0;
    double horizon_sec = 600.0;
    std::uint64_t seed = 1;
};

struct ClientServerResult {
    /// Time from server recovery until every client has completed one
    /// successful poll — the "recovery procedure" duration.
    double recovery_duration_sec = 0.0;
    /// Requests the server completed whose client had already timed out.
    std::uint64_t stale_served = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t served = 0;
    double peak_queue = 0.0;
    bool all_recovered = false;
};

[[nodiscard]] ClientServerResult
run_client_server_experiment(const ClientServerConfig& config);

} // namespace routesync::clientsync
