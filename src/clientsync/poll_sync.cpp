#include "clientsync/poll_sync.hpp"

#include <algorithm>
#include <stdexcept>

namespace routesync::clientsync {
namespace {

struct Request {
    int client;
    std::uint64_t id;
};

class Simulation {
public:
    explicit Simulation(const ClientServerConfig& config)
        : config_{config}, gen_{config.seed} {
        if (config_.clients < 1 || config_.service_time_sec <= 0.0 ||
            config_.poll_period_sec <= 0.0 || config_.timeout_sec <= 0.0 ||
            config_.retry_delay_sec <= 0.0) {
            throw std::invalid_argument{"ClientServerConfig: bad parameters"};
        }
        clients_.resize(static_cast<std::size_t>(config_.clients));
    }

    ClientServerResult run() {
        engine_.schedule_at(sim::SimTime::seconds(config_.failure_at_sec),
                            [this] { server_up_ = false; });
        engine_.schedule_at(sim::SimTime::seconds(config_.recovery_at_sec),
                            [this] { recover(); });
        for (int c = 0; c < config_.clients; ++c) {
            // Stagger the initial polls across one period (steady state).
            engine_.schedule_at(
                sim::SimTime::seconds(rng::uniform_real(
                    gen_, 0.0, config_.poll_period_sec)),
                [this, c] { poll(c); });
        }
        engine_.run_until(sim::SimTime::seconds(config_.horizon_sec));

        result_.all_recovered = true;
        double last = config_.recovery_at_sec;
        for (const auto& client : clients_) {
            if (client.first_success_after_recovery < 0) {
                result_.all_recovered = false;
            } else {
                last = std::max(last, client.first_success_after_recovery);
            }
        }
        result_.recovery_duration_sec =
            result_.all_recovered ? last - config_.recovery_at_sec
                                  : config_.horizon_sec - config_.recovery_at_sec;
        return result_;
    }

private:
    struct Client {
        std::uint64_t current_request = 0; ///< id of the outstanding request
        bool waiting = false;
        bool dormant = false; ///< timed out against a dead server
        double first_success_after_recovery = -1.0;
    };

    /// The server comes back and broadcasts its recovery: every dormant
    /// client re-registers within [0, recovery_spread].
    void recover() {
        server_up_ = true;
        for (int c = 0; c < config_.clients; ++c) {
            auto& client = clients_[static_cast<std::size_t>(c)];
            if (!client.dormant) {
                continue;
            }
            client.dormant = false;
            const double delay =
                config_.recovery_spread_sec > 0.0
                    ? rng::uniform_real(gen_, 0.0, config_.recovery_spread_sec)
                    : 0.0;
            engine_.schedule_after(sim::SimTime::seconds(delay),
                                   [this, c] { poll(c); });
        }
    }

    void poll(int c) {
        auto& client = clients_[static_cast<std::size_t>(c)];
        client.waiting = true;
        client.current_request = next_request_id_++;
        const std::uint64_t id = client.current_request;
        send_to_server(Request{c, id});
        engine_.schedule_after(sim::SimTime::seconds(config_.timeout_sec),
                               [this, c, id] { timeout(c, id); });
    }

    void send_to_server(Request request) {
        if (!server_up_) {
            return; // lost; the client's timeout will fire
        }
        queue_.push_back(request);
        result_.peak_queue =
            std::max(result_.peak_queue, static_cast<double>(queue_.size()));
        if (!serving_) {
            serving_ = true;
            engine_.schedule_after(
                sim::SimTime::seconds(config_.service_time_sec),
                [this] { service_done(); });
        }
    }

    void service_done() {
        if (!server_up_) {
            // Failure wipes the server's queue and in-flight work.
            queue_.clear();
            serving_ = false;
            return;
        }
        if (!queue_.empty()) {
            const Request done = queue_.front();
            queue_.pop_front();
            ++result_.served;
            respond(done);
        }
        if (!queue_.empty()) {
            engine_.schedule_after(
                sim::SimTime::seconds(config_.service_time_sec),
                [this] { service_done(); });
        } else {
            serving_ = false;
        }
    }

    void respond(const Request& request) {
        auto& client = clients_[static_cast<std::size_t>(request.client)];
        if (!client.waiting || client.current_request != request.id) {
            ++result_.stale_served; // the client gave up on this request
            return;
        }
        client.waiting = false;
        const double now = engine_.now().sec();
        if (now >= config_.recovery_at_sec &&
            client.first_success_after_recovery < 0) {
            client.first_success_after_recovery = now;
        }
        schedule_next_poll(request.client, config_.poll_period_sec,
                           config_.poll_jitter_sec);
    }

    void timeout(int c, std::uint64_t id) {
        auto& client = clients_[static_cast<std::size_t>(c)];
        if (!client.waiting || client.current_request != id) {
            return; // answered in time
        }
        client.waiting = false;
        ++result_.timeouts;
        if (!server_up_) {
            client.dormant = true; // wait for the recovery broadcast
            return;
        }
        const double jitter =
            config_.randomized_retry ? 0.5 * config_.retry_delay_sec : 0.0;
        schedule_next_poll(c, config_.retry_delay_sec, jitter);
    }

    void schedule_next_poll(int c, double base, double jitter) {
        const double delay =
            jitter > 0.0 ? rng::uniform_real(gen_, base - jitter, base + jitter)
                         : base;
        engine_.schedule_after(sim::SimTime::seconds(delay),
                               [this, c] { poll(c); });
    }

    ClientServerConfig config_;
    rng::DefaultEngine gen_;
    sim::Engine engine_;
    std::vector<Client> clients_;
    std::deque<Request> queue_;
    bool server_up_ = true;
    bool serving_ = false;
    std::uint64_t next_request_id_ = 1;
    ClientServerResult result_;
};

} // namespace

ClientServerResult run_client_server_experiment(const ClientServerConfig& config) {
    Simulation sim{config};
    return sim.run();
}

} // namespace routesync::clientsync
