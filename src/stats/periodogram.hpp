// Periodogram (discrete Fourier power spectrum) — the frequency-domain
// counterpart of the autocorrelation analysis behind Figure 2. A series
// with ~90-second periodic losses sampled every 1.01 s shows a spectral
// peak at ~1/89 cycles per sample; the two instruments corroborate each
// other.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace routesync::stats {

/// Spectral power of the de-meaned series at `frequency` (cycles per
/// sample, in (0, 0.5]): |sum_t x_t e^{-2 pi i f t}|^2 / n.
/// Requires a non-empty series and a frequency in range.
[[nodiscard]] double spectral_power(std::span<const double> x, double frequency);

/// The periodogram at the Fourier frequencies k/n, k = 1 .. n/2
/// (index 0 of the result corresponds to k = 1). Computed with a single
/// FFT (radix-2, or Bluestein for non-power-of-two n): O(n log n), so
/// full-spectrum analysis scales past the thousand-sample figure series
/// to the long packet traces the pooled forwarding path produces.
[[nodiscard]] std::vector<double> periodogram(std::span<const double> x);

/// The O(n^2) evaluation (one spectral_power sum per Fourier frequency) —
/// reference implementation for equivalence tests.
[[nodiscard]] std::vector<double> periodogram_naive(std::span<const double> x);

/// The frequency in [min_frequency, max_frequency] (cycles per sample)
/// with the greatest power, scanned over the Fourier grid.
struct DominantFrequency {
    double frequency;     ///< cycles per sample
    double period;        ///< 1 / frequency, samples
    double power;
};
[[nodiscard]] DominantFrequency dominant_frequency(std::span<const double> x,
                                                   double min_frequency,
                                                   double max_frequency);

} // namespace routesync::stats
