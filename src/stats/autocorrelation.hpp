// Sample autocorrelation function — the analysis behind the paper's
// Figure 2, where the RTT series of 1000 pings shows a correlation spike
// at lag ~89 (the ~90-second routing-update period divided by the
// 1.01-second ping interval).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace routesync::stats {

/// Sample autocorrelation r(k) for lags 0..max_lag (inclusive):
///   r(k) = sum_{t}((x_t - mean)(x_{t+k} - mean)) / sum_t((x_t - mean)^2)
/// r(0) == 1 by construction.
///
/// Edge cases (identical in the FFT and naive implementations):
///  * max_lag == 0 is valid and returns just {1.0}.
///  * A zero- or negligible-variance series reports 0 at every lag except
///    r(0) = 1. "Negligible" means the variance sum is at or below its
///    own rounding noise — denom <= n * (eps * max(1, |mean|))^2 — so a
///    constant series offset by a large mean (where cancellation leaves
///    only noise in the denominator) does not amplify garbage, instead of
///    only catching the exact denom == 0.0 case.
///
/// Computed via Wiener-Khinchin (FFT of the zero-padded series, squared
/// magnitudes, inverse FFT): O(n log n). Requires max_lag < x.size().
[[nodiscard]] std::vector<double> autocorrelation(std::span<const double> x,
                                                  std::size_t max_lag);

/// The O(n * max_lag) textbook sum — reference implementation for
/// equivalence tests; same contract and edge-case handling as
/// autocorrelation().
[[nodiscard]] std::vector<double> autocorrelation_naive(std::span<const double> x,
                                                        std::size_t max_lag);

/// The lag in [min_lag, max_lag] with the largest autocorrelation.
/// Useful for detecting a dominant periodicity. Requires a non-empty lag
/// range within the series length.
struct DominantLag {
    std::size_t lag;
    double correlation;
};
[[nodiscard]] DominantLag dominant_lag(std::span<const double> x, std::size_t min_lag,
                                       std::size_t max_lag);

} // namespace routesync::stats
