#include "stats/phase_cluster.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

namespace routesync::stats {

double circular_distance(double a, double b, double period) {
    double d = std::fmod(std::fabs(a - b), period);
    return std::min(d, period - d);
}

PhaseClusters cluster_phases(std::span<const double> offsets, double period,
                             double gap) {
    if (period <= 0.0) {
        throw std::invalid_argument{"cluster_phases: period must be positive"};
    }
    if (gap < 0.0) {
        throw std::invalid_argument{"cluster_phases: gap must be non-negative"};
    }
    PhaseClusters out;
    if (offsets.empty()) {
        return out;
    }

    std::vector<double> sorted;
    sorted.reserve(offsets.size());
    for (const double x : offsets) {
        sorted.push_back(std::fmod(std::fmod(x, period) + period, period));
    }
    std::sort(sorted.begin(), sorted.end());

    // Walk the sorted circle; a new cluster starts at each gap > `gap`.
    std::vector<std::size_t> sizes;
    std::size_t current = 1;
    for (std::size_t i = 1; i < sorted.size(); ++i) {
        if (sorted[i] - sorted[i - 1] <= gap) {
            ++current;
        } else {
            sizes.push_back(current);
            current = 1;
        }
    }
    sizes.push_back(current);

    // Wraparound: if the first and last points are circularly close and they
    // are in different clusters, merge those clusters.
    if (sizes.size() > 1 &&
        (period - sorted.back()) + sorted.front() <= gap) {
        sizes.front() += sizes.back();
        sizes.pop_back();
    }

    std::sort(sizes.begin(), sizes.end(), std::greater<>{});
    out.sizes = std::move(sizes);
    return out;
}

} // namespace routesync::stats
