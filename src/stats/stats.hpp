// Umbrella header for the statistics subsystem.
#pragma once

#include "stats/autocorrelation.hpp" // IWYU pragma: export
#include "stats/fft.hpp"             // IWYU pragma: export
#include "stats/histogram.hpp"       // IWYU pragma: export
#include "stats/periodogram.hpp"     // IWYU pragma: export
#include "stats/phase_cluster.hpp"   // IWYU pragma: export
#include "stats/quantiles.hpp"       // IWYU pragma: export
#include "stats/running_stats.hpp"   // IWYU pragma: export
