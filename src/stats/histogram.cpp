#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace routesync::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_{lo}, hi_{hi} {
    if (!(lo < hi)) {
        throw std::invalid_argument{"Histogram: lo must be < hi"};
    }
    if (bins == 0) {
        throw std::invalid_argument{"Histogram: need at least one bin"};
    }
    bin_width_ = (hi - lo) / static_cast<double>(bins);
    counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    auto bin = static_cast<std::size_t>((x - lo_) / bin_width_);
    bin = std::min(bin, counts_.size() - 1); // guard FP edge at hi
    ++counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
    if (bin >= counts_.size()) {
        throw std::out_of_range{"Histogram::bin_lo"};
    }
    return lo_ + static_cast<double>(bin) * bin_width_;
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin) + bin_width_; }

std::string Histogram::ascii(std::size_t width) const {
    std::uint64_t peak = 1;
    for (const auto c : counts_) {
        peak = std::max(peak, c);
    }
    std::ostringstream out;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        const auto bar = static_cast<std::size_t>(
            std::llround(static_cast<double>(counts_[b]) /
                         static_cast<double>(peak) * static_cast<double>(width)));
        out << "[" << bin_lo(b) << ", " << bin_hi(b) << ") " << std::string(bar, '#')
            << " " << counts_[b] << "\n";
    }
    if (underflow_ > 0) {
        out << "underflow " << underflow_ << "\n";
    }
    if (overflow_ > 0) {
        out << "overflow " << overflow_ << "\n";
    }
    return out.str();
}

} // namespace routesync::stats
