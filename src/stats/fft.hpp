// Fast Fourier transform: iterative radix-2 Cooley-Tukey for power-of-two
// lengths, Bluestein's chirp-z algorithm for everything else. This is the
// engine under the O(n log n) autocorrelation (Wiener-Khinchin) and
// periodogram paths; the naive O(n^2) versions remain available as
// reference implementations for equivalence testing.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace routesync::stats {

using Complex = std::complex<double>;

[[nodiscard]] constexpr bool is_pow2(std::size_t n) noexcept {
    return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n.
[[nodiscard]] std::size_t next_pow2(std::size_t n) noexcept;

/// In-place iterative radix-2 FFT. a.size() must be a power of two.
/// `inverse` conjugates the twiddles but does NOT divide by n — callers
/// that need the inverse transform scale themselves.
void fft_pow2(std::span<Complex> a, bool inverse);

/// DFT of arbitrary length: X[k] = sum_t x[t] e^{-+2 pi i t k / n}
/// (minus sign forward, plus inverse; inverse is unscaled, like
/// fft_pow2). Radix-2 when n is a power of two, Bluestein otherwise —
/// O(n log n) for every n.
[[nodiscard]] std::vector<Complex> dft(std::span<const Complex> x,
                                       bool inverse = false);

} // namespace routesync::stats
