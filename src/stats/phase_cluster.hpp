// Clustering of phase offsets on a circle.
//
// The Periodic Messages analysis characterizes a round by the sizes of the
// clusters of routing-message transmit times modulo the round length
// (paper Figures 4 and 6). Given N offsets in [0, period) this groups
// points whose circular gaps are at most `gap`, correctly handling the
// wraparound at 0/period.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace routesync::stats {

struct PhaseClusters {
    /// Cluster sizes, descending.
    std::vector<std::size_t> sizes;

    [[nodiscard]] std::size_t largest() const noexcept {
        return sizes.empty() ? 0 : sizes.front();
    }
    [[nodiscard]] std::size_t count() const noexcept { return sizes.size(); }
};

/// Single-linkage clustering on the circle of circumference `period`:
/// two offsets are linked when their circular distance is <= `gap`.
/// Requires period > 0, 0 <= gap.
[[nodiscard]] PhaseClusters cluster_phases(std::span<const double> offsets,
                                           double period, double gap);

/// Circular distance between two offsets on [0, period).
[[nodiscard]] double circular_distance(double a, double b, double period);

} // namespace routesync::stats
