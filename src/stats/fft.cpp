#include "stats/fft.hpp"

#include <cassert>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <stdexcept>
#include <utility>

namespace routesync::stats {

namespace {

/// Twiddle e^{-+2 pi i k / n} computed directly from cos/sin. Direct
/// evaluation (rather than a recurrence) keeps every twiddle accurate to
/// ~1 ulp, which is what lets the FFT paths match the naive O(n^2)
/// reference sums to ~1e-12 relative even at n = 16384.
[[nodiscard]] Complex twiddle(double turns, bool inverse) {
    const double angle = 2.0 * std::numbers::pi * turns;
    return {std::cos(angle), inverse ? std::sin(angle) : -std::sin(angle)};
}

void bit_reverse_permute(std::span<Complex> a) {
    const std::size_t n = a.size();
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; (j & bit) != 0; bit >>= 1) {
            j ^= bit;
        }
        j |= bit;
        if (i < j) {
            std::swap(a[i], a[j]);
        }
    }
}

/// Bluestein's chirp-z transform: re-expresses an arbitrary-n DFT as a
/// circular convolution, evaluated with power-of-two FFTs of length
/// >= 2n - 1. The chirp exponents k^2/2 are reduced mod n as integers
/// (k^2 mod 2n keeps the angle in [0, 2 pi)) so no precision is lost to
/// large arguments.
[[nodiscard]] std::vector<Complex> bluestein(std::span<const Complex> x,
                                             bool inverse) {
    const std::size_t n = x.size();
    const std::size_t m = next_pow2(2 * n - 1);
    const auto n2 = static_cast<std::uint64_t>(2 * n);

    // chirp[k] = e^{-+ pi i k^2 / n}, k in [0, n)
    std::vector<Complex> chirp(n);
    for (std::size_t k = 0; k < n; ++k) {
        const std::uint64_t k2 = (static_cast<std::uint64_t>(k) *
                                  static_cast<std::uint64_t>(k)) %
                                 n2;
        chirp[k] = twiddle(static_cast<double>(k2) /
                               (2.0 * static_cast<double>(n)),
                           inverse);
    }

    std::vector<Complex> a(m, Complex{0.0, 0.0});
    for (std::size_t k = 0; k < n; ++k) {
        a[k] = x[k] * chirp[k];
    }
    // b is the conjugate chirp laid out circularly: b[k] = b[m - k].
    std::vector<Complex> b(m, Complex{0.0, 0.0});
    b[0] = std::conj(chirp[0]);
    for (std::size_t k = 1; k < n; ++k) {
        b[k] = b[m - k] = std::conj(chirp[k]);
    }

    fft_pow2(a, false);
    fft_pow2(b, false);
    for (std::size_t i = 0; i < m; ++i) {
        a[i] *= b[i];
    }
    fft_pow2(a, true);
    const double scale = 1.0 / static_cast<double>(m); // unscaled inverse

    std::vector<Complex> out(n);
    for (std::size_t k = 0; k < n; ++k) {
        out[k] = a[k] * scale * chirp[k];
    }
    return out;
}

} // namespace

std::size_t next_pow2(std::size_t n) noexcept {
    std::size_t p = 1;
    while (p < n) {
        p <<= 1;
    }
    return p;
}

void fft_pow2(std::span<Complex> a, bool inverse) {
    const std::size_t n = a.size();
    if (n <= 1) {
        return;
    }
    if (!is_pow2(n)) {
        throw std::invalid_argument{"fft_pow2: length must be a power of two"};
    }
    bit_reverse_permute(a);
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const std::size_t half = len / 2;
        // One trig evaluation per distinct twiddle (n - 1 total across all
        // stages), reused across every butterfly block of this stage.
        for (std::size_t j = 0; j < half; ++j) {
            const Complex w = twiddle(
                static_cast<double>(j) / static_cast<double>(len), inverse);
            for (std::size_t start = 0; start < n; start += len) {
                const Complex u = a[start + j];
                const Complex v = a[start + j + half] * w;
                a[start + j] = u + v;
                a[start + j + half] = u - v;
            }
        }
    }
}

std::vector<Complex> dft(std::span<const Complex> x, bool inverse) {
    const std::size_t n = x.size();
    if (n == 0) {
        return {};
    }
    if (is_pow2(n)) {
        std::vector<Complex> a(x.begin(), x.end());
        fft_pow2(a, inverse);
        return a;
    }
    return bluestein(x, inverse);
}

} // namespace routesync::stats
