// Fixed-width binned histogram over a closed range, with overflow and
// underflow accounting. Used by benches to print loss/RTT distributions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace routesync::stats {

class Histogram {
public:
    /// Bins [lo, hi) into `bins` equal cells. Requires lo < hi, bins >= 1.
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x) noexcept;

    [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
    [[nodiscard]] std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
    [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
    [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

    /// Left edge of a bin.
    [[nodiscard]] double bin_lo(std::size_t bin) const;
    [[nodiscard]] double bin_hi(std::size_t bin) const;

    /// Multi-line ASCII rendering (one row per bin, `width`-char bars),
    /// for human-readable bench output.
    [[nodiscard]] std::string ascii(std::size_t width = 50) const;

private:
    double lo_;
    double hi_;
    double bin_width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace routesync::stats
