#include "stats/periodogram.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "stats/fft.hpp"

namespace routesync::stats {

namespace {

/// |X[k]|^2 / n over the de-meaned series for k = 1 .. n/2, via one DFT.
std::vector<double> fourier_grid_power(std::span<const double> x) {
    const std::size_t n = x.size();
    double mean = 0.0;
    for (const double v : x) {
        mean += v;
    }
    mean /= static_cast<double>(n);

    std::vector<Complex> z(n);
    for (std::size_t t = 0; t < n; ++t) {
        z[t] = Complex{x[t] - mean, 0.0};
    }
    const std::vector<Complex> spectrum = dft(z);

    std::vector<double> power;
    power.reserve(n / 2);
    for (std::size_t k = 1; k <= n / 2; ++k) {
        power.push_back(std::norm(spectrum[k]) / static_cast<double>(n));
    }
    return power;
}

} // namespace

double spectral_power(std::span<const double> x, double frequency) {
    const std::size_t n = x.size();
    if (n == 0) {
        throw std::invalid_argument{"spectral_power: empty series"};
    }
    if (frequency <= 0.0 || frequency > 0.5) {
        throw std::invalid_argument{"spectral_power: frequency outside (0, 0.5]"};
    }
    double mean = 0.0;
    for (const double v : x) {
        mean += v;
    }
    mean /= static_cast<double>(n);

    double re = 0.0;
    double im = 0.0;
    const double w = 2.0 * std::numbers::pi * frequency;
    for (std::size_t t = 0; t < n; ++t) {
        const double v = x[t] - mean;
        re += v * std::cos(w * static_cast<double>(t));
        im -= v * std::sin(w * static_cast<double>(t));
    }
    return (re * re + im * im) / static_cast<double>(n);
}

std::vector<double> periodogram(std::span<const double> x) {
    if (x.size() < 2) {
        throw std::invalid_argument{"periodogram: need at least two samples"};
    }
    return fourier_grid_power(x);
}

std::vector<double> periodogram_naive(std::span<const double> x) {
    const std::size_t n = x.size();
    if (n < 2) {
        throw std::invalid_argument{"periodogram: need at least two samples"};
    }
    std::vector<double> power;
    power.reserve(n / 2);
    for (std::size_t k = 1; k <= n / 2; ++k) {
        power.push_back(
            spectral_power(x, static_cast<double>(k) / static_cast<double>(n)));
    }
    return power;
}

DominantFrequency dominant_frequency(std::span<const double> x, double min_frequency,
                                     double max_frequency) {
    const std::size_t n = x.size();
    if (n < 2) {
        throw std::invalid_argument{"dominant_frequency: need at least two samples"};
    }
    if (min_frequency <= 0.0 || min_frequency > max_frequency ||
        max_frequency > 0.5) {
        throw std::invalid_argument{
            "dominant_frequency: need 0 < min <= max <= 0.5"};
    }
    const std::vector<double> power = fourier_grid_power(x);
    DominantFrequency best{0.0, 0.0, -1.0};
    for (std::size_t k = 1; k <= n / 2; ++k) {
        const double f = static_cast<double>(k) / static_cast<double>(n);
        if (f < min_frequency || f > max_frequency) {
            continue;
        }
        const double p = power[k - 1];
        if (p > best.power) {
            best = DominantFrequency{f, 1.0 / f, p};
        }
    }
    if (best.power < 0.0) {
        throw std::invalid_argument{
            "dominant_frequency: no Fourier frequency inside the range"};
    }
    return best;
}

} // namespace routesync::stats
