// Order statistics over stored samples.
#pragma once

#include <span>
#include <vector>

namespace routesync::stats {

/// The q-quantile (q in [0, 1]) of `xs` by linear interpolation between
/// closest ranks (type-7 / default R definition). Requires non-empty input.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Convenience bundle of common percentiles.
struct QuantileSummary {
    double min;
    double p25;
    double median;
    double p75;
    double p90;
    double p99;
    double max;
};
[[nodiscard]] QuantileSummary summarize(std::span<const double> xs);

} // namespace routesync::stats
