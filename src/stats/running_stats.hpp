// Streaming summary statistics (Welford's algorithm): numerically stable
// mean and variance in one pass, plus min/max, without storing samples.
#pragma once

#include <cstdint>

namespace routesync::stats {

class RunningStats {
public:
    void add(double x) noexcept;

    /// Merges another accumulator into this one (parallel-combine form of
    /// Welford; exact up to rounding).
    void merge(const RunningStats& other) noexcept;

    void reset() noexcept { *this = RunningStats{}; }

    [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
    /// Unbiased sample variance; 0 for fewer than two samples.
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    [[nodiscard]] double min() const noexcept { return min_; }
    [[nodiscard]] double max() const noexcept { return max_; }
    [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace routesync::stats
