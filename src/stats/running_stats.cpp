#include "stats/running_stats.hpp"

#include <cmath>

namespace routesync::stats {

void RunningStats::add(double x) noexcept {
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        if (x < min_) {
            min_ = x;
        }
        if (x > max_) {
            max_ = x;
        }
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
    if (other.n_ == 0) {
        return;
    }
    if (n_ == 0) {
        *this = other;
        return;
    }
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    if (other.min_ < min_) {
        min_ = other.min_;
    }
    if (other.max_ > max_) {
        max_ = other.max_;
    }
}

double RunningStats::variance() const noexcept {
    if (n_ < 2) {
        return 0.0;
    }
    return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

} // namespace routesync::stats
