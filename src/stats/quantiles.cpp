#include "stats/quantiles.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace routesync::stats {

double quantile(std::span<const double> xs, double q) {
    if (xs.empty()) {
        throw std::invalid_argument{"quantile: empty input"};
    }
    if (q < 0.0 || q > 1.0) {
        throw std::invalid_argument{"quantile: q outside [0, 1]"};
    }
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    const double h = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(h));
    const auto hi = static_cast<std::size_t>(std::ceil(h));
    const double frac = h - std::floor(h);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

QuantileSummary summarize(std::span<const double> xs) {
    return QuantileSummary{
        quantile(xs, 0.0),  quantile(xs, 0.25), quantile(xs, 0.5), quantile(xs, 0.75),
        quantile(xs, 0.90), quantile(xs, 0.99), quantile(xs, 1.0),
    };
}

} // namespace routesync::stats
