#include "stats/autocorrelation.hpp"

#include <cassert>
#include <stdexcept>

namespace routesync::stats {

std::vector<double> autocorrelation(std::span<const double> x, std::size_t max_lag) {
    const std::size_t n = x.size();
    if (n == 0) {
        throw std::invalid_argument{"autocorrelation: empty series"};
    }
    if (max_lag >= n) {
        throw std::invalid_argument{"autocorrelation: max_lag must be < series length"};
    }

    double mean = 0.0;
    for (const double v : x) {
        mean += v;
    }
    mean /= static_cast<double>(n);

    double denom = 0.0;
    for (const double v : x) {
        denom += (v - mean) * (v - mean);
    }

    std::vector<double> r(max_lag + 1, 0.0);
    r[0] = 1.0;
    if (denom == 0.0) {
        return r; // constant series: correlation undefined; report 0
    }
    for (std::size_t k = 1; k <= max_lag; ++k) {
        double num = 0.0;
        for (std::size_t t = 0; t + k < n; ++t) {
            num += (x[t] - mean) * (x[t + k] - mean);
        }
        r[k] = num / denom;
    }
    return r;
}

DominantLag dominant_lag(std::span<const double> x, std::size_t min_lag,
                         std::size_t max_lag) {
    if (min_lag == 0 || min_lag > max_lag) {
        throw std::invalid_argument{"dominant_lag: need 0 < min_lag <= max_lag"};
    }
    const auto r = autocorrelation(x, max_lag);
    DominantLag best{min_lag, r[min_lag]};
    for (std::size_t k = min_lag + 1; k <= max_lag; ++k) {
        if (r[k] > best.correlation) {
            best = DominantLag{k, r[k]};
        }
    }
    return best;
}

} // namespace routesync::stats
