#include "stats/autocorrelation.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/fft.hpp"

namespace routesync::stats {

namespace {

struct SeriesMoments {
    double mean;
    double denom; ///< sum of squared deviations
    /// True when denom is at or below its own rounding noise: n terms,
    /// each a squared cancellation error of order eps * max(1, |mean|).
    bool negligible_variance;
};

SeriesMoments moments(std::span<const double> x) {
    const auto n = static_cast<double>(x.size());
    double mean = 0.0;
    for (const double v : x) {
        mean += v;
    }
    mean /= n;

    double denom = 0.0;
    for (const double v : x) {
        denom += (v - mean) * (v - mean);
    }

    const double eps = std::numeric_limits<double>::epsilon();
    const double noise = eps * std::max(1.0, std::abs(mean));
    // !(denom > floor) rather than (denom <= floor) so NaN input lands in
    // the degenerate branch instead of poisoning every lag.
    const bool negligible = !(denom > n * noise * noise);
    return {mean, denom, negligible};
}

void validate(std::span<const double> x, std::size_t max_lag) {
    if (x.empty()) {
        throw std::invalid_argument{"autocorrelation: empty series"};
    }
    if (max_lag >= x.size()) {
        throw std::invalid_argument{"autocorrelation: max_lag must be < series length"};
    }
}

} // namespace

std::vector<double> autocorrelation(std::span<const double> x, std::size_t max_lag) {
    validate(x, max_lag);
    const std::size_t n = x.size();
    const SeriesMoments m = moments(x);

    std::vector<double> r(max_lag + 1, 0.0);
    r[0] = 1.0;
    if (m.negligible_variance || max_lag == 0) {
        return r;
    }

    // Wiener-Khinchin: autocovariance = IFFT(|FFT(z zero-padded)|^2).
    // Padding to >= n + max_lag keeps the circular convolution linear for
    // every lag we report.
    const std::size_t padded = next_pow2(n + max_lag);
    std::vector<Complex> a(padded, Complex{0.0, 0.0});
    for (std::size_t t = 0; t < n; ++t) {
        a[t] = Complex{x[t] - m.mean, 0.0};
    }
    fft_pow2(a, false);
    for (auto& c : a) {
        c = Complex{std::norm(c), 0.0};
    }
    fft_pow2(a, true); // unscaled: results carry a factor of `padded`

    const double scale = 1.0 / (static_cast<double>(padded) * m.denom);
    for (std::size_t k = 1; k <= max_lag; ++k) {
        r[k] = a[k].real() * scale;
    }
    return r;
}

std::vector<double> autocorrelation_naive(std::span<const double> x,
                                          std::size_t max_lag) {
    validate(x, max_lag);
    const std::size_t n = x.size();
    const SeriesMoments m = moments(x);

    std::vector<double> r(max_lag + 1, 0.0);
    r[0] = 1.0;
    if (m.negligible_variance || max_lag == 0) {
        return r;
    }
    for (std::size_t k = 1; k <= max_lag; ++k) {
        double num = 0.0;
        for (std::size_t t = 0; t + k < n; ++t) {
            num += (x[t] - m.mean) * (x[t + k] - m.mean);
        }
        r[k] = num / m.denom;
    }
    return r;
}

DominantLag dominant_lag(std::span<const double> x, std::size_t min_lag,
                         std::size_t max_lag) {
    if (min_lag == 0 || min_lag > max_lag) {
        throw std::invalid_argument{"dominant_lag: need 0 < min_lag <= max_lag"};
    }
    const auto r = autocorrelation(x, max_lag);
    DominantLag best{min_lag, r[min_lag]};
    for (std::size_t k = min_lag + 1; k <= max_lag; ++k) {
        if (r[k] > best.correlation) {
            best = DominantLag{k, r[k]};
        }
    }
    return best;
}

} // namespace routesync::stats
