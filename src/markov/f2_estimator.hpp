// Monte-Carlo calibration of f(2) — the expected number of rounds for the
// first pair of routers to synchronize, starting unsynchronized.
//
// The paper: "This value for f(2) is based both on simulations and on an
// approximate analysis that is not given here." Pair formation is driven
// by diffusion of lone-node phases, which the chain's drift argument
// cannot produce, so f(2) enters the Markov model as a measured input.
// This estimator measures it the way the paper did: repeated Periodic
// Messages runs stopped at the first size-2 cluster.
#pragma once

#include <cstdint>

#include "markov/fj_chain.hpp"
#include "sim/time.hpp"

namespace routesync::markov {

struct F2Estimate {
    double mean_rounds = 0.0;
    double mean_seconds = 0.0;
    /// Repetitions that formed a pair before the per-rep time cap.
    int completed = 0;
    /// Repetitions that hit the cap (their cap time is included in the
    /// mean, so the estimate is a lower bound when this is nonzero).
    int censored = 0;
};

/// Estimates f(2) for the chain's parameters by simulation. `reps`
/// independent runs (seeds seed, seed+1, ...), each capped at
/// `max_rounds_per_rep` rounds. The repetitions fan out over `jobs`
/// worker threads (0 = hardware concurrency); every rep is seeded by its
/// index alone, so the estimate is identical for any jobs value.
[[nodiscard]] F2Estimate estimate_f2(const ChainParams& params, int reps,
                                     std::uint64_t seed = 1,
                                     double max_rounds_per_rep = 1e6,
                                     std::size_t jobs = 1);

} // namespace routesync::markov
