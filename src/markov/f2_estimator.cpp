#include "markov/f2_estimator.hpp"

#include <stdexcept>

#include "core/experiment.hpp"
#include "parallel/trial_runner.hpp"

namespace routesync::markov {

F2Estimate estimate_f2(const ChainParams& params, int reps, std::uint64_t seed,
                       double max_rounds_per_rep, std::size_t jobs) {
    if (reps < 1) {
        throw std::invalid_argument{"estimate_f2: need at least one repetition"};
    }
    const double round_sec = params.tp_sec + params.tc_sec;

    const parallel::TrialRunner runner{{.jobs = jobs}};
    const auto results = runner.run_generated(
        static_cast<std::size_t>(reps), [&](std::size_t rep) {
            core::ExperimentConfig config;
            config.params.n = params.n;
            config.params.tp = sim::SimTime::seconds(params.tp_sec);
            config.params.tr = sim::SimTime::seconds(params.tr_sec);
            config.params.tc = sim::SimTime::seconds(params.tc_sec);
            config.params.start = core::StartCondition::Unsynchronized;
            config.params.seed = seed + static_cast<std::uint64_t>(rep);
            config.max_time = sim::SimTime::seconds(max_rounds_per_rep * round_sec);
            config.stop_on_cluster_size = 2;
            return config;
        });

    // Accumulate in rep order: the sum (and thus the estimate) is exactly
    // the serial one, bit for bit, whatever jobs was.
    F2Estimate out;
    double total_rounds = 0.0;
    for (const auto& result : results) {
        const auto& hit = result.first_hit_up[2];
        if (hit.has_value()) {
            total_rounds += *hit / round_sec;
            ++out.completed;
        } else {
            total_rounds += max_rounds_per_rep;
            ++out.censored;
        }
    }
    out.mean_rounds = total_rounds / static_cast<double>(reps);
    out.mean_seconds = out.mean_rounds * round_sec;
    return out;
}

} // namespace routesync::markov
