#include "markov/threshold.hpp"

#include <stdexcept>

namespace routesync::markov {
namespace {

double fraction_at_tr(const ChainParams& base, double tr) {
    ChainParams p = base;
    p.tr_sec = tr;
    return FJChain{p}.fraction_unsynchronized();
}

} // namespace

double critical_tr_seconds(const ChainParams& base, double target_fraction) {
    if (target_fraction <= 0.0 || target_fraction >= 1.0) {
        throw std::invalid_argument{"critical_tr_seconds: target must be in (0,1)"};
    }
    double lo = base.tc_sec / 2.0; // below this, clusters never break up
    double hi = base.tp_sec / 2.0; // the Section 6 recommendation
    if (fraction_at_tr(base, hi) < target_fraction) {
        return hi;
    }
    for (int iter = 0; iter < 200 && (hi - lo) > 1e-9 * base.tp_sec; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (fraction_at_tr(base, mid) >= target_fraction) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    return hi;
}

int critical_n(const ChainParams& base, int n_max, double target_fraction) {
    if (n_max < 2) {
        throw std::invalid_argument{"critical_n: n_max must be >= 2"};
    }
    // The fraction is non-monotone for degenerate tiny chains, so take the
    // *largest* N that is still predominately unsynchronized — the upper
    // edge of the transition (Figure 15's "one more router tips it").
    int last_unsync = 2;
    for (int n = 2; n <= n_max; ++n) {
        ChainParams p = base;
        p.n = n;
        if (FJChain{p}.fraction_unsynchronized() >= target_fraction) {
            last_unsync = n;
        }
    }
    return last_unsync;
}

} // namespace routesync::markov
