// Umbrella header for the Markov chain model (paper Section 5).
#pragma once

#include "markov/f2_estimator.hpp" // IWYU pragma: export
#include "markov/fj_chain.hpp"     // IWYU pragma: export
#include "markov/threshold.hpp"    // IWYU pragma: export
