// Phase-transition locators.
//
// The paper's practical payoff (Sections 5.3 and 6): given N, Tp, and Tc,
// how much randomness must a router inject to stay on the unsynchronized
// side of the transition — and conversely, for a given amount of jitter,
// how many routers does it take to tip a network into synchrony (Figures
// 14 and 15, and the Xerox-PARC sizing claim in Section 1).
#pragma once

#include "markov/fj_chain.hpp"

namespace routesync::markov {

/// Smallest Tr (seconds) at which the chain's equilibrium estimate
/// f(N)/(f(N)+g(1)) reaches `target_fraction` unsynchronized, located by
/// bisection over [Tc/2, Tp/2] (fraction is nondecreasing in Tr).
/// Returns Tp/2 if even that is not enough (it always is in practice).
[[nodiscard]] double critical_tr_seconds(const ChainParams& base,
                                         double target_fraction = 0.5);

/// Largest N for which the network stays predominately unsynchronized
/// (fraction >= target). One more router tips the system over — the
/// paper's "addition of a single router" phase transition. Searches
/// [2, n_max]; returns n_max if no transition occurs below it.
[[nodiscard]] int critical_n(const ChainParams& base, int n_max = 200,
                             double target_fraction = 0.5);

} // namespace routesync::markov
