// The paper's Markov chain model (Section 5).
//
// State i = size of the largest cluster in the current round, i in [1, N].
// Transitions move at most one state per round:
//
//   p(i, i-1) = (1 - Tc / (2 Tr))^i                           (Eq. 1)
//       — the head of the cluster breaks away: the first of i timers
//         (i.i.d. uniform over a 2*Tr window) fires more than Tc before
//         the second; the first-spacing law of i uniforms gives the
//         exponent i. Requires Tr > Tc/2; otherwise clusters never break.
//
//   p(i, i+1) = 1 - exp(-((N-i+1)/Tp) * ((i-1)Tc - Tr (i-1)/(i+1)))
//                                          for 2 <= i <= N-1  (Eq. 2)
//       — the cluster's phase advances (i-1)Tc - Tr(i-1)/(i+1) per round
//         relative to a lone node, and the gap to the next lone node is
//         exponential with mean Tp/(N-i+1). Clamped to 0 when the drift
//         is negative (large Tr): the deterministic-drift model then gives
//         the cluster no way to catch its neighbour.
//
//   p(1, 2) is *not* given by the drift argument (a lone cluster has zero
//   drift); the paper leaves it — equivalently f(2), the expected number
//   of rounds to form the first pair — as an input, calibrated from
//   simulation (f(2) = 19 rounds at the canonical parameters) or via
//   estimate_f2() in f2_estimator.hpp.
//
// From the transition probabilities the chain yields:
//   f(i) — expected rounds from state 1 to first reach state i (Eq. 3/4),
//   g(i) — expected rounds from state N to first reach state i (Eq. 5/6),
//   t(j, j±1) — expected rounds spent at j before the *given* move,
//       t(j,j+1) = p(j,j+1) / (p(j,j-1) + p(j,j+1))^2,
//   and the equilibrium estimate f(N) / (f(N) + g(1)) — the fraction of
//   time the system is unsynchronized (Figures 12-15).
//
// Infinities are meaningful results here, not errors: p_up = 0 at some
// rung makes every higher f(i) +infinity ("the system will almost
// certainly stay unsynchronized"), and Tr <= Tc/2 makes every g(i), i < N,
// +infinity ("synchronization never breaks up").
#pragma once

#include <cstdint>
#include <vector>

namespace routesync::markov {

struct ChainParams {
    int n = 20;
    double tp_sec = 121.0;
    double tr_sec = 0.11;
    double tc_sec = 0.11;
    /// Expected rounds from state 1 to state 2 (the f(2) calibration).
    /// The paper uses 19 rounds for {N=20, Tp=121, Tc=0.11, Tr=0.1}; it
    /// also evaluates the closed form with f(2) set to 0 (Figure 12's
    /// dotted line), which this field permits.
    double f2_rounds = 19.0;
};

/// Approximate analysis of f(2) (the paper leaves its version unpublished):
/// pair formation is the diffusion first passage of the minimum initial
/// gap between N uniform phases (~Tp/N^2) under a per-round relative
/// jitter variance of 2*Tr^2/3, giving f2 ~ (Tp/N^2)^2 / Tr^2 with the
/// constant calibrated to the paper's f(2) = 19 at {N=20, Tp=121, Tr=0.1}.
/// Clamped to at least 1 round.
[[nodiscard]] double f2_diffusion_estimate(int n, double tp_sec, double tr_sec);

class FJChain {
public:
    explicit FJChain(const ChainParams& params);

    [[nodiscard]] const ChainParams& params() const noexcept { return params_; }

    /// Seconds per round, Tp + Tc (the paper converts rounds to time as
    /// (Tp + Tc) * rounds).
    [[nodiscard]] double round_seconds() const noexcept {
        return params_.tp_sec + params_.tc_sec;
    }

    /// Eq. 1. Valid for i in [2, N]; p(1, 0) is 0 by convention.
    [[nodiscard]] double p_down(int i) const;
    /// Eq. 2 for i in [2, N-1]; p(N, N+1) = 0. p_up(1) is the pair-formation
    /// probability implied by f2_rounds (1 / f2).
    [[nodiscard]] double p_up(int i) const;
    /// Per-round drift of a size-i cluster relative to a lone node (sec):
    /// (i-1)*Tc - Tr*(i-1)/(i+1). Negative => p_up clamps to 0.
    [[nodiscard]] double drift_seconds(int i) const;

    /// Expected rounds at state j before moving to j+1, given that the
    /// next move is up. 0 when the up-move is impossible.
    [[nodiscard]] double t_up(int j) const;
    /// Expected rounds at state j before moving to j-1, given down.
    [[nodiscard]] double t_down(int j) const;

    /// f(i), i in [1, N] (index 0 unused): expected rounds, from state 1,
    /// to first reach state i. May contain +infinity.
    [[nodiscard]] std::vector<double> f_rounds() const;
    /// g(i): expected rounds, from state N, to first reach state i.
    [[nodiscard]] std::vector<double> g_rounds() const;

    /// Closed-form evaluations (the paper's Eq. 4 / Eq. 6, reorganized as
    /// explicit ratio-product sums). Mathematically identical to the
    /// recursions; kept as an independent numerical cross-check.
    [[nodiscard]] std::vector<double> f_rounds_closed_form() const;
    [[nodiscard]] std::vector<double> g_rounds_closed_form() const;

    /// f(N) and g(1) in seconds.
    [[nodiscard]] double time_to_synchronize_seconds() const;
    [[nodiscard]] double time_to_break_up_seconds() const;

    /// Equilibrium estimate f(N) / (f(N) + g(1)): the fraction of time the
    /// system spends unsynchronized (Figures 14-15). Returns 1 when only
    /// f(N) is infinite, 0 when only g(1) is, and 0.5 when both are.
    [[nodiscard]] double fraction_unsynchronized() const;

    /// Extension (not in the paper): the distribution over states after
    /// `rounds` steps, starting from `start_state` with probability 1.
    /// Direct probability-vector iteration; out[i] for i in [1, N].
    [[nodiscard]] std::vector<double> occupancy_after(std::uint64_t rounds,
                                                      int start_state) const;

    /// Extension (not in the paper): the exact stationary distribution of
    /// the birth-death chain by detailed balance, pi[i] for i in [1, N].
    /// Requires every consecutive pair of states to communicate; states cut
    /// off by a zero transition get probability 0 (mass is placed on the
    /// component containing state 1).
    [[nodiscard]] std::vector<double> stationary_distribution() const;

    /// Extension: the long-run mean largest-cluster size, sum i * pi(i) —
    /// a single-number summary of where the system lives (N when
    /// synchronized dominates, ~1 when unsynchronized dominates).
    [[nodiscard]] double mean_stationary_cluster_size() const;

private:
    ChainParams params_;
};

} // namespace routesync::markov
