#include "markov/fj_chain.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace routesync::markov {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

} // namespace

FJChain::FJChain(const ChainParams& params) : params_{params} {
    if (params_.n < 2) {
        throw std::invalid_argument{"FJChain: need at least two states"};
    }
    if (params_.tp_sec <= 0 || params_.tc_sec < 0 || params_.tr_sec < 0) {
        throw std::invalid_argument{"FJChain: invalid timing parameters"};
    }
    if (params_.f2_rounds < 0.0) {
        throw std::invalid_argument{"FJChain: f2 must be non-negative"};
    }
}

double f2_diffusion_estimate(int n, double tp_sec, double tr_sec) {
    if (n < 2 || tp_sec <= 0.0 || tr_sec <= 0.0) {
        return 1.0;
    }
    const double gap = tp_sec / (static_cast<double>(n) * static_cast<double>(n));
    // Calibration: 19 rounds at gap = 121/400, Tr = 0.1.
    const double kCalibration = 19.0 * 0.1 * 0.1 / ((121.0 / 400.0) * (121.0 / 400.0));
    const double f2 = kCalibration * gap * gap / (tr_sec * tr_sec);
    return f2 < 1.0 ? 1.0 : f2;
}

double FJChain::p_down(int i) const {
    if (i < 2 || i > params_.n) {
        return 0.0;
    }
    // A cluster can only shed its head if the spread of timer draws (2*Tr)
    // exceeds the processing window Tc.
    if (2.0 * params_.tr_sec <= params_.tc_sec) {
        return 0.0;
    }
    // P(first spacing of i i.i.d. uniforms on a width-2Tr window exceeds
    // Tc) = (1 - Tc/(2Tr))^i  [Feller vol. II; the head node must finish
    // its Tc busy period before any of the other timers fire]. With this
    // exponent the analysis reproduces the paper's Figure 10 scale
    // (f(20)*(Tp+Tc) ~ 5e5 s at Tr = 0.1, f(2) = 19).
    const double base = 1.0 - params_.tc_sec / (2.0 * params_.tr_sec);
    return std::pow(base, i);
}

double FJChain::drift_seconds(int i) const {
    return static_cast<double>(i - 1) * params_.tc_sec -
           params_.tr_sec * static_cast<double>(i - 1) / static_cast<double>(i + 1);
}

double FJChain::p_up(int i) const {
    if (i == 1) {
        // Pair formation is diffusion-driven; the model folds it into the
        // f(2) calibration: a geometric step with mean f2 rounds (at most
        // one step per round).
        return params_.f2_rounds <= 1.0 ? 1.0 : 1.0 / params_.f2_rounds;
    }
    if (i < 1 || i >= params_.n) {
        return 0.0;
    }
    const double drift = drift_seconds(i);
    if (drift <= 0.0) {
        return 0.0; // cluster drifts backward relative to lone nodes
    }
    const double rate = static_cast<double>(params_.n - i + 1) / params_.tp_sec;
    return 1.0 - std::exp(-rate * drift);
}

double FJChain::t_up(int j) const {
    const double up = p_up(j);
    if (up == 0.0) {
        return 0.0;
    }
    const double move = p_down(j) + up;
    return up / (move * move);
}

double FJChain::t_down(int j) const {
    const double down = p_down(j);
    if (down == 0.0) {
        return 0.0;
    }
    const double move = down + p_up(j);
    return down / (move * move);
}

std::vector<double> FJChain::f_rounds() const {
    const int n = params_.n;
    std::vector<double> f(static_cast<std::size_t>(n) + 1, 0.0);
    // Delta(i) = f(i) - f(i-1) satisfies
    //   Delta(i) = (p_down(i-1)/p_up(i-1)) * Delta(i-1) + c(i),
    //   c(i) = t_up(i-1) + (p_down(i-1)/p_up(i-1)) * t_down(i-1),
    // with Delta(2) = f(2). (This is Eq. 3 rearranged into first-order
    // form; the paper's Eq. 4 is its unrolled sum.)
    double delta = params_.f2_rounds;
    f[2] = delta;
    for (int i = 3; i <= n; ++i) {
        const double q = p_up(i - 1);
        if (q == 0.0) {
            // The ladder is cut: states >= i are unreachable by drift.
            for (int j = i; j <= n; ++j) {
                f[static_cast<std::size_t>(j)] = kInf;
            }
            return f;
        }
        const double ratio = p_down(i - 1) / q;
        const double c = t_up(i - 1) + ratio * t_down(i - 1);
        if (std::isinf(delta)) {
            // ratio == 0 (Tr <= Tc/2) severs the dependence on lower rungs.
            delta = ratio > 0.0 ? kInf : c;
        } else {
            delta = ratio * delta + c;
        }
        f[static_cast<std::size_t>(i)] =
            f[static_cast<std::size_t>(i - 1)] + delta;
    }
    return f;
}

std::vector<double> FJChain::g_rounds() const {
    const int n = params_.n;
    std::vector<double> g(static_cast<std::size_t>(n) + 1, 0.0);
    // e(i) = g(i) - g(i+1) satisfies
    //   e(i) = (p_up(i+1)/p_down(i+1)) * e(i+1) + d(i),
    //   d(i) = t_down(i+1) + (p_up(i+1)/p_down(i+1)) * t_up(i+1),
    // with e(N-1) = d(N-1) = 1/p_down(N) (from N the only move is down).
    double e = 0.0;
    for (int i = n - 1; i >= 1; --i) {
        const double q = p_down(i + 1);
        if (q == 0.0) {
            // Clusters of size i+1 never shed members: states <= i are
            // unreachable from above.
            for (int j = i; j >= 1; --j) {
                g[static_cast<std::size_t>(j)] = kInf;
            }
            return g;
        }
        const double ratio = p_up(i + 1) / q;
        const double d = t_down(i + 1) + ratio * t_up(i + 1);
        if (std::isinf(e)) {
            // ratio == 0 (no up-move from i+1) severs the dependence on
            // higher rungs.
            e = ratio > 0.0 ? kInf : d;
        } else {
            e = ratio * e + d;
        }
        g[static_cast<std::size_t>(i)] = g[static_cast<std::size_t>(i + 1)] + e;
    }
    return g;
}

std::vector<double> FJChain::f_rounds_closed_form() const {
    const int n = params_.n;
    std::vector<double> f(static_cast<std::size_t>(n) + 1, 0.0);
    f[2] = params_.f2_rounds;
    for (int i = 3; i <= n; ++i) {
        // Delta(i) = sum_{k=2}^{i} (prod_{m=k+1}^{i} r(m)) * c(k),
        // r(m) = p_down(m-1)/p_up(m-1), c(2) = f(2).
        double delta = 0.0;
        for (int k = 2; k <= i; ++k) {
            double term = k == 2 ? params_.f2_rounds
                                 : t_up(k - 1) + (p_up(k - 1) > 0.0
                                                      ? p_down(k - 1) / p_up(k - 1) *
                                                            t_down(k - 1)
                                                      : kInf);
            for (int m = k + 1; m <= i && !std::isinf(term); ++m) {
                const double q = p_up(m - 1);
                term = q > 0.0 ? term * (p_down(m - 1) / q) : kInf;
            }
            delta += term;
        }
        f[static_cast<std::size_t>(i)] = f[static_cast<std::size_t>(i - 1)] + delta;
        if (std::isinf(delta)) {
            for (int j = i; j <= n; ++j) {
                f[static_cast<std::size_t>(j)] = kInf;
            }
            return f;
        }
    }
    return f;
}

std::vector<double> FJChain::g_rounds_closed_form() const {
    const int n = params_.n;
    std::vector<double> g(static_cast<std::size_t>(n) + 1, 0.0);
    for (int i = n - 1; i >= 1; --i) {
        // e(i) = sum_{k=i}^{N-1} (prod_{m=i}^{k-1} s(m)) * d(k),
        // s(m) = p_up(m+1)/p_down(m+1).
        double e = 0.0;
        for (int k = i; k <= n - 1; ++k) {
            const double qk = p_down(k + 1);
            double term = qk > 0.0
                              ? t_down(k + 1) + p_up(k + 1) / qk * t_up(k + 1)
                              : kInf;
            for (int m = i; m <= k - 1 && !std::isinf(term); ++m) {
                const double qm = p_down(m + 1);
                term = qm > 0.0 ? term * (p_up(m + 1) / qm) : kInf;
            }
            e += term;
        }
        g[static_cast<std::size_t>(i)] = g[static_cast<std::size_t>(i + 1)] + e;
        if (std::isinf(e)) {
            for (int j = i; j >= 1; --j) {
                g[static_cast<std::size_t>(j)] = kInf;
            }
            return g;
        }
    }
    return g;
}

double FJChain::time_to_synchronize_seconds() const {
    return f_rounds()[static_cast<std::size_t>(params_.n)] * round_seconds();
}

double FJChain::time_to_break_up_seconds() const {
    return g_rounds()[1] * round_seconds();
}

double FJChain::fraction_unsynchronized() const {
    const double fn = f_rounds()[static_cast<std::size_t>(params_.n)];
    const double g1 = g_rounds()[1];
    if (std::isinf(fn) && std::isinf(g1)) {
        return 0.5; // both hitting times diverge; the estimate is undefined
    }
    if (std::isinf(fn)) {
        return 1.0;
    }
    if (std::isinf(g1)) {
        return 0.0;
    }
    return fn / (fn + g1);
}

std::vector<double> FJChain::occupancy_after(std::uint64_t rounds,
                                             int start_state) const {
    const int n = params_.n;
    if (start_state < 1 || start_state > n) {
        throw std::out_of_range{"occupancy_after: start_state outside [1, N]"};
    }
    std::vector<double> cur(static_cast<std::size_t>(n) + 1, 0.0);
    std::vector<double> next(static_cast<std::size_t>(n) + 1, 0.0);
    cur[static_cast<std::size_t>(start_state)] = 1.0;
    for (std::uint64_t step = 0; step < rounds; ++step) {
        std::fill(next.begin(), next.end(), 0.0);
        for (int i = 1; i <= n; ++i) {
            const double mass = cur[static_cast<std::size_t>(i)];
            if (mass == 0.0) {
                continue;
            }
            const double up = p_up(i);
            const double down = p_down(i);
            next[static_cast<std::size_t>(i)] += mass * (1.0 - up - down);
            if (i < n) {
                next[static_cast<std::size_t>(i + 1)] += mass * up;
            }
            if (i > 1) {
                next[static_cast<std::size_t>(i - 1)] += mass * down;
            }
        }
        std::swap(cur, next);
    }
    return cur;
}

std::vector<double> FJChain::stationary_distribution() const {
    const int n = params_.n;
    std::vector<double> w(static_cast<std::size_t>(n) + 1, 0.0);
    w[1] = 1.0;
    for (int i = 1; i < n; ++i) {
        const double up = p_up(i);
        if (up == 0.0) {
            break; // higher states unreachable; they carry no mass
        }
        const double down = p_down(i + 1);
        if (down == 0.0) {
            // Once entered, state i+1 (and above) is never left downward:
            // everything below is transient.
            for (int j = 1; j <= i; ++j) {
                w[static_cast<std::size_t>(j)] = 0.0;
            }
            w[static_cast<std::size_t>(i + 1)] = 1.0;
            continue;
        }
        w[static_cast<std::size_t>(i + 1)] =
            w[static_cast<std::size_t>(i)] * up / down;
    }
    double total = 0.0;
    for (const double x : w) {
        total += x;
    }
    for (double& x : w) {
        x /= total;
    }
    return w;
}

double FJChain::mean_stationary_cluster_size() const {
    const auto pi = stationary_distribution();
    double mean = 0.0;
    for (int i = 1; i <= params_.n; ++i) {
        mean += static_cast<double>(i) * pi[static_cast<std::size_t>(i)];
    }
    return mean;
}

} // namespace routesync::markov
