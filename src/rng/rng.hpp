// Umbrella header for the routesync random-number subsystem.
//
// DefaultEngine is the engine every simulation uses unless a component
// explicitly needs the paper's MINSTD generator ([Ca90]) for fidelity
// experiments.
#pragma once

#include "rng/distributions.hpp" // IWYU pragma: export
#include "rng/minstd.hpp"        // IWYU pragma: export
#include "rng/splitmix64.hpp"    // IWYU pragma: export
#include "rng/xoshiro256ss.hpp"  // IWYU pragma: export

namespace routesync::rng {

using DefaultEngine = Xoshiro256ss;

} // namespace routesync::rng
