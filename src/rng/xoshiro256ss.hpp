// xoshiro256** — the default engine for simulations. Fast, 256-bit state,
// passes BigCrush; seeded from a single 64-bit value via SplitMix64 as its
// authors prescribe.
//
// Reference: Blackman & Vigna, "Scrambled Linear Pseudorandom Number
// Generators", ACM TOMS 2021.
#pragma once

#include <array>
#include <cstdint>

namespace routesync::rng {

/// xoshiro256** 1.0; satisfies std::uniform_random_bit_generator.
class Xoshiro256ss {
public:
    using result_type = std::uint64_t;

    /// Seeds the 256-bit state by iterating SplitMix64 over `seed`.
    explicit Xoshiro256ss(std::uint64_t seed = 0) noexcept;

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

    result_type operator()() noexcept;

    /// Equivalent to 2^128 calls of operator(); yields a stream that never
    /// overlaps the original. Used to derive independent per-node streams.
    void long_jump() noexcept;

    /// Returns a generator 2^128 steps ahead and advances *this by the same
    /// amount; successive calls hand out non-overlapping substreams.
    Xoshiro256ss split() noexcept;

private:
    std::array<std::uint64_t, 4> s_{};
};

} // namespace routesync::rng
