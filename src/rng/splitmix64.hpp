// SplitMix64 — a tiny, fast 64-bit generator used here exclusively for
// seeding the main engines (xoshiro256** requires a well-mixed 256-bit
// state; seeding it from a single user-supplied integer via SplitMix64 is
// the construction recommended by its authors).
//
// Reference: Steele, Lea, Flood, "Fast Splittable Pseudorandom Number
// Generators", OOPSLA 2014.
#pragma once

#include <cstdint>

namespace routesync::rng {

/// Splittable 64-bit mixer; satisfies std::uniform_random_bit_generator.
class SplitMix64 {
public:
    using result_type = std::uint64_t;

    explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_{seed} {}

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

    constexpr result_type operator()() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

} // namespace routesync::rng
