#include "rng/minstd.hpp"

namespace routesync::rng {
namespace {

// Carta's division-free reduction of (mult * x) mod (2^31 - 1): split the
// 46-bit product p into the low 31 bits and the high bits; because
// 2^31 ≡ 1 (mod 2^31 - 1), the sum lo + hi is congruent to p. One more
// fold handles the possible carry out of bit 31.
constexpr std::uint32_t carta_step(std::uint64_t mult, std::uint32_t x) noexcept {
    const std::uint64_t p = mult * x;
    std::uint64_t s = (p & 0x7fffffffULL) + (p >> 31);
    if (s >= 0x7fffffffULL) {
        s -= 0x7fffffffULL;
    }
    return static_cast<std::uint32_t>(s);
}

constexpr std::uint32_t sanitize_seed(std::uint64_t seed) noexcept {
    const auto s = static_cast<std::uint32_t>(seed % 0x7fffffffULL);
    return s == 0 ? 1U : s;
}

} // namespace

MinStd::MinStd(std::uint64_t seed) noexcept : state_{sanitize_seed(seed)} {}

MinStd::result_type MinStd::operator()() noexcept {
    state_ = carta_step(multiplier, state_);
    return state_;
}

void MinStd::discard(std::uint64_t n) noexcept {
    for (std::uint64_t i = 0; i < n; ++i) {
        (*this)();
    }
}

MinStd48271::MinStd48271(std::uint64_t seed) noexcept : state_{sanitize_seed(seed)} {}

MinStd48271::result_type MinStd48271::operator()() noexcept {
    state_ = carta_step(multiplier, state_);
    return state_;
}

void MinStd48271::discard(std::uint64_t n) noexcept {
    for (std::uint64_t i = 0; i < n; ++i) {
        (*this)();
    }
}

} // namespace routesync::rng
