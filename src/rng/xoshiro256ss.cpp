#include "rng/xoshiro256ss.hpp"

#include "rng/splitmix64.hpp"

namespace routesync::rng {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}

} // namespace

Xoshiro256ss::Xoshiro256ss(std::uint64_t seed) noexcept {
    SplitMix64 mixer{seed};
    for (auto& word : s_) {
        word = mixer();
    }
}

Xoshiro256ss::result_type Xoshiro256ss::operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

void Xoshiro256ss::long_jump() noexcept {
    static constexpr std::uint64_t kJump[] = {
        0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL,
        0x77710069854ee241ULL, 0x39109bb02acbe635ULL};

    std::uint64_t s0 = 0;
    std::uint64_t s1 = 0;
    std::uint64_t s2 = 0;
    std::uint64_t s3 = 0;
    for (const std::uint64_t jump : kJump) {
        for (int b = 0; b < 64; ++b) {
            if (jump & (std::uint64_t{1} << b)) {
                s0 ^= s_[0];
                s1 ^= s_[1];
                s2 ^= s_[2];
                s3 ^= s_[3];
            }
            (*this)();
        }
    }
    s_ = {s0, s1, s2, s3};
}

Xoshiro256ss Xoshiro256ss::split() noexcept {
    Xoshiro256ss child = *this;
    long_jump();
    return child;
}

} // namespace routesync::rng
