// Deterministic, portable distributions.
//
// The standard library's <random> distributions are implementation-defined:
// the same engine stream yields different variates under libstdc++ and
// libc++. Every experiment in this repository must be bit-reproducible
// from its seed alone, so we implement the handful of distributions the
// simulations need with fully specified algorithms.
#pragma once

#include <cassert>
#include <cmath>
#include <concepts>
#include <cstdint>
#include <limits>
#include <random> // std::uniform_random_bit_generator

namespace routesync::rng {

/// Draws a double uniformly from [0, 1) using the top 53 bits of a 64-bit
/// variate (the canonical construction; exactly representable, unbiased).
template <std::uniform_random_bit_generator Gen>
    requires(Gen::max() == std::numeric_limits<std::uint64_t>::max() && Gen::min() == 0)
double uniform01(Gen& gen) {
    return static_cast<double>(gen() >> 11) * 0x1.0p-53;
}

/// Uniform real on [lo, hi). Requires lo <= hi; returns lo when lo == hi.
template <std::uniform_random_bit_generator Gen>
double uniform_real(Gen& gen, double lo, double hi) {
    assert(lo <= hi);
    return lo + (hi - lo) * uniform01(gen);
}

/// Uniform integer on the closed range [lo, hi], unbiased, via bitmask
/// rejection: draw ceil(log2(range)) bits and reject values beyond the
/// range (expected < 2 draws).
template <std::uniform_random_bit_generator Gen>
std::uint64_t uniform_u64(Gen& gen, std::uint64_t lo, std::uint64_t hi) {
    assert(lo <= hi);
    const std::uint64_t range = hi - lo;
    if (range == std::numeric_limits<std::uint64_t>::max()) {
        return gen();
    }
    std::uint64_t mask = range;
    mask |= mask >> 1;
    mask |= mask >> 2;
    mask |= mask >> 4;
    mask |= mask >> 8;
    mask |= mask >> 16;
    mask |= mask >> 32;
    for (;;) {
        const std::uint64_t x = gen() & mask;
        if (x <= range) {
            return lo + x;
        }
    }
}

/// Uniform integer on [lo, hi] for signed arguments.
template <std::uniform_random_bit_generator Gen>
std::int64_t uniform_i64(Gen& gen, std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
    return static_cast<std::int64_t>(
        static_cast<std::uint64_t>(lo) + uniform_u64(gen, 0, span));
}

/// Exponential variate with the given mean (inverse-CDF method).
/// `mean` must be positive.
template <std::uniform_random_bit_generator Gen>
double exponential(Gen& gen, double mean) {
    assert(mean > 0.0);
    // 1 - U is in (0, 1], so the log argument never hits zero.
    return -mean * std::log1p(-uniform01(gen));
}

/// Bernoulli trial with success probability p in [0, 1].
template <std::uniform_random_bit_generator Gen>
bool bernoulli(Gen& gen, double p) {
    return uniform01(gen) < p;
}

} // namespace routesync::rng
