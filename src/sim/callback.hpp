// A small-buffer-optimized, move-only callable — the event queue's
// callback type.
//
// Why not std::function: the hot path of every simulation is
// push/pop on the event queue, and std::function heap-allocates for any
// capture larger than (typically) two pointers. Simulation callbacks
// routinely capture a model pointer plus a couple of values, which fits
// comfortably inline but blows the libstdc++ SBO budget. SmallCallback
// stores any callable up to kInlineSize bytes in place and only falls
// back to the heap beyond that, so the common schedule/fire cycle does
// zero allocations.
//
// Move-only on purpose: an event callback has exactly one owner (the
// queue, then the engine frame that fires it), and dropping the
// copyability requirement lets callables with move-only captures
// (unique_ptr, etc.) be scheduled directly.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace routesync::sim {

class SmallCallback {
public:
    /// Inline storage budget. Sized so a captured object pointer plus a
    /// handful of scalars (or a whole std::function, when legacy code
    /// passes one) stays allocation-free.
    static constexpr std::size_t kInlineSize = 48;

    SmallCallback() noexcept = default;
    SmallCallback(std::nullptr_t) noexcept {} // NOLINT(google-explicit-constructor)

    template <typename F,
              typename D = std::remove_cvref_t<F>,
              typename = std::enable_if_t<!std::is_same_v<D, SmallCallback> &&
                                          !std::is_same_v<D, std::nullptr_t> &&
                                          std::is_invocable_r_v<void, D&>>>
    SmallCallback(F&& f) { // NOLINT(google-explicit-constructor)
        if constexpr (fits_inline<D> && std::is_trivially_copyable_v<D>) {
            // The fast path for the simulator's lambdas (captured
            // pointers and scalars): relocation is a buffer copy and
            // destruction a no-op, signalled by null vtable entries.
            ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
            vt_ = &trivial_vtable<D>;
        } else if constexpr (fits_inline<D>) {
            ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
            vt_ = &inline_vtable<D>;
        } else {
            ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
            vt_ = &heap_vtable<D>;
        }
    }

    SmallCallback(SmallCallback&& other) noexcept { steal(other); }

    SmallCallback& operator=(SmallCallback&& other) noexcept {
        if (this != &other) {
            reset();
            steal(other);
        }
        return *this;
    }

    SmallCallback(const SmallCallback&) = delete;
    SmallCallback& operator=(const SmallCallback&) = delete;

    ~SmallCallback() { reset(); }

    /// Invokes the stored callable. Precondition: non-empty.
    void operator()() {
        assert(vt_ != nullptr && "SmallCallback: invoking empty callback");
        vt_->invoke(buf_);
    }

    [[nodiscard]] explicit operator bool() const noexcept { return vt_ != nullptr; }

    friend bool operator==(const SmallCallback& cb, std::nullptr_t) noexcept {
        return cb.vt_ == nullptr;
    }

private:
    struct VTable {
        void (*invoke)(void*);
        // Null relocate/destroy mean "trivially relocatable": moving is a
        // raw buffer copy and destruction is a no-op.
        void (*relocate)(void* src, void* dst) noexcept; // move into dst, destroy src
        void (*destroy)(void*) noexcept;
    };

    // Inline storage requires a nothrow move so heap-reordering moves in
    // the event queue keep their exception guarantees.
    template <typename D>
    static constexpr bool fits_inline =
        sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<D>;

    template <typename D>
    static constexpr VTable trivial_vtable{
        [](void* p) { (*std::launder(static_cast<D*>(p)))(); },
        nullptr,
        nullptr,
    };

    template <typename D>
    static constexpr VTable inline_vtable{
        [](void* p) { (*std::launder(static_cast<D*>(p)))(); },
        [](void* src, void* dst) noexcept {
            auto* s = std::launder(static_cast<D*>(src));
            ::new (dst) D(std::move(*s));
            s->~D();
        },
        [](void* p) noexcept { std::launder(static_cast<D*>(p))->~D(); },
    };

    template <typename D>
    static constexpr VTable heap_vtable{
        [](void* p) { (**std::launder(static_cast<D**>(p)))(); },
        [](void* src, void* dst) noexcept {
            ::new (dst) D*(*std::launder(static_cast<D**>(src)));
        },
        [](void* p) noexcept { delete *std::launder(static_cast<D**>(p)); },
    };

    void steal(SmallCallback& other) noexcept {
        if (other.vt_ != nullptr) {
            vt_ = other.vt_;
            if (vt_->relocate != nullptr) {
                vt_->relocate(other.buf_, buf_);
            } else {
                std::memcpy(buf_, other.buf_, kInlineSize);
            }
            other.vt_ = nullptr;
        }
    }

    void reset() noexcept {
        if (vt_ != nullptr) {
            if (vt_->destroy != nullptr) {
                vt_->destroy(buf_);
            }
            vt_ = nullptr;
        }
    }

    alignas(std::max_align_t) std::byte buf_[kInlineSize];
    const VTable* vt_ = nullptr;
};

} // namespace routesync::sim
