#include "sim/engine.hpp"

#include <utility>

namespace routesync::sim {

EventHandle Engine::schedule_at(SimTime t, Callback cb) {
    if (t < now_) {
        throw std::logic_error{"Engine::schedule_at: time is in the past"};
    }
    return queue_.push(t, std::move(cb));
}

EventHandle Engine::schedule_after(SimTime dt, Callback cb) {
    if (dt < SimTime::zero()) {
        throw std::logic_error{"Engine::schedule_after: negative delay"};
    }
    return queue_.push(now_ + dt, std::move(cb));
}

bool Engine::step() {
    if (queue_.empty()) {
        return false;
    }
    auto [time, callback] = queue_.pop();
    now_ = time;
    ++processed_;
    callback();
    return true;
}

void Engine::run() {
    while (!stopped_ && step()) {
    }
}

void Engine::run_until(SimTime t) {
    while (!stopped_ && !queue_.empty() && queue_.next_time() <= t) {
        step();
    }
    if (!stopped_ && now_ < t) {
        now_ = t;
    }
}

} // namespace routesync::sim
