// A cancellable priority queue of timestamped events.
//
// Ordering: strictly by time, then by insertion order (FIFO among equal
// timestamps). The FIFO tie-break matters: the Periodic Messages model
// produces many events at *identical* times (cluster members share
// busy-period arithmetic), and deterministic ordering keeps whole
// simulations bit-reproducible.
//
// Hot-path design (this is the innermost loop of every simulation):
//
//   * Callbacks are `SmallCallback` — small-buffer-optimized and
//     move-only — so the common schedule/fire cycle performs no heap
//     allocation (std::function would allocate for almost every
//     simulation capture).
//   * Callbacks live in a slot table, not in the heap. A heap entry is a
//     single 128-bit key packing {time, seq, slot}: the timestamp is
//     mapped through the order-preserving IEEE-754 bits transform, so
//     the entire (time, FIFO) ordering is ONE unsigned integer compare.
//     Heap comparisons on effectively-random keys mispredict ~50% as
//     float/branch pairs; as integer compares they compile to
//     cmp/sbb/cmov with no branch at all, and the O(log n) sift moves
//     copy 16 trivial bytes instead of relocating a callback object.
//   * The heap is 4-ary: half the levels of a binary heap, and each
//     level's children are adjacent in memory, which is where a
//     16k-entry queue actually spends its time.
//   * Handles are generation-counted slots, not hash-set membership.
//     A handle packs {slot index, generation}; cancel() is a bounds
//     check plus a generation compare — O(1), no hashing — and push/pop
//     touch no associative container at all. Cancel destroys the
//     callback immediately, so captured resources are not held hostage
//     by the tombstone.
//   * Cancellation is lazy: a cancelled entry stays in the heap as a
//     tombstone and is dropped when it surfaces at the top. Its slot is
//     only reclaimed at that point (the heap entry still references it).
//
// Tombstone compaction policy: lazily-cancelled entries are dead weight
// that a cancel-heavy workload (e.g. timers that are almost always
// rescheduled before firing) can grow without bound, because a tombstone
// buried deep in the heap is only reclaimed when it reaches the top. To
// bound that growth, whenever the number of tombstones exceeds half the
// heap (and the heap is large enough for it to matter — kCompactMinHeap),
// the queue compacts: it filters out every cancelled entry, frees their
// slots, and rebuilds the heap in O(n). Since each compaction removes at
// least half the heap, the amortized cost per cancel stays O(1), and live
// memory is always O(live events).
//
// Duplicate-time chaining: the workloads this repo simulates are about
// synchronization, so the queue's steady state is *bursts of equal
// timestamps* — a cluster of routers firing together, a link draining a
// backlog in zero serialization time, a LAN delivering one frame to
// every station at the same instant. Pushing k equal-time events as k
// heap entries costs k log n on the way out. Instead, the queue keeps a
// tiny (2-way) cache of {timestamp -> chain tail}: a push whose
// timestamp matches a cached chain appends to it in O(1) — linked
// through the slot table, no heap entry at all — and popping a chained
// event replaces the root's key with the next chain member in place,
// also O(1). This is exactly FIFO-correct because, while a chain for
// time T is cached, *every* push at T joins it: chain members' sequence
// numbers are therefore totally ordered against every other entry at T,
// and the advanced root is still the global minimum (no sift needed).
// Entries at T left over from an evicted chain all carry smaller
// sequence numbers and surface first through the normal heap path.
//
// Capacity limits: at most 2^22 - 1 (≈4.2M) events may be pending at
// once (push throws std::length_error beyond). The packed sequence
// counter holds 2^42 pushes; when it saturates, push renumbers all
// pending entries in order (an O(n log n) slow path hit once every
// ~4.4e12 pushes), so FIFO semantics never degrade.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace routesync::sim {

/// Opaque handle identifying a scheduled event; valid until the event
/// fires or is cancelled. The id packs {slot, generation} so a stale
/// handle (fired, cancelled, or from a recycled slot) never aliases a
/// newer event.
struct EventHandle {
    std::uint64_t id = 0;

    friend bool operator==(EventHandle, EventHandle) = default;
};

/// One self-describing reading of the queue's occupancy — what the
/// ResourceSampler and tests read.
struct EventQueueStats {
    std::size_t live = 0;        ///< pending, non-cancelled events
    std::size_t tombstones = 0;  ///< cancelled entries still in the heap
    std::size_t heap_entries = 0; ///< live + tombstones
};

class EventQueue {
public:
    using Callback = SmallCallback;

    /// Schedules `cb` at time `t`. Events at equal times fire in push order.
    EventHandle push(SimTime t, Callback cb);

    /// Cancels a pending event. Returns false if the event already fired,
    /// was already cancelled, or the handle is unknown. O(1).
    bool cancel(EventHandle h);

    /// True when no live (non-cancelled) events remain.
    [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

    /// Number of live events.
    [[nodiscard]] std::size_t size() const noexcept { return live_; }

    /// Entries currently held (live + not-yet-reclaimed tombstones,
    /// whether they sit in the heap proper or on a duplicate-time
    /// chain). Exposed so tests can observe the compaction policy.
    [[nodiscard]] std::size_t heap_entries() const noexcept {
        return live_ + tombstones_;
    }

    /// Cancelled entries still occupying heap slots.
    [[nodiscard]] std::size_t tombstones() const noexcept { return tombstones_; }

    [[nodiscard]] EventQueueStats stats() const noexcept {
        return EventQueueStats{live_, tombstones_, live_ + tombstones_};
    }

    /// Timestamp of the earliest live event. Precondition: !empty().
    [[nodiscard]] SimTime next_time();

    /// O(1) lower bound on next_time(): the root entry's timestamp,
    /// tombstones included (a cancelled root can make this earlier than
    /// next_time(), never later). Precondition: !empty().
    [[nodiscard]] SimTime next_time_bound() const noexcept {
        return entry_time(heap_.front());
    }

    /// Removes and returns the earliest live event. Precondition: !empty().
    struct Popped {
        SimTime time;
        Callback callback;
    };
    Popped pop();

private:
    static constexpr std::size_t kArity = 4;
    /// Compaction threshold: heaps smaller than this are never compacted
    /// (the tombstone overhead is bounded by the constant anyway).
    static constexpr std::size_t kCompactMinHeap = 64;
    /// The low 64 bits of an entry pack {seq : 42, slot : 22}. Seq lives
    /// above slot so low-word order among equal times is FIFO push order.
    static constexpr std::uint64_t kSlotBits = 22;
    static constexpr std::uint64_t kSlotMask = (std::uint64_t{1} << kSlotBits) - 1;
    static constexpr std::uint64_t kMaxSeq =
        (std::uint64_t{1} << (64 - kSlotBits)) - 1;

    // 128-bit heap key: {time_bits : 64 | seq : 42 | slot : 22}.
    // (__int128 is a GNU extension, but this repo already requires
    // GCC/Clang; __extension__ silences -Wpedantic.)
    __extension__ using Entry = unsigned __int128;

    /// Maps a double to a uint64 whose unsigned order equals the double's
    /// numeric order (the standard IEEE-754 total-order transform:
    /// non-negatives get the sign bit set, negatives are bit-inverted).
    /// -0.0 is normalized to +0.0 first so equal times stay FIFO.
    static std::uint64_t time_bits(SimTime t) noexcept {
        double s = t.sec();
        if (s == 0.0) {
            s = 0.0; // collapse -0.0
        }
        const auto u = std::bit_cast<std::uint64_t>(s);
        constexpr std::uint64_t kSign = std::uint64_t{1} << 63;
        return (u & kSign) ? ~u : (u | kSign);
    }
    static SimTime entry_time(Entry e) noexcept {
        constexpr std::uint64_t kSign = std::uint64_t{1} << 63;
        const auto k = static_cast<std::uint64_t>(e >> 64);
        const std::uint64_t u = (k & kSign) ? (k ^ kSign) : ~k;
        return SimTime::seconds(std::bit_cast<double>(u));
    }
    static std::uint32_t slot_of(Entry e) noexcept {
        return static_cast<std::uint32_t>(static_cast<std::uint64_t>(e) & kSlotMask);
    }

    /// Chain-link sentinel: this slot is the last of its chain (or not
    /// chained at all).
    static constexpr std::uint32_t kNoChain = 0xffffffffU;

    enum class SlotState : std::uint8_t { Live, Cancelled };
    struct Slot {
        Callback callback;
        std::uint64_t seq = 0;          // full sequence number, so a chained
                                        // entry's heap key is reconstructible
        std::uint32_t gen = 1; // bumped when the event fires or is cancelled
        std::uint32_t next = kNoChain;  // next member of a duplicate-time chain
        SlotState state = SlotState::Live;
    };

    /// One way of the duplicate-time cache: the tail of an open chain
    /// for `time_bits`. `tail == kNoChain` marks the way invalid.
    struct ChainWay {
        std::uint64_t time_bits = 0;
        std::uint32_t tail = kNoChain;
    };

    static EventHandle make_handle(std::uint32_t slot, std::uint32_t gen) noexcept {
        return EventHandle{(static_cast<std::uint64_t>(slot) << 32) | gen};
    }

    [[nodiscard]] std::uint32_t acquire_slot();
    void release_slot(std::uint32_t slot) noexcept;

    void sift_up(std::size_t i) noexcept;
    void sift_down(std::size_t i) noexcept;
    /// Removes the heap root (entry only; the slot is the caller's
    /// problem).
    void drop_root() noexcept;

    /// Drops cancelled entries from the top of the heap.
    void skip_cancelled();

    /// Replaces the root's key in place with chain member `next` (same
    /// time, that member's seq). See the chaining invariant in the file
    /// comment for why no sift is needed.
    void advance_chain_root(std::uint32_t next) noexcept {
        heap_.front() = (heap_.front() >> 64 << 64) |
                        (Entry{slots_[next].seq} << kSlotBits) | next;
    }

    /// Expands every duplicate-time chain into explicit heap entries and
    /// invalidates the cache. Leaves heap_ UNORDERED — callers (compact,
    /// renumber) rebuild it.
    void materialize_chains();

    /// Rebuilds the heap without its tombstones (see policy above).
    void compact();

    /// Reassigns dense sequence numbers to all pending entries, keeping
    /// their relative order. Slow path, hit once per 2^42 pushes.
    void renumber();

    std::vector<Entry> heap_; // 4-ary min-heap over the 128-bit key
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> free_slots_;
    ChainWay ways_[2]; // duplicate-time cache (see file comment)
    std::uint8_t way_mru_ = 0;
    std::uint64_t next_seq_ = 1;
    std::size_t live_ = 0;
    std::size_t tombstones_ = 0; // cancelled entries, heap or chained
};

} // namespace routesync::sim
