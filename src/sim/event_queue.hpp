// A cancellable priority queue of timestamped events.
//
// Ordering: strictly by time, then by insertion order (FIFO among equal
// timestamps). The FIFO tie-break matters: the Periodic Messages model
// produces many events at *identical* times (cluster members share
// busy-period arithmetic), and deterministic ordering keeps whole
// simulations bit-reproducible.
//
// Cancellation is lazy: a cancelled entry stays in the heap and is skipped
// at pop time. This keeps push/cancel O(log n)/O(1) with no handle
// invalidation headaches.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace routesync::sim {

/// Opaque handle identifying a scheduled event; valid until the event
/// fires or is cancelled.
struct EventHandle {
    std::uint64_t id = 0;

    friend bool operator==(EventHandle, EventHandle) = default;
};

class EventQueue {
public:
    using Callback = std::function<void()>;

    /// Schedules `cb` at time `t`. Events at equal times fire in push order.
    EventHandle push(SimTime t, Callback cb);

    /// Cancels a pending event. Returns false if the event already fired,
    /// was already cancelled, or the handle is unknown.
    bool cancel(EventHandle h);

    /// True when no live (non-cancelled) events remain.
    [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

    /// Number of live events.
    [[nodiscard]] std::size_t size() const noexcept { return live_; }

    /// Timestamp of the earliest live event. Precondition: !empty().
    [[nodiscard]] SimTime next_time();

    /// Removes and returns the earliest live event. Precondition: !empty().
    struct Popped {
        SimTime time;
        Callback callback;
    };
    Popped pop();

private:
    struct Entry {
        SimTime time;
        std::uint64_t seq; // push order; breaks ties FIFO
        std::uint64_t id;
        Callback callback;
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const noexcept {
            if (a.time != b.time) {
                return a.time > b.time;
            }
            return a.seq > b.seq;
        }
    };

    /// Drops cancelled entries from the top of the heap.
    void skip_cancelled();

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::unordered_set<std::uint64_t> pending_;   // ids of live entries
    std::unordered_set<std::uint64_t> cancelled_; // ids to skip at pop time
    std::uint64_t next_id_ = 1;
    std::size_t live_ = 0;
};

} // namespace routesync::sim
