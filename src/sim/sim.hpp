// Umbrella header for the discrete-event simulation engine.
#pragma once

#include "sim/engine.hpp"      // IWYU pragma: export
#include "sim/event_queue.hpp" // IWYU pragma: export
#include "sim/time.hpp"        // IWYU pragma: export
