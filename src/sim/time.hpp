// Simulation time.
//
// A strong type over double seconds: it cannot be mixed up with other
// doubles (rates, sizes, probabilities) at call sites, while remaining a
// trivially-copyable value type with the full arithmetic the simulations
// need. One type serves both time points and durations — the simulator
// convention (as in ns-2/ns-3), which keeps timer arithmetic direct.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>

namespace routesync::sim {

/// A point in simulation time, or a duration, in seconds.
class SimTime {
public:
    constexpr SimTime() noexcept = default;

    /// Named constructors make units explicit at call sites.
    static constexpr SimTime seconds(double s) noexcept { return SimTime{s}; }
    static constexpr SimTime millis(double ms) noexcept { return SimTime{ms * 1e-3}; }
    static constexpr SimTime micros(double us) noexcept { return SimTime{us * 1e-6}; }
    static constexpr SimTime zero() noexcept { return SimTime{0.0}; }
    static constexpr SimTime infinity() noexcept {
        return SimTime{std::numeric_limits<double>::infinity()};
    }

    [[nodiscard]] constexpr double sec() const noexcept { return s_; }
    [[nodiscard]] constexpr double ms() const noexcept { return s_ * 1e3; }
    [[nodiscard]] constexpr bool is_finite() const noexcept {
        return s_ < std::numeric_limits<double>::infinity() &&
               s_ > -std::numeric_limits<double>::infinity();
    }

    friend constexpr auto operator<=>(SimTime, SimTime) noexcept = default;

    constexpr SimTime& operator+=(SimTime rhs) noexcept {
        s_ += rhs.s_;
        return *this;
    }
    constexpr SimTime& operator-=(SimTime rhs) noexcept {
        s_ -= rhs.s_;
        return *this;
    }
    constexpr SimTime& operator*=(double k) noexcept {
        s_ *= k;
        return *this;
    }

    friend constexpr SimTime operator+(SimTime a, SimTime b) noexcept {
        return SimTime{a.s_ + b.s_};
    }
    friend constexpr SimTime operator-(SimTime a, SimTime b) noexcept {
        return SimTime{a.s_ - b.s_};
    }
    friend constexpr SimTime operator*(SimTime a, double k) noexcept {
        return SimTime{a.s_ * k};
    }
    friend constexpr SimTime operator*(double k, SimTime a) noexcept {
        return SimTime{k * a.s_};
    }
    friend constexpr SimTime operator/(SimTime a, double k) noexcept {
        return SimTime{a.s_ / k};
    }
    /// Ratio of two durations (dimensionless).
    friend constexpr double operator/(SimTime a, SimTime b) noexcept {
        return a.s_ / b.s_;
    }
    friend constexpr SimTime operator-(SimTime a) noexcept { return SimTime{-a.s_}; }

    /// a mod b, in [0, b) for b > 0 — used for phase offsets within a round.
    [[nodiscard]] SimTime mod(SimTime period) const noexcept {
        double r = std::fmod(s_, period.s_);
        if (r < 0) {
            r += period.s_;
        }
        return SimTime{r};
    }

private:
    explicit constexpr SimTime(double s) noexcept : s_{s} {}

    double s_ = 0.0;
};

/// User-defined literals: 3.5_sec, 200.0_msec.
namespace literals {
constexpr SimTime operator""_sec(long double s) noexcept {
    return SimTime::seconds(static_cast<double>(s));
}
constexpr SimTime operator""_sec(unsigned long long s) noexcept {
    return SimTime::seconds(static_cast<double>(s));
}
constexpr SimTime operator""_msec(long double ms) noexcept {
    return SimTime::millis(static_cast<double>(ms));
}
constexpr SimTime operator""_msec(unsigned long long ms) noexcept {
    return SimTime::millis(static_cast<double>(ms));
}
} // namespace literals

} // namespace routesync::sim
