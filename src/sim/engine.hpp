// The discrete-event simulation engine.
//
// A single-threaded event loop: callbacks scheduled at simulation times run
// in timestamp order (FIFO among equals), each seeing `now()` equal to its
// own timestamp. All simulators in this repository (the Periodic Messages
// model and the packet-level network) are built on this engine.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace routesync::obs {
class Tracer;
}

namespace routesync::sim {

class Engine {
public:
    using Callback = EventQueue::Callback;

    /// Schedules `cb` at absolute time `t`. Scheduling into the past (before
    /// `now()`) is a logic error and throws.
    EventHandle schedule_at(SimTime t, Callback cb);

    /// Schedules `cb` at now() + dt, dt >= 0.
    EventHandle schedule_after(SimTime dt, Callback cb);

    /// Cancels a pending event; returns false if it already fired.
    bool cancel(EventHandle h) { return queue_.cancel(h); }

    /// Current simulation time.
    [[nodiscard]] SimTime now() const noexcept { return now_; }

    /// Runs a single event. Returns false (and leaves `now()` unchanged)
    /// when the queue is empty.
    bool step();

    /// Runs until the queue drains or stop() is called.
    void run();

    /// Runs every event with timestamp <= `t`, then advances `now()` to `t`
    /// (even if the queue still holds later events). Returns early if
    /// stop() is called.
    void run_until(SimTime t);

    /// Requests the current run()/run_until() to return after the active
    /// callback completes. Callable from inside callbacks.
    void stop() noexcept { stopped_ = true; }

    [[nodiscard]] bool stop_requested() const noexcept { return stopped_; }

    /// Clears a previous stop request so the engine can be driven further.
    void clear_stop() noexcept { stopped_ = false; }

    /// Total callbacks executed so far.
    [[nodiscard]] std::uint64_t events_processed() const noexcept { return processed_; }

    /// True when a live event is pending at a timestamp <= now() — i.e.
    /// the next pop would fire without advancing the clock. DelayLink's
    /// batched drain uses this to prove that running its
    /// transmitter-free cascade inline cannot reorder any event.
    /// May report true for an already-cancelled event (next_time_bound is
    /// a lower bound) — callers use it to gate optimizations, where a
    /// false "busy" only forfeits the shortcut.
    [[nodiscard]] bool has_event_at_now() const noexcept {
        return !queue_.empty() && queue_.next_time_bound() <= now_;
    }

    /// Live (pending, non-cancelled) events.
    [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.size(); }

    /// Occupancy of the underlying event queue (live / tombstones / heap).
    [[nodiscard]] EventQueueStats queue_stats() const noexcept {
        return queue_.stats();
    }

    /// Attaches (or detaches, with nullptr) a trace event sink. Components
    /// built on this engine emit typed trace events through it; a null
    /// tracer — the default — makes every emission a single pointer test.
    void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

    [[nodiscard]] obs::Tracer* tracer() const noexcept { return tracer_; }

private:
    EventQueue queue_;
    obs::Tracer* tracer_ = nullptr;
    SimTime now_ = SimTime::zero();
    std::uint64_t processed_ = 0;
    bool stopped_ = false;
};

} // namespace routesync::sim
