#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace routesync::sim {

std::uint32_t EventQueue::acquire_slot() {
    if (!free_slots_.empty()) {
        const std::uint32_t slot = free_slots_.back();
        free_slots_.pop_back();
        slots_[slot].state = SlotState::Live;
        slots_[slot].next = kNoChain;
        return slot;
    }
    if (slots_.size() > kSlotMask) {
        throw std::length_error{"EventQueue: too many pending events"};
    }
    slots_.push_back(Slot{});
    return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t slot) noexcept {
    // Bumping the generation invalidates every outstanding handle to the
    // slot before it is recycled. (On cancel the generation was already
    // bumped; the extra bump here is still correct and keeps release
    // unconditional.)
    Slot& s = slots_[slot];
    ++s.gen;
    s.callback = nullptr;
    // A recycled slot must never be appended to: close any chain whose
    // tail this was.
    if (ways_[0].tail == slot) {
        ways_[0].tail = kNoChain;
    }
    if (ways_[1].tail == slot) {
        ways_[1].tail = kNoChain;
    }
    free_slots_.push_back(slot);
}

void EventQueue::sift_up(std::size_t i) noexcept {
    Entry* const heap = heap_.data();
    const Entry e = heap[i];
    while (i > 0) {
        const std::size_t parent = (i - 1) / kArity;
        if (e >= heap[parent]) {
            break;
        }
        heap[i] = heap[parent];
        i = parent;
    }
    heap[i] = e;
}

void EventQueue::sift_down(std::size_t i) noexcept {
    Entry* const heap = heap_.data();
    const Entry e = heap[i];
    const std::size_t n = heap_.size();
    for (;;) {
        const std::size_t first = i * kArity + 1;
        if (first >= n) {
            break;
        }
        std::size_t best = first;
        const std::size_t last = std::min(first + kArity, n);
        if (last - first == kArity) {
            // Full group (the common case): a pairwise min-tree. The
            // 128-bit integer compares are branchless, so these selects
            // compile to cmovs instead of unpredictable branches.
            const std::size_t b01 =
                heap[first + 1] < heap[first] ? first + 1 : first;
            const std::size_t b23 =
                heap[first + 3] < heap[first + 2] ? first + 3 : first + 2;
            best = heap[b23] < heap[b01] ? b23 : b01;
        } else {
            for (std::size_t c = first + 1; c < last; ++c) {
                if (heap[c] < heap[best]) {
                    best = c;
                }
            }
        }
        if (heap[best] >= e) {
            break;
        }
        heap[i] = heap[best];
        i = best;
    }
    heap[i] = e;
}

void EventQueue::drop_root() noexcept {
    // Bottom-up deletion (Wegener): the replacement element comes from
    // the heap's last position — a leaf, so it almost always belongs back
    // near the leaves. Walk the hole down the min-child path without
    // comparing against the replacement (saving a compare per level),
    // then sift the replacement up from the bottom (O(1) expected).
    const Entry back = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n == 0) {
        return;
    }
    Entry* const heap = heap_.data();
    std::size_t hole = 0;
    for (;;) {
        const std::size_t first = hole * kArity + 1;
        if (first >= n) {
            break;
        }
        std::size_t best = first;
        const std::size_t last = std::min(first + kArity, n);
        if (last - first == kArity) {
            // The walk is cache-miss bound on deep heaps: each level lands
            // on a fresh line. Start the grandchild loads now, while this
            // level's compares run — whichever child wins, its children
            // are already in flight.
            const std::size_t grand = first * kArity + 1;
            if (grand + 3 * kArity < n) {
                __builtin_prefetch(&heap[grand]);
                __builtin_prefetch(&heap[grand + kArity]);
                __builtin_prefetch(&heap[grand + 2 * kArity]);
                __builtin_prefetch(&heap[grand + 3 * kArity]);
            }
            const std::size_t b01 =
                heap[first + 1] < heap[first] ? first + 1 : first;
            const std::size_t b23 =
                heap[first + 3] < heap[first + 2] ? first + 3 : first + 2;
            best = heap[b23] < heap[b01] ? b23 : b01;
        } else {
            for (std::size_t c = first + 1; c < last; ++c) {
                if (heap[c] < heap[best]) {
                    best = c;
                }
            }
        }
        heap[hole] = heap[best];
        hole = best;
    }
    heap[hole] = back;
    sift_up(hole);
}

void EventQueue::materialize_chains() {
    const std::size_t n = heap_.size();
    for (std::size_t i = 0; i < n; ++i) {
        const Entry time = heap_[i] >> 64 << 64;
        std::uint32_t s = slot_of(heap_[i]);
        std::uint32_t next = slots_[s].next;
        slots_[s].next = kNoChain;
        while (next != kNoChain) {
            heap_.push_back((time | (Entry{slots_[next].seq} << kSlotBits)) |
                            next);
            s = next;
            next = slots_[s].next;
            slots_[s].next = kNoChain;
        }
    }
    ways_[0] = ChainWay{};
    ways_[1] = ChainWay{};
}

void EventQueue::renumber() {
    // A key-sorted array is a valid d-ary min-heap, so rebuild by
    // sorting: relative order (and thus FIFO among equal times) is
    // preserved, and fresh dense seqs leave room for another 2^42 pushes.
    materialize_chains();
    std::sort(heap_.begin(), heap_.end());
    std::uint64_t seq = 1;
    for (Entry& e : heap_) {
        const Entry time_and_slot =
            (e >> 64 << 64) | (static_cast<std::uint64_t>(e) & kSlotMask);
        slots_[slot_of(e)].seq = seq;
        e = time_and_slot | (Entry{seq++} << kSlotBits);
    }
    next_seq_ = seq;
}

EventHandle EventQueue::push(SimTime t, Callback cb) {
    if (!cb) {
        throw std::invalid_argument{"EventQueue::push: empty callback"};
    }
    if (next_seq_ > kMaxSeq) {
        renumber();
    }
    const std::uint64_t tb = time_bits(t);
    const std::uint32_t slot = acquire_slot();
    Slot& s = slots_[slot];
    s.callback = std::move(cb);
    s.seq = next_seq_++;
    ++live_;
    // Duplicate-time chaining: append to an open chain for this
    // timestamp instead of growing the heap (file comment).
    for (std::uint8_t w = 0; w < 2; ++w) {
        ChainWay& way = ways_[w];
        if (way.tail != kNoChain && way.time_bits == tb) {
            slots_[way.tail].next = slot;
            way.tail = slot;
            way_mru_ = w;
            return make_handle(slot, s.gen);
        }
    }
    heap_.push_back((Entry{tb} << 64) | (s.seq << kSlotBits) | slot);
    sift_up(heap_.size() - 1);
    // This entry opens a chain for its timestamp, evicting the
    // least-recently-used way.
    way_mru_ = static_cast<std::uint8_t>(1 - way_mru_);
    ways_[way_mru_] = ChainWay{tb, slot};
    return make_handle(slot, s.gen);
}

bool EventQueue::cancel(EventHandle h) {
    const auto slot = static_cast<std::uint32_t>(h.id >> 32);
    const auto gen = static_cast<std::uint32_t>(h.id & 0xffffffffU);
    if (slot >= slots_.size()) {
        return false; // bogus handle
    }
    Slot& s = slots_[slot];
    if (s.state != SlotState::Live || s.gen != gen) {
        return false; // already fired, already cancelled, or stale handle
    }
    s.state = SlotState::Cancelled;
    ++s.gen;              // invalidate the handle immediately
    s.callback = nullptr; // release captured resources now, not at reclaim
    --live_;
    ++tombstones_;
    const std::size_t entries = live_ + tombstones_;
    if (tombstones_ > entries / 2 && entries >= kCompactMinHeap) {
        compact();
    }
    return true;
}

void EventQueue::compact() {
    // Chained entries are invisible to the heap filter below; expand
    // them first so one pass reclaims every tombstone.
    materialize_chains();
    const auto cancelled = [this](Entry e) {
        return slots_[slot_of(e)].state == SlotState::Cancelled;
    };
    for (const Entry e : heap_) {
        if (cancelled(e)) {
            release_slot(slot_of(e));
        }
    }
    heap_.erase(std::remove_if(heap_.begin(), heap_.end(), cancelled), heap_.end());
    // Floyd heapify: sift every internal node down, deepest first.
    if (heap_.size() > 1) {
        for (std::size_t i = (heap_.size() - 2) / kArity + 1; i-- > 0;) {
            sift_down(i);
        }
    }
    tombstones_ = 0;
}

void EventQueue::skip_cancelled() {
    while (!heap_.empty() &&
           slots_[slot_of(heap_.front())].state == SlotState::Cancelled) {
        const std::uint32_t slot = slot_of(heap_.front());
        const std::uint32_t next = slots_[slot].next;
        release_slot(slot);
        if (next != kNoChain) {
            advance_chain_root(next);
        } else {
            drop_root();
        }
        --tombstones_;
    }
}

SimTime EventQueue::next_time() {
    skip_cancelled();
    assert(!heap_.empty() && "next_time() on empty queue");
    return entry_time(heap_.front());
}

EventQueue::Popped EventQueue::pop() {
    skip_cancelled();
    assert(!heap_.empty() && "pop() on empty queue");
    const Entry top = heap_.front();
    const std::uint32_t slot = slot_of(top);
    Popped out{entry_time(top), std::move(slots_[slot].callback)};
    const std::uint32_t next = slots_[slot].next;
    release_slot(slot);
    if (next != kNoChain) {
        // O(1): the next chain member takes the root in place.
        advance_chain_root(next);
    } else {
        drop_root();
    }
    --live_;
    return out;
}

} // namespace routesync::sim
