#include "sim/event_queue.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace routesync::sim {

EventHandle EventQueue::push(SimTime t, Callback cb) {
    if (!cb) {
        throw std::invalid_argument{"EventQueue::push: empty callback"};
    }
    const std::uint64_t id = next_id_++;
    heap_.push(Entry{t, id, id, std::move(cb)});
    pending_.insert(id);
    ++live_;
    return EventHandle{id};
}

bool EventQueue::cancel(EventHandle h) {
    const auto it = pending_.find(h.id);
    if (it == pending_.end()) {
        return false; // already fired, already cancelled, or bogus handle
    }
    pending_.erase(it);
    cancelled_.insert(h.id);
    --live_;
    return true;
}

void EventQueue::skip_cancelled() {
    while (!heap_.empty()) {
        const auto it = cancelled_.find(heap_.top().id);
        if (it == cancelled_.end()) {
            return;
        }
        cancelled_.erase(it);
        heap_.pop();
    }
}

SimTime EventQueue::next_time() {
    skip_cancelled();
    assert(!heap_.empty() && "next_time() on empty queue");
    return heap_.top().time;
}

EventQueue::Popped EventQueue::pop() {
    skip_cancelled();
    assert(!heap_.empty() && "pop() on empty queue");
    // priority_queue::top() returns const&; the callback must be moved out,
    // so const_cast on the about-to-be-popped element is the standard
    // workaround (the element is removed immediately after).
    auto& top = const_cast<Entry&>(heap_.top());
    Popped out{top.time, std::move(top.callback)};
    pending_.erase(top.id);
    heap_.pop();
    --live_;
    return out;
}

} // namespace routesync::sim
