// Distance-vector routing table (RIP-style semantics).
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace routesync::routing {

struct Route {
    net::NodeId dest;
    int metric;          ///< hop count; >= infinity means unreachable
    int iface;           ///< outgoing interface (-1 for the self route)
    net::NodeId next_hop; ///< advertising neighbour (-1 for local routes)
    sim::SimTime refreshed; ///< last advertisement that confirmed the route
    bool local = false;     ///< self / directly-attached: never times out
    /// Advertisements for this destination are ignored until this time
    /// (IGRP-style holddown after loss; zero = not held down).
    sim::SimTime holddown_until = sim::SimTime::zero();
};

/// Flat map of routes: a vector kept sorted by destination. Iteration is
/// ascending by dest — the same deterministic order the previous
/// std::map gave — but lookups are a cache-friendly binary search over
/// contiguous memory and a full-table walk is a linear scan, which is
/// what the DV agent does on every periodic update.
///
/// Pointer/iterator validity: find() results are invalidated by upsert,
/// erase, erase_if, and insert_sorted_batch (vector reallocation /
/// element shifting) — unlike the old node-based map. Callers batch
/// insertions (insert_sorted_batch) instead of holding pointers across
/// mutations.
class RoutingTable {
public:
    /// Inserts or replaces. O(log n) to locate + O(n) shift on insert.
    void upsert(const Route& r) {
        const auto it = lower_bound(r.dest);
        if (it != routes_.end() && it->dest == r.dest) {
            *it = r;
        } else {
            routes_.insert(it, r);
        }
    }

    void erase(net::NodeId dest) {
        const auto it = lower_bound(dest);
        if (it != routes_.end() && it->dest == dest) {
            routes_.erase(it);
        }
    }

    /// Single-pass in-order compaction: `pred` is invoked exactly once
    /// per route in ascending-dest order (and may mutate the route);
    /// routes it returns true for are removed. Returns the number
    /// removed. This is the bulk form of erase() — O(n) total instead of
    /// O(n) per removal.
    template <typename Pred>
    std::size_t erase_if(Pred pred) {
        auto out = routes_.begin();
        for (auto it = routes_.begin(); it != routes_.end(); ++it) {
            if (!pred(*it)) {
                if (out != it) {
                    *out = std::move(*it);
                }
                ++out;
            }
        }
        const auto removed = static_cast<std::size_t>(routes_.end() - out);
        routes_.erase(out, routes_.end());
        return removed;
    }

    /// Bulk-merges routes whose destinations are not present yet (the
    /// fast path of a full-table update: a burst of new routes arrives
    /// sorted). `batch` must be sorted ascending by dest with no
    /// duplicates against itself or the table. One O(n + k) merge instead
    /// of k O(n) shifting inserts.
    void insert_sorted_batch(std::vector<Route>&& batch) {
        if (batch.empty()) {
            return;
        }
        if (routes_.empty()) {
            routes_ = std::move(batch);
            return;
        }
        const auto middle = routes_.size();
        routes_.insert(routes_.end(), std::make_move_iterator(batch.begin()),
                       std::make_move_iterator(batch.end()));
        std::inplace_merge(
            routes_.begin(), routes_.begin() + static_cast<std::ptrdiff_t>(middle),
            routes_.end(),
            [](const Route& a, const Route& b) { return a.dest < b.dest; });
    }

    [[nodiscard]] Route* find(net::NodeId dest) {
        const auto it = lower_bound(dest);
        return it != routes_.end() && it->dest == dest ? &*it : nullptr;
    }
    [[nodiscard]] const Route* find(net::NodeId dest) const {
        const auto it = lower_bound(dest);
        return it != routes_.end() && it->dest == dest ? &*it : nullptr;
    }

    [[nodiscard]] std::size_t size() const noexcept { return routes_.size(); }
    [[nodiscard]] bool empty() const noexcept { return routes_.empty(); }
    void reserve(std::size_t n) { routes_.reserve(n); }

    /// Iteration yields Route& in ascending-dest order.
    [[nodiscard]] auto begin() const noexcept { return routes_.begin(); }
    [[nodiscard]] auto end() const noexcept { return routes_.end(); }
    [[nodiscard]] auto begin() noexcept { return routes_.begin(); }
    [[nodiscard]] auto end() noexcept { return routes_.end(); }

private:
    [[nodiscard]] std::vector<Route>::iterator lower_bound(net::NodeId dest) {
        return std::lower_bound(
            routes_.begin(), routes_.end(), dest,
            [](const Route& r, net::NodeId d) { return r.dest < d; });
    }
    [[nodiscard]] std::vector<Route>::const_iterator lower_bound(net::NodeId dest) const {
        return std::lower_bound(
            routes_.begin(), routes_.end(), dest,
            [](const Route& r, net::NodeId d) { return r.dest < d; });
    }

    std::vector<Route> routes_; ///< sorted ascending by dest
};

} // namespace routesync::routing
