// Distance-vector routing table (RIP-style semantics).
#pragma once

#include <map>
#include <optional>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace routesync::routing {

struct Route {
    net::NodeId dest;
    int metric;          ///< hop count; >= infinity means unreachable
    int iface;           ///< outgoing interface (-1 for the self route)
    net::NodeId next_hop; ///< advertising neighbour (-1 for local routes)
    sim::SimTime refreshed; ///< last advertisement that confirmed the route
    bool local = false;     ///< self / directly-attached: never times out
    /// Advertisements for this destination are ignored until this time
    /// (IGRP-style holddown after loss; zero = not held down).
    sim::SimTime holddown_until = sim::SimTime::zero();
};

/// Ordered map of routes keyed by destination. std::map keeps update
/// contents and iteration deterministic.
class RoutingTable {
public:
    /// Inserts or replaces.
    void upsert(const Route& r) { routes_[r.dest] = r; }
    void erase(net::NodeId dest) { routes_.erase(dest); }

    [[nodiscard]] Route* find(net::NodeId dest) {
        const auto it = routes_.find(dest);
        return it == routes_.end() ? nullptr : &it->second;
    }
    [[nodiscard]] const Route* find(net::NodeId dest) const {
        const auto it = routes_.find(dest);
        return it == routes_.end() ? nullptr : &it->second;
    }

    [[nodiscard]] std::size_t size() const noexcept { return routes_.size(); }

    [[nodiscard]] auto begin() const noexcept { return routes_.begin(); }
    [[nodiscard]] auto end() const noexcept { return routes_.end(); }
    [[nodiscard]] auto begin() noexcept { return routes_.begin(); }
    [[nodiscard]] auto end() noexcept { return routes_.end(); }

private:
    std::map<net::NodeId, Route> routes_;
};

} // namespace routesync::routing
