// A distance-vector routing agent (RIP-like), attached to a net::Router.
//
// Implements the protocol family the paper studies (RIP, IGRP, DECnet DNA
// Phase IV, EGP, Hello): full-table advertisements at periodic intervals,
// Bellman-Ford relaxation with a small "infinity", split horizon
// (optionally with poisoned reverse), route timeout and garbage
// collection, and triggered updates on topology change.
//
// The synchronization-relevant behaviour is the *timer reset rule*
// (paper Section 3):
//
//   TimerReset::AfterProcessing — the Periodic Messages model: the timer
//     is re-armed only when the router's CPU finishes preparing the
//     outgoing update AND digesting every update that arrived meanwhile.
//     This couples the routers and lets update storms synchronize.
//
//   TimerReset::AtExpiry — the RFC 1058 alternative ("triggered by a
//     clock that is not affected by the time required to service the
//     previous message"): the timer is re-armed the instant it fires, and
//     triggered updates do not reset it. No coupling — but also no
//     mechanism to break up clusters that exist at start.
//
// Every update costs CPU time on the receiving router
// (fixed_update_cost + per_route_cost * routes), which is what stalls
// forwarding on blocking routers and produces the paper's Figure 1/3 loss
// spikes.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "net/router.hpp"
#include "routing/routing_table.hpp"
#include "rng/rng.hpp"

namespace routesync::routing {

enum class TimerReset {
    AfterProcessing, ///< Periodic Messages model (synchronizing)
    AtExpiry,        ///< free-running clock (RFC 1058 suggestion)
};

struct DvConfig {
    sim::SimTime period = sim::SimTime::seconds(30);  ///< Tp
    sim::SimTime jitter = sim::SimTime::zero();       ///< Tr: U[Tp-Tr, Tp+Tr]
    TimerReset reset = TimerReset::AfterProcessing;
    int infinity = 16;
    bool split_horizon = true;
    bool poisoned_reverse = false;
    bool triggered_updates = true;
    sim::SimTime route_timeout = sim::SimTime::seconds(180);
    sim::SimTime gc_timeout = sim::SimTime::seconds(120);
    /// CPU cost model: cost = fixed + per_route * advertised routes.
    sim::SimTime per_route_cost = sim::SimTime::millis(1);
    sim::SimTime fixed_update_cost = sim::SimTime::millis(10);
    /// Simulated backbone routes carried in every update beyond this
    /// topology's own (NEARnet-style full tables: they inflate processing
    /// cost and update size).
    int filler_routes = 0;
    /// Maximum routes per update packet; 0 sends the whole table in one
    /// packet. RIP's datagram format carries at most 25 routes, so a
    /// 300-route table streams as 13 packets — the multi-packet update the
    /// paper's model assumes.
    int routes_per_packet = 0;
    /// BGP-style operation (the paper's footnote 3: "BGP ... only requires
    /// routers to send incremental update messages"): the first periodic
    /// update exchanges the full table (session establishment), subsequent
    /// periodic updates are route-less keepalives, and changes go out as
    /// incremental updates carrying only the changed routes. Receiving any
    /// message from a neighbour refreshes every route through it (hold
    /// timer). This removes the periodic full-table CPU storm entirely.
    bool incremental = false;
    /// IGRP-style holddown: after a route is lost, alternative
    /// advertisements for it are ignored for this long (guards against
    /// believing a neighbour that has not yet heard the bad news).
    /// Zero disables.
    sim::SimTime holddown = sim::SimTime::zero();
    std::uint32_t header_bytes = 24;
    std::uint32_t bytes_per_route = 20;
    std::uint64_t seed = 1;
};

struct DvStats {
    std::uint64_t periodic_updates_sent = 0;
    std::uint64_t triggered_updates_sent = 0;
    std::uint64_t updates_processed = 0;
    std::uint64_t routes_timed_out = 0;
    std::uint64_t timer_arms = 0;
};

class DistanceVectorAgent {
public:
    /// `attached` — directly connected stub destinations (hosts) as
    /// (node id, interface) pairs; advertised with metric 1 and installed
    /// in the FIB immediately.
    DistanceVectorAgent(net::Router& router, const DvConfig& config,
                        std::vector<std::pair<net::NodeId, int>> attached = {});

    DistanceVectorAgent(const DistanceVectorAgent&) = delete;
    DistanceVectorAgent& operator=(const DistanceVectorAgent&) = delete;

    /// Arms the first timer at `first_expiry` (absolute). Synchronized
    /// networks pass the same instant to every agent; unsynchronized ones
    /// pass uniform random phases.
    void start(sim::SimTime first_expiry);

    /// Signals the loss of the link on `iface` (carrier drop): every route
    /// through it goes to infinity and, if enabled, a triggered update
    /// follows — the paper's "wave of triggered updates".
    void link_down(int iface);

    [[nodiscard]] const RoutingTable& table() const noexcept { return table_; }
    [[nodiscard]] const DvStats& stats() const noexcept { return stats_; }
    [[nodiscard]] const DvConfig& config() const noexcept { return config_; }
    /// Timer-set instants (for cluster analysis of the packet world).
    std::function<void(sim::SimTime)> on_timer_set;

private:
    void timer_expired();
    void arm_timer_after_processing();
    void arm_timer(sim::SimTime interval_from_now);
    [[nodiscard]] sim::SimTime draw_interval();

    /// What a given transmission carries (incremental mode distinguishes
    /// session establishment, keepalives, and change-only updates).
    enum class UpdateKind { Full, Keepalive, Incremental };

    /// Sends an update immediately and charges the route processor for it.
    void send_update(bool triggered);
    void do_send(UpdateKind kind, bool triggered);
    /// The update for one interface, split into routes_per_packet-sized
    /// fragments (one element when fragmentation is off).
    [[nodiscard]] std::vector<net::Packet> build_update(int out_iface,
                                                        UpdateKind kind,
                                                        bool triggered) const;

    void handle_update_packet(const net::Packet& p, int iface);
    void process_update(const net::UpdatePayload& update, int iface);
    void expire_routes();
    void schedule_triggered_update();

    [[nodiscard]] int advertised_route_count() const;

    net::Router& router_;
    DvConfig config_;
    RoutingTable table_;
    rng::DefaultEngine gen_;
    DvStats stats_;
    bool started_ = false;
    bool rearm_waiting_ = false;     ///< when_cpu_idle re-arm in flight
    bool triggered_pending_ = false; ///< triggered update queued on CPU
    sim::EventHandle timer_event_{}; ///< pending periodic expiry
    bool timer_armed_ = false;
    bool session_established_ = false; ///< incremental mode: full table sent
    std::set<net::NodeId> changed_;    ///< destinations awaiting incremental send
};

} // namespace routesync::routing
