// Protocol profiles: representative parameterizations of the periodic
// routing protocols the paper names (Section 3), expressed as DvConfig
// presets. Periods are the protocols' documented defaults; CPU costs
// follow the paper's measurements (1 ms per route on the PARC ciscos,
// Section 1).
#pragma once

#include <string>

#include "routing/dv_agent.hpp"

namespace routesync::routing {

struct ProtocolProfile {
    std::string name;
    DvConfig config;
};

/// RIP (RFC 1058): 30 s updates, infinity 16, 180 s timeout, 120 s GC.
[[nodiscard]] ProtocolProfile rip_profile();

/// IGRP: 90 s updates (the NEARnet protocol behind Figures 1-2),
/// 270 s timeout.
[[nodiscard]] ProtocolProfile igrp_profile();

/// DECnet DNA Phase IV: 120 s updates (the protocol whose synchronization
/// on the authors' LAN started this work; the model's Tp = 121 s mimics
/// its 120 s timer).
[[nodiscard]] ProtocolProfile decnet_profile();

/// EGP: 180 s update messages (NSFNET backbone <-> regionals).
[[nodiscard]] ProtocolProfile egp_profile();

/// Hello (RFC 891 DCN): short-period updates; representative 15 s.
[[nodiscard]] ProtocolProfile hello_profile();

/// BGP-like incremental operation (the paper's footnote 3: "BGP ... only
/// requires routers to send incremental update messages"): 30 s
/// keepalives, 90 s hold time, change-only updates.
[[nodiscard]] ProtocolProfile bgp_like_profile();

} // namespace routesync::routing
