#include "routing/dv_agent.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "obs/profiler.hpp"
#include "obs/tracer.hpp"

namespace routesync::routing {

DistanceVectorAgent::DistanceVectorAgent(
    net::Router& router, const DvConfig& config,
    std::vector<std::pair<net::NodeId, int>> attached)
    : router_{router}, config_{config}, gen_{config.seed} {
    if (config_.period <= sim::SimTime::zero()) {
        throw std::invalid_argument{"DvConfig: period must be positive"};
    }
    if (config_.jitter < sim::SimTime::zero() || config_.jitter > config_.period) {
        throw std::invalid_argument{"DvConfig: need 0 <= jitter <= period"};
    }
    if (config_.infinity < 2) {
        throw std::invalid_argument{"DvConfig: infinity must be >= 2"};
    }

    // Self route: advertised with metric 0 so neighbours learn metric 1.
    table_.upsert(Route{.dest = router_.id(),
                        .metric = 0,
                        .iface = -1,
                        .next_hop = -1,
                        .refreshed = sim::SimTime::zero(),
                        .local = true});
    for (const auto& [dest, iface] : attached) {
        table_.upsert(Route{.dest = dest,
                            .metric = 1,
                            .iface = iface,
                            .next_hop = -1,
                            .refreshed = sim::SimTime::zero(),
                            .local = true});
        router_.set_route(dest, iface);
    }

    router_.on_routing_update = [this](const net::Packet& p, int iface) {
        handle_update_packet(p, iface);
    };
}

void DistanceVectorAgent::start(sim::SimTime first_expiry) {
    if (started_) {
        throw std::logic_error{"DistanceVectorAgent: already started"};
    }
    started_ = true;
    router_.engine().schedule_at(first_expiry, [this] { timer_expired(); });
}

sim::SimTime DistanceVectorAgent::draw_interval() {
    if (config_.jitter == sim::SimTime::zero()) {
        return config_.period;
    }
    return sim::SimTime::seconds(rng::uniform_real(
        gen_, (config_.period - config_.jitter).sec(),
        (config_.period + config_.jitter).sec()));
}

void DistanceVectorAgent::arm_timer(sim::SimTime interval_from_now) {
    assert(!timer_armed_ && "periodic timer already armed");
    ++stats_.timer_arms;
    if (on_timer_set) {
        on_timer_set(router_.engine().now());
    }
    if (obs::Tracer* tr = router_.engine().tracer()) {
        tr->emit(obs::TraceEventType::TimerSet, router_.engine().now(),
                 router_.id(), 0, interval_from_now.sec());
    }
    timer_event_ =
        router_.engine().schedule_after(interval_from_now, [this] { timer_expired(); });
    timer_armed_ = true;
}

void DistanceVectorAgent::arm_timer_after_processing() {
    if (rearm_waiting_) {
        return; // a re-arm is already chasing the current busy period
    }
    rearm_waiting_ = true;
    router_.when_cpu_idle([this] {
        rearm_waiting_ = false;
        arm_timer(draw_interval());
    });
}

void DistanceVectorAgent::timer_expired() {
    timer_armed_ = false;
    if (obs::Tracer* tr = router_.engine().tracer()) {
        tr->emit(obs::TraceEventType::TimerFire, router_.engine().now(),
                 router_.id());
    }
    if (config_.reset == TimerReset::AtExpiry) {
        // Free-running clock: re-arm immediately, before any processing.
        arm_timer(draw_interval());
    }
    expire_routes();
    send_update(/*triggered=*/false);
    if (config_.reset == TimerReset::AfterProcessing) {
        arm_timer_after_processing();
    }
}

int DistanceVectorAgent::advertised_route_count() const {
    return static_cast<int>(table_.size()) + config_.filler_routes;
}

void DistanceVectorAgent::send_update(bool triggered) {
    OBS_PROF_SCOPE("dv.send_update");
    UpdateKind kind = UpdateKind::Full;
    if (config_.incremental) {
        if (triggered) {
            kind = UpdateKind::Incremental;
        } else if (session_established_) {
            kind = UpdateKind::Keepalive;
        }
        // else: the first periodic update establishes the session with a
        // full table.
    }

    // The update goes on the wire at once; the route processor is then
    // busy for the preparation/transmission cost. (Matches the Periodic
    // Messages model's zero-transmission-time assumption: a multi-packet
    // update streams out while the CPU works, so receivers start
    // processing at the sender's timer expiry, not after it.)
    int route_count = 0;
    switch (kind) {
    case UpdateKind::Full:
        route_count = advertised_route_count();
        break;
    case UpdateKind::Keepalive:
        route_count = 0;
        break;
    case UpdateKind::Incremental:
        route_count = static_cast<int>(changed_.size());
        break;
    }
    if (obs::Tracer* tr = router_.engine().tracer()) {
        tr->emit(obs::TraceEventType::UpdateTx, router_.engine().now(),
                 router_.id(), route_count, triggered ? 1.0 : 0.0);
    }
    do_send(kind, triggered);
    const sim::SimTime cost =
        config_.fixed_update_cost +
        config_.per_route_cost * static_cast<double>(route_count);
    router_.schedule_cpu_work(cost, [] {});
}

void DistanceVectorAgent::do_send(UpdateKind kind, bool triggered) {
    if (!config_.split_horizon && router_.iface_count() > 0) {
        // Without split horizon every interface advertises the same
        // routes, so build the fragments once and share their pooled
        // payloads across all interfaces — a broadcast of N copies is N
        // refcount bumps on one allocation.
        auto fragments = build_update(0, kind, triggered);
        for (int iface = 0; iface < router_.iface_count(); ++iface) {
            for (const auto& fragment : fragments) {
                net::Packet copy = fragment; // shares the payload slot
                copy.dst = router_.neighbor(iface);
                router_.send_on(iface, std::move(copy));
            }
        }
    } else {
        for (int iface = 0; iface < router_.iface_count(); ++iface) {
            for (auto& fragment : build_update(iface, kind, triggered)) {
                router_.send_on(iface, std::move(fragment));
            }
        }
    }
    if (kind == UpdateKind::Full) {
        session_established_ = true;
    }
    if (kind != UpdateKind::Keepalive) {
        changed_.clear();
    }
    if (triggered) {
        triggered_pending_ = false;
        ++stats_.triggered_updates_sent;
    } else {
        ++stats_.periodic_updates_sent;
    }
}

std::vector<net::Packet> DistanceVectorAgent::build_update(int out_iface,
                                                           UpdateKind kind,
                                                           bool triggered) const {
    std::vector<net::RouteEntry> entries;
    if (kind == UpdateKind::Incremental) {
        for (const net::NodeId dest : changed_) {
            const Route* route = table_.find(dest);
            if (route == nullptr) {
                entries.push_back(net::RouteEntry{dest, config_.infinity});
                continue;
            }
            if (config_.split_horizon && !route->local &&
                route->iface == out_iface) {
                if (config_.poisoned_reverse) {
                    entries.push_back(net::RouteEntry{dest, config_.infinity});
                }
                continue;
            }
            entries.push_back(net::RouteEntry{dest, route->metric});
        }
    } else if (kind == UpdateKind::Full) {
        for (const Route& route : table_) {
            if (config_.split_horizon && !route.local && route.iface == out_iface) {
                if (config_.poisoned_reverse) {
                    entries.push_back(net::RouteEntry{route.dest, config_.infinity});
                }
                continue;
            }
            entries.push_back(net::RouteEntry{route.dest, route.metric});
        }
    }
    // Keepalive: no entries at all.

    const int filler = kind == UpdateKind::Full ? config_.filler_routes : 0;
    const int total = static_cast<int>(entries.size()) + filler;
    const int per_packet = config_.routes_per_packet > 0
                               ? config_.routes_per_packet
                               : std::max(total, 1);

    std::vector<net::Packet> fragments;
    int entry_cursor = 0;
    int filler_left = filler;
    while (entry_cursor < static_cast<int>(entries.size()) || filler_left > 0 ||
           fragments.empty()) {
        net::PayloadRef ref = net::PayloadPool::local().acquire();
        net::UpdatePayload& payload = ref.mutate();
        payload.sender = router_.id();
        payload.triggered = triggered;
        int room = per_packet;
        while (room > 0 && entry_cursor < static_cast<int>(entries.size())) {
            payload.entries.push_back(
                entries[static_cast<std::size_t>(entry_cursor)]);
            ++entry_cursor;
            --room;
        }
        const int filler_here = std::min(room, filler_left);
        payload.filler_routes = filler_here;
        filler_left -= filler_here;

        net::Packet p;
        p.type = net::PacketType::RoutingUpdate;
        p.src = router_.id();
        p.dst = router_.neighbor(out_iface);
        p.size_bytes =
            config_.header_bytes +
            config_.bytes_per_route *
                static_cast<std::uint32_t>(payload.total_routes());
        p.sent_at = router_.engine().now();
        p.update = std::move(ref);
        fragments.push_back(std::move(p));
    }
    return fragments;
}

void DistanceVectorAgent::handle_update_packet(const net::Packet& p, int iface) {
    if (!p.update) {
        return; // malformed; ignore
    }
    const sim::SimTime cost =
        config_.fixed_update_cost +
        config_.per_route_cost * static_cast<double>(p.update->total_routes());
    router_.schedule_cpu_work(cost, [this, payload = p.update, iface] {
        process_update(*payload, iface);
    });
}

void DistanceVectorAgent::process_update(const net::UpdatePayload& update, int iface) {
    OBS_PROF_SCOPE("dv.process_update");
    ++stats_.updates_processed;
    const sim::SimTime now = router_.engine().now();
    if (obs::Tracer* tr = router_.engine().tracer()) {
        tr->emit(obs::TraceEventType::UpdateRx, now, router_.id(), update.sender,
                 static_cast<double>(update.total_routes()));
    }
    bool changed = false;

    if (config_.incremental) {
        // Hold-timer semantics: any message from the neighbour (keepalive
        // or update) confirms every route through it.
        for (Route& route : table_) {
            if (!route.local && route.next_hop == update.sender) {
                route.refreshed = now;
            }
        }
    }

    // New destinations are batched and merged once at the end: a full
    // table arriving at an empty/partial table (session establishment,
    // cold convergence) is the bulk-insert case, and one O(n + k) merge
    // replaces k shifting inserts into the sorted vector.
    std::vector<Route> fresh;
    const auto find_fresh = [&fresh](net::NodeId dest) -> Route* {
        const auto it = std::lower_bound(
            fresh.begin(), fresh.end(), dest,
            [](const Route& r, net::NodeId d) { return r.dest < d; });
        return it != fresh.end() && it->dest == dest ? &*it : nullptr;
    };

    for (const auto& entry : update.entries) {
        if (entry.dest == router_.id()) {
            continue;
        }
        const int metric = std::min(entry.metric + 1, config_.infinity);
        Route* route = table_.find(entry.dest);
        if (route == nullptr) {
            route = find_fresh(entry.dest); // duplicate dest in one update
        }
        if (route == nullptr) {
            if (metric < config_.infinity) {
                const Route learned{.dest = entry.dest,
                                    .metric = metric,
                                    .iface = iface,
                                    .next_hop = update.sender,
                                    .refreshed = now,
                                    .local = false};
                if (fresh.empty() || fresh.back().dest < entry.dest) {
                    fresh.push_back(learned);
                } else {
                    // Out-of-order sender: keep the batch sorted.
                    fresh.insert(std::lower_bound(fresh.begin(), fresh.end(),
                                                  entry.dest,
                                                  [](const Route& r, net::NodeId d) {
                                                      return r.dest < d;
                                                  }),
                                 learned);
                }
                router_.set_route(entry.dest, iface);
                changed = true;
                changed_.insert(entry.dest);
            }
            continue;
        }
        if (route->local) {
            continue; // local routes outrank anything learned
        }
        if (route->next_hop == update.sender) {
            // Current next hop re-advertises: accept even a worse metric.
            route->refreshed = now;
            if (route->metric != metric) {
                route->metric = metric;
                changed = true;
                changed_.insert(entry.dest);
                if (metric >= config_.infinity) {
                    router_.clear_route(entry.dest);
                    route->holddown_until = now + config_.holddown;
                }
            }
        } else if (now < route->holddown_until) {
            // Holddown: ignore alternative paths until the bad news has
            // had time to propagate (IGRP-style).
            continue;
        } else if (metric < route->metric) {
            route->metric = metric;
            route->iface = iface;
            route->next_hop = update.sender;
            route->refreshed = now;
            router_.set_route(entry.dest, iface);
            changed = true;
            changed_.insert(entry.dest);
        }
    }

    table_.insert_sorted_batch(std::move(fresh));

    if (changed && config_.triggered_updates) {
        schedule_triggered_update();
    }
}

void DistanceVectorAgent::expire_routes() {
    OBS_PROF_SCOPE("dv.expire_routes");
    const sim::SimTime now = router_.engine().now();
    bool changed = false;
    // Single pass: time out stale routes in place and compact away the
    // ones whose GC timer ran down (bulk erase instead of per-dest
    // erases).
    table_.erase_if([&](Route& route) {
        if (route.local) {
            return false;
        }
        if (route.metric < config_.infinity &&
            now - route.refreshed > config_.route_timeout) {
            route.metric = config_.infinity;
            route.refreshed = now; // reused as the GC clock
            route.holddown_until = now + config_.holddown;
            router_.clear_route(route.dest);
            ++stats_.routes_timed_out;
            changed = true;
            changed_.insert(route.dest);
            return false;
        }
        return route.metric >= config_.infinity &&
               now - route.refreshed > config_.gc_timeout;
    });
    if (changed && config_.triggered_updates) {
        schedule_triggered_update();
    }
}

void DistanceVectorAgent::schedule_triggered_update() {
    if (triggered_pending_) {
        return;
    }
    triggered_pending_ = true;
    send_update(/*triggered=*/true);
    if (config_.reset == TimerReset::AfterProcessing) {
        // Periodic Messages model, step 4: a triggered update sends the
        // router back to step 1; the pending periodic timer is dropped and
        // re-armed after the busy period. (Under AtExpiry the clock is
        // left alone.)
        if (timer_armed_) {
            router_.engine().cancel(timer_event_);
            timer_armed_ = false;
            if (obs::Tracer* tr = router_.engine().tracer()) {
                tr->emit(obs::TraceEventType::TimerReset, router_.engine().now(),
                         router_.id());
            }
        }
        arm_timer_after_processing();
    }
}

void DistanceVectorAgent::link_down(int iface) {
    bool changed = false;
    for (Route& route : table_) {
        if (route.iface == iface && route.metric < config_.infinity) {
            route.metric = config_.infinity;
            route.refreshed = router_.engine().now();
            route.holddown_until = router_.engine().now() + config_.holddown;
            route.local = false; // attached stubs become expirable
            router_.clear_route(route.dest);
            changed = true;
            changed_.insert(route.dest);
        }
    }
    if (changed && config_.triggered_updates) {
        schedule_triggered_update();
    }
}

} // namespace routesync::routing
