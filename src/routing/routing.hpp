// Umbrella header for the distance-vector routing subsystem.
#pragma once

#include "routing/dv_agent.hpp"      // IWYU pragma: export
#include "routing/profiles.hpp"      // IWYU pragma: export
#include "routing/routing_table.hpp" // IWYU pragma: export
