#include "routing/profiles.hpp"

namespace routesync::routing {
namespace {

DvConfig base_config(double period_sec, int infinity) {
    DvConfig c;
    c.period = sim::SimTime::seconds(period_sec);
    c.route_timeout = sim::SimTime::seconds(period_sec * 6.0);
    c.gc_timeout = sim::SimTime::seconds(period_sec * 4.0);
    c.infinity = infinity;
    return c;
}

} // namespace

ProtocolProfile rip_profile() {
    DvConfig c = base_config(30.0, 16);
    c.route_timeout = sim::SimTime::seconds(180);
    c.gc_timeout = sim::SimTime::seconds(120);
    c.routes_per_packet = 25; // RIP datagram format limit
    return ProtocolProfile{"RIP", c};
}

ProtocolProfile igrp_profile() {
    DvConfig c = base_config(90.0, 100);
    c.route_timeout = sim::SimTime::seconds(270);
    c.holddown = sim::SimTime::seconds(280); // IGRP's holddown timer
    return ProtocolProfile{"IGRP", c};
}

ProtocolProfile decnet_profile() {
    return ProtocolProfile{"DECnet-DNA-IV", base_config(120.0, 31)};
}

ProtocolProfile egp_profile() {
    return ProtocolProfile{"EGP", base_config(180.0, 16)};
}

ProtocolProfile hello_profile() {
    return ProtocolProfile{"Hello", base_config(15.0, 16)};
}

ProtocolProfile bgp_like_profile() {
    DvConfig c = base_config(30.0, 64);
    c.incremental = true;
    c.route_timeout = sim::SimTime::seconds(90); // hold time
    c.gc_timeout = sim::SimTime::seconds(60);
    return ProtocolProfile{"BGP-like", c};
}

} // namespace routesync::routing
