#include "obs/metrics.hpp"

#include <stdexcept>

#include "obs/json.hpp"

namespace routesync::obs {

std::uint64_t HistogramSnapshot::total() const noexcept {
    std::uint64_t sum = underflow + overflow;
    for (const std::uint64_t c : counts) {
        sum += c;
    }
    return sum;
}

namespace {

HistogramSnapshot snapshot_of(const stats::Histogram& h) {
    HistogramSnapshot s;
    s.lo = h.bin_lo(0);
    s.hi = h.bin_hi(h.bin_count() - 1);
    s.counts.reserve(h.bin_count());
    for (std::size_t i = 0; i < h.bin_count(); ++i) {
        s.counts.push_back(h.count(i));
    }
    s.underflow = h.underflow();
    s.overflow = h.overflow();
    return s;
}

bool same_stats(const stats::RunningStats& a, const stats::RunningStats& b) {
    if (a.count() != b.count()) {
        return false;
    }
    if (a.count() == 0) {
        return true;
    }
    return a.mean() == b.mean() && a.variance() == b.variance() &&
           a.min() == b.min() && a.max() == b.max();
}

} // namespace

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
    for (const auto& [name, value] : other.counters) {
        counters[name] += value;
    }
    for (const auto& [name, value] : other.gauges) {
        gauges[name] = value; // last writer wins, in merge order
    }
    for (const auto& [name, dist] : other.distributions) {
        distributions[name].merge(dist);
    }
    for (const auto& [name, hist] : other.histograms) {
        auto [it, inserted] = histograms.try_emplace(name, hist);
        if (inserted) {
            continue;
        }
        HistogramSnapshot& mine = it->second;
        if (mine.lo != hist.lo || mine.hi != hist.hi ||
            mine.counts.size() != hist.counts.size()) {
            throw std::invalid_argument{
                "MetricsSnapshot::merge: histogram '" + name + "' binning mismatch"};
        }
        for (std::size_t i = 0; i < mine.counts.size(); ++i) {
            mine.counts[i] += hist.counts[i];
        }
        mine.underflow += hist.underflow;
        mine.overflow += hist.overflow;
    }
}

bool MetricsSnapshot::operator==(const MetricsSnapshot& other) const {
    if (counters != other.counters || gauges != other.gauges) {
        return false;
    }
    if (distributions.size() != other.distributions.size() ||
        histograms.size() != other.histograms.size()) {
        return false;
    }
    auto it = other.distributions.begin();
    for (const auto& [name, dist] : distributions) {
        if (name != it->first || !same_stats(dist, it->second)) {
            return false;
        }
        ++it;
    }
    auto hit = other.histograms.begin();
    for (const auto& [name, hist] : histograms) {
        if (name != hit->first || hist.lo != hit->second.lo ||
            hist.hi != hit->second.hi || hist.counts != hit->second.counts ||
            hist.underflow != hit->second.underflow ||
            hist.overflow != hit->second.overflow) {
            return false;
        }
        ++hit;
    }
    return true;
}

std::string MetricsSnapshot::to_json() const {
    JsonWriter w;
    w.begin_object();
    w.key("counters");
    w.begin_object();
    for (const auto& [name, value] : counters) {
        w.key(name);
        w.value(value);
    }
    w.end_object();
    w.key("gauges");
    w.begin_object();
    for (const auto& [name, value] : gauges) {
        w.key(name);
        w.value(value);
    }
    w.end_object();
    w.key("distributions");
    w.begin_object();
    for (const auto& [name, dist] : distributions) {
        w.key(name);
        w.begin_object();
        w.key("count");
        w.value(dist.count());
        w.key("mean");
        w.value(dist.mean());
        w.key("stddev");
        w.value(dist.stddev());
        w.key("min");
        w.value(dist.count() > 0 ? dist.min() : 0.0);
        w.key("max");
        w.value(dist.count() > 0 ? dist.max() : 0.0);
        w.end_object();
    }
    w.end_object();
    w.key("histograms");
    w.begin_object();
    for (const auto& [name, hist] : histograms) {
        w.key(name);
        w.begin_object();
        w.key("lo");
        w.value(hist.lo);
        w.key("hi");
        w.value(hist.hi);
        w.key("underflow");
        w.value(hist.underflow);
        w.key("overflow");
        w.value(hist.overflow);
        w.key("counts");
        w.begin_array();
        for (const std::uint64_t c : hist.counts) {
            w.value(c);
        }
        w.end_array();
        w.end_object();
    }
    w.end_object();
    w.end_object();
    return w.str();
}

MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& parts) {
    MetricsSnapshot merged;
    for (const MetricsSnapshot& part : parts) {
        merged.merge(part);
    }
    return merged;
}

stats::Histogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                             double hi, std::size_t bins) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        return histograms_.emplace(name, stats::Histogram{lo, hi, bins}).first->second;
    }
    stats::Histogram& h = it->second;
    if (h.bin_lo(0) != lo || h.bin_hi(h.bin_count() - 1) != hi ||
        h.bin_count() != bins) {
        throw std::invalid_argument{
            "MetricsRegistry::histogram: '" + name + "' re-registered with different binning"};
    }
    return h;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
    MetricsSnapshot s;
    s.counters = counters_;
    s.gauges = gauges_;
    s.distributions = distributions_;
    for (const auto& [name, hist] : histograms_) {
        s.histograms.emplace(name, snapshot_of(hist));
    }
    return s;
}

void MetricsRegistry::clear() {
    counters_.clear();
    gauges_.clear();
    distributions_.clear();
    histograms_.clear();
}

} // namespace routesync::obs
