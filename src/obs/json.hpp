// Minimal JSON writing helpers shared by the JSONL trace sink, the run
// manifest writer, and the benches' --json output. Writing only — the
// repo never parses JSON in C++ (tools/validate_trace.py does that).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace routesync::obs {

/// Escapes a string for embedding inside JSON double quotes: quote,
/// backslash, and control characters (RFC 8259 section 7).
[[nodiscard]] inline std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

/// Renders a double as a JSON number token. JSON has no Infinity/NaN, so
/// those become null (the schema treats null as "not applicable").
[[nodiscard]] inline std::string json_number(double x) {
    if (!std::isfinite(x)) {
        return "null";
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", x);
    return buf;
}

/// Incremental JSON object/array writer over a growing string. Tracks
/// comma placement so call sites stay flat; no nesting bookkeeping beyond
/// what the manifest and bench summaries need.
class JsonWriter {
public:
    void begin_object() { separator(); out_ += '{'; fresh_ = true; }
    void end_object() { out_ += '}'; fresh_ = false; }
    void begin_array() { separator(); out_ += '['; fresh_ = true; }
    void end_array() { out_ += ']'; fresh_ = false; }

    void key(const std::string& name) {
        separator();
        out_ += '"';
        out_ += json_escape(name);
        out_ += "\": ";
        fresh_ = true; // the value follows without a comma
    }

    void value(const std::string& s) {
        separator();
        out_ += '"';
        out_ += json_escape(s);
        out_ += '"';
    }
    void value(const char* s) { value(std::string{s}); }
    void value(double x) { separator(); out_ += json_number(x); }
    void value(std::uint64_t x) { separator(); out_ += std::to_string(x); }
    void value(std::int64_t x) { separator(); out_ += std::to_string(x); }
    void value(int x) { separator(); out_ += std::to_string(x); }
    void value(bool b) { separator(); out_ += b ? "true" : "false"; }
    void null() { separator(); out_ += "null"; }

    [[nodiscard]] const std::string& str() const noexcept { return out_; }

private:
    void separator() {
        if (!fresh_) {
            out_ += ", ";
        }
        fresh_ = false;
    }

    std::string out_;
    bool fresh_ = true;
};

} // namespace routesync::obs
