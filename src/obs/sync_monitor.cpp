#include "obs/sync_monitor.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "obs/tracer.hpp"

namespace routesync::obs {

namespace {

/// The hysteresis travels through sync_config's integer slot in
/// microunits; live and replayed monitors both reconstruct the double
/// with this one expression, so they run on the identical value.
double hysteresis_from_micro(std::int64_t micro) {
    return static_cast<double>(micro) / 1e6;
}

std::int64_t hysteresis_to_micro(double h) {
    return std::llround(h * 1e6);
}

} // namespace

SyncMonitor::SyncMonitor(const SyncMonitorConfig& config, Tracer* tracer)
    : config_{config}, tracer_{tracer} {
    if (config_.n < 1) {
        throw std::invalid_argument{"SyncMonitor: n must be >= 1"};
    }
    if (!(config_.period_sec > 0.0)) {
        throw std::invalid_argument{"SyncMonitor: period must be positive"};
    }
    if (!(config_.threshold > 0.0) || config_.threshold > 1.0) {
        throw std::invalid_argument{"SyncMonitor: threshold must be in (0, 1]"};
    }
    if (config_.hysteresis < 0.0 || config_.hysteresis >= config_.threshold) {
        throw std::invalid_argument{
            "SyncMonitor: hysteresis must be in [0, threshold)"};
    }
    if (config_.tolerance_sec < 0.0) {
        throw std::invalid_argument{"SyncMonitor: tolerance must be >= 0"};
    }
    config_.hysteresis =
        hysteresis_from_micro(hysteresis_to_micro(config_.hysteresis));

    const auto n = static_cast<std::size_t>(config_.n);
    phasor_re_.assign(n, 0.0);
    phasor_im_.assign(n, 0.0);
    armed_.assign(n, false);
    inv_n_ = 1.0 / static_cast<double>(config_.n);
    inv_period_ = 1.0 / config_.period_sec;

    if (tracer_ != nullptr) {
        tracer_->emit(TraceEventType::SyncConfig, sim::SimTime::zero(), -1,
                      hysteresis_to_micro(config_.hysteresis),
                      config_.period_sec, config_.threshold);
    }
}

void SyncMonitor::update_order_parameter(int node, sim::SimTime t) {
    double off = std::fmod(t.sec(), config_.period_sec);
    if (off < 0.0) {
        off += config_.period_sec;
    }
    const double theta = 2.0 * std::numbers::pi * (off * inv_period_);
    const double re = std::cos(theta);
    const double im = std::sin(theta);
    const auto idx = static_cast<std::size_t>(node);
    if (armed_[idx]) {
        sum_re_ -= phasor_re_[idx];
        sum_im_ -= phasor_im_[idx];
    } else {
        armed_[idx] = true;
    }
    phasor_re_[idx] = re;
    phasor_im_[idx] = im;
    sum_re_ += re;
    sum_im_ += im;
    r_ = std::sqrt(sum_re_ * sum_re_ + sum_im_ * sum_im_) * inv_n_;
    if (r_ > report_.r_max) {
        report_.r_max = r_;
    }

    if (!in_sync_ && r_ >= config_.threshold) {
        in_sync_ = true;
        ++report_.transitions;
        transitions_.push_back(SyncTransitionRecord{t, true, r_});
        if (report_.time_to_sync_sec < 0.0) {
            report_.time_to_sync_sec = t.sec();
        }
        if (tracer_ != nullptr) {
            tracer_->emit(TraceEventType::SyncTransition, t, -1, 1, r_,
                          config_.threshold);
        }
    } else if (in_sync_ && r_ < config_.threshold - config_.hysteresis) {
        in_sync_ = false;
        ++report_.transitions;
        transitions_.push_back(SyncTransitionRecord{t, false, r_});
        if (tracer_ != nullptr) {
            tracer_->emit(TraceEventType::SyncTransition, t, -1, 0, r_,
                          config_.threshold);
        }
    }
}

void SyncMonitor::update_clusters(sim::SimTime t) {
    if (group_open_ && t < group_last_) {
        throw std::logic_error{"SyncMonitor: events out of order"};
    }
    if (group_open_ &&
        (t - group_last_).sec() <= config_.tolerance_sec) {
        ++group_size_;
        group_last_ = t;
    } else {
        if (group_open_) {
            finalize_group();
        }
        group_open_ = true;
        group_start_ = t;
        group_last_ = t;
        group_size_ = 1;
        group_round_ = event_round_;
    }
    group_last_round_ = event_round_;
    if (++idx_in_round_ == config_.n) {
        idx_in_round_ = 0;
        ++event_round_;
    }
}

void SyncMonitor::finalize_group() {
    if (group_round_ > current_round_) {
        close_round();
        current_round_ = group_round_;
        round_sizes_.clear();
        if (spill_size_ > 0) {
            // The straddling group counts toward this round too (the
            // ClusterTracker's spill rule).
            round_sizes_.push_back(spill_size_);
            spill_size_ = 0;
        }
    }
    round_sizes_.push_back(group_size_);
    if (group_last_round_ > group_round_ && group_size_ > spill_size_) {
        spill_size_ = group_size_;
    }
    group_open_ = false;
    group_size_ = 0;
}

void SyncMonitor::close_round() {
    if (round_sizes_.empty()) {
        return; // before the first completed group
    }
    double total = 0.0;
    int largest = 0;
    for (const int s : round_sizes_) {
        total += static_cast<double>(s);
        if (s > largest) {
            largest = s;
        }
    }
    double entropy = 0.0;
    for (const int s : round_sizes_) {
        const double p = static_cast<double>(s) / total;
        entropy -= p * std::log(p);
    }
    report_.entropy_last =
        config_.n > 1 ? entropy / std::log(static_cast<double>(config_.n))
                      : 0.0;
    report_.largest_fraction_last =
        static_cast<double>(largest) * inv_n_;
    ++report_.rounds_closed;
}

void SyncMonitor::on_timer_set(int node, sim::SimTime t) {
    if (node < 0 || node >= config_.n) {
        throw std::out_of_range{"SyncMonitor: node out of range"};
    }
    ++report_.rearms;
    // Attribution: the most recent transmission is the one whose busy-
    // period extension this re-arm waited out; before any transmission
    // the node can only have released itself.
    coupling_.add_edge(last_tx_node_ >= 0 ? last_tx_node_ : node, node);
    update_order_parameter(node, t);
    update_clusters(t);
}

void SyncMonitor::on_transmit(int node, sim::SimTime /*t*/) {
    ++report_.transmissions;
    last_tx_node_ = node;
}

void SyncMonitor::finish(sim::SimTime at) {
    if (finished_) {
        return;
    }
    finished_ = true;
    if (group_open_) {
        finalize_group();
    }
    close_round();
    round_sizes_.clear();
    report_.r_last = r_;
    report_.in_sync = in_sync_;
    if (tracer_ != nullptr) {
        for (const CouplingGraph::Edge& e : coupling_.edges()) {
            tracer_->emit(TraceEventType::CouplingEdge, at, e.dst, e.src,
                          static_cast<double>(e.weight));
        }
    }
}

SyncReplayResult replay_sync(const std::vector<TraceEvent>& events,
                             const SyncReplayOverrides& overrides) {
    SyncReplayResult result;

    int max_node = -1;
    for (const TraceEvent& e : events) {
        switch (e.type) {
        case TraceEventType::TimerSet:
            if (e.node > max_node) {
                max_node = e.node;
            }
            break;
        case TraceEventType::SyncConfig:
            result.have_config = true;
            result.config.hysteresis = hysteresis_from_micro(e.a);
            result.config.period_sec = e.b;
            result.config.threshold = e.x;
            break;
        case TraceEventType::SyncTransition:
            result.recorded.push_back(
                SyncTransitionRecord{e.time, e.a != 0, e.b});
            break;
        case TraceEventType::CouplingEdge:
            result.recorded_edges.push_back(CouplingGraph::Edge{
                static_cast<int>(e.a), e.node,
                static_cast<std::uint64_t>(std::llround(e.b))});
            break;
        default:
            break;
        }
    }
    if (max_node < 0) {
        throw std::runtime_error{
            "replay_sync: trace has no timer_set events"};
    }

    if (!result.have_config) {
        result.config.threshold = 0.95;
        result.config.hysteresis = 0.02;
    }
    // The initial arms cover every node, so max node + 1 is exact.
    result.config.n = overrides.n > 0 ? overrides.n : max_node + 1;
    if (overrides.period_sec > 0.0) {
        result.config.period_sec = overrides.period_sec;
    }
    if (overrides.threshold > 0.0) {
        result.config.threshold = overrides.threshold;
    }
    if (overrides.hysteresis >= 0.0) {
        result.config.hysteresis = overrides.hysteresis;
    }
    if (!(result.config.period_sec > 0.0)) {
        throw std::runtime_error{
            "replay_sync: no round length available (trace has no "
            "sync_config event; pass --round)"};
    }

    SyncMonitor monitor{result.config};
    std::vector<bool> skipped(static_cast<std::size_t>(result.config.n),
                              false);
    sim::SimTime last = sim::SimTime::zero();
    for (const TraceEvent& e : events) {
        last = e.time;
        if (e.type == TraceEventType::UpdateTx) {
            monitor.on_transmit(e.node, e.time);
            continue;
        }
        if (e.type != TraceEventType::TimerSet) {
            continue;
        }
        const auto node = static_cast<std::size_t>(e.node);
        if (node < skipped.size() && !skipped[node]) {
            // The model constructor's initial arm, emitted before the
            // live monitor was wired up (see header).
            skipped[node] = true;
            ++result.initial_skipped;
            continue;
        }
        monitor.on_timer_set(e.node, e.time);
        ++result.timer_sets_fed;
    }
    monitor.finish(last);
    result.report = monitor.report();
    result.coupling = monitor.coupling();
    result.transitions = monitor.transitions();
    return result;
}

} // namespace routesync::obs
