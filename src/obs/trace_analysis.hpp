// Trace analysis: the pure functions behind `routesync trace`.
//
//   summarize()     — event counts, time span, per-node transmissions,
//                     a transmission phase histogram (when the caller
//                     knows the round length), and busy-period stats.
//   filter_events() — type / node / time-window selection.
//   export_chrome() — Chrome trace-event JSON ({"traceEvents": [...]})
//                     loadable in Perfetto / chrome://tracing: one track
//                     per node, cpu_busy begin/end as duration slices,
//                     timer events as instants, resource samples as
//                     counter series.
//
// Everything here is a pure function of the event vector, so the CLI
// subcommands stay thin and the behaviour is unit-testable without
// touching the filesystem.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace_event.hpp"

namespace routesync::obs {

struct SummaryOptions {
    /// Round length (Tp + Tc) in seconds; > 0 enables the transmission
    /// phase histogram (offset = t mod round_length).
    double round_length = 0.0;
    int phase_bins = 20;
};

struct TraceSummary {
    std::uint64_t events = 0;
    double t_min = 0.0;
    double t_max = 0.0;
    /// Count per wire type name, ordered by name.
    std::map<std::string, std::uint64_t> by_type;
    /// update_tx count per node id.
    std::map<int, std::uint64_t> tx_by_node;
    /// Histogram of update_tx offsets within a round; empty unless
    /// SummaryOptions::round_length was set.
    std::vector<std::uint64_t> tx_phase_hist;
    double round_length = 0.0;
    /// cpu_busy_begin/cpu_busy_end pairing, per node, aggregated.
    std::uint64_t busy_periods = 0;
    double busy_total_sec = 0.0;
    double busy_max_sec = 0.0;
    /// Begins with no matching end (still busy at trace end) — counted,
    /// not an error.
    std::uint64_t busy_unclosed = 0;
    /// Per-source statistics over metric_sample values (slot b), keyed by
    /// the sample's source id (slot a). "last" is last-in-trace-order.
    struct MetricSeriesStats {
        std::uint64_t count = 0;
        double min = 0.0;
        double max = 0.0;
        double last = 0.0;
    };
    std::map<std::int64_t, MetricSeriesStats> metric_samples;
};

[[nodiscard]] TraceSummary summarize(const std::vector<TraceEvent>& events,
                                     const SummaryOptions& options = {});

/// Human-readable report (the `trace summary` stdout).
[[nodiscard]] std::string format_summary(const TraceSummary& summary);

struct FilterOptions {
    /// Keep only these types (empty = all types).
    std::vector<TraceEventType> types;
    /// Keep only this node's events.
    std::optional<int> node;
    /// Keep events with t_min <= t <= t_max.
    std::optional<double> t_min;
    std::optional<double> t_max;
};

[[nodiscard]] std::vector<TraceEvent>
filter_events(const std::vector<TraceEvent>& events, const FilterOptions& options);

/// The whole trace as one Chrome trace-event JSON document.
[[nodiscard]] std::string export_chrome(const std::vector<TraceEvent>& events);

} // namespace routesync::obs
