// Causal coupling graph: who-reset-whom edge weights.
//
// Every timer re-arm in the Periodic Messages model happens because the
// router just finished a busy period — a busy period whose end was set
// (or last extended) by some router's transmission. Attributing each
// re-arm to the most recent transmission yields a directed multigraph
// whose edge (i -> j) counts how often router i's message was the one
// that released router j's timer. A synchronized cluster shows up as a
// dense near-clique; the lone-router phase as a diagonal of self-edges
// (a router re-armed by its own transmission).
//
// The attribution is exact under the paper's shared-busy model (the last
// transmission before a re-arm is by construction the one that extended
// the busy period to the re-arm instant) and heuristic under
// reset_at_expiry, where timers never couple (documented in
// docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace routesync::obs {

class CouplingGraph {
public:
    struct Edge {
        int src = 0;
        int dst = 0;
        std::uint64_t weight = 0;
    };

    /// Records `weight` more resets of `dst` attributed to `src`.
    void add_edge(int src, int dst, std::uint64_t weight = 1);

    /// All edges, sorted by (src, dst) — the deterministic export order.
    [[nodiscard]] std::vector<Edge> edges() const;

    [[nodiscard]] std::size_t edge_count() const noexcept {
        return weights_.size();
    }
    /// Sum of all edge weights == number of attributed resets.
    [[nodiscard]] std::uint64_t total_weight() const noexcept { return total_; }
    /// Distinct routers appearing as a source or destination.
    [[nodiscard]] std::size_t node_count() const;

    [[nodiscard]] bool operator==(const CouplingGraph& other) const {
        return weights_ == other.weights_;
    }

    /// Graphviz DOT document: one `src -> dst [label="w" weight=w];` line
    /// per edge in (src, dst) order.
    [[nodiscard]] std::string to_dot() const;
    /// JSON document: {"nodes": N, "edges": [{"src","dst","weight"}...],
    /// "total_weight": W}.
    [[nodiscard]] std::string to_json() const;

private:
    std::map<std::pair<int, int>, std::uint64_t> weights_;
    std::uint64_t total_ = 0;
};

} // namespace routesync::obs
