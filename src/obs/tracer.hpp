// Tracer: stamps events with a monotonically increasing sequence number
// and hands them to one sink.
//
// Instrumented components hold (or reach, via sim::Engine::tracer()) a
// `Tracer*` that is null when observability is off. The emit sites are
// therefore a single pointer test in the disabled case — no virtual
// call, no event construction — which is what keeps the default path
// inside the perf budget (see docs/PERFORMANCE.md).
#pragma once

#include <cstdint>

#include "obs/trace_event.hpp"
#include "obs/trace_sink.hpp"

namespace routesync::obs {

class Tracer {
public:
    /// The sink must outlive the tracer (RunContext owns both).
    explicit Tracer(TraceSink& sink) noexcept : sink_{&sink} {}

    void emit(TraceEventType type, sim::SimTime time, int node,
              std::int64_t a = 0, double b = 0.0, double x = 0.0) {
        TraceEvent event;
        event.seq = next_seq_++;
        event.time = time;
        event.type = type;
        event.node = node;
        event.a = a;
        event.b = b;
        event.x = x;
        sink_->on_event(event);
    }

    [[nodiscard]] std::uint64_t events_emitted() const noexcept { return next_seq_; }
    [[nodiscard]] TraceSink& sink() noexcept { return *sink_; }

private:
    TraceSink* sink_;
    std::uint64_t next_seq_ = 0;
};

} // namespace routesync::obs
