// Run manifests: a self-describing JSON record written next to every
// bench/scenario output, so a BENCH_*.json or figure file can always be
// traced back to the binary, build, seeds, and configuration that
// produced it.
//
// Schema (tools/validate_trace.py is the executable reference):
//   {
//     "tool": "...", "description": "...",
//     "git_describe": "...", "build_type": "...",
//     "seeds": [..], "jobs": N,
//     "config": { "<key>": "<value>", ... },
//     "metrics": { counters/gauges/distributions/histograms },
//     "profile": { "<label>": {count, total_sec, max_sec}, ... } | null,
//     "trace": { "path": "...", "events": N, "offered": N, "dropped": N,
//                "fnv1a": "<hex>" } | null,
//     "wall_seconds": X, "sim_seconds": X, "peak_rss_bytes": N,
//     "failed_checks": N
//   }
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace routesync::obs {

/// FNV-1a over a byte string — the repo's standard content hash (the
/// same function determinism_test applies to figure series).
[[nodiscard]] std::uint64_t fnv1a(const std::string& bytes) noexcept;

/// FNV-1a of a file's contents; std::nullopt if the file cannot be read.
[[nodiscard]] std::optional<std::uint64_t> fnv1a_file(const std::string& path);

/// The process's peak resident set size in bytes (getrusage ru_maxrss),
/// 0 where the platform cannot report it. A high-water mark, not a
/// current level — the number a metro-scale memory budget wants.
[[nodiscard]] std::uint64_t peak_rss_bytes() noexcept;

struct TraceInfo {
    std::string path;
    std::uint64_t events = 0;  ///< events the tracer stamped
    std::uint64_t offered = 0; ///< events the sink saw (accepted or dropped)
    std::uint64_t dropped = 0; ///< events the sink discarded (ring overflow)
    std::optional<std::uint64_t> fnv1a; ///< hash of the written JSONL bytes
};

struct Manifest {
    std::string tool;
    std::string description;
    std::vector<std::uint64_t> seeds;
    std::size_t jobs = 1;
    /// Flattened config struct: insertion-ordered key/value pairs (kept
    /// as strings so any config type can participate).
    std::vector<std::pair<std::string, std::string>> config;
    MetricsSnapshot metrics;
    /// Present when the run was profiled (--profile).
    std::optional<ProfileSnapshot> profile;
    std::optional<TraceInfo> trace;
    double wall_seconds = 0.0;
    double sim_seconds = 0.0;
    /// Process-wide peak RSS when the manifest was sealed (finish()).
    std::uint64_t peak_rss_bytes = 0;
    int failed_checks = 0;

    void set_config(const std::string& key, const std::string& value);
    void set_config(const std::string& key, double value);
    void set_config(const std::string& key, std::uint64_t value);
    void set_config(const std::string& key, int value);
    void set_config(const std::string& key, bool value);

    /// The manifest as a JSON document (git describe and build type are
    /// filled in from the compiled-in build info).
    [[nodiscard]] std::string to_json() const;

    /// Writes to_json() to `path`; throws std::runtime_error on failure.
    void write(const std::string& path) const;
};

} // namespace routesync::obs
