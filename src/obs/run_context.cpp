#include "obs/run_context.hpp"

#include <utility>

#include "sim/engine.hpp"

namespace routesync::obs {

RunContext::RunContext() : started_{std::chrono::steady_clock::now()} {}

void RunContext::set_sink(std::unique_ptr<TraceSink> sink) {
    sink_ = std::move(sink);
    tracer_.reset();
    if (sink_ != nullptr) {
        tracer_.emplace(*sink_);
    }
}

void RunContext::trace_to_file(const std::string& path) {
    set_sink(std::make_unique<JsonlFileSink>(path));
    trace_path_ = path;
}

void RunContext::trace_to_ring(std::size_t capacity) {
    set_sink(std::make_unique<RingBufferSink>(capacity));
    trace_path_.clear();
}

void RunContext::attach(sim::Engine& engine) noexcept {
    engine.set_tracer(tracer());
}

void RunContext::enable_profiling() {
    profiling_ = true;
    Profiler::set_process_enabled(true);
    Profiler::set_current(&profiler_);
}

void RunContext::finish(double sim_seconds) {
    if (sink_ != nullptr) {
        sink_->flush();
        TraceInfo info;
        info.path = trace_path_;
        info.events = tracer_.has_value() ? tracer_->events_emitted() : 0;
        info.offered = sink_->events_seen();
        info.dropped = sink_->dropped_events();
        if (!trace_path_.empty()) {
            info.fnv1a = fnv1a_file(trace_path_);
        }
        manifest_.trace = std::move(info);
    }
    MetricsSnapshot combined = merged_;
    combined.merge(metrics_.snapshot());
    manifest_.metrics = std::move(combined);
    if (profiling_) {
        ProfileSnapshot prof = merged_profile_;
        prof.merge(profiler_.snapshot());
        manifest_.profile = std::move(prof);
    }
    manifest_.sim_seconds = sim_seconds;
    manifest_.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started_)
            .count();
    manifest_.peak_rss_bytes = peak_rss_bytes();
}

void RunContext::write_manifest(const std::string& path, double sim_seconds) {
    finish(sim_seconds);
    manifest_.write(path);
}

} // namespace routesync::obs
