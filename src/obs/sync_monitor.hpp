// Streaming synchronization analytics: the observatory of the repo.
//
// A SyncMonitor watches the same two callback streams the ClusterTracker
// does — timer re-arms and transmissions — and computes, in O(1)
// amortized work per event:
//
//   * the Kuramoto-style phase-coherence order parameter
//         r(t) = | sum_j e^{i*theta_j} | / N,
//     where theta_j = 2*pi * (arm_time_j mod L) / L and L is the round
//     length (Tp + Tc). Each node's phase is piecewise constant between
//     re-arms, so r is maintained as a running complex sum: subtract the
//     node's old phasor, add the new one. Nodes that have not re-armed
//     yet contribute zero (the denominator is always the full N), so r
//     ramps up over the first round and then tracks coherence exactly.
//   * normalized cluster entropy and largest-cluster fraction per round,
//     using the ClusterTracker's grouping rule (events within the
//     tolerance of the previous event share a cluster; a round is N
//     re-arms; a group counts toward the round it started in, and a
//     group straddling the boundary seeds the next round too).
//   * an online time-to-sync / changepoint detector: r crossing a
//     configurable threshold (with hysteresis on the way down) flips the
//     in-sync state, emits a `sync_transition` trace event, and records
//     the first up-crossing as the time to sync.
//   * a causal coupling graph attributing every re-arm to the router
//     whose transmission most recently extended the busy period that
//     just released the timer (see coupling_graph.hpp).
//
// Determinism contract: a monitor fed from a live run and a monitor fed
// from that run's trace (replay_sync below) perform the *same* sequence
// of floating-point operations on the *same* double values — trace times
// serialize via %.17g and round-trip exactly — so r(t), every transition
// (time, direction, r), and the coupling graph are bit-identical between
// the live run, any `--jobs`/`--batch` configuration (per-lane monitors,
// submission-order merge), and an offline recompute from the trace.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/coupling_graph.hpp"
#include "obs/trace_event.hpp"
#include "sim/time.hpp"

namespace routesync::obs {

class Tracer;

struct SyncMonitorConfig {
    int n = 0;               ///< router population (>= 1)
    double period_sec = 0.0; ///< phase modulus L, the round length (> 0)
    double threshold = 0.95; ///< detector up-crossing level for r
    /// Down-crossing at threshold - hysteresis. Quantized to 1e-6 on
    /// construction so the value survives the trace's integer slot and a
    /// replayed monitor runs on the identical double.
    double hysteresis = 0.02;
    double tolerance_sec = 1e-6; ///< cluster grouping tolerance
};

/// One detector crossing, exactly as traced (`sync_transition`).
struct SyncTransitionRecord {
    sim::SimTime time;
    bool up = false; ///< true: entered sync; false: left it
    double r = 0.0;  ///< order parameter at the crossing
};

/// The monitor's end-of-run summary (the source of all sync.* metrics).
struct SyncReport {
    std::uint64_t rearms = 0;        ///< re-arms fed to the monitor
    std::uint64_t transmissions = 0; ///< transmissions fed to the monitor
    std::uint64_t transitions = 0;   ///< detector crossings (both ways)
    std::uint64_t rounds_closed = 0; ///< rounds with entropy computed
    double r_last = 0.0;
    double r_max = 0.0;
    double entropy_last = 0.0;          ///< last closed round, in [0, 1]
    double largest_fraction_last = 0.0; ///< last closed round's max / n
    bool in_sync = false;               ///< detector state at finish
    double time_to_sync_sec = -1.0;     ///< first up-crossing; < 0 = never
};

class SyncMonitor {
public:
    /// Validates the config, quantizes the hysteresis, and — when
    /// `tracer` is non-null — emits the `sync_config` event that lets
    /// replay_sync reconstruct this exact monitor from the trace.
    explicit SyncMonitor(const SyncMonitorConfig& config,
                         Tracer* tracer = nullptr);

    /// Feed a timer re-arm (same stream ClusterTracker::on_timer_set
    /// consumes). Times must be nondecreasing.
    void on_timer_set(int node, sim::SimTime t);
    /// Feed a transmission (the UpdateTx stream) — the coupling-graph
    /// attribution source. Must be interleaved in event order.
    void on_transmit(int node, sim::SimTime t);

    /// Closes the open cluster group and round, seals the report, and
    /// emits one `coupling_edge` event per edge (sorted by (src, dst))
    /// at time `at` — pass the run's end time so trace times stay
    /// monotone. Idempotent.
    void finish(sim::SimTime at);

    /// Current order parameter (valid any time).
    [[nodiscard]] double r() const noexcept { return r_; }
    /// The summary; counters are live, round fields settle at finish().
    [[nodiscard]] const SyncReport& report() const noexcept { return report_; }
    [[nodiscard]] const CouplingGraph& coupling() const noexcept {
        return coupling_;
    }
    [[nodiscard]] const std::vector<SyncTransitionRecord>&
    transitions() const noexcept {
        return transitions_;
    }
    /// The config as actually used (hysteresis quantized).
    [[nodiscard]] const SyncMonitorConfig& config() const noexcept {
        return config_;
    }

private:
    void update_order_parameter(int node, sim::SimTime t);
    void update_clusters(sim::SimTime t);
    void finalize_group();
    void close_round();

    SyncMonitorConfig config_;
    Tracer* tracer_ = nullptr;
    double inv_n_ = 0.0;
    double inv_period_ = 0.0;

    // Order parameter: per-node phasors + running complex sum.
    std::vector<double> phasor_re_, phasor_im_;
    std::vector<bool> armed_;
    double sum_re_ = 0.0, sum_im_ = 0.0;
    double r_ = 0.0;

    // Detector.
    bool in_sync_ = false;
    std::vector<SyncTransitionRecord> transitions_;

    // Coupling attribution.
    int last_tx_node_ = -1;
    CouplingGraph coupling_;

    // Cluster/round bookkeeping (mirrors ClusterTracker's grouping).
    bool group_open_ = false;
    sim::SimTime group_start_ = sim::SimTime::zero();
    sim::SimTime group_last_ = sim::SimTime::zero();
    int group_size_ = 0;
    std::uint64_t group_round_ = 0;
    std::uint64_t group_last_round_ = 0;
    std::uint64_t event_round_ = 0;
    int idx_in_round_ = 0;
    std::uint64_t current_round_ = 0;
    std::vector<int> round_sizes_;
    int spill_size_ = 0; ///< straddling group seeds the next round

    bool finished_ = false;
    SyncReport report_;
};

/// Overrides for replay_sync when the trace lacks a `sync_config` event
/// (unmonitored trace) or the caller wants different detector settings.
struct SyncReplayOverrides {
    int n = 0;               ///< 0: infer from the timer_set stream
    double period_sec = 0.0; ///< 0: take from sync_config (else required)
    double threshold = 0.0;  ///< 0: from sync_config, default 0.95
    double hysteresis = -1.0; ///< < 0: from sync_config, default 0.02
};

struct SyncReplayResult {
    SyncReport report;
    CouplingGraph coupling;
    std::vector<SyncTransitionRecord> transitions; ///< recomputed
    std::vector<SyncTransitionRecord> recorded;    ///< from the trace
    std::vector<CouplingGraph::Edge> recorded_edges; ///< from the trace
    bool have_config = false; ///< trace carried a sync_config event
    SyncMonitorConfig config; ///< the monitor config actually replayed
    std::uint64_t timer_sets_fed = 0;
    std::uint64_t initial_skipped = 0; ///< leading per-node arms skipped
};

/// Recomputes the full synchronization analysis from a trace alone by
/// feeding the timer_set/update_tx streams through a fresh SyncMonitor.
/// Skips each node's first timer_set (the model constructor's initial
/// arm, emitted before the live monitor was wired — the same rule as
/// core::replay_cluster_series), so the replayed monitor consumes the
/// exact stream the live one did and reproduces it bit for bit.
/// Throws std::runtime_error when the trace has no timer_set events or
/// no round length is available.
[[nodiscard]] SyncReplayResult
replay_sync(const std::vector<TraceEvent>& events,
            const SyncReplayOverrides& overrides = {});

} // namespace routesync::obs
