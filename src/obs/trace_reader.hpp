// TraceReader: the C++ side of the JSONL trace interchange format.
//
// Parses exactly what trace_event_jsonl() writes — one fixed-field-order
// JSON object per line:
//
//   {"seq": N, "t": X, "type": "...", "node": N, "a": N, "b": X, "x": X}
//
// The parser is strict on structure (every field present, known type
// name, numbers where numbers belong) but tolerant of field order and
// whitespace, so hand-edited or externally generated traces still load.
// Round-trip contract (tested): read_all(file written by JsonlFileSink)
// re-serialized through trace_event_jsonl() reproduces the input bytes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "obs/trace_event.hpp"

namespace routesync::obs {

/// Inverse of trace_event_type_name(); nullopt for unknown names.
[[nodiscard]] std::optional<TraceEventType>
trace_event_type_from_name(const std::string& name);

class TraceReader {
public:
    /// Parses one JSONL line into an event. Throws std::runtime_error
    /// with a description (and the offending line number, when set via
    /// read_all) on malformed input.
    [[nodiscard]] static TraceEvent parse_line(const std::string& line);

    /// Reads every event of a JSONL trace file. Blank lines are not
    /// tolerated — a trace is one event per line, nothing else. Throws
    /// std::runtime_error on I/O or parse failure.
    [[nodiscard]] static std::vector<TraceEvent> read_all(const std::string& path);
};

} // namespace routesync::obs
