// Umbrella header for the observability layer: trace sinks, the tracer,
// the metrics registry, run manifests, and the RunContext that bundles
// them. See docs/OBSERVABILITY.md for the event schema and formats.
#pragma once

#include "obs/json.hpp"          // IWYU pragma: export
#include "obs/manifest.hpp"      // IWYU pragma: export
#include "obs/metrics.hpp"       // IWYU pragma: export
#include "obs/run_context.hpp"   // IWYU pragma: export
#include "obs/trace_event.hpp"   // IWYU pragma: export
#include "obs/trace_sink.hpp"    // IWYU pragma: export
#include "obs/tracer.hpp"        // IWYU pragma: export
