#include "obs/trace_reader.hpp"

#include <array>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

namespace routesync::obs {

namespace {

// The full vocabulary, for name lookup. Keep in sync with TraceEventType
// (trace_tool_test round-trips every member).
constexpr std::array<TraceEventType, 16> kAllTypes = {
    TraceEventType::TimerSet,      TraceEventType::TimerFire,
    TraceEventType::TimerReset,    TraceEventType::PacketEnqueue,
    TraceEventType::PacketDrop,    TraceEventType::PacketDeliver,
    TraceEventType::UpdateTx,      TraceEventType::UpdateRx,
    TraceEventType::CpuBusyBegin,  TraceEventType::CpuBusyEnd,
    TraceEventType::ClusterChange, TraceEventType::MetricSample,
    TraceEventType::ResourceSample, TraceEventType::SyncConfig,
    TraceEventType::SyncTransition, TraceEventType::CouplingEdge,
};

// Minimal strict scanner over one JSONL line. Field order and whitespace
// are free; everything else (unknown keys, missing fields, strings where
// numbers belong) is an error.
struct Cursor {
    const std::string& s;
    std::size_t i = 0;

    [[noreturn]] void fail(const std::string& what) const {
        throw std::runtime_error{"TraceReader: " + what + " at column " +
                                 std::to_string(i + 1)};
    }

    void skip_ws() {
        while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) {
            ++i;
        }
    }

    void expect(char c) {
        skip_ws();
        if (i >= s.size() || s[i] != c) {
            fail(std::string{"expected '"} + c + "'");
        }
        ++i;
    }

    [[nodiscard]] bool peek_is(char c) {
        skip_ws();
        return i < s.size() && s[i] == c;
    }

    [[nodiscard]] std::string string_value() {
        expect('"');
        const std::size_t start = i;
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\') {
                fail("escape sequences are not used in traces");
            }
            ++i;
        }
        if (i >= s.size()) {
            fail("unterminated string");
        }
        std::string out = s.substr(start, i - start);
        ++i; // closing quote
        return out;
    }

    /// The raw token of a JSON number ([-+0-9.eE]+).
    [[nodiscard]] std::string number_token() {
        skip_ws();
        const std::size_t start = i;
        while (i < s.size() &&
               (s[i] == '-' || s[i] == '+' || s[i] == '.' || s[i] == 'e' ||
                s[i] == 'E' || (s[i] >= '0' && s[i] <= '9'))) {
            ++i;
        }
        if (i == start) {
            fail("expected a number");
        }
        return s.substr(start, i - start);
    }
};

double parse_double(Cursor& c, const char* field) {
    const std::string tok = c.number_token();
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) {
        c.fail(std::string{"malformed number in \""} + field + "\"");
    }
    return v;
}

std::int64_t parse_int(Cursor& c, const char* field) {
    const std::string tok = c.number_token();
    if (tok.find_first_of(".eE") != std::string::npos) {
        c.fail(std::string{"\""} + field + "\" must be an integer");
    }
    char* end = nullptr;
    const long long v = std::strtoll(tok.c_str(), &end, 10);
    if (end != tok.c_str() + tok.size()) {
        c.fail(std::string{"malformed integer in \""} + field + "\"");
    }
    return v;
}

} // namespace

std::optional<TraceEventType> trace_event_type_from_name(const std::string& name) {
    for (const TraceEventType t : kAllTypes) {
        if (name == trace_event_name(t)) {
            return t;
        }
    }
    return std::nullopt;
}

TraceEvent TraceReader::parse_line(const std::string& line) {
    Cursor c{line};
    c.expect('{');

    TraceEvent event;
    bool have_seq = false, have_t = false, have_type = false, have_node = false,
         have_a = false, have_b = false, have_x = false;

    if (!c.peek_is('}')) {
        for (;;) {
            const std::string key = c.string_value();
            c.expect(':');
            const auto take = [&](bool& have) {
                if (have) {
                    c.fail("duplicate field \"" + key + "\"");
                }
                have = true;
            };
            if (key == "seq") {
                take(have_seq);
                const std::int64_t v = parse_int(c, "seq");
                if (v < 0) {
                    c.fail("\"seq\" must be >= 0");
                }
                event.seq = static_cast<std::uint64_t>(v);
            } else if (key == "t") {
                take(have_t);
                event.time = sim::SimTime::seconds(parse_double(c, "t"));
            } else if (key == "type") {
                take(have_type);
                const std::string name = c.string_value();
                const auto type = trace_event_type_from_name(name);
                if (!type.has_value()) {
                    c.fail("unknown event type \"" + name + "\"");
                }
                event.type = *type;
            } else if (key == "node") {
                take(have_node);
                event.node = static_cast<std::int32_t>(parse_int(c, "node"));
            } else if (key == "a") {
                take(have_a);
                event.a = parse_int(c, "a");
            } else if (key == "b") {
                take(have_b);
                event.b = parse_double(c, "b");
            } else if (key == "x") {
                take(have_x);
                event.x = parse_double(c, "x");
            } else {
                c.fail("unknown field \"" + key + "\"");
            }
            if (c.peek_is('}')) {
                break;
            }
            c.expect(',');
        }
    }
    c.expect('}');
    c.skip_ws();
    if (c.i != line.size()) {
        c.fail("trailing content after event object");
    }

    if (!(have_seq && have_t && have_type && have_node && have_a && have_b &&
          have_x)) {
        throw std::runtime_error{
            "TraceReader: event is missing required fields (need seq, t, "
            "type, node, a, b, x)"};
    }
    return event;
}

std::vector<TraceEvent> TraceReader::read_all(const std::string& path) {
    std::ifstream in{path};
    if (!in) {
        throw std::runtime_error{"TraceReader: cannot open " + path};
    }
    std::vector<TraceEvent> events;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        try {
            events.push_back(parse_line(line));
        } catch (const std::runtime_error& e) {
            throw std::runtime_error{path + ":" + std::to_string(lineno) +
                                     ": " + e.what()};
        }
    }
    return events;
}

} // namespace routesync::obs
