// RunContext: the single observability handle a run carries.
//
// One RunContext bundles the three legs of the observability layer —
// a trace sink (+ Tracer stamping sequence numbers), a MetricsRegistry,
// and a Manifest under construction — behind one object that scenario
// builders, bench::Options, and the CLI all plumb the same way:
//
//   obs::RunContext ctx;
//   ctx.trace_to_file("out.jsonl");          // or trace_to_ring(n), or neither
//   scenarios::NearnetScenario s{cfg, &ctx}; // attaches the tracer to the engine
//   ... run ...
//   ctx.finish(engine.now());
//   ctx.manifest().write("manifest.json");
//
// A default-constructed context does not trace: tracer() returns null,
// every emit site in the stack reduces to one pointer test, and the
// metrics registry sits idle until someone writes to it.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <string>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/tracer.hpp"

namespace routesync::sim {
class Engine;
}

namespace routesync::obs {

class RunContext {
public:
    RunContext();

    RunContext(const RunContext&) = delete;
    RunContext& operator=(const RunContext&) = delete;

    /// Installs a sink (replacing any previous one) and starts tracing.
    void set_sink(std::unique_ptr<TraceSink> sink);
    /// Convenience: trace to a JSONL file / an in-memory ring buffer.
    void trace_to_file(const std::string& path);
    void trace_to_ring(std::size_t capacity);

    /// Null when no sink is installed — the zero-cost-off gate every
    /// instrumented component tests.
    [[nodiscard]] Tracer* tracer() noexcept {
        return tracer_.has_value() ? &*tracer_ : nullptr;
    }
    [[nodiscard]] bool tracing() const noexcept { return tracer_.has_value(); }
    [[nodiscard]] TraceSink* sink() noexcept { return sink_.get(); }

    /// Points the engine's tracer hook at this context, so every
    /// component built on that engine inherits it.
    void attach(sim::Engine& engine) noexcept;

    [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
    [[nodiscard]] Manifest& manifest() noexcept { return manifest_; }

    /// Folds an externally produced snapshot (e.g. one trial's metrics)
    /// into this run's totals; finish() combines these with the live
    /// registry. Merge order is caller-controlled — merge in submission
    /// order for determinism across --jobs values.
    void merge_metrics(const MetricsSnapshot& snap) { merged_.merge(snap); }

    /// Turns on the wall-clock self-profiler for this process and installs
    /// this context's profiler on the calling thread. Worker threads get
    /// their own per-trial profilers (run_experiment installs one when
    /// Profiler::process_enabled()); merge their snapshots back here.
    void enable_profiling();
    [[nodiscard]] bool profiling() const noexcept { return profiling_; }
    [[nodiscard]] Profiler& profiler() noexcept { return profiler_; }

    /// Folds one trial's profile into this run's totals (submission order,
    /// like merge_metrics). finish() combines these with the live profiler.
    void merge_profile(const ProfileSnapshot& snap) { merged_profile_.merge(snap); }

    /// Seals the run record: flushes the sink, snapshots the metrics into
    /// the manifest, stamps wall/sim time and (for file sinks) the trace
    /// path, event count, and content hash. Call once, after the run.
    void finish(double sim_seconds);

    /// finish() + manifest().write(path).
    void write_manifest(const std::string& path, double sim_seconds);

private:
    std::unique_ptr<TraceSink> sink_;
    std::optional<Tracer> tracer_;
    MetricsRegistry metrics_;
    MetricsSnapshot merged_;
    Profiler profiler_;
    ProfileSnapshot merged_profile_;
    bool profiling_ = false;
    Manifest manifest_;
    std::string trace_path_; ///< non-empty for file sinks
    std::chrono::steady_clock::time_point started_;
};

} // namespace routesync::obs
