#include "obs/coupling_graph.hpp"

#include <set>

#include "obs/json.hpp"

namespace routesync::obs {

void CouplingGraph::add_edge(int src, int dst, std::uint64_t weight) {
    weights_[{src, dst}] += weight;
    total_ += weight;
}

std::vector<CouplingGraph::Edge> CouplingGraph::edges() const {
    std::vector<Edge> out;
    out.reserve(weights_.size());
    for (const auto& [key, w] : weights_) {
        out.push_back(Edge{key.first, key.second, w});
    }
    return out;
}

std::size_t CouplingGraph::node_count() const {
    std::set<int> nodes;
    for (const auto& [key, w] : weights_) {
        nodes.insert(key.first);
        nodes.insert(key.second);
    }
    return nodes.size();
}

std::string CouplingGraph::to_dot() const {
    std::string out = "digraph coupling {\n";
    for (const auto& [key, w] : weights_) {
        out += "  n";
        out += std::to_string(key.first);
        out += " -> n";
        out += std::to_string(key.second);
        out += " [label=\"";
        out += std::to_string(w);
        out += "\" weight=";
        out += std::to_string(w);
        out += "];\n";
    }
    out += "}\n";
    return out;
}

std::string CouplingGraph::to_json() const {
    JsonWriter w;
    w.begin_object();
    w.key("nodes");
    w.value(static_cast<std::uint64_t>(node_count()));
    w.key("edges");
    w.begin_array();
    for (const auto& [key, weight] : weights_) {
        w.begin_object();
        w.key("src");
        w.value(static_cast<std::int64_t>(key.first));
        w.key("dst");
        w.value(static_cast<std::int64_t>(key.second));
        w.key("weight");
        w.value(weight);
        w.end_object();
    }
    w.end_array();
    w.key("total_weight");
    w.value(total_);
    w.end_object();
    return w.str();
}

} // namespace routesync::obs
