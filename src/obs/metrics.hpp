// Metrics registry: named counters, gauges, and distributions for one
// run, with plain-data snapshots that merge deterministically.
//
// The registry is the accumulation side (cheap increments during a run);
// MetricsSnapshot is the exchange format: what run manifests embed and
// what parallel::TrialRunner merges across trials. Merging is defined so
// that the result is a pure function of the snapshot *sequence* — sum
// for counters, Welford-merge for distributions (reusing
// stats::RunningStats), bin-wise sum for histograms, last-writer-wins
// for gauges — so a sweep merged in submission order produces identical
// output for every --jobs value.
//
// Names sort lexicographically in snapshots (std::map), so serialized
// metric blocks are diffable across runs and builds.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "stats/histogram.hpp"
#include "stats/running_stats.hpp"

namespace routesync::obs {

/// Plain-data histogram snapshot (stats::Histogram without behaviour).
struct HistogramSnapshot {
    double lo = 0.0;
    double hi = 1.0;
    std::vector<std::uint64_t> counts;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;

    [[nodiscard]] std::uint64_t total() const noexcept;
};

struct MetricsSnapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, stats::RunningStats> distributions;
    std::map<std::string, HistogramSnapshot> histograms;

    /// Merges `other` into this snapshot (see file comment for the
    /// per-kind rules). Histograms with mismatched binning throw.
    void merge(const MetricsSnapshot& other);

    [[nodiscard]] bool operator==(const MetricsSnapshot& other) const;

    /// The snapshot as a JSON object string (used by manifests and the
    /// benches' --json output).
    [[nodiscard]] std::string to_json() const;
};

/// Folds snapshots left to right — the deterministic reduction
/// TrialRunner applies in trial-submission order.
[[nodiscard]] MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& parts);

class MetricsRegistry {
public:
    /// Named counter cell; creates it at zero on first use. The returned
    /// reference stays valid for the registry's lifetime.
    std::uint64_t& counter(const std::string& name) { return counters_[name]; }
    void add(const std::string& name, std::uint64_t delta) { counters_[name] += delta; }

    /// Named gauge (last value wins).
    void set_gauge(const std::string& name, double value) { gauges_[name] = value; }

    /// Named streaming distribution (mean/stddev/min/max without samples).
    stats::RunningStats& distribution(const std::string& name) {
        return distributions_[name];
    }
    void observe(const std::string& name, double x) { distributions_[name].add(x); }

    /// Named fixed-bin histogram; the first call fixes the binning and
    /// later calls must agree (throws otherwise).
    stats::Histogram& histogram(const std::string& name, double lo, double hi,
                                std::size_t bins);

    [[nodiscard]] MetricsSnapshot snapshot() const;

    void clear();

private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, stats::RunningStats> distributions_;
    std::map<std::string, stats::Histogram> histograms_;
};

} // namespace routesync::obs
