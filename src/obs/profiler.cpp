#include "obs/profiler.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "obs/json.hpp"

namespace routesync::obs {

thread_local Profiler* Profiler::current_ = nullptr;

namespace {
std::atomic<bool> g_process_enabled{false};
} // namespace

void Profiler::set_process_enabled(bool on) noexcept {
    g_process_enabled.store(on, std::memory_order_relaxed);
}

bool Profiler::process_enabled() noexcept {
    return g_process_enabled.load(std::memory_order_relaxed);
}

void Profiler::record(const char* label, double seconds) {
    ProfileEntry& e = entries_[label];
    ++e.count;
    e.total_sec += seconds;
    e.max_sec = std::max(e.max_sec, seconds);
}

ProfileSnapshot Profiler::snapshot() const {
    ProfileSnapshot snap;
    snap.entries = entries_;
    return snap;
}

void ProfileSnapshot::merge(const ProfileSnapshot& other) {
    for (const auto& [label, e] : other.entries) {
        ProfileEntry& mine = entries[label];
        mine.count += e.count;
        mine.total_sec += e.total_sec;
        mine.max_sec = std::max(mine.max_sec, e.max_sec);
    }
}

std::string ProfileSnapshot::to_json() const {
    JsonWriter w;
    w.begin_object();
    for (const auto& [label, e] : entries) {
        w.key(label);
        w.begin_object();
        w.key("count");
        w.value(e.count);
        w.key("total_sec");
        w.value(e.total_sec);
        w.key("max_sec");
        w.value(e.max_sec);
        w.end_object();
    }
    w.end_object();
    return w.str();
}

std::string ProfileSnapshot::format() const {
    std::string out;
    char buf[160];
    std::snprintf(buf, sizeof buf, "%-40s %10s %12s %12s %12s\n", "label",
                  "count", "total_ms", "mean_us", "max_us");
    out += buf;
    for (const auto& [label, e] : entries) {
        // Indent by dot depth so the sorted labels read as a tree.
        const auto depth = static_cast<int>(
            std::count(label.begin(), label.end(), '.'));
        std::string shown(static_cast<std::size_t>(depth) * 2, ' ');
        shown += label;
        const double mean_us =
            e.count > 0 ? e.total_sec * 1e6 / static_cast<double>(e.count) : 0.0;
        std::snprintf(buf, sizeof buf, "%-40s %10llu %12.3f %12.3f %12.3f\n",
                      shown.c_str(), static_cast<unsigned long long>(e.count),
                      e.total_sec * 1e3, mean_us, e.max_sec * 1e6);
        out += buf;
    }
    return out;
}

ProfileSnapshot merge_profiles(const std::vector<ProfileSnapshot>& parts) {
    ProfileSnapshot out;
    for (const ProfileSnapshot& p : parts) {
        out.merge(p);
    }
    return out;
}

} // namespace routesync::obs
