#include "obs/trace_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/json.hpp"

namespace routesync::obs {

TraceSummary summarize(const std::vector<TraceEvent>& events,
                       const SummaryOptions& options) {
    TraceSummary s;
    s.events = events.size();
    s.round_length = options.round_length;
    if (options.round_length > 0.0 && options.phase_bins > 0) {
        s.tx_phase_hist.assign(static_cast<std::size_t>(options.phase_bins), 0);
    }

    // Open busy period per node (cpu_busy_begin seen, end pending).
    std::map<int, double> busy_open;
    bool first = true;
    for (const TraceEvent& e : events) {
        const double t = e.time.sec();
        if (first) {
            s.t_min = s.t_max = t;
            first = false;
        } else {
            s.t_min = std::min(s.t_min, t);
            s.t_max = std::max(s.t_max, t);
        }
        ++s.by_type[trace_event_name(e.type)];

        switch (e.type) {
        case TraceEventType::UpdateTx: {
            ++s.tx_by_node[e.node];
            if (!s.tx_phase_hist.empty()) {
                double offset = std::fmod(t, options.round_length);
                if (offset < 0.0) {
                    offset += options.round_length;
                }
                auto bin = static_cast<std::size_t>(
                    offset / options.round_length *
                    static_cast<double>(s.tx_phase_hist.size()));
                bin = std::min(bin, s.tx_phase_hist.size() - 1);
                ++s.tx_phase_hist[bin];
            }
            break;
        }
        case TraceEventType::CpuBusyBegin:
            // A second begin before the end just restarts the period (the
            // router model never emits that, but stay robust).
            busy_open[e.node] = t;
            break;
        case TraceEventType::CpuBusyEnd: {
            const auto it = busy_open.find(e.node);
            if (it != busy_open.end()) {
                const double len = t - it->second;
                ++s.busy_periods;
                s.busy_total_sec += len;
                s.busy_max_sec = std::max(s.busy_max_sec, len);
                busy_open.erase(it);
            }
            break;
        }
        case TraceEventType::MetricSample: {
            auto& m = s.metric_samples[e.a];
            if (m.count == 0) {
                m.min = m.max = e.b;
            } else {
                m.min = std::min(m.min, e.b);
                m.max = std::max(m.max, e.b);
            }
            m.last = e.b;
            ++m.count;
            break;
        }
        default:
            break;
        }
    }
    s.busy_unclosed = busy_open.size();
    return s;
}

std::string format_summary(const TraceSummary& s) {
    std::string out;
    char buf[160];
    std::snprintf(buf, sizeof buf, "events: %llu  span: [%.6g, %.6g] s\n",
                  static_cast<unsigned long long>(s.events), s.t_min, s.t_max);
    out += buf;

    out += "\nby type:\n";
    for (const auto& [name, count] : s.by_type) {
        std::snprintf(buf, sizeof buf, "  %-16s %12llu\n", name.c_str(),
                      static_cast<unsigned long long>(count));
        out += buf;
    }

    if (!s.tx_by_node.empty()) {
        out += "\ntransmissions by node:\n";
        for (const auto& [node, count] : s.tx_by_node) {
            std::snprintf(buf, sizeof buf, "  node %-4d %12llu\n", node,
                          static_cast<unsigned long long>(count));
            out += buf;
        }
    }

    if (!s.tx_phase_hist.empty()) {
        std::snprintf(buf, sizeof buf,
                      "\ntx phase histogram (round = %.6g s, %zu bins):\n",
                      s.round_length, s.tx_phase_hist.size());
        out += buf;
        std::uint64_t peak = 1;
        for (const std::uint64_t c : s.tx_phase_hist) {
            peak = std::max(peak, c);
        }
        for (std::size_t i = 0; i < s.tx_phase_hist.size(); ++i) {
            const double lo = s.round_length *
                              static_cast<double>(i) /
                              static_cast<double>(s.tx_phase_hist.size());
            const auto bar_len = static_cast<std::size_t>(
                40.0 * static_cast<double>(s.tx_phase_hist[i]) /
                static_cast<double>(peak));
            std::snprintf(buf, sizeof buf, "  %8.3f %10llu  %s\n", lo,
                          static_cast<unsigned long long>(s.tx_phase_hist[i]),
                          std::string(bar_len, '#').c_str());
            out += buf;
        }
    }

    if (!s.metric_samples.empty()) {
        out += "\nmetric samples (by source id):\n";
        std::snprintf(buf, sizeof buf, "  %-6s %10s %12s %12s %12s\n", "id",
                      "count", "min", "max", "last");
        out += buf;
        for (const auto& [id, m] : s.metric_samples) {
            std::snprintf(buf, sizeof buf, "  %-6lld %10llu %12.6g %12.6g %12.6g\n",
                          static_cast<long long>(id),
                          static_cast<unsigned long long>(m.count), m.min, m.max,
                          m.last);
            out += buf;
        }
    }

    if (s.busy_periods > 0 || s.busy_unclosed > 0) {
        const double mean = s.busy_periods > 0
                                ? s.busy_total_sec /
                                      static_cast<double>(s.busy_periods)
                                : 0.0;
        std::snprintf(buf, sizeof buf,
                      "\nbusy periods: %llu  total %.6g s  mean %.6g s  max "
                      "%.6g s  unclosed %llu\n",
                      static_cast<unsigned long long>(s.busy_periods),
                      s.busy_total_sec, mean, s.busy_max_sec,
                      static_cast<unsigned long long>(s.busy_unclosed));
        out += buf;
    }
    return out;
}

std::vector<TraceEvent> filter_events(const std::vector<TraceEvent>& events,
                                      const FilterOptions& options) {
    std::vector<TraceEvent> out;
    for (const TraceEvent& e : events) {
        if (!options.types.empty() &&
            std::find(options.types.begin(), options.types.end(), e.type) ==
                options.types.end()) {
            continue;
        }
        if (options.node.has_value() && e.node != *options.node) {
            continue;
        }
        const double t = e.time.sec();
        if (options.t_min.has_value() && t < *options.t_min) {
            continue;
        }
        if (options.t_max.has_value() && t > *options.t_max) {
            continue;
        }
        out.push_back(e);
    }
    return out;
}

namespace {

// Track ids: node -1 (global events) renders on tid 0; node n on tid n+1.
int chrome_tid(int node) { return node < 0 ? 0 : node + 1; }

void chrome_common(std::string& out, const char* name, const char* ph,
                   double ts_us, int tid) {
    out += "{\"name\": \"";
    out += name;
    out += "\", \"ph\": \"";
    out += ph;
    out += "\", \"ts\": ";
    out += json_number(ts_us);
    out += ", \"pid\": 0, \"tid\": ";
    out += std::to_string(tid);
}

} // namespace

std::string export_chrome(const std::vector<TraceEvent>& events) {
    std::string out = "{\"traceEvents\": [\n";
    bool fresh = true;
    const auto emit = [&out, &fresh](const std::string& line) {
        if (!fresh) {
            out += ",\n";
        }
        fresh = false;
        out += line;
    };

    // Name the tracks up front (metadata events).
    std::vector<int> tids;
    for (const TraceEvent& e : events) {
        const int tid = chrome_tid(e.node);
        if (std::find(tids.begin(), tids.end(), tid) == tids.end()) {
            tids.push_back(tid);
        }
    }
    std::sort(tids.begin(), tids.end());
    for (const int tid : tids) {
        std::string line;
        chrome_common(line, "thread_name", "M", 0.0, tid);
        line += ", \"args\": {\"name\": \"";
        line += tid == 0 ? std::string{"global"}
                         : "node " + std::to_string(tid - 1);
        line += "\"}}";
        emit(line);
    }

    for (const TraceEvent& e : events) {
        const double ts = e.time.sec() * 1e6; // Chrome wants microseconds
        const int tid = chrome_tid(e.node);
        std::string line;
        switch (e.type) {
        case TraceEventType::CpuBusyBegin:
            chrome_common(line, "cpu_busy", "B", ts, tid);
            line += ", \"args\": {\"cost_sec\": " + json_number(e.b) + "}}";
            break;
        case TraceEventType::CpuBusyEnd:
            chrome_common(line, "cpu_busy", "E", ts, tid);
            line += "}";
            break;
        case TraceEventType::ResourceSample:
            // Counter series, one per source index; b is the level.
            chrome_common(line,
                          ("resource." + std::to_string(e.a)).c_str(), "C",
                          ts, tid);
            line += ", \"args\": {\"value\": " + json_number(e.b) + "}}";
            break;
        default:
            // Everything else renders as a thread-scoped instant with the
            // raw slots attached.
            chrome_common(line, trace_event_name(e.type), "i", ts, tid);
            line += ", \"s\": \"t\", \"args\": {\"a\": " +
                    std::to_string(e.a) + ", \"b\": " + json_number(e.b) +
                    ", \"x\": " + json_number(e.x) + "}}";
            break;
        }
        emit(line);
    }
    out += "\n]}\n";
    return out;
}

} // namespace routesync::obs
