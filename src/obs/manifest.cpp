#include "obs/manifest.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/build_info.hpp"
#include "obs/json.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace routesync::obs {

std::uint64_t peak_rss_bytes() noexcept {
#if defined(__unix__) || defined(__APPLE__)
    rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) != 0) {
        return 0;
    }
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(ru.ru_maxrss); // bytes on Darwin
#else
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024U; // KiB on Linux
#endif
#else
    return 0;
#endif
}

std::uint64_t fnv1a(const std::string& bytes) noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

std::optional<std::uint64_t> fnv1a_file(const std::string& path) {
    std::ifstream in{path, std::ios::binary};
    if (!in) {
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return fnv1a(buf.str());
}

void Manifest::set_config(const std::string& key, const std::string& value) {
    config.emplace_back(key, value);
}

void Manifest::set_config(const std::string& key, double value) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    config.emplace_back(key, buf);
}

void Manifest::set_config(const std::string& key, std::uint64_t value) {
    config.emplace_back(key, std::to_string(value));
}

void Manifest::set_config(const std::string& key, int value) {
    config.emplace_back(key, std::to_string(value));
}

void Manifest::set_config(const std::string& key, bool value) {
    config.emplace_back(key, value ? "true" : "false");
}

std::string Manifest::to_json() const {
    JsonWriter w;
    w.begin_object();
    w.key("tool");
    w.value(tool);
    w.key("description");
    w.value(description);
    w.key("git_describe");
    w.value(kGitDescribe);
    w.key("build_type");
    w.value(kBuildType);
    w.key("seeds");
    w.begin_array();
    for (const std::uint64_t s : seeds) {
        w.value(s);
    }
    w.end_array();
    w.key("jobs");
    w.value(static_cast<std::uint64_t>(jobs));
    w.key("config");
    w.begin_object();
    for (const auto& [key, value] : config) {
        w.key(key);
        w.value(value);
    }
    w.end_object();
    // Embed the metrics block verbatim (it is already a JSON object).
    std::string out = w.str();
    out += ", \"metrics\": ";
    out += metrics.to_json();
    out += ", \"profile\": ";
    out += profile.has_value() ? profile->to_json() : "null";
    out += ", \"trace\": ";
    if (trace.has_value()) {
        JsonWriter tw;
        tw.begin_object();
        tw.key("path");
        tw.value(trace->path);
        tw.key("events");
        tw.value(trace->events);
        tw.key("offered");
        tw.value(trace->offered);
        tw.key("dropped");
        tw.value(trace->dropped);
        tw.key("fnv1a");
        if (trace->fnv1a.has_value()) {
            char buf[24];
            std::snprintf(buf, sizeof buf, "%016llx",
                          static_cast<unsigned long long>(*trace->fnv1a));
            tw.value(std::string{buf});
        } else {
            tw.null();
        }
        tw.end_object();
        out += tw.str();
    } else {
        out += "null";
    }
    out += ", \"wall_seconds\": " + json_number(wall_seconds);
    out += ", \"sim_seconds\": " + json_number(sim_seconds);
    out += ", \"peak_rss_bytes\": " + std::to_string(peak_rss_bytes);
    out += ", \"failed_checks\": " + std::to_string(failed_checks);
    out += "}\n";
    return out;
}

void Manifest::write(const std::string& path) const {
    std::ofstream out{path};
    if (!out) {
        throw std::runtime_error{"Manifest::write: cannot open " + path};
    }
    out << to_json();
}

} // namespace routesync::obs
