#include "obs/trace_sink.hpp"

#include <bit>
#include <stdexcept>

#include "obs/json.hpp"

namespace routesync::obs {

RingBufferSink::RingBufferSink(std::size_t capacity) : capacity_{capacity} {
    if (capacity_ == 0) {
        throw std::invalid_argument{"RingBufferSink: capacity must be >= 1"};
    }
}

void RingBufferSink::on_event(const TraceEvent& event) {
    ++seen_;
    if (events_.size() == capacity_) {
        events_.pop_front();
        ++dropped_;
    }
    events_.push_back(event);
}

void HashingSink::on_event(const TraceEvent& event) {
    ++seen_;
    std::uint64_t h = hash_;
    const auto fold = [&h](std::uint64_t word, int bytes) {
        for (int i = 0; i < bytes; ++i) {
            h ^= (word >> (8 * i)) & 0xffU;
            h *= 1099511628211ULL; // FNV-1a 64-bit prime
        }
    };
    fold(event.seq, 8);
    fold(std::bit_cast<std::uint64_t>(event.time.sec()), 8);
    fold(static_cast<std::uint64_t>(event.type), 1);
    fold(static_cast<std::uint64_t>(static_cast<std::uint32_t>(event.node)), 4);
    fold(static_cast<std::uint64_t>(event.a), 8);
    fold(std::bit_cast<std::uint64_t>(event.b), 8);
    fold(std::bit_cast<std::uint64_t>(event.x), 8);
    hash_ = h;
}

std::string trace_event_jsonl(const TraceEvent& event) {
    // Hand-rolled rather than JsonWriter: this runs once per traced
    // event, and a fixed field order keeps traces diffable.
    std::string line;
    line.reserve(96);
    line += "{\"seq\": ";
    line += std::to_string(event.seq);
    line += ", \"t\": ";
    line += json_number(event.time.sec());
    line += ", \"type\": \"";
    line += trace_event_name(event.type); // fixed identifiers, no escaping needed
    line += "\", \"node\": ";
    line += std::to_string(event.node);
    line += ", \"a\": ";
    line += std::to_string(event.a);
    line += ", \"b\": ";
    line += json_number(event.b);
    line += ", \"x\": ";
    line += json_number(event.x);
    line += "}";
    return line;
}

JsonlFileSink::JsonlFileSink(const std::string& path) : path_{path} {
    file_ = std::fopen(path.c_str(), "w");
    if (file_ == nullptr) {
        throw std::runtime_error{"JsonlFileSink: cannot open " + path};
    }
}

JsonlFileSink::~JsonlFileSink() {
    if (file_ != nullptr) {
        std::fclose(file_);
    }
}

void JsonlFileSink::on_event(const TraceEvent& event) {
    ++seen_;
    const std::string line = trace_event_jsonl(event);
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
}

void JsonlFileSink::flush() {
    std::fflush(file_);
}

} // namespace routesync::obs
