// Trace sinks: where emitted TraceEvents go.
//
//   NullSink       — discards everything; the zero-cost default. Emit
//                    sites never reach a sink in the disabled case (they
//                    gate on a null Tracer pointer), so NullSink only
//                    exists for code that wants an unconditional sink.
//   RingBufferSink — keeps the most recent `capacity` events in memory
//                    (drop-oldest overflow, with a dropped counter);
//                    for tests and post-mortem inspection.
//   JsonlFileSink  — streams every event as one JSON object per line;
//                    the interchange format tools/validate_trace.py and
//                    the figure pipeline consume.
//   HashingSink    — folds every event into one 64-bit FNV-1a digest and
//                    keeps nothing; the determinism witness for sweeps
//                    that run thousands of traced simulations (equal
//                    digests <=> equal event streams, at 8 bytes per
//                    whole trace instead of a file per task).
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>

#include "obs/trace_event.hpp"

namespace routesync::obs {

class TraceSink {
public:
    virtual ~TraceSink() = default;

    virtual void on_event(const TraceEvent& event) = 0;

    /// Flushes buffered output (file sinks). Default: nothing.
    virtual void flush() {}

    /// Events offered to the sink so far (accepted or dropped).
    [[nodiscard]] std::uint64_t events_seen() const noexcept { return seen_; }

    /// Events this sink discarded (ring overflow). 0 for sinks that keep
    /// everything; recorded in the manifest trace block so silent
    /// overflow is visible post-mortem.
    [[nodiscard]] virtual std::uint64_t dropped_events() const noexcept { return 0; }

protected:
    std::uint64_t seen_ = 0;
};

class NullSink final : public TraceSink {
public:
    void on_event(const TraceEvent&) override { ++seen_; }
};

class RingBufferSink final : public TraceSink {
public:
    /// Keeps the newest `capacity` events; older ones are dropped (and
    /// counted) once the buffer is full. capacity >= 1 required.
    explicit RingBufferSink(std::size_t capacity);

    void on_event(const TraceEvent& event) override;

    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
    [[nodiscard]] std::uint64_t dropped_events() const noexcept override {
        return dropped_;
    }
    /// Retained events, oldest first.
    [[nodiscard]] const std::deque<TraceEvent>& events() const noexcept {
        return events_;
    }

private:
    std::size_t capacity_;
    std::deque<TraceEvent> events_;
    std::uint64_t dropped_ = 0;
};

class JsonlFileSink final : public TraceSink {
public:
    /// Opens (truncates) `path`; throws std::runtime_error on failure.
    explicit JsonlFileSink(const std::string& path);
    ~JsonlFileSink() override;

    JsonlFileSink(const JsonlFileSink&) = delete;
    JsonlFileSink& operator=(const JsonlFileSink&) = delete;

    void on_event(const TraceEvent& event) override;
    void flush() override;

    [[nodiscard]] const std::string& path() const noexcept { return path_; }

private:
    std::string path_;
    std::FILE* file_ = nullptr;
};

class HashingSink final : public TraceSink {
public:
    /// Digest of everything seen so far: 64-bit FNV-1a over each event's
    /// canonical fixed-width encoding ({seq, time bits, type, node, a,
    /// b bits, x bits}, little-endian), folded in emission order. The
    /// empty-trace digest is the FNV offset basis.
    [[nodiscard]] std::uint64_t digest() const noexcept { return hash_; }

    void on_event(const TraceEvent& event) override;

private:
    static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ULL;
    std::uint64_t hash_ = kOffsetBasis;
};

/// One event as its JSONL line (no trailing newline) — the single
/// serialization used by JsonlFileSink, golden-hash tests, and docs.
[[nodiscard]] std::string trace_event_jsonl(const TraceEvent& event);

} // namespace routesync::obs
