// ResourceSampler: a virtual-time ticker that snapshots resource levels.
//
// Discrete-event traces record *transitions*; resource exhaustion
// questions ("how deep did the queue get while the cluster formed?") need
// *levels* over time. The sampler schedules itself on the simulation
// engine every `cadence` of virtual time and, for each registered source,
// emits one `resource_sample` trace event (a = source index, b = sampled
// value, x = capacity bound, 0 when unbounded) and refreshes a pair of
// gauges (`rs.<name>`, `rs.<name>.cap`).
//
// Sources are plain closures, registered in a fixed order before start();
// the source index is that registration order, so traces are diffable and
// the mapping index -> name lands in the metrics block (gauges) and the
// manifest. Probes read simulator state only — they must not mutate it —
// so sampling never changes simulation results, and a sampled run's trace
// is byte-identical across --jobs values like any other.
//
// Off by default: nothing constructs a sampler unless a cadence was
// requested (ExperimentConfig::sample_every / --sample-every), so the
// disabled path costs nothing at all.
//
// This header depends on sim only; probes over net components live in
// net/net_probes.hpp (the obs library sits below net in the link order).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace routesync::sim {
class Engine;
}

namespace routesync::obs {

class RunContext;

class ResourceSampler {
public:
    struct Sample {
        double value = 0.0;
        double capacity = 0.0; ///< 0 = unbounded / not applicable
    };
    using Probe = std::function<Sample()>;
    /// Schedules a callback `delay` of virtual time from now. The sampler
    /// only needs this plus a clock to tick on any event loop — the
    /// generic Engine and the PmKernel fast path both qualify.
    using ScheduleFn = std::function<void(sim::SimTime delay,
                                          std::function<void()> fn)>;
    using NowFn = std::function<sim::SimTime()>;

    /// `cadence` must be > 0 (throws std::invalid_argument otherwise).
    /// Both the engine and the context must outlive the sampler.
    ResourceSampler(sim::Engine& engine, RunContext& ctx, sim::SimTime cadence);

    /// Engine-free variant: ticks via the supplied scheduler/clock pair
    /// (e.g. PmKernel::schedule_hook / PmKernel::now). watch_engine_queue()
    /// is unavailable on a sampler built this way.
    ResourceSampler(ScheduleFn schedule, NowFn now, RunContext& ctx,
                    sim::SimTime cadence);

    /// Registers a probe read at every tick. `node` tags the emitted
    /// events (-1 when no single node applies). Returns the source index
    /// (the trace events' `a` slot).
    int add_source(std::string name, int node, Probe probe);

    /// Registers the engine's own event-queue sources: live events,
    /// tombstones, and total heap entries. Requires the engine-bound
    /// constructor (throws std::logic_error otherwise).
    void watch_engine_queue();

    /// Schedules the first tick at now + cadence. Call after the sources
    /// are registered.
    void start();
    /// No further ticks are scheduled (the pending one becomes a no-op).
    void stop() noexcept { active_ = false; }

    [[nodiscard]] std::uint64_t ticks() const noexcept { return ticks_; }
    [[nodiscard]] std::size_t sources() const noexcept { return sources_.size(); }
    [[nodiscard]] sim::SimTime cadence() const noexcept { return cadence_; }

private:
    struct Source {
        std::string name;
        int node;
        Probe probe;
    };

    void tick();

    sim::Engine* engine_ = nullptr; ///< non-null on the engine-bound path
    ScheduleFn schedule_;
    NowFn now_;
    RunContext& ctx_;
    sim::SimTime cadence_;
    std::vector<Source> sources_;
    bool active_ = false;
    std::uint64_t ticks_ = 0;
};

} // namespace routesync::obs
