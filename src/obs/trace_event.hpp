// Typed trace events — the vocabulary of the observability layer.
//
// Every event carries the simulation time, the node it concerns, and a
// monotonically assigned sequence number (stamped by obs::Tracer), so a
// trace is a totally ordered, diffable record of one run. Events are
// emitted single-threaded from within one engine's callbacks; parallel
// sweeps give each trial its own engine *and* its own tracer, which is
// what makes traces byte-identical across `--jobs` counts.
//
// The payload is deliberately flat (generic slots `a`, `b`, and `x`) so
// the event fits in a fixed-size ring buffer cell and serializes to one
// JSONL line without allocation. Per-type slot meanings are documented
// below and in docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace routesync::obs {

enum class TraceEventType : std::uint8_t {
    TimerSet,      ///< periodic timer armed; b = interval (s)
    TimerFire,     ///< periodic timer expired
    TimerReset,    ///< pending timer cancelled (triggered update restart)
    PacketEnqueue, ///< packet accepted by a link/LAN queue; a = pkt seq, b = size bytes
    PacketDrop,    ///< packet dropped (queue full, link down, CPU stall, ...);
                   ///< a = pkt seq, b = size bytes
    PacketDeliver, ///< packet handed to the far end; a = pkt seq, b = size bytes
    UpdateTx,      ///< DV agent transmitted an update; a = routes, b = 1 if triggered
    UpdateRx,      ///< DV agent finished processing an update; a = routes,
                   ///< b = sender id
    CpuBusyBegin,  ///< route processor went busy; b = scheduled cost (s)
    CpuBusyEnd,    ///< route processor drained its work queue
    ClusterChange, ///< largest simultaneous timer-set group changed; a = size
    MetricSample,  ///< generic scalar sample (CLI sweeps); a = index,
                   ///< b = value, x = swept parameter
    ResourceSample, ///< ResourceSampler tick; a = source index, b = value,
                    ///< x = capacity/limit (0 when unbounded)
    SyncConfig,     ///< SyncMonitor parameters, once per monitored run;
                    ///< a = hysteresis (microunits), b = round length (s),
                    ///< x = order-parameter threshold
    SyncTransition, ///< order parameter crossed the detector threshold;
                    ///< a = direction (1 = into sync, 0 = out), b = r,
                    ///< x = threshold
    CouplingEdge,   ///< who-reset-whom edge, emitted at finish();
                    ///< node = dst, a = src, b = edge weight (resets)
};

/// Stable wire name of an event type (the JSONL `type` field).
[[nodiscard]] constexpr const char* trace_event_name(TraceEventType type) noexcept {
    switch (type) {
    case TraceEventType::TimerSet: return "timer_set";
    case TraceEventType::TimerFire: return "timer_fire";
    case TraceEventType::TimerReset: return "timer_reset";
    case TraceEventType::PacketEnqueue: return "packet_enqueue";
    case TraceEventType::PacketDrop: return "packet_drop";
    case TraceEventType::PacketDeliver: return "packet_deliver";
    case TraceEventType::UpdateTx: return "update_tx";
    case TraceEventType::UpdateRx: return "update_rx";
    case TraceEventType::CpuBusyBegin: return "cpu_busy_begin";
    case TraceEventType::CpuBusyEnd: return "cpu_busy_end";
    case TraceEventType::ClusterChange: return "cluster_change";
    case TraceEventType::MetricSample: return "metric_sample";
    case TraceEventType::ResourceSample: return "resource_sample";
    case TraceEventType::SyncConfig: return "sync_config";
    case TraceEventType::SyncTransition: return "sync_transition";
    case TraceEventType::CouplingEdge: return "coupling_edge";
    }
    return "unknown";
}

struct TraceEvent {
    std::uint64_t seq = 0; ///< 0-based, assigned by the Tracer
    sim::SimTime time = sim::SimTime::zero();
    TraceEventType type = TraceEventType::TimerSet;
    std::int32_t node = -1; ///< node id, or -1 when no node applies
    std::int64_t a = 0;     ///< per-type integer slot (see TraceEventType)
    double b = 0.0;         ///< per-type scalar slot (see TraceEventType)
    double x = 0.0;         ///< second per-type scalar slot: the swept
                            ///< parameter (metric_sample) or the capacity
                            ///< bound (resource_sample); 0 elsewhere
};

} // namespace routesync::obs
