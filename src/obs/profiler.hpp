// Wall-clock self-profiler: RAII scoped timers aggregated per label.
//
// Usage at an instrumentation site:
//
//   void DistanceVectorAgent::process_update(...) {
//       OBS_PROF_SCOPE("dv.process_update");
//       ...
//   }
//
// The scope records one (count, total, max) sample under its label into
// the thread's current Profiler. With no profiler installed — the
// default — the scope's constructor is a single thread-local load plus
// branch and its destructor a branch, matching the null-tracer discipline
// of the emit sites (docs/PERFORMANCE.md).
//
// Labels are dot-separated paths ("dv.process_update"); ProfileSnapshot
// keys them in a std::map, so serialized profiles are a deterministic
// tree ordered by label. Wall-clock *durations* are inherently
// nondeterministic; what the determinism contract covers is the key set
// and the counts: per-trial snapshots merged in submission order (like
// metrics) carry identical labels and counts for every --jobs value.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace routesync::obs {

struct ProfileEntry {
    std::uint64_t count = 0;
    double total_sec = 0.0;
    double max_sec = 0.0;
};

/// Plain-data aggregate of scoped-timer samples, keyed by label. The
/// exchange format manifests embed and trial drivers merge.
struct ProfileSnapshot {
    std::map<std::string, ProfileEntry> entries;

    /// Folds `other` into this snapshot: counts and totals sum, max takes
    /// the max. A pure function of the snapshot sequence, like
    /// MetricsSnapshot::merge.
    void merge(const ProfileSnapshot& other);

    [[nodiscard]] bool empty() const noexcept { return entries.empty(); }

    /// The snapshot as a JSON object string:
    /// {"label": {"count": N, "total_sec": X, "max_sec": X}, ...}
    [[nodiscard]] std::string to_json() const;

    /// Human-readable table, labels indented by dot depth (the profile
    /// tree --profile prints). Entries sorted by label.
    [[nodiscard]] std::string format() const;
};

/// Folds snapshots left to right — submission order for trial sweeps.
[[nodiscard]] ProfileSnapshot
merge_profiles(const std::vector<ProfileSnapshot>& parts);

class Profiler {
public:
    void record(const char* label, double seconds);

    [[nodiscard]] ProfileSnapshot snapshot() const;
    void clear() { entries_.clear(); }

    /// The calling thread's active profiler, or null (the default) when
    /// profiling is off — the single branch every OBS_PROF_SCOPE tests.
    [[nodiscard]] static Profiler* current() noexcept { return current_; }

    /// Installs `p` as the thread's profiler; returns the previous one so
    /// scoped installers can restore it. Pass nullptr to disable.
    static Profiler* set_current(Profiler* p) noexcept {
        Profiler* prev = current_;
        current_ = p;
        return prev;
    }

    /// Process-wide enable flag: trial drivers consult it to decide
    /// whether to install a per-trial profiler on their worker threads
    /// (thread-locals don't propagate). Off by default.
    static void set_process_enabled(bool on) noexcept;
    [[nodiscard]] static bool process_enabled() noexcept;

private:
    static thread_local Profiler* current_;
    std::map<std::string, ProfileEntry> entries_;
};

/// Installs a profiler for the current scope and restores the previous
/// one on exit — how run_experiment gives each trial its own profile.
class ScopedProfilerInstall {
public:
    explicit ScopedProfilerInstall(Profiler& p) noexcept
        : prev_{Profiler::set_current(&p)} {}
    ~ScopedProfilerInstall() { Profiler::set_current(prev_); }

    ScopedProfilerInstall(const ScopedProfilerInstall&) = delete;
    ScopedProfilerInstall& operator=(const ScopedProfilerInstall&) = delete;

private:
    Profiler* prev_;
};

/// The RAII timer OBS_PROF_SCOPE expands to. `label` must be a string
/// literal (it is not copied).
class ScopedProfile {
public:
    explicit ScopedProfile(const char* label) noexcept
        : profiler_{Profiler::current()} {
        if (profiler_ != nullptr) {
            label_ = label;
            start_ = std::chrono::steady_clock::now();
        }
    }
    ~ScopedProfile() {
        if (profiler_ != nullptr) {
            const auto elapsed = std::chrono::steady_clock::now() - start_;
            profiler_->record(label_,
                              std::chrono::duration<double>(elapsed).count());
        }
    }

    ScopedProfile(const ScopedProfile&) = delete;
    ScopedProfile& operator=(const ScopedProfile&) = delete;

private:
    Profiler* profiler_;
    const char* label_ = nullptr;
    std::chrono::steady_clock::time_point start_{};
};

} // namespace routesync::obs

#define OBS_PROF_CONCAT_IMPL(a, b) a##b
#define OBS_PROF_CONCAT(a, b) OBS_PROF_CONCAT_IMPL(a, b)
/// Times the enclosing scope under `label` (a string literal).
#define OBS_PROF_SCOPE(label) \
    ::routesync::obs::ScopedProfile OBS_PROF_CONCAT(obs_prof_scope_, \
                                                    __LINE__){label}
