#include "obs/resource_sampler.hpp"

#include <stdexcept>

#include "obs/run_context.hpp"
#include "sim/engine.hpp"

namespace routesync::obs {

ResourceSampler::ResourceSampler(sim::Engine& engine, RunContext& ctx,
                                 sim::SimTime cadence)
    : engine_{&engine},
      schedule_{[e = &engine](sim::SimTime delay, std::function<void()> fn) {
          e->schedule_after(delay, std::move(fn));
      }},
      now_{[e = &engine] { return e->now(); }},
      ctx_{ctx},
      cadence_{cadence} {
    if (cadence_ <= sim::SimTime::zero()) {
        throw std::invalid_argument{"ResourceSampler: cadence must be > 0"};
    }
}

ResourceSampler::ResourceSampler(ScheduleFn schedule, NowFn now,
                                 RunContext& ctx, sim::SimTime cadence)
    : schedule_{std::move(schedule)},
      now_{std::move(now)},
      ctx_{ctx},
      cadence_{cadence} {
    if (cadence_ <= sim::SimTime::zero()) {
        throw std::invalid_argument{"ResourceSampler: cadence must be > 0"};
    }
    if (!schedule_ || !now_) {
        throw std::invalid_argument{
            "ResourceSampler: schedule and now hooks must be callable"};
    }
}

int ResourceSampler::add_source(std::string name, int node, Probe probe) {
    const int index = static_cast<int>(sources_.size());
    sources_.push_back(Source{std::move(name), node, std::move(probe)});
    return index;
}

void ResourceSampler::watch_engine_queue() {
    if (engine_ == nullptr) {
        throw std::logic_error{
            "ResourceSampler::watch_engine_queue: no engine attached"};
    }
    add_source("engine.queue.live", -1, [this] {
        return Sample{static_cast<double>(engine_->queue_stats().live), 0.0};
    });
    add_source("engine.queue.tombstones", -1, [this] {
        return Sample{static_cast<double>(engine_->queue_stats().tombstones), 0.0};
    });
    add_source("engine.queue.heap", -1, [this] {
        return Sample{static_cast<double>(engine_->queue_stats().heap_entries), 0.0};
    });
}

void ResourceSampler::start() {
    active_ = true;
    schedule_(cadence_, [this] { tick(); });
}

void ResourceSampler::tick() {
    if (!active_) {
        return;
    }
    ++ticks_;
    const sim::SimTime now = now_();
    Tracer* tr = ctx_.tracer();
    MetricsRegistry& metrics = ctx_.metrics();
    for (std::size_t i = 0; i < sources_.size(); ++i) {
        const Source& src = sources_[i];
        const Sample s = src.probe();
        if (tr != nullptr) {
            tr->emit(TraceEventType::ResourceSample, now, src.node,
                     static_cast<std::int64_t>(i), s.value, s.capacity);
        }
        metrics.set_gauge("rs." + src.name, s.value);
        if (s.capacity > 0.0) {
            metrics.set_gauge("rs." + src.name + ".cap", s.capacity);
        }
    }
    metrics.counter("sampler.ticks") = ticks_;
    schedule_(cadence_, [this] { tick(); });
}

} // namespace routesync::obs
