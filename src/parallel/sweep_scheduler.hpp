// SweepScheduler: one work-stealing pool for a whole parameter sweep.
//
// TrialRunner parallelizes the trials *inside* one grid point and then
// joins — a barrier per point. That wastes cores precisely where sweeps
// hurt: near the phase transition one point's trials run to max_time
// (minutes) while its neighbours' finish in milliseconds, so every round
// of the sweep ends with most workers idle behind the slowest point. The
// scheduler instead pools ALL (grid point x trial) tasks of the sweep up
// front and lets idle workers steal from whoever still has work, so the
// long tail of a hard grid point is shared by the whole machine instead
// of serializing it.
//
// Scheduling is delegated to parallel::TaskPool (contiguous per-worker
// ranges, steal-back-half-of-largest, one global mutex — see
// task_pool.hpp); this class owns what is sweep-specific: lazy config
// materialization, the batched-kernel chunk body, and result assembly.
//
// Determinism contract (same as TrialRunner, sweep-wide):
//   * a task's config is a pure function of its submission index;
//   * results land in a pre-sized slot addressed by submission index;
//   * each task runs with obs = nullptr (per-task metrics/profiles come
//     back in the result; merge_sweep_into folds them in submission
//     order).
// Therefore --jobs N output is byte-identical to --jobs 1 for every N —
// stealing changes who computes a task, never what the task computes or
// where its result goes.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/experiment.hpp"
#include "parallel/task_pool.hpp"

namespace routesync::obs {
class RunContext;
}

namespace routesync::parallel {

struct SweepSchedulerOptions {
    /// Worker threads. 0 = hardware concurrency; 1 = run inline, no
    /// threads.
    std::size_t jobs = 0;
    /// Tasks per claim, executed lock-step in the batched SoA kernel
    /// (core::run_experiment_batch). 0 = auto-tune from the sweep shape;
    /// 1 = per-trial scalar execution (the pre-batching behavior). Since
    /// every batch size produces bit-identical per-task results, this is
    /// a pure performance knob — the determinism contract above holds
    /// for every (jobs, batch) pair.
    std::size_t batch = 0;
};

class SweepScheduler {
public:
    explicit SweepScheduler(SweepSchedulerOptions options = {});

    /// Effective worker count (never 0).
    [[nodiscard]] std::size_t jobs() const noexcept { return pool_.jobs(); }

    /// Batch size a run of `count` tasks would use (resolves the auto
    /// setting; never 0).
    [[nodiscard]] std::size_t effective_batch(std::size_t count) const noexcept;

    /// Queues one task; returns its submission index. The config is
    /// materialized now (copied), so callers may reuse their local.
    std::size_t submit(core::ExperimentConfig config);

    /// Queues `count` tasks whose configs are built on the claiming
    /// worker: `make_config(i)` receives the batch-local index i in
    /// [0, count). Must be a pure function of i (called concurrently,
    /// possibly never for tasks a failed run abandons).
    std::size_t submit_generated(
        std::size_t count,
        std::function<core::ExperimentConfig(std::size_t)> make_config);

    /// Number of tasks currently queued.
    [[nodiscard]] std::size_t pending() const noexcept { return count_; }

    /// Runs every queued task; returns results in submission order and
    /// clears the queue (the scheduler is reusable). First task exception
    /// is rethrown after all workers join.
    [[nodiscard]] std::vector<core::ExperimentResult> run();

    /// Convenience one-shots mirroring TrialRunner's API.
    [[nodiscard]] std::vector<core::ExperimentResult>
    run_all(const std::vector<core::ExperimentConfig>& configs);
    [[nodiscard]] std::vector<core::ExperimentResult> run_generated(
        std::size_t count,
        const std::function<core::ExperimentConfig(std::size_t)>& make_config);

    /// Steals performed by the last run() — observability for tests and
    /// the bench footers. 0 under jobs = 1.
    [[nodiscard]] std::size_t steals() const noexcept { return steals_; }

private:
    struct Batch {
        std::size_t first = 0;
        std::size_t count = 0;
        std::function<core::ExperimentConfig(std::size_t)> make;
    };

    [[nodiscard]] core::ExperimentConfig materialize(std::size_t index) const;

    TaskPool pool_;
    std::size_t batch_;
    std::size_t count_ = 0;
    std::vector<Batch> batches_;
    std::size_t steals_ = 0;
};

/// Folds every task's metrics (and non-empty profiles) into `ctx` in
/// submission order — the deterministic sweep-level counterpart of
/// merge_trial_metrics/merge_trial_profiles.
void merge_sweep_into(obs::RunContext& ctx,
                      const std::vector<core::ExperimentResult>& results);

} // namespace routesync::parallel
