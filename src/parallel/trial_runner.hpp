// TrialRunner: fan independent Monte Carlo trials across a thread pool,
// deterministically.
//
// Every paper figure is a sweep of independent run_experiment() trials
// over seeds and parameter grids. Each trial builds its own Engine,
// model, and RNG from its ExperimentConfig, so trials share no mutable
// state and parallelize embarrassingly. The runner's contract:
//
//   * Trials are identified by their submission index. Results come back
//     in submission order, and each trial's config is fixed before any
//     thread runs — so the output of `jobs = N` is byte-identical to
//     `jobs = 1` for every N.
//   * Seeding discipline: a trial's RNG stream must be a pure function
//     of its submission index (and a base seed), never of thread
//     identity or execution order. derive_seed() provides well-spread
//     per-index seeds from one base seed; config generators should use
//     it (or any other index-only rule, e.g. the legacy `seed * 31`
//     formulas) rather than sharing one RNG across trials.
//   * jobs = 0 means "use the hardware concurrency"; jobs = 1 runs
//     inline with no threads.
//
// Caution: ExperimentConfig::make_policy is invoked from worker threads;
// factories must be safe to call concurrently (stateless factories are).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/experiment.hpp"
#include "parallel/parallel_for.hpp"

namespace routesync::parallel {

/// Derives the seed for trial `index` from a single base seed, using a
/// SplitMix64 step over Weyl-sequence increments. Adjacent indices get
/// statistically independent streams (this is the standard splitmix
/// stream-derivation trick), and the mapping is a pure function of
/// (base, index) — the cornerstone of run-order independence.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) noexcept;

struct TrialRunnerOptions {
    /// Worker threads to use. 0 = hardware concurrency; 1 = run inline.
    std::size_t jobs = 0;
};

class TrialRunner {
public:
    explicit TrialRunner(TrialRunnerOptions options = {});

    /// Effective worker count (never 0).
    [[nodiscard]] std::size_t jobs() const noexcept { return jobs_; }

    /// Runs every config through run_experiment(); results are returned
    /// in the same order as `configs`.
    [[nodiscard]] std::vector<core::ExperimentResult>
    run_all(const std::vector<core::ExperimentConfig>& configs) const;

    /// Generator form for sweeps too large (or too awkward) to
    /// materialize: `make_config(i)` builds the config for trial i, on
    /// the worker thread that claims it. The generator must be a pure
    /// function of the index (it may be called concurrently).
    [[nodiscard]] std::vector<core::ExperimentResult>
    run_generated(std::size_t count,
                  const std::function<core::ExperimentConfig(std::size_t)>& make_config) const;

private:
    std::size_t jobs_;
};

/// Folds every trial's per-run metric snapshot (ExperimentResult::metrics)
/// in submission order. Because the fold order is the submission order —
/// not the completion order — the merged snapshot is byte-identical for
/// every --jobs value.
[[nodiscard]] obs::MetricsSnapshot
merge_trial_metrics(const std::vector<core::ExperimentResult>& results);

/// Same fold for the per-trial profiler snapshots. Labels and counts are
/// --jobs invariant (each trial's profiler sees exactly that trial's
/// scopes); wall-clock totals are genuinely nondeterministic.
[[nodiscard]] obs::ProfileSnapshot
merge_trial_profiles(const std::vector<core::ExperimentResult>& results);

} // namespace routesync::parallel
