// TaskPool: the work-stealing index pool behind every parallel fan-out.
//
// SweepScheduler grew this scheduling core for PM parameter sweeps; the
// packet-level scenario sweeps need the identical discipline over a
// different task body, so the pool lives here on its own. It schedules
// *indices*, nothing else: run(count, chunk, body) partitions [0, count)
// into contiguous chunks of at most `chunk` indices and invokes
// `body(lo, len)` for each, across `jobs` workers.
//
// Scheduling: each worker owns a contiguous index range. A worker
// consumes its range front to back; when empty it steals the back half
// of the largest remaining range. Claims are O(jobs) under ONE global
// mutex — tasks are entire experiments (>=100us, usually way more), so
// the lock is uncontended noise, and a single mutex keeps the stealing
// logic obviously correct.
//
// Determinism contract: the pool decides WHO runs a chunk and WHEN,
// never what the chunk computes. Callers that (a) derive each task's
// inputs purely from its index and (b) write each result to a slot
// addressed by its index get byte-identical output for every jobs
// value — stealing changes the thread, not the task.
//
// Exceptions: with jobs <= 1 the inline loop propagates immediately.
// With workers, the first chunk exception is captured and rethrown
// after all workers join (remaining chunks still run — a sweep's tasks
// are independent, and tearing down mid-flight would discard work).
#pragma once

#include <cstddef>
#include <functional>
#include <mutex>
#include <vector>

namespace routesync::parallel {

struct TaskPoolOptions {
    /// Worker threads. 0 = hardware concurrency; 1 = run inline, no
    /// threads.
    std::size_t jobs = 0;
};

class TaskPool {
public:
    explicit TaskPool(TaskPoolOptions options = {});

    /// Effective worker count (never 0).
    [[nodiscard]] std::size_t jobs() const noexcept { return jobs_; }

    /// Runs `body(lo, len)` over chunks covering [0, count), len <=
    /// chunk (chunk == 0 is treated as 1). Returns the number of steals
    /// performed (0 under jobs = 1). Rethrows the first chunk exception
    /// after the pool drains.
    std::size_t run(std::size_t count, std::size_t chunk,
                    const std::function<void(std::size_t lo, std::size_t len)>&
                        body);

private:
    struct Range {
        std::size_t lo = 0;
        std::size_t hi = 0;
    };

    /// Claims the next chunk of up to `max_len` contiguous indices for
    /// `worker` (own range front, then steal). Returns false when the
    /// pool is drained. A chunk never spans two workers' ranges, so
    /// stealing still rebalances at chunk granularity.
    [[nodiscard]] bool claim(std::size_t worker, std::size_t max_len,
                             std::size_t& out_lo, std::size_t& out_len);

    std::size_t jobs_;
    std::mutex mutex_; ///< guards ranges_ and steals_ during run()
    std::vector<Range> ranges_;
    std::size_t steals_ = 0;
};

} // namespace routesync::parallel
