// Minimal deterministic fork-join primitives: run `count` independent
// index-addressed tasks on a fixed-size pool of worker threads.
//
// Work distribution is a single shared atomic index (workers claim the
// next unclaimed index until the range is exhausted), so load-balancing
// is automatic and there is no per-task queue or allocation. Crucially,
// the *scheduling* order never affects the *result* order: map_index()
// writes each result into its own pre-sized vector element, so output is
// in index order no matter which thread ran which index. That property
// is what lets higher layers promise "--jobs N output is byte-identical
// to --jobs 1".
//
// jobs <= 1 runs everything inline on the calling thread — no threads
// are created, which keeps single-job runs exactly as debuggable (and
// exactly as ordered) as the pre-parallel code.
//
// Exceptions: the first exception thrown by any task is captured and
// rethrown on the calling thread after all workers have joined; the
// remaining tasks may or may not have run.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace routesync::parallel {

/// Default worker count: the hardware concurrency, or 1 when the runtime
/// cannot tell (hardware_concurrency() may legitimately return 0).
[[nodiscard]] inline std::size_t hardware_jobs() noexcept {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// Invokes `fn(i)` for every i in [0, count), distributing indices over
/// `jobs` threads (the calling thread counts as one of them). Blocks
/// until every claimed index has finished.
template <typename F>
void for_index(std::size_t count, std::size_t jobs, F&& fn) {
    static_assert(std::is_invocable_v<F&, std::size_t>,
                  "for_index callable must accept a std::size_t index");
    if (count == 0) {
        return;
    }
    if (jobs <= 1 || count == 1) {
        for (std::size_t i = 0; i < count; ++i) {
            fn(i);
        }
        return;
    }
    if (jobs > count) {
        jobs = count; // never spawn a thread with nothing to claim
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    const auto worker = [&]() noexcept {
        for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count) {
                return;
            }
            try {
                fn(i);
            } catch (...) {
                const std::lock_guard<std::mutex> lock{error_mutex};
                if (!first_error) {
                    first_error = std::current_exception();
                }
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(jobs - 1);
    for (std::size_t t = 0; t + 1 < jobs; ++t) {
        pool.emplace_back(worker);
    }
    worker(); // the calling thread pulls its weight too
    for (std::thread& t : pool) {
        t.join();
    }
    if (first_error) {
        std::rethrow_exception(first_error);
    }
}

/// Maps `fn` over [0, count) and returns the results **in index order**,
/// regardless of which thread computed which index. R must be default-
/// constructible (elements are pre-sized, then assigned in place).
template <typename R, typename F>
[[nodiscard]] std::vector<R> map_index(std::size_t count, std::size_t jobs, F&& fn) {
    static_assert(std::is_convertible_v<std::invoke_result_t<F&, std::size_t>, R>,
                  "map_index callable must return a value convertible to R");
    std::vector<R> out(count);
    for_index(count, jobs, [&](std::size_t i) { out[i] = fn(i); });
    return out;
}

} // namespace routesync::parallel
