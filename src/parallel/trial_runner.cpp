#include "parallel/trial_runner.hpp"

#include "rng/splitmix64.hpp"

namespace routesync::parallel {

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) noexcept {
    // Offset the base along the SplitMix64 Weyl constant, then run one
    // splitmix output step. Distinct indices land in distinct, well-mixed
    // positions of the splitmix sequence even for base = 0.
    rng::SplitMix64 mix{base + index * 0x9e3779b97f4a7c15ULL};
    return mix();
}

TrialRunner::TrialRunner(TrialRunnerOptions options)
    : jobs_{options.jobs == 0 ? hardware_jobs() : options.jobs} {}

std::vector<core::ExperimentResult>
TrialRunner::run_all(const std::vector<core::ExperimentConfig>& configs) const {
    return map_index<core::ExperimentResult>(configs.size(), jobs_,
                                             [&](std::size_t i) {
                                                 // A shared RunContext is not
                                                 // safe across worker threads;
                                                 // trial metrics come back in
                                                 // each result instead.
                                                 core::ExperimentConfig config =
                                                     configs[i];
                                                 config.obs = nullptr;
                                                 return core::run_experiment(config);
                                             });
}

std::vector<core::ExperimentResult> TrialRunner::run_generated(
    std::size_t count,
    const std::function<core::ExperimentConfig(std::size_t)>& make_config) const {
    return map_index<core::ExperimentResult>(count, jobs_, [&](std::size_t i) {
        core::ExperimentConfig config = make_config(i);
        config.obs = nullptr;
        return core::run_experiment(config);
    });
}

obs::MetricsSnapshot
merge_trial_metrics(const std::vector<core::ExperimentResult>& results) {
    obs::MetricsSnapshot merged;
    for (const core::ExperimentResult& result : results) {
        merged.merge(result.metrics);
    }
    return merged;
}

obs::ProfileSnapshot
merge_trial_profiles(const std::vector<core::ExperimentResult>& results) {
    obs::ProfileSnapshot merged;
    for (const core::ExperimentResult& result : results) {
        merged.merge(result.profile);
    }
    return merged;
}

} // namespace routesync::parallel
