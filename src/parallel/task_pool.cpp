#include "parallel/task_pool.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "parallel/parallel_for.hpp"

namespace routesync::parallel {

TaskPool::TaskPool(TaskPoolOptions options)
    : jobs_{options.jobs == 0 ? hardware_jobs() : options.jobs} {}

bool TaskPool::claim(std::size_t worker, std::size_t max_len,
                     std::size_t& out_lo, std::size_t& out_len) {
    const std::lock_guard<std::mutex> lock{mutex_};
    Range& own = ranges_[worker];
    if (own.lo < own.hi) {
        const std::size_t avail = own.hi - own.lo;
        out_lo = own.lo;
        out_len = avail < max_len ? avail : max_len;
        own.lo += out_len;
        return true;
    }
    // Own range drained: steal the back half of the largest remaining
    // range. The owner keeps consuming its front, so the handoff never
    // contends on a task, and the biggest victim is where the workload's
    // long tail lives.
    std::size_t victim = ranges_.size();
    std::size_t victim_rem = 0;
    for (std::size_t w = 0; w < ranges_.size(); ++w) {
        const std::size_t rem = ranges_[w].hi - ranges_[w].lo;
        if (w != worker && rem > victim_rem) {
            victim = w;
            victim_rem = rem;
        }
    }
    if (victim == ranges_.size()) {
        return false; // pool drained
    }
    Range& v = ranges_[victim];
    const std::size_t take = (victim_rem + 1) / 2; // at least 1
    own.lo = v.hi - take;
    own.hi = v.hi;
    v.hi -= take;
    ++steals_;
    const std::size_t avail = own.hi - own.lo;
    out_lo = own.lo;
    out_len = avail < max_len ? avail : max_len;
    own.lo += out_len;
    return true;
}

std::size_t TaskPool::run(
    std::size_t count, std::size_t chunk,
    const std::function<void(std::size_t lo, std::size_t len)>& body) {
    steals_ = 0;
    if (count == 0) {
        return 0;
    }
    const std::size_t max_len = chunk == 0 ? 1 : chunk;
    const std::size_t jobs = std::min(jobs_, count);
    if (jobs <= 1) {
        // Inline, in index order — the reference execution that every
        // parallel run must reproduce byte for byte.
        for (std::size_t lo = 0; lo < count; lo += max_len) {
            body(lo, std::min(max_len, count - lo));
        }
        return 0;
    }

    // Contiguous initial shards, one per worker; stealing rebalances.
    ranges_.assign(jobs, Range{});
    for (std::size_t w = 0; w < jobs; ++w) {
        ranges_[w] = Range{w * count / jobs, (w + 1) * count / jobs};
    }

    std::exception_ptr first_error;
    std::mutex error_mutex;
    const auto worker = [&](std::size_t w) noexcept {
        std::size_t lo = 0;
        std::size_t len = 0;
        while (claim(w, max_len, lo, len)) {
            try {
                body(lo, len);
            } catch (...) {
                const std::lock_guard<std::mutex> lock{error_mutex};
                if (!first_error) {
                    first_error = std::current_exception();
                }
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(jobs - 1);
    for (std::size_t w = 1; w < jobs; ++w) {
        pool.emplace_back(worker, w);
    }
    worker(0); // the calling thread pulls its weight too
    for (std::thread& t : pool) {
        t.join();
    }
    if (first_error) {
        std::rethrow_exception(first_error);
    }
    return steals_;
}

} // namespace routesync::parallel
