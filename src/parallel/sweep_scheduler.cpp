#include "parallel/sweep_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <exception>
#include <thread>
#include <utility>

#include "obs/run_context.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/trial_runner.hpp"

namespace routesync::parallel {

SweepScheduler::SweepScheduler(SweepSchedulerOptions options)
    : jobs_{options.jobs == 0 ? hardware_jobs() : options.jobs},
      batch_{options.batch} {}

std::size_t SweepScheduler::effective_batch(std::size_t count) const noexcept {
    if (batch_ != 0) {
        return batch_;
    }
    // Auto: 16 lanes is the measured sweet spot of the batched kernel
    // (bench/sweep_wallclock). Under multiple workers, cap the chunk so
    // every worker still gets a few claims — stealing needs granularity
    // to rebalance the sweep's long tail.
    constexpr std::size_t kPreferred = 16;
    if (jobs_ <= 1) {
        return kPreferred;
    }
    const std::size_t per_worker = count / (jobs_ * 2);
    const std::size_t cap = per_worker > 1 ? per_worker : 1;
    return cap < kPreferred ? cap : kPreferred;
}

std::size_t SweepScheduler::submit(core::ExperimentConfig config) {
    const std::size_t index = count_;
    batches_.push_back(Batch{
        index, 1,
        [config = std::move(config)](std::size_t) { return config; }});
    ++count_;
    return index;
}

std::size_t SweepScheduler::submit_generated(
    std::size_t count,
    std::function<core::ExperimentConfig(std::size_t)> make_config) {
    const std::size_t index = count_;
    if (count == 0) {
        return index;
    }
    batches_.push_back(Batch{index, count, std::move(make_config)});
    count_ += count;
    return index;
}

core::ExperimentConfig SweepScheduler::materialize(std::size_t index) const {
    // Find the batch containing `index`: last batch with first <= index.
    const auto it = std::upper_bound(
        batches_.begin(), batches_.end(), index,
        [](std::size_t i, const Batch& b) { return i < b.first; });
    assert(it != batches_.begin());
    const Batch& batch = *std::prev(it);
    assert(index >= batch.first && index < batch.first + batch.count);
    return batch.make(index - batch.first);
}

bool SweepScheduler::claim(std::size_t worker, std::size_t max_len,
                           std::size_t& out_lo, std::size_t& out_len) {
    const std::lock_guard<std::mutex> lock{mutex_};
    Range& own = ranges_[worker];
    if (own.lo < own.hi) {
        const std::size_t avail = own.hi - own.lo;
        out_lo = own.lo;
        out_len = avail < max_len ? avail : max_len;
        own.lo += out_len;
        return true;
    }
    // Own range drained: steal the back half of the largest remaining
    // range. The owner keeps consuming its front, so the handoff never
    // contends on a task, and the biggest victim is where the sweep's
    // long tail (the near-transition grid points) lives.
    std::size_t victim = ranges_.size();
    std::size_t victim_rem = 0;
    for (std::size_t w = 0; w < ranges_.size(); ++w) {
        const std::size_t rem = ranges_[w].hi - ranges_[w].lo;
        if (w != worker && rem > victim_rem) {
            victim = w;
            victim_rem = rem;
        }
    }
    if (victim == ranges_.size()) {
        return false; // sweep drained
    }
    Range& v = ranges_[victim];
    const std::size_t take = (victim_rem + 1) / 2; // at least 1
    own.lo = v.hi - take;
    own.hi = v.hi;
    v.hi -= take;
    ++steals_;
    const std::size_t avail = own.hi - own.lo;
    out_lo = own.lo;
    out_len = avail < max_len ? avail : max_len;
    own.lo += out_len;
    return true;
}

std::vector<core::ExperimentResult> SweepScheduler::run() {
    const std::size_t count = count_;
    std::vector<core::ExperimentResult> results(count);
    steals_ = 0;

    const std::size_t batch = effective_batch(count);
    // A chunk of tasks runs lock-step in the batched kernel; len == 1
    // takes the scalar path. Both are bit-identical per task, so chunk
    // boundaries (and therefore --batch) never show in the results.
    const auto run_chunk = [&](std::size_t lo, std::size_t len) {
        if (len == 1) {
            core::ExperimentConfig config = materialize(lo);
            config.obs = nullptr; // a RunContext is not safe across workers
            results[lo] = core::run_experiment(config);
            return;
        }
        std::vector<core::ExperimentConfig> configs;
        configs.reserve(len);
        for (std::size_t i = lo; i < lo + len; ++i) {
            configs.push_back(materialize(i));
            configs.back().obs = nullptr;
        }
        std::vector<core::ExperimentResult> chunk =
            core::run_experiment_batch(configs);
        for (std::size_t i = 0; i < len; ++i) {
            results[lo + i] = std::move(chunk[i]);
        }
    };

    const std::size_t jobs = std::min(jobs_, std::max<std::size_t>(count, 1));
    if (jobs <= 1) {
        // Inline, in submission order — the reference execution that
        // every parallel run must reproduce byte for byte.
        for (std::size_t lo = 0; lo < count; lo += batch) {
            run_chunk(lo, std::min(batch, count - lo));
        }
        batches_.clear();
        count_ = 0;
        return results;
    }

    // Contiguous initial shards, one per worker; stealing rebalances.
    ranges_.assign(jobs, Range{});
    for (std::size_t w = 0; w < jobs; ++w) {
        ranges_[w] = Range{w * count / jobs, (w + 1) * count / jobs};
    }

    std::exception_ptr first_error;
    std::mutex error_mutex;
    const auto worker = [&](std::size_t w) noexcept {
        std::size_t lo = 0;
        std::size_t len = 0;
        while (claim(w, batch, lo, len)) {
            try {
                run_chunk(lo, len);
            } catch (...) {
                const std::lock_guard<std::mutex> lock{error_mutex};
                if (!first_error) {
                    first_error = std::current_exception();
                }
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(jobs - 1);
    for (std::size_t w = 1; w < jobs; ++w) {
        pool.emplace_back(worker, w);
    }
    worker(0); // the calling thread pulls its weight too
    for (std::thread& t : pool) {
        t.join();
    }
    batches_.clear();
    count_ = 0;
    if (first_error) {
        std::rethrow_exception(first_error);
    }
    return results;
}

std::vector<core::ExperimentResult>
SweepScheduler::run_all(const std::vector<core::ExperimentConfig>& configs) {
    for (const core::ExperimentConfig& config : configs) {
        (void)submit(config);
    }
    return run();
}

std::vector<core::ExperimentResult> SweepScheduler::run_generated(
    std::size_t count,
    const std::function<core::ExperimentConfig(std::size_t)>& make_config) {
    (void)submit_generated(count, make_config);
    return run();
}

void merge_sweep_into(obs::RunContext& ctx,
                      const std::vector<core::ExperimentResult>& results) {
    ctx.merge_metrics(merge_trial_metrics(results));
    const obs::ProfileSnapshot profiles = merge_trial_profiles(results);
    if (!profiles.empty()) {
        ctx.merge_profile(profiles);
    }
}

} // namespace routesync::parallel
