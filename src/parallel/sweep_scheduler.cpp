#include "parallel/sweep_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/run_context.hpp"
#include "parallel/trial_runner.hpp"

namespace routesync::parallel {

SweepScheduler::SweepScheduler(SweepSchedulerOptions options)
    : pool_{TaskPoolOptions{options.jobs}}, batch_{options.batch} {}

std::size_t SweepScheduler::effective_batch(std::size_t count) const noexcept {
    if (batch_ != 0) {
        return batch_;
    }
    // Auto: 16 lanes is the measured sweet spot of the batched kernel
    // (bench/sweep_wallclock). Under multiple workers, cap the chunk so
    // every worker still gets a few claims — stealing needs granularity
    // to rebalance the sweep's long tail.
    constexpr std::size_t kPreferred = 16;
    if (pool_.jobs() <= 1) {
        return kPreferred;
    }
    const std::size_t per_worker = count / (pool_.jobs() * 2);
    const std::size_t cap = per_worker > 1 ? per_worker : 1;
    return cap < kPreferred ? cap : kPreferred;
}

std::size_t SweepScheduler::submit(core::ExperimentConfig config) {
    const std::size_t index = count_;
    batches_.push_back(Batch{
        index, 1,
        [config = std::move(config)](std::size_t) { return config; }});
    ++count_;
    return index;
}

std::size_t SweepScheduler::submit_generated(
    std::size_t count,
    std::function<core::ExperimentConfig(std::size_t)> make_config) {
    const std::size_t index = count_;
    if (count == 0) {
        return index;
    }
    batches_.push_back(Batch{index, count, std::move(make_config)});
    count_ += count;
    return index;
}

core::ExperimentConfig SweepScheduler::materialize(std::size_t index) const {
    // Find the batch containing `index`: last batch with first <= index.
    const auto it = std::upper_bound(
        batches_.begin(), batches_.end(), index,
        [](std::size_t i, const Batch& b) { return i < b.first; });
    assert(it != batches_.begin());
    const Batch& batch = *std::prev(it);
    assert(index >= batch.first && index < batch.first + batch.count);
    return batch.make(index - batch.first);
}

std::vector<core::ExperimentResult> SweepScheduler::run() {
    const std::size_t count = count_;
    std::vector<core::ExperimentResult> results(count);

    // A chunk of tasks runs lock-step in the batched kernel; len == 1
    // takes the scalar path. Both are bit-identical per task, so chunk
    // boundaries (and therefore --batch) never show in the results.
    const auto run_chunk = [&](std::size_t lo, std::size_t len) {
        if (len == 1) {
            core::ExperimentConfig config = materialize(lo);
            config.obs = nullptr; // a RunContext is not safe across workers
            results[lo] = core::run_experiment(config);
            return;
        }
        std::vector<core::ExperimentConfig> configs;
        configs.reserve(len);
        for (std::size_t i = lo; i < lo + len; ++i) {
            configs.push_back(materialize(i));
            configs.back().obs = nullptr;
        }
        std::vector<core::ExperimentResult> chunk =
            core::run_experiment_batch(configs);
        for (std::size_t i = 0; i < len; ++i) {
            results[lo + i] = std::move(chunk[i]);
        }
    };

    // The pool clears our queue even if a chunk threw: the surviving
    // tasks already ran (independent experiments), so a rethrowing run()
    // must not leave them queued for a retry.
    struct ClearQueue {
        SweepScheduler* self;
        ~ClearQueue() {
            self->batches_.clear();
            self->count_ = 0;
        }
    } clear_queue{this};

    steals_ = 0;
    steals_ = pool_.run(count, effective_batch(count), run_chunk);
    return results;
}

std::vector<core::ExperimentResult>
SweepScheduler::run_all(const std::vector<core::ExperimentConfig>& configs) {
    for (const core::ExperimentConfig& config : configs) {
        (void)submit(config);
    }
    return run();
}

std::vector<core::ExperimentResult> SweepScheduler::run_generated(
    std::size_t count,
    const std::function<core::ExperimentConfig(std::size_t)>& make_config) {
    (void)submit_generated(count, make_config);
    return run();
}

void merge_sweep_into(obs::RunContext& ctx,
                      const std::vector<core::ExperimentResult>& results) {
    ctx.merge_metrics(merge_trial_metrics(results));
    const obs::ProfileSnapshot profiles = merge_trial_profiles(results);
    if (!profiles.empty()) {
        ctx.merge_profile(profiles);
    }
}

} // namespace routesync::parallel
