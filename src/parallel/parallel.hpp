// Umbrella header for the routesync::parallel subsystem: deterministic
// fork-join primitives (parallel_for.hpp), the Monte Carlo trial runner
// (trial_runner.hpp), and the sweep-wide work-stealing scheduler
// (sweep_scheduler.hpp).
#pragma once

#include "parallel/parallel_for.hpp"    // IWYU pragma: export
#include "parallel/sweep_scheduler.hpp" // IWYU pragma: export
#include "parallel/trial_runner.hpp"    // IWYU pragma: export
