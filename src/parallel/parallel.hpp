// Umbrella header for the routesync::parallel subsystem: deterministic
// fork-join primitives (parallel_for.hpp) and the Monte Carlo trial
// runner (trial_runner.hpp).
#pragma once

#include "parallel/parallel_for.hpp"  // IWYU pragma: export
#include "parallel/trial_runner.hpp"  // IWYU pragma: export
