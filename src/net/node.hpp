// Network nodes: the common interface machinery plus the Host endpoint.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/engine.hpp"

namespace routesync::net {

/// Base class for anything attached to links. Interfaces are added by the
/// Network builder; index order is the order of connect() calls.
class Node {
public:
    Node(sim::Engine& engine, NodeId id, std::string name)
        : engine_{engine}, id_{id}, name_{std::move(name)} {}
    virtual ~Node() = default;

    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    [[nodiscard]] NodeId id() const noexcept { return id_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// Registers an outgoing link towards `neighbor`; returns the interface
    /// index. Called by the Network builder.
    int add_interface(Link* out, NodeId neighbor);

    [[nodiscard]] int iface_count() const noexcept {
        return static_cast<int>(ifaces_.size());
    }
    [[nodiscard]] NodeId neighbor(int iface) const { return ifaces_.at(static_cast<std::size_t>(iface)).neighbor; }

    /// Transmits on a specific interface.
    void send_on(int iface, Packet p) {
        ifaces_.at(static_cast<std::size_t>(iface)).out->send(std::move(p));
    }

    /// Delivery upcall from the incoming link.
    virtual void receive(Packet p, int iface) = 0;

    /// The simulation engine this node lives on (apps and protocol agents
    /// schedule their timers through it).
    [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }

private:
    struct Iface {
        Link* out;
        NodeId neighbor;
    };

    sim::Engine& engine_;
    NodeId id_;
    std::string name_;
    std::vector<Iface> ifaces_;
};

inline int Node::add_interface(Link* out, NodeId neighbor) {
    ifaces_.push_back(Iface{out, neighbor});
    return static_cast<int>(ifaces_.size()) - 1;
}

/// An end host: replies to pings, hands other local traffic to the
/// attached application, and sends everything through its first interface
/// (hosts are single-homed stubs).
class Host final : public Node {
public:
    using Node::Node;

    /// Application hook for packets addressed to this host (audio sinks,
    /// ping apps observing replies, ...). Ping requests are answered
    /// automatically before this fires.
    std::function<void(const Packet&)> on_packet;

    /// Sends via the default (first) interface. No-op if unattached.
    void send(Packet p) {
        if (iface_count() > 0) {
            send_on(0, std::move(p));
        }
    }

    void receive(Packet p, int /*iface*/) override {
        if (p.dst != id()) {
            return; // hosts do not forward
        }
        if (p.type == PacketType::PingRequest) {
            Packet reply = p;
            reply.type = PacketType::PingReply;
            reply.src = id();
            reply.dst = p.src;
            send(std::move(reply));
        }
        if (on_packet) {
            on_packet(p);
        }
    }
};

} // namespace routesync::net
