// Network nodes: the common interface machinery plus the Host endpoint.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/packet_pool.hpp"
#include "sim/engine.hpp"

namespace routesync::net {

/// Base class for anything attached to links. Interfaces are added by the
/// Network builder; index order is the order of connect() calls.
class Node {
public:
    Node(sim::Engine& engine, NodeId id, std::string name)
        : engine_{engine}, id_{id}, name_{std::move(name)} {}
    virtual ~Node() = default;

    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    [[nodiscard]] NodeId id() const noexcept { return id_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// Registers an outgoing link towards `neighbor`; returns the interface
    /// index. Called by the Network builder.
    int add_interface(Link* out, NodeId neighbor);

    [[nodiscard]] int iface_count() const noexcept {
        return static_cast<int>(ifaces_.size());
    }
    [[nodiscard]] NodeId neighbor(int iface) const { return ifaces_.at(static_cast<std::size_t>(iface)).neighbor; }

    /// Transmits on a specific interface.
    void send_on(int iface, PooledPacket p) {
        ifaces_.at(static_cast<std::size_t>(iface)).out->send(std::move(p));
    }
    void send_on(int iface, Packet p) {
        send_on(iface, PacketPool::local().acquire(std::move(p)));
    }

    /// Delivery upcall from the incoming link. The handle is usually the
    /// sole owner; broadcast media hand out shared handles, so mutators
    /// must check unique() before writing in place.
    virtual void receive(PooledPacket p, int iface) = 0;

    /// The simulation engine this node lives on (apps and protocol agents
    /// schedule their timers through it).
    [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }

private:
    struct Iface {
        Link* out;
        NodeId neighbor;
    };

    sim::Engine& engine_;
    NodeId id_;
    std::string name_;
    std::vector<Iface> ifaces_;
};

inline int Node::add_interface(Link* out, NodeId neighbor) {
    ifaces_.push_back(Iface{out, neighbor});
    return static_cast<int>(ifaces_.size()) - 1;
}

/// An end host: replies to pings, hands other local traffic to the
/// attached application, and sends everything through its first interface
/// (hosts are single-homed stubs).
class Host final : public Node {
public:
    using Node::Node;

    /// Application hook for packets addressed to this host (audio sinks,
    /// ping apps observing replies, ...). Ping requests are answered
    /// automatically before this fires.
    std::function<void(const Packet&)> on_packet;

    /// Sends via the default (first) interface. No-op if unattached.
    void send(PooledPacket p) {
        if (iface_count() > 0) {
            send_on(0, std::move(p));
        }
    }
    void send(Packet p) { send(PacketPool::local().acquire(std::move(p))); }

    void receive(PooledPacket p, int /*iface*/) override {
        if (p->dst != id()) {
            return; // hosts do not forward
        }
        if (p->type == PacketType::PingRequest) {
            if (on_packet) {
                // The reply reuses the request's slot, so snapshot the
                // request for the observer hook (which fires after the
                // send, matching the original ordering).
                const Packet request = *p;
                send_reply(std::move(p));
                on_packet(request);
            } else {
                send_reply(std::move(p));
            }
            return;
        }
        if (on_packet) {
            on_packet(*p);
        }
    }

private:
    /// Turns the request into a reply in place (or in a fresh slot when
    /// the handle is shared) and sends it back.
    void send_reply(PooledPacket p) {
        if (!p.unique()) {
            p = p.pool()->acquire(Packet{*p});
        }
        Packet& pkt = *p;
        const NodeId requester = pkt.src;
        pkt.type = PacketType::PingReply;
        pkt.src = id();
        pkt.dst = requester;
        send(std::move(p));
    }
};

} // namespace routesync::net
