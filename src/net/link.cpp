#include "net/link.hpp"

#include <stdexcept>
#include <utility>

#include "obs/tracer.hpp"

namespace routesync::net {

Link::Link(sim::Engine& engine, const LinkConfig& config,
           std::function<void(PooledPacket)> deliver)
    : engine_{engine},
      rate_bps_{config.rate_bps},
      prop_delay_{config.delay},
      queue_capacity_{config.queue_packets},
      queue_{config.queue_packets},
      deliver_{std::move(deliver)} {
    if (!deliver_) {
        throw std::invalid_argument{"Link: delivery callback required"};
    }
    if (prop_delay_ < sim::SimTime::zero()) {
        throw std::invalid_argument{"Link: negative propagation delay"};
    }
}

sim::SimTime Link::serialization_time(std::uint32_t bytes) const noexcept {
    if (rate_bps_ <= 0.0) {
        return sim::SimTime::zero();
    }
    return sim::SimTime::seconds(static_cast<double>(bytes) * 8.0 / rate_bps_);
}

void Link::trace_drop(const Packet& p) const {
    if (obs::Tracer* tr = engine_.tracer()) {
        tr->emit(obs::TraceEventType::PacketDrop, engine_.now(), p.src,
                 static_cast<std::int64_t>(p.seq), p.size_bytes);
    }
}

void Link::send(PooledPacket p) {
    if (!up_) {
        ++down_drops_;
        trace_drop(*p);
        return;
    }
    if (transmitting_) {
        obs::Tracer* const tr = engine_.tracer();
        if (tr == nullptr) {
            queue_.push(std::move(p)); // drop-tail on overflow
            return;
        }
        // queue_.push releases the handle on overflow, so read the fields
        // the event needs before handing it over.
        const auto seq = static_cast<std::int64_t>(p->seq);
        const double size = p->size_bytes;
        const int src = p->src;
        const bool accepted = queue_.push(std::move(p));
        tr->emit(accepted ? obs::TraceEventType::PacketEnqueue
                          : obs::TraceEventType::PacketDrop,
                 engine_.now(), src, seq, size);
        return;
    }
    if (obs::Tracer* tr = engine_.tracer()) {
        tr->emit(obs::TraceEventType::PacketEnqueue, engine_.now(), p->src,
                 static_cast<std::int64_t>(p->seq), p->size_bytes);
    }
    start_transmission(std::move(p));
}

void Link::start_transmission(PooledPacket p) {
    transmitting_ = true;
    const sim::SimTime tx = serialization_time(p->size_bytes);
    // Delivery after serialization + propagation; the transmitter frees up
    // after serialization alone.
    engine_.schedule_after(tx + prop_delay_, [this, pkt = std::move(p)]() mutable {
        if (obs::Tracer* tr = engine_.tracer()) {
            tr->emit(obs::TraceEventType::PacketDeliver, engine_.now(), pkt->dst,
                     static_cast<std::int64_t>(pkt->seq), pkt->size_bytes);
        }
        deliver_(std::move(pkt));
    });
    engine_.schedule_after(tx, [this] { transmission_done(); });
}

void Link::transmission_done() {
    transmitting_ = false;
    if (auto next = queue_.pop()) {
        start_transmission(std::move(next));
    }
}

} // namespace routesync::net
