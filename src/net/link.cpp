#include "net/link.hpp"

#include <stdexcept>
#include <utility>

namespace routesync::net {

Link::Link(sim::Engine& engine, double rate_bps, sim::SimTime prop_delay,
           std::size_t queue_packets, std::function<void(PooledPacket)> deliver)
    : engine_{engine},
      rate_bps_{rate_bps},
      prop_delay_{prop_delay},
      queue_{queue_packets},
      deliver_{std::move(deliver)} {
    if (!deliver_) {
        throw std::invalid_argument{"Link: delivery callback required"};
    }
    if (prop_delay_ < sim::SimTime::zero()) {
        throw std::invalid_argument{"Link: negative propagation delay"};
    }
}

sim::SimTime Link::serialization_time(std::uint32_t bytes) const noexcept {
    if (rate_bps_ <= 0.0) {
        return sim::SimTime::zero();
    }
    return sim::SimTime::seconds(static_cast<double>(bytes) * 8.0 / rate_bps_);
}

void Link::send(PooledPacket p) {
    if (!up_) {
        ++down_drops_;
        return;
    }
    if (transmitting_) {
        queue_.push(std::move(p)); // drop-tail on overflow
        return;
    }
    start_transmission(std::move(p));
}

void Link::start_transmission(PooledPacket p) {
    transmitting_ = true;
    const sim::SimTime tx = serialization_time(p->size_bytes);
    // Delivery after serialization + propagation; the transmitter frees up
    // after serialization alone.
    engine_.schedule_after(tx + prop_delay_,
                           [this, pkt = std::move(p)]() mutable { deliver_(std::move(pkt)); });
    engine_.schedule_after(tx, [this] { transmission_done(); });
}

void Link::transmission_done() {
    transmitting_ = false;
    if (auto next = queue_.pop()) {
        start_transmission(std::move(next));
    }
}

} // namespace routesync::net
