#include "net/link.hpp"

#include <stdexcept>
#include <utility>

#include "net/elements/callback_sink.hpp"
#include "net/elements/fifo_queue.hpp"
#include "net/elements/red_queue.hpp"

namespace routesync::net {

Link::Link(sim::Engine& engine, const LinkConfig& config,
           std::function<void(PooledPacket)> deliver)
    : graph_{engine} {
    if (!deliver) {
        throw std::invalid_argument{"Link: delivery callback required"};
    }
    if (config.delay < sim::SimTime::zero()) {
        throw std::invalid_argument{"Link: negative propagation delay"};
    }
    tx_ = &graph_.add<elements::DelayLink>("tx", config.rate_bps, config.delay);
    if (config.queue_disc == elements::QueueDisc::Red) {
        queue_ = &graph_.add<elements::RedQueue>("queue", config.queue_packets,
                                                 config.red);
    } else {
        queue_ = &graph_.add<elements::FifoQueue>("queue", config.queue_packets);
    }
    graph_.add<elements::CallbackSink>("sink", std::move(deliver));
    graph_.wire("tx[1] -> queue; queue -> [1]tx; tx -> sink");
    graph_.finalize(config.dispatch);
}

} // namespace routesync::net
