// ElementGraph: owns a set of named elements and wires their ports into
// a packet path, either programmatically (connect) or from a declarative
// spec string (wire) in Click's config syntax:
//
//     source -> q -> xmit          // port 0 implied
//     xmit[1] -> [0]q              // output 1 of xmit into input 0 of q
//
// Statements separate on ';' or newline; '//' starts a comment. Chains
// are allowed: for a middle endpoint, the port in front of the name is
// the input the previous stage pushes into / pulls from, and the port
// after the name is the output feeding the next stage.
//
// finalize() enforces the completeness rule a runnable path needs: every
// push *output* and every pull *input* must be connected (a dangling
// push output would throw at the first packet; a dangling pull input
// would starve its transmitter forever). Push inputs and pull outputs
// may stay open — they are the graph's entry and exit points.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "net/elements/element.hpp"

namespace routesync::net::elements {

class ElementGraph {
public:
    explicit ElementGraph(sim::Engine& engine) : engine_{engine} {}

    ElementGraph(const ElementGraph&) = delete;
    ElementGraph& operator=(const ElementGraph&) = delete;

    /// Constructs an element of type T in place under `name` (which is
    /// also passed to the element as its name). Throws on duplicates.
    template <typename T, typename... Args>
    T& add(const std::string& name, Args&&... args) {
        auto elem =
            std::make_unique<T>(engine_, name, std::forward<Args>(args)...);
        T& ref = *elem;
        adopt(std::move(elem));
        return ref;
    }

    /// Takes ownership of an already-constructed element, keyed by its
    /// own name().
    Element& adopt(std::unique_ptr<Element> elem);

    [[nodiscard]] Element* find(const std::string& name) noexcept;
    /// Throws std::invalid_argument when `name` is unknown.
    [[nodiscard]] Element& get(const std::string& name);

    /// connect("a", 1, "b", 0) == a[1] -> [0]b.
    void connect(const std::string& from, int out_port, const std::string& to,
                 int in_port);

    /// Wires connections from a spec string (syntax in the file comment).
    /// Throws std::invalid_argument on parse errors, unknown names, and
    /// every connection error Element::connect_output rejects.
    void wire(const std::string& spec);

    /// The graph's wiring as a spec string: one `// name :: Kind`
    /// comment line per element (insertion order) followed by one
    /// `a[p] -> [q]b` statement per connected output (element order,
    /// then port order). The result is deterministic for a given build
    /// order and parses back through wire() on a graph holding the same
    /// element names — so a manifest that embeds it records a
    /// reconstructible topology, not just a description.
    [[nodiscard]] std::string wire_spec() const;

    /// Validates completeness (see file comment), then resolves every
    /// element's cached port dispatch: DispatchMode::Fast (the default)
    /// installs devirtualized peer calls, DispatchMode::Virtual clears
    /// them so every hop takes the original checked virtual path (the
    /// differential reference). Throws std::logic_error naming the
    /// first dangling port. Idempotent; re-finalizing may switch modes.
    void finalize(DispatchMode mode = DispatchMode::Fast);
    [[nodiscard]] bool finalized() const noexcept { return finalized_; }
    [[nodiscard]] DispatchMode dispatch_mode() const noexcept {
        return dispatch_mode_;
    }

    /// Per-element counters for every element, insertion order, as
    /// "<prefix>.<element>.<counter>".
    void collect_metrics(obs::MetricsRegistry& reg,
                         const std::string& prefix = "elem") const;

    /// Elements in insertion order (stable across runs, so metric and
    /// trace emission order is deterministic).
    [[nodiscard]] const std::vector<std::unique_ptr<Element>>& elements()
        const noexcept {
        return elements_;
    }
    [[nodiscard]] std::size_t size() const noexcept { return elements_.size(); }
    [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }

private:
    sim::Engine& engine_;
    std::vector<std::unique_ptr<Element>> elements_;
    std::map<std::string, std::size_t> by_name_;
    bool finalized_ = false;
    DispatchMode dispatch_mode_ = DispatchMode::Fast;
};

} // namespace routesync::net::elements
