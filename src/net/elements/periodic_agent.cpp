#include "net/elements/periodic_agent.hpp"

#include <stdexcept>

#include "net/packet.hpp"
#include "rng/distributions.hpp"

namespace routesync::net::elements {

PeriodicAgent::PeriodicAgent(sim::Engine& engine, std::string name,
                             const PeriodicAgentConfig& config)
    : Element{engine, std::move(name)}, config_{config}, gen_{config.seed} {
    if (config_.jitter < sim::SimTime::zero() ||
        config_.jitter > config_.period) {
        throw std::invalid_argument{"PeriodicAgent: need 0 <= Tr <= Tp"};
    }
    if (config_.process_cost < sim::SimTime::zero()) {
        throw std::invalid_argument{"PeriodicAgent: negative Tc"};
    }
}

void PeriodicAgent::on_timer() {
    Packet update;
    update.type = PacketType::RoutingUpdate;
    update.src = config_.node;
    update.size_bytes = config_.update_bytes;
    ++updates_sent_;
    output(0, PacketPool::local().acquire(std::move(update)));
    if (config_.reset == TimerResetRule::AtExpiry) {
        // Free-running clock: the draw is unaffected by processing load.
        extend_busy();
        rearm();
        return;
    }
    pending_own_ = true;
    extend_busy();
    if (!check_scheduled_) {
        check_scheduled_ = true;
        engine().schedule_at(busy_end_, [this] { busy_check(); });
    }
}

void PeriodicAgent::push(int port, PooledPacket p) {
    if (port != 0) {
        bad_port("push into", port);
    }
    hear(*p);
}

void PeriodicAgent::hear(const Packet& /*p*/) {
    ++updates_heard_;
    extend_busy();
}

void PeriodicAgent::extend_busy() {
    // The serial route processor: work arriving while busy queues behind
    // the current backlog; work arriving while idle starts now.
    const sim::SimTime now = engine().now();
    busy_end_ = busy_end_ > now ? busy_end_ + config_.process_cost
                                : now + config_.process_cost;
    if (pending_own_ && !check_scheduled_) {
        check_scheduled_ = true;
        engine().schedule_at(busy_end_, [this] { busy_check(); });
    }
}

void PeriodicAgent::busy_check() {
    if (busy_end_ > engine().now()) {
        engine().schedule_at(busy_end_, [this] { busy_check(); });
        return;
    }
    check_scheduled_ = false;
    if (pending_own_) {
        pending_own_ = false;
        rearm();
    }
}

void PeriodicAgent::rearm() {
    ++timer_arms_;
    if (on_timer_set) {
        on_timer_set(config_.node, engine().now());
    }
    const double interval =
        rng::uniform_real(gen_, (config_.period - config_.jitter).sec(),
                          (config_.period + config_.jitter).sec());
    schedule_timer_after(sim::SimTime::seconds(interval));
}

void PeriodicAgent::collect_metrics(obs::MetricsRegistry& reg,
                                    const std::string& prefix) const {
    reg.add(prefix + "." + name() + ".updates_sent", updates_sent_);
    reg.add(prefix + "." + name() + ".updates_heard", updates_heard_);
    reg.add(prefix + "." + name() + ".timer_arms", timer_arms_);
}

} // namespace routesync::net::elements
