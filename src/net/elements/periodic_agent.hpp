// PeriodicAgent: the paper's PERIOD+JITTER periodic-update source as an
// element — the gridroutetable.hh shape from kohler/click's Grid code:
// a route-advertisement timer that re-arms itself with a jittered
// interval, here uniform in [Tp - Tr, Tp + Tr].
//
// Two timer-reset rules (the routing::TimerReset dichotomy, restated
// here so net/ stays below routing/ in the layer order):
//
//   AfterProcessing — the paper's weakly-coupled rule. Each update (its
//     own, or one heard on input 0) costs Tc of processing; the next
//     interval is drawn only after the processing backlog drains. This
//     is the coupling that synchronizes routers — and this element is
//     byte-identical to bench/ablation_shared_lan.cpp's LanRouter.
//
//   AtExpiry — the uncoupled control: re-arm immediately at expiry, so
//     processing load never touches the phase.
//
// Ports: input 0 "hear" (push) — updates from the medium; output 0
// "out" (push) — this agent's own updates, as pooled RoutingUpdate
// packets with src = node.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/elements/element.hpp"
#include "rng/rng.hpp"

namespace routesync::net::elements {

/// When the next-interval draw happens (see file comment).
enum class TimerResetRule {
    AfterProcessing, ///< Periodic Messages model (synchronizing)
    AtExpiry,        ///< free-running clock (RFC 1058 suggestion)
};

struct PeriodicAgentConfig {
    int node = 0;                       ///< src id stamped on updates
    sim::SimTime period = sim::SimTime::seconds(121);   ///< Tp
    sim::SimTime jitter = sim::SimTime::seconds(0.1);   ///< Tr
    sim::SimTime process_cost = sim::SimTime::seconds(0.11); ///< Tc
    std::uint32_t update_bytes = 1000;
    TimerResetRule reset = TimerResetRule::AfterProcessing;
    std::uint64_t seed = 1;
};

class PeriodicAgent final : public Element {
public:
    PeriodicAgent(sim::Engine& engine, std::string name,
                  const PeriodicAgentConfig& config);

    [[nodiscard]] const char* kind() const noexcept override {
        return "PeriodicAgent";
    }
    [[nodiscard]] std::vector<PortSpec> input_ports() const override {
        return {{PortKind::Push, "hear"}};
    }
    [[nodiscard]] std::vector<PortSpec> output_ports() const override {
        return {{PortKind::Push, "out"}};
    }

    /// Arms the first expiry at absolute time `at` (the random initial
    /// phase the paper draws uniformly in [0, Tp)).
    void start(sim::SimTime at) { schedule_timer_at(at); }

    void push(int port, PooledPacket p) override;
    /// A heard update, for hosts that hold the medium's const Packet&
    /// (SharedLan receive callbacks) instead of a pooled handle.
    void hear(const Packet& p);

    [[nodiscard]] FastOps fast_ops() noexcept override {
        return fast_ops_for<PeriodicAgent>();
    }

    void on_timer() override;

    /// Fires when the next interval is drawn (ClusterTracker hookup).
    std::function<void(int node, sim::SimTime when)> on_timer_set;

    [[nodiscard]] int node() const noexcept { return config_.node; }
    [[nodiscard]] std::uint64_t updates_sent() const noexcept {
        return updates_sent_;
    }
    [[nodiscard]] std::uint64_t updates_heard() const noexcept {
        return updates_heard_;
    }
    [[nodiscard]] std::uint64_t timer_arms() const noexcept {
        return timer_arms_;
    }

    void collect_metrics(obs::MetricsRegistry& reg,
                         const std::string& prefix) const override;

private:
    void extend_busy();
    void busy_check();
    void rearm();

    PeriodicAgentConfig config_;
    rng::DefaultEngine gen_;
    sim::SimTime busy_end_ = -sim::SimTime::seconds(1);
    bool pending_own_ = false;
    bool check_scheduled_ = false;
    std::uint64_t updates_sent_ = 0;
    std::uint64_t updates_heard_ = 0;
    std::uint64_t timer_arms_ = 0;
};

} // namespace routesync::net::elements
