// RedQueue: Random Early Detection AQM as a queue element.
//
// The discipline of Floyd & Jacobson, "Random Early Detection Gateways
// for Congestion Avoidance" (1993) — the companion fix the sync paper
// cites as "random early drop fixes it" [FJ92]: keep an EWMA of the
// queue length and drop arrivals probabilistically between min_th and
// max_th, so drops decorrelate across flows instead of clustering at
// the buffer cliff the way drop-tail's do.
//
// Determinism: the drop lottery uses a private mt19937_64 seeded from
// RedTuning::seed, so a run consumes no shared randomness and is
// byte-identical for any --jobs value.
#pragma once

#include <random>
#include <utility>

#include "net/elements/queue_element.hpp"

namespace routesync::net::elements {

/// RED parameters, in packets (the paper's Section 11 defaults scaled to
/// the small buffers these scenarios run with).
struct RedTuning {
    double min_th = 5.0;   ///< below: never early-drop
    double max_th = 15.0;  ///< above: always drop
    double max_p = 0.02;   ///< early-drop probability at max_th
    double weight = 0.002; ///< EWMA weight w_q for the average queue
    std::uint64_t seed = 1;///< drop-lottery seed
};

class RedQueue final : public QueueElement {
public:
    RedQueue(sim::Engine& engine, std::string name, std::size_t max_packets,
             const RedTuning& tuning = {});

    [[nodiscard]] const char* kind() const noexcept override {
        return "RedQueue";
    }

    bool enqueue(PooledPacket p) override;
    [[nodiscard]] PooledPacket dequeue() override;
    [[nodiscard]] const Packet* peek() const override {
        return items_.empty() ? nullptr : items_.front().get();
    }

    [[nodiscard]] FastOps fast_ops() noexcept override {
        return fast_ops_for<RedQueue>();
    }

    [[nodiscard]] std::size_t size() const noexcept override {
        return items_.size();
    }
    [[nodiscard]] std::uint64_t bytes() const noexcept override {
        return bytes_;
    }
    [[nodiscard]] std::size_t capacity() const noexcept override {
        return max_packets_;
    }
    [[nodiscard]] const QueueStats& stats() const noexcept override {
        return stats_;
    }

    /// Current EWMA queue average, in packets.
    [[nodiscard]] double average() const noexcept { return avg_; }
    /// Probabilistic drops between min_th and max_th.
    [[nodiscard]] std::uint64_t early_drops() const noexcept {
        return early_drops_;
    }
    /// Deterministic drops: avg >= max_th or the buffer physically full.
    [[nodiscard]] std::uint64_t forced_drops() const noexcept {
        return forced_drops_;
    }

    void collect_metrics(obs::MetricsRegistry& reg,
                         const std::string& prefix) const override;

private:
    [[nodiscard]] bool should_drop();

    std::size_t max_packets_;
    RedTuning tuning_;
    std::deque<PooledPacket> items_;
    std::uint64_t bytes_ = 0;
    QueueStats stats_;
    double avg_ = 0.0;
    std::int64_t count_ = -1; ///< arrivals since the last early drop
    std::uint64_t early_drops_ = 0;
    std::uint64_t forced_drops_ = 0;
    std::mt19937_64 gen_;
    std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

} // namespace routesync::net::elements
