// Umbrella header for the element layer (see docs/ELEMENTS.md).
#pragma once

#include "net/elements/callback_sink.hpp"
#include "net/elements/delay_link.hpp"
#include "net/elements/element.hpp"
#include "net/elements/element_graph.hpp"
#include "net/elements/fifo_queue.hpp"
#include "net/elements/periodic_agent.hpp"
#include "net/elements/queue_element.hpp"
#include "net/elements/red_queue.hpp"
