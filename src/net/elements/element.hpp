// The element API: composable packet-processing stages in the style of
// the Click modular router (kohler/click). An Element declares a fixed
// signature of typed ports; an ElementGraph (element_graph.hpp) wires
// outputs to inputs by name and validates the result.
//
// Port semantics (Click's push/pull duality):
//
//   Push — the upstream element hands a packet downstream immediately:
//     `output(port, p)` on the source invokes `push(port, p)` on the
//     connected peer. Sources of packets (agents, link receivers) have
//     push outputs; queues have push inputs.
//
//   Pull — the downstream element asks upstream for a packet when it is
//     ready for one: `input(port)` on the sink invokes `pull(port)` on
//     the connected peer, which returns an empty handle when it has
//     nothing. Transmitters drain queues through pull inputs, so the
//     queue — not the wire — absorbs the backlog.
//
// A connection is only legal between an output and an input of the same
// kind; `Element::connect_output` enforces this, plus port-range and
// double-connection checks, so a mis-wired graph fails at construction
// instead of corrupting a run.
//
// Timer hook: an element that needs virtual time arms its (single) timer
// with `schedule_timer_at/after`; the engine calls `on_timer()` when it
// expires. Re-arming from inside `on_timer` is the idiomatic periodic
// loop (see PeriodicAgent).
//
// Observability: `collect_metrics` publishes per-element counters under
// "elem.<name>.*" (obs::MetricsRegistry, PR 3); elements that accept or
// drop packets emit packet_enqueue/packet_drop trace events through the
// engine's tracer exactly like the pre-element Link/SharedLan did.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/packet_pool.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"

namespace routesync::net::elements {

/// Direction-typed port classes (Click's push/pull).
enum class PortKind : std::uint8_t {
    Push, ///< data moves when the upstream element decides
    Pull, ///< data moves when the downstream element asks
};

[[nodiscard]] constexpr const char* port_kind_name(PortKind kind) noexcept {
    return kind == PortKind::Push ? "push" : "pull";
}

/// One port of an element's fixed signature.
struct PortSpec {
    PortKind kind;
    const char* label; ///< for diagnostics ("xmit", "overflow", ...)
};

class Element {
public:
    Element(sim::Engine& engine, std::string name)
        : engine_{engine}, name_{std::move(name)} {}
    virtual ~Element() { cancel_timer(); }

    Element(const Element&) = delete;
    Element& operator=(const Element&) = delete;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] sim::Engine& engine() const noexcept { return engine_; }

    /// Element class name for diagnostics ("FifoQueue", ...).
    [[nodiscard]] virtual const char* kind() const noexcept = 0;

    /// The fixed port signature. Connections are validated against it.
    [[nodiscard]] virtual std::vector<PortSpec> input_ports() const = 0;
    [[nodiscard]] virtual std::vector<PortSpec> output_ports() const = 0;

    /// Packet handed to a push input. Default: no push inputs.
    virtual void push(int port, PooledPacket p);

    /// Packet requested from a pull output; empty handle when there is
    /// nothing to give. Default: no pull outputs.
    [[nodiscard]] virtual PooledPacket pull(int port);

    /// Timer expiry hook; armed with schedule_timer_at/after.
    virtual void on_timer() {}

    /// Publishes this element's counters as "<prefix>.<name>.<counter>".
    /// Default: nothing to publish.
    virtual void collect_metrics(obs::MetricsRegistry& reg,
                                 const std::string& prefix) const;

    /// Wires this element's `out_port` to `downstream`'s `in_port`.
    /// Throws std::invalid_argument on port-range violations, kind
    /// mismatches (push output into pull input or vice versa), and
    /// double connections on either end.
    void connect_output(int out_port, Element& downstream, int in_port);

    [[nodiscard]] bool output_connected(int port) const noexcept;
    [[nodiscard]] bool input_connected(int port) const noexcept;

    /// The downstream peer wired to `out_port`: {element, its input
    /// port}, or {nullptr, 0} when the port is out of range or
    /// unconnected. Read-only topology introspection — this is how
    /// ElementGraph::wire_spec() recovers the wiring.
    struct PeerView {
        const Element* element = nullptr;
        int port = 0;
    };
    [[nodiscard]] PeerView output_peer(int port) const noexcept;

protected:
    /// Pushes `p` to whatever is connected downstream of `out_port`.
    /// Throws std::logic_error when the port was never wired (finalize()
    /// catches this earlier for graph-built elements).
    void output(int out_port, PooledPacket p);

    /// Pulls from whatever is connected upstream of `in_port` (which
    /// must be a pull input); empty handle when upstream is empty.
    [[nodiscard]] PooledPacket input(int in_port);

    void schedule_timer_at(sim::SimTime t) {
        cancel_timer();
        timer_event_ = engine_.schedule_at(t, [this] { on_timer(); });
        timer_armed_ = true;
    }
    void schedule_timer_after(sim::SimTime dt) {
        cancel_timer();
        timer_event_ = engine_.schedule_after(dt, [this] { on_timer(); });
        timer_armed_ = true;
    }
    void cancel_timer() noexcept {
        if (timer_armed_) {
            engine_.cancel(timer_event_);
            timer_armed_ = false;
        }
    }

    [[noreturn]] void bad_port(const char* action, int port) const;

private:
    struct Peer {
        Element* element = nullptr;
        int port = 0;
    };

    void ensure_peer_slots();

    sim::Engine& engine_;
    std::string name_;
    std::vector<Peer> outputs_; ///< indexed by output port
    std::vector<Peer> inputs_;  ///< indexed by input port
    bool peers_sized_ = false;
    sim::EventHandle timer_event_{};
    bool timer_armed_ = false;
};

} // namespace routesync::net::elements
