// The element API: composable packet-processing stages in the style of
// the Click modular router (kohler/click). An Element declares a fixed
// signature of typed ports; an ElementGraph (element_graph.hpp) wires
// outputs to inputs by name and validates the result.
//
// Port semantics (Click's push/pull duality):
//
//   Push — the upstream element hands a packet downstream immediately:
//     `output(port, p)` on the source invokes `push(port, p)` on the
//     connected peer. Sources of packets (agents, link receivers) have
//     push outputs; queues have push inputs.
//
//   Pull — the downstream element asks upstream for a packet when it is
//     ready for one: `input(port)` on the sink invokes `pull(port)` on
//     the connected peer, which returns an empty handle when it has
//     nothing. Transmitters drain queues through pull inputs, so the
//     queue — not the wire — absorbs the backlog.
//
// A connection is only legal between an output and an input of the same
// kind; `Element::connect_output` enforces this, plus port-range and
// double-connection checks, so a mis-wired graph fails at construction
// instead of corrupting a run.
//
// Timer hook: an element that needs virtual time arms its (single) timer
// with `schedule_timer_at/after`; the engine calls `on_timer()` when it
// expires. Re-arming from inside `on_timer` is the idiomatic periodic
// loop (see PeriodicAgent).
//
// Observability: `collect_metrics` publishes per-element counters under
// "elem.<name>.*" (obs::MetricsRegistry, PR 3); elements that accept or
// drop packets emit packet_enqueue/packet_drop trace events through the
// engine's tracer exactly like the pre-element Link/SharedLan did.
// Fast dispatch (PR 10): ElementGraph::finalize() resolves every
// connection to a cached {peer, port, function pointer} triple stored
// in the port slot, so a steady-state output()/input() is one indirect
// call through a devirtualized thunk instead of a connected-check plus
// a vtable dispatch. Elements opt in by overriding fast_ops() (usually
// `return fast_ops_for<Self>();`, which requires the class to be
// final); elements that don't opt in — and every graph finalized with
// DispatchMode::Virtual — keep taking the original checked virtual
// path, which is preserved bit-for-bit as the differential reference.
// The cached state is dispatch-only: topology introspection
// (output_peer, wire_spec) always reads the canonical peer table.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "net/elements/packet_batch.hpp"
#include "net/packet_pool.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"

namespace routesync::net::elements {

/// How a finalized graph routes output()/input() calls.
enum class DispatchMode : std::uint8_t {
    Fast,    ///< cached devirtualized dispatch (the default)
    Virtual, ///< the original checked virtual path (differential reference)
};

/// Direction-typed port classes (Click's push/pull).
enum class PortKind : std::uint8_t {
    Push, ///< data moves when the upstream element decides
    Pull, ///< data moves when the downstream element asks
};

[[nodiscard]] constexpr const char* port_kind_name(PortKind kind) noexcept {
    return kind == PortKind::Push ? "push" : "pull";
}

/// One port of an element's fixed signature.
struct PortSpec {
    PortKind kind;
    const char* label; ///< for diagnostics ("xmit", "overflow", ...)
};

class Element {
public:
    Element(sim::Engine& engine, std::string name)
        : engine_{engine}, name_{std::move(name)} {}
    virtual ~Element() { cancel_timer(); }

    Element(const Element&) = delete;
    Element& operator=(const Element&) = delete;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] sim::Engine& engine() const noexcept { return engine_; }

    /// Element class name for diagnostics ("FifoQueue", ...).
    [[nodiscard]] virtual const char* kind() const noexcept = 0;

    /// The fixed port signature. Connections are validated against it.
    [[nodiscard]] virtual std::vector<PortSpec> input_ports() const = 0;
    [[nodiscard]] virtual std::vector<PortSpec> output_ports() const = 0;

    /// Packet handed to a push input. Default: no push inputs.
    virtual void push(int port, PooledPacket p);

    /// Packet requested from a pull output; empty handle when there is
    /// nothing to give. Default: no pull outputs.
    [[nodiscard]] virtual PooledPacket pull(int port);

    /// A run of packets handed to a push input — semantically identical
    /// to pushing each packet in order; the batch is left empty. The
    /// default is the scalar fallback (defined inline so fast_ops_for
    /// thunks devirtualize the per-packet call for final classes).
    virtual void push_batch(int port, PacketBatch& batch) {
        for (std::size_t i = 0; i < batch.size(); ++i) {
            push(port, std::move(batch[i]));
        }
        batch.clear();
    }

    /// Drains up to `max` packets from a pull output into `batch`;
    /// returns the count. Semantically identical to repeated pull().
    virtual std::size_t pull_batch(int port, PacketBatch& batch,
                                   std::size_t max) {
        std::size_t n = 0;
        while (n < max) {
            PooledPacket p = pull(port);
            if (!p) {
                break;
            }
            batch.push_back(std::move(p));
            ++n;
        }
        return n;
    }

    /// Devirtualized entry points for fast dispatch, resolved once at
    /// ElementGraph::finalize(). All-null (the default) means "not
    /// fast-capable": connections into this element stay on the checked
    /// virtual path.
    struct FastOps {
        using PushFn = void (*)(Element&, int, PooledPacket);
        using PushBatchFn = void (*)(Element&, int, PacketBatch&);
        using PullFn = PooledPacket (*)(Element&, int);
        using PullBatchFn = std::size_t (*)(Element&, int, PacketBatch&,
                                            std::size_t);
        PushFn push = nullptr;
        PushBatchFn push_batch = nullptr;
        PullFn pull = nullptr;
        PullBatchFn pull_batch = nullptr;
    };

    /// Fast-dispatch opt-in hook. Override in a final element class as
    /// `return fast_ops_for<Self>();`.
    [[nodiscard]] virtual FastOps fast_ops() noexcept { return {}; }

    /// Thunks that call D's entry points through qualified (non-virtual)
    /// names. D must be final so the calls inside the inlined bodies
    /// devirtualize too.
    template <typename D>
    [[nodiscard]] static FastOps fast_ops_for() noexcept {
        static_assert(std::is_final_v<D>,
                      "fast_ops_for<D>: D must be final so qualified calls "
                      "devirtualize");
        return FastOps{
            [](Element& e, int port, PooledPacket p) {
                static_cast<D&>(e).D::push(port, std::move(p));
            },
            [](Element& e, int port, PacketBatch& b) {
                static_cast<D&>(e).D::push_batch(port, b);
            },
            [](Element& e, int port) {
                return static_cast<D&>(e).D::pull(port);
            },
            [](Element& e, int port, PacketBatch& b, std::size_t max) {
                return static_cast<D&>(e).D::pull_batch(port, b, max);
            },
        };
    }

    /// Fills (DispatchMode::Fast) or clears (DispatchMode::Virtual) the
    /// cached per-port dispatch slots from the current wiring.
    /// ElementGraph::finalize() calls this on every element; standalone
    /// elements never resolve and always take the checked virtual path.
    void resolve_dispatch(DispatchMode mode);

    /// True when this element was last resolved with DispatchMode::Fast
    /// (elements gate event-structure optimizations on it, so a Virtual
    /// graph reproduces the reference event pattern exactly).
    [[nodiscard]] bool fast_dispatch() const noexcept {
        return fast_dispatch_;
    }

    /// Timer expiry hook; armed with schedule_timer_at/after.
    virtual void on_timer() {}

    /// Publishes this element's counters as "<prefix>.<name>.<counter>".
    /// Default: nothing to publish.
    virtual void collect_metrics(obs::MetricsRegistry& reg,
                                 const std::string& prefix) const;

    /// Wires this element's `out_port` to `downstream`'s `in_port`.
    /// Throws std::invalid_argument on port-range violations, kind
    /// mismatches (push output into pull input or vice versa), and
    /// double connections on either end.
    void connect_output(int out_port, Element& downstream, int in_port);

    [[nodiscard]] bool output_connected(int port) const noexcept {
        return port >= 0 && static_cast<std::size_t>(port) < outputs_.size() &&
               outputs_[static_cast<std::size_t>(port)].element != nullptr;
    }
    [[nodiscard]] bool input_connected(int port) const noexcept {
        return port >= 0 && static_cast<std::size_t>(port) < inputs_.size() &&
               inputs_[static_cast<std::size_t>(port)].element != nullptr;
    }

    /// The downstream peer wired to `out_port`: {element, its input
    /// port}, or {nullptr, 0} when the port is out of range or
    /// unconnected. Read-only topology introspection — this is how
    /// ElementGraph::wire_spec() recovers the wiring.
    struct PeerView {
        const Element* element = nullptr;
        int port = 0;
    };
    [[nodiscard]] PeerView output_peer(int port) const noexcept;

protected:
    /// Pushes `p` to whatever is connected downstream of `out_port`.
    /// Resolved ports take the cached devirtualized call; everything
    /// else falls back to the checked virtual path, which throws
    /// std::logic_error when the port was never wired (finalize()
    /// catches this earlier for graph-built elements).
    void output(int out_port, PooledPacket p) {
        const auto port = static_cast<std::size_t>(out_port);
        if (port < fast_out_.size() && fast_out_[port].push != nullptr) {
            const ResolvedOut& r = fast_out_[port];
            r.push(*r.element, r.port, std::move(p));
            return;
        }
        output_slow(out_port, std::move(p));
    }

    /// Pulls from whatever is connected upstream of `in_port` (which
    /// must be a pull input); empty handle when upstream is empty.
    [[nodiscard]] PooledPacket input(int in_port) {
        const auto port = static_cast<std::size_t>(in_port);
        if (port < fast_in_.size() && fast_in_[port].pull != nullptr) {
            const ResolvedIn& r = fast_in_[port];
            return r.pull(*r.element, r.port);
        }
        return input_slow(in_port);
    }

    /// Batch variants: one dispatch for the whole run. Identical in
    /// effect to per-packet output()/input() calls in order.
    void output_batch(int out_port, PacketBatch& batch) {
        const auto port = static_cast<std::size_t>(out_port);
        if (port < fast_out_.size() && fast_out_[port].push_batch != nullptr) {
            const ResolvedOut& r = fast_out_[port];
            r.push_batch(*r.element, r.port, batch);
            return;
        }
        for (std::size_t i = 0; i < batch.size(); ++i) {
            output(out_port, std::move(batch[i]));
        }
        batch.clear();
    }

    [[nodiscard]] std::size_t input_batch(int in_port, PacketBatch& batch,
                                          std::size_t max) {
        const auto port = static_cast<std::size_t>(in_port);
        if (port < fast_in_.size() && fast_in_[port].pull_batch != nullptr) {
            const ResolvedIn& r = fast_in_[port];
            return r.pull_batch(*r.element, r.port, batch, max);
        }
        std::size_t n = 0;
        while (n < max) {
            PooledPacket p = input(in_port);
            if (!p) {
                break;
            }
            batch.push_back(std::move(p));
            ++n;
        }
        return n;
    }

    void schedule_timer_at(sim::SimTime t) {
        cancel_timer();
        timer_event_ = engine_.schedule_at(t, [this] { on_timer(); });
        timer_armed_ = true;
    }
    void schedule_timer_after(sim::SimTime dt) {
        cancel_timer();
        timer_event_ = engine_.schedule_after(dt, [this] { on_timer(); });
        timer_armed_ = true;
    }
    void cancel_timer() noexcept {
        if (timer_armed_) {
            engine_.cancel(timer_event_);
            timer_armed_ = false;
        }
    }

    [[noreturn]] void bad_port(const char* action, int port) const;

private:
    struct Peer {
        Element* element = nullptr;
        int port = 0;
    };

    /// Cached dispatch for one resolved port. Null function pointers
    /// mean "use the checked virtual path" (unresolved, Virtual mode,
    /// or a peer that didn't opt in).
    struct ResolvedOut {
        Element* element = nullptr;
        int port = 0;
        FastOps::PushFn push = nullptr;
        FastOps::PushBatchFn push_batch = nullptr;
    };
    struct ResolvedIn {
        Element* element = nullptr;
        int port = 0;
        FastOps::PullFn pull = nullptr;
        FastOps::PullBatchFn pull_batch = nullptr;
    };

    void ensure_peer_slots();
    void output_slow(int out_port, PooledPacket p);
    [[nodiscard]] PooledPacket input_slow(int in_port);

    sim::Engine& engine_;
    std::string name_;
    std::vector<Peer> outputs_; ///< indexed by output port
    std::vector<Peer> inputs_;  ///< indexed by input port
    std::vector<ResolvedOut> fast_out_; ///< dispatch cache (resolve_dispatch)
    std::vector<ResolvedIn> fast_in_;
    bool peers_sized_ = false;
    bool fast_dispatch_ = false;
    sim::EventHandle timer_event_{};
    bool timer_armed_ = false;
};

} // namespace routesync::net::elements
