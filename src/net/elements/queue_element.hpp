// Queue-discipline elements: the common QueueElement interface plus the
// QueueDisc selector configs use to pick one by name.
//
// A queue element is the Click Queue shape: one push input (upstream
// offers a packet; the discipline decides accept-or-drop) and one pull
// output (the transmitter drains it when ready). Direct enqueue()/
// dequeue()/peek() calls are exposed for owners that embed a queue
// without a full graph (Router's pending buffer, SharedLan stations).
//
// Trace integration matches the pre-element Link/SharedLan byte for
// byte: one packet_enqueue per accepted packet, one packet_drop per
// rejection, with `node` = the packet's src by default or a fixed id
// via set_trace_node (SharedLan traces by station index). Owners that
// never traced their queue (Router's pending buffer) call
// set_trace_events(false) and keep their own drop events.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/elements/element.hpp"
#include "net/queue.hpp"
#include "obs/tracer.hpp"

namespace routesync::net::elements {

/// Queue discipline selector for LinkConfig/SharedLanConfig and the
/// `--queue` CLI knob.
enum class QueueDisc : std::uint8_t {
    DropTail, ///< FifoQueue: accept until full, then drop the arrival
    Red,      ///< RedQueue: random early detection (Floyd & Jacobson 1993)
};

[[nodiscard]] constexpr const char* queue_disc_name(QueueDisc disc) noexcept {
    return disc == QueueDisc::Red ? "red" : "droptail";
}

/// Parses a `--queue` value; empty optional on junk.
[[nodiscard]] inline std::optional<QueueDisc>
queue_disc_from_name(const std::string& name) {
    if (name == "droptail" || name == "drop-tail" || name == "fifo") {
        return QueueDisc::DropTail;
    }
    if (name == "red") {
        return QueueDisc::Red;
    }
    return std::nullopt;
}

class QueueElement : public Element {
public:
    using Element::Element;

    [[nodiscard]] std::vector<PortSpec> input_ports() const override {
        return {{PortKind::Push, "in"}};
    }
    [[nodiscard]] std::vector<PortSpec> output_ports() const override {
        return {{PortKind::Pull, "out"}};
    }

    /// Offers a packet to the discipline. Returns false when it was
    /// dropped (the handle is released and the drop is accounted).
    virtual bool enqueue(PooledPacket p) = 0;

    /// Removes and returns the head packet; empty handle when empty.
    [[nodiscard]] virtual PooledPacket dequeue() = 0;

    /// The head packet without removing it; nullptr when empty.
    [[nodiscard]] virtual const Packet* peek() const = 0;

    [[nodiscard]] virtual std::size_t size() const noexcept = 0;
    [[nodiscard]] virtual std::uint64_t bytes() const noexcept = 0;
    [[nodiscard]] virtual std::size_t capacity() const noexcept = 0;
    [[nodiscard]] virtual const QueueStats& stats() const noexcept = 0;

    [[nodiscard]] bool empty() const noexcept { return size() == 0; }

    void push(int port, PooledPacket p) override {
        if (port != 0) {
            bad_port("push into", port);
        }
        enqueue(std::move(p));
    }
    [[nodiscard]] PooledPacket pull(int port) override {
        if (port != 0) {
            bad_port("pull from", port);
        }
        return dequeue();
    }

    /// Trace packet_enqueue/packet_drop with this node id instead of the
    /// packet's src (SharedLan traces by station index).
    void set_trace_node(int node) noexcept { trace_node_ = node; }
    /// Disables this queue's own trace events (for owners that keep
    /// emitting their own, like Router's pending buffer).
    void set_trace_events(bool on) noexcept { trace_events_ = on; }

    void collect_metrics(obs::MetricsRegistry& reg,
                         const std::string& prefix) const override {
        const QueueStats& s = stats();
        reg.add(prefix + "." + name() + ".enqueued", s.enqueued);
        reg.add(prefix + "." + name() + ".dequeued", s.dequeued);
        reg.add(prefix + "." + name() + ".dropped", s.dropped);
    }

protected:
    /// True when trace_offer would actually emit — hoisted out of the
    /// per-packet path so the untraced steady state skips the field
    /// reads the emission would need.
    [[nodiscard]] bool trace_active() const noexcept {
        return trace_events_ && engine().tracer() != nullptr;
    }

    /// Emits the accept-or-drop trace event for one offered packet,
    /// mirroring the pre-element Link::send emission exactly.
    void trace_offer(bool accepted, int src, std::int64_t seq, double size_bytes) {
        if (!trace_events_) {
            return;
        }
        if (obs::Tracer* tr = engine().tracer()) {
            tr->emit(accepted ? obs::TraceEventType::PacketEnqueue
                              : obs::TraceEventType::PacketDrop,
                     engine().now(), trace_node_ == kTraceNodeSrc ? src : trace_node_,
                     seq, size_bytes);
        }
    }

    static constexpr int kTraceNodeSrc = -2; ///< sentinel: use packet src

private:
    int trace_node_ = kTraceNodeSrc;
    bool trace_events_ = true;
};

} // namespace routesync::net::elements
