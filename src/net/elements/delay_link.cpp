#include "net/elements/delay_link.hpp"

#include <stdexcept>
#include <utility>

#include "obs/tracer.hpp"

namespace routesync::net::elements {

DelayLink::DelayLink(sim::Engine& engine, std::string name, double rate_bps,
                     sim::SimTime prop_delay)
    : Element{engine, std::move(name)},
      rate_bps_{rate_bps},
      prop_delay_{prop_delay} {
    if (prop_delay_ < sim::SimTime::zero()) {
        throw std::invalid_argument{"DelayLink: negative propagation delay"};
    }
}

sim::SimTime DelayLink::serialization_time(std::uint32_t bytes) const noexcept {
    if (rate_bps_ <= 0.0) {
        return sim::SimTime::zero();
    }
    return sim::SimTime::seconds(static_cast<double>(bytes) * 8.0 / rate_bps_);
}

void DelayLink::trace_drop(const Packet& p) const {
    if (obs::Tracer* tr = engine().tracer()) {
        tr->emit(obs::TraceEventType::PacketDrop, engine().now(), p.src,
                 static_cast<std::int64_t>(p.seq), p.size_bytes);
    }
}

void DelayLink::push(int port, PooledPacket p) {
    if (port != 0) {
        bad_port("push into", port);
    }
    if (!up_) {
        ++down_drops_;
        trace_drop(*p);
        return;
    }
    if (transmitting_) {
        output(1, std::move(p)); // the queue element traces accept-or-drop
        return;
    }
    // Cut-through: an idle transmitter takes the packet directly and the
    // backlog queue is never touched — its stats count only packets that
    // actually waited, same as the pre-element Link.
    if (obs::Tracer* tr = engine().tracer()) {
        tr->emit(obs::TraceEventType::PacketEnqueue, engine().now(), p->src,
                 static_cast<std::int64_t>(p->seq), p->size_bytes);
    }
    start_transmission(std::move(p));
}

void DelayLink::start_transmission(PooledPacket p) {
    transmitting_ = true;
    ++transmissions_;
    const sim::SimTime tx = serialization_time(p->size_bytes);
    // Delivery after serialization + propagation; the transmitter frees up
    // after serialization alone. Delivery is scheduled first so that at
    // equal timestamps (zero propagation) it runs before the
    // transmitter-free event, matching the pre-element Link's FIFO order.
    engine().schedule_after(
        tx + prop_delay_, [this, pkt = std::move(p)]() mutable {
            if (obs::Tracer* tr = engine().tracer()) {
                tr->emit(obs::TraceEventType::PacketDeliver, engine().now(),
                         pkt->dst, static_cast<std::int64_t>(pkt->seq),
                         pkt->size_bytes);
            }
            output(0, std::move(pkt));
        });
    engine().schedule_after(tx, [this] { transmission_done(); });
}

void DelayLink::transmission_done() {
    transmitting_ = false;
    if (input_connected(1)) {
        if (auto next = input(1)) {
            start_transmission(std::move(next));
        }
    }
}

void DelayLink::collect_metrics(obs::MetricsRegistry& reg,
                                const std::string& prefix) const {
    reg.add(prefix + "." + name() + ".transmissions", transmissions_);
    reg.add(prefix + "." + name() + ".down_drops", down_drops_);
}

} // namespace routesync::net::elements
