#include "net/elements/delay_link.hpp"

#include <stdexcept>
#include <utility>

#include "obs/tracer.hpp"

namespace routesync::net::elements {

DelayLink::DelayLink(sim::Engine& engine, std::string name, double rate_bps,
                     sim::SimTime prop_delay)
    : Element{engine, std::move(name)},
      rate_bps_{rate_bps},
      prop_delay_{prop_delay} {
    if (prop_delay_ < sim::SimTime::zero()) {
        throw std::invalid_argument{"DelayLink: negative propagation delay"};
    }
}

sim::SimTime DelayLink::serialization_time(std::uint32_t bytes) const noexcept {
    if (rate_bps_ <= 0.0) {
        return sim::SimTime::zero();
    }
    return sim::SimTime::seconds(static_cast<double>(bytes) * 8.0 / rate_bps_);
}

void DelayLink::trace_drop(const Packet& p) const {
    if (obs::Tracer* tr = engine().tracer()) {
        tr->emit(obs::TraceEventType::PacketDrop, engine().now(), p.src,
                 static_cast<std::int64_t>(p.seq), p.size_bytes);
    }
}

void DelayLink::push(int port, PooledPacket p) {
    if (port != 0) {
        bad_port("push into", port);
    }
    if (!up_) {
        ++down_drops_;
        trace_drop(*p);
        return;
    }
    if (transmitting_) {
        output(1, std::move(p)); // the queue element traces accept-or-drop
        return;
    }
    // Cut-through: an idle transmitter takes the packet directly and the
    // backlog queue is never touched — its stats count only packets that
    // actually waited, same as the pre-element Link.
    if (obs::Tracer* tr = engine().tracer()) {
        tr->emit(obs::TraceEventType::PacketEnqueue, engine().now(), p->src,
                 static_cast<std::int64_t>(p->seq), p->size_bytes);
    }
    start_transmission(std::move(p));
}

void DelayLink::start_transmission(PooledPacket p) {
    transmitting_ = true;
    ++transmissions_;
    const sim::SimTime tx = serialization_time(p->size_bytes);
    // Delivery after serialization + propagation; the transmitter frees up
    // after serialization alone. Delivery is scheduled first so that at
    // equal timestamps (zero propagation) it runs before the
    // transmitter-free event, matching the pre-element Link's FIFO order.
    if (fast_dispatch()) {
        // Fast mode parks the packet in the link's own in-flight FIFO so
        // the delivery capture is {this} — trivially copyable, so the
        // callback's moves through the event queue are plain memcpys.
        // Delivery times are non-decreasing in schedule order (each later
        // packet starts serializing when the previous one ends), so
        // front-of-FIFO is always the right packet.
        in_flight_.push_back(std::move(p));
        engine().schedule_after(tx + prop_delay_, [this] { deliver_head(); });
        engine().schedule_after(tx, [this] { transmission_done(); });
        return;
    }
    engine().schedule_after(
        tx + prop_delay_, [this, pkt = std::move(p)]() mutable {
            if (obs::Tracer* tr = engine().tracer()) {
                tr->emit(obs::TraceEventType::PacketDeliver, engine().now(),
                         pkt->dst, static_cast<std::int64_t>(pkt->seq),
                         pkt->size_bytes);
            }
            output(0, std::move(pkt));
        });
    engine().schedule_after(tx, [this] { transmission_done(); });
}

void DelayLink::deliver_head() {
    PooledPacket pkt = std::move(in_flight_.front());
    in_flight_.pop_front();
    if (obs::Tracer* tr = engine().tracer()) {
        tr->emit(obs::TraceEventType::PacketDeliver, engine().now(), pkt->dst,
                 static_cast<std::int64_t>(pkt->seq), pkt->size_bytes);
    }
    output(0, std::move(pkt));
}

void DelayLink::transmission_done() {
    transmitting_ = false;
    if (input_connected(1)) {
        if (auto next = input(1)) {
            // Fast cascade (header comment): zero serialization time,
            // positive propagation, fast-dispatch graph, and no other
            // event pending at this instant together prove the whole
            // backlog would drain as the next |backlog| consecutive
            // events — so drain it inline and coalesce the deliveries.
            if (fast_dispatch() && rate_bps_ <= 0.0 &&
                prop_delay_ > sim::SimTime::zero() &&
                !engine().has_event_at_now()) {
                drain_backlog_batch(std::move(next));
                return;
            }
            start_transmission(std::move(next));
        }
    }
}

PacketBatch* DelayLink::acquire_batch() {
    if (!free_batches_.empty()) {
        PacketBatch* b = free_batches_.back();
        free_batches_.pop_back();
        return b;
    }
    batch_pool_.push_back(std::make_unique<PacketBatch>());
    return batch_pool_.back().get();
}

void DelayLink::release_batch(PacketBatch* batch) noexcept {
    batch->clear();
    free_batches_.push_back(batch);
}

void DelayLink::drain_backlog_batch(PooledPacket first) {
    PacketBatch* batch = acquire_batch();
    ++transmissions_;
    batch->push_back(std::move(first));
    const std::size_t pulled =
        input_batch(1, *batch, static_cast<std::size_t>(-1));
    transmissions_ += pulled;
    engine().schedule_after(prop_delay_,
                            [this, batch] { deliver_batch(batch); });
}

void DelayLink::deliver_batch(PacketBatch* batch) {
    obs::Tracer* const tr = engine().tracer();
    if (tr == nullptr) {
        output_batch(0, *batch);
    } else {
        // Traced: interleave each packet's deliver event with its
        // downstream push, exactly as the individual delivery events
        // would have.
        const sim::SimTime now = engine().now();
        for (std::size_t i = 0; i < batch->size(); ++i) {
            PooledPacket& p = (*batch)[i];
            tr->emit(obs::TraceEventType::PacketDeliver, now, p->dst,
                     static_cast<std::int64_t>(p->seq), p->size_bytes);
            output(0, std::move(p));
        }
    }
    release_batch(batch);
}

void DelayLink::collect_metrics(obs::MetricsRegistry& reg,
                                const std::string& prefix) const {
    reg.add(prefix + "." + name() + ".transmissions", transmissions_);
    reg.add(prefix + "." + name() + ".down_drops", down_drops_);
}

} // namespace routesync::net::elements
