// CallbackSink: the graph-to-host boundary. A push input that hands
// every packet to a std::function, so element paths terminate into the
// same deliver callbacks Node/Router/SharedLan always used.
#pragma once

#include <functional>
#include <stdexcept>
#include <utility>

#include "net/elements/element.hpp"

namespace routesync::net::elements {

class CallbackSink final : public Element {
public:
    CallbackSink(sim::Engine& engine, std::string name,
                 std::function<void(PooledPacket)> deliver)
        : Element{engine, std::move(name)}, deliver_{std::move(deliver)} {
        if (!deliver_) {
            throw std::invalid_argument{"CallbackSink: callback required"};
        }
    }

    [[nodiscard]] const char* kind() const noexcept override {
        return "CallbackSink";
    }
    [[nodiscard]] std::vector<PortSpec> input_ports() const override {
        return {{PortKind::Push, "in"}};
    }
    [[nodiscard]] std::vector<PortSpec> output_ports() const override {
        return {};
    }

    void push(int port, PooledPacket p) override {
        if (port != 0) {
            bad_port("push into", port);
        }
        ++delivered_;
        deliver_(std::move(p));
    }

    void push_batch(int port, PacketBatch& batch) override {
        if (port != 0) {
            bad_port("push into", port);
        }
        delivered_ += batch.size();
        for (std::size_t i = 0; i < batch.size(); ++i) {
            deliver_(std::move(batch[i]));
        }
        batch.clear();
    }

    [[nodiscard]] FastOps fast_ops() noexcept override {
        return fast_ops_for<CallbackSink>();
    }

    [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }

    void collect_metrics(obs::MetricsRegistry& reg,
                         const std::string& prefix) const override {
        reg.add(prefix + "." + name() + ".delivered", delivered_);
    }

private:
    std::function<void(PooledPacket)> deliver_;
    std::uint64_t delivered_ = 0;
};

} // namespace routesync::net::elements
