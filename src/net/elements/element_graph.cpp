#include "net/elements/element_graph.hpp"

#include <cctype>

namespace routesync::net::elements {

namespace {

/// One side of a `->`: optional [input port], name, optional [output port].
struct Endpoint {
    std::string name;
    int in_port = 0;
    int out_port = 0;
};

[[nodiscard]] std::string strip(const std::string& s) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) {
        ++b;
    }
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
        --e;
    }
    return s.substr(b, e - b);
}

[[nodiscard]] int parse_port(const std::string& text, const std::string& stmt) {
    try {
        std::size_t used = 0;
        const int port = std::stoi(text, &used);
        if (used != text.size() || port < 0) {
            throw std::invalid_argument{""};
        }
        return port;
    } catch (const std::exception&) {
        throw std::invalid_argument{"wire '" + stmt + "': bad port '" + text +
                                    "'"};
    }
}

[[nodiscard]] Endpoint parse_endpoint(std::string text, const std::string& stmt) {
    Endpoint ep;
    text = strip(text);
    if (!text.empty() && text.front() == '[') {
        const std::size_t close = text.find(']');
        if (close == std::string::npos) {
            throw std::invalid_argument{"wire '" + stmt + "': unterminated '['"};
        }
        ep.in_port = parse_port(strip(text.substr(1, close - 1)), stmt);
        text = strip(text.substr(close + 1));
    }
    if (!text.empty() && text.back() == ']') {
        const std::size_t open = text.rfind('[');
        if (open == std::string::npos) {
            throw std::invalid_argument{"wire '" + stmt + "': unmatched ']'"};
        }
        ep.out_port =
            parse_port(strip(text.substr(open + 1, text.size() - open - 2)), stmt);
        text = strip(text.substr(0, open));
    }
    if (text.empty()) {
        throw std::invalid_argument{"wire '" + stmt + "': missing element name"};
    }
    ep.name = text;
    return ep;
}

} // namespace

Element& ElementGraph::adopt(std::unique_ptr<Element> elem) {
    const std::string& name = elem->name();
    if (name.empty()) {
        throw std::invalid_argument{"ElementGraph: element name required"};
    }
    if (by_name_.count(name) != 0) {
        throw std::invalid_argument{"ElementGraph: duplicate element '" + name +
                                    "'"};
    }
    by_name_.emplace(name, elements_.size());
    elements_.push_back(std::move(elem));
    finalized_ = false;
    return *elements_.back();
}

Element* ElementGraph::find(const std::string& name) noexcept {
    const auto it = by_name_.find(name);
    return it == by_name_.end() ? nullptr : elements_[it->second].get();
}

Element& ElementGraph::get(const std::string& name) {
    Element* elem = find(name);
    if (elem == nullptr) {
        throw std::invalid_argument{"ElementGraph: no element named '" + name +
                                    "'"};
    }
    return *elem;
}

void ElementGraph::connect(const std::string& from, int out_port,
                           const std::string& to, int in_port) {
    get(from).connect_output(out_port, get(to), in_port);
    finalized_ = false;
}

void ElementGraph::wire(const std::string& spec) {
    // Statements split on ';' and newlines; '//' comments out the rest of
    // the line.
    std::vector<std::string> statements;
    std::string current;
    for (std::size_t i = 0; i < spec.size(); ++i) {
        if (spec[i] == '/' && i + 1 < spec.size() && spec[i + 1] == '/') {
            while (i < spec.size() && spec[i] != '\n') {
                ++i;
            }
            statements.push_back(current);
            current.clear();
            continue;
        }
        if (spec[i] == ';' || spec[i] == '\n') {
            statements.push_back(current);
            current.clear();
            continue;
        }
        current.push_back(spec[i]);
    }
    statements.push_back(current);

    for (const std::string& raw : statements) {
        const std::string stmt = strip(raw);
        if (stmt.empty()) {
            continue;
        }
        // Split the chain on "->".
        std::vector<Endpoint> chain;
        std::size_t pos = 0;
        while (true) {
            const std::size_t arrow = stmt.find("->", pos);
            if (arrow == std::string::npos) {
                chain.push_back(parse_endpoint(stmt.substr(pos), stmt));
                break;
            }
            chain.push_back(parse_endpoint(stmt.substr(pos, arrow - pos), stmt));
            pos = arrow + 2;
        }
        if (chain.size() < 2) {
            throw std::invalid_argument{"wire '" + stmt +
                                        "': expected 'a -> b'"};
        }
        for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
            connect(chain[i].name, chain[i].out_port, chain[i + 1].name,
                    chain[i + 1].in_port);
        }
    }
}

std::string ElementGraph::wire_spec() const {
    std::string out;
    for (const auto& elem : elements_) {
        out += "// ";
        out += elem->name();
        out += " :: ";
        out += elem->kind();
        out += '\n';
    }
    for (const auto& elem : elements_) {
        const auto outs = elem->output_ports();
        for (std::size_t port = 0; port < outs.size(); ++port) {
            const Element::PeerView peer =
                elem->output_peer(static_cast<int>(port));
            if (peer.element == nullptr) {
                continue;
            }
            out += elem->name();
            out += '[';
            out += std::to_string(port);
            out += "] -> [";
            out += std::to_string(peer.port);
            out += ']';
            out += peer.element->name();
            out += '\n';
        }
    }
    return out;
}

void ElementGraph::finalize(DispatchMode mode) {
    for (const auto& elem : elements_) {
        const auto outs = elem->output_ports();
        for (std::size_t port = 0; port < outs.size(); ++port) {
            if (outs[port].kind == PortKind::Push &&
                !elem->output_connected(static_cast<int>(port))) {
                throw std::logic_error{
                    "ElementGraph: push output " + elem->name() + "[" +
                    std::to_string(port) + "] ('" + outs[port].label +
                    "') is not connected"};
            }
        }
        const auto ins = elem->input_ports();
        for (std::size_t port = 0; port < ins.size(); ++port) {
            if (ins[port].kind == PortKind::Pull &&
                !elem->input_connected(static_cast<int>(port))) {
                throw std::logic_error{
                    "ElementGraph: pull input " + elem->name() + "[" +
                    std::to_string(port) + "] ('" + ins[port].label +
                    "') is not connected"};
            }
        }
    }
    for (const auto& elem : elements_) {
        elem->resolve_dispatch(mode);
    }
    dispatch_mode_ = mode;
    finalized_ = true;
}

void ElementGraph::collect_metrics(obs::MetricsRegistry& reg,
                                   const std::string& prefix) const {
    for (const auto& elem : elements_) {
        elem->collect_metrics(reg, prefix);
    }
}

} // namespace routesync::net::elements
