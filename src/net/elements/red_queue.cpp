#include "net/elements/red_queue.hpp"

#include <stdexcept>

namespace routesync::net::elements {

RedQueue::RedQueue(sim::Engine& engine, std::string name,
                   std::size_t max_packets, const RedTuning& tuning)
    : QueueElement{engine, std::move(name)},
      max_packets_{max_packets},
      tuning_{tuning},
      gen_{tuning.seed} {
    if (tuning_.min_th < 0.0 || tuning_.max_th <= tuning_.min_th) {
        throw std::invalid_argument{"RedQueue: need 0 <= min_th < max_th"};
    }
    if (tuning_.max_p <= 0.0 || tuning_.max_p > 1.0) {
        throw std::invalid_argument{"RedQueue: need 0 < max_p <= 1"};
    }
    if (tuning_.weight <= 0.0 || tuning_.weight > 1.0) {
        throw std::invalid_argument{"RedQueue: need 0 < weight <= 1"};
    }
}

bool RedQueue::should_drop() {
    // EWMA update on every arrival; an empty queue contributes a zero
    // sample (a simplification of the paper's idle-time decay that keeps
    // the average a pure function of the arrival sequence).
    avg_ = (1.0 - tuning_.weight) * avg_ +
           tuning_.weight * static_cast<double>(items_.size());
    if (items_.size() >= max_packets_) {
        ++forced_drops_;
        return true; // physically full, no choice
    }
    if (avg_ < tuning_.min_th) {
        count_ = -1;
        return false;
    }
    if (avg_ >= tuning_.max_th) {
        count_ = 0;
        ++forced_drops_;
        return true;
    }
    ++count_;
    const double pb = tuning_.max_p * (avg_ - tuning_.min_th) /
                      (tuning_.max_th - tuning_.min_th);
    // Spread drops: count arrivals since the last drop push pa toward 1,
    // making inter-drop gaps near-uniform (paper Section 7).
    const double scaled = static_cast<double>(count_) * pb;
    const double pa = scaled >= 1.0 ? 1.0 : pb / (1.0 - scaled);
    if (unit_(gen_) < pa) {
        count_ = 0;
        ++early_drops_;
        return true;
    }
    return false;
}

bool RedQueue::enqueue(PooledPacket p) {
    // The drop lottery and EWMA run identically traced or not — only
    // the field reads the emission needs are hoisted behind the check.
    if (!trace_active()) {
        const bool accepted = !should_drop();
        if (accepted) {
            bytes_ += p->size_bytes;
            items_.push_back(std::move(p));
            ++stats_.enqueued;
        } else {
            ++stats_.dropped;
            p.reset();
        }
        return accepted;
    }
    const auto seq = static_cast<std::int64_t>(p->seq);
    const double size = p->size_bytes;
    const int src = p->src;
    const bool accepted = !should_drop();
    if (accepted) {
        bytes_ += p->size_bytes;
        items_.push_back(std::move(p));
        ++stats_.enqueued;
    } else {
        ++stats_.dropped;
        p.reset();
    }
    trace_offer(accepted, src, seq, size);
    return accepted;
}

PooledPacket RedQueue::dequeue() {
    if (items_.empty()) {
        return {};
    }
    PooledPacket p = std::move(items_.front());
    items_.pop_front();
    bytes_ -= p->size_bytes;
    ++stats_.dequeued;
    return p;
}

void RedQueue::collect_metrics(obs::MetricsRegistry& reg,
                               const std::string& prefix) const {
    QueueElement::collect_metrics(reg, prefix);
    reg.add(prefix + "." + name() + ".early_drops", early_drops_);
    reg.add(prefix + "." + name() + ".forced_drops", forced_drops_);
    reg.set_gauge(prefix + "." + name() + ".avg", avg_);
}

} // namespace routesync::net::elements
