#include "net/elements/element.hpp"

namespace routesync::net::elements {

void Element::push(int port, PooledPacket /*p*/) {
    bad_port("push into", port);
}

PooledPacket Element::pull(int port) {
    bad_port("pull from", port);
}

void Element::collect_metrics(obs::MetricsRegistry& /*reg*/,
                              const std::string& /*prefix*/) const {}

void Element::bad_port(const char* action, int port) const {
    throw std::logic_error{std::string{kind()} + " '" + name_ + "': cannot " +
                           action + " port " + std::to_string(port)};
}

void Element::ensure_peer_slots() {
    if (!peers_sized_) {
        outputs_.resize(output_ports().size());
        inputs_.resize(input_ports().size());
        peers_sized_ = true;
    }
}

void Element::connect_output(int out_port, Element& downstream, int in_port) {
    ensure_peer_slots();
    downstream.ensure_peer_slots();
    const auto outs = output_ports();
    const auto ins = downstream.input_ports();
    const auto describe = [&] {
        return name_ + "[" + std::to_string(out_port) + "] -> " +
               downstream.name_ + "[" + std::to_string(in_port) + "]";
    };
    if (out_port < 0 || static_cast<std::size_t>(out_port) >= outs.size()) {
        throw std::invalid_argument{"connect " + describe() + ": " + kind() +
                                    " has no output port " +
                                    std::to_string(out_port)};
    }
    if (in_port < 0 || static_cast<std::size_t>(in_port) >= ins.size()) {
        throw std::invalid_argument{"connect " + describe() + ": " +
                                    downstream.kind() + " has no input port " +
                                    std::to_string(in_port)};
    }
    const PortSpec out = outs[static_cast<std::size_t>(out_port)];
    const PortSpec in = ins[static_cast<std::size_t>(in_port)];
    if (out.kind != in.kind) {
        throw std::invalid_argument{
            "connect " + describe() + ": kind mismatch — output '" +
            std::string{out.label} + "' is " + port_kind_name(out.kind) +
            ", input '" + std::string{in.label} + "' is " +
            port_kind_name(in.kind)};
    }
    if (outputs_[static_cast<std::size_t>(out_port)].element != nullptr) {
        throw std::invalid_argument{"connect " + describe() + ": output '" +
                                    std::string{out.label} +
                                    "' is already connected"};
    }
    if (downstream.inputs_[static_cast<std::size_t>(in_port)].element != nullptr) {
        throw std::invalid_argument{"connect " + describe() + ": input '" +
                                    std::string{in.label} +
                                    "' is already connected"};
    }
    outputs_[static_cast<std::size_t>(out_port)] = Peer{&downstream, in_port};
    downstream.inputs_[static_cast<std::size_t>(in_port)] = Peer{this, out_port};
}

Element::PeerView Element::output_peer(int port) const noexcept {
    if (!output_connected(port)) {
        return {};
    }
    const Peer& peer = outputs_[static_cast<std::size_t>(port)];
    return {peer.element, peer.port};
}

void Element::output_slow(int out_port, PooledPacket p) {
    ensure_peer_slots();
    if (!output_connected(out_port)) {
        throw std::logic_error{std::string{kind()} + " '" + name_ +
                               "': output port " + std::to_string(out_port) +
                               " is not connected"};
    }
    const Peer& peer = outputs_[static_cast<std::size_t>(out_port)];
    peer.element->push(peer.port, std::move(p));
}

PooledPacket Element::input_slow(int in_port) {
    ensure_peer_slots();
    if (!input_connected(in_port)) {
        throw std::logic_error{std::string{kind()} + " '" + name_ +
                               "': input port " + std::to_string(in_port) +
                               " is not connected"};
    }
    const Peer& peer = inputs_[static_cast<std::size_t>(in_port)];
    return peer.element->pull(peer.port);
}

void Element::resolve_dispatch(DispatchMode mode) {
    ensure_peer_slots();
    fast_out_.assign(outputs_.size(), ResolvedOut{});
    fast_in_.assign(inputs_.size(), ResolvedIn{});
    fast_dispatch_ = mode == DispatchMode::Fast;
    if (!fast_dispatch_) {
        return;
    }
    for (std::size_t i = 0; i < outputs_.size(); ++i) {
        if (outputs_[i].element == nullptr) {
            continue;
        }
        const FastOps ops = outputs_[i].element->fast_ops();
        fast_out_[i] = ResolvedOut{outputs_[i].element, outputs_[i].port,
                                   ops.push, ops.push_batch};
    }
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
        if (inputs_[i].element == nullptr) {
            continue;
        }
        const FastOps ops = inputs_[i].element->fast_ops();
        fast_in_[i] = ResolvedIn{inputs_[i].element, inputs_[i].port, ops.pull,
                                 ops.pull_batch};
    }
}

} // namespace routesync::net::elements
