// PacketBatch: a run of packets moved hop-to-hop in one call.
//
// The batched handoff (Element::push_batch / pull_batch) exists to
// amortize per-packet dispatch on the DelayLink -> queue -> transmitter
// fast path: a zero-serialization-time link drains its whole backlog at
// one instant, and handing the run downstream as a batch replaces N
// engine events and N dispatches with one of each. Semantically a batch
// is nothing but its packets in order — every consumer must behave
// exactly as if each packet had been pushed individually.
//
// Storage is a small inline array (the common burst fits without
// allocation) with a vector spill for long drains. The spill's capacity
// survives clear(), so a reused batch allocates only on its first long
// run.
#pragma once

#include <array>
#include <cstddef>
#include <utility>
#include <vector>

#include "net/packet_pool.hpp"

namespace routesync::net::elements {

class PacketBatch {
public:
    static constexpr std::size_t kInline = 8;

    PacketBatch() = default;
    PacketBatch(const PacketBatch&) = delete;
    PacketBatch& operator=(const PacketBatch&) = delete;

    void push_back(PooledPacket p) {
        if (size_ < kInline) {
            inline_[size_] = std::move(p);
        } else {
            spill_.push_back(std::move(p));
        }
        ++size_;
    }

    /// The i-th packet, in push order. Consumers move from the slot.
    [[nodiscard]] PooledPacket& operator[](std::size_t i) noexcept {
        return i < kInline ? inline_[i] : spill_[i - kInline];
    }

    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

    /// Releases every remaining handle and resets to empty (spill
    /// capacity is kept).
    void clear() noexcept {
        for (std::size_t i = 0; i < size_ && i < kInline; ++i) {
            inline_[i].reset();
        }
        spill_.clear();
        size_ = 0;
    }

private:
    std::array<PooledPacket, kInline> inline_;
    std::vector<PooledPacket> spill_;
    std::size_t size_ = 0;
};

} // namespace routesync::net::elements
