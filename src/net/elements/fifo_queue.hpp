// FifoQueue: the drop-tail discipline as an element. Storage and
// accounting are DropTailQueue (net/queue.hpp) unchanged — this element
// adds the port surface and the accept/drop trace emission that used to
// live inline in Link::send.
#pragma once

#include <utility>

#include "net/elements/queue_element.hpp"

namespace routesync::net::elements {

class FifoQueue final : public QueueElement {
public:
    FifoQueue(sim::Engine& engine, std::string name,
              std::size_t max_packets = 64, std::uint64_t max_bytes = 0)
        : QueueElement{engine, std::move(name)},
          queue_{max_packets, max_bytes},
          capacity_{max_packets} {}

    [[nodiscard]] const char* kind() const noexcept override {
        return "FifoQueue";
    }

    bool enqueue(PooledPacket p) override {
        if (!trace_active()) {
            return queue_.push(std::move(p));
        }
        // DropTailQueue::push releases the handle on overflow, so read the
        // fields the trace event needs before handing it over.
        const auto seq = static_cast<std::int64_t>(p->seq);
        const double size = p->size_bytes;
        const int src = p->src;
        const bool accepted = queue_.push(std::move(p));
        trace_offer(accepted, src, seq, size);
        return accepted;
    }

    [[nodiscard]] PooledPacket dequeue() override { return queue_.pop(); }
    [[nodiscard]] const Packet* peek() const override { return queue_.front(); }

    [[nodiscard]] FastOps fast_ops() noexcept override {
        return fast_ops_for<FifoQueue>();
    }

    [[nodiscard]] std::size_t size() const noexcept override {
        return queue_.size();
    }
    [[nodiscard]] std::uint64_t bytes() const noexcept override {
        return queue_.bytes();
    }
    [[nodiscard]] std::size_t capacity() const noexcept override {
        return capacity_;
    }
    [[nodiscard]] const QueueStats& stats() const noexcept override {
        return queue_.stats();
    }

private:
    DropTailQueue queue_;
    std::size_t capacity_;
};

} // namespace routesync::net::elements
