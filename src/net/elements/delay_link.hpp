// DelayLink: the transmitter half of a point-to-point link as an
// element — serialization at a fixed bit rate plus fixed propagation
// delay. The backlog lives in whatever queue element is wired to its
// ports, which is how Link composes drop-tail today and RED tomorrow:
//
//           [1] overflow (push) ──► queue "in"
//   xmit ──►[0]                     queue "out" ──► [1] backlog (pull)
//           [0] out (push) ──► receiver
//
// An idle transmitter serializes an arriving packet immediately
// (cut-through: the queue is never touched, preserving the pre-element
// Link's accounting exactly); a busy one pushes the packet out the
// `overflow` port, and on each transmission-done it pulls `backlog` for
// the next packet. Event scheduling order (delivery before
// transmitter-free) and every trace emission match net/link.cpp at
// HEAD byte for byte.
#pragma once

#include <cstdint>
#include <string>

#include "net/elements/element.hpp"
#include "sim/time.hpp"

namespace routesync::net::elements {

class DelayLink final : public Element {
public:
    /// `rate_bps` <= 0 means infinite rate (zero serialization time).
    DelayLink(sim::Engine& engine, std::string name, double rate_bps,
              sim::SimTime prop_delay);

    [[nodiscard]] const char* kind() const noexcept override {
        return "DelayLink";
    }
    [[nodiscard]] std::vector<PortSpec> input_ports() const override {
        return {{PortKind::Push, "xmit"}, {PortKind::Pull, "backlog"}};
    }
    [[nodiscard]] std::vector<PortSpec> output_ports() const override {
        return {{PortKind::Push, "out"}, {PortKind::Push, "overflow"}};
    }

    void push(int port, PooledPacket p) override;

    /// Carrier state: a downed link silently discards everything offered
    /// to it (in-flight packets still arrive — they are already on the
    /// wire).
    void set_up(bool up) noexcept { up_ = up; }
    [[nodiscard]] bool is_up() const noexcept { return up_; }
    [[nodiscard]] std::uint64_t down_drops() const noexcept {
        return down_drops_;
    }
    [[nodiscard]] bool transmitting() const noexcept { return transmitting_; }
    [[nodiscard]] std::uint64_t transmissions() const noexcept {
        return transmissions_;
    }

    [[nodiscard]] sim::SimTime
    serialization_time(std::uint32_t bytes) const noexcept;

    void collect_metrics(obs::MetricsRegistry& reg,
                         const std::string& prefix) const override;

private:
    void start_transmission(PooledPacket p);
    void transmission_done();
    void trace_drop(const Packet& p) const;

    double rate_bps_;
    sim::SimTime prop_delay_;
    bool transmitting_ = false;
    bool up_ = true;
    std::uint64_t down_drops_ = 0;
    std::uint64_t transmissions_ = 0;
};

} // namespace routesync::net::elements
