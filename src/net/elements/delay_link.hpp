// DelayLink: the transmitter half of a point-to-point link as an
// element — serialization at a fixed bit rate plus fixed propagation
// delay. The backlog lives in whatever queue element is wired to its
// ports, which is how Link composes drop-tail today and RED tomorrow:
//
//           [1] overflow (push) ──► queue "in"
//   xmit ──►[0]                     queue "out" ──► [1] backlog (pull)
//           [0] out (push) ──► receiver
//
// An idle transmitter serializes an arriving packet immediately
// (cut-through: the queue is never touched, preserving the pre-element
// Link's accounting exactly); a busy one pushes the packet out the
// `overflow` port, and on each transmission-done it pulls `backlog` for
// the next packet. Event scheduling order (delivery before
// transmitter-free) and every trace emission match net/link.cpp at
// HEAD byte for byte.
// Fast-path drain (PR 10): when serialization time is zero, the virtual
// path's transmission-done cascade pops one engine event per backlogged
// packet — pull, schedule delivery, schedule the next done, all at the
// same instant. When the link is in a fast-dispatch graph AND the
// engine has no other event pending at the current time, that cascade
// is provably the next |backlog| pops in a row, so DelayLink runs it
// inline: it pulls the whole backlog into a PacketBatch and schedules
// ONE delivery event at now + prop_delay. Equivalence argument:
//   * nothing else can run between the cascade's done events (no other
//     event is pending at `now`, the cascade schedules only deliveries
//     at now + prop_delay > now, and nothing else executes that could
//     schedule more) — so pulls see the same queue state;
//   * the coalesced delivery event emits the same per-packet trace
//     events and downstream pushes in the same order the individual
//     delivery events would have (their sequence numbers were
//     consecutive, so no foreign event could have interleaved);
//   * counters (transmissions, queue stats) advance identically.
// When prop_delay is zero the guard fails by construction (the first
// delivery is itself pending at `now`), falling back to the exact
// virtual cascade. Only the engine's event COUNT differs — fewer,
// larger events — so events_processed() and rs.engine.* occupancy
// gauges reflect the fast path, while packet order, RNG draws, elem.*
// metrics, and trace streams stay bit-identical.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "net/elements/element.hpp"
#include "sim/time.hpp"

namespace routesync::net::elements {

class DelayLink final : public Element {
public:
    /// `rate_bps` <= 0 means infinite rate (zero serialization time).
    DelayLink(sim::Engine& engine, std::string name, double rate_bps,
              sim::SimTime prop_delay);

    [[nodiscard]] const char* kind() const noexcept override {
        return "DelayLink";
    }
    [[nodiscard]] std::vector<PortSpec> input_ports() const override {
        return {{PortKind::Push, "xmit"}, {PortKind::Pull, "backlog"}};
    }
    [[nodiscard]] std::vector<PortSpec> output_ports() const override {
        return {{PortKind::Push, "out"}, {PortKind::Push, "overflow"}};
    }

    void push(int port, PooledPacket p) override;

    [[nodiscard]] FastOps fast_ops() noexcept override {
        return fast_ops_for<DelayLink>();
    }

    /// Carrier state: a downed link silently discards everything offered
    /// to it (in-flight packets still arrive — they are already on the
    /// wire).
    void set_up(bool up) noexcept { up_ = up; }
    [[nodiscard]] bool is_up() const noexcept { return up_; }
    [[nodiscard]] std::uint64_t down_drops() const noexcept {
        return down_drops_;
    }
    [[nodiscard]] bool transmitting() const noexcept { return transmitting_; }
    [[nodiscard]] std::uint64_t transmissions() const noexcept {
        return transmissions_;
    }

    [[nodiscard]] sim::SimTime
    serialization_time(std::uint32_t bytes) const noexcept;

    void collect_metrics(obs::MetricsRegistry& reg,
                         const std::string& prefix) const override;

private:
    void start_transmission(PooledPacket p);
    void transmission_done();
    void drain_backlog_batch(PooledPacket first);
    void deliver_batch(PacketBatch* batch);
    void deliver_head();
    void trace_drop(const Packet& p) const;

    [[nodiscard]] PacketBatch* acquire_batch();
    void release_batch(PacketBatch* batch) noexcept;

    double rate_bps_;
    sim::SimTime prop_delay_;
    bool transmitting_ = false;
    bool up_ = true;
    std::uint64_t down_drops_ = 0;
    std::uint64_t transmissions_ = 0;
    /// Reusable batch buffers for in-flight coalesced deliveries (a
    /// {this, batch*} capture stays inside SmallCallback's buffer).
    std::vector<std::unique_ptr<PacketBatch>> batch_pool_;
    std::vector<PacketBatch*> free_batches_;
    /// Fast-mode in-flight packets, delivered front-first (see
    /// start_transmission).
    std::deque<PooledPacket> in_flight_;
};

} // namespace routesync::net::elements
