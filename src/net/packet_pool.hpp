// PacketPool: slab/free-list packet storage and the PooledPacket handle
// the whole forwarding path moves instead of Packet values.
//
// Why: a Packet is ~56 bytes. Capturing one by value in a scheduled
// delivery lambda overflows SmallCallback's 48-byte inline buffer, so
// the seed implementation paid a heap allocation per link hop plus
// shared_ptr refcount traffic per routing-update copy. A PooledPacket is
// 16 bytes (pool pointer + slot index); a delivery capture of
// {Link*, PooledPacket} is 24 bytes and stays inline. Slots are recycled
// through a free list, so steady-state packet churn performs no heap
// allocation at all.
//
// Sharing: PooledPacket is move-only (one owner mutates in flight);
// share() takes an explicit extra reference for broadcast fan-out, where
// N receivers read the same slot. Reference counts are plain ints — a
// slot never crosses threads (one simulation = one thread; pools are
// per-thread via local()).
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>

#include "net/packet.hpp"
#include "net/slab_arena.hpp"

namespace routesync::net {

class PacketPool;

/// Move-only RAII handle to a pooled Packet.
class PooledPacket {
public:
    PooledPacket() noexcept = default;
    PooledPacket(const PooledPacket&) = delete;
    PooledPacket& operator=(const PooledPacket&) = delete;
    PooledPacket(PooledPacket&& other) noexcept
        : pool_{other.pool_}, slot_{other.slot_} {
        other.pool_ = nullptr;
    }
    PooledPacket& operator=(PooledPacket&& other) noexcept {
        if (this != &other) {
            reset();
            pool_ = other.pool_;
            slot_ = other.slot_;
            other.pool_ = nullptr;
        }
        return *this;
    }
    ~PooledPacket() { reset(); }

    [[nodiscard]] explicit operator bool() const noexcept { return pool_ != nullptr; }
    [[nodiscard]] Packet& operator*() const noexcept;
    [[nodiscard]] Packet* operator->() const noexcept;
    [[nodiscard]] Packet* get() const noexcept;

    /// An additional owning handle on the same slot (broadcast fan-out).
    /// Receivers of shared handles must treat the packet as read-only.
    [[nodiscard]] PooledPacket share() const noexcept;
    /// True when this is the only handle on the slot (safe to mutate).
    [[nodiscard]] bool unique() const noexcept;

    [[nodiscard]] PacketPool* pool() const noexcept { return pool_; }

    void reset() noexcept;

private:
    friend class PacketPool;
    PooledPacket(PacketPool* pool, std::uint32_t slot) noexcept
        : pool_{pool}, slot_{slot} {}

    PacketPool* pool_ = nullptr;
    std::uint32_t slot_ = 0;
};

class PacketPool {
public:
    PacketPool() = default;
    PacketPool(const PacketPool&) = delete;
    PacketPool& operator=(const PacketPool&) = delete;

    /// Moves `p` into a recycled slot and returns the owning handle.
    [[nodiscard]] PooledPacket acquire(Packet p = {}) {
        const std::uint32_t idx = arena_.acquire();
        arena_.value(idx) = std::move(p);
        return PooledPacket{this, idx};
    }

    /// The calling thread's pool — see PayloadPool::local() for why a
    /// per-thread pool preserves byte-identical simulation output.
    [[nodiscard]] static PacketPool& local() {
        thread_local PacketPool pool;
        return pool;
    }

    [[nodiscard]] std::size_t live() const noexcept { return arena_.live(); }
    [[nodiscard]] std::size_t peak_live() const noexcept { return arena_.peak_live(); }
    [[nodiscard]] std::size_t capacity() const noexcept { return arena_.capacity(); }

    /// One self-describing occupancy reading (ResourceSampler probes).
    struct PoolStats {
        std::size_t live = 0;
        std::size_t peak_live = 0;
        std::size_t capacity = 0; ///< slots currently allocated by the arena
    };
    [[nodiscard]] PoolStats pool_stats() const noexcept {
        return PoolStats{arena_.live(), arena_.peak_live(), arena_.capacity()};
    }

private:
    friend class PooledPacket;
    detail::SlabArena<Packet> arena_;
};

inline Packet& PooledPacket::operator*() const noexcept {
    return pool_->arena_.value(slot_);
}

inline Packet* PooledPacket::operator->() const noexcept {
    return &pool_->arena_.value(slot_);
}

inline Packet* PooledPacket::get() const noexcept {
    return pool_ == nullptr ? nullptr : &pool_->arena_.value(slot_);
}

inline PooledPacket PooledPacket::share() const noexcept {
    if (pool_ == nullptr) {
        return {};
    }
    pool_->arena_.add_ref(slot_);
    return PooledPacket{pool_, slot_};
}

inline bool PooledPacket::unique() const noexcept {
    return pool_ != nullptr && pool_->arena_.refs(slot_) == 1;
}

inline void PooledPacket::reset() noexcept {
    if (pool_ != nullptr) {
        if (pool_->arena_.release(slot_)) {
            // Freed slots must not pin a payload while parked.
            pool_->arena_.value(slot_).update.reset();
        }
        pool_ = nullptr;
    }
}

} // namespace routesync::net
