// Packets for the packet-level network simulator.
//
// The network substrate exists to reproduce the paper's *measurements*
// (Section 2): ping RTT/loss series through routers whose CPUs stall on
// synchronized routing updates (Figures 1-2) and audio streams competing
// with update storms (Figure 3). Packets carry only what those experiments
// need: addressing, size (for serialization delay), sequencing, and an
// optional routing-update payload.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/time.hpp"

namespace routesync::net {

using NodeId = int;

enum class PacketType : std::uint8_t {
    Data,          ///< generic payload (background traffic)
    PingRequest,   ///< echo request (apps::PingApp)
    PingReply,     ///< echo reply
    Audio,         ///< CBR audio (apps::CbrSource)
    RoutingUpdate, ///< distance-vector full-table update
};

/// A distance-vector route advertisement entry.
struct RouteEntry {
    NodeId dest;
    int metric;
};

/// Full-table routing update payload; immutable and shared between the
/// copies a broadcast produces.
struct UpdatePayload {
    NodeId sender;
    bool triggered = false;
    std::vector<RouteEntry> entries;
    /// Routes beyond this topology's (simulating a full backbone table);
    /// they add processing cost and update bytes but carry no reachability.
    int filler_routes = 0;

    [[nodiscard]] int total_routes() const noexcept {
        return static_cast<int>(entries.size()) + filler_routes;
    }
};

struct Packet {
    PacketType type = PacketType::Data;
    NodeId src = -1;
    NodeId dst = -1; ///< -1 broadcasts to all neighbours (routing updates)
    std::uint32_t size_bytes = 0;
    std::uint64_t seq = 0;            ///< per-flow sequence number
    sim::SimTime sent_at;             ///< origination time (RTT accounting)
    std::shared_ptr<const UpdatePayload> update; ///< set for RoutingUpdate
    int ttl = 64;
};

} // namespace routesync::net
