// Packets for the packet-level network simulator.
//
// The network substrate exists to reproduce the paper's *measurements*
// (Section 2): ping RTT/loss series through routers whose CPUs stall on
// synchronized routing updates (Figures 1-2) and audio streams competing
// with update storms (Figure 3). Packets carry only what those experiments
// need: addressing, size (for serialization delay), sequencing, and an
// optional routing-update payload.
//
// Routing-update payloads are pooled: a broadcast of N packet copies
// shares one PayloadPool slot through PayloadRef — a 16-byte handle with
// a plain (non-atomic) reference count, so fan-out costs neither an
// allocation nor refcount cache-line contention. Recycled slots keep
// their entry-vector capacity, so steady-state update generation does not
// allocate at all.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "net/slab_arena.hpp"
#include "sim/time.hpp"

namespace routesync::net {

using NodeId = int;

enum class PacketType : std::uint8_t {
    Data,          ///< generic payload (background traffic)
    PingRequest,   ///< echo request (apps::PingApp)
    PingReply,     ///< echo reply
    Audio,         ///< CBR audio (apps::CbrSource)
    RoutingUpdate, ///< distance-vector full-table update
};

/// A distance-vector route advertisement entry.
struct RouteEntry {
    NodeId dest;
    int metric;
};

/// Full-table routing update payload; built once by the sender, then
/// immutable and shared between the copies a broadcast produces.
struct UpdatePayload {
    NodeId sender = -1;
    bool triggered = false;
    std::vector<RouteEntry> entries;
    /// Routes beyond this topology's (simulating a full backbone table);
    /// they add processing cost and update bytes but carry no reachability.
    int filler_routes = 0;

    [[nodiscard]] int total_routes() const noexcept {
        return static_cast<int>(entries.size()) + filler_routes;
    }
};

class PayloadPool;

/// Shared, copyable handle to a pooled UpdatePayload. Copying bumps a
/// plain refcount in the owning pool; the slot is recycled (capacity
/// intact) when the last handle drops. Read access only — the payload is
/// immutable once attached to a packet; the builder mutates it through
/// PayloadRef::mutate() while it still holds the only reference.
class PayloadRef {
public:
    PayloadRef() noexcept = default;
    PayloadRef(const PayloadRef& other) noexcept;
    PayloadRef(PayloadRef&& other) noexcept
        : pool_{other.pool_}, slot_{other.slot_} {
        other.pool_ = nullptr;
    }
    PayloadRef& operator=(const PayloadRef& other) noexcept;
    PayloadRef& operator=(PayloadRef&& other) noexcept {
        if (this != &other) {
            reset();
            pool_ = other.pool_;
            slot_ = other.slot_;
            other.pool_ = nullptr;
        }
        return *this;
    }
    ~PayloadRef() { reset(); }

    [[nodiscard]] explicit operator bool() const noexcept { return pool_ != nullptr; }
    [[nodiscard]] const UpdatePayload& operator*() const noexcept;
    [[nodiscard]] const UpdatePayload* operator->() const noexcept;
    [[nodiscard]] const UpdatePayload* get() const noexcept;

    /// True when this is the only handle on the slot.
    [[nodiscard]] bool unique() const noexcept;

    /// Builder-side write access; only legal while unique().
    [[nodiscard]] UpdatePayload& mutate() noexcept;

    void reset() noexcept;

private:
    friend class PayloadPool;
    PayloadRef(PayloadPool* pool, std::uint32_t slot) noexcept
        : pool_{pool}, slot_{slot} {}

    PayloadPool* pool_ = nullptr;
    std::uint32_t slot_ = 0;
};

/// Slab pool of UpdatePayload slots. One pool per thread via local();
/// explicit instances for tests and benchmarks.
class PayloadPool {
public:
    PayloadPool() = default;
    PayloadPool(const PayloadPool&) = delete;
    PayloadPool& operator=(const PayloadPool&) = delete;

    /// A fresh payload (fields reset, entry capacity recycled) with one
    /// reference.
    [[nodiscard]] PayloadRef acquire() {
        const std::uint32_t idx = arena_.acquire();
        UpdatePayload& p = arena_.value(idx);
        p.sender = -1;
        p.triggered = false;
        p.entries.clear();
        p.filler_routes = 0;
        return PayloadRef{this, idx};
    }

    /// The calling thread's pool. Simulations are single-threaded, so
    /// every handle created by a simulation stays on its thread; slot
    /// indices are never observable in simulation output, which keeps
    /// pooled runs byte-identical to the unpooled seed.
    [[nodiscard]] static PayloadPool& local() {
        thread_local PayloadPool pool;
        return pool;
    }

    [[nodiscard]] std::size_t live() const noexcept { return arena_.live(); }
    [[nodiscard]] std::size_t peak_live() const noexcept { return arena_.peak_live(); }
    [[nodiscard]] std::size_t capacity() const noexcept { return arena_.capacity(); }

private:
    friend class PayloadRef;
    detail::SlabArena<UpdatePayload> arena_;
};

inline PayloadRef::PayloadRef(const PayloadRef& other) noexcept
    : pool_{other.pool_}, slot_{other.slot_} {
    if (pool_ != nullptr) {
        pool_->arena_.add_ref(slot_);
    }
}

inline PayloadRef& PayloadRef::operator=(const PayloadRef& other) noexcept {
    if (this != &other) {
        if (other.pool_ != nullptr) {
            other.pool_->arena_.add_ref(other.slot_);
        }
        reset();
        pool_ = other.pool_;
        slot_ = other.slot_;
    }
    return *this;
}

inline const UpdatePayload& PayloadRef::operator*() const noexcept {
    return pool_->arena_.value(slot_);
}

inline const UpdatePayload* PayloadRef::operator->() const noexcept {
    return &pool_->arena_.value(slot_);
}

inline const UpdatePayload* PayloadRef::get() const noexcept {
    return pool_ == nullptr ? nullptr : &pool_->arena_.value(slot_);
}

inline bool PayloadRef::unique() const noexcept {
    return pool_ != nullptr && pool_->arena_.refs(slot_) == 1;
}

inline UpdatePayload& PayloadRef::mutate() noexcept {
    assert(unique() && "PayloadRef::mutate: payload already shared");
    return pool_->arena_.value(slot_);
}

inline void PayloadRef::reset() noexcept {
    if (pool_ != nullptr) {
        pool_->arena_.release(slot_);
        pool_ = nullptr;
    }
}

struct Packet {
    PacketType type = PacketType::Data;
    NodeId src = -1;
    NodeId dst = -1; ///< -1 broadcasts to all neighbours (routing updates)
    std::uint32_t size_bytes = 0;
    std::uint64_t seq = 0; ///< per-flow sequence number
    sim::SimTime sent_at;  ///< origination time (RTT accounting)
    PayloadRef update;     ///< set for RoutingUpdate
    int ttl = 64;
};

} // namespace routesync::net
