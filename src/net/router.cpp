#include "net/router.hpp"

#include <utility>

#include "obs/tracer.hpp"

namespace routesync::net {

void Router::receive(PooledPacket p, int iface) {
    if (p->type == PacketType::RoutingUpdate) {
        ++stats_.updates_received;
        if (on_routing_update) {
            // The hook reads the packet and shares its payload ref; the
            // slot itself is recycled the moment this handle drops.
            on_routing_update(*p, iface);
        }
        return;
    }
    if (p->dst == id()) {
        return; // traffic addressed to the router itself: consumed
    }
    forward(std::move(p));
}

void Router::forward(PooledPacket p) {
    if (!p.unique()) {
        p = p.pool()->acquire(Packet{*p}); // shared frame: copy before mutating
    }
    if (--p->ttl <= 0) {
        ++stats_.ttl_drops;
        return;
    }
    if (blocking_cpu_ && cpu_busy()) {
        // The route processor owns the box: hold a handful of packets,
        // drop the rest (the pre-fix NEARnet behaviour).
        if (pending_.size() >= pending_capacity_) {
            ++stats_.cpu_blocked_drops;
            if (obs::Tracer* tr = engine().tracer()) {
                tr->emit(obs::TraceEventType::PacketDrop, engine().now(), id(),
                         static_cast<std::int64_t>(p->seq), p->size_bytes);
            }
            return;
        }
        pending_.enqueue(std::move(p));
        ++stats_.cpu_blocked_delayed;
        return;
    }
    transmit(std::move(p));
}

void Router::transmit(PooledPacket p) {
    const NodeId dst = p->dst;
    const int iface = has_route(dst) ? fib_[static_cast<std::size_t>(dst)] : -1;
    if (iface < 0) {
        ++stats_.no_route_drops;
        return;
    }
    ++stats_.forwarded;
    send_on(iface, std::move(p));
}

void Router::schedule_cpu_work(sim::SimTime cost, std::function<void()> done) {
    const sim::SimTime now = engine().now();
    if (cpu_free_at_ < now) {
        cpu_free_at_ = now;
    }
    cpu_free_at_ += cost;
    stats_.cpu_seconds += cost.sec();
    if (cpu_jobs_pending_ == 0) {
        if (obs::Tracer* tr = engine().tracer()) {
            tr->emit(obs::TraceEventType::CpuBusyBegin, now, id(), 0, cost.sec());
        }
    }
    ++cpu_jobs_pending_;
    engine().schedule_at(cpu_free_at_, [this, done = std::move(done)]() mutable {
        cpu_job_finished(std::move(done));
    });
}

void Router::cpu_job_finished(std::function<void()> done) {
    --cpu_jobs_pending_;
    if (done) {
        done();
    }
    if (cpu_jobs_pending_ == 0) {
        if (obs::Tracer* tr = engine().tracer()) {
            tr->emit(obs::TraceEventType::CpuBusyEnd, engine().now(), id(),
                     static_cast<std::int64_t>(pending_.size()), 0.0);
        }
        // Drain the pending buffer first (they waited out the stall), then
        // wake anyone waiting for idle (e.g. the DV agent's timer re-arm).
        while (PooledPacket p = pending_.dequeue()) {
            transmit(std::move(p));
        }
        auto waiters = std::move(idle_waiters_);
        idle_waiters_.clear();
        for (auto& cb : waiters) {
            cb();
        }
    }
}

void Router::when_cpu_idle(std::function<void()> cb) {
    if (!cpu_busy()) {
        cb();
        return;
    }
    idle_waiters_.push_back(std::move(cb));
}

} // namespace routesync::net
