// Drop-tail FIFO packet queue with byte and packet capacity limits and
// drop/enqueue accounting. Holds pooled packet handles, so queueing a
// packet moves 16 bytes and never copies or allocates.
#pragma once

#include <cstdint>
#include <deque>

#include "net/packet_pool.hpp"

namespace routesync::net {

struct QueueStats {
    std::uint64_t enqueued = 0;
    std::uint64_t dequeued = 0;
    std::uint64_t dropped = 0;
};

class DropTailQueue {
public:
    /// `max_packets` — capacity in packets; `max_bytes` — 0 disables the
    /// byte limit.
    explicit DropTailQueue(std::size_t max_packets = 64, std::uint64_t max_bytes = 0)
        : max_packets_{max_packets}, max_bytes_{max_bytes} {}

    /// Returns false (and counts a drop, releasing the handle) when the
    /// packet does not fit.
    bool push(PooledPacket p);

    /// Removes and returns the head packet; an empty handle when the
    /// queue is empty.
    PooledPacket pop();

    /// The head packet without removing it; nullptr when empty.
    [[nodiscard]] const Packet* front() const noexcept {
        return items_.empty() ? nullptr : items_.front().get();
    }

    [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
    [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }
    [[nodiscard]] const QueueStats& stats() const noexcept { return stats_; }

private:
    std::size_t max_packets_;
    std::uint64_t max_bytes_;
    std::deque<PooledPacket> items_;
    std::uint64_t bytes_ = 0;
    QueueStats stats_;
};

inline bool DropTailQueue::push(PooledPacket p) {
    const bool over_packets = items_.size() >= max_packets_;
    const bool over_bytes = max_bytes_ > 0 && bytes_ + p->size_bytes > max_bytes_;
    if (over_packets || over_bytes) {
        ++stats_.dropped;
        return false;
    }
    bytes_ += p->size_bytes;
    items_.push_back(std::move(p));
    ++stats_.enqueued;
    return true;
}

inline PooledPacket DropTailQueue::pop() {
    if (items_.empty()) {
        return {};
    }
    PooledPacket p = std::move(items_.front());
    items_.pop_front();
    bytes_ -= p->size_bytes;
    ++stats_.dequeued;
    return p;
}

} // namespace routesync::net
