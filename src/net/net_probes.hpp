// ResourceSampler probes over the packet-level network components.
//
// obs::ResourceSampler is generic (it sits below net in the link order),
// so the closures that know how to read a Link, SharedLan, Router, or
// PacketPool live here. Each watch_* registers one or more sources on
// the sampler; names are dotted paths under the component's name, so the
// resulting gauges ("rs.r1.cpu_busy", ...) sort into a readable tree.
//
// All probes are read-only: sampling never perturbs the simulation.
#pragma once

#include <string>
#include <utility>

#include "net/link.hpp"
#include "net/network.hpp"
#include "net/packet_pool.hpp"
#include "net/router.hpp"
#include "net/shared_lan.hpp"
#include "obs/resource_sampler.hpp"

namespace routesync::net {

/// Queue depth (vs capacity) and queued bytes of a point-to-point link.
inline void watch_link(obs::ResourceSampler& sampler, const std::string& name,
                       int node, const Link& link) {
    sampler.add_source(name + ".queue", node, [&link] {
        return obs::ResourceSampler::Sample{
            static_cast<double>(link.queue_depth()),
            static_cast<double>(link.queue_capacity())};
    });
    sampler.add_source(name + ".queue_bytes", node, [&link] {
        return obs::ResourceSampler::Sample{
            static_cast<double>(link.queue_bytes()), 0.0};
    });
}

/// Total frames queued across a shared LAN's stations (vs the per-station
/// capacity times the station count).
inline void watch_shared_lan(obs::ResourceSampler& sampler,
                             const std::string& name, const SharedLan& lan) {
    sampler.add_source(name + ".queued_frames", -1, [&lan] {
        return obs::ResourceSampler::Sample{
            static_cast<double>(lan.queued_frames()),
            static_cast<double>(lan.station_queue_capacity()) *
                static_cast<double>(lan.stations())};
    });
}

/// Pending-buffer depth and CPU busy fraction since the last sample. The
/// busy fraction differentiates RouterStats::cpu_seconds over the
/// sampler's cadence, so a saturated route processor reads 1.0.
inline void watch_router(obs::ResourceSampler& sampler, const std::string& name,
                         const Router& router) {
    sampler.add_source(name + ".pending", router.id(), [&router] {
        return obs::ResourceSampler::Sample{
            static_cast<double>(router.pending_depth()),
            static_cast<double>(router.pending_capacity())};
    });
    const double window = sampler.cadence().sec();
    sampler.add_source(name + ".cpu_busy", router.id(),
                       [&router, window, last = 0.0]() mutable {
                           const double total = router.stats().cpu_seconds;
                           const double frac = (total - last) / window;
                           last = total;
                           return obs::ResourceSampler::Sample{frac, 1.0};
                       });
}

/// Queue occupancy (vs capacity) for every queue element in an element
/// graph. Non-queue elements carry no level worth sampling (counters go
/// through collect_metrics instead), so they are skipped.
inline void watch_element_graph(obs::ResourceSampler& sampler,
                                const std::string& name, int node,
                                const elements::ElementGraph& graph) {
    for (const auto& elem : graph.elements()) {
        const auto* queue =
            dynamic_cast<const elements::QueueElement*>(elem.get());
        if (queue == nullptr) {
            continue;
        }
        sampler.add_source(name + "." + queue->name(), node, [queue] {
            return obs::ResourceSampler::Sample{
                static_cast<double>(queue->size()),
                static_cast<double>(queue->capacity())};
        });
    }
}

/// Live slots vs allocated capacity of a packet pool (or any slab-backed
/// pool exposing the same PoolStats shape).
inline void watch_packet_pool(obs::ResourceSampler& sampler,
                              const std::string& name, const PacketPool& pool) {
    sampler.add_source(name + ".live", -1, [&pool] {
        const PacketPool::PoolStats s = pool.pool_stats();
        return obs::ResourceSampler::Sample{static_cast<double>(s.live),
                                            static_cast<double>(s.capacity)};
    });
}

/// Everything at once: every router (pending depth + CPU busy fraction),
/// every link direction (queue depth + bytes), and the calling thread's
/// packet pool. Names follow the nodes' own names, so the resulting
/// gauge tree reads like the topology.
inline void watch_network(obs::ResourceSampler& sampler, const Network& nw) {
    for (const Router* router : nw.routers()) {
        watch_router(sampler, router->name(), *router);
    }
    for (const Network::LinkView& view : nw.link_views()) {
        const std::string a = nw.node(view.a).name();
        const std::string b = nw.node(view.b).name();
        watch_link(sampler, "link." + a + "-" + b, static_cast<int>(view.a),
                   *view.a_to_b);
        watch_link(sampler, "link." + b + "-" + a, static_cast<int>(view.b),
                   *view.b_to_a);
    }
    watch_packet_pool(sampler, "packet_pool", PacketPool::local());
}

} // namespace routesync::net
