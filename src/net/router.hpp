// A router with an explicit CPU model.
//
// The paper's Section 2 measurements hinge on one implementation detail of
// early-1990s routers: while the route processor was digesting routing
// updates, the box forwarded nothing ("routers were prevented from routing
// other packets while the synchronized routing updates were being
// processed"). When updates from many routers synchronize, each router's
// CPU stalls for (number of routers) x (per-update cost) seconds every
// period, and every packet that arrives meanwhile is delayed or dropped —
// the 90-second loss spikes of Figure 1.
//
// The Router therefore separates the *forwarding plane* (table lookup +
// transmit) from the *route processor* (a serial work queue). In blocking
// mode, transit packets that arrive while the processor is busy wait in a
// small pending buffer (dropping when it overflows); in non-blocking mode
// (the post-fix NEARnet behaviour) forwarding proceeds regardless.
//
// The FIB is a dense vector indexed by destination id (node ids are
// 0..n-1 by construction of Network), so the forwarding hot path is one
// bounds check and one load — no hashing.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "net/elements/fifo_queue.hpp"
#include "net/node.hpp"

namespace routesync::net {

struct RouterStats {
    std::uint64_t forwarded = 0;
    std::uint64_t no_route_drops = 0;
    std::uint64_t ttl_drops = 0;
    std::uint64_t cpu_blocked_drops = 0; ///< pending buffer overflow
    std::uint64_t cpu_blocked_delayed = 0;
    std::uint64_t updates_received = 0;
    /// Total route-processor time consumed (seconds) — the update-load
    /// metric the paper's Section 1 cisco measurement is about.
    double cpu_seconds = 0.0;
};

class Router final : public Node {
public:
    Router(sim::Engine& engine, NodeId id, std::string name,
           bool blocking_cpu = true, std::size_t pending_capacity = 4)
        : Node{engine, id, std::move(name)},
          blocking_cpu_{blocking_cpu},
          pending_capacity_{pending_capacity},
          pending_{engine, this->name() + ".pending", pending_capacity} {
        // The pre-element Router never traced its pending buffer (the CPU
        // stall is what the trace shows, via the explicit drop event in
        // forward() and CpuBusyEnd's backlog count); keep that contract.
        pending_.set_trace_events(false);
    }

    /// Routing-protocol hook: invoked for every routing update addressed
    /// here (or broadcast). The agent decides the processing cost and calls
    /// schedule_cpu_work itself.
    std::function<void(const Packet&, int iface)> on_routing_update;

    /// --- forwarding plane -------------------------------------------

    /// Installs/replaces the forwarding entry for `dest`.
    void set_route(NodeId dest, int iface) {
        const auto d = static_cast<std::size_t>(dest);
        if (d >= fib_.size()) {
            fib_.resize(d + 1, -1);
        }
        fib_[d] = iface;
    }
    void clear_route(NodeId dest) {
        const auto d = static_cast<std::size_t>(dest);
        if (d < fib_.size()) {
            fib_[d] = -1;
        }
    }
    [[nodiscard]] bool has_route(NodeId dest) const {
        return dest >= 0 && static_cast<std::size_t>(dest) < fib_.size() &&
               fib_[static_cast<std::size_t>(dest)] >= 0;
    }
    [[nodiscard]] int route_iface(NodeId dest) const {
        if (!has_route(dest)) {
            throw std::out_of_range{"Router::route_iface: no route"};
        }
        return fib_[static_cast<std::size_t>(dest)];
    }

    void receive(PooledPacket p, int iface) override;

    /// --- route processor ---------------------------------------------

    /// Appends a job to the serial CPU work queue; `done` runs when the job
    /// completes (cost seconds after all earlier jobs finish).
    void schedule_cpu_work(sim::SimTime cost, std::function<void()> done);

    /// Runs `cb` the next time the CPU queue drains. If the CPU is idle
    /// now, runs it immediately.
    void when_cpu_idle(std::function<void()> cb);

    [[nodiscard]] bool cpu_busy() const noexcept { return cpu_jobs_pending_ > 0; }
    [[nodiscard]] sim::SimTime cpu_busy_until() const noexcept { return cpu_free_at_; }

    /// Transit packets parked while the route processor is busy (the
    /// level the ResourceSampler reads), and the buffer's capacity.
    [[nodiscard]] std::size_t pending_depth() const noexcept { return pending_.size(); }
    [[nodiscard]] std::size_t pending_capacity() const noexcept {
        return pending_capacity_;
    }

    [[nodiscard]] const RouterStats& stats() const noexcept { return stats_; }

private:
    void forward(PooledPacket p);
    void transmit(PooledPacket p);
    void cpu_job_finished(std::function<void()> done);

    bool blocking_cpu_;
    std::size_t pending_capacity_;
    std::vector<int> fib_; ///< dest id -> iface, -1 = no route

    sim::SimTime cpu_free_at_ = sim::SimTime::zero();
    int cpu_jobs_pending_ = 0;
    /// Packets waiting out a CPU stall — a queue element so the pending
    /// buffer shares the discipline/metrics machinery of every other
    /// queue in the packet path.
    elements::FifoQueue pending_;
    std::vector<std::function<void()>> idle_waiters_;

    RouterStats stats_;
};

} // namespace routesync::net
