// A simplex point-to-point link, built as a three-element graph
// (see docs/ELEMENTS.md):
//
//     tx[1] -> queue; queue -> [1]tx; tx -> sink
//
// i.e. a DelayLink transmitter (serialization at a fixed bit rate, fixed
// propagation delay) whose overflow feeds a queue element it drains
// between transmissions, terminating in a CallbackSink that invokes the
// delivery callback. The queue discipline is a config knob: drop-tail
// (the historical behaviour and default) or RED.
//
// This class is the stable facade the rest of net/ holds: same API as
// the pre-element Link, byte-identical default behaviour, with the
// element graph reachable through graph() for metrics and rewiring.
//
// Packets travel as PooledPacket handles; the in-flight delivery capture
// is {DelayLink*, handle} = 24 bytes, inside the event queue's
// inline-callback budget, so a link hop schedules without touching the
// heap.
#pragma once

#include <functional>

#include "net/elements/delay_link.hpp"
#include "net/elements/element_graph.hpp"
#include "net/elements/queue_element.hpp"
#include "net/elements/red_queue.hpp"
#include "net/packet_pool.hpp"
#include "net/queue.hpp"
#include "sim/engine.hpp"

namespace routesync::net {

/// Aggregate link parameters; designated initializers at call sites
/// replace the old positional argument list.
struct LinkConfig {
    double rate_bps = 10e6;                       ///< 10 Mb/s Ethernet-era default; <= 0 means infinite rate
    sim::SimTime delay = sim::SimTime::millis(1); ///< propagation
    std::size_t queue_packets = 64;
    elements::QueueDisc queue_disc = elements::QueueDisc::DropTail;
    elements::RedTuning red{}; ///< used when queue_disc == Red
    /// Fast (default) resolves devirtualized port dispatch at finalize;
    /// Virtual keeps the checked virtual path as a differential reference.
    elements::DispatchMode dispatch = elements::DispatchMode::Fast;
};

class Link {
public:
    /// `deliver` — invoked at the far end when a packet finishes
    /// propagation.
    Link(sim::Engine& engine, const LinkConfig& config,
         std::function<void(PooledPacket)> deliver);

    /// Queues the packet for transmission; drops (with accounting) when the
    /// queue is full or the link is administratively/physically down.
    void send(PooledPacket p) { tx_->push(0, std::move(p)); }
    /// Convenience: pools a loose packet on the calling thread's pool.
    void send(Packet p) { send(PacketPool::local().acquire(std::move(p))); }

    /// Carrier state: a downed link silently discards everything offered
    /// to it (in-flight packets still arrive — they are already on the
    /// wire).
    void set_up(bool up) noexcept { tx_->set_up(up); }
    [[nodiscard]] bool is_up() const noexcept { return tx_->is_up(); }
    [[nodiscard]] std::uint64_t down_drops() const noexcept {
        return tx_->down_drops();
    }

    [[nodiscard]] const QueueStats& queue_stats() const noexcept {
        return queue_->stats();
    }
    /// Packets waiting behind the transmitter right now (the level the
    /// ResourceSampler reads; queue_stats() has the cumulative counters).
    [[nodiscard]] std::size_t queue_depth() const noexcept {
        return queue_->size();
    }
    [[nodiscard]] std::uint64_t queue_bytes() const noexcept {
        return queue_->bytes();
    }
    [[nodiscard]] std::size_t queue_capacity() const noexcept {
        return queue_->capacity();
    }
    [[nodiscard]] sim::SimTime serialization_time(std::uint32_t bytes) const noexcept {
        return tx_->serialization_time(bytes);
    }

    /// The underlying element graph ("tx", "queue", "sink").
    [[nodiscard]] elements::ElementGraph& graph() noexcept { return graph_; }
    [[nodiscard]] const elements::ElementGraph& graph() const noexcept {
        return graph_;
    }

private:
    elements::ElementGraph graph_;
    elements::DelayLink* tx_;
    elements::QueueElement* queue_;
};

} // namespace routesync::net
