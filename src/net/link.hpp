// A simplex point-to-point link: serialization at a fixed bit rate, fixed
// propagation delay, and a drop-tail queue ahead of the transmitter.
//
// Packets travel as PooledPacket handles; the in-flight delivery capture
// is {Link*, handle} = 24 bytes, inside the event queue's inline-callback
// budget, so a link hop schedules without touching the heap.
#pragma once

#include <functional>

#include "net/packet_pool.hpp"
#include "net/queue.hpp"
#include "sim/engine.hpp"

namespace routesync::net {

/// Aggregate link parameters; designated initializers at call sites
/// replace the old positional argument list.
struct LinkConfig {
    double rate_bps = 10e6;                       ///< 10 Mb/s Ethernet-era default; <= 0 means infinite rate
    sim::SimTime delay = sim::SimTime::millis(1); ///< propagation
    std::size_t queue_packets = 64;
};

class Link {
public:
    /// `deliver` — invoked at the far end when a packet finishes
    /// propagation.
    Link(sim::Engine& engine, const LinkConfig& config,
         std::function<void(PooledPacket)> deliver);

    [[deprecated("use Link(engine, LinkConfig{...}, deliver)")]]
    Link(sim::Engine& engine, double rate_bps, sim::SimTime prop_delay,
         std::size_t queue_packets, std::function<void(PooledPacket)> deliver)
        : Link{engine,
               LinkConfig{.rate_bps = rate_bps,
                          .delay = prop_delay,
                          .queue_packets = queue_packets},
               std::move(deliver)} {}

    /// Queues the packet for transmission; drops (with accounting) when the
    /// queue is full or the link is administratively/physically down.
    void send(PooledPacket p);
    /// Convenience: pools a loose packet on the calling thread's pool.
    void send(Packet p) { send(PacketPool::local().acquire(std::move(p))); }

    /// Carrier state: a downed link silently discards everything offered
    /// to it (in-flight packets still arrive — they are already on the
    /// wire).
    void set_up(bool up) noexcept { up_ = up; }
    [[nodiscard]] bool is_up() const noexcept { return up_; }
    [[nodiscard]] std::uint64_t down_drops() const noexcept { return down_drops_; }

    [[nodiscard]] const QueueStats& queue_stats() const noexcept {
        return queue_.stats();
    }
    /// Packets waiting behind the transmitter right now (the level the
    /// ResourceSampler reads; queue_stats() has the cumulative counters).
    [[nodiscard]] std::size_t queue_depth() const noexcept { return queue_.size(); }
    [[nodiscard]] std::uint64_t queue_bytes() const noexcept { return queue_.bytes(); }
    [[nodiscard]] std::size_t queue_capacity() const noexcept {
        return queue_capacity_;
    }
    [[nodiscard]] sim::SimTime serialization_time(std::uint32_t bytes) const noexcept;

private:
    void start_transmission(PooledPacket p);
    void transmission_done();
    void trace_drop(const Packet& p) const;

    sim::Engine& engine_;
    double rate_bps_;
    sim::SimTime prop_delay_;
    std::size_t queue_capacity_;
    DropTailQueue queue_;
    std::function<void(PooledPacket)> deliver_;
    bool transmitting_ = false;
    bool up_ = true;
    std::uint64_t down_drops_ = 0;
};

} // namespace routesync::net
