// Topology builder and owner: creates hosts/routers, wires duplex links,
// and can install static shortest-path routes (the baseline when no
// distance-vector protocol is running).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "net/router.hpp"
#include "obs/metrics.hpp"

namespace routesync::net {

// LinkConfig now lives in net/link.hpp next to the class it configures;
// this header re-exports it via the link.hpp include above.

class Network {
public:
    explicit Network(sim::Engine& engine) : engine_{engine} {}

    Network(const Network&) = delete;
    Network& operator=(const Network&) = delete;

    Host& add_host(const std::string& name);
    Router& add_router(const std::string& name, bool blocking_cpu = true,
                       std::size_t pending_capacity = 4);

    /// Creates a duplex connection (two simplex links) between two existing
    /// nodes. Returns nothing; interface indices follow call order.
    void connect(Node& a, Node& b, const LinkConfig& config = {});

    /// Sets the carrier state of the duplex connection between `a` and `b`
    /// (both directions). Throws if the nodes are not connected.
    void set_link_state(NodeId a, NodeId b, bool up);

    /// Installs static shortest-path (min-hop) forwarding entries in every
    /// router, for every node as destination. BFS over the link graph;
    /// ties broken by lower neighbour id (deterministic).
    void install_static_routes();

    [[nodiscard]] Node& node(NodeId id) { return *nodes_.at(static_cast<std::size_t>(id)); }
    [[nodiscard]] const Node& node(NodeId id) const {
        return *nodes_.at(static_cast<std::size_t>(id));
    }
    [[nodiscard]] int node_count() const noexcept {
        return static_cast<int>(nodes_.size());
    }
    [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }

    /// All routers, in creation order (for protocol attachment loops).
    [[nodiscard]] const std::vector<Router*>& routers() const noexcept {
        return routers_;
    }

    /// Read-only view of one duplex connection, for instrumentation
    /// (net_probes.hpp's watch_network registers a sampler source per
    /// direction).
    struct LinkView {
        NodeId a;
        NodeId b;
        const Link* a_to_b;
        const Link* b_to_a;
    };
    [[nodiscard]] std::vector<LinkView> link_views() const {
        std::vector<LinkView> views;
        views.reserve(duplexes_.size());
        for (const Duplex& d : duplexes_) {
            views.push_back(LinkView{d.a, d.b, d.a_to_b, d.b_to_a});
        }
        return views;
    }

    /// Folds every link's element-graph counters into `reg` under
    /// "<prefix>.<element>.<counter>". Links share element names ("tx",
    /// "queue", "sink"), so the counters aggregate across the topology —
    /// "elem.link.queue.dropped" is the network-wide queue-drop total.
    void collect_element_metrics(obs::MetricsRegistry& reg,
                                 const std::string& prefix = "elem.link") const {
        for (const auto& link : links_) {
            link->graph().collect_metrics(reg, prefix);
        }
    }

private:
    struct Duplex {
        NodeId a;
        NodeId b;
        Link* a_to_b;
        Link* b_to_a;
    };

    sim::Engine& engine_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::vector<std::unique_ptr<Link>> links_;
    std::vector<Duplex> duplexes_;
    std::vector<Router*> routers_;
    /// adjacency[id] = list of (neighbor id, iface index on `id`)
    std::vector<std::vector<std::pair<NodeId, int>>> adjacency_;
};

} // namespace routesync::net
