// Slab arena: the allocation engine under PacketPool and PayloadPool.
//
// Objects live in fixed-size slabs (stable addresses, no reallocation);
// free slots are threaded through an intrusive free list. Each slot
// carries a plain (non-atomic) reference count — a slot is shared only
// within one simulation, and a simulation never crosses threads, so the
// count needs no synchronization. Recycled slots are *not* destroyed:
// a slot's object keeps its heap capacity (e.g. an UpdatePayload's entry
// vector) across reuse, which is where the per-packet allocations go.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace routesync::net::detail {

template <typename T>
class SlabArena {
public:
    static constexpr std::uint32_t kNone = 0xffffffffu;

    SlabArena() = default;
    SlabArena(const SlabArena&) = delete;
    SlabArena& operator=(const SlabArena&) = delete;

    /// Pops a free slot (growing by one slab when empty) and sets its
    /// reference count to 1. The slot's object is in whatever state its
    /// previous user left it — callers reset the fields they care about.
    [[nodiscard]] std::uint32_t acquire() {
        if (free_head_ == kNone) {
            grow();
        }
        const std::uint32_t idx = free_head_;
        Slot& s = slot(idx);
        free_head_ = s.next_free;
        s.refs = 1;
        ++live_;
        if (live_ > peak_live_) {
            peak_live_ = live_;
        }
        return idx;
    }

    void add_ref(std::uint32_t idx) noexcept { ++slot(idx).refs; }

    /// Drops one reference; returns true when this was the last one and
    /// the slot went back on the free list.
    bool release(std::uint32_t idx) noexcept {
        Slot& s = slot(idx);
        assert(s.refs > 0 && "SlabArena: release of a free slot");
        if (--s.refs > 0) {
            return false;
        }
        s.next_free = free_head_;
        free_head_ = idx;
        --live_;
        return true;
    }

    [[nodiscard]] T& value(std::uint32_t idx) noexcept { return slot(idx).value; }
    [[nodiscard]] const T& value(std::uint32_t idx) const noexcept {
        return slot(idx).value;
    }
    [[nodiscard]] std::uint32_t refs(std::uint32_t idx) const noexcept {
        return slot(idx).refs;
    }

    [[nodiscard]] std::size_t live() const noexcept { return live_; }
    [[nodiscard]] std::size_t peak_live() const noexcept { return peak_live_; }
    [[nodiscard]] std::size_t slabs() const noexcept { return slabs_.size(); }
    [[nodiscard]] std::size_t capacity() const noexcept {
        return slabs_.size() * kSlabSlots;
    }

private:
    static constexpr std::size_t kSlabSlots = 256; // 2^8: idx splits by shift/mask

    struct Slot {
        T value{};
        std::uint32_t refs = 0;
        std::uint32_t next_free = kNone;
    };

    [[nodiscard]] Slot& slot(std::uint32_t idx) noexcept {
        return slabs_[idx >> 8][idx & 0xff];
    }
    [[nodiscard]] const Slot& slot(std::uint32_t idx) const noexcept {
        return slabs_[idx >> 8][idx & 0xff];
    }

    void grow() {
        const auto base = static_cast<std::uint32_t>(capacity());
        slabs_.push_back(std::make_unique<Slot[]>(kSlabSlots));
        // Thread the new slab onto the free list front-to-back so fresh
        // acquires walk it in address order.
        Slot* slab = slabs_.back().get();
        for (std::size_t i = kSlabSlots; i-- > 0;) {
            slab[i].next_free = free_head_;
            free_head_ = base + static_cast<std::uint32_t>(i);
        }
    }

    std::vector<std::unique_ptr<Slot[]>> slabs_;
    std::uint32_t free_head_ = kNone;
    std::size_t live_ = 0;
    std::size_t peak_live_ = 0;
};

} // namespace routesync::net::detail
