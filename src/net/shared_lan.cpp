#include "net/shared_lan.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "net/elements/fifo_queue.hpp"
#include "obs/tracer.hpp"

namespace routesync::net {

SharedLan::SharedLan(sim::Engine& engine, const SharedLanConfig& config)
    : engine_{engine},
      config_{config},
      gen_{config.seed},
      graph_{engine},
      fast_{config.dispatch == elements::DispatchMode::Fast} {
    if (config_.rate_bps <= 0.0) {
        throw std::invalid_argument{"SharedLan: rate must be positive"};
    }
    if (config_.max_attempts < 1 || config_.max_backoff_exponent < 1) {
        throw std::invalid_argument{"SharedLan: bad backoff parameters"};
    }
}

int SharedLan::attach(std::function<void(const Packet&)> deliver) {
    if (!deliver) {
        throw std::invalid_argument{"SharedLan: delivery callback required"};
    }
    const int station = static_cast<int>(stations_.size());
    const std::string qname = "st" + std::to_string(station);
    elements::QueueElement* queue = nullptr;
    if (config_.queue_disc == elements::QueueDisc::Red) {
        elements::RedTuning tuning = config_.red;
        tuning.seed += static_cast<std::uint64_t>(station);
        queue = &graph_.add<elements::RedQueue>(
            qname, config_.station_queue_packets, tuning);
    } else {
        queue = &graph_.add<elements::FifoQueue>(qname,
                                                 config_.station_queue_packets);
    }
    // Enqueue/drop trace events carry the station index (this medium's
    // node id space), not the frame's src field.
    queue->set_trace_node(station);
    stations_.push_back(Station{std::move(deliver), queue, 0, false});
    return station;
}

// Devirtualized queue calls: every station runs the same discipline, so
// the dynamic type is pinned by config_.queue_disc and a qualified call
// on the final class replaces the vtable dispatch (and lets the
// discipline's enqueue inline). Virtual mode keeps the plain virtual
// call as the differential reference.
bool SharedLan::q_enqueue(Station& st, PooledPacket p) {
    if (fast_) {
        if (config_.queue_disc == elements::QueueDisc::Red) {
            return static_cast<elements::RedQueue*>(st.queue)
                ->RedQueue::enqueue(std::move(p));
        }
        return static_cast<elements::FifoQueue*>(st.queue)
            ->FifoQueue::enqueue(std::move(p));
    }
    return st.queue->enqueue(std::move(p));
}

PooledPacket SharedLan::q_dequeue(Station& st) {
    if (fast_) {
        if (config_.queue_disc == elements::QueueDisc::Red) {
            return static_cast<elements::RedQueue*>(st.queue)
                ->RedQueue::dequeue();
        }
        return static_cast<elements::FifoQueue*>(st.queue)
            ->FifoQueue::dequeue();
    }
    return st.queue->dequeue();
}

const Packet* SharedLan::q_peek(const Station& st) const {
    if (fast_) {
        if (config_.queue_disc == elements::QueueDisc::Red) {
            return static_cast<const elements::RedQueue*>(st.queue)
                ->RedQueue::peek();
        }
        return static_cast<const elements::FifoQueue*>(st.queue)
            ->FifoQueue::peek();
    }
    return st.queue->peek();
}

bool SharedLan::q_empty(const Station& st) const {
    if (fast_) {
        if (config_.queue_disc == elements::QueueDisc::Red) {
            return static_cast<const elements::RedQueue*>(st.queue)
                       ->RedQueue::size() == 0;
        }
        return static_cast<const elements::FifoQueue*>(st.queue)
                   ->FifoQueue::size() == 0;
    }
    return st.queue->empty();
}

void SharedLan::send(int station, PooledPacket p) {
    auto& st = stations_.at(static_cast<std::size_t>(station));
    ++stats_.frames_offered;
    if (!q_enqueue(st, std::move(p))) {
        ++stats_.drops_queue_full;
        return;
    }
    if (!st.pending) {
        st.pending = true;
        st.attempts = 0;
        contend(station);
    }
}

void SharedLan::contend(int station) {
    auto& st = stations_[static_cast<std::size_t>(station)];
    if (q_empty(st)) {
        st.pending = false;
        return;
    }
    const sim::SimTime now = engine_.now();

    if (transmitting_) {
        if (now - tx_start_ <= config_.prop_delay) {
            // Inside the collision window: the carrier is not yet visible
            // here, so this station transmits too — collision.
            collide(station);
        } else {
            // Carrier sensed: defer, 1-persistent.
            engine_.schedule_at(channel_free_at_, [this, station] { contend(station); });
        }
        return;
    }
    if (now < channel_free_at_) {
        // Inter-frame gap / jam still on the wire.
        engine_.schedule_at(channel_free_at_, [this, station] { contend(station); });
        return;
    }

    // Channel idle: seize it.
    transmitting_ = true;
    current_owner_ = station;
    tx_start_ = now;
    const sim::SimTime duration = sim::SimTime::seconds(
        static_cast<double>(q_peek(st)->size_bytes) * 8.0 /
        config_.rate_bps);
    channel_free_at_ = now + duration + config_.inter_frame_gap;
    tx_end_event_ =
        engine_.schedule_after(duration, [this] { transmission_done(); });
}

void SharedLan::collide(int second_station) {
    ++stats_.collisions;
    const int first = current_owner_;

    // Abort the in-flight frame; jam the wire.
    engine_.cancel(tx_end_event_);
    transmitting_ = false;
    current_owner_ = -1;
    channel_free_at_ = engine_.now() + config_.jam_time + config_.inter_frame_gap;

    for (const int station : {first, second_station}) {
        auto& st = stations_[static_cast<std::size_t>(station)];
        ++st.attempts;
        if (st.attempts >= config_.max_attempts) {
            ++stats_.drops_excessive_collisions;
            if (obs::Tracer* tr = engine_.tracer()) {
                const Packet* head = q_peek(st);
                tr->emit(obs::TraceEventType::PacketDrop, engine_.now(), station,
                         static_cast<std::int64_t>(head->seq), head->size_bytes);
            }
            q_dequeue(st).reset();
            st.attempts = 0;
            if (q_empty(st)) {
                st.pending = false;
                continue;
            }
        }
        schedule_backoff(station);
    }
}

void SharedLan::schedule_backoff(int station) {
    auto& st = stations_[static_cast<std::size_t>(station)];
    const int exponent = std::min(st.attempts, config_.max_backoff_exponent);
    const std::uint64_t slots =
        rng::uniform_u64(gen_, 0, (std::uint64_t{1} << exponent) - 1);
    const sim::SimTime wait =
        config_.jam_time + config_.slot_time * static_cast<double>(slots);
    engine_.schedule_after(wait, [this, station] { contend(station); });
}

void SharedLan::transmission_done() {
    const int owner = current_owner_;
    transmitting_ = false;
    current_owner_ = -1;

    auto& st = stations_[static_cast<std::size_t>(owner)];
    PooledPacket frame = q_dequeue(st);
    st.attempts = 0;
    ++stats_.frames_delivered;
    if (obs::Tracer* tr = engine_.tracer()) {
        tr->emit(obs::TraceEventType::PacketDeliver, engine_.now(), owner,
                 static_cast<std::int64_t>(frame->seq), frame->size_bytes);
    }

    // Broadcast: everyone else hears the frame after the propagation
    // delay.
    if (fast_) {
        // Fused fan-out: ONE event delivers to every receiver in station
        // order. Equivalent to the per-receiver events below: those all
        // carry the same timestamp and consecutive sequence numbers, so
        // nothing can pop between them — the receiver call order is the
        // same either way. The frame parks in broadcasts_ so the capture
        // is {this}, trivially copyable. Only the engine's event count
        // differs.
        if (stations_.size() > 1) {
            broadcasts_.push_back(
                PendingBroadcast{owner, stations_.size(), std::move(frame)});
            engine_.schedule_after(config_.prop_delay,
                                   [this] { deliver_broadcast(); });
        }
    } else {
        // All receivers share the transmitted slot — the capture is
        // {this, i, 16-byte handle}, so the fan-out neither copies the
        // frame nor allocates.
        for (std::size_t i = 0; i < stations_.size(); ++i) {
            if (static_cast<int>(i) == owner) {
                continue;
            }
            engine_.schedule_after(config_.prop_delay,
                                   [this, i, f = frame.share()] {
                                       stations_[i].deliver(*f);
                                   });
        }
    }

    station_next(owner);
}

void SharedLan::deliver_broadcast() {
    PendingBroadcast b = std::move(broadcasts_.front());
    broadcasts_.pop_front();
    for (std::size_t i = 0; i < b.count; ++i) {
        if (static_cast<int>(i) == b.owner) {
            continue;
        }
        stations_[i].deliver(*b.frame);
    }
}

void SharedLan::station_next(int station) {
    auto& st = stations_[static_cast<std::size_t>(station)];
    if (q_empty(st)) {
        st.pending = false;
        return;
    }
    engine_.schedule_at(channel_free_at_, [this, station] { contend(station); });
}

} // namespace routesync::net
