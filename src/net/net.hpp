// Umbrella header for the packet-level network substrate.
#pragma once

#include "net/link.hpp"        // IWYU pragma: export
#include "net/network.hpp"     // IWYU pragma: export
#include "net/node.hpp"        // IWYU pragma: export
#include "net/packet.hpp"      // IWYU pragma: export
#include "net/packet_pool.hpp" // IWYU pragma: export
#include "net/queue.hpp"       // IWYU pragma: export
#include "net/router.hpp"     // IWYU pragma: export
#include "net/shared_lan.hpp" // IWYU pragma: export
