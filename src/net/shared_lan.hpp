// A shared broadcast medium with CSMA/CD-style contention.
//
// The Periodic Messages model "ignores properties of physical networks
// such as the possibility of collisions and retransmissions on an
// Ethernet" (paper Section 3). This class supplies exactly those
// properties — 1-persistent carrier sense, collision detection within the
// propagation window, jam + binary exponential backoff, inter-frame gap —
// so the abstraction can be tested instead of assumed
// (bench/ablation_shared_lan).
//
// Simplifications relative to real 802.3: a single collision domain with
// one propagation delay for all station pairs, and no capture effect.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/elements/element_graph.hpp"
#include "net/elements/queue_element.hpp"
#include "net/elements/red_queue.hpp"
#include "net/packet_pool.hpp"
#include "rng/rng.hpp"
#include "sim/engine.hpp"

namespace routesync::net {

struct SharedLanConfig {
    double rate_bps = 10e6;                        ///< classic Ethernet
    sim::SimTime prop_delay = sim::SimTime::micros(10); ///< collision window
    sim::SimTime slot_time = sim::SimTime::micros(51.2);
    sim::SimTime inter_frame_gap = sim::SimTime::micros(9.6);
    sim::SimTime jam_time = sim::SimTime::micros(4.8);
    int max_backoff_exponent = 10;
    int max_attempts = 16; ///< frame dropped afterwards (excessive collisions)
    std::size_t station_queue_packets = 64;
    /// Per-station queue discipline (the RED-vs-drop-tail knob; station
    /// i's RED lottery is seeded red.seed + i so stations decorrelate).
    elements::QueueDisc queue_disc = elements::QueueDisc::DropTail;
    elements::RedTuning red{};
    std::uint64_t seed = 1;
    /// Fast (default) devirtualizes station-queue calls and fuses the
    /// broadcast fan-out into one delivery event per frame; Virtual keeps
    /// the original checked path as a differential reference. Both are
    /// bit-identical in everything but the engine's event count.
    elements::DispatchMode dispatch = elements::DispatchMode::Fast;
};

struct SharedLanStats {
    std::uint64_t frames_offered = 0;
    std::uint64_t frames_delivered = 0;
    std::uint64_t collisions = 0;
    std::uint64_t drops_excessive_collisions = 0;
    std::uint64_t drops_queue_full = 0;
};

class SharedLan {
public:
    SharedLan(sim::Engine& engine, const SharedLanConfig& config);

    SharedLan(const SharedLan&) = delete;
    SharedLan& operator=(const SharedLan&) = delete;

    /// Attaches a station; `deliver` receives every frame other stations
    /// transmit successfully. All receivers observe the *same* pooled
    /// frame (one slot, N reads — no per-receiver copies). Returns the
    /// station index.
    int attach(std::function<void(const Packet&)> deliver);

    /// Queues a frame for transmission from `station` (broadcast to all
    /// other stations).
    void send(int station, PooledPacket p);
    void send(int station, Packet p) {
        send(station, PacketPool::local().acquire(std::move(p)));
    }

    [[nodiscard]] const SharedLanStats& stats() const noexcept { return stats_; }
    [[nodiscard]] int stations() const noexcept {
        return static_cast<int>(stations_.size());
    }

    /// Frames currently queued at `station` (the level the
    /// ResourceSampler reads; stats() has the cumulative counters).
    [[nodiscard]] std::size_t station_queue_depth(int station) const {
        return stations_.at(static_cast<std::size_t>(station)).queue->size();
    }
    /// Frames queued across all stations.
    [[nodiscard]] std::size_t queued_frames() const noexcept {
        std::size_t total = 0;
        for (const Station& st : stations_) {
            total += st.queue->size();
        }
        return total;
    }
    [[nodiscard]] std::size_t station_queue_capacity() const noexcept {
        return config_.station_queue_packets;
    }

    /// The element graph holding the per-station queues ("st0", "st1",
    /// ...), for metric collection and discipline inspection.
    [[nodiscard]] elements::ElementGraph& graph() noexcept { return graph_; }
    [[nodiscard]] const elements::ElementGraph& graph() const noexcept {
        return graph_;
    }

private:
    struct Station {
        std::function<void(const Packet&)> deliver;
        elements::QueueElement* queue; ///< owned by graph_
        int attempts = 0;   ///< collisions suffered by the head frame
        bool pending = false; ///< head frame is scheduled/contending
    };

    /// Station tries to seize the channel now (after carrier sense).
    void contend(int station);
    /// The in-flight transmission completed without collision.
    void transmission_done();
    /// A second transmitter appeared inside the collision window.
    void collide(int second_station);
    void schedule_backoff(int station);
    void station_next(int station);
    /// Fast-mode fused fan-out: delivers the oldest pending broadcast to
    /// every receiver in station order (see transmission_done).
    void deliver_broadcast();

    // Fast-mode devirtualized station-queue calls: the discipline is
    // uniform across stations (config_.queue_disc), so one predictable
    // branch replaces the vtable dispatch.
    bool q_enqueue(Station& st, PooledPacket p);
    [[nodiscard]] PooledPacket q_dequeue(Station& st);
    [[nodiscard]] const Packet* q_peek(const Station& st) const;
    [[nodiscard]] bool q_empty(const Station& st) const;

    /// One transmitted frame awaiting its fused fan-out event. `count`
    /// freezes the receiver set at transmission time, so a station
    /// attached mid-propagation does not hear it (matching the virtual
    /// path's per-receiver events).
    struct PendingBroadcast {
        int owner;
        std::size_t count;
        PooledPacket frame;
    };

    sim::Engine& engine_;
    SharedLanConfig config_;
    rng::DefaultEngine gen_;
    elements::ElementGraph graph_; ///< owns the station queue elements
    std::deque<Station> stations_; ///< deque: grows without relocating stations
    bool fast_;                    ///< config_.dispatch == DispatchMode::Fast
    /// Broadcasts in flight, delivered front-first: the propagation delay
    /// is constant, so fan-out events fire in schedule order.
    std::deque<PendingBroadcast> broadcasts_;

    // Channel state.
    bool transmitting_ = false;
    int current_owner_ = -1;
    sim::SimTime tx_start_ = sim::SimTime::zero();
    sim::SimTime channel_free_at_ = sim::SimTime::zero();
    sim::EventHandle tx_end_event_{};

    SharedLanStats stats_;
};

} // namespace routesync::net
