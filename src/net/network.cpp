#include "net/network.hpp"

#include <algorithm>
#include <stdexcept>
#include <queue>

namespace routesync::net {

Host& Network::add_host(const std::string& name) {
    const auto id = static_cast<NodeId>(nodes_.size());
    auto host = std::make_unique<Host>(engine_, id, name);
    Host& ref = *host;
    nodes_.push_back(std::move(host));
    adjacency_.emplace_back();
    return ref;
}

Router& Network::add_router(const std::string& name, bool blocking_cpu,
                            std::size_t pending_capacity) {
    const auto id = static_cast<NodeId>(nodes_.size());
    auto router =
        std::make_unique<Router>(engine_, id, name, blocking_cpu, pending_capacity);
    Router& ref = *router;
    routers_.push_back(&ref);
    nodes_.push_back(std::move(router));
    adjacency_.emplace_back();
    return ref;
}

void Network::connect(Node& a, Node& b, const LinkConfig& config) {
    // Each simplex link delivers into the far node; the receiving interface
    // index is the far node's interface *towards the sender*, assigned
    // below in the same order.
    auto to_b = std::make_unique<Link>(
        engine_, config,
        [&b, iface = b.iface_count()](PooledPacket p) { b.receive(std::move(p), iface); });
    auto to_a = std::make_unique<Link>(
        engine_, config,
        [&a, iface = a.iface_count()](PooledPacket p) { a.receive(std::move(p), iface); });

    const int iface_a = a.add_interface(to_b.get(), b.id());
    const int iface_b = b.add_interface(to_a.get(), a.id());
    adjacency_[static_cast<std::size_t>(a.id())].emplace_back(b.id(), iface_a);
    adjacency_[static_cast<std::size_t>(b.id())].emplace_back(a.id(), iface_b);

    duplexes_.push_back(Duplex{a.id(), b.id(), to_b.get(), to_a.get()});
    links_.push_back(std::move(to_b));
    links_.push_back(std::move(to_a));
}

void Network::set_link_state(NodeId a, NodeId b, bool up) {
    for (auto& duplex : duplexes_) {
        if ((duplex.a == a && duplex.b == b) || (duplex.a == b && duplex.b == a)) {
            duplex.a_to_b->set_up(up);
            duplex.b_to_a->set_up(up);
            return;
        }
    }
    throw std::invalid_argument{"Network::set_link_state: nodes not connected"};
}

void Network::install_static_routes() {
    const int n = node_count();
    for (Router* router : routers_) {
        // BFS from the router; first hop towards each destination becomes
        // the forwarding entry.
        std::vector<int> first_iface(static_cast<std::size_t>(n), -1);
        std::vector<bool> visited(static_cast<std::size_t>(n), false);
        std::queue<NodeId> frontier;
        visited[static_cast<std::size_t>(router->id())] = true;
        // Deterministic exploration: neighbours in ascending id order.
        auto neighbours = adjacency_[static_cast<std::size_t>(router->id())];
        std::sort(neighbours.begin(), neighbours.end());
        for (const auto& [nbr, iface] : neighbours) {
            if (!visited[static_cast<std::size_t>(nbr)]) {
                visited[static_cast<std::size_t>(nbr)] = true;
                first_iface[static_cast<std::size_t>(nbr)] = iface;
                frontier.push(nbr);
            }
        }
        while (!frontier.empty()) {
            const NodeId u = frontier.front();
            frontier.pop();
            auto next = adjacency_[static_cast<std::size_t>(u)];
            std::sort(next.begin(), next.end());
            for (const auto& [v, viface] : next) {
                (void)viface;
                if (!visited[static_cast<std::size_t>(v)]) {
                    visited[static_cast<std::size_t>(v)] = true;
                    first_iface[static_cast<std::size_t>(v)] =
                        first_iface[static_cast<std::size_t>(u)];
                    frontier.push(v);
                }
            }
        }
        for (NodeId dest = 0; dest < n; ++dest) {
            if (dest != router->id() && first_iface[static_cast<std::size_t>(dest)] >= 0) {
                router->set_route(dest, first_iface[static_cast<std::size_t>(dest)]);
            }
        }
    }
}

} // namespace routesync::net
