#include "core/periodic_messages.hpp"

#include <cassert>
#include <stdexcept>

#include "obs/profiler.hpp"
#include "obs/tracer.hpp"

namespace routesync::core {

PeriodicMessagesModel::PeriodicMessagesModel(sim::Engine& engine,
                                             const ModelParams& params,
                                             std::unique_ptr<TimerPolicy> policy)
    : engine_{engine}, params_{params}, policy_{std::move(policy)}, gen_{params.seed} {
    if (params_.n < 1) {
        throw std::invalid_argument{"PeriodicMessagesModel: need at least one node"};
    }
    if (params_.tc < sim::SimTime::zero()) {
        throw std::invalid_argument{"PeriodicMessagesModel: Tc must be >= 0"};
    }
    if (!policy_) {
        policy_ = std::make_unique<UniformJitter>(params_.tp, params_.tr);
    }
    if (!params_.initial_phases.empty() &&
        params_.initial_phases.size() != static_cast<std::size_t>(params_.n)) {
        throw std::invalid_argument{
            "PeriodicMessagesModel: initial_phases size must equal n"};
    }
    if (!params_.per_node_tp.empty() &&
        params_.per_node_tp.size() != static_cast<std::size_t>(params_.n)) {
        throw std::invalid_argument{
            "PeriodicMessagesModel: per_node_tp size must equal n"};
    }
    if (!params_.per_node_tc.empty() &&
        params_.per_node_tc.size() != static_cast<std::size_t>(params_.n)) {
        throw std::invalid_argument{
            "PeriodicMessagesModel: per_node_tc size must equal n"};
    }
    nodes_.resize(static_cast<std::size_t>(params_.n));

    for (int i = 0; i < params_.n; ++i) {
        sim::SimTime first;
        if (!params_.initial_phases.empty()) {
            first = sim::SimTime::seconds(
                params_.initial_phases[static_cast<std::size_t>(i)]);
        } else if (params_.start == StartCondition::Synchronized) {
            first = sim::SimTime::zero();
        } else {
            first = sim::SimTime::seconds(
                rng::uniform_real(gen_, 0.0, params_.tp.sec()));
        }
        schedule_timer(i, engine_.now() + first);
    }
}

sim::SimTime PeriodicMessagesModel::round_length() const noexcept {
    return policy_->mean_interval() + params_.tc;
}

sim::SimTime PeriodicMessagesModel::offset_of(sim::SimTime t) const noexcept {
    return t.mod(round_length());
}

NodeView PeriodicMessagesModel::node(int i) const {
    const auto& nd = nodes_.at(static_cast<std::size_t>(i));
    const bool busy = nd.busy_end > engine_.now();
    return NodeView{
        .next_expiry = nd.timer_pending ? nd.next_expiry : sim::SimTime::infinity(),
        .busy_until = nd.busy_end,
        .busy = busy,
        .transmissions = nd.transmissions,
    };
}

sim::SimTime PeriodicMessagesModel::draw_interval(int i) {
    if (!params_.per_node_tp.empty()) {
        const double tp_i = params_.per_node_tp[static_cast<std::size_t>(i)];
        return sim::SimTime::seconds(rng::uniform_real(
            gen_, tp_i - params_.tr.sec(), tp_i + params_.tr.sec()));
    }
    return policy_->next_interval(gen_);
}

void PeriodicMessagesModel::schedule_timer(int i, sim::SimTime at) {
    auto& nd = nodes_[static_cast<std::size_t>(i)];
    assert(!nd.timer_pending && "node already has a pending timer");
    nd.timer_event = engine_.schedule_at(at, [this, i] { timer_expired(i); });
    nd.timer_pending = true;
    nd.next_expiry = at;
    if (obs::Tracer* tr = engine_.tracer()) {
        tr->emit(obs::TraceEventType::TimerSet, engine_.now(), i, 0,
                 (at - engine_.now()).sec());
    }
}

void PeriodicMessagesModel::timer_expired(int i) {
    OBS_PROF_SCOPE("pm.timer_fire");
    nodes_[static_cast<std::size_t>(i)].timer_pending = false;
    if (obs::Tracer* tr = engine_.tracer()) {
        tr->emit(obs::TraceEventType::TimerFire, engine_.now(), i);
    }
    if (params_.reset_at_expiry) {
        // RFC 1058 alternative: the clock is unaffected by processing time;
        // re-arm right now rather than after the busy period. The "timer
        // set" instant is therefore the expiry itself.
        schedule_timer(i, engine_.now() + draw_interval(i));
        if (on_timer_set) {
            on_timer_set(i, engine_.now());
        }
    }
    begin_transmission(i);
}

void PeriodicMessagesModel::begin_transmission(int i) {
    OBS_PROF_SCOPE("pm.begin_transmission");
    const sim::SimTime now = engine_.now();
    auto& nd = nodes_[static_cast<std::size_t>(i)];

    ++nd.transmissions;
    ++tx_count_;
    if (on_transmit) {
        on_transmit(i, now);
    }
    if (obs::Tracer* tr = engine_.tracer()) {
        tr->emit(obs::TraceEventType::UpdateTx, now, i,
                 static_cast<std::int64_t>(nd.transmissions));
    }

    if (!params_.reset_at_expiry) {
        ++nd.pending_own;
    }
    extend_busy(i, now);
    if (!params_.reset_at_expiry && !nd.busy_check_scheduled) {
        nd.busy_check_scheduled = true;
        engine_.schedule_at(nd.busy_end, [this, i] { busy_check(i); });
    }

    if (params_.notification == Notification::Immediate) {
        // Zero transmission time (Section 4): every other node starts
        // processing this message immediately.
        for (int j = 0; j < n(); ++j) {
            if (j != i) {
                extend_busy(j, now);
            }
        }
    } else {
        // Ablation: the message lands once the sender's Tc preparation is
        // done.
        engine_.schedule_after(params_.tc, [this, i] {
            const sim::SimTime at = engine_.now();
            for (int j = 0; j < n(); ++j) {
                if (j != i) {
                    extend_busy(j, at);
                }
            }
        });
    }
}

void PeriodicMessagesModel::extend_busy(int i, sim::SimTime t) {
    auto& nd = nodes_[static_cast<std::size_t>(i)];
    const sim::SimTime tc =
        params_.per_node_tc.empty()
            ? params_.tc
            : sim::SimTime::seconds(params_.per_node_tc[static_cast<std::size_t>(i)]);
    if (nd.busy_end > t) {
        nd.busy_end += tc; // busy: processing queues behind current work
    } else {
        nd.busy_end = t + tc; // idle: fresh busy period
    }
}

void PeriodicMessagesModel::busy_check(int i) {
    auto& nd = nodes_[static_cast<std::size_t>(i)];
    const sim::SimTime now = engine_.now();
    if (nd.busy_end > now) {
        // The busy period was extended after this check was scheduled;
        // re-arm at the new end (lazy revalidation).
        engine_.schedule_at(nd.busy_end, [this, i] { busy_check(i); });
        return;
    }
    nd.busy_check_scheduled = false;
    if (nd.pending_own > 0) {
        // Step 3: the busy period that contained our own transmission is
        // over; set the timer now. Several own transmissions inside one
        // busy period (possible only with triggered updates) still re-arm
        // a single timer.
        nd.pending_own = 0;
        schedule_timer(i, now + draw_interval(i));
        if (on_timer_set) {
            on_timer_set(i, now);
        }
    }
}

void PeriodicMessagesModel::trigger_update(std::span<const int> to_fire) {
    for (const int i : to_fire) {
        auto& nd = nodes_.at(static_cast<std::size_t>(i));
        if (!params_.reset_at_expiry && nd.timer_pending) {
            // Step 4: go to step 1 without waiting for the timer; the timer
            // is re-armed when the busy period completes. Under
            // reset-at-expiry semantics triggered updates leave the clock
            // alone (routers "don't reset their timers after triggered
            // updates").
            engine_.cancel(nd.timer_event);
            nd.timer_pending = false;
            if (obs::Tracer* tr = engine_.tracer()) {
                tr->emit(obs::TraceEventType::TimerReset, engine_.now(), i);
            }
        }
        begin_transmission(i); // re-arms the busy check as needed
    }
}

void PeriodicMessagesModel::trigger_update_all() {
    std::vector<int> all(static_cast<std::size_t>(n()));
    for (int i = 0; i < n(); ++i) {
        all[static_cast<std::size_t>(i)] = i;
    }
    trigger_update(all);
}

} // namespace routesync::core
