// Trace replay: recompute the cluster-size series from a trace alone.
//
// A traced Periodic Messages run records two independent views of
// synchronization: the raw `timer_set` stream (every timer re-arm, with
// its node and time) and the derived `cluster_change` stream (the first
// time each cluster size was reached, emitted by the live ClusterTracker).
// `routesync trace replay-check` feeds the timer_set stream through a
// fresh ClusterTracker and diffs the recomputed series against the
// recorded one — an end-to-end consistency check of the tracer, the
// serialization, the reader, and the tracker itself.
//
// One wrinkle: the model constructor arms each node's initial timer
// before run_experiment wires model.on_timer_set to the tracker, so the
// trace holds one leading timer_set per node the live tracker never saw.
// The replay skips each node's first timer_set to reproduce the exact
// stream the live tracker consumed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cluster_tracker.hpp"
#include "obs/trace_event.hpp"
#include "sim/time.hpp"

namespace routesync::core {

struct ReplayResult {
    /// Cluster-size series recomputed from the trace's timer_set stream.
    std::vector<ClusterEvent> replayed;
    /// The cluster_change series recorded in the trace (a = size).
    std::vector<ClusterEvent> recorded;
    int n = 0; ///< node count inferred from the timer_set stream
    std::uint64_t timer_sets_fed = 0;
    std::uint64_t initial_skipped = 0; ///< leading per-node timer_sets
};

/// Replays `events`' timer_set stream through a fresh ClusterTracker with
/// the given grouping tolerance (the live default is 1 µs). Throws
/// std::runtime_error when the trace holds no timer_set events.
[[nodiscard]] ReplayResult
replay_cluster_series(const std::vector<obs::TraceEvent>& events,
                      sim::SimTime tolerance = sim::SimTime::micros(1.0));

/// One "time size" line per event, %.17g times — the exchange format of
/// fig04's --clusters-out and replay-check's --expect.
[[nodiscard]] std::string
format_cluster_series(const std::vector<ClusterEvent>& series);

/// Empty string when the two series match exactly; otherwise a
/// description of the first divergence.
[[nodiscard]] std::string diff_cluster_series(const std::vector<ClusterEvent>& got,
                                              const std::vector<ClusterEvent>& want);

} // namespace routesync::core
