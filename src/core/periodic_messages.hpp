// The Periodic Messages model (paper Section 3), as an exact event-driven
// simulation.
//
// N routers each run the four-step loop of the paper:
//   1. prepare and send a routing message (takes Tc seconds);
//   2. process any routing message that arrives during that busy period
//      (each one extends the busy period by Tc);
//   3. only after finishing 1 and 2, reset the timer to a value drawn from
//      [Tp - Tr, Tp + Tr];
//   4. a message arriving while idle is processed immediately (Tc busy
//      time) without touching the timer — unless it is a *triggered*
//      update, which sends the router back to step 1.
//
// Step 3 is the weak coupling: a router whose timer expires inside another
// router's update window finishes its busy period at the *same instant* as
// that router, so the two set their timers together — a cluster. Clusters
// have longer effective periods (Tp + i*Tc - Tr*(i-1)/(i+1) on average)
// than lone routers, sweep forward through phase space, absorb the lone
// routers they collide with, and — if Tr is small — grow until the whole
// network transmits in lockstep.
//
// Modeling assumptions carried over verbatim from Section 4:
//   * transmission time is zero: all other nodes start processing a
//     message at the instant the sender's timer expires;
//   * every node hears every message (single broadcast network);
//   * processing any message costs exactly Tc.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/timer_policy.hpp"
#include "rng/rng.hpp"
#include "sim/sim.hpp"

namespace routesync::core {

/// When the other routers learn that a router is sending an update.
enum class Notification {
    /// The paper's Section 4 assumption: all other nodes start processing
    /// the instant the sender's timer expires ("a network in which a
    /// router's routing message consists of several packets transmitted
    /// over a Tc-second period").
    Immediate,
    /// Ablation: the message reaches the others only after the sender's
    /// own Tc preparation completes (a single packet sent at the end).
    /// This weakens the coupling — receivers' busy periods no longer end
    /// at the same instant as the sender's — and the synchronization
    /// behaviour changes qualitatively (see bench/ablation_notification).
    AfterPreparation,
};

/// How the first round of timer expirations is laid out.
enum class StartCondition {
    /// First expiry of each node uniform on [0, Tp) — "initially
    /// unsynchronized" (paper Figures 4-7).
    Unsynchronized,
    /// All first expirations at t = 0 — "initially synchronized", the state
    /// triggered updates or a simultaneous restart produce (Figure 8).
    Synchronized,
};

struct ModelParams {
    /// Number of routing nodes on the network (paper: N = 20).
    int n = 20;
    /// Constant component of the periodic timer (paper: 121 s).
    sim::SimTime tp = sim::SimTime::seconds(121.0);
    /// Magnitude of the random component: timer ~ U[Tp-Tr, Tp+Tr]
    /// (paper baseline: 0.11 s... varied throughout).
    sim::SimTime tr = sim::SimTime::seconds(0.11);
    /// Seconds of computation to process one incoming or outgoing routing
    /// message (paper: 0.11 s = 0.1 s compute + 0.01 s transmit).
    sim::SimTime tc = sim::SimTime::seconds(0.11);
    StartCondition start = StartCondition::Unsynchronized;
    /// If non-empty (size must equal n), overrides `start`: node i's first
    /// timer expires at initial_phases[i] seconds. Lets tests and the
    /// Figure 5 close-up place routers deterministically.
    std::vector<double> initial_phases;
    /// If non-empty (size must equal n), node i draws its timer from
    /// [per_node_tp[i] - Tr, per_node_tp[i] + Tr] instead of the shared
    /// Tp (a custom policy, if any, is ignored). This implements the
    /// Section 6 proposal the paper leaves open — "set the routing update
    /// interval at each router to a different random value. The
    /// consequences of having a slightly-different fixed period for each
    /// router would require further investigation" — investigated in
    /// bench/ext_distinct_periods.
    std::vector<double> per_node_tp;
    /// If non-empty (size must equal n), node i spends per_node_tc[i]
    /// seconds per message instead of the shared Tc (its own preparation
    /// and every message it receives). Models mixed hardware: slow and
    /// fast route processors on one network. See
    /// bench/ext_heterogeneous_cpu for the emergent per-class clustering.
    std::vector<double> per_node_tc;
    std::uint64_t seed = 1;
    /// RFC 1058 alternative: reset the timer at the moment it expires
    /// (clock unaffected by processing time) instead of after the busy
    /// period. Disables the synchronization mechanism of the model.
    bool reset_at_expiry = false;
    /// See Notification; the paper's model uses Immediate.
    Notification notification = Notification::Immediate;
};

/// One router's externally visible state.
struct NodeView {
    sim::SimTime next_expiry;  ///< pending timer expiration (infinity if none)
    sim::SimTime busy_until;   ///< end of current busy period (past => idle)
    bool busy;
    std::uint64_t transmissions;
};

class PeriodicMessagesModel {
public:
    /// Constructs the model on an externally owned engine. A custom timer
    /// policy may replace the U[Tp-Tr, Tp+Tr] default (`params.tr` is then
    /// ignored). Initial expirations are scheduled immediately.
    PeriodicMessagesModel(sim::Engine& engine, const ModelParams& params,
                          std::unique_ptr<TimerPolicy> policy = nullptr);

    PeriodicMessagesModel(const PeriodicMessagesModel&) = delete;
    PeriodicMessagesModel& operator=(const PeriodicMessagesModel&) = delete;

    /// Fires when a node's timer expires and it begins transmitting.
    std::function<void(int node, sim::SimTime t)> on_transmit;
    /// Fires when a node completes its busy period and re-arms its timer —
    /// the "timer set" instant that defines cluster membership.
    std::function<void(int node, sim::SimTime t)> on_timer_set;

    /// Injects a triggered update at the current simulation time: each
    /// listed node immediately goes to step 1 (its pending timer is
    /// cancelled and re-armed after the busy period completes). Models the
    /// wave of triggered updates a topology change produces.
    void trigger_update(std::span<const int> nodes);
    /// Triggered update on every node.
    void trigger_update_all();

    [[nodiscard]] int n() const noexcept { return static_cast<int>(nodes_.size()); }
    [[nodiscard]] const ModelParams& params() const noexcept { return params_; }
    /// Mean spacing between a lone router's messages, Tp + Tc — the round
    /// length used for phase offsets (paper Figure 4's y-axis modulus).
    [[nodiscard]] sim::SimTime round_length() const noexcept;
    [[nodiscard]] NodeView node(int i) const;
    [[nodiscard]] std::uint64_t total_transmissions() const noexcept { return tx_count_; }

    /// Phase offset of time `t` within the round, t mod (Tp + Tc).
    [[nodiscard]] sim::SimTime offset_of(sim::SimTime t) const noexcept;

private:
    struct Node {
        sim::SimTime busy_end = -sim::SimTime::seconds(1.0); // in the past => idle
        sim::SimTime next_expiry = sim::SimTime::infinity();
        int pending_own = 0;        // own transmissions awaiting timer re-arm
        bool busy_check_scheduled = false;
        sim::EventHandle timer_event{};
        bool timer_pending = false;
        std::uint64_t transmissions = 0;
    };

    /// Node i's next timer interval (per-node period if configured,
    /// otherwise the policy).
    [[nodiscard]] sim::SimTime draw_interval(int i);
    void schedule_timer(int i, sim::SimTime at);
    void timer_expired(int i);
    void begin_transmission(int i); // steps 1-2 entry, shared with triggers
    /// Starts or extends node i's busy period by Tc at time `t`.
    void extend_busy(int i, sim::SimTime t);
    void busy_check(int i);

    sim::Engine& engine_;
    ModelParams params_;
    std::unique_ptr<TimerPolicy> policy_;
    rng::DefaultEngine gen_;
    std::vector<Node> nodes_;
    std::uint64_t tx_count_ = 0;
};

} // namespace routesync::core
