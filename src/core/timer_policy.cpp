#include "core/timer_policy.hpp"

#include <sstream>
#include <stdexcept>

namespace routesync::core {

UniformJitter::UniformJitter(sim::SimTime tp, sim::SimTime tr) : tp_{tp}, tr_{tr} {
    if (tr < sim::SimTime::zero() || tr > tp) {
        throw std::invalid_argument{"UniformJitter: need 0 <= Tr <= Tp"};
    }
    if (tp <= sim::SimTime::zero()) {
        throw std::invalid_argument{"UniformJitter: Tp must be positive"};
    }
}

sim::SimTime UniformJitter::next_interval(rng::DefaultEngine& gen) const {
    return sim::SimTime::seconds(
        rng::uniform_real(gen, (tp_ - tr_).sec(), (tp_ + tr_).sec()));
}

std::string UniformJitter::describe() const {
    std::ostringstream out;
    out << "uniform[" << (tp_ - tr_).sec() << ", " << (tp_ + tr_).sec() << "]s";
    return out.str();
}

HalfPeriodJitter::HalfPeriodJitter(sim::SimTime tp) : tp_{tp} {
    if (tp <= sim::SimTime::zero()) {
        throw std::invalid_argument{"HalfPeriodJitter: Tp must be positive"};
    }
}

sim::SimTime HalfPeriodJitter::next_interval(rng::DefaultEngine& gen) const {
    return sim::SimTime::seconds(rng::uniform_real(gen, 0.5 * tp_.sec(), 1.5 * tp_.sec()));
}

std::string HalfPeriodJitter::describe() const {
    std::ostringstream out;
    out << "uniform[" << 0.5 * tp_.sec() << ", " << 1.5 * tp_.sec() << "]s (half-period)";
    return out.str();
}

FixedInterval::FixedInterval(sim::SimTime tp) : tp_{tp} {
    if (tp <= sim::SimTime::zero()) {
        throw std::invalid_argument{"FixedInterval: Tp must be positive"};
    }
}

sim::SimTime FixedInterval::next_interval(rng::DefaultEngine& /*gen*/) const {
    return tp_;
}

std::string FixedInterval::describe() const {
    std::ostringstream out;
    out << "fixed " << tp_.sec() << "s";
    return out.str();
}

} // namespace routesync::core
