#include "core/pm_kernel.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/cluster_tracker.hpp"
#include "obs/profiler.hpp"
#include "obs/tracer.hpp"

namespace routesync::core {

namespace {

constexpr std::size_t kBuckets = 1024; // power of two

/// pending_state_ layout: bit 31 = a kPmBusyCheck event is queued for the
/// node; bits 0..30 = own transmissions awaiting the busy-period re-arm.
constexpr std::uint32_t kBusyCheckQueued = 0x80000000U;

/// Sizing estimate for the calendar horizon: the farthest ahead of `now`
/// the model ever schedules is one timer interval (plus jitter) or a
/// busy-period end, which grows by ~n*Tc per overlapping transmission.
/// 2x headroom keeps HalfPeriodJitter's 1.5*Tp draws in-window; anything
/// beyond (deep trigger cascades) takes the overflow path, which is
/// correct, just not O(1).
double horizon_hint(const ModelParams& p, const TimerPolicy& policy) {
    double mean = policy.mean_interval().sec();
    if (!p.per_node_tp.empty()) {
        mean = *std::max_element(p.per_node_tp.begin(), p.per_node_tp.end());
    }
    double tc = p.tc.sec();
    if (!p.per_node_tc.empty()) {
        tc = std::max(tc, *std::max_element(p.per_node_tc.begin(),
                                            p.per_node_tc.end()));
    }
    const double h =
        2.0 * (mean + p.tr.sec() + (static_cast<double>(p.n) + 1.0) * tc);
    return h > 1e-9 ? h : 1e-9;
}

} // namespace

// ---------------------------------------------------------------------------
// PmCalendarQueue (cold paths; the push/peek/pop trio is inline in the
// header)

PmCalendarQueue::PmCalendarQueue(double horizon_hint)
    : width_((horizon_hint > 1e-9 ? horizon_hint : 1e-9) /
             static_cast<double>(kBuckets)),
      inv_width_(1.0 / width_),
      bucket_count_(kBuckets),
      bucket_mask_(kBuckets - 1),
      buckets_(kBuckets),
      occupied_(kBuckets / 64, 0) {}

void PmCalendarQueue::flush_overflow() {
    const std::int64_t window_end = day_ + static_cast<std::int64_t>(bucket_count_);
    std::size_t keep = 0;
    std::int64_t new_min = std::numeric_limits<std::int64_t>::max();
    for (const PmEvent& e : overflow_) {
        const std::int64_t d = day_of(e.time);
        if (d < window_end) {
            const std::size_t b = static_cast<std::size_t>(d) & bucket_mask_;
            if (cursor_sorted_ && b == cursor_b_) {
                // Folding into the already-sorted cursor day (only
                // possible when the cursor jumped straight to the
                // overflow's min day): spill, like any post-sort push.
                spill_.push_back(e);
                std::push_heap(spill_.begin(), spill_.end(), after);
            } else {
                buckets_[b].push_back(e);
                occupied_[b >> 6] |= std::uint64_t{1} << (b & 63U);
            }
        } else {
            new_min = std::min(new_min, d);
            overflow_[keep++] = e;
        }
    }
    overflow_.resize(keep);
    overflow_min_day_ = new_min;
}

void PmCalendarQueue::advance_to_next_bucket() {
    assert(spill_.empty() && "spill events belong to the current day");
    // Circular bitmap scan for the next occupied bucket strictly after the
    // current day's. Within the window each bucket holds events of exactly
    // one day, and day -> bucket is an order-preserving circular map, so
    // the first hit is the minimum day.
    const std::size_t b = cursor_b_;
    std::size_t pos = (b + 1) & bucket_mask_;
    std::size_t remaining = bucket_mask_; // every bucket except b itself
    while (remaining > 0) {
        const std::size_t off = pos & 63U;
        const std::uint64_t word = occupied_[pos >> 6] >> off;
        const std::size_t span = std::min<std::size_t>(64 - off, remaining);
        if (word != 0) {
            const auto tz = static_cast<std::size_t>(std::countr_zero(word));
            if (tz < span) {
                const std::size_t hit = pos + tz; // within the word, no wrap
                day_ += static_cast<std::int64_t>((hit - b) & bucket_mask_);
                cursor_b_ = static_cast<std::size_t>(day_) & bucket_mask_;
                cursor_sorted_ = false;
                cursor_pos_ = 0;
                return;
            }
        }
        pos = (pos + span) & bucket_mask_;
        remaining -= span;
    }
    // Every bucket is empty; only overflow remains (caller guarantees
    // live_ > 0). Jump straight to the earliest overflow day and fold it
    // in — peek_min's outer loop rescans.
    assert(!overflow_.empty());
    day_ = overflow_min_day_;
    cursor_b_ = static_cast<std::size_t>(day_) & bucket_mask_;
    cursor_sorted_ = false;
    cursor_pos_ = 0;
    flush_overflow();
}

std::size_t PmCalendarQueue::memory_bytes() const noexcept {
    std::size_t bytes = buckets_.capacity() * sizeof(std::vector<PmEvent>) +
                        occupied_.capacity() * sizeof(std::uint64_t) +
                        overflow_.capacity() * sizeof(PmEvent) +
                        spill_.capacity() * sizeof(PmEvent);
    for (const std::vector<PmEvent>& b : buckets_) {
        bytes += b.capacity() * sizeof(PmEvent);
    }
    return bytes;
}

// ---------------------------------------------------------------------------
// PmKernel

PmKernel::PmKernel(const ModelParams& params,
                   std::unique_ptr<TimerPolicy> policy, obs::Tracer* tracer)
    : params_{params},
      policy_{std::move(policy)},
      gen_{params.seed},
      tracer_{tracer},
      queue_{0.0} {
    // Same validation (and messages) as PeriodicMessagesModel — callers
    // switch backends without seeing a different contract.
    if (params_.n < 1) {
        throw std::invalid_argument{"PeriodicMessagesModel: need at least one node"};
    }
    if (params_.tc < sim::SimTime::zero()) {
        throw std::invalid_argument{"PeriodicMessagesModel: Tc must be >= 0"};
    }
    if (!policy_) {
        policy_ = std::make_unique<UniformJitter>(params_.tp, params_.tr);
    }
    if (!params_.initial_phases.empty() &&
        params_.initial_phases.size() != static_cast<std::size_t>(params_.n)) {
        throw std::invalid_argument{
            "PeriodicMessagesModel: initial_phases size must equal n"};
    }
    if (!params_.per_node_tp.empty() &&
        params_.per_node_tp.size() != static_cast<std::size_t>(params_.n)) {
        throw std::invalid_argument{
            "PeriodicMessagesModel: per_node_tp size must equal n"};
    }
    if (!params_.per_node_tc.empty() &&
        params_.per_node_tc.size() != static_cast<std::size_t>(params_.n)) {
        throw std::invalid_argument{
            "PeriodicMessagesModel: per_node_tc size must equal n"};
    }
    queue_ = PmCalendarQueue{horizon_hint(params_, *policy_)};

    // One exact-size allocation per lane (assign sizes the vector in a
    // single reserve-equivalent step — nothing grows later).
    const auto n = static_cast<std::size_t>(params_.n);
    next_expiry_.assign(n, sim::SimTime::infinity());
    transmissions_.assign(n, 0);
    timer_gen_.assign(n, 0);
    shared_busy_ = params_.notification == Notification::Immediate &&
                   params_.per_node_tc.empty();
    if (!shared_busy_) {
        busy_end_.assign(n, -sim::SimTime::seconds(1.0));
    }
    if (!params_.reset_at_expiry) {
        pending_state_.assign(n, 0);
    }

    for (int i = 0; i < params_.n; ++i) {
        sim::SimTime first;
        if (!params_.initial_phases.empty()) {
            first = sim::SimTime::seconds(
                params_.initial_phases[static_cast<std::size_t>(i)]);
        } else if (params_.start == StartCondition::Synchronized) {
            first = sim::SimTime::zero();
        } else {
            first = sim::SimTime::seconds(
                rng::uniform_real(gen_, 0.0, params_.tp.sec()));
        }
        schedule_timer(i, now_ + first);
    }
}

sim::SimTime PmKernel::round_length() const noexcept {
    return policy_->mean_interval() + params_.tc;
}

sim::SimTime PmKernel::offset_of(sim::SimTime t) const noexcept {
    return t.mod(round_length());
}

NodeView PmKernel::node(int i) const {
    if (i < 0 || i >= params_.n) {
        throw std::out_of_range{"PmKernel::node: index out of range"};
    }
    const auto idx = static_cast<std::size_t>(i);
    const sim::SimTime be = busy_end(i);
    return NodeView{
        .next_expiry = (timer_gen_[idx] & 1U) != 0 ? next_expiry_[idx]
                                                   : sim::SimTime::infinity(),
        .busy_until = be,
        .busy = be > now_,
        .transmissions = transmissions_[idx],
    };
}

std::size_t PmKernel::state_bytes() const noexcept {
    return next_expiry_.capacity() * sizeof(sim::SimTime) +
           busy_end_.capacity() * sizeof(sim::SimTime) +
           transmissions_.capacity() * sizeof(std::uint64_t) +
           timer_gen_.capacity() * sizeof(std::uint32_t) +
           pending_state_.capacity() * sizeof(std::uint32_t) +
           trigger_scratch_.capacity() * sizeof(int) +
           queue_.memory_bytes();
}

sim::SimTime PmKernel::draw_interval(int i) {
    if (!params_.per_node_tp.empty()) {
        const double tp_i = params_.per_node_tp[static_cast<std::size_t>(i)];
        return sim::SimTime::seconds(rng::uniform_real(
            gen_, tp_i - params_.tr.sec(), tp_i + params_.tr.sec()));
    }
    return policy_->next_interval(gen_);
}

void PmKernel::push_event(sim::SimTime at, std::uint32_t kind,
                          std::uint32_t node) {
    queue_.push(at.sec(), next_seq_++, kind, node);
}

void PmKernel::schedule_timer(int i, sim::SimTime at) {
    const auto idx = static_cast<std::size_t>(i);
    assert((timer_gen_[idx] & 1U) == 0 && "node already has a pending timer");
    const std::uint32_t gen = ++timer_gen_[idx]; // odd = pending
    push_event(at, ((gen & kPmGenMask) << kPmKindBits) | kPmTimer,
               static_cast<std::uint32_t>(i));
    next_expiry_[idx] = at;
    if (tracer_ != nullptr) {
        tracer_->emit(obs::TraceEventType::TimerSet, now_, i, 0,
                      (at - now_).sec());
    }
}

void PmKernel::schedule_trigger_all(sim::SimTime t) {
    if (t < now_) {
        throw std::logic_error{"Engine::schedule_at: time is in the past"};
    }
    push_event(t, kPmTrigger, 0);
}

void PmKernel::schedule_hook(sim::SimTime t, std::function<void()> fn) {
    if (t < now_) {
        throw std::logic_error{"Engine::schedule_at: time is in the past"};
    }
    std::uint32_t slot;
    if (!free_hooks_.empty()) {
        slot = free_hooks_.back();
        free_hooks_.pop_back();
        hooks_[slot] = std::move(fn);
    } else {
        slot = static_cast<std::uint32_t>(hooks_.size());
        hooks_.push_back(std::move(fn));
    }
    push_event(t, kPmHook, slot);
}

void PmKernel::trigger_update(std::span<const int> to_fire) {
    for (const int i : to_fire) {
        if (i < 0 || i >= params_.n) {
            throw std::out_of_range{"PmKernel::trigger_update: node out of range"};
        }
        const auto idx = static_cast<std::size_t>(i);
        if (!params_.reset_at_expiry && (timer_gen_[idx] & 1U) != 0) {
            // Cancel: bumping the generation (odd -> even) makes the
            // queued event stale; the run loop discards it on surfacing,
            // exactly like an EventQueue tombstone (never executed, never
            // counted).
            ++timer_gen_[idx];
            if (tracer_ != nullptr) {
                tracer_->emit(obs::TraceEventType::TimerReset, now_, i);
            }
        }
        begin_transmission(i);
    }
}

void PmKernel::trigger_update_all() {
    if (trigger_scratch_.size() != static_cast<std::size_t>(params_.n)) {
        trigger_scratch_.resize(static_cast<std::size_t>(params_.n));
        std::iota(trigger_scratch_.begin(), trigger_scratch_.end(), 0);
    }
    trigger_update(trigger_scratch_);
}

void PmKernel::extend_busy(int i, sim::SimTime t) {
    if (shared_busy_) {
        if (shared_busy_end_ > t) {
            shared_busy_end_ += params_.tc;
        } else {
            shared_busy_end_ = t + params_.tc;
        }
        return;
    }
    const auto idx = static_cast<std::size_t>(i);
    const sim::SimTime tc =
        params_.per_node_tc.empty()
            ? params_.tc
            : sim::SimTime::seconds(params_.per_node_tc[idx]);
    if (busy_end_[idx] > t) {
        busy_end_[idx] += tc;
    } else {
        busy_end_[idx] = t + tc;
    }
}

void PmKernel::timer_expired(int i) {
    OBS_PROF_SCOPE("pm.timer_fire");
    ++timer_gen_[static_cast<std::size_t>(i)]; // odd -> even: no pending timer
    if (tracer_ != nullptr) {
        tracer_->emit(obs::TraceEventType::TimerFire, now_, i);
    }
    if (params_.reset_at_expiry) {
        schedule_timer(i, now_ + draw_interval(i));
        if (tracker_sink != nullptr) {
            tracker_sink->on_timer_set(i, now_);
        } else if (on_timer_set) {
            on_timer_set(i, now_);
        }
    }
    begin_transmission(i);
}

void PmKernel::begin_transmission(int i) {
    OBS_PROF_SCOPE("pm.begin_transmission");
    const sim::SimTime now = now_;
    const auto idx = static_cast<std::size_t>(i);

    ++transmissions_[idx];
    ++tx_count_;
    if (on_transmit) {
        on_transmit(i, now);
    }
    if (tracer_ != nullptr) {
        tracer_->emit(obs::TraceEventType::UpdateTx, now, i,
                      static_cast<std::int64_t>(transmissions_[idx]));
    }

    if (!params_.reset_at_expiry) {
        ++pending_state_[idx]; // own-transmission count (low bits)
    }
    extend_busy(i, now);
    if (!params_.reset_at_expiry &&
        (pending_state_[idx] & kBusyCheckQueued) == 0) {
        pending_state_[idx] |= kBusyCheckQueued;
        push_event(busy_end(i), kPmBusyCheck, static_cast<std::uint32_t>(i));
    }

    if (params_.notification == Notification::Immediate) {
        // Shared-busy mode: the broadcast is already done. In the engine
        // model every node applies the same extend rule to its own copy
        // of the same prior value at the same instant, so all n copies
        // land on one new value — which the sender's extend_busy above
        // just computed on the shared scalar. O(1) per transmission
        // instead of O(n), bit-identical by induction on "all copies
        // equal".
        if (!shared_busy_) {
            for (int j = 0; j < params_.n; ++j) {
                if (j != i) {
                    extend_busy(j, now);
                }
            }
        }
    } else {
        push_event(now + params_.tc, kPmDeliver, static_cast<std::uint32_t>(i));
    }
}

void PmKernel::deliver_from(int i) {
    const sim::SimTime at = now_;
    for (int j = 0; j < params_.n; ++j) {
        if (j != i) {
            extend_busy(j, at);
        }
    }
}

void PmKernel::busy_check(int i) {
    const auto idx = static_cast<std::size_t>(i);
    const sim::SimTime now = now_;
    const sim::SimTime be = busy_end(i);
    if (be > now) {
        // Extended after this check was scheduled; re-arm at the new end
        // (lazy revalidation, queued flag stays set).
        push_event(be, kPmBusyCheck, static_cast<std::uint32_t>(i));
        return;
    }
    std::uint32_t& ps = pending_state_[idx];
    ps &= ~kBusyCheckQueued;
    if (ps != 0) { // own transmissions occurred: re-arm
        ps = 0;
        schedule_timer(i, now + draw_interval(i));
        if (tracker_sink != nullptr) {
            tracker_sink->on_timer_set(i, now);
        } else if (on_timer_set) {
            on_timer_set(i, now);
        }
    }
}

void PmKernel::fire_trigger_all() { trigger_update_all(); }

void PmKernel::dispatch(const PmEvent& e) {
    switch (e.kind & kPmKindMask) {
    case kPmTimer:
        timer_expired(static_cast<int>(e.node));
        break;
    case kPmBusyCheck:
        busy_check(static_cast<int>(e.node));
        break;
    case kPmDeliver:
        deliver_from(static_cast<int>(e.node));
        break;
    case kPmTrigger:
        fire_trigger_all();
        break;
    case kPmHook: {
        auto fn = std::move(hooks_[static_cast<std::size_t>(e.node)]);
        free_hooks_.push_back(e.node);
        fn();
        break;
    }
    default:
        assert(false && "unknown PmEvent kind");
    }
}

} // namespace routesync::core
