#include "core/experiment.hpp"

#include <optional>
#include <utility>

#include "obs/resource_sampler.hpp"
#include "obs/run_context.hpp"
#include "obs/tracer.hpp"

namespace routesync::core {

ExperimentResult run_experiment(const ExperimentConfig& config) {
    // Per-trial profiler: thread-locals don't propagate to worker
    // threads, so each trial installs its own and the snapshot is merged
    // back in submission order (like metrics). No-op when profiling is
    // off process-wide.
    obs::Profiler trial_profiler;
    std::optional<obs::ScopedProfilerInstall> prof_install;
    if (obs::Profiler::process_enabled()) {
        prof_install.emplace(trial_profiler);
    }

    sim::Engine engine;
    if (config.obs != nullptr) {
        // Attach before the model exists so the initial timer schedule is
        // traced too.
        config.obs->attach(engine);
    }
    auto policy = config.make_policy ? config.make_policy() : nullptr;
    PeriodicMessagesModel model{engine, config.params, std::move(policy)};

    ClusterTracker tracker{config.params.n, model.round_length()};
    tracker.record_events(config.record_cluster_events);
    tracker.record_rounds(config.record_rounds);

    ExperimentResult result;
    result.round_length_sec = model.round_length().sec();

    if (config.transmit_stride > 0) {
        model.on_transmit = [&, stride = config.transmit_stride,
                             count = std::uint64_t{0}](int node,
                                                       sim::SimTime t) mutable {
            if (count++ % static_cast<std::uint64_t>(stride) == 0) {
                result.transmits.push_back(
                    TransmitRecord{node, t.sec(), model.offset_of(t).sec()});
            }
        };
    }

    model.on_timer_set = [&tracker](int node, sim::SimTime t) {
        tracker.on_timer_set(node, t);
    };

    if (config.stop_on_full_sync) {
        tracker.on_full_sync = [&engine](sim::SimTime) { engine.stop(); };
    }
    if (config.stop_on_cluster_size > 0) {
        tracker.on_size_first_reached = [&engine, limit = config.stop_on_cluster_size](
                                            int size, sim::SimTime) {
            if (size >= limit) {
                engine.stop();
            }
        };
    }
    if (config.stop_on_breakup_threshold > 0) {
        tracker.on_round_closed = [&engine,
                                   limit = config.stop_on_breakup_threshold](
                                      const RoundLargest& r) {
            if (r.largest <= limit) {
                engine.stop();
            }
        };
    }

    if (obs::Tracer* tr = engine.tracer()) {
        // Trace cluster growth: the first time any cluster reaches a new
        // size. Chained in front of the stop condition (if one is set).
        auto prev = std::move(tracker.on_size_first_reached);
        tracker.on_size_first_reached = [tr, prev = std::move(prev)](
                                            int size, sim::SimTime t) {
            tr->emit(obs::TraceEventType::ClusterChange, t, -1, size);
            if (prev) {
                prev(size, t);
            }
        };
    }

    if (config.trigger_all_at.has_value()) {
        engine.schedule_at(*config.trigger_all_at,
                           [&model] { model.trigger_update_all(); });
    }

    std::optional<obs::ResourceSampler> sampler;
    if (config.sample_every > 0.0 && config.obs != nullptr) {
        sampler.emplace(engine, *config.obs,
                        sim::SimTime::seconds(config.sample_every));
        sampler->watch_engine_queue();
        sampler->start();
    }

    {
        OBS_PROF_SCOPE("experiment.run");
        engine.run_until(config.max_time);
        tracker.finish();
    }

    if (const auto t = tracker.full_sync_time()) {
        result.full_sync_time_sec = t->sec();
    }
    if (config.stop_on_breakup_threshold > 0) {
        if (const auto t =
                tracker.first_round_largest_at_most(config.stop_on_breakup_threshold)) {
            result.breakup_time_sec = t->sec();
        }
    }

    const int n = config.params.n;
    result.first_hit_up.resize(static_cast<std::size_t>(n) + 1);
    result.first_hit_down.resize(static_cast<std::size_t>(n) + 1);
    for (int s = 1; s <= n; ++s) {
        if (const auto t = tracker.first_time_size_at_least(s)) {
            result.first_hit_up[static_cast<std::size_t>(s)] = t->sec();
        }
        if (const auto t = tracker.first_round_largest_at_most(s)) {
            result.first_hit_down[static_cast<std::size_t>(s)] = t->sec();
        }
    }

    result.cluster_events = tracker.events();
    result.rounds = tracker.rounds();
    result.rounds_closed = tracker.rounds_closed();
    result.rounds_unsynchronized = tracker.rounds_with_largest_at_most(1);
    result.total_transmissions = model.total_transmissions();
    result.events_processed = engine.events_processed();
    result.end_time_sec = engine.now().sec();

    obs::MetricsRegistry reg;
    reg.add("experiment.transmissions", result.total_transmissions);
    reg.add("experiment.rounds_closed", result.rounds_closed);
    reg.add("experiment.rounds_unsynchronized", result.rounds_unsynchronized);
    reg.add("engine.events_processed", result.events_processed);
    reg.set_gauge("experiment.end_time_sec", result.end_time_sec);
    if (result.full_sync_time_sec.has_value()) {
        reg.add("experiment.full_sync_runs", 1);
        reg.observe("experiment.full_sync_time_sec", *result.full_sync_time_sec);
    }
    if (result.breakup_time_sec.has_value()) {
        reg.observe("experiment.breakup_time_sec", *result.breakup_time_sec);
    }
    result.metrics = reg.snapshot();
    if (config.obs != nullptr) {
        config.obs->merge_metrics(result.metrics);
    }
    prof_install.reset(); // restore the caller's profiler before merging
    result.profile = trial_profiler.snapshot();
    if (config.obs != nullptr && !result.profile.empty()) {
        config.obs->merge_profile(result.profile);
    }
    return result;
}

} // namespace routesync::core
