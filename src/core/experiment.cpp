#include "core/experiment.hpp"

#include <optional>
#include <utility>

#include "core/pm_kernel.hpp"
#include "obs/resource_sampler.hpp"
#include "obs/run_context.hpp"
#include "obs/tracer.hpp"

namespace routesync::core {

namespace {

// The two simulation cores behind run_experiment, reduced to the one
// surface the driver needs. Bit-identity between them is the PmKernel
// contract (tests/pm_kernel_test.cpp), so the driver below is written
// once and templated over the adapter.

struct EngineSim {
    sim::Engine& engine;
    PeriodicMessagesModel& model;

    template <typename F> void set_on_transmit(F&& f) {
        model.on_transmit = std::forward<F>(f);
    }
    template <typename F> void set_on_timer_set(F&& f) {
        model.on_timer_set = std::forward<F>(f);
    }
    [[nodiscard]] sim::SimTime round_length() const {
        return model.round_length();
    }
    [[nodiscard]] sim::SimTime offset_of(sim::SimTime t) const {
        return model.offset_of(t);
    }
    void schedule_trigger_all(sim::SimTime t) {
        engine.schedule_at(t, [m = &model] { m->trigger_update_all(); });
    }
    void stop() { engine.stop(); }
    void run_until(sim::SimTime t) { engine.run_until(t); }
    [[nodiscard]] sim::SimTime now() const { return engine.now(); }
    [[nodiscard]] std::uint64_t events_processed() const {
        return engine.events_processed();
    }
    [[nodiscard]] std::uint64_t total_transmissions() const {
        return model.total_transmissions();
    }
};

struct KernelSim {
    PmKernel& kernel;

    template <typename F> void set_on_transmit(F&& f) {
        kernel.on_transmit = std::forward<F>(f);
    }
    template <typename F> void set_on_timer_set(F&& f) {
        kernel.on_timer_set = std::forward<F>(f);
    }
    [[nodiscard]] sim::SimTime round_length() const {
        return kernel.round_length();
    }
    [[nodiscard]] sim::SimTime offset_of(sim::SimTime t) const {
        return kernel.offset_of(t);
    }
    void schedule_trigger_all(sim::SimTime t) {
        kernel.schedule_trigger_all(t);
    }
    void stop() { kernel.stop(); }
    void run_until(sim::SimTime t) { kernel.run_until(t); }
    [[nodiscard]] sim::SimTime now() const { return kernel.now(); }
    [[nodiscard]] std::uint64_t events_processed() const {
        return kernel.events_processed();
    }
    [[nodiscard]] std::uint64_t total_transmissions() const {
        return kernel.total_transmissions();
    }
};

/// The backend-independent experiment body. `tracer` is the run's tracer
/// (null when not tracing); `sampler_engine` is non-null only on the
/// engine path (the ResourceSampler probes an Engine's queue).
template <typename Sim>
ExperimentResult run_with(const ExperimentConfig& config, Sim& sim,
                          obs::Tracer* tracer, sim::Engine* sampler_engine) {
    ClusterTracker tracker{config.params.n, sim.round_length()};
    tracker.record_events(config.record_cluster_events);
    tracker.record_rounds(config.record_rounds);

    ExperimentResult result;
    result.round_length_sec = sim.round_length().sec();

    if (config.transmit_stride > 0) {
        sim.set_on_transmit([&, stride = config.transmit_stride,
                             count = std::uint64_t{0}](int node,
                                                       sim::SimTime t) mutable {
            if (count++ % static_cast<std::uint64_t>(stride) == 0) {
                result.transmits.push_back(
                    TransmitRecord{node, t.sec(), sim.offset_of(t).sec()});
            }
        });
    }

    sim.set_on_timer_set([&tracker](int node, sim::SimTime t) {
        tracker.on_timer_set(node, t);
    });

    if (config.stop_on_full_sync) {
        tracker.on_full_sync = [&sim](sim::SimTime) { sim.stop(); };
    }
    if (config.stop_on_cluster_size > 0) {
        tracker.on_size_first_reached = [&sim, limit = config.stop_on_cluster_size](
                                            int size, sim::SimTime) {
            if (size >= limit) {
                sim.stop();
            }
        };
    }
    if (config.stop_on_breakup_threshold > 0) {
        tracker.on_round_closed = [&sim,
                                   limit = config.stop_on_breakup_threshold](
                                      const RoundLargest& r) {
            if (r.largest <= limit) {
                sim.stop();
            }
        };
    }

    if (tracer != nullptr) {
        // Trace cluster growth: the first time any cluster reaches a new
        // size. Chained in front of the stop condition (if one is set).
        auto prev = std::move(tracker.on_size_first_reached);
        tracker.on_size_first_reached = [tracer, prev = std::move(prev)](
                                            int size, sim::SimTime t) {
            tracer->emit(obs::TraceEventType::ClusterChange, t, -1, size);
            if (prev) {
                prev(size, t);
            }
        };
    }

    if (config.trigger_all_at.has_value()) {
        sim.schedule_trigger_all(*config.trigger_all_at);
    }

    std::optional<obs::ResourceSampler> sampler;
    if (config.sample_every > 0.0 && config.obs != nullptr &&
        sampler_engine != nullptr) {
        sampler.emplace(*sampler_engine, *config.obs,
                        sim::SimTime::seconds(config.sample_every));
        sampler->watch_engine_queue();
        sampler->start();
    }

    {
        OBS_PROF_SCOPE("experiment.run");
        sim.run_until(config.max_time);
        tracker.finish();
    }

    if (const auto t = tracker.full_sync_time()) {
        result.full_sync_time_sec = t->sec();
    }
    if (config.stop_on_breakup_threshold > 0) {
        if (const auto t =
                tracker.first_round_largest_at_most(config.stop_on_breakup_threshold)) {
            result.breakup_time_sec = t->sec();
        }
    }

    const int n = config.params.n;
    result.first_hit_up.resize(static_cast<std::size_t>(n) + 1);
    result.first_hit_down.resize(static_cast<std::size_t>(n) + 1);
    for (int s = 1; s <= n; ++s) {
        if (const auto t = tracker.first_time_size_at_least(s)) {
            result.first_hit_up[static_cast<std::size_t>(s)] = t->sec();
        }
        if (const auto t = tracker.first_round_largest_at_most(s)) {
            result.first_hit_down[static_cast<std::size_t>(s)] = t->sec();
        }
    }

    result.cluster_events = tracker.events();
    result.rounds = tracker.rounds();
    result.rounds_closed = tracker.rounds_closed();
    result.rounds_unsynchronized = tracker.rounds_with_largest_at_most(1);
    result.total_transmissions = sim.total_transmissions();
    result.events_processed = sim.events_processed();
    result.end_time_sec = sim.now().sec();
    return result;
}

} // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
    // Per-trial profiler: thread-locals don't propagate to worker
    // threads, so each trial installs its own and the snapshot is merged
    // back in submission order (like metrics). No-op when profiling is
    // off process-wide.
    obs::Profiler trial_profiler;
    std::optional<obs::ScopedProfilerInstall> prof_install;
    if (obs::Profiler::process_enabled()) {
        prof_install.emplace(trial_profiler);
    }

    // The fast kernel covers the full model; only the ResourceSampler
    // (which probes an Engine's event queue) forces the generic engine.
    const bool use_engine =
        config.backend == ExperimentBackend::Engine ||
        (config.backend == ExperimentBackend::Auto &&
         config.sample_every > 0.0 && config.obs != nullptr);

    ExperimentResult result;
    if (use_engine) {
        sim::Engine engine;
        if (config.obs != nullptr) {
            // Attach before the model exists so the initial timer schedule
            // is traced too.
            config.obs->attach(engine);
        }
        auto policy = config.make_policy ? config.make_policy() : nullptr;
        PeriodicMessagesModel model{engine, config.params, std::move(policy)};
        EngineSim sim{engine, model};
        result = run_with(config, sim, engine.tracer(), &engine);
    } else {
        obs::Tracer* tracer =
            config.obs != nullptr ? config.obs->tracer() : nullptr;
        auto policy = config.make_policy ? config.make_policy() : nullptr;
        PmKernel kernel{config.params, std::move(policy), tracer};
        KernelSim sim{kernel};
        result = run_with(config, sim, tracer, nullptr);
    }

    obs::MetricsRegistry reg;
    reg.add("experiment.transmissions", result.total_transmissions);
    reg.add("experiment.rounds_closed", result.rounds_closed);
    reg.add("experiment.rounds_unsynchronized", result.rounds_unsynchronized);
    reg.add("engine.events_processed", result.events_processed);
    reg.set_gauge("experiment.end_time_sec", result.end_time_sec);
    if (result.full_sync_time_sec.has_value()) {
        reg.add("experiment.full_sync_runs", 1);
        reg.observe("experiment.full_sync_time_sec", *result.full_sync_time_sec);
    }
    if (result.breakup_time_sec.has_value()) {
        reg.observe("experiment.breakup_time_sec", *result.breakup_time_sec);
    }
    result.metrics = reg.snapshot();
    if (config.obs != nullptr) {
        config.obs->merge_metrics(result.metrics);
    }
    prof_install.reset(); // restore the caller's profiler before merging
    result.profile = trial_profiler.snapshot();
    if (config.obs != nullptr && !result.profile.empty()) {
        config.obs->merge_profile(result.profile);
    }
    return result;
}

} // namespace routesync::core
