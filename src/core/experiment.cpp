#include "core/experiment.hpp"

#include <optional>
#include <utility>

#include "core/pm_kernel.hpp"
#include "core/pm_kernel_batch.hpp"
#include "obs/resource_sampler.hpp"
#include "obs/run_context.hpp"
#include "obs/tracer.hpp"

namespace routesync::core {

namespace {

// The two simulation cores behind run_experiment, reduced to the one
// surface the driver needs. Bit-identity between them is the PmKernel
// contract (tests/pm_kernel_test.cpp), so the driver below is written
// once and templated over the adapter.

struct EngineSim {
    sim::Engine& engine;
    PeriodicMessagesModel& model;

    template <typename F> void set_on_transmit(F&& f) {
        model.on_transmit = std::forward<F>(f);
    }
    template <typename F> void set_on_timer_set(F&& f) {
        model.on_timer_set = std::forward<F>(f);
    }
    void set_tracker_sink(ClusterTracker& tracker) {
        // The generic engine path has no direct sink; forward through
        // the model's std::function (this is not the fast path anyway).
        model.on_timer_set = [t = &tracker](int node, sim::SimTime at) {
            t->on_timer_set(node, at);
        };
    }
    [[nodiscard]] sim::SimTime round_length() const {
        return model.round_length();
    }
    [[nodiscard]] sim::SimTime offset_of(sim::SimTime t) const {
        return model.offset_of(t);
    }
    void schedule_trigger_all(sim::SimTime t) {
        engine.schedule_at(t, [m = &model] { m->trigger_update_all(); });
    }
    void stop() { engine.stop(); }
    void run_until(sim::SimTime t) { engine.run_until(t); }
    [[nodiscard]] sim::SimTime now() const { return engine.now(); }
    [[nodiscard]] std::uint64_t events_processed() const {
        return engine.events_processed();
    }
    [[nodiscard]] std::uint64_t total_transmissions() const {
        return model.total_transmissions();
    }
    [[nodiscard]] std::uint64_t state_bytes() const {
        return 0; // the type-erased engine has no comparable accounting
    }
    void setup_sampler(std::optional<obs::ResourceSampler>& sampler,
                       obs::RunContext& ctx, sim::SimTime cadence) {
        sampler.emplace(engine, ctx, cadence);
        sampler->watch_engine_queue();
    }
};

struct KernelSim {
    PmKernel& kernel;

    template <typename F> void set_on_transmit(F&& f) {
        kernel.on_transmit = std::forward<F>(f);
    }
    template <typename F> void set_on_timer_set(F&& f) {
        kernel.on_timer_set = std::forward<F>(f);
    }
    void set_tracker_sink(ClusterTracker& tracker) {
        kernel.tracker_sink = &tracker;
    }
    [[nodiscard]] sim::SimTime round_length() const {
        return kernel.round_length();
    }
    [[nodiscard]] sim::SimTime offset_of(sim::SimTime t) const {
        return kernel.offset_of(t);
    }
    void schedule_trigger_all(sim::SimTime t) {
        kernel.schedule_trigger_all(t);
    }
    void stop() { kernel.stop(); }
    void run_until(sim::SimTime t) { kernel.run_until(t); }
    [[nodiscard]] sim::SimTime now() const { return kernel.now(); }
    [[nodiscard]] std::uint64_t events_processed() const {
        return kernel.events_processed();
    }
    [[nodiscard]] std::uint64_t total_transmissions() const {
        return kernel.total_transmissions();
    }
    [[nodiscard]] std::uint64_t state_bytes() const {
        return kernel.state_bytes();
    }
    void setup_sampler(std::optional<obs::ResourceSampler>& sampler,
                       obs::RunContext& ctx, sim::SimTime cadence) {
        // Tick on the kernel's own event loop and probe its memory: the
        // rs.pm_kernel.* gauges show node-state + queue bytes over
        // virtual time (the metro-scale question --sample-every answers).
        PmKernel* k = &kernel;
        sampler.emplace(
            [k](sim::SimTime delay, std::function<void()> fn) {
                k->schedule_hook(k->now() + delay, std::move(fn));
            },
            [k] { return k->now(); }, ctx, cadence);
        sampler->add_source("pm_kernel.state_bytes", -1, [k] {
            return obs::ResourceSampler::Sample{
                static_cast<double>(k->state_bytes()), 0.0};
        });
        sampler->add_source("pm_kernel.queue.live", -1, [k] {
            return obs::ResourceSampler::Sample{
                static_cast<double>(k->queue_size()), 0.0};
        });
    }
};

/// Copies everything the ClusterTracker learned into the result — the
/// shared tail of the scalar and batched drivers.
void assemble_tracker_results(const ExperimentConfig& config,
                              const ClusterTracker& tracker,
                              ExperimentResult& result) {
    if (const auto t = tracker.full_sync_time()) {
        result.full_sync_time_sec = t->sec();
    }
    if (config.stop_on_breakup_threshold > 0) {
        if (const auto t = tracker.first_round_largest_at_most(
                config.stop_on_breakup_threshold)) {
            result.breakup_time_sec = t->sec();
        }
    }

    const int n = config.params.n;
    result.first_hit_up.resize(static_cast<std::size_t>(n) + 1);
    result.first_hit_down.resize(static_cast<std::size_t>(n) + 1);
    for (int s = 1; s <= n; ++s) {
        if (const auto t = tracker.first_time_size_at_least(s)) {
            result.first_hit_up[static_cast<std::size_t>(s)] = t->sec();
        }
        if (const auto t = tracker.first_round_largest_at_most(s)) {
            result.first_hit_down[static_cast<std::size_t>(s)] = t->sec();
        }
    }

    result.cluster_events = tracker.events();
    result.rounds = tracker.rounds();
    result.rounds_closed = tracker.rounds_closed();
    result.rounds_unsynchronized = tracker.rounds_with_largest_at_most(1);
}

/// Builds the per-trial metrics snapshot (identical key order on every
/// path) and folds it into the config's RunContext if one is attached.
void finalize_metrics(const ExperimentConfig& config, ExperimentResult& result) {
    obs::MetricsRegistry reg;
    reg.add("experiment.transmissions", result.total_transmissions);
    reg.add("experiment.rounds_closed", result.rounds_closed);
    reg.add("experiment.rounds_unsynchronized", result.rounds_unsynchronized);
    reg.add("engine.events_processed", result.events_processed);
    reg.set_gauge("experiment.end_time_sec", result.end_time_sec);
    if (result.full_sync_time_sec.has_value()) {
        reg.add("experiment.full_sync_runs", 1);
        reg.observe("experiment.full_sync_time_sec", *result.full_sync_time_sec);
    }
    if (result.breakup_time_sec.has_value()) {
        reg.observe("experiment.breakup_time_sec", *result.breakup_time_sec);
    }
    if (result.sync.has_value()) {
        const obs::SyncReport& s = *result.sync;
        reg.add("sync.rearms", s.rearms);
        reg.add("sync.transitions", s.transitions);
        reg.add("sync.coupling_edges",
                static_cast<std::uint64_t>(result.sync_coupling.edge_count()));
        reg.set_gauge("sync.r_last", s.r_last);
        reg.set_gauge("sync.r_max", s.r_max);
        reg.set_gauge("sync.entropy_last", s.entropy_last);
        reg.set_gauge("sync.largest_fraction_last", s.largest_fraction_last);
        if (s.time_to_sync_sec >= 0.0) {
            reg.add("sync.synced_runs", 1);
            reg.observe("sync.time_to_sync_sec", s.time_to_sync_sec);
        }
    }
    result.metrics = reg.snapshot();
    if (config.obs != nullptr) {
        config.obs->merge_metrics(result.metrics);
    }
}

/// The backend-independent experiment body. `tracer` is the run's tracer
/// (null when not tracing).
template <typename Sim>
ExperimentResult run_with(const ExperimentConfig& config, Sim& sim,
                          obs::Tracer* tracer) {
    // Pooled per-thread tracker: reset() reuses its buffers, so figure
    // benches running one trial per grid point stop paying the per-trial
    // tracker allocations (the same pattern as run_experiment_batch's
    // lane pool). Safe because a thread runs one trial at a time and the
    // record flags/callbacks are re-set below after every reset.
    thread_local std::unique_ptr<ClusterTracker> tracker_pool;
    if (tracker_pool == nullptr) {
        tracker_pool = std::make_unique<ClusterTracker>(config.params.n,
                                                        sim.round_length());
    } else {
        tracker_pool->reset(config.params.n, sim.round_length());
    }
    ClusterTracker& tracker = *tracker_pool;
    tracker.record_events(config.record_cluster_events);
    tracker.record_rounds(config.record_rounds);

    ExperimentResult result;
    result.round_length_sec = sim.round_length().sec();

    // The monitor observes the same callback streams the tracker does;
    // when it is off the wiring below is exactly the pre-monitor code
    // (direct tracker sink, no std::function hop on the re-arm path).
    std::optional<obs::SyncMonitor> monitor;
    if (config.monitor) {
        monitor.emplace(
            obs::SyncMonitorConfig{.n = config.params.n,
                                   .period_sec = sim.round_length().sec(),
                                   .threshold = config.sync_threshold,
                                   .hysteresis = config.sync_hysteresis},
            tracer);
    }
    obs::SyncMonitor* mon = monitor.has_value() ? &*monitor : nullptr;

    if (config.transmit_stride > 0) {
        sim.set_on_transmit([&, mon, stride = config.transmit_stride,
                             count = std::uint64_t{0}](int node,
                                                       sim::SimTime t) mutable {
            if (mon != nullptr) {
                mon->on_transmit(node, t);
            }
            if (count++ % static_cast<std::uint64_t>(stride) == 0) {
                result.transmits.push_back(
                    TransmitRecord{node, t.sec(), sim.offset_of(t).sec()});
            }
        });
    } else if (mon != nullptr) {
        sim.set_on_transmit(
            [mon](int node, sim::SimTime t) { mon->on_transmit(node, t); });
    }

    if (mon != nullptr) {
        sim.set_on_timer_set(
            [t = &tracker, mon](int node, sim::SimTime at) {
                t->on_timer_set(node, at);
                mon->on_timer_set(node, at);
            });
    } else {
        sim.set_tracker_sink(tracker);
    }

    if (config.stop_on_full_sync) {
        tracker.on_full_sync = [&sim](sim::SimTime) { sim.stop(); };
    }
    if (config.stop_on_cluster_size > 0) {
        tracker.on_size_first_reached = [&sim, limit = config.stop_on_cluster_size](
                                            int size, sim::SimTime) {
            if (size >= limit) {
                sim.stop();
            }
        };
    }
    if (config.stop_on_breakup_threshold > 0) {
        tracker.on_round_closed = [&sim,
                                   limit = config.stop_on_breakup_threshold](
                                      const RoundLargest& r) {
            if (r.largest <= limit) {
                sim.stop();
            }
        };
    }

    if (tracer != nullptr) {
        // Trace cluster growth: the first time any cluster reaches a new
        // size. Chained in front of the stop condition (if one is set).
        auto prev = std::move(tracker.on_size_first_reached);
        tracker.on_size_first_reached = [tracer, prev = std::move(prev)](
                                            int size, sim::SimTime t) {
            tracer->emit(obs::TraceEventType::ClusterChange, t, -1, size);
            if (prev) {
                prev(size, t);
            }
        };
    }

    if (config.trigger_all_at.has_value()) {
        sim.schedule_trigger_all(*config.trigger_all_at);
    }

    std::optional<obs::ResourceSampler> sampler;
    if (config.sample_every > 0.0 && config.obs != nullptr) {
        sim.setup_sampler(sampler, *config.obs,
                          sim::SimTime::seconds(config.sample_every));
        sampler->start();
    }

    {
        OBS_PROF_SCOPE("experiment.run");
        sim.run_until(config.max_time);
        tracker.finish();
    }

    if (mon != nullptr) {
        // Finish at the run's end time so the coupling_edge events keep
        // the trace's time monotone past any later-emitted samples.
        mon->finish(sim.now());
        result.sync = mon->report();
        result.sync_coupling = mon->coupling();
    }

    assemble_tracker_results(config, tracker, result);
    result.total_transmissions = sim.total_transmissions();
    result.events_processed = sim.events_processed();
    result.end_time_sec = sim.now().sec();
    result.kernel_state_bytes = sim.state_bytes();
    return result;
}

} // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
    // Per-trial profiler: thread-locals don't propagate to worker
    // threads, so each trial installs its own and the snapshot is merged
    // back in submission order (like metrics). No-op when profiling is
    // off process-wide.
    obs::Profiler trial_profiler;
    std::optional<obs::ScopedProfilerInstall> prof_install;
    if (obs::Profiler::process_enabled()) {
        prof_install.emplace(trial_profiler);
    }

    // The fast kernel covers the full model; only the ResourceSampler
    // (which probes an Engine's event queue) forces the generic engine.
    const bool use_engine =
        config.backend == ExperimentBackend::Engine ||
        (config.backend == ExperimentBackend::Auto &&
         config.sample_every > 0.0 && config.obs != nullptr);

    ExperimentResult result;
    if (use_engine) {
        sim::Engine engine;
        if (config.obs != nullptr) {
            // Attach before the model exists so the initial timer schedule
            // is traced too.
            config.obs->attach(engine);
        }
        auto policy = config.make_policy ? config.make_policy() : nullptr;
        PeriodicMessagesModel model{engine, config.params, std::move(policy)};
        EngineSim sim{engine, model};
        result = run_with(config, sim, engine.tracer());
    } else {
        obs::Tracer* tracer =
            config.obs != nullptr ? config.obs->tracer() : nullptr;
        auto policy = config.make_policy ? config.make_policy() : nullptr;
        PmKernel kernel{config.params, std::move(policy), tracer};
        KernelSim sim{kernel};
        result = run_with(config, sim, tracer);
    }

    finalize_metrics(config, result);
    prof_install.reset(); // restore the caller's profiler before merging
    result.profile = trial_profiler.snapshot();
    if (config.obs != nullptr && !result.profile.empty()) {
        config.obs->merge_profile(result.profile);
    }
    return result;
}

bool batch_eligible(const ExperimentConfig& config) {
    // Mirrors run_experiment's backend selection: whatever would pick
    // the generic engine cannot batch, and a sampled run stays on its
    // own scalar core regardless of backend (the sampler ticks one
    // simulation loop — lanes interleave). Per-trial profiling stays
    // scalar too — one profiler could not keep interleaved trials'
    // scope counts separable.
    const bool use_engine = config.backend == ExperimentBackend::Engine;
    const bool sampled = config.sample_every > 0.0 && config.obs != nullptr;
    return !use_engine && !sampled && !obs::Profiler::process_enabled() &&
           config.params.n < PmKernelBatch::kMaxNodes;
}

std::vector<ExperimentResult>
run_experiment_batch(std::span<const ExperimentConfig> configs) {
    std::vector<ExperimentResult> results(configs.size());

    // Ineligible configs run scalar, in input order; eligible ones pool
    // into one batch. Results are bit-identical either way, so the split
    // never shows in the output.
    std::vector<std::size_t> lane_of;
    lane_of.reserve(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        if (batch_eligible(configs[i])) {
            lane_of.push_back(i);
        } else {
            results[i] = run_experiment(configs[i]);
        }
    }
    if (lane_of.size() == 1) {
        // B = 1 degenerates to the scalar kernel — same results, and the
        // scalar calendar queue is the tuned single-trial path.
        results[lane_of[0]] = run_experiment(configs[lane_of[0]]);
        return results;
    }
    if (lane_of.empty()) {
        return results;
    }

    const std::size_t lanes = lane_of.size();
    std::vector<PmLaneSpec> specs;
    specs.reserve(lanes);
    for (const std::size_t i : lane_of) {
        const ExperimentConfig& config = configs[i];
        specs.push_back(PmLaneSpec{
            config.params,
            config.make_policy ? config.make_policy() : nullptr,
            config.obs != nullptr ? config.obs->tracer() : nullptr});
    }
    PmKernelBatch batch{std::move(specs)};

    // Lane trackers come from a thread-local pool: reset() reuses their
    // scratch buffers, so a sweep worker stops paying per-trial tracker
    // allocations after its first batch.
    thread_local std::vector<std::unique_ptr<ClusterTracker>> tracker_pool;
    while (tracker_pool.size() < lanes) {
        tracker_pool.push_back(nullptr);
    }

    struct LaneDriver {
        ClusterTracker* tracker = nullptr;
        obs::SyncMonitor* monitor = nullptr;
        ExperimentResult* result = nullptr;
        int stride = 0;
        std::uint64_t tx_seen = 0;
    };
    std::vector<LaneDriver> drivers(lanes);
    std::vector<ClusterTracker*> sinks(lanes, nullptr);
    std::vector<std::unique_ptr<obs::SyncMonitor>> monitors(lanes);
    bool any_stride = false;
    bool any_monitor = false;

    for (std::size_t l = 0; l < lanes; ++l) {
        const ExperimentConfig& config = configs[lane_of[l]];
        ExperimentResult& result = results[lane_of[l]];
        auto& slot = tracker_pool[l];
        if (slot == nullptr) {
            slot = std::make_unique<ClusterTracker>(config.params.n,
                                                    batch.round_length(l));
        } else {
            slot->reset(config.params.n, batch.round_length(l));
        }
        ClusterTracker& tracker = *slot;
        tracker.record_events(config.record_cluster_events);
        tracker.record_rounds(config.record_rounds);

        drivers[l] =
            LaneDriver{&tracker, nullptr, &result, config.transmit_stride, 0};
        sinks[l] = &tracker;
        any_stride = any_stride || config.transmit_stride > 0;
        result.round_length_sec = batch.round_length(l).sec();
        if (config.monitor) {
            // A monitored lane routes its re-arms through the
            // on_timer_set fallback (sink left null) so tracker and
            // monitor both see the stream — same callback order as the
            // scalar path's combined lambda.
            monitors[l] = std::make_unique<obs::SyncMonitor>(
                obs::SyncMonitorConfig{
                    .n = config.params.n,
                    .period_sec = batch.round_length(l).sec(),
                    .threshold = config.sync_threshold,
                    .hysteresis = config.sync_hysteresis},
                config.obs != nullptr ? config.obs->tracer() : nullptr);
            drivers[l].monitor = monitors[l].get();
            sinks[l] = nullptr;
            any_monitor = true;
        }

        if (config.stop_on_full_sync) {
            tracker.on_full_sync = [&batch, l](sim::SimTime) { batch.stop(l); };
        }
        if (config.stop_on_cluster_size > 0) {
            tracker.on_size_first_reached =
                [&batch, l, limit = config.stop_on_cluster_size](
                    int size, sim::SimTime) {
                    if (size >= limit) {
                        batch.stop(l);
                    }
                };
        }
        if (config.stop_on_breakup_threshold > 0) {
            tracker.on_round_closed =
                [&batch, l, limit = config.stop_on_breakup_threshold](
                    const RoundLargest& r) {
                    if (r.largest <= limit) {
                        batch.stop(l);
                    }
                };
        }
        obs::Tracer* tracer =
            config.obs != nullptr ? config.obs->tracer() : nullptr;
        if (tracer != nullptr) {
            auto prev = std::move(tracker.on_size_first_reached);
            tracker.on_size_first_reached = [tracer, prev = std::move(prev)](
                                                int size, sim::SimTime t) {
                tracer->emit(obs::TraceEventType::ClusterChange, t, -1, size);
                if (prev) {
                    prev(size, t);
                }
            };
        }
        if (config.trigger_all_at.has_value()) {
            batch.schedule_trigger_all(l, *config.trigger_all_at);
        }
    }

    if (any_stride || any_monitor) {
        batch.on_transmit = [&batch, &drivers](std::size_t l, int node,
                                               sim::SimTime t) {
            LaneDriver& d = drivers[l];
            if (d.monitor != nullptr) {
                d.monitor->on_transmit(node, t);
            }
            if (d.stride > 0 &&
                d.tx_seen++ % static_cast<std::uint64_t>(d.stride) == 0) {
                d.result->transmits.push_back(TransmitRecord{
                    node, t.sec(), batch.offset_of(l, t).sec()});
            }
        };
    }
    if (any_monitor) {
        // Fires only for lanes whose sink is null — i.e. monitored ones.
        batch.on_timer_set = [&drivers](std::size_t l, int node,
                                        sim::SimTime t) {
            LaneDriver& d = drivers[l];
            d.tracker->on_timer_set(node, t);
            d.monitor->on_timer_set(node, t);
        };
    }
    batch.tracker_sinks = sinks.data(); // alive through run_all_until below

    std::vector<sim::SimTime> targets;
    targets.reserve(lanes);
    for (const std::size_t i : lane_of) {
        targets.push_back(configs[i].max_time);
    }
    batch.run_all_until(targets);

    for (std::size_t l = 0; l < lanes; ++l) {
        const ExperimentConfig& config = configs[lane_of[l]];
        ExperimentResult& result = results[lane_of[l]];
        ClusterTracker& tracker = *drivers[l].tracker;
        tracker.finish();
        if (drivers[l].monitor != nullptr) {
            drivers[l].monitor->finish(batch.now(l));
            result.sync = drivers[l].monitor->report();
            result.sync_coupling = drivers[l].monitor->coupling();
        }
        assemble_tracker_results(config, tracker, result);
        result.total_transmissions = batch.total_transmissions(l);
        result.events_processed = batch.events_processed(l);
        result.end_time_sec = batch.now(l).sec();
        result.kernel_state_bytes = batch.lane_state_bytes(l);
        finalize_metrics(config, result);
    }
    return results;
}

} // namespace routesync::core
