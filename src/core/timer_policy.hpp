// Routing-timer policies.
//
// The paper's central knob is how a router chooses the interval until its
// next routing message. Three policies appear in the paper:
//
//  * UniformJitter  — the Periodic Messages model (Section 3): interval
//                     uniform on [Tp - Tr, Tp + Tr]. Small Tr (accidental
//                     OS-level noise) synchronizes; large Tr (deliberate
//                     randomization) breaks synchronization up.
//  * HalfPeriodJitter — the Section 6 recommendation: interval uniform on
//                     [0.5*Tp, 1.5*Tp], i.e. Tr = Tp/2; "should eliminate
//                     any synchronization of routing messages".
//  * Fixed          — a constant interval (Tr = 0); used with the
//                     reset-at-expiry clock to model the RFC 1058
//                     alternative, which never *forms* clusters through
//                     the busy-period mechanism but also never breaks up
//                     clusters that exist at start.
#pragma once

#include <memory>
#include <string>

#include "rng/rng.hpp"
#include "sim/time.hpp"

namespace routesync::core {

/// Strategy for drawing the interval between successive routing messages.
class TimerPolicy {
public:
    virtual ~TimerPolicy() = default;

    /// Draws the time until the next timer expiration.
    [[nodiscard]] virtual sim::SimTime next_interval(rng::DefaultEngine& gen) const = 0;

    /// Mean of the drawn interval (used by analyses and round bookkeeping).
    [[nodiscard]] virtual sim::SimTime mean_interval() const noexcept = 0;

    /// Human-readable description for logs and bench headers.
    [[nodiscard]] virtual std::string describe() const = 0;
};

/// Interval uniform on [tp - tr, tp + tr]; requires 0 <= tr <= tp.
class UniformJitter final : public TimerPolicy {
public:
    UniformJitter(sim::SimTime tp, sim::SimTime tr);

    [[nodiscard]] sim::SimTime next_interval(rng::DefaultEngine& gen) const override;
    [[nodiscard]] sim::SimTime mean_interval() const noexcept override { return tp_; }
    [[nodiscard]] std::string describe() const override;

    [[nodiscard]] sim::SimTime tp() const noexcept { return tp_; }
    [[nodiscard]] sim::SimTime tr() const noexcept { return tr_; }

private:
    sim::SimTime tp_;
    sim::SimTime tr_;
};

/// Interval uniform on [0.5*tp, 1.5*tp] (Section 6 recommendation).
class HalfPeriodJitter final : public TimerPolicy {
public:
    explicit HalfPeriodJitter(sim::SimTime tp);

    [[nodiscard]] sim::SimTime next_interval(rng::DefaultEngine& gen) const override;
    [[nodiscard]] sim::SimTime mean_interval() const noexcept override { return tp_; }
    [[nodiscard]] std::string describe() const override;

private:
    sim::SimTime tp_;
};

/// Constant interval (no randomness at all).
class FixedInterval final : public TimerPolicy {
public:
    explicit FixedInterval(sim::SimTime tp);

    [[nodiscard]] sim::SimTime next_interval(rng::DefaultEngine& gen) const override;
    [[nodiscard]] sim::SimTime mean_interval() const noexcept override { return tp_; }
    [[nodiscard]] std::string describe() const override;

private:
    sim::SimTime tp_;
};

} // namespace routesync::core
