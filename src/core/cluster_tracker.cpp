#include "core/cluster_tracker.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace routesync::core {

namespace {
/// Sentinel for "this size was never reached": no real event time is
/// infinite, so the flat 8-byte table encodes optional<SimTime> exactly.
constexpr sim::SimTime kNever = sim::SimTime::infinity();
} // namespace

ClusterTracker::ClusterTracker(int n, sim::SimTime round_length, sim::SimTime tolerance)
    : n_{n}, round_length_{round_length}, tolerance_{tolerance} {
    if (n < 1) {
        throw std::invalid_argument{"ClusterTracker: n must be >= 1"};
    }
    if (round_length <= sim::SimTime::zero()) {
        throw std::invalid_argument{"ClusterTracker: round_length must be positive"};
    }
    if (tolerance < sim::SimTime::zero()) {
        throw std::invalid_argument{"ClusterTracker: tolerance must be >= 0"};
    }
    first_up_.assign(static_cast<std::size_t>(n) + 1, kNever);
    first_down_.assign(static_cast<std::size_t>(n) + 1, kNever);
    rounds_by_largest_.assign(static_cast<std::size_t>(n) + 1, 0);
    down_filled_from_ = n + 1;
    record_rounds_ = n <= kAutoRecordRoundsMaxN;
}

void ClusterTracker::reset(int n, sim::SimTime round_length,
                           sim::SimTime tolerance) {
    if (n < 1) {
        throw std::invalid_argument{"ClusterTracker: n must be >= 1"};
    }
    if (round_length <= sim::SimTime::zero()) {
        throw std::invalid_argument{"ClusterTracker: round_length must be positive"};
    }
    if (tolerance < sim::SimTime::zero()) {
        throw std::invalid_argument{"ClusterTracker: tolerance must be >= 0"};
    }
    n_ = n;
    round_length_ = round_length;
    tolerance_ = tolerance;

    group_open_ = false;
    group_start_ = sim::SimTime::zero();
    group_last_ = sim::SimTime::zero();
    group_size_ = 0;
    group_round_ = 0;
    group_last_round_ = 0;
    events_seen_ = 0;
    event_round_ = 0;
    idx_in_round_ = 0;
    current_round_ = 0;
    current_round_largest_ = 0;
    spill_largest_ = 0;
    max_size_seen_ = 0;
    down_filled_from_ = n + 1;
    round_end_time_ = sim::SimTime::zero();
    record_events_ = false;
    record_rounds_ = n <= kAutoRecordRoundsMaxN;
    finished_ = false;
    rounds_closed_ = 0;

    on_full_sync = nullptr;
    on_size_first_reached = nullptr;
    on_round_closed = nullptr;

    // The whole point of reset(): clear() + assign() reuse the vectors'
    // existing storage instead of reallocating per run.
    events_.clear();
    rounds_.clear();
    first_up_.assign(static_cast<std::size_t>(n) + 1, kNever);
    first_down_.assign(static_cast<std::size_t>(n) + 1, kNever);
    rounds_by_largest_.assign(static_cast<std::size_t>(n) + 1, 0);
}

void ClusterTracker::on_timer_set(int /*node*/, sim::SimTime t) {
    assert(!finished_ && "tracker already finished");
    if (group_open_ && t < group_last_) {
        throw std::logic_error{"ClusterTracker: events out of order"};
    }
    if (group_open_ && t - group_last_ <= tolerance_) {
        ++group_size_;
        group_last_ = t;
    } else {
        if (group_open_) {
            finalize_group();
        }
        group_open_ = true;
        group_start_ = t;
        group_last_ = t;
        group_size_ = 1;
        group_round_ = event_round_;
    }
    group_last_round_ = event_round_;
    ++events_seen_;
    if (++idx_in_round_ == n_) {
        idx_in_round_ = 0;
        ++event_round_;
    }

    // Record the earliest time each cluster size was *reached*, live, so a
    // run can be stopped the instant full synchronization occurs. Groups
    // grow one event at a time, so first_up_ is filled for exactly the
    // sizes up to max_size_seen_ — one int compare replaces the optional
    // load on the hot path.
    if (group_size_ > max_size_seen_) {
        max_size_seen_ = group_size_;
        first_up_[static_cast<std::size_t>(group_size_)] = group_start_;
        if (on_size_first_reached) {
            on_size_first_reached(group_size_, group_start_);
        }
        if (group_size_ == n_ && on_full_sync) {
            on_full_sync(group_start_);
        }
    }
}

void ClusterTracker::finalize_group() {
    const std::uint64_t round = group_round_;
    if (round > current_round_) {
        close_current_round();
        current_round_ = round;
        // A group that straddled the boundary counts towards this round too.
        current_round_largest_ = spill_largest_;
        spill_largest_ = 0;
    }

    if (record_events_) {
        events_.push_back(ClusterEvent{group_start_, group_size_});
    }
    if (group_size_ > current_round_largest_) {
        current_round_largest_ = group_size_;
    }
    if (group_last_round_ > round && group_size_ > spill_largest_) {
        spill_largest_ = group_size_;
    }
    round_end_time_ = group_last_;
    group_open_ = false;
    group_size_ = 0;
}

void ClusterTracker::close_current_round() {
    if (current_round_largest_ == 0) {
        return; // nothing observed (only possible before the first event)
    }
    const RoundLargest rec{current_round_, current_round_largest_, round_end_time_};
    ++rounds_closed_;
    // O(1) histogram bump; the cumulative "at most" form a caller wants is
    // a single prefix sum deferred to finish(). The previous code walked
    // [largest, n] every round — O(N) per round is 10^5 stores/round at
    // metro scale.
    ++rounds_by_largest_[static_cast<std::size_t>(current_round_largest_)];
    // first_down_ is filled for a suffix [down_filled_from_, n]; only a
    // new record-low largest extends it.
    if (current_round_largest_ < down_filled_from_) {
        for (int s = current_round_largest_; s < down_filled_from_; ++s) {
            first_down_[static_cast<std::size_t>(s)] = round_end_time_;
        }
        down_filled_from_ = current_round_largest_;
    }
    if (record_rounds_) {
        rounds_.push_back(rec);
    }
    if (on_round_closed) {
        on_round_closed(rec);
    }
}

void ClusterTracker::finish() {
    if (finished_) {
        return;
    }
    if (group_open_) {
        finalize_group();
    }
    close_current_round();
    // Materialize the cumulative form in place: after this,
    // rounds_by_largest_[s] == closed rounds whose largest was <= s.
    for (std::size_t s = 1; s < rounds_by_largest_.size(); ++s) {
        rounds_by_largest_[s] += rounds_by_largest_[s - 1];
    }
    finished_ = true;
}

std::optional<sim::SimTime> ClusterTracker::first_time_size_at_least(int s) const {
    if (s < 1 || s > n_) {
        throw std::out_of_range{"first_time_size_at_least: size outside [1, n]"};
    }
    // first_up_[k] is the first time size exactly k was reached while a
    // group grew; a group of size m passes through every size <= m, so
    // first_up_[s] already covers "at least s".
    const sim::SimTime t = first_up_[static_cast<std::size_t>(s)];
    if (t == kNever) {
        return std::nullopt;
    }
    return t;
}

std::optional<sim::SimTime> ClusterTracker::first_round_largest_at_most(int s) const {
    if (s < 1 || s > n_) {
        throw std::out_of_range{"first_round_largest_at_most: size outside [1, n]"};
    }
    const sim::SimTime t = first_down_[static_cast<std::size_t>(s)];
    if (t == kNever) {
        return std::nullopt;
    }
    return t;
}

std::uint64_t ClusterTracker::rounds_with_largest_at_most(int s) const {
    if (s < 1 || s > n_) {
        throw std::out_of_range{"rounds_with_largest_at_most: size outside [1, n]"};
    }
    if (finished_) {
        return rounds_by_largest_[static_cast<std::size_t>(s)];
    }
    // Pre-finish query: the table still holds the raw histogram; sum it.
    std::uint64_t total = 0;
    for (int k = 1; k <= s; ++k) {
        total += rounds_by_largest_[static_cast<std::size_t>(k)];
    }
    return total;
}

std::size_t ClusterTracker::state_bytes() const noexcept {
    return first_up_.capacity() * sizeof(sim::SimTime) +
           first_down_.capacity() * sizeof(sim::SimTime) +
           rounds_by_largest_.capacity() * sizeof(std::uint64_t) +
           events_.capacity() * sizeof(ClusterEvent) +
           rounds_.capacity() * sizeof(RoundLargest);
}

} // namespace routesync::core
