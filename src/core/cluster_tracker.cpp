#include "core/cluster_tracker.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace routesync::core {

ClusterTracker::ClusterTracker(int n, sim::SimTime round_length, sim::SimTime tolerance)
    : n_{n}, round_length_{round_length}, tolerance_{tolerance} {
    if (n < 1) {
        throw std::invalid_argument{"ClusterTracker: n must be >= 1"};
    }
    if (round_length <= sim::SimTime::zero()) {
        throw std::invalid_argument{"ClusterTracker: round_length must be positive"};
    }
    if (tolerance < sim::SimTime::zero()) {
        throw std::invalid_argument{"ClusterTracker: tolerance must be >= 0"};
    }
    first_up_.resize(static_cast<std::size_t>(n) + 1);
    first_down_.resize(static_cast<std::size_t>(n) + 1);
    rounds_at_most_.assign(static_cast<std::size_t>(n) + 1, 0);
}

void ClusterTracker::on_timer_set(int /*node*/, sim::SimTime t) {
    assert(!finished_ && "tracker already finished");
    if (group_open_ && t < group_last_) {
        throw std::logic_error{"ClusterTracker: events out of order"};
    }
    if (group_open_ && t - group_last_ <= tolerance_) {
        ++group_size_;
        group_last_ = t;
    } else {
        if (group_open_) {
            finalize_group();
        }
        group_open_ = true;
        group_start_ = t;
        group_last_ = t;
        group_size_ = 1;
        group_start_index_ = events_seen_;
    }
    ++events_seen_;

    // Record the earliest time each cluster size was *reached*, live, so a
    // run can be stopped the instant full synchronization occurs.
    auto& first = first_up_[static_cast<std::size_t>(group_size_)];
    if (!first.has_value()) {
        first = group_start_;
        if (on_size_first_reached) {
            on_size_first_reached(group_size_, group_start_);
        }
        if (group_size_ == n_ && on_full_sync) {
            on_full_sync(group_start_);
        }
    }
}

void ClusterTracker::finalize_group() {
    const std::uint64_t round = group_start_index_ / static_cast<std::uint64_t>(n_);
    if (round > current_round_) {
        close_current_round();
        current_round_ = round;
        // A group that straddled the boundary counts towards this round too.
        current_round_largest_ = spill_largest_;
        spill_largest_ = 0;
    }

    if (record_events_) {
        events_.push_back(ClusterEvent{group_start_, group_size_});
    }
    if (group_size_ > current_round_largest_) {
        current_round_largest_ = group_size_;
    }
    const std::uint64_t last_index =
        group_start_index_ + static_cast<std::uint64_t>(group_size_) - 1;
    if (last_index / static_cast<std::uint64_t>(n_) > round &&
        group_size_ > spill_largest_) {
        spill_largest_ = group_size_;
    }
    round_end_time_ = group_last_;
    group_open_ = false;
    group_size_ = 0;
}

void ClusterTracker::close_current_round() {
    if (current_round_largest_ == 0) {
        return; // nothing observed (only possible before the first event)
    }
    const RoundLargest rec{current_round_, current_round_largest_, round_end_time_};
    ++rounds_closed_;
    for (int s = current_round_largest_; s <= n_; ++s) {
        ++rounds_at_most_[static_cast<std::size_t>(s)];
        auto& first = first_down_[static_cast<std::size_t>(s)];
        if (!first.has_value()) {
            first = round_end_time_;
        }
    }
    if (record_rounds_) {
        rounds_.push_back(rec);
    }
    if (on_round_closed) {
        on_round_closed(rec);
    }
}

void ClusterTracker::finish() {
    if (finished_) {
        return;
    }
    if (group_open_) {
        finalize_group();
    }
    close_current_round();
    finished_ = true;
}

std::optional<sim::SimTime> ClusterTracker::first_time_size_at_least(int s) const {
    if (s < 1 || s > n_) {
        throw std::out_of_range{"first_time_size_at_least: size outside [1, n]"};
    }
    // first_up_[k] is the first time size exactly k was reached while a
    // group grew; a group of size m passes through every size <= m, so
    // first_up_[s] already covers "at least s".
    return first_up_[static_cast<std::size_t>(s)];
}

std::optional<sim::SimTime> ClusterTracker::first_round_largest_at_most(int s) const {
    if (s < 1 || s > n_) {
        throw std::out_of_range{"first_round_largest_at_most: size outside [1, n]"};
    }
    return first_down_[static_cast<std::size_t>(s)];
}

std::uint64_t ClusterTracker::rounds_with_largest_at_most(int s) const {
    if (s < 1 || s > n_) {
        throw std::out_of_range{"rounds_with_largest_at_most: size outside [1, n]"};
    }
    return rounds_at_most_[static_cast<std::size_t>(s)];
}

} // namespace routesync::core
