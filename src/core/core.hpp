// Umbrella header for the Periodic Messages model — the paper's primary
// contribution (Sections 3-4).
#pragma once

#include "core/cluster_tracker.hpp"    // IWYU pragma: export
#include "core/experiment.hpp"         // IWYU pragma: export
#include "core/periodic_messages.hpp"  // IWYU pragma: export
#include "core/pm_kernel.hpp"          // IWYU pragma: export
#include "core/timer_policy.hpp"       // IWYU pragma: export
