#include "core/pm_kernel_batch.hpp"

#include <stdexcept>
#include <utility>

#include "core/cluster_tracker.hpp"
#include "core/pm_kernel.hpp" // PmEventKind: the event vocabulary is shared
#include "obs/tracer.hpp"

namespace routesync::core {

PmKernelBatch::PmKernelBatch(std::vector<PmLaneSpec> specs) {
    lanes_.reserve(specs.size());
    std::size_t total_nodes = 0;
    for (PmLaneSpec& spec : specs) {
        // Same validation (and messages) as the scalar kernel — a lane
        // rejects exactly what a scalar construction of its spec would.
        if (spec.params.n < 1) {
            throw std::invalid_argument{
                "PeriodicMessagesModel: need at least one node"};
        }
        if (spec.params.tc < sim::SimTime::zero()) {
            throw std::invalid_argument{"PeriodicMessagesModel: Tc must be >= 0"};
        }
        if (!spec.policy) {
            spec.policy =
                std::make_unique<UniformJitter>(spec.params.tp, spec.params.tr);
        }
        if (!spec.params.initial_phases.empty() &&
            spec.params.initial_phases.size() !=
                static_cast<std::size_t>(spec.params.n)) {
            throw std::invalid_argument{
                "PeriodicMessagesModel: initial_phases size must equal n"};
        }
        if (!spec.params.per_node_tp.empty() &&
            spec.params.per_node_tp.size() !=
                static_cast<std::size_t>(spec.params.n)) {
            throw std::invalid_argument{
                "PeriodicMessagesModel: per_node_tp size must equal n"};
        }
        if (!spec.params.per_node_tc.empty() &&
            spec.params.per_node_tc.size() !=
                static_cast<std::size_t>(spec.params.n)) {
            throw std::invalid_argument{
                "PeriodicMessagesModel: per_node_tc size must equal n"};
        }
        if (spec.params.n >= kMaxNodes) {
            throw std::invalid_argument{
                "PmKernelBatch: n exceeds the 22-bit event-tag node limit"};
        }

        Lane lane;
        lane.params = std::move(spec.params);
        lane.policy = std::move(spec.policy);
        lane.tracer = spec.tracer;
        lane.base = total_nodes;
        lane.reset_at_expiry = lane.params.reset_at_expiry;
        lane.immediate = lane.params.notification == Notification::Immediate;
        lane.shared_busy = lane.immediate && lane.params.per_node_tc.empty();
        if (lane.params.per_node_tp.empty()) {
            if (const auto* uj =
                    dynamic_cast<const UniformJitter*>(lane.policy.get())) {
                lane.draw_lo = (uj->tp() - uj->tr()).sec();
                lane.draw_span = (uj->tp() + uj->tr()).sec() - lane.draw_lo;
                lane.fast_draw = true;
            }
        }
        total_nodes += static_cast<std::size_t>(lane.params.n);
        lanes_.push_back(std::move(lane));
    }

    next_expiry_.assign(total_nodes, sim::SimTime::infinity());
    busy_end_.assign(total_nodes, -sim::SimTime::seconds(1.0));
    timer_seq_.assign(total_nodes, 0);
    transmissions_.assign(total_nodes, 0);
    pending_own_.assign(total_nodes, 0);
    timer_pending_.assign(total_nodes, 0);
    busy_check_scheduled_.assign(total_nodes, 0);

    // Seed and schedule lane by lane, nodes in order — each lane's RNG
    // consumption replays a scalar construction of the same params.
    for (Lane& lane : lanes_) {
        lane.gen = rng::DefaultEngine{lane.params.seed};
        for (int i = 0; i < lane.params.n; ++i) {
            sim::SimTime first;
            if (!lane.params.initial_phases.empty()) {
                first = sim::SimTime::seconds(
                    lane.params.initial_phases[static_cast<std::size_t>(i)]);
            } else if (lane.params.start == StartCondition::Synchronized) {
                first = sim::SimTime::zero();
            } else {
                first = sim::SimTime::seconds(
                    rng::uniform_real(lane.gen, 0.0, lane.params.tp.sec()));
            }
            schedule_timer(lane, i, lane.now + first);
        }
    }
}

sim::SimTime PmKernelBatch::round_length(std::size_t lane) const noexcept {
    const Lane& l = lanes_[lane];
    return l.policy->mean_interval() + l.params.tc;
}

sim::SimTime PmKernelBatch::offset_of(std::size_t lane,
                                      sim::SimTime t) const noexcept {
    return t.mod(round_length(lane));
}

std::size_t PmKernelBatch::lane_state_bytes(std::size_t lane) const noexcept {
    const Lane& l = lanes_[lane];
    const auto n = static_cast<std::size_t>(l.params.n);
    std::size_t per_node = sizeof(sim::SimTime)        // next_expiry_
                           + sizeof(std::uint64_t) * 2 // timer_seq_, transmissions_
                           + sizeof(std::int32_t)      // pending_own_
                           + sizeof(std::uint8_t) * 2; // pending, busy_check flags
    if (!busy_end_.empty()) {
        per_node += sizeof(sim::SimTime);
    }
    return n * per_node + l.q.capacity() * sizeof(BEvent);
}

NodeView PmKernelBatch::node(std::size_t lane, int i) const {
    const Lane& l = lanes_[lane];
    if (i < 0 || i >= l.params.n) {
        throw std::out_of_range{"PmKernel::node: index out of range"};
    }
    const std::size_t idx = l.base + static_cast<std::size_t>(i);
    const sim::SimTime be = busy_end_of(l, i);
    return NodeView{
        .next_expiry = timer_pending_[idx] != 0 ? next_expiry_[idx]
                                                : sim::SimTime::infinity(),
        .busy_until = be,
        .busy = be > l.now,
        .transmissions = transmissions_[idx],
    };
}

void PmKernelBatch::q_insert(Lane& lane, BEvent e) {
    // Append, then bubble backward to rank. A re-armed timer lands at
    // now + Tp ± jitter — the queue maximum, or within a few slots of it
    // when cluster-mates re-arm under the same jitter window — so the
    // loop almost never iterates. (Near-minimum pushes, the busy checks
    // at now + Tc, are absorbed by the hold slot and rarely get here.)
    std::vector<BEvent>& q = lane.q;
    q.push_back(e);
    std::size_t i = q.size() - 1;
    while (i > lane.q_head && before(e, q[i - 1])) {
        q[i] = q[i - 1];
        --i;
    }
    q[i] = e;
}

void PmKernelBatch::q_pop(Lane& lane) {
    // O(1): consume by cursor. The dead prefix is recycled wholesale —
    // either free (queue drained) or one small memmove of the live
    // window (at most n + a few events) every kCompactAt pops.
    constexpr std::size_t kCompactAt = 64;
    if (++lane.q_head == lane.q.size()) {
        lane.q.clear();
        lane.q_head = 0;
    } else if (lane.q_head >= kCompactAt) {
        lane.q.erase(lane.q.begin(),
                     lane.q.begin() + static_cast<std::ptrdiff_t>(lane.q_head));
        lane.q_head = 0;
    }
}

void PmKernelBatch::push_event(Lane& lane, double time, std::uint32_t kind,
                               std::uint32_t node) {
    // Hold-slot pushpop fusion: the most recent push sits outside the
    // queue. In the dominant cycle (timer fires, re-arms, the re-armed
    // timer is served next) the event never enters the queue at all. The
    // hold always carries the lane's largest seq, so serving it only on
    // a STRICTLY earlier time preserves FIFO order among equal times.
    if (lane.has_hold) {
        q_insert(lane, lane.hold);
    }
    lane.hold = BEvent{time, lane.next_seq++ << 24 |
                                 static_cast<std::uint64_t>(kind) << 22 | node};
    lane.has_hold = true;
}

sim::SimTime PmKernelBatch::draw_interval(Lane& lane, int i) {
    if (!lane.params.per_node_tp.empty()) {
        const double tp_i = lane.params.per_node_tp[static_cast<std::size_t>(i)];
        return sim::SimTime::seconds(rng::uniform_real(
            lane.gen, tp_i - lane.params.tr.sec(), tp_i + lane.params.tr.sec()));
    }
    if (lane.fast_draw) {
        // lo + span*u01 with span = hi - lo hoisted: bit-identical to
        // rng::uniform_real(gen, lo, hi), which UniformJitter calls.
        return sim::SimTime::seconds(lane.draw_lo +
                                     lane.draw_span * rng::uniform01(lane.gen));
    }
    return lane.policy->next_interval(lane.gen);
}

void PmKernelBatch::schedule_timer(Lane& lane, int i, sim::SimTime at) {
    const std::size_t idx = lane.base + static_cast<std::size_t>(i);
    assert(timer_pending_[idx] == 0 && "node already has a pending timer");
    timer_seq_[idx] = lane.next_seq;
    push_event(lane, at.sec(), kPmTimer, static_cast<std::uint32_t>(i));
    timer_pending_[idx] = 1;
    next_expiry_[idx] = at;
    if (lane.tracer != nullptr) {
        lane.tracer->emit(obs::TraceEventType::TimerSet, lane.now, i, 0,
                          (at - lane.now).sec());
    }
}

void PmKernelBatch::schedule_trigger_all(std::size_t lane, sim::SimTime t) {
    Lane& l = lanes_[lane];
    if (t < l.now) {
        throw std::logic_error{"Engine::schedule_at: time is in the past"};
    }
    push_event(l, t.sec(), kPmTrigger, 0);
    if (!l.reset_at_expiry) {
        l.can_cancel = true; // the wave may tombstone pending timers
    }
}

void PmKernelBatch::trigger_update(std::size_t lane, std::span<const int> to_fire) {
    Lane& l = lanes_[lane];
    for (const int i : to_fire) {
        if (i < 0 || i >= l.params.n) {
            throw std::out_of_range{"PmKernel::trigger_update: node out of range"};
        }
        const std::size_t idx = l.base + static_cast<std::size_t>(i);
        if (!l.reset_at_expiry && timer_pending_[idx] != 0) {
            // Tombstone cancel: the queued event goes stale and the run
            // loop discards it on surfacing (never executed or counted).
            timer_pending_[idx] = 0;
            l.can_cancel = true;
            if (l.tracer != nullptr) {
                l.tracer->emit(obs::TraceEventType::TimerReset, l.now, i);
            }
        }
        begin_transmission(l, i);
    }
}

void PmKernelBatch::trigger_update_all(std::size_t lane) {
    std::vector<int> all(static_cast<std::size_t>(lanes_[lane].params.n));
    for (int i = 0; i < lanes_[lane].params.n; ++i) {
        all[static_cast<std::size_t>(i)] = i;
    }
    trigger_update(lane, all);
}

void PmKernelBatch::extend_busy(Lane& lane, int i, sim::SimTime t) {
    if (lane.shared_busy) {
        if (lane.shared_busy_end > t) {
            lane.shared_busy_end += lane.params.tc;
        } else {
            lane.shared_busy_end = t + lane.params.tc;
        }
        return;
    }
    const std::size_t idx = lane.base + static_cast<std::size_t>(i);
    const sim::SimTime tc =
        lane.params.per_node_tc.empty()
            ? lane.params.tc
            : sim::SimTime::seconds(
                  lane.params.per_node_tc[static_cast<std::size_t>(i)]);
    if (busy_end_[idx] > t) {
        busy_end_[idx] += tc;
    } else {
        busy_end_[idx] = t + tc;
    }
}

void PmKernelBatch::begin_transmission(Lane& lane, int i) {
    const sim::SimTime now = lane.now;
    const std::size_t idx = lane.base + static_cast<std::size_t>(i);
    const std::size_t lane_id =
        static_cast<std::size_t>(&lane - lanes_.data());

    ++transmissions_[idx];
    ++lane.tx_count;
    if (on_transmit) {
        on_transmit(lane_id, i, now);
    }
    if (lane.tracer != nullptr) {
        lane.tracer->emit(obs::TraceEventType::UpdateTx, now, i,
                          static_cast<std::int64_t>(transmissions_[idx]));
    }

    if (!lane.reset_at_expiry) {
        ++pending_own_[idx];
    }
    extend_busy(lane, i, now);
    if (!lane.reset_at_expiry && busy_check_scheduled_[idx] == 0) {
        busy_check_scheduled_[idx] = 1;
        push_event(lane, busy_end_of(lane, i).sec(), kPmBusyCheck,
                   static_cast<std::uint32_t>(i));
    }

    if (lane.immediate) {
        // Shared-busy lanes already broadcast via the scalar above (see
        // the scalar kernel's induction argument).
        if (!lane.shared_busy) {
            for (int j = 0; j < lane.params.n; ++j) {
                if (j != i) {
                    extend_busy(lane, j, now);
                }
            }
        }
    } else {
        push_event(lane, (now + lane.params.tc).sec(), kPmDeliver,
                   static_cast<std::uint32_t>(i));
    }
}

void PmKernelBatch::deliver_from(Lane& lane, int i) {
    const sim::SimTime at = lane.now;
    for (int j = 0; j < lane.params.n; ++j) {
        if (j != i) {
            extend_busy(lane, j, at);
        }
    }
}

void PmKernelBatch::busy_check(Lane& lane, int i) {
    const std::size_t idx = lane.base + static_cast<std::size_t>(i);
    const sim::SimTime now = lane.now;
    const sim::SimTime be = busy_end_of(lane, i);
    if (be > now) {
        // Extended after this check was scheduled; re-arm at the new end
        // (lazy revalidation, flag stays set).
        push_event(lane, be.sec(), kPmBusyCheck, static_cast<std::uint32_t>(i));
        return;
    }
    busy_check_scheduled_[idx] = 0;
    if (pending_own_[idx] > 0) {
        pending_own_[idx] = 0;
        schedule_timer(lane, i, now + draw_interval(lane, i));
        const auto lane_id = static_cast<std::size_t>(&lane - lanes_.data());
        ClusterTracker* sink =
            tracker_sinks != nullptr ? tracker_sinks[lane_id] : nullptr;
        if (sink != nullptr) {
            sink->on_timer_set(i, now);
        } else if (on_timer_set) {
            on_timer_set(lane_id, i, now);
        }
    }
}

void PmKernelBatch::dispatch(Lane& lane, const BEvent& e) {
    const auto i = static_cast<int>(e.node());
    switch (e.kind()) {
    case kPmTimer: {
        timer_pending_[lane.base + e.node()] = 0;
        if (lane.tracer != nullptr) {
            lane.tracer->emit(obs::TraceEventType::TimerFire, lane.now, i);
        }
        if (lane.reset_at_expiry) {
            schedule_timer(lane, i, lane.now + draw_interval(lane, i));
            const auto lane_id =
                static_cast<std::size_t>(&lane - lanes_.data());
            ClusterTracker* sink =
                tracker_sinks != nullptr ? tracker_sinks[lane_id] : nullptr;
            if (sink != nullptr) {
                sink->on_timer_set(i, lane.now);
            } else if (on_timer_set) {
                on_timer_set(lane_id, i, lane.now);
            }
        }
        begin_transmission(lane, i);
        break;
    }
    case kPmBusyCheck:
        busy_check(lane, i);
        break;
    case kPmDeliver:
        deliver_from(lane, i);
        break;
    case kPmTrigger:
        trigger_update_all(static_cast<std::size_t>(&lane - lanes_.data()));
        break;
    default:
        assert(false && "unknown PmEvent kind");
    }
}

bool PmKernelBatch::advance(Lane& lane, double bound_sec, sim::SimTime target) {
    const double target_sec = target.sec();
    const double stop_at = bound_sec < target_sec ? bound_sec : target_sec;
    while (!lane.stopped) {
        // Surface the next live event: the hold slot wins only on a
        // strictly earlier time (it always has the largest seq), and
        // stale (tombstoned) timers are discarded before the boundary
        // check — exactly the scalar run loop's order of operations.
        const BEvent* head = nullptr;
        bool from_hold = false;
        for (;;) {
            const bool q_empty = lane.q_head == lane.q.size();
            if (lane.has_hold &&
                (q_empty || lane.hold.time < lane.q[lane.q_head].time)) {
                head = &lane.hold;
                from_hold = true;
            } else if (!q_empty) {
                head = &lane.q[lane.q_head];
                from_hold = false;
            } else {
                head = nullptr;
                break;
            }
            if (lane.can_cancel && head->kind() == kPmTimer) {
                const std::size_t idx = lane.base + head->node();
                if (timer_pending_[idx] == 0 || timer_seq_[idx] != head->seq()) {
                    if (from_hold) {
                        lane.has_hold = false;
                    } else {
                        q_pop(lane);
                    }
                    continue;
                }
            }
            break;
        }
        // One boundary compare on the hot path: stop_at <= target, so
        // the drain test only needs to run once an event crosses the
        // epoch bound.
        if (head == nullptr || head->time > stop_at) {
            if (head != nullptr && head->time <= target_sec) {
                return true; // still live; resume next epoch
            }
            if (lane.now < target) {
                lane.now = target;
            }
            return false; // drained (or nothing left before the target)
        }
        const BEvent e = *head;
        if (from_hold) {
            lane.has_hold = false;
        } else {
            q_pop(lane);
        }
        lane.now = sim::SimTime::seconds(e.time);
        ++lane.processed;
        dispatch(lane, e);
    }
    return false; // stopped: clock stays at the last event
}

void PmKernelBatch::run_all_until(std::span<const sim::SimTime> targets) {
    assert(targets.size() == lanes_.size() &&
           "one target time per lane required");

    // Epoch: a few round lengths — long enough to amortize the rotation,
    // short enough that every lane's working set stays warm.
    double epoch = 0.0;
    double start = 0.0;
    bool any_live = false;
    for (std::size_t l = 0; l < lanes_.size(); ++l) {
        if (lanes_[l].stopped) {
            continue;
        }
        const double rl = round_length(l).sec();
        epoch = epoch > rl ? epoch : rl;
        const double now = lanes_[l].now.sec();
        start = any_live ? (start < now ? start : now) : now;
        any_live = true;
    }
    if (!any_live) {
        return;
    }
    epoch = epoch > 1e-9 ? 8.0 * epoch : 1.0;

    std::vector<std::uint8_t> live(lanes_.size(), 0);
    std::size_t live_count = 0;
    for (std::size_t l = 0; l < lanes_.size(); ++l) {
        if (!lanes_[l].stopped) {
            live[l] = 1;
            ++live_count;
        }
    }

    for (double bound = start + epoch; live_count > 0; bound += epoch) {
        for (std::size_t l = 0; l < lanes_.size(); ++l) {
            if (live[l] == 0) {
                continue;
            }
            if (!advance(lanes_[l], bound, targets[l])) {
                live[l] = 0;
                --live_count;
            }
        }
    }
}

} // namespace routesync::core
