#include "core/trace_replay.hpp"

#include <cstdio>
#include <stdexcept>
#include <vector>

namespace routesync::core {

ReplayResult replay_cluster_series(const std::vector<obs::TraceEvent>& events,
                                   sim::SimTime tolerance) {
    ReplayResult result;

    int max_node = -1;
    for (const obs::TraceEvent& e : events) {
        if (e.type == obs::TraceEventType::TimerSet && e.node > max_node) {
            max_node = e.node;
        }
        if (e.type == obs::TraceEventType::ClusterChange) {
            result.recorded.push_back(
                ClusterEvent{e.time, static_cast<int>(e.a)});
        }
    }
    if (max_node < 0) {
        throw std::runtime_error{
            "replay_cluster_series: trace has no timer_set events"};
    }
    result.n = max_node + 1;

    // round_length only matters for the tracker's per-round bookkeeping,
    // which the size-first-reached series never consults; any positive
    // value works here.
    ClusterTracker tracker{result.n, sim::SimTime::seconds(1.0), tolerance};
    tracker.on_size_first_reached = [&result](int size, sim::SimTime t) {
        result.replayed.push_back(ClusterEvent{t, size});
    };

    std::vector<bool> skipped(static_cast<std::size_t>(result.n), false);
    for (const obs::TraceEvent& e : events) {
        if (e.type != obs::TraceEventType::TimerSet) {
            continue;
        }
        auto node = static_cast<std::size_t>(e.node);
        if (!skipped[node]) {
            // The model constructor's initial arm, emitted before the
            // live tracker was wired up (see header).
            skipped[node] = true;
            ++result.initial_skipped;
            continue;
        }
        tracker.on_timer_set(e.node, e.time);
        ++result.timer_sets_fed;
    }
    tracker.finish();
    return result;
}

std::string format_cluster_series(const std::vector<ClusterEvent>& series) {
    std::string out;
    char buf[64];
    for (const ClusterEvent& e : series) {
        std::snprintf(buf, sizeof buf, "%.17g %d\n", e.time.sec(), e.size);
        out += buf;
    }
    return out;
}

std::string diff_cluster_series(const std::vector<ClusterEvent>& got,
                                const std::vector<ClusterEvent>& want) {
    const std::size_t n = std::min(got.size(), want.size());
    char buf[192];
    for (std::size_t i = 0; i < n; ++i) {
        if (got[i].time != want[i].time || got[i].size != want[i].size) {
            std::snprintf(buf, sizeof buf,
                          "entry %zu differs: got (%.17g, %d), want (%.17g, %d)",
                          i, got[i].time.sec(), got[i].size,
                          want[i].time.sec(), want[i].size);
            return buf;
        }
    }
    if (got.size() != want.size()) {
        std::snprintf(buf, sizeof buf,
                      "length differs: got %zu entries, want %zu",
                      got.size(), want.size());
        return buf;
    }
    return {};
}

} // namespace routesync::core
